#include "cico/mem/cache.hpp"

#include "cico/kern/kernels.hpp"

namespace cico::mem {

Cache::Cache(CacheGeometry g)
    : geo_(g),
      tags_(static_cast<std::size_t>(g.num_sets()) * g.assoc, 0),
      states_(static_cast<std::size_t>(g.num_sets()) * g.assoc,
              LineState::Invalid),
      fill_(g.num_sets(), 0) {}

std::size_t Cache::way_of(Block b, std::size_t fill) const {
  return kern::ops().find_u64(tags_.data() + row(b), fill, b);
}

void Cache::to_mru(std::size_t base, std::size_t i) {
  if (i == 0) return;
  const Block tag = tags_[base + i];
  const LineState st = states_[base + i];
  for (std::size_t j = i; j > 0; --j) {
    tags_[base + j] = tags_[base + j - 1];
    states_[base + j] = states_[base + j - 1];
  }
  tags_[base] = tag;
  states_[base] = st;
}

LineState Cache::state_of(Block b) const {
  const std::size_t fill = fill_[geo_.set_of(b)];
  const std::size_t i = way_of(b, fill);
  return i < fill ? states_[row(b) + i] : LineState::Invalid;
}

bool Cache::touch(Block b) {
  const std::size_t fill = fill_[geo_.set_of(b)];
  const std::size_t i = way_of(b, fill);
  if (i >= fill) return false;
  to_mru(row(b), i);
  return true;
}

std::optional<Cache::Eviction> Cache::insert(Block b, LineState s) {
  const std::size_t set = geo_.set_of(b);
  const std::size_t base = row(b);
  std::size_t fill = fill_[set];
  const std::size_t i = way_of(b, fill);
  if (i < fill) {
    states_[base + i] = s;
    to_mru(base, i);
    return std::nullopt;
  }
  std::optional<Eviction> victim;
  if (fill >= geo_.assoc) {
    victim = Eviction{tags_[base + fill - 1], states_[base + fill - 1]};
    --fill;
    --occupancy_;
  }
  // Shift the whole (possibly shortened) row down one way and write the
  // new line at MRU.
  for (std::size_t j = fill; j > 0; --j) {
    tags_[base + j] = tags_[base + j - 1];
    states_[base + j] = states_[base + j - 1];
  }
  tags_[base] = b;
  states_[base] = s;
  fill_[set] = static_cast<std::uint32_t>(fill + 1);
  ++occupancy_;
  return victim;
}

std::optional<Cache::Eviction> Cache::peek_victim(Block b) const {
  const std::size_t fill = fill_[geo_.set_of(b)];
  if (way_of(b, fill) < fill) return std::nullopt;  // hit path: no eviction
  if (fill < geo_.assoc) return std::nullopt;
  const std::size_t base = row(b);
  return Eviction{tags_[base + fill - 1], states_[base + fill - 1]};
}

bool Cache::set_state(Block b, LineState s) {
  const std::size_t fill = fill_[geo_.set_of(b)];
  const std::size_t i = way_of(b, fill);
  if (i >= fill) return false;
  states_[row(b) + i] = s;
  return true;
}

LineState Cache::erase(Block b) {
  const std::size_t set = geo_.set_of(b);
  const std::size_t base = row(b);
  const std::size_t fill = fill_[set];
  const std::size_t i = way_of(b, fill);
  if (i >= fill) return LineState::Invalid;
  const LineState s = states_[base + i];
  for (std::size_t j = i; j + 1 < fill; ++j) {
    tags_[base + j] = tags_[base + j + 1];
    states_[base + j] = states_[base + j + 1];
  }
  fill_[set] = static_cast<std::uint32_t>(fill - 1);
  --occupancy_;
  return s;
}

void Cache::flush(const std::function<void(Block, LineState)>& fn) {
  for (std::size_t set = 0; set < fill_.size(); ++set) {
    const std::size_t base = set * geo_.assoc;
    const std::size_t fill = fill_[set];
    for (std::size_t i = 0; i < fill; ++i) fn(tags_[base + i], states_[base + i]);
    occupancy_ -= fill;
    fill_[set] = 0;
  }
}

void Cache::for_each(const std::function<void(Block, LineState)>& fn) const {
  for (std::size_t set = 0; set < fill_.size(); ++set) {
    const std::size_t base = set * geo_.assoc;
    const std::size_t fill = fill_[set];
    for (std::size_t i = 0; i < fill; ++i) fn(tags_[base + i], states_[base + i]);
  }
}

}  // namespace cico::mem
