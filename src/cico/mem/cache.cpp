#include "cico/mem/cache.hpp"

#include <algorithm>

namespace cico::mem {

Cache::Cache(CacheGeometry g) : geo_(g), sets_(g.num_sets()) {
  for (auto& s : sets_) s.reserve(g.assoc);
}

LineState Cache::state_of(Block b) const {
  const Set& set = set_for(b);
  for (const Line& l : set) {
    if (l.block == b) return l.state;
  }
  return LineState::Invalid;
}

bool Cache::touch(Block b) {
  Set& set = set_for(b);
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].block == b) {
      if (i != 0) {
        Line l = set[i];
        set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
        set.insert(set.begin(), l);
      }
      return true;
    }
  }
  return false;
}

std::optional<Cache::Eviction> Cache::insert(Block b, LineState s) {
  Set& set = set_for(b);
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].block == b) {
      set[i].state = s;
      touch(b);
      return std::nullopt;
    }
  }
  std::optional<Eviction> victim;
  if (set.size() >= geo_.assoc) {
    const Line& lru = set.back();
    victim = Eviction{lru.block, lru.state};
    set.pop_back();
    --occupancy_;
  }
  set.insert(set.begin(), Line{b, s});
  ++occupancy_;
  return victim;
}

std::optional<Cache::Eviction> Cache::peek_victim(Block b) const {
  const Set& set = set_for(b);
  for (const Line& l : set) {
    if (l.block == b) return std::nullopt;  // hit path: no eviction
  }
  if (set.size() < geo_.assoc) return std::nullopt;
  const Line& lru = set.back();
  return Eviction{lru.block, lru.state};
}

bool Cache::set_state(Block b, LineState s) {
  Set& set = set_for(b);
  for (Line& l : set) {
    if (l.block == b) {
      l.state = s;
      return true;
    }
  }
  return false;
}

LineState Cache::erase(Block b) {
  Set& set = set_for(b);
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].block == b) {
      LineState s = set[i].state;
      set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
      --occupancy_;
      return s;
    }
  }
  return LineState::Invalid;
}

void Cache::flush(const std::function<void(Block, LineState)>& fn) {
  for (Set& set : sets_) {
    for (const Line& l : set) fn(l.block, l.state);
    occupancy_ -= set.size();
    set.clear();
  }
}

void Cache::for_each(const std::function<void(Block, LineState)>& fn) const {
  for (const Set& set : sets_) {
    for (const Line& l : set) fn(l.block, l.state);
  }
}

}  // namespace cico::mem
