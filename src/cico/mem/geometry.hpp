// Cache geometry: size / associativity / block size, plus the address
// arithmetic used throughout the system.  Paper defaults: 256 KB, 4-way,
// 32-byte blocks (section 6).
#pragma once

#include <cassert>

#include "cico/common/types.hpp"

namespace cico::mem {

struct CacheGeometry {
  std::uint32_t size_bytes = 256u << 10;
  std::uint32_t assoc = 4;
  std::uint32_t block_bytes = 32;

  [[nodiscard]] std::uint32_t num_blocks() const { return size_bytes / block_bytes; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_blocks() / assoc; }

  [[nodiscard]] Block block_of(Addr a) const { return a / block_bytes; }
  [[nodiscard]] Addr base_of(Block b) const { return b * block_bytes; }
  [[nodiscard]] std::uint32_t set_of(Block b) const {
    return static_cast<std::uint32_t>(b % num_sets());
  }

  /// Blocks covered by the byte range [addr, addr+bytes).
  [[nodiscard]] Block first_block(Addr addr) const { return block_of(addr); }
  [[nodiscard]] Block last_block(Addr addr, std::uint64_t bytes) const {
    assert(bytes > 0);
    return block_of(addr + bytes - 1);
  }
};

}  // namespace cico::mem
