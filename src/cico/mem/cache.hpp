// Set-associative LRU shared-data cache model.
//
// The cache stores coherence state only -- data values live in the
// benchmark's own arrays (the simulator is execution-driven, like WWT, so
// the "memory" is always the host memory).  Lines are Invalid, Shared
// (read-only) or Exclusive (writable); Dir1SW/CICO has no dirty-shared
// state.  Exclusive lines are treated as dirty for writeback accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cico/mem/geometry.hpp"

namespace cico::mem {

enum class LineState : std::uint8_t { Invalid, Shared, Exclusive };

class Cache {
 public:
  explicit Cache(CacheGeometry g);

  [[nodiscard]] const CacheGeometry& geometry() const { return geo_; }

  /// Coherence state of a block (Invalid if not present).
  [[nodiscard]] LineState state_of(Block b) const;

  [[nodiscard]] bool contains(Block b) const { return state_of(b) != LineState::Invalid; }

  /// Moves the block to MRU position.  Returns false if not present.
  bool touch(Block b);

  struct Eviction {
    Block block;
    LineState state;
  };

  /// Inserts a block (replacing any LRU victim in its set) and returns the
  /// victim, if one was evicted.  Inserting an already-present block just
  /// updates its state and LRU position.
  std::optional<Eviction> insert(Block b, LineState s);

  /// The victim insert(b, ...) would evict right now, without touching the
  /// cache (used by the sharded boundary phase to claim eviction targets
  /// before dispatching an item to a worker).
  [[nodiscard]] std::optional<Eviction> peek_victim(Block b) const;

  /// Changes the state of a present block (upgrade/downgrade).
  /// Returns false if the block is not present.
  bool set_state(Block b, LineState s);

  /// Removes a block (invalidation or check-in).  Returns its prior state.
  LineState erase(Block b);

  /// Removes every line, invoking fn(block, state) for each (used for the
  /// barrier flush of trace mode, section 3.3).
  void flush(const std::function<void(Block, LineState)>& fn);

  [[nodiscard]] std::size_t occupancy() const { return occupancy_; }

  /// Invokes fn(block, state) for every resident line (MRU to LRU per set).
  void for_each(const std::function<void(Block, LineState)>& fn) const;

 private:
  // Structure-of-arrays layout: the tags of set s occupy
  // tags_[s*assoc .. s*assoc + fill_[s]) with index 0 = MRU and
  // fill_[s]-1 = LRU, states_ in parallel.  A lookup is one SIMD compare
  // over the set's tag row (kern::find_u64) instead of a pointer-chasing
  // scan of per-set vectors; LRU maintenance is a short memmove rotation.
  [[nodiscard]] std::size_t row(Block b) const {
    return static_cast<std::size_t>(geo_.set_of(b)) * geo_.assoc;
  }
  /// Index of b within its set row, or fill when absent.
  [[nodiscard]] std::size_t way_of(Block b, std::size_t fill) const;
  /// Moves way `i` of the row to MRU (index 0), rotating the prefix.
  void to_mru(std::size_t base, std::size_t i);

  CacheGeometry geo_;
  std::vector<Block> tags_;            ///< num_sets * assoc
  std::vector<LineState> states_;      ///< num_sets * assoc
  std::vector<std::uint32_t> fill_;    ///< live ways per set
  std::size_t occupancy_ = 0;
};

}  // namespace cico::mem
