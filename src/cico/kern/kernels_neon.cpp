// NEON kernels (128-bit, 2 words per vector).  NEON is baseline on
// AArch64, so no runtime probe is needed there; on every other
// architecture the level reports unavailable.
#include "cico/kern/kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace cico::kern {
namespace {

void bor_neon(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void band_neon(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void bandnot_neon(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // bic computes first & ~second.
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

std::uint64_t popcount_neon(const std::uint64_t* a, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t bytes = vreinterpretq_u8_u64(vld1q_u64(a + i));
    total += vaddvq_u8(vcntq_u8(bytes));
  }
  for (; i < n; ++i) total += static_cast<std::uint64_t>(std::popcount(a[i]));
  return total;
}

bool equal_neon(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if ((vgetq_lane_u64(x, 0) | vgetq_lane_u64(x, 1)) != 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::size_t find_nonzero_neon(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(a + i);
    if (vgetq_lane_u64(v, 0) != 0) return i;
    if (vgetq_lane_u64(v, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return i;
  }
  return n;
}

std::size_t find_u64_neon(const std::uint64_t* a, std::size_t n,
                          std::uint64_t key) {
  const uint64x2_t k = vdupq_n_u64(key);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), k);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (a[i] == key) return i;
  }
  return n;
}

const Ops neon_table = {
    Level::NEON, bor_neon,   band_neon,         bandnot_neon,
    popcount_neon, equal_neon, find_nonzero_neon, find_u64_neon,
};

}  // namespace

const Ops* neon_ops_or_null() { return &neon_table; }

}  // namespace cico::kern

#else  // non-AArch64: level never available

namespace cico::kern {
const Ops* neon_ops_or_null() { return nullptr; }
}  // namespace cico::kern

#endif
