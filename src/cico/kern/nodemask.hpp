// Dynamic node bitmask.
//
// Replaces the raw `std::uint64_t` accessor masks in EpochDB / the sharing
// analyzer, whose `1ULL << (n % 64)` construction silently aliased node 64
// onto node 0 (and so on), corrupting race and false-sharing accessor
// counts for machines wider than 64 nodes.  The first 64 nodes live in an
// inline word (the overwhelmingly common case allocates nothing); wider
// configurations spill into a vector.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace cico::kern {

class NodeMask {
 public:
  NodeMask() = default;

  void set(std::uint32_t n) {
    if (n < 64) {
      lo_ |= 1ULL << n;
      return;
    }
    const std::size_t wi = n / 64 - 1;
    if (hi_.size() <= wi) hi_.resize(wi + 1, 0);
    hi_[wi] |= 1ULL << (n % 64);
  }

  [[nodiscard]] bool test(std::uint32_t n) const {
    if (n < 64) return (lo_ & (1ULL << n)) != 0;
    const std::size_t wi = n / 64 - 1;
    if (wi >= hi_.size()) return false;
    return (hi_[wi] & (1ULL << (n % 64))) != 0;
  }

  [[nodiscard]] bool any() const {
    if (lo_ != 0) return true;
    for (const std::uint64_t w : hi_) {
      if (w != 0) return true;
    }
    return false;
  }

  [[nodiscard]] int count() const {
    int c = std::popcount(lo_);
    for (const std::uint64_t w : hi_) c += std::popcount(w);
    return c;
  }

  /// True when `n` is set and is the ONLY node set.
  [[nodiscard]] bool is_sole(std::uint32_t n) const {
    return test(n) && count() == 1;
  }

  NodeMask& operator|=(const NodeMask& o) {
    lo_ |= o.lo_;
    if (o.hi_.size() > hi_.size()) hi_.resize(o.hi_.size(), 0);
    for (std::size_t i = 0; i < o.hi_.size(); ++i) hi_[i] |= o.hi_[i];
    return *this;
  }

  friend bool operator==(const NodeMask& a, const NodeMask& b) {
    if (a.lo_ != b.lo_) return false;
    const std::size_t n = std::max(a.hi_.size(), b.hi_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t wa = i < a.hi_.size() ? a.hi_[i] : 0;
      const std::uint64_t wb = i < b.hi_.size() ? b.hi_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }
  friend bool operator!=(const NodeMask& a, const NodeMask& b) {
    return !(a == b);
  }

  /// popcount(a | b) without materializing the union.
  [[nodiscard]] static int count_union(const NodeMask& a, const NodeMask& b) {
    int c = std::popcount(a.lo_ | b.lo_);
    const std::size_t n = std::max(a.hi_.size(), b.hi_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t wa = i < a.hi_.size() ? a.hi_[i] : 0;
      const std::uint64_t wb = i < b.hi_.size() ? b.hi_[i] : 0;
      c += std::popcount(wa | wb);
    }
    return c;
  }

  /// (a1 | b1) == (a2 | b2) without materializing either union.
  [[nodiscard]] static bool union_equals(const NodeMask& a1, const NodeMask& b1,
                                         const NodeMask& a2,
                                         const NodeMask& b2) {
    if ((a1.lo_ | b1.lo_) != (a2.lo_ | b2.lo_)) return false;
    const std::size_t n =
        std::max(std::max(a1.hi_.size(), b1.hi_.size()),
                 std::max(a2.hi_.size(), b2.hi_.size()));
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w1 = (i < a1.hi_.size() ? a1.hi_[i] : 0) |
                               (i < b1.hi_.size() ? b1.hi_[i] : 0);
      const std::uint64_t w2 = (i < a2.hi_.size() ? a2.hi_[i] : 0) |
                               (i < b2.hi_.size() ? b2.hi_[i] : 0);
      if (w1 != w2) return false;
    }
    return true;
  }

 private:
  std::uint64_t lo_ = 0;               ///< nodes 0..63 (no allocation)
  std::vector<std::uint64_t> hi_;      ///< nodes 64.. (rarely used)
};

}  // namespace cico::kern
