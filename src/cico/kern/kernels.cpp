// Dispatch resolution for the kernel layer.  The table is chosen exactly
// once (first ops() call): CICO_SIMD overrides the feature probe, an
// unavailable request falls back to the best supported level with a
// stderr note, and set_level() lets tests flip levels afterwards.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "cico/kern/kernels.hpp"

namespace cico::kern {

// Provided by kernels_avx2.cpp / kernels_neon.cpp (null off-architecture).
const Ops* avx2_ops_or_null();
bool cpu_has_avx2();
const Ops* neon_ops_or_null();

namespace {

const Ops* table_for(Level l) {
  switch (l) {
    case Level::Scalar:
      return &scalar_ops();
    case Level::AVX2:
      return cpu_has_avx2() ? avx2_ops_or_null() : nullptr;
    case Level::NEON:
      return neon_ops_or_null();
  }
  return nullptr;
}

Level best_level() {
  if (table_for(Level::AVX2) != nullptr) return Level::AVX2;
  if (table_for(Level::NEON) != nullptr) return Level::NEON;
  return Level::Scalar;
}

const Ops* resolve_startup() {
  const char* req = std::getenv("CICO_SIMD");
  if (req == nullptr || *req == '\0') return table_for(best_level());
  Level want = Level::Scalar;
  if (std::strcmp(req, "scalar") == 0) {
    want = Level::Scalar;
  } else if (std::strcmp(req, "avx2") == 0) {
    want = Level::AVX2;
  } else if (std::strcmp(req, "neon") == 0) {
    want = Level::NEON;
  } else {
    std::fprintf(stderr,
                 "# cico: unknown CICO_SIMD=%s (want scalar|avx2|neon); "
                 "using %s\n",
                 req, level_name(best_level()));
    return table_for(best_level());
  }
  if (const Ops* t = table_for(want)) return t;
  std::fprintf(stderr, "# cico: CICO_SIMD=%s unavailable on this host; using %s\n",
               req, level_name(best_level()));
  return table_for(best_level());
}

// Resolved once; set_level() may repoint it from single-threaded test code.
const Ops* active_table() {
  static const Ops* chosen = resolve_startup();
  return chosen;
}

const Ops** active_slot() {
  static const Ops* slot = active_table();
  return &slot;
}

}  // namespace

bool level_available(Level l) { return table_for(l) != nullptr; }

const char* level_name(Level l) {
  switch (l) {
    case Level::Scalar:
      return "scalar";
    case Level::AVX2:
      return "avx2";
    case Level::NEON:
      return "neon";
  }
  return "?";
}

const Ops& ops() { return **active_slot(); }

Level active_level() { return ops().level; }

Level set_level(Level l) {
  const Ops* t = table_for(l);
  if (t == nullptr) {
    throw std::invalid_argument(std::string("kern level unavailable: ") +
                                level_name(l));
  }
  const Ops** slot = active_slot();
  const Level prev = (*slot)->level;
  *slot = t;
  return prev;
}

}  // namespace cico::kern
