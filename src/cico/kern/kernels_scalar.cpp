// Portable reference kernels.  Every other dispatch level is tested for
// bit-identical results against this table.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "cico/kern/kernels.hpp"

namespace cico::kern {
namespace {

void bor_scalar(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void band_scalar(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void bandnot_scalar(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

std::uint64_t popcount_scalar(const std::uint64_t* a, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i]));
  }
  return total;
}

bool equal_scalar(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::size_t find_nonzero_scalar(const std::uint64_t* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return i;
  }
  return n;
}

std::size_t find_u64_scalar(const std::uint64_t* a, std::size_t n,
                            std::uint64_t key) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == key) return i;
  }
  return n;
}

}  // namespace

const Ops& scalar_ops() {
  static const Ops table = {
      Level::Scalar,       bor_scalar,   band_scalar,    bandnot_scalar,
      popcount_scalar,     equal_scalar, find_nonzero_scalar,
      find_u64_scalar,
  };
  return table;
}

}  // namespace cico::kern
