// Generation-stamped membership set for batch claim tracking.
//
// The boundary batcher claims blocks / lock addresses per batch and clears
// the claim set at every flush.  A bitset would pay an O(range) memset per
// flush; a hash set pays allocation churn.  This structure stores one
// 32-bit generation stamp per key slot and makes clear() a single counter
// bump: a key is a member iff its slot holds the current generation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cico::kern {

class StampSet {
 public:
  /// O(1): keys stamped in earlier generations stop being members.
  void clear() {
    ++gen_;
    if (gen_ == 0) {  // wrapped: stale stamps would alias, so wipe them
      std::fill(stamp_.begin(), stamp_.end(), 0U);
      gen_ = 1;
    }
  }

  void insert(std::uint64_t v) {
    const std::size_t slot = slot_for(v);
    stamp_[slot] = gen_;
  }

  [[nodiscard]] bool contains(std::uint64_t v) const {
    if (stamp_.empty() || v < base_) return false;
    const std::uint64_t idx = v - base_;
    return idx < stamp_.size() && stamp_[idx] == gen_;
  }

 private:
  std::size_t slot_for(std::uint64_t v) {
    if (stamp_.empty()) {
      base_ = v;
      stamp_.assign(1, 0U);
      return 0;
    }
    if (v < base_) {
      const std::uint64_t grow = base_ - v;
      stamp_.insert(stamp_.begin(), static_cast<std::size_t>(grow), 0U);
      base_ = v;
      return 0;
    }
    const std::uint64_t idx = v - base_;
    if (idx >= stamp_.size()) stamp_.resize(static_cast<std::size_t>(idx) + 1, 0U);
    return static_cast<std::size_t>(idx);
  }

  std::vector<std::uint32_t> stamp_;
  std::uint64_t base_ = 0;
  std::uint32_t gen_ = 1;
};

}  // namespace cico::kern
