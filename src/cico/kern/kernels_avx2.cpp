// AVX2 kernels (256-bit, 4 words per vector).
//
// Built unconditionally on x86-64 with per-function target attributes
// instead of a per-file -mavx2 flag: the translation unit stays safe to
// link into a binary that runs on non-AVX2 hosts, because the vector code
// paths are only reached after the CPUID probe in kernels.cpp says the
// instructions exist.
//
// popcount uses the in-register nibble-LUT algorithm (Mula): split each
// byte into nibbles, look both up in a 16-entry counts table with vpshufb,
// and horizontally accumulate with vpsadbw.  Against the scalar baseline
// (which g++ compiles to the SWAR multiply sequence without -mpopcnt) this
// is the headline set-algebra speedup.
#include "cico/kern/kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace cico::kern {
namespace {

__attribute__((target("avx2"))) void bor_avx2(std::uint64_t* dst,
                                              const std::uint64_t* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void band_avx2(std::uint64_t* dst,
                                               const std::uint64_t* src,
                                               std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void bandnot_avx2(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes ~first & second, so the operand order is (src, dst).
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(b, a));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) std::uint64_t popcount_avx2(
    const std::uint64_t* a, std::size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i lo = _mm256_and_si256(v, low_nibble);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) total += static_cast<std::uint64_t>(std::popcount(a[i]));
  return total;
}

__attribute__((target("avx2"))) bool equal_avx2(const std::uint64_t* a,
                                                const std::uint64_t* b,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi64(va, vb);
    if (_mm256_movemask_epi8(eq) != -1) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) std::size_t find_nonzero_avx2(
    const std::uint64_t* a, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi64(v, zero));
    if (mask != -1) {
      // Each word owns 8 mask bits; the first word whose byte-lane mask is
      // not all-ones is the first nonzero word.
      const unsigned nz = ~static_cast<unsigned>(mask);
      return i + (static_cast<unsigned>(std::countr_zero(nz)) >> 3);
    }
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return i;
  }
  return n;
}

__attribute__((target("avx2"))) std::size_t find_u64_avx2(
    const std::uint64_t* a, std::size_t n, std::uint64_t key) {
  const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi64(v, k));
    if (mask != 0) {
      const unsigned m = static_cast<unsigned>(mask);
      return i + (static_cast<unsigned>(std::countr_zero(m)) >> 3);
    }
  }
  for (; i < n; ++i) {
    if (a[i] == key) return i;
  }
  return n;
}

const Ops avx2_table = {
    Level::AVX2, bor_avx2,   band_avx2,         bandnot_avx2,
    popcount_avx2, equal_avx2, find_nonzero_avx2, find_u64_avx2,
};

}  // namespace

const Ops* avx2_ops_or_null() { return &avx2_table; }

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace cico::kern

#else  // non-x86: level never available

namespace cico::kern {
const Ops* avx2_ops_or_null() { return nullptr; }
bool cpu_has_avx2() { return false; }
}  // namespace cico::kern

#endif
