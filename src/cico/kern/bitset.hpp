// Dense dynamic-range bitset over 64-bit keys (blocks, addresses).
//
// Drop-in replacement for `std::unordered_set<Block>` in the simulator's
// hot paths: the same insert/erase/contains/size surface, but storage is a
// flat run of uint64_t words covering [base_, base_ + 64*words) of the key
// space, set algebra (|=, &=, -=) runs on the cico::kern SIMD kernels, and
// iteration yields keys in ASCENDING order (which also makes every
// consumer that used to sort-before-print able to stream directly).
//
// The word range grows on demand and is always 64-aligned in key space;
// clear() zeroes the words but keeps the capacity so reuse in per-epoch
// loops does not churn the allocator.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <iterator>
#include <vector>

#include "cico/kern/kernels.hpp"

namespace cico::kern {

class BlockSet {
 public:
  using value_type = std::uint64_t;
  using key_type = std::uint64_t;
  using size_type = std::size_t;

  BlockSet() = default;
  BlockSet(std::initializer_list<std::uint64_t> xs) {
    for (const std::uint64_t v : xs) insert(v);
  }
  template <class It>
  BlockSet(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  /// Inserts `v`; true when it was not already present.
  bool insert(std::uint64_t v) {
    ensure_covers(v);
    std::uint64_t& w = words_[word_index(v)];
    const std::uint64_t bit = 1ULL << (v & 63U);
    if ((w & bit) != 0) return false;
    w |= bit;
    ++count_;
    return true;
  }

  template <class It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  /// Removes `v`; returns 1 when it was present (unordered_set contract).
  std::size_t erase(std::uint64_t v) {
    if (!contains(v)) return 0;
    words_[word_index(v)] &= ~(1ULL << (v & 63U));
    --count_;
    return 1;
  }

  [[nodiscard]] bool contains(std::uint64_t v) const {
    if (v < base_) return false;
    const std::uint64_t wi = (v - base_) >> 6;
    if (wi >= words_.size()) return false;
    return (words_[wi] & (1ULL << (v & 63U))) != 0;
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Zeroes every bit but keeps the covered range allocated.
  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// Set union: grows this set's range to cover `o`.
  BlockSet& operator|=(const BlockSet& o);
  /// Set intersection: bits outside the overlap of the two ranges drop.
  BlockSet& operator&=(const BlockSet& o);
  /// Set subtraction.
  BlockSet& operator-=(const BlockSet& o);

  /// Logical equality (ranges may differ; only membership matters).
  friend bool operator==(const BlockSet& a, const BlockSet& b);
  friend bool operator!=(const BlockSet& a, const BlockSet& b) {
    return !(a == b);
  }

  /// Ascending-order iterator over set members.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint64_t*;
    using reference = std::uint64_t;

    const_iterator() = default;

    std::uint64_t operator*() const {
      return base_ + (static_cast<std::uint64_t>(wi_) << 6) +
             static_cast<std::uint64_t>(std::countr_zero(cur_));
    }

    const_iterator& operator++() {
      cur_ &= cur_ - 1;  // clear lowest set bit
      if (cur_ == 0) advance_word(wi_ + 1);
      return *this;
    }

    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }

    friend bool operator==(const const_iterator& x, const const_iterator& y) {
      return x.wi_ == y.wi_ && x.cur_ == y.cur_;
    }
    friend bool operator!=(const const_iterator& x, const const_iterator& y) {
      return !(x == y);
    }

   private:
    friend class BlockSet;
    const_iterator(const std::uint64_t* w, std::size_t nw, std::uint64_t base,
                   std::size_t start)
        : w_(w), nw_(nw), base_(base) {
      advance_word(start);
    }

    void advance_word(std::size_t from) {
      if (from >= nw_) {
        wi_ = nw_;
        cur_ = 0;
        return;
      }
      wi_ = from + ops().find_nonzero(w_ + from, nw_ - from);
      cur_ = wi_ < nw_ ? w_[wi_] : 0;
    }

    const std::uint64_t* w_ = nullptr;
    std::size_t nw_ = 0;
    std::uint64_t base_ = 0;
    std::size_t wi_ = 0;
    std::uint64_t cur_ = 0;
  };
  using iterator = const_iterator;

  [[nodiscard]] const_iterator begin() const {
    return {words_.data(), words_.size(), base_, 0};
  }
  [[nodiscard]] const_iterator end() const {
    return {words_.data(), words_.size(), base_, words_.size()};
  }
  [[nodiscard]] const_iterator cbegin() const { return begin(); }
  [[nodiscard]] const_iterator cend() const { return end(); }

  /// Raw word view (kernel benchmarks and tests).
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }
  [[nodiscard]] std::uint64_t base() const { return base_; }

  /// Prints `{a, b, c}` (gtest failure messages).
  friend std::ostream& operator<<(std::ostream& os, const BlockSet& s);

 private:
  [[nodiscard]] std::size_t word_index(std::uint64_t v) const {
    return static_cast<std::size_t>((v - base_) >> 6);
  }
  /// One-past-the-end of the covered key range.
  [[nodiscard]] std::uint64_t range_end() const {
    return base_ + (static_cast<std::uint64_t>(words_.size()) << 6);
  }
  void ensure_covers(std::uint64_t v);
  void recount() { count_ = ops().popcount(words_.data(), words_.size()); }

  std::uint64_t base_ = 0;  ///< 64-aligned start of the covered key range
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;  ///< maintained eagerly; algebra ops recount
};

}  // namespace cico::kern
