#include "cico/kern/bitset.hpp"

#include <algorithm>
#include <ostream>

namespace cico::kern {

void BlockSet::ensure_covers(std::uint64_t v) {
  if (words_.empty()) {
    base_ = v & ~63ULL;
    words_.assign(1, 0);
    return;
  }
  if (v >= base_ && v < range_end()) return;
  // Grow toward the new key, with one word of slack on the growing side so
  // tight ascending/descending insert loops stay linear.
  const std::uint64_t aligned = v & ~std::uint64_t{63};
  const std::uint64_t new_base = std::min(base_, aligned);
  const std::uint64_t new_end = std::max(range_end(), aligned + 64);
  std::uint64_t lo = new_base;
  std::uint64_t hi = new_end;
  const std::uint64_t span = hi - lo;
  if (lo < base_ && lo >= span / 2) lo -= (span / 2) & ~63ULL;
  if (hi > range_end()) hi += (span / 2) & ~63ULL;
  std::vector<std::uint64_t> grown(static_cast<std::size_t>((hi - lo) >> 6),
                                   0);
  std::copy(words_.begin(), words_.end(),
            grown.begin() + static_cast<std::ptrdiff_t>((base_ - lo) >> 6));
  words_ = std::move(grown);
  base_ = lo;
}

BlockSet& BlockSet::operator|=(const BlockSet& o) {
  if (o.count_ == 0) return *this;
  // Cover o's occupied word range (trim leading/trailing zero words so a
  // sparse source does not balloon this set's range).
  const std::size_t first = ops().find_nonzero(o.words_.data(),
                                               o.words_.size());
  std::size_t last = o.words_.size();
  while (last > first && o.words_[last - 1] == 0) --last;
  const std::uint64_t key0 = o.base_ + (static_cast<std::uint64_t>(first) << 6);
  ensure_covers(key0);
  ensure_covers(o.base_ + (static_cast<std::uint64_t>(last) << 6) - 1);
  std::uint64_t* dst = words_.data() + ((key0 - base_) >> 6);
  ops().bor(dst, o.words_.data() + first, last - first);
  recount();
  return *this;
}

BlockSet& BlockSet::operator&=(const BlockSet& o) {
  if (count_ == 0) return *this;
  if (o.count_ == 0) {
    clear();
    return *this;
  }
  const std::uint64_t lo = std::max(base_, o.base_);
  const std::uint64_t hi = std::min(range_end(), o.range_end());
  if (hi <= lo) {
    clear();
    return *this;
  }
  const std::size_t lo_wi = static_cast<std::size_t>((lo - base_) >> 6);
  const std::size_t hi_wi = static_cast<std::size_t>((hi - base_) >> 6);
  std::fill(words_.begin(), words_.begin() + static_cast<std::ptrdiff_t>(lo_wi),
            0);
  std::fill(words_.begin() + static_cast<std::ptrdiff_t>(hi_wi), words_.end(),
            0);
  ops().band(words_.data() + lo_wi, o.words_.data() + ((lo - o.base_) >> 6),
             hi_wi - lo_wi);
  recount();
  return *this;
}

BlockSet& BlockSet::operator-=(const BlockSet& o) {
  if (count_ == 0 || o.count_ == 0) return *this;
  const std::uint64_t lo = std::max(base_, o.base_);
  const std::uint64_t hi = std::min(range_end(), o.range_end());
  if (hi <= lo) return *this;
  const std::size_t lo_wi = static_cast<std::size_t>((lo - base_) >> 6);
  const std::size_t hi_wi = static_cast<std::size_t>((hi - base_) >> 6);
  ops().bandnot(words_.data() + lo_wi,
                o.words_.data() + ((lo - o.base_) >> 6), hi_wi - lo_wi);
  recount();
  return *this;
}

bool operator==(const BlockSet& a, const BlockSet& b) {
  if (a.count_ != b.count_) return false;
  if (a.count_ == 0) return true;
  if (a.base_ == b.base_ && a.words_.size() == b.words_.size()) {
    return ops().equal(a.words_.data(), b.words_.data(), a.words_.size());
  }
  // Ranges differ: compare word-by-word over the union of the two ranges,
  // treating words outside either range as zero.
  const std::uint64_t lo = std::min(a.base_, b.base_);
  const std::uint64_t hi = std::max(a.range_end(), b.range_end());
  for (std::uint64_t w = lo; w < hi; w += 64) {
    const std::uint64_t wa =
        (w >= a.base_ && w < a.range_end()) ? a.words_[(w - a.base_) >> 6] : 0;
    const std::uint64_t wb =
        (w >= b.base_ && w < b.range_end()) ? b.words_[(w - b.base_) >> 6] : 0;
    if (wa != wb) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const BlockSet& s) {
  os << '{';
  bool first = true;
  for (const std::uint64_t v : s) {
    if (!first) os << ", ";
    first = false;
    os << v;
  }
  return os << '}';
}

}  // namespace cico::kern
