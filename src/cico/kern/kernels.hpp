// Runtime-dispatched word-level kernels (the cico::kern layer).
//
// Every data-parallel hot path in the simulator -- epoch set algebra over
// block bitsets (SW/SR/S, DRFS), cache-set tag scans, directive-plan
// application -- bottoms out in a handful of flat loops over uint64_t
// words.  This header names those loops once, as a function-pointer table,
// and picks the best implementation for the host exactly once at startup:
//
//   * scalar  -- portable reference, always available;
//   * avx2    -- 256-bit x86 kernels, selected when the CPU reports AVX2
//                (feature probe via __builtin_cpu_supports);
//   * neon    -- 128-bit AArch64 kernels (baseline on arm64).
//
// `CICO_SIMD=scalar|avx2|neon` overrides the probe (tests force levels to
// prove byte-identical results; ops deployments can pin scalar when
// chasing a miscompile).  An unavailable override falls back to the best
// supported level with a one-line stderr note.
//
// Contract: every level computes bit-identical results.  Dispatch is an
// implementation detail -- simulator output MUST NOT depend on it, and the
// kernel equivalence suite + the cross-dispatch byte-identity CI gate
// enforce that.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cico::kern {

enum class Level : std::uint8_t { Scalar = 0, AVX2 = 1, NEON = 2 };

/// One dispatch level's kernel table.  All pointers are non-null.
struct Ops {
  Level level = Level::Scalar;

  /// dst[i] |= src[i]  (set union)
  void (*bor)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  /// dst[i] &= src[i]  (set intersection)
  void (*band)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  /// dst[i] &= ~src[i]  (set subtraction)
  void (*bandnot)(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
  /// Total population count over a[0..n).
  std::uint64_t (*popcount)(const std::uint64_t* a, std::size_t n);
  /// a[0..n) == b[0..n)
  bool (*equal)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
  /// Smallest i with a[i] != 0, or n (iterate-set-bits word advance).
  std::size_t (*find_nonzero)(const std::uint64_t* a, std::size_t n);
  /// Smallest i with a[i] == key, or n (cache-set tag scan).
  std::size_t (*find_u64)(const std::uint64_t* a, std::size_t n,
                          std::uint64_t key);
};

/// The portable reference table (always available; the equivalence oracle).
[[nodiscard]] const Ops& scalar_ops();

/// True when `l` can run on this host.
[[nodiscard]] bool level_available(Level l);

[[nodiscard]] const char* level_name(Level l);

/// The active kernel table.  First call resolves the dispatch (CICO_SIMD
/// override, else feature probe); later calls are a single load.
[[nodiscard]] const Ops& ops();

[[nodiscard]] Level active_level();

/// Test hook: force a dispatch level at runtime.  Returns the level that
/// was active before.  Throws std::invalid_argument when `l` is not
/// available on this host.  Not thread-safe against concurrent kernel use;
/// call only from single-threaded test setup.
Level set_level(Level l);

}  // namespace cico::kern
