// Message taxonomy of the interconnect.
//
// Split out of network.hpp so layers below the network (the fault
// subsystem) can reason about message types without depending on the
// Network itself.
#pragma once

#include <cstdint>
#include <string_view>

namespace cico::net {

enum class MsgType : std::uint8_t {
  Request,       ///< GetS/GetX/upgrade request to the home directory
  DataReply,     ///< block data from home to requester
  Ack,           ///< dataless acknowledgement
  Invalidate,    ///< software handler invalidating a sharer
  Recall,        ///< software handler recalling an exclusive copy
  Writeback,     ///< dirty data returning to the home memory
  Directive,     ///< explicit CICO directive (check-in notification, etc.)
  PrefetchReq,   ///< non-blocking prefetch request
  PrefetchReply, ///< prefetch data reply
  Nack,          ///< negative ack (dropped prefetch, stale put)
  Count_
};

inline constexpr std::size_t kMsgTypeCount = static_cast<std::size_t>(MsgType::Count_);

[[nodiscard]] constexpr std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Request: return "request";
    case MsgType::DataReply: return "data_reply";
    case MsgType::Ack: return "ack";
    case MsgType::Invalidate: return "invalidate";
    case MsgType::Recall: return "recall";
    case MsgType::Writeback: return "writeback";
    case MsgType::Directive: return "directive";
    case MsgType::PrefetchReq: return "prefetch_req";
    case MsgType::PrefetchReply: return "prefetch_reply";
    case MsgType::Nack: return "nack";
    case MsgType::Count_: break;
  }
  return "unknown";
}

/// Inverse of msg_type_name; returns Count_ when the name is unknown.
[[nodiscard]] constexpr MsgType msg_type_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    const auto t = static_cast<MsgType>(i);
    if (msg_type_name(t) == name) return t;
  }
  return MsgType::Count_;
}

}  // namespace cico::net
