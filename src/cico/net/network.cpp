#include "cico/net/network.hpp"

// Network is header-only since the MsgType taxonomy moved to msg.hpp
// (msg_type_name is constexpr there); this TU anchors the library.
