#include "cico/net/network.hpp"

namespace cico::net {

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Request: return "request";
    case MsgType::DataReply: return "data_reply";
    case MsgType::Ack: return "ack";
    case MsgType::Invalidate: return "invalidate";
    case MsgType::Recall: return "recall";
    case MsgType::Writeback: return "writeback";
    case MsgType::Directive: return "directive";
    case MsgType::PrefetchReq: return "prefetch_req";
    case MsgType::PrefetchReply: return "prefetch_reply";
    case MsgType::Nack: return "nack";
    case MsgType::Count_: break;
  }
  return "unknown";
}

}  // namespace cico::net
