// Interconnect model.
//
// The CM-5's fat-tree is modelled as a uniform-latency network (the CICO
// cost model does the same: every remote hop costs the same).  The network
// charges latencies and counts messages by type; the Dir1SW protocol layers
// its transactions on top of these primitives.
//
// A FaultInjector may be attached (sim layer, --faults): droppable legs go
// through deliver(), which can lose, duplicate or delay a message; send()
// models legs the protocol treats as reliable (interior handler traffic)
// and applies duplication/delay only.  With no injector attached both
// paths reduce to the original lossless wire, bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "cico/common/cost.hpp"
#include "cico/common/effect_log.hpp"
#include "cico/common/stats.hpp"
#include "cico/common/types.hpp"
#include "cico/fault/fault.hpp"
#include "cico/net/msg.hpp"

namespace cico::net {

// EffectLog buckets per-type counts by raw index; keep the taxonomy inside
// its fixed-size table.
static_assert(kMsgTypeCount <= EffectLog::kMsgSlots,
              "grow EffectLog::kMsgSlots alongside MsgType");

/// Uniform-latency interconnect with per-type message accounting.
class Network {
 public:
  Network(const CostModel& cost, Stats& stats) : cost_(cost), stats_(&stats) {}

  /// Attach (or detach, with nullptr) a fault injector.  The injector is
  /// owned by the caller and must outlive the network.
  void set_fault_injector(fault::FaultInjector* f) { inj_ = f; }
  [[nodiscard]] fault::FaultInjector* fault_injector() const { return inj_; }

  /// One-way message latency.  Messages between a node and itself (the home
  /// directory slice is co-located) are free of network latency but still
  /// counted when they represent real protocol traffic.
  [[nodiscard]] Cycle latency(NodeId from, NodeId to) const {
    return from == to ? 0 : cost_.net_hop;
  }

  /// Sends a message at time `now`; returns its arrival time and counts it
  /// against the sending node.  This leg is modelled as reliable: faults
  /// may duplicate or delay it but never lose it.  `tag` identifies the
  /// subject of the message (the block, for protocol traffic) and feeds the
  /// injector's keyed draw; latency and accounting ignore it.
  Cycle send(NodeId from, NodeId to, MsgType t, Cycle now, Block tag = 0) {
    count(from, t);
    Cycle l = latency(from, to);
    if (inj_ != nullptr) {
      const auto f = inj_->fate_at(t, /*droppable=*/false, from, to, now, tag);
      if (f.duplicated) note_duplicate(from, t);
      l += f.delay;
    }
    return now + l;
  }

  /// Outcome of one droppable message leg.
  struct Delivery {
    Cycle at = 0;
    bool dropped = false;
  };

  /// Sends a droppable message.  Counted against the sender either way
  /// (the wire carried it; the fault ate it).
  Delivery deliver(NodeId from, NodeId to, MsgType t, Cycle now,
                   Block tag = 0) {
    count(from, t);
    if (inj_ == nullptr) return {now + latency(from, to), false};
    const auto f = inj_->fate_at(t, /*droppable=*/true, from, to, now, tag);
    if (f.dropped) {
      stats_->add(from, Stat::MsgDropped);
      return {now + latency(from, to), true};
    }
    if (f.duplicated) note_duplicate(from, t);
    return {now + latency(from, to) + f.delay, false};
  }

  /// Counts a message without computing a latency (for asynchronous
  /// traffic whose latency is off the critical path, e.g. eviction hints).
  void count(NodeId from, MsgType t) {
    stats_->add(from, Stat::Messages);
    if (EffectLog* lg = EffectLog::current(); lg != nullptr) {
      lg->msg_types[static_cast<std::size_t>(t)] += 1;
      return;
    }
    by_type_[static_cast<std::size_t>(t)] += 1;
  }

  /// Replays the diverted per-type counts of one boundary item.
  void apply(const EffectLog& lg) {
    for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
      by_type_[i] += lg.msg_types[i];
    }
  }

  [[nodiscard]] std::uint64_t sent(MsgType t) const {
    return by_type_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] std::uint64_t total_sent() const {
    std::uint64_t n = 0;
    for (auto v : by_type_) n += v;
    return n;
  }

 private:
  void note_duplicate(NodeId from, MsgType t) {
    // The duplicate is real traffic: counted as a message of its type.
    count(from, t);
    stats_->add(from, Stat::MsgDuplicated);
  }

  CostModel cost_;
  Stats* stats_;
  fault::FaultInjector* inj_ = nullptr;
  std::array<std::uint64_t, kMsgTypeCount> by_type_{};
};

}  // namespace cico::net
