// Interconnect model.
//
// The CM-5's fat-tree is modelled as a uniform-latency network (the CICO
// cost model does the same: every remote hop costs the same).  The network
// charges latencies and counts messages by type; the Dir1SW protocol layers
// its transactions on top of these primitives.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "cico/common/cost.hpp"
#include "cico/common/stats.hpp"
#include "cico/common/types.hpp"

namespace cico::net {

enum class MsgType : std::uint8_t {
  Request,       ///< GetS/GetX/upgrade request to the home directory
  DataReply,     ///< block data from home to requester
  Ack,           ///< dataless acknowledgement
  Invalidate,    ///< software handler invalidating a sharer
  Recall,        ///< software handler recalling an exclusive copy
  Writeback,     ///< dirty data returning to the home memory
  Directive,     ///< explicit CICO directive (check-in notification, etc.)
  PrefetchReq,   ///< non-blocking prefetch request
  PrefetchReply, ///< prefetch data reply
  Nack,          ///< negative ack (dropped prefetch, stale put)
  Count_
};

inline constexpr std::size_t kMsgTypeCount = static_cast<std::size_t>(MsgType::Count_);

[[nodiscard]] std::string_view msg_type_name(MsgType t);

/// Uniform-latency interconnect with per-type message accounting.
class Network {
 public:
  Network(const CostModel& cost, Stats& stats) : cost_(cost), stats_(&stats) {}

  /// One-way message latency.  Messages between a node and itself (the home
  /// directory slice is co-located) are free of network latency but still
  /// counted when they represent real protocol traffic.
  [[nodiscard]] Cycle latency(NodeId from, NodeId to) const {
    return from == to ? 0 : cost_.net_hop;
  }

  /// Sends a message at time `now`; returns its arrival time and counts it
  /// against the sending node.
  Cycle send(NodeId from, NodeId to, MsgType t, Cycle now) {
    count(from, t);
    return now + latency(from, to);
  }

  /// Counts a message without computing a latency (for asynchronous
  /// traffic whose latency is off the critical path, e.g. eviction hints).
  void count(NodeId from, MsgType t) {
    stats_->add(from, Stat::Messages);
    by_type_[static_cast<std::size_t>(t)] += 1;
  }

  [[nodiscard]] std::uint64_t sent(MsgType t) const {
    return by_type_[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] std::uint64_t total_sent() const {
    std::uint64_t n = 0;
    for (auto v : by_type_) n += v;
    return n;
  }

 private:
  CostModel cost_;
  Stats* stats_;
  std::array<std::uint64_t, kMsgTypeCount> by_type_{};
};

}  // namespace cico::net
