// Typed shared arrays: the benchmark-facing view of simulated shared
// memory.
//
// The simulator is execution-driven: coherence state lives in the cache
// models, but the DATA lives right here in host memory, so benchmarks
// compute real results that tests can verify.  Every element access first
// reports itself to the simulator (charging hit/miss cycles and updating
// protocol state) and then performs the actual load/store.  Elements are
// relaxed atomics: a data race in the simulated program (like the paper's
// matrix-multiply example, section 4.4, which Cachier *flags*) is a benign
// value race here, never host UB.
//
// Construction allocates a labelled region from the machine's SharedHeap;
// the label is the paper's "labelled region of memory mapped onto program
// data structures" (section 4.3).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "cico/sim/machine.hpp"

namespace cico::sim {

template <class T>
class SharedArray {
  static_assert(std::atomic<T>::is_always_lock_free,
                "element type must be lock-free atomic");

 public:
  /// Allocates `n` elements labelled `label`.  `regular=false` marks a
  /// pointer-style region (excluded from prefetch planning).
  SharedArray(Machine& m, std::string label, std::size_t n, bool regular = true)
      : base_(m.heap().alloc(n * sizeof(T), std::move(label), regular)),
        data_(std::make_unique<std::atomic<T>[]>(n)),
        n_(n) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Addr base() const { return base_; }
  [[nodiscard]] Addr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  [[nodiscard]] std::uint64_t bytes() const { return n_ * sizeof(T); }

  /// Simulated load.
  [[nodiscard]] T ld(Proc& p, std::size_t i, PcId pc) const {
    p.ld(addr_of(i), sizeof(T), pc);
    return data_[i].load(std::memory_order_relaxed);
  }

  /// Simulated store.
  void st(Proc& p, std::size_t i, T v, PcId pc) {
    p.st(addr_of(i), sizeof(T), pc);
    data_[i].store(v, std::memory_order_relaxed);
  }

  /// Non-simulated access, for initialization before run() and for
  /// verification afterwards.
  [[nodiscard]] T raw(std::size_t i) const {
    return data_[i].load(std::memory_order_relaxed);
  }
  void set_raw(std::size_t i, T v) {
    data_[i].store(v, std::memory_order_relaxed);
  }

 private:
  Addr base_;
  std::unique_ptr<std::atomic<T>[]> data_;
  std::size_t n_;
};

/// Row-major 2-D shared array.
template <class T>
class SharedArray2 {
 public:
  SharedArray2(Machine& m, std::string label, std::size_t rows,
               std::size_t cols, bool regular = true)
      : flat_(m, std::move(label), rows * cols, regular),
        rows_(rows),
        cols_(cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] Addr base() const { return flat_.base(); }
  [[nodiscard]] std::uint64_t bytes() const { return flat_.bytes(); }
  [[nodiscard]] Addr addr_of(std::size_t i, std::size_t j) const {
    return flat_.addr_of(i * cols_ + j);
  }
  /// Address range of one row (convenient for range directives).
  [[nodiscard]] Addr row_addr(std::size_t i) const { return addr_of(i, 0); }
  [[nodiscard]] std::uint64_t row_bytes() const { return cols_ * sizeof(T); }

  [[nodiscard]] T ld(Proc& p, std::size_t i, std::size_t j, PcId pc) const {
    return flat_.ld(p, i * cols_ + j, pc);
  }
  void st(Proc& p, std::size_t i, std::size_t j, T v, PcId pc) {
    flat_.st(p, i * cols_ + j, v, pc);
  }
  [[nodiscard]] T raw(std::size_t i, std::size_t j) const {
    return flat_.raw(i * cols_ + j);
  }
  void set_raw(std::size_t i, std::size_t j, T v) {
    flat_.set_raw(i * cols_ + j, v);
  }

 private:
  SharedArray<T> flat_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace cico::sim
