#include "cico/sim/shared_heap.hpp"

#include <algorithm>
#include <stdexcept>

namespace cico::sim {

Addr SharedHeap::alloc(std::uint64_t bytes, std::string label, bool regular) {
  if (bytes == 0) throw std::invalid_argument("SharedHeap::alloc: zero bytes");
  if (by_label(label) != nullptr) {
    throw std::invalid_argument("SharedHeap::alloc: duplicate label " + label);
  }
  const Addr base = next_;
  const std::uint64_t aligned =
      (bytes + block_bytes_ - 1) / block_bytes_ * block_bytes_;
  next_ += aligned;
  regions_.push_back(Region{std::move(label), base, bytes, regular});
  return base;
}

const Region* SharedHeap::find(Addr a) const {
  // Regions are sorted by base; binary search for the last base <= a.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr addr, const Region& r) { return addr < r.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  return it->contains(a) ? &*it : nullptr;
}

const Region* SharedHeap::by_label(std::string_view label) const {
  for (const Region& r : regions_) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

std::vector<trace::RegionLabel> SharedHeap::trace_labels() const {
  std::vector<trace::RegionLabel> out;
  out.reserve(regions_.size());
  for (const Region& r : regions_) {
    out.push_back(trace::RegionLabel{r.label, r.base, r.bytes, r.regular});
  }
  return out;
}

std::uint64_t SharedHeap::allocated() const {
  std::uint64_t total = 0;
  for (const Region& r : regions_) total += r.bytes;
  return total;
}

}  // namespace cico::sim
