// Simulated shared-address-space allocator with labelled regions.
//
// The paper requires the programmer to "label all important shared data
// structures" with a macro that names a contiguous region of shared memory
// (section 4.3); Cachier uses the labels to map raw trace addresses back
// to program variables.  SharedHeap is that mechanism: every allocation is
// a named region, and lookups go both ways (address -> region, label ->
// region).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cico/common/types.hpp"
#include "cico/trace/trace.hpp"

namespace cico::sim {

struct Region {
  std::string label;
  Addr base = 0;
  std::uint64_t bytes = 0;
  /// Loop-affine access pattern?  Irregular (pointer-based) regions are
  /// excluded from prefetch planning, mirroring the paper's observation
  /// that prefetching failed for Barnes' pointer structures (section 6).
  bool regular = true;

  [[nodiscard]] bool contains(Addr a) const {
    return a >= base && a < base + bytes;
  }
};

class SharedHeap {
 public:
  SharedHeap(Addr base, std::uint32_t block_bytes)
      : next_(base), block_bytes_(block_bytes) {}

  /// Allocates a block-aligned labelled region and returns its base.
  Addr alloc(std::uint64_t bytes, std::string label, bool regular = true);

  /// Region containing `a`, or nullptr.
  [[nodiscard]] const Region* find(Addr a) const;

  /// Region with the given label, or nullptr.
  [[nodiscard]] const Region* by_label(std::string_view label) const;

  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

  /// Labels in the trace serialization format.
  [[nodiscard]] std::vector<trace::RegionLabel> trace_labels() const;

  /// Total bytes allocated.
  [[nodiscard]] std::uint64_t allocated() const;

 private:
  Addr next_;
  std::uint32_t block_bytes_;
  std::vector<Region> regions_;  // sorted by base (allocation order)
};

}  // namespace cico::sim
