// Execution-driven multiprocessor simulator (the WWT substitute).
//
// Each simulated node's program runs on its own host thread and keeps a
// local virtual clock.  Threads execute freely inside a conservative
// window of `quantum` cycles: shared-data cache HITS are charged inline
// with no synchronization; MISSES, explicit directives, barriers and locks
// park the thread.  When every thread is parked, the last arrival runs the
// *boundary phase*: all pending operations are serviced through the Dir1SW
// directory in (virtual time, node) order, making every reported metric
// deterministic regardless of host scheduling.  This is the same
// quantum-based conservative synchronization WWT used on the CM-5.
//
// The engine also implements the measurement hooks the paper needs:
//   * trace mode -- records every miss and flushes all shared-data caches
//     at each barrier (section 3.3), producing the Fig. 3 trace;
//   * directive plans -- Cachier's output for compiled programs, applied
//     automatically at epoch boundaries and access sites (see plan.hpp);
//   * explicit CICO directives -- for hand-annotated programs and for the
//     MiniPar interpreter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cico/common/effect_log.hpp"
#include "cico/common/pc_registry.hpp"
#include "cico/common/stats.hpp"
#include "cico/common/types.hpp"
#include "cico/kern/stampset.hpp"
#include "cico/mem/cache.hpp"
#include "cico/net/network.hpp"
#include "cico/obs/collector.hpp"
#include "cico/proto/dir1sw.hpp"
#include "cico/proto/dirn.hpp"
#include "cico/sim/boundary_pool.hpp"
#include "cico/sim/config.hpp"
#include "cico/sim/plan.hpp"
#include "cico/sim/shared_heap.hpp"
#include "cico/trace/trace.hpp"

namespace cico::sim {

class Machine;

/// Per-node runtime handle: everything a simulated program may do.
/// A Proc is only valid inside the body function passed to Machine::run.
class Proc {
 public:
  [[nodiscard]] NodeId id() const { return node_; }
  [[nodiscard]] std::uint32_t nprocs() const;
  [[nodiscard]] Cycle now() const;
  [[nodiscard]] EpochId epoch() const;

  /// Charge local (non-shared) computation.
  void compute(Cycle cycles);

  /// Shared-data load / store of `size` bytes at word address `a`.
  void ld(Addr a, std::uint32_t size, PcId pc);
  void st(Addr a, std::uint32_t size, PcId pc);

  /// Global barrier (ends the current epoch).
  void barrier(PcId pc = kNoPc);

  /// Spin lock keyed by shared address (the paper's `lock C[i,j]`, s.5).
  void lock(Addr a);
  void unlock(Addr a);

  // --- CICO directives (section 2.1) -------------------------------------
  void check_out_x(Addr a, std::uint64_t bytes);
  void check_out_s(Addr a, std::uint64_t bytes);
  void check_in(Addr a, std::uint64_t bytes);
  void prefetch_x(Addr a, std::uint64_t bytes);
  void prefetch_s(Addr a, std::uint64_t bytes);
  /// EXTENSION (KSR-1 style, paper section 1): write back + push Shared
  /// copies of exclusively-held blocks to their previous holders.
  void post_store(Addr a, std::uint64_t bytes);

 private:
  friend class Machine;
  Proc(Machine* m, NodeId n) : m_(m), node_(n) {}
  Machine* m_;
  NodeId node_;
};

/// Thrown when the simulated program deadlocks (mismatched barriers,
/// lock cycles) or when the liveness watchdog detects zero virtual-time
/// progress across SimConfig::watchdog_rounds boundary rounds.
class SimDeadlock : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an injected message loss exhausts the retry budget
/// (FaultSpec::max_retries) before the operation completes.
class ProtocolTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown in paranoid mode (SimConfig::audit_invariants) when the
/// per-epoch audit finds a directory/cache divergence.
class InvariantViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an external cancel flag (Machine::set_cancel_flag) is
/// observed at a window boundary: a job deadline expired or the client
/// that asked for the run went away.  Cooperative -- the run unwinds
/// through the same abort path as SimDeadlock, so every node thread
/// parks, joins, and the Machine is left safe to destroy.
class SimCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Machine {
 public:
  explicit Machine(SimConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const SimConfig& config() const { return cfg_; }
  [[nodiscard]] SharedHeap& heap() { return heap_; }
  [[nodiscard]] const SharedHeap& heap() const { return heap_; }
  [[nodiscard]] PcRegistry& pcs() { return pcs_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] proto::Protocol& directory() { return *dir_; }

  /// Enable trace collection (implies barrier cache flushes when
  /// cfg.trace_mode is set; the writer outlives the run).
  void set_trace_writer(trace::TraceWriter* w) { tracer_ = w; }

  /// Install a Cachier directive plan for this run (may be null).
  void set_plan(const DirectivePlan* p) { plan_ = p; }

  /// Cooperative cancellation: when `f` is non-null, every boundary round
  /// (at most one conservative window, cfg.quantum cycles, apart) checks
  /// it and aborts the run with SimCancelled once it reads true.  The
  /// flag may be set from any thread at any time (the daemon's deadline /
  /// disconnect monitor does); the Machine only ever reads it.
  void set_cancel_flag(const std::atomic<bool>* f) { cancel_ = f; }

  /// Attach an observability collector (may be null; the collector must
  /// outlive the run).  Callbacks fire on simulated virtual time in a
  /// deterministic, boundary-thread-independent order: events raised on
  /// shard workers divert through the per-item EffectLog and are replayed
  /// canonically, like every other shared-state effect.
  void set_observer(obs::Collector* o) { obs_ = o; }

  /// Runs `body` on every node to completion.  May be called once.
  void run(const std::function<void(Proc&)>& body);

  /// Execution time = max node completion time (valid after run()).
  [[nodiscard]] Cycle exec_time() const { return final_time_; }

  /// Number of barrier episodes completed.
  [[nodiscard]] EpochId epochs_completed() const { return global_epoch_; }

  /// Per-node cache (tests / invariant checks).
  [[nodiscard]] const mem::Cache& cache_of(NodeId n) const;

  /// Attached fault injector, or nullptr when faults are disabled
  /// (soak reports read its telemetry after run()).
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  /// Effective boundary-phase parallelism: cfg.boundary_threads when the
  /// protocol is shardable, else 1 (serial fallback).
  [[nodiscard]] std::uint32_t boundary_workers() const {
    return pool_ != nullptr ? pool_->workers() : 1;
  }

  /// Host wall-clock of the whole run and of its boundary phase (valid
  /// after run()).  Nondeterministic by nature: report on stderr or in
  /// benches, never in deterministic output.
  [[nodiscard]] double host_total_seconds() const { return host_total_sec_; }
  [[nodiscard]] double host_boundary_seconds() const {
    return host_boundary_sec_;
  }

 private:
  friend class Proc;

  struct AsyncOp {
    enum class Kind : std::uint8_t { Put, Prefetch, Unlock, PostStore };
    Cycle time = 0;
    std::uint32_t seq = 0;
    Kind kind = Kind::Put;
    Block block = 0;
    bool dirty = false;
    bool explicit_ci = false;
    bool exclusive = false;  // prefetch mode
    Addr lock_addr = 0;
  };

  struct NodeCtx {
    explicit NodeCtx(const mem::CacheGeometry& g) : cache(g) {}

    enum class Wait : std::uint8_t {
      Running,   ///< executing user code
      Ready,     ///< parked, nothing pending; resume when window allows
      Mem,       ///< parked on a shared-memory miss
      Directive, ///< parked on a blocking check-out range
      Lock,      ///< parked waiting for a lock grant
      Barrier,   ///< parked at a barrier
      Done,      ///< program body returned
    };

    Cycle now = 0;
    EpochId epoch = 0;
    Wait wait = Wait::Running;
    bool resumable = false;
    bool lock_queued = false;  ///< lock request already sits in a queue

    // Blocking-op payload (valid when wait is Mem/Directive/Lock).
    Addr op_addr = 0;
    std::uint64_t op_bytes = 0;
    std::uint32_t op_size = 0;
    PcId op_pc = kNoPc;
    bool op_write = false;
    Cycle op_time = 0;
    DirectiveKind op_dir = DirectiveKind::CheckOutX;
    PcId barrier_pc = kNoPc;
    Cycle op_issue = 0;             ///< original issue time (stall accounting)
    std::uint32_t op_attempts = 0;  ///< retries performed for the pending op

    std::uint32_t prefetch_nacks = 0;  ///< consecutive failed prefetches
    bool prefetch_muted = false;       ///< engine throttled until next epoch

    std::vector<AsyncOp> async;
    std::uint32_t async_seq = 0;

    mem::Cache cache;
    std::unordered_map<Block, Cycle> prefetch_ready;
    Cycle prefetch_last_done = 0;  ///< bandwidth pacing of prefetch fills
    std::thread thread;
  };

  struct LockState {
    bool held = false;
    NodeId holder = kInvalidNode;
    struct Waiter {
      Cycle time;
      NodeId node;
    };
    std::vector<Waiter> queue;
  };

  class CacheCtl final : public proto::CacheControl {
   public:
    explicit CacheCtl(Machine* m) : m_(m) {}
    [[nodiscard]] mem::LineState peek(NodeId n, Block b) const override;
    void invalidate(NodeId n, Block b) override;
    void downgrade(NodeId n, Block b) override;
    void push_shared(NodeId n, Block b) override;

   private:
    Machine* m_;
  };

  // --- node-thread side ----------------------------------------------------
  void access(NodeId n, Addr a, std::uint32_t size, bool write, PcId pc);
  void compute(NodeId n, Cycle cycles);
  void do_barrier(NodeId n, PcId pc);
  void do_lock(NodeId n, Addr a);
  void do_unlock(NodeId n, Addr a);
  void directive_range(NodeId n, DirectiveKind kind, Addr a, std::uint64_t bytes);
  void checkin_inline(NodeCtx& c, NodeId n, Addr a, std::uint64_t bytes);
  void poststore_inline(NodeCtx& c, NodeId n, Addr a, std::uint64_t bytes);
  void prefetch_inline(NodeCtx& c, NodeId n, bool exclusive, Addr a,
                       std::uint64_t bytes);
  void after_access(NodeCtx& c, NodeId n, Block b, bool write);
  void consume_prefetch(NodeCtx& c, NodeId n, Block b);
  void maybe_window_park(NodeCtx& c);
  void park(NodeCtx& c, NodeCtx::Wait w);

  // --- boundary phase (runs with all threads parked, under mu_) ------------

  /// One pending boundary operation in canonical (time, node, seq) order.
  struct Item {
    Cycle time;
    NodeId node;
    std::uint32_t seq;
    int async_idx;  // -1 => the node's blocking op
  };

  /// Sharding verdict for one Item, derived from current machine state.
  struct ItemClass {
    bool skip = false;       ///< no-op (e.g. lock already granted); elide
    bool serial = true;      ///< must run on the coordinator, batch flushed
    bool cache_mut = false;  ///< mutates the issuing node's cache/prefetch state
    bool has_victim = false;
    bool has_block = false;  ///< block/home are meaningful (directory footprint)
    bool has_lock = false;   ///< lock_addr is meaningful (lock-table footprint)
    Block block = 0;   ///< primary footprint (claimed for the batch)
    Block victim = 0;  ///< predicted eviction target (claimed too)
    Addr lock_addr = 0;  ///< lock-table slot the item grabs or releases
    NodeId home = 0;   ///< shard key: home_of(block) or lock_home(lock_addr)
    /// Remote caches the handler would mutate (recall / invalidation
    /// targets); each is claimed for the batch like a cache-mut node.
    proto::Touched remote;
  };

  void boundary();
  void resume_window(Cycle min_now);
  void process_ops();
  /// Executes one item exactly as the original serial loop did (including
  /// the push-eviction drain for async ops).
  void execute_item(const Item& it);
  [[nodiscard]] ItemClass classify_item(const Item& it) const;
  /// Conflict-aware batched execution across the worker pool; equivalent
  /// to executing items_ serially in canonical order (docs/boundary_sharding.md).
  void process_ops_sharded();
  /// Runs the accumulated batch (inline when tiny, else on the pool with
  /// per-item effect logs replayed canonically) and resets claim state.
  void flush_batch();
  void service_mem(NodeCtx& c, NodeId n);
  void service_checkout_range(NodeCtx& c, NodeId n);
  Cycle do_checkout(NodeCtx& c, NodeId n, DirectiveKind kind, BlockRun run,
                    Cycle t);
  void service_prefetch(NodeCtx& c, NodeId n, Block b, bool exclusive, Cycle t);
  void grant_or_queue_lock(NodeCtx& c, NodeId n);
  void release_lock(Addr a, NodeId n, Cycle t);
  bool try_complete_barrier();
  void apply_epoch_start(NodeId n, EpochId e);
  void apply_epoch_end(NodeId n, EpochId e);
  void insert_line(NodeCtx& c, NodeId n, Block b, mem::LineState s, Cycle t);
  void record_trace_miss(NodeCtx& c, NodeId n, trace::MissKind kind);

  // --- observability (divert-or-deliver, like record_trace_miss) -----------
  void record_obs_trap(NodeId n, Block b, Cycle t0, Cycle t1,
                       std::uint32_t invalidations, EpochId epoch);
  void record_obs_prefetch(NodeId n, Block b, Cycle issue, Cycle ready,
                           EpochId epoch);

  // --- fault handling (boundary side) --------------------------------------
  /// Backoff before retry number `attempt` (exponential, capped).
  [[nodiscard]] Cycle retry_backoff(std::uint32_t attempt) const;
  /// Budget check for fire-and-forget retries that cannot park the node
  /// (puts, post-stores, check-out ranges); unbounded specs are capped.
  [[nodiscard]] bool inline_retry_exhausted(std::uint32_t attempt) const;
  /// put() retried until it lands; aborts with ProtocolTimeout on budget
  /// exhaustion.  The ONLY safe way to issue a put under fault injection:
  /// the cache line is already gone, so a silently lost put would leave
  /// the directory permanently ahead of the cache.
  void reliable_put(NodeId n, Block b, bool dirty, Cycle t, bool explicit_ci);
  void reliable_post_store(NodeId n, Block b, Cycle t);
  /// Records the first abort cause; parked threads observe `aborted_` and
  /// unwind, run() rethrows `abort_error_`.  Never throws (a throw out of
  /// the boundary phase would strand every parked thread).
  void abort_run(std::exception_ptr e, std::string msg);
  /// Paranoid-mode audit; aborts with InvariantViolation on divergence.
  /// Per-epoch audits run memoized (only blocks touched since the last
  /// clean audit are rechecked); `full` forces the exhaustive walk, used
  /// as the end-of-run backstop and when SimConfig::audit_memo is off.
  void audit_now(const std::string& when, bool full);
  [[nodiscard]] std::string wait_dump() const;

  SimConfig cfg_;
  PcRegistry pcs_;
  Stats stats_;
  net::Network net_;
  CacheCtl cachectl_;
  std::unique_ptr<proto::Protocol> dir_;
  std::unique_ptr<fault::FaultInjector> injector_;
  SharedHeap heap_;
  std::vector<std::unique_ptr<NodeCtx>> ctxs_;
  /// Lock table, partitioned like directory slices (lock_home(a) == a %
  /// nodes): a shard worker may grant or release a lock without touching
  /// any other worker's slice, which is what lets Lock/Unlock items run
  /// batched instead of forcing a serial flush (docs/boundary_sharding.md).
  std::vector<std::unordered_map<Addr, LockState>> lock_slices_;
  [[nodiscard]] NodeId lock_home(Addr a) const {
    return static_cast<NodeId>(a % cfg_.nodes);
  }
  LockState& lock_state(Addr a) { return lock_slices_[lock_home(a)][a]; }
  /// Evictions caused by push_shared while the directory is mid-call;
  /// drained after the triggering transaction returns (re-entrancy guard).
  std::vector<std::pair<NodeId, mem::Cache::Eviction>> pending_push_evicts_;

  trace::TraceWriter* tracer_ = nullptr;
  const DirectivePlan* plan_ = nullptr;
  obs::Collector* obs_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;

  // --- sharded boundary phase (tentpole) -----------------------------------
  std::unique_ptr<BoundaryPool> pool_;  ///< null => original serial loop
  std::vector<Item> items_;             ///< hoisted per-round item buffer
  std::vector<EffectLog> logs_;         ///< per-item side-effect logs
  std::vector<std::uint32_t> batch_;    ///< item indices of the open batch
  std::vector<std::vector<std::uint32_t>> shard_items_;  ///< per-shard slices
  /// Claim sets of the open batch.  Generation-stamped (kern::StampSet):
  /// resetting between batches is a counter bump, not a hash-table or
  /// bitset wipe, which matters because flush_batch runs per conflict.
  kern::StampSet claimed_;        ///< blocks owned by the open batch
  kern::StampSet lock_claimed_;   ///< lock-table slots owned by the batch
  std::vector<std::uint8_t> node_mut_;  ///< node already has a cache-mut item

  double host_total_sec_ = 0.0;
  double host_boundary_sec_ = 0.0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint32_t active_ = 0;
  Cycle window_end_ = 0;
  EpochId global_epoch_ = 0;
  bool aborted_ = false;
  std::string abort_msg_;
  std::exception_ptr abort_error_;
  std::exception_ptr first_error_;
  bool ran_ = false;
  Cycle final_time_ = 0;
};

}  // namespace cico::sim
