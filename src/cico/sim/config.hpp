// Top-level simulator configuration.  Paper defaults (section 6): 32
// nodes, 256 KB 4-way caches with 32-byte blocks, Dir1SW protocol.
#pragma once

#include "cico/common/cost.hpp"
#include "cico/common/types.hpp"
#include "cico/fault/fault.hpp"
#include "cico/mem/geometry.hpp"

namespace cico::sim {

enum class ProtocolKind : std::uint8_t {
  Dir1SW,      ///< the paper's protocol: HW pointer+counter, software traps
  DirNFullMap, ///< all-hardware full-map baseline (DASH/Alewife style)
};

struct SimConfig {
  std::uint32_t nodes = 32;
  ProtocolKind protocol = ProtocolKind::Dir1SW;
  mem::CacheGeometry cache{};
  CostModel cost{};

  /// Conservative-window quantum (cycles).  WWT synchronised targets every
  /// network-latency quantum; we default to the two-hop miss latency.
  Cycle quantum = 120;

  /// Trace mode: record every miss and flush all shared-data caches at
  /// each barrier (section 3.3 -- improves trace quality since only misses
  /// appear in the trace).  Leave off for measurement runs.
  bool trace_mode = false;

  /// Base address of the simulated shared heap.
  Addr heap_base = 0x1000;

  /// Fault-injection spec (--faults).  The default spec injects nothing
  /// and leaves every fast path untouched.
  fault::FaultSpec faults{};

  /// Paranoid mode (--paranoid): run the protocol's check_invariants() at
  /// every epoch boundary and abort with InvariantViolation on the first
  /// directory/cache divergence.
  bool audit_invariants = false;

  /// Memoize paranoid audits (--no-audit-memo disables): per-epoch audits
  /// recheck only blocks whose directory entries were touched since the
  /// last clean audit; the end-of-run audit always does the full walk as
  /// a backstop.  Pure performance knob -- detected violations and all
  /// deterministic output are identical either way.
  bool audit_memo = true;

  /// Liveness watchdog: abort with SimDeadlock after this many consecutive
  /// boundary rounds with zero virtual-time progress (0 disables it --
  /// a 100% drop rate then livelocks, so leave it on).
  std::uint32_t watchdog_rounds = 32;

  /// Host worker threads for the boundary phase (--boundary-threads).
  /// Directory service is sharded by home node and merged through ordered
  /// effect logs, so results are byte-identical for any value; 1 (the
  /// default) runs the original inline loop.  Only protocols reporting
  /// shardable() parallelize; others fall back to 1.
  std::uint32_t boundary_threads = 1;

  /// Smallest batch worth dispatching to the worker pool; smaller batches
  /// run inline on the coordinator (identical results either way -- this
  /// only tunes fork/join amortization).  Tests lower it to exercise the
  /// parallel merge path on small workloads.
  std::uint32_t boundary_batch_min = 4;
};

}  // namespace cico::sim
