// Top-level simulator configuration.  Paper defaults (section 6): 32
// nodes, 256 KB 4-way caches with 32-byte blocks, Dir1SW protocol.
#pragma once

#include "cico/common/cost.hpp"
#include "cico/common/types.hpp"
#include "cico/mem/geometry.hpp"

namespace cico::sim {

enum class ProtocolKind : std::uint8_t {
  Dir1SW,      ///< the paper's protocol: HW pointer+counter, software traps
  DirNFullMap, ///< all-hardware full-map baseline (DASH/Alewife style)
};

struct SimConfig {
  std::uint32_t nodes = 32;
  ProtocolKind protocol = ProtocolKind::Dir1SW;
  mem::CacheGeometry cache{};
  CostModel cost{};

  /// Conservative-window quantum (cycles).  WWT synchronised targets every
  /// network-latency quantum; we default to the two-hop miss latency.
  Cycle quantum = 120;

  /// Trace mode: record every miss and flush all shared-data caches at
  /// each barrier (section 3.3 -- improves trace quality since only misses
  /// appear in the trace).  Leave off for measurement runs.
  bool trace_mode = false;

  /// Base address of the simulated shared heap.
  Addr heap_base = 0x1000;
};

}  // namespace cico::sim
