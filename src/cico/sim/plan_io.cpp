#include "cico/sim/plan_io.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cico::sim {

namespace {

/// Plans iterate in hash order internally; serialize in sorted order so
/// the output is stable.
std::vector<std::pair<std::pair<NodeId, EpochId>, const NodeEpochDirectives*>>
sorted_entries(const DirectivePlan& plan) {
  // DirectivePlan does not expose iteration; rebuild the key list by
  // probing.  (Entries are dense in practice: epochs 0..E, nodes 0..N.)
  // To keep the interface honest we extend DirectivePlan with for_each.
  std::vector<std::pair<std::pair<NodeId, EpochId>, const NodeEpochDirectives*>>
      out;
  plan.for_each([&](NodeId n, EpochId e, const NodeEpochDirectives& d) {
    out.emplace_back(std::pair{n, e}, &d);
  });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace

void save_plan(const DirectivePlan& plan, std::ostream& os) {
  os << "cico-plan v1\n";
  for (const auto& [key, d] : sorted_entries(plan)) {
    os << "E " << key.first << ' ' << key.second << '\n';
    for (const auto& pd : d->at_start) {
      os << "S " << static_cast<int>(pd.kind) << ' ' << pd.run.first << ' '
         << pd.run.last << '\n';
    }
    for (const auto& pd : d->at_end) {
      os << "T " << static_cast<int>(pd.kind) << ' ' << pd.run.first << ' '
         << pd.run.last << '\n';
    }
    // BlockSet iteration is ascending, so the serialization stays sorted
    // without materializing a side vector.
    for (Block b : d->fetch_exclusive) os << "X " << b << '\n';
    for (Block b : d->checkin_after_access) os << "A " << b << '\n';
    for (Block b : d->checkin_after_write) os << "W " << b << '\n';
  }
}

namespace {

/// Parse errors carry the 1-based line number and the offending text, so a
/// truncated or hand-mangled plan points straight at its first bad line.
[[noreturn]] void plan_error(std::size_t lineno, const std::string& line,
                             const char* what) {
  std::ostringstream os;
  os << "plan: " << what << " at line " << lineno << ": '" << line << "'";
  throw std::runtime_error(os.str());
}

}  // namespace

DirectivePlan load_plan(std::istream& is) {
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(is, line) || line != "cico-plan v1") {
    plan_error(1, line, "bad header (expected 'cico-plan v1')");
  }
  DirectivePlan plan;
  NodeEpochDirectives* cur = nullptr;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'E') {
      NodeId n = 0;
      EpochId e = 0;
      ls >> n >> e;
      if (ls.fail()) plan_error(lineno, line, "malformed entry");
      cur = &plan.at(n, e);
      continue;
    }
    if (cur == nullptr) plan_error(lineno, line, "record before entry");
    switch (tag) {
      case 'S':
      case 'T': {
        int kind = 0;
        BlockRun run;
        ls >> kind >> run.first >> run.last;
        if (ls.fail() || kind < 0 ||
            kind > static_cast<int>(DirectiveKind::PrefetchS)) {
          plan_error(lineno, line, "malformed directive");
        }
        auto& vec = tag == 'S' ? cur->at_start : cur->at_end;
        vec.push_back({static_cast<DirectiveKind>(kind), run});
        break;
      }
      case 'X':
      case 'A':
      case 'W': {
        Block b = 0;
        ls >> b;
        if (ls.fail()) plan_error(lineno, line, "malformed block");
        if (tag == 'X') cur->fetch_exclusive.insert(b);
        else if (tag == 'A') cur->checkin_after_access.insert(b);
        else cur->checkin_after_write.insert(b);
        break;
      }
      default:
        plan_error(lineno, line, "unknown tag");
    }
  }
  return plan;
}

}  // namespace cico::sim
