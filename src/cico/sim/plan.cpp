#include "cico/sim/plan.hpp"

#include <sstream>

namespace cico::sim {

const char* directive_kind_name(DirectiveKind k) {
  switch (k) {
    case DirectiveKind::CheckOutX: return "check_out_X";
    case DirectiveKind::CheckOutS: return "check_out_S";
    case DirectiveKind::CheckIn: return "check_in";
    case DirectiveKind::PrefetchX: return "prefetch_X";
    case DirectiveKind::PrefetchS: return "prefetch_S";
  }
  return "unknown";
}

std::uint64_t DirectivePlan::total_directives() const {
  std::uint64_t n = 0;
  for (const auto& [k, d] : map_) {
    for (const auto& pd : d.at_start) n += pd.run.count();
    for (const auto& pd : d.at_end) n += pd.run.count();
    n += d.fetch_exclusive.size();
    n += d.checkin_after_access.size();
    n += d.checkin_after_write.size();
  }
  return n;
}

std::string DirectivePlan::summary() const {
  std::uint64_t start = 0, end = 0, fx = 0, cia = 0;
  for (const auto& [k, d] : map_) {
    for (const auto& pd : d.at_start) start += pd.run.count();
    for (const auto& pd : d.at_end) end += pd.run.count();
    fx += d.fetch_exclusive.size();
    cia += d.checkin_after_access.size() + d.checkin_after_write.size();
  }
  std::ostringstream os;
  os << "plan{entries=" << map_.size() << " epoch_start_blocks=" << start
     << " epoch_end_blocks=" << end << " fetch_exclusive=" << fx
     << " checkin_after_access=" << cia << "}";
  return os.str();
}

}  // namespace cico::sim
