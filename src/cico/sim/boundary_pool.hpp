// Worker pool for the sharded boundary phase.
//
// A deliberately small pool: workers block on a condition variable between
// batches (no spinning -- boundary batches are sparse and the host may be
// oversubscribed), jobs are claimed by atomic index under the pool mutex,
// and the coordinator thread participates so `workers` threads of work need
// only `workers - 1` extra host threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cico::sim {

class BoundaryPool {
 public:
  /// `workers` is the total parallelism (>= 2); the pool spawns
  /// `workers - 1` host threads and the caller of run() supplies the rest.
  explicit BoundaryPool(std::uint32_t workers);
  ~BoundaryPool();

  BoundaryPool(const BoundaryPool&) = delete;
  BoundaryPool& operator=(const BoundaryPool&) = delete;

  [[nodiscard]] std::uint32_t workers() const { return workers_; }

  /// Runs fn(0) .. fn(jobs-1) across the pool and returns when all have
  /// finished.  fn must tolerate concurrent calls for distinct indices.
  /// Not reentrant: one run() at a time.
  void run(std::uint32_t jobs, const std::function<void(std::uint32_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new batch is available
  std::condition_variable done_cv_;  ///< coordinator: batch complete
  const std::function<void(std::uint32_t)>* fn_ = nullptr;
  std::uint32_t jobs_ = 0;
  std::uint32_t next_ = 0;
  std::uint32_t done_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::uint32_t workers_;
  std::vector<std::thread> threads_;
};

}  // namespace cico::sim
