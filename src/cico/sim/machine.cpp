#include "cico/sim/machine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cico::sim {

using mem::LineState;

// ---------------------------------------------------------------------------
// CacheCtl: the software protocol handler's window into remote caches.
// Only invoked during the boundary phase, when every node thread is parked.
// ---------------------------------------------------------------------------

LineState Machine::CacheCtl::peek(NodeId n, Block b) const {
  return m_->ctxs_[n]->cache.state_of(b);
}

void Machine::CacheCtl::invalidate(NodeId n, Block b) {
  m_->ctxs_[n]->cache.erase(b);
  m_->ctxs_[n]->prefetch_ready.erase(b);
}

void Machine::CacheCtl::downgrade(NodeId n, Block b) {
  m_->ctxs_[n]->cache.set_state(b, LineState::Shared);
}

void Machine::CacheCtl::push_shared(NodeId n, Block b) {
  auto victim = m_->ctxs_[n]->cache.insert(b, LineState::Shared);
  if (victim.has_value()) {
    // The directory is mid-transaction; queue the victim's put.
    m_->stats_.add(n, Stat::Evictions);
    m_->ctxs_[n]->prefetch_ready.erase(victim->block);
    m_->pending_push_evicts_.emplace_back(n, *victim);
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Machine::Machine(SimConfig cfg)
    : cfg_(cfg),
      stats_(cfg.nodes),
      net_(cfg.cost, stats_),
      cachectl_(this),
      heap_(cfg.heap_base, cfg.cache.block_bytes) {
  if (cfg_.protocol == ProtocolKind::DirNFullMap) {
    dir_ = std::make_unique<proto::DirNFullMap>(cfg.nodes, cfg.cost, net_,
                                                stats_, cachectl_);
  } else {
    dir_ = std::make_unique<proto::Dir1SW>(cfg.nodes, cfg.cost, net_, stats_,
                                           cachectl_);
  }
  if (cfg_.nodes == 0) throw std::invalid_argument("Machine: nodes == 0");
  if (cfg_.faults.injects()) {
    injector_ = std::make_unique<fault::FaultInjector>(cfg_.faults);
    // Keyed draws make every fault a function of the message's identity
    // rather than of service order, so boundary_threads=1 and =N inject
    // the exact same faults (the cross-thread equivalence guarantee).
    injector_->set_keyed(true);
    net_.set_fault_injector(injector_.get());
  }
  if (cfg_.boundary_threads > 1 && dir_->shardable()) {
    pool_ = std::make_unique<BoundaryPool>(cfg_.boundary_threads);
    shard_items_.resize(cfg_.boundary_threads);
    node_mut_.assign(cfg_.nodes, 0);
  }
  lock_slices_.resize(cfg_.nodes);
  ctxs_.reserve(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    ctxs_.push_back(std::make_unique<NodeCtx>(cfg_.cache));
  }
}

Machine::~Machine() {
  for (auto& c : ctxs_) {
    if (c->thread.joinable()) c->thread.join();
  }
}

const mem::Cache& Machine::cache_of(NodeId n) const { return ctxs_[n]->cache; }

// ---------------------------------------------------------------------------
// run()
// ---------------------------------------------------------------------------

void Machine::run(const std::function<void(Proc&)>& body) {
  if (ran_) throw std::logic_error("Machine::run may be called once");
  ran_ = true;
  const auto host_start = std::chrono::steady_clock::now();

  // Epoch 0 begins at time zero: apply its planned start directives before
  // any node executes (single-threaded, so directory access is safe).
  for (NodeId n = 0; n < cfg_.nodes; ++n) apply_epoch_start(n, 0);

  window_end_ = cfg_.quantum;
  active_ = cfg_.nodes;

  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    ctxs_[n]->thread = std::thread([this, &body, n] {
      Proc p(this, n);
      try {
        body(p);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::unique_lock<std::mutex> lk(mu_);
      ctxs_[n]->wait = NodeCtx::Wait::Done;
      if (--active_ == 0 && !aborted_) boundary();
    });
  }

  for (auto& c : ctxs_) c->thread.join();

  host_total_sec_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  final_time_ = 0;
  for (auto& c : ctxs_) final_time_ = std::max(final_time_, c->now);

  if (obs_ != nullptr && !abort_error_ && !first_error_) {
    obs_->on_run_end(final_time_, stats_);
  }

  // The abort cause carries the precise type (SimDeadlock, ProtocolTimeout,
  // InvariantViolation); node threads unwound with a generic SimDeadlock
  // recorded in first_error_, so rethrow the cause preferentially.
  if (abort_error_) std::rethrow_exception(abort_error_);
  if (first_error_) std::rethrow_exception(first_error_);
}

// ---------------------------------------------------------------------------
// Node-thread side (fast path -- no locking except in park())
// ---------------------------------------------------------------------------

void Machine::maybe_window_park(NodeCtx& c) {
  if (c.now >= window_end_) park(c, NodeCtx::Wait::Ready);
}

void Machine::park(NodeCtx& c, NodeCtx::Wait w) {
  std::unique_lock<std::mutex> lk(mu_);
  c.wait = w;
  if (--active_ == 0 && !aborted_) boundary();
  cv_.wait(lk, [&] { return c.resumable || aborted_; });
  if (aborted_) {
    ++active_;
    throw SimDeadlock(abort_msg_);
  }
  // active_ was already re-credited by the boundary when it marked this
  // node resumable; counting at mark time (not wake time) ensures the next
  // boundary cannot run until every resumed node has executed its window.
  c.resumable = false;
  c.wait = NodeCtx::Wait::Running;
}

void Machine::compute(NodeId n, Cycle cycles) {
  NodeCtx& c = *ctxs_[n];
  stats_.add(n, Stat::ComputeCycles, cycles);
  c.now += cycles;
  maybe_window_park(c);
}

void Machine::consume_prefetch(NodeCtx& c, NodeId n, Block b) {
  auto it = c.prefetch_ready.find(b);
  if (it == c.prefetch_ready.end()) return;
  if (it->second > c.now) {
    stats_.add(n, Stat::PrefetchLate);
    stats_.add(n, Stat::StallCycles, it->second - c.now);
    c.now = it->second;
  } else {
    stats_.add(n, Stat::PrefetchUseful);
  }
  c.prefetch_ready.erase(it);
}

void Machine::after_access(NodeCtx& c, NodeId n, Block b, bool write) {
  // DRFS blocks are checked in immediately after their use (section 4.1:
  // "a processor should check it out and check it back in immediately"
  // because another processor will claim the block soon).  For blocks this
  // node WRITES, "after the use" means after the write of the
  // read-modify-write (the section 4.4 listing); for read-only raced
  // blocks, after any access.
  if (plan_ == nullptr) return;
  const NodeEpochDirectives* ned = plan_->find(n, c.epoch);
  if (ned == nullptr) return;
  const bool fire = ned->checkin_after_access.contains(b) ||
                    (write && ned->checkin_after_write.contains(b));
  if (!fire) return;
  const LineState st = c.cache.state_of(b);
  if (st == LineState::Invalid) return;
  stats_.add(n, Stat::CheckIns);
  stats_.add(n, Stat::DirectiveCycles, cfg_.cost.directive_issue);
  stats_.add(n, Stat::CheckInCycles, cfg_.cost.directive_issue);
  c.now += cfg_.cost.directive_issue;
  c.cache.erase(b);
  c.prefetch_ready.erase(b);
  AsyncOp op;
  op.time = c.now;
  op.seq = c.async_seq++;
  op.kind = AsyncOp::Kind::Put;
  op.block = b;
  op.dirty = st == LineState::Exclusive;
  op.explicit_ci = true;
  c.async.push_back(op);
}

void Machine::access(NodeId n, Addr a, std::uint32_t size, bool write, PcId pc) {
  NodeCtx& c = *ctxs_[n];
  stats_.add(n, write ? Stat::SharedStores : Stat::SharedLoads);
  const Block b = cfg_.cache.block_of(a);
  const LineState ls = c.cache.state_of(b);
  const bool hit = ls == LineState::Exclusive || (!write && ls == LineState::Shared);
  if (hit) {
    consume_prefetch(c, n, b);
    c.cache.touch(b);
    c.now += cfg_.cost.hit;
    after_access(c, n, b, write);
    maybe_window_park(c);
    return;
  }
  c.op_addr = a;
  c.op_bytes = size;
  c.op_size = size;
  c.op_pc = pc;
  c.op_write = write;
  c.op_time = c.now;
  c.op_issue = c.now;
  c.op_attempts = 0;
  park(c, NodeCtx::Wait::Mem);
  after_access(c, n, b, write);
  maybe_window_park(c);
}

void Machine::do_barrier(NodeId n, PcId pc) {
  NodeCtx& c = *ctxs_[n];
  c.barrier_pc = pc;
  park(c, NodeCtx::Wait::Barrier);
}

void Machine::do_lock(NodeId n, Addr a) {
  NodeCtx& c = *ctxs_[n];
  c.op_addr = a;
  c.op_time = c.now;
  park(c, NodeCtx::Wait::Lock);
}

void Machine::do_unlock(NodeId n, Addr a) {
  NodeCtx& c = *ctxs_[n];
  AsyncOp op;
  op.time = c.now;
  op.seq = c.async_seq++;
  op.kind = AsyncOp::Kind::Unlock;
  op.lock_addr = a;
  c.async.push_back(op);
  c.now += cfg_.cost.directive_issue;
  maybe_window_park(c);
}

void Machine::directive_range(NodeId n, DirectiveKind kind, Addr a,
                              std::uint64_t bytes) {
  NodeCtx& c = *ctxs_[n];
  c.op_addr = a;
  c.op_bytes = bytes;
  c.op_dir = kind;
  c.op_time = c.now;
  park(c, NodeCtx::Wait::Directive);
}

void Machine::checkin_inline(NodeCtx& c, NodeId n, Addr a, std::uint64_t bytes) {
  const Block first = cfg_.cache.first_block(a);
  const Block last = cfg_.cache.last_block(a, bytes);
  for (Block b = first; b <= last; ++b) {
    const LineState st = c.cache.state_of(b);
    if (st == LineState::Invalid) continue;
    stats_.add(n, Stat::CheckIns);
    stats_.add(n, Stat::DirectiveCycles, cfg_.cost.directive_issue);
    stats_.add(n, Stat::CheckInCycles, cfg_.cost.directive_issue);
    c.now += cfg_.cost.directive_issue;
    c.cache.erase(b);
    c.prefetch_ready.erase(b);
    AsyncOp op;
    op.time = c.now;
    op.seq = c.async_seq++;
    op.kind = AsyncOp::Kind::Put;
    op.block = b;
    op.dirty = st == LineState::Exclusive;
    op.explicit_ci = true;
    c.async.push_back(op);
  }
  maybe_window_park(c);
}

void Machine::poststore_inline(NodeCtx& c, NodeId n, Addr a,
                               std::uint64_t bytes) {
  const Block first = cfg_.cache.first_block(a);
  const Block last = cfg_.cache.last_block(a, bytes);
  for (Block b = first; b <= last; ++b) {
    if (c.cache.state_of(b) != LineState::Exclusive) continue;
    stats_.add(n, Stat::PostStores);
    stats_.add(n, Stat::DirectiveCycles, cfg_.cost.directive_issue);
    stats_.add(n, Stat::PostStoreCycles, cfg_.cost.directive_issue);
    c.now += cfg_.cost.directive_issue;
    // The writer keeps a Shared copy; the downgrade happens when the
    // directory processes the post-store at the boundary.
    AsyncOp op;
    op.time = c.now;
    op.seq = c.async_seq++;
    op.kind = AsyncOp::Kind::PostStore;
    op.block = b;
    c.async.push_back(op);
  }
  maybe_window_park(c);
}

void Machine::prefetch_inline(NodeCtx& c, NodeId n, bool exclusive, Addr a,
                              std::uint64_t bytes) {
  const Block first = cfg_.cache.first_block(a);
  const Block last = cfg_.cache.last_block(a, bytes);
  for (Block b = first; b <= last; ++b) {
    stats_.add(n, Stat::PrefetchIssued);
    stats_.add(n, exclusive ? Stat::PrefetchX : Stat::PrefetchS);
    stats_.add(n, exclusive ? Stat::PrefetchXCycles : Stat::PrefetchSCycles,
               cfg_.cost.prefetch_issue);
    c.now += cfg_.cost.prefetch_issue;
    AsyncOp op;
    op.time = c.now;
    op.seq = c.async_seq++;
    op.kind = AsyncOp::Kind::Prefetch;
    op.block = b;
    op.exclusive = exclusive;
    c.async.push_back(op);
  }
  maybe_window_park(c);
}

// ---------------------------------------------------------------------------
// Boundary phase.  mu_ is held; every node thread is parked, so caches and
// the directory may be manipulated freely.  All operations are serviced in
// (virtual time, node, issue order) -- fully deterministic.
// ---------------------------------------------------------------------------

std::string Machine::wait_dump() const {
  std::ostringstream os;
  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    const NodeCtx& c = *ctxs_[n];
    const char* w = "?";
    switch (c.wait) {
      case NodeCtx::Wait::Running: w = "running"; break;
      case NodeCtx::Wait::Ready: w = "ready"; break;
      case NodeCtx::Wait::Mem: w = "mem"; break;
      case NodeCtx::Wait::Directive: w = "directive"; break;
      case NodeCtx::Wait::Lock: w = "lock"; break;
      case NodeCtx::Wait::Barrier: w = "barrier"; break;
      case NodeCtx::Wait::Done: w = "done"; break;
    }
    os << 'n' << n << '=' << w;
    if (c.wait == NodeCtx::Wait::Mem) {
      os << "(t=" << c.now << ",retries=" << c.op_attempts << ')';
    }
    os << ' ';
  }
  return os.str();
}

void Machine::boundary() {
  // Dropped messages leave their node parked in Wait::Mem with an advanced
  // op_time, so the boundary loops: each round re-services pending retries
  // at their (virtual) retransmit times.  The watchdog bounds the loop --
  // if the minimum virtual time over live nodes stops advancing for
  // watchdog_rounds consecutive rounds (e.g. a 100% drop rate), the run is
  // aborted as a SimDeadlock instead of livelocking the host.
  struct PhaseTimer {
    double& acc;
    std::chrono::steady_clock::time_point t0;
    ~PhaseTimer() {
      acc += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    }
  } timer{host_boundary_sec_, std::chrono::steady_clock::now()};

  Cycle watch_min = kNever;
  std::uint32_t stuck_rounds = 0;
  for (;;) {
    // Cooperative cancellation (job deadlines, vanished daemon clients):
    // checked once per round, so a cancel lands within one conservative
    // window of virtual time and never mid-transaction.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      const std::string msg = "run cancelled (deadline or client gone)";
      abort_run(std::make_exception_ptr(SimCancelled(msg)), msg);
      cv_.notify_all();
      return;
    }
    // Rounds are a pure function of simulated state, so the counter is
    // deterministic; charged to node 0 like the watchdog's.
    stats_.add(0, Stat::BoundaryRounds);
    process_ops();
    try_complete_barrier();
    if (aborted_) {
      cv_.notify_all();
      return;
    }

    std::uint32_t done = 0;
    for (auto& c : ctxs_) {
      if (c->wait == NodeCtx::Wait::Done) ++done;
    }
    if (done == cfg_.nodes) {
      if (cfg_.audit_invariants) audit_now("end of run", /*full=*/true);
      cv_.notify_all();
      return;
    }

    bool any_ready = false;
    Cycle min_now = kNever;
    for (auto& c : ctxs_) {
      if (c->wait == NodeCtx::Wait::Ready) {
        any_ready = true;
        min_now = std::min(min_now, c->now);
      }
    }
    if (any_ready) {
      resume_window(min_now);
      cv_.notify_all();
      return;
    }

    bool retry_pending = false;
    Cycle live_min = kNever;
    for (auto& c : ctxs_) {
      if (c->wait == NodeCtx::Wait::Mem) retry_pending = true;
      if (c->wait != NodeCtx::Wait::Done) {
        live_min = std::min(live_min, c->now);
      }
    }
    if (retry_pending && cfg_.watchdog_rounds != 0) {
      if (live_min == watch_min) {
        if (++stuck_rounds >= cfg_.watchdog_rounds) {
          stats_.add(0, Stat::WatchdogTrips);
          std::ostringstream os;
          os << "watchdog: no virtual-time progress for "
             << cfg_.watchdog_rounds << " boundary rounds (min t=" << live_min
             << "): " << wait_dump();
          abort_run(std::make_exception_ptr(SimDeadlock(os.str())), os.str());
          cv_.notify_all();
          return;
        }
      } else {
        watch_min = live_min;
        stuck_rounds = 0;
      }
      continue;
    }
    if (retry_pending) continue;

    std::ostringstream os;
    os << "simulated program deadlocked: " << wait_dump();
    abort_run(std::make_exception_ptr(SimDeadlock(os.str())), os.str());
    cv_.notify_all();
    return;
  }
}

void Machine::resume_window(Cycle min_now) {
  window_end_ = min_now + cfg_.quantum;
  for (auto& c : ctxs_) {
    if (c->wait == NodeCtx::Wait::Ready && c->now < window_end_ &&
        !c->resumable) {
      c->resumable = true;
      ++active_;  // credited here so a fast waker cannot re-trigger the
                  // boundary before this node has run (determinism)
    }
  }
}

void Machine::process_ops() {
  // items_ is a member so the steady-state round (the common no-retry case)
  // rebuilds the list without reallocating.
  items_.clear();
  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    NodeCtx& c = *ctxs_[n];
    for (std::size_t i = 0; i < c.async.size(); ++i) {
      items_.push_back(Item{c.async[i].time, n, c.async[i].seq,
                            static_cast<int>(i)});
    }
    const bool blocking = c.wait == NodeCtx::Wait::Mem ||
                          c.wait == NodeCtx::Wait::Directive ||
                          (c.wait == NodeCtx::Wait::Lock && !c.lock_queued);
    if (blocking) items_.push_back(Item{c.op_time, n, c.async_seq, -1});
  }
  std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.node != b.node) return a.node < b.node;
    return a.seq < b.seq;
  });

  if (pool_ == nullptr) {
    for (const Item& it : items_) {
      if (aborted_) return;
      execute_item(it);
    }
  } else {
    process_ops_sharded();
    if (aborted_) return;
  }
  for (auto& c : ctxs_) {
    c->async.clear();
    c->async_seq = 0;
  }
}

void Machine::execute_item(const Item& it) {
  NodeCtx& c = *ctxs_[it.node];
  if (it.async_idx >= 0) {
    const AsyncOp& op = c.async[static_cast<std::size_t>(it.async_idx)];
    switch (op.kind) {
      case AsyncOp::Kind::Put:
        reliable_put(it.node, op.block, op.dirty, op.time, op.explicit_ci);
        break;
      case AsyncOp::Kind::Prefetch:
        service_prefetch(c, it.node, op.block, op.exclusive, op.time);
        break;
      case AsyncOp::Kind::Unlock:
        release_lock(op.lock_addr, it.node, op.time);
        break;
      case AsyncOp::Kind::PostStore:
        reliable_post_store(it.node, op.block, op.time);
        break;
    }
    if (!pending_push_evicts_.empty()) {
      // Only Cross-path service queues push evictions, and Cross items run
      // serially, so this drain never executes on a shard worker.
      for (auto& [vn, victim] : pending_push_evicts_) {
        reliable_put(vn, victim.block, victim.state == LineState::Exclusive,
                     it.time, false);
      }
      pending_push_evicts_.clear();
    }
  } else {
    switch (c.wait) {
      case NodeCtx::Wait::Mem:
        service_mem(c, it.node);
        break;
      case NodeCtx::Wait::Directive:
        service_checkout_range(c, it.node);
        break;
      case NodeCtx::Wait::Lock:
        grant_or_queue_lock(c, it.node);
        break;
      default:
        break;  // already handled (e.g. lock granted by an earlier unlock)
    }
  }
}

Machine::ItemClass Machine::classify_item(const Item& it) const {
  ItemClass k;
  const NodeCtx& c = *ctxs_[it.node];
  if (it.async_idx >= 0) {
    const AsyncOp& op = c.async[static_cast<std::size_t>(it.async_idx)];
    switch (op.kind) {
      case AsyncOp::Kind::Put:
        // The line left the cache when the op was issued, so the service
        // touches only the block's home-slice directory entry.
        k.serial = false;
        k.has_block = true;
        k.block = op.block;
        break;
      case AsyncOp::Kind::PostStore:
        // The update path downgrades third-party caches (Cross); the nack
        // path touches only the home entry (Confined).
        if (dir_->classify_post_store(it.node, op.block) ==
            proto::PathClass::Confined) {
          k.serial = false;
          k.has_block = true;
          k.block = op.block;
        }
        break;
      case AsyncOp::Kind::Prefetch:
        // Contended blocks nack prefetches instead of trapping, so the
        // directory side is always home-confined; the fill may evict, so
        // the predicted victim is claimed too -- and its put must land on
        // the same home shard.
        k.serial = false;
        k.cache_mut = true;
        k.has_block = true;
        k.block = op.block;
        if (auto v = c.cache.peek_victim(op.block); v.has_value()) {
          k.has_victim = true;
          k.victim = v->block;
          if (dir_->home_of(v->block) != dir_->home_of(op.block)) {
            k.serial = true;
          }
        }
        break;
      case AsyncOp::Kind::Unlock: {
        // The release touches one lock-table slice plus, when the queue is
        // non-empty, the context of the waiter it wakes; claiming the slot
        // and that node makes it batchable.  The queue seen here is the
        // queue at execution: any open-batch item on the same lock would
        // have conflict-flushed before this item was admitted.
        k.serial = false;
        k.has_lock = true;
        k.lock_addr = op.lock_addr;
        k.home = lock_home(op.lock_addr);
        const auto& slice = lock_slices_[k.home];
        if (auto lit = slice.find(op.lock_addr);
            lit != slice.end() && !lit->second.queue.empty()) {
          const auto& q = lit->second.queue;
          auto w = std::min_element(q.begin(), q.end(),
                                    [](const LockState::Waiter& x,
                                       const LockState::Waiter& y) {
                                      if (x.time != y.time)
                                        return x.time < y.time;
                                      return x.node < y.node;
                                    });
          k.remote.add(w->node);  // release_lock will wake exactly this node
        }
        break;
      }
    }
  } else {
    switch (c.wait) {
      case NodeCtx::Wait::Mem: {
        const Block b = cfg_.cache.block_of(c.op_addr);
        const LineState ls = c.cache.state_of(b);
        const bool write = c.op_write;
        if (ls == LineState::Exclusive ||
            (!write && ls != LineState::Invalid)) {
          // Satisfied locally (e.g. by an earlier prefetch fill): touches
          // only this node's cache and prefetch bookkeeping.
          k.serial = false;
          k.cache_mut = true;
          k.has_block = true;
          k.block = b;
          break;
        }
        bool fetch_excl = write;
        if (!write && plan_ != nullptr) {
          const NodeEpochDirectives* ned = plan_->find(it.node, c.epoch);
          if (ned != nullptr && ned->fetch_exclusive.contains(b)) {
            fetch_excl = true;
          }
        }
        if (dir_->classify_get(it.node, b, fetch_excl, k.remote) !=
            proto::PathClass::Confined) {
          break;  // unbounded handler footprint: serial
        }
        k.serial = false;
        k.cache_mut = true;
        k.has_block = true;
        k.block = b;
        if (auto v = c.cache.peek_victim(b); v.has_value()) {
          k.has_victim = true;
          k.victim = v->block;
          if (dir_->home_of(v->block) != dir_->home_of(b)) k.serial = true;
        }
        break;
      }
      case NodeCtx::Wait::Lock:
        // Grant-or-queue touches one lock-table slice and this node's own
        // context; claiming both makes it batchable.  Whether it grants or
        // queues is decided by slice state that cannot change between
        // classification and execution (same conflict-flush argument as
        // Unlock above).
        k.serial = false;
        k.cache_mut = true;
        k.has_lock = true;
        k.lock_addr = c.op_addr;
        k.home = lock_home(c.op_addr);
        break;
      case NodeCtx::Wait::Directive:
        break;  // multi-block check-out ranges: serial
      default:
        k.skip = true;  // already handled (e.g. lock granted this round)
        break;
    }
  }
  if (!k.serial && k.has_block) k.home = dir_->home_of(k.block);
  return k;
}

void Machine::process_ops_sharded() {
  claimed_.clear();
  lock_claimed_.clear();
  batch_.clear();
  for (auto& s : shard_items_) s.clear();
  std::fill(node_mut_.begin(), node_mut_.end(), 0);

  const std::uint32_t W = pool_->workers();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (aborted_) return;
    for (;;) {
      const ItemClass k = classify_item(items_[i]);
      if (k.skip) break;
      if (k.serial) {
        flush_batch();
        if (aborted_) return;
        execute_item(items_[i]);
        break;
      }
      bool conflict =
          (k.has_block && (claimed_.contains(k.block) ||
                           (k.has_victim && claimed_.contains(k.victim)))) ||
          (k.has_lock && lock_claimed_.contains(k.lock_addr)) ||
          (k.cache_mut && node_mut_[items_[i].node] != 0);
      for (std::uint8_t r = 0; r < k.remote.count && !conflict; ++r) {
        conflict = node_mut_[k.remote.node[r]] != 0;
      }
      if (conflict && !batch_.empty()) {
        // Drain the batch and re-classify: the conflicting state may have
        // changed.  At most one extra pass -- the batch is empty after.
        flush_batch();
        if (aborted_) return;
        continue;
      }
      if (k.has_block) {
        claimed_.insert(k.block);
        if (k.has_victim) claimed_.insert(k.victim);
      }
      if (k.has_lock) lock_claimed_.insert(k.lock_addr);
      if (k.cache_mut) node_mut_[items_[i].node] = 1;
      for (std::uint8_t r = 0; r < k.remote.count; ++r) {
        node_mut_[k.remote.node[r]] = 1;
      }
      shard_items_[k.home % W].push_back(static_cast<std::uint32_t>(i));
      batch_.push_back(static_cast<std::uint32_t>(i));
      break;
    }
  }
  flush_batch();
}

void Machine::flush_batch() {
  if (batch_.empty()) return;
  const std::uint32_t W = pool_->workers();
  std::uint32_t occupied = 0;
  for (const auto& s : shard_items_) occupied += s.empty() ? 0 : 1;
  // CICO_DEBUG_BATCHES=1 prints the batch-size distribution; handy when
  // tuning boundary_batch_min against a new workload.
  if (std::getenv("CICO_DEBUG_BATCHES") != nullptr) {
    std::fprintf(stderr, "flush: %zu items, %u shards\n", batch_.size(),
                 occupied);
  }
  const std::size_t batch_min =
      cfg_.boundary_batch_min > 1 ? cfg_.boundary_batch_min : 1;
  if (batch_.size() < batch_min || occupied < 2) {
    // Too small to amortize the fork/join: run inline, still in canonical
    // order, with effects applied directly (no logs).
    for (const std::uint32_t idx : batch_) {
      if (aborted_) break;
      execute_item(items_[idx]);
    }
  } else {
    logs_.resize(items_.size());
    pool_->run(W, [this](std::uint32_t w) {
      for (const std::uint32_t idx : shard_items_[w]) {
        EffectLog& lg = logs_[idx];
        lg.clear();
        EffectLog::current() = &lg;
        execute_item(items_[idx]);
        EffectLog::current() = nullptr;
      }
    });
    // Deterministic merge: replay every item's effects in canonical order,
    // stopping at (and including) the first aborting item -- exactly the
    // prefix a serial execution would have produced.
    for (const std::uint32_t idx : batch_) {
      const EffectLog& lg = logs_[idx];
      stats_.apply(lg);
      net_.apply(lg);
      if (tracer_ != nullptr) {
        for (const auto& mi : lg.misses) {
          tracer_->record_miss(mi.node, static_cast<trace::MissKind>(mi.kind),
                               mi.addr, mi.size, mi.pc, mi.epoch);
        }
      }
      if (obs_ != nullptr) {
        for (const auto& ev : lg.obs_events) {
          if (ev.kind == EffectLog::ObsEvent::kTrap) {
            obs_->on_trap(ev.node, ev.home, ev.block, ev.t0, ev.t1, ev.aux,
                          ev.epoch);
          } else {
            obs_->on_prefetch_fill(ev.node, ev.block, ev.t0, ev.t1, ev.epoch);
          }
        }
      }
      if (lg.aborted) {
        abort_run(lg.abort_error, lg.abort_msg);
        break;
      }
    }
  }
  batch_.clear();
  for (auto& s : shard_items_) s.clear();
  claimed_.clear();
  lock_claimed_.clear();
  std::fill(node_mut_.begin(), node_mut_.end(), 0);
}

void Machine::record_trace_miss(NodeCtx& c, NodeId n, trace::MissKind kind) {
  if (EffectLog* lg = EffectLog::current(); lg != nullptr) {
    // On a shard worker: buffer the miss; the coordinator replays logs in
    // canonical order so the trace matches the serial schedule.
    lg->misses.push_back({n, static_cast<std::uint8_t>(kind), c.op_addr,
                          c.op_size, c.op_pc, c.epoch});
    return;
  }
  tracer_->record_miss(n, kind, c.op_addr, c.op_size, c.op_pc, c.epoch);
}

void Machine::record_obs_trap(NodeId n, Block b, Cycle t0, Cycle t1,
                              std::uint32_t invalidations, EpochId epoch) {
  if (obs_ == nullptr) return;
  if (EffectLog* lg = EffectLog::current(); lg != nullptr) {
    lg->obs_events.push_back({EffectLog::ObsEvent::kTrap, n, dir_->home_of(b),
                              b, t0, t1, invalidations, epoch});
    return;
  }
  obs_->on_trap(n, dir_->home_of(b), b, t0, t1, invalidations, epoch);
}

void Machine::record_obs_prefetch(NodeId n, Block b, Cycle issue, Cycle ready,
                                  EpochId epoch) {
  if (obs_ == nullptr) return;
  if (EffectLog* lg = EffectLog::current(); lg != nullptr) {
    lg->obs_events.push_back(
        {EffectLog::ObsEvent::kPrefetch, n, 0, b, issue, ready, 0, epoch});
    return;
  }
  obs_->on_prefetch_fill(n, b, issue, ready, epoch);
}

void Machine::insert_line(NodeCtx& c, NodeId n, Block b, LineState s, Cycle t) {
  auto victim = c.cache.insert(b, s);
  if (victim.has_value()) {
    stats_.add(n, Stat::Evictions);
    c.prefetch_ready.erase(victim->block);
    reliable_put(n, victim->block, victim->state == LineState::Exclusive, t,
                 false);
  }
}

void Machine::service_mem(NodeCtx& c, NodeId n) {
  const Block b = cfg_.cache.block_of(c.op_addr);
  Cycle t = c.op_time;

  // An in-flight prefetch of this block completes first.
  auto pit = c.prefetch_ready.find(b);
  if (pit != c.prefetch_ready.end()) {
    if (pit->second > t) {
      stats_.add(n, Stat::PrefetchLate);
      stats_.add(n, Stat::StallCycles, pit->second - t);
      t = pit->second;
    } else {
      stats_.add(n, Stat::PrefetchUseful);
    }
    c.prefetch_ready.erase(pit);
  }

  // Another boundary action (prefetch fill, earlier directive) may have
  // satisfied the access already.
  const LineState ls = c.cache.state_of(b);
  const bool write = c.op_write;
  if ((ls == LineState::Exclusive) || (!write && ls != LineState::Invalid)) {
    c.cache.touch(b);
    c.now = t + cfg_.cost.hit;
    c.wait = NodeCtx::Wait::Ready;
    return;
  }

  // Miss classification is stable across retries (a dropped request never
  // mutates the directory), so count each miss once, on the first attempt.
  const bool first_attempt = c.op_attempts == 0;
  proto::ServiceResult res;
  trace::MissKind kind;
  bool fetch_excl = write;
  if (write) {
    if (ls == LineState::Shared) {
      kind = trace::MissKind::WriteFault;
      if (first_attempt) stats_.add(n, Stat::WriteFaults);
    } else {
      kind = trace::MissKind::WriteMiss;
      if (first_attempt) stats_.add(n, Stat::WriteMisses);
    }
  } else {
    kind = trace::MissKind::ReadMiss;
    if (first_attempt) stats_.add(n, Stat::ReadMisses);
    const NodeEpochDirectives* ned =
        plan_ != nullptr ? plan_->find(n, c.epoch) : nullptr;
    if (ned != nullptr && ned->fetch_exclusive.contains(b)) {
      // Performance-CICO check_out_X placed immediately before the first
      // read of a read-then-written block (section 4.1): fetch the block
      // exclusive in one transaction instead of GetS + later upgrade.
      fetch_excl = true;
      if (first_attempt) {
        stats_.add(n, Stat::CheckOutX);
        stats_.add(n, Stat::DirectiveCycles, cfg_.cost.directive_issue);
        stats_.add(n, Stat::CheckOutXCycles, cfg_.cost.directive_issue);
        t += cfg_.cost.directive_issue;
      }
    }
  }
  res = fetch_excl ? dir_->get_exclusive(n, b, t, false)
                   : dir_->get_shared(n, b, t, false);
  if (res.dropped) {
    // The request (or its reply) was eaten by a fault.  The node stays
    // parked in Wait::Mem with its retransmit scheduled after the timeout
    // plus exponential backoff; the boundary loop re-services it.
    const std::uint32_t budget = cfg_.faults.max_retries;
    if (budget != 0 && c.op_attempts >= budget) {
      std::ostringstream os;
      os << "node " << n << ": " << (write ? "store" : "load") << " of block "
         << b << " lost " << (c.op_attempts + 1)
         << " times; retry budget (" << budget << ") exhausted at t="
         << res.done_at;
      abort_run(std::make_exception_ptr(ProtocolTimeout(os.str())), os.str());
      return;
    }
    stats_.add(n, Stat::Retries);
    c.op_time = res.done_at + retry_backoff(c.op_attempts);
    ++c.op_attempts;
    return;
  }
  if (res.trapped) {
    record_obs_trap(n, b, t, res.done_at, res.invalidations, c.epoch);
  }
  insert_line(c, n, b, fetch_excl ? LineState::Exclusive : LineState::Shared,
              res.done_at);
  stats_.add(n, Stat::StallCycles, res.done_at - c.op_issue);
  c.now = res.done_at;
  c.op_attempts = 0;
  if (tracer_ != nullptr) record_trace_miss(c, n, kind);
  c.wait = NodeCtx::Wait::Ready;
}

Cycle Machine::do_checkout(NodeCtx& c, NodeId n, DirectiveKind kind,
                           BlockRun run, Cycle t) {
  const bool excl = kind == DirectiveKind::CheckOutX;
  for (Block b = run.first; b <= run.last; ++b) {
    stats_.add(n, excl ? Stat::CheckOutX : Stat::CheckOutS);
    t += cfg_.cost.directive_issue;
    const LineState ls = c.cache.state_of(b);
    if (ls == LineState::Exclusive || (!excl && ls != LineState::Invalid)) {
      c.cache.touch(b);
      continue;
    }
    // Check-out ranges block the node but are serviced in one boundary
    // visit, so lost requests are retried inline rather than by re-parking.
    proto::ServiceResult res;
    std::uint32_t attempt = 0;
    Cycle req_t = t;
    for (;;) {
      req_t = t;
      res = excl ? dir_->get_exclusive(n, b, t, false)
                 : dir_->get_shared(n, b, t, false);
      if (!res.dropped) break;
      if (inline_retry_exhausted(attempt)) {
        std::ostringstream os;
        os << "node " << n << ": check-out of block " << b << " lost "
           << (attempt + 1) << " times; retry budget exhausted at t="
           << res.done_at;
        abort_run(std::make_exception_ptr(ProtocolTimeout(os.str())),
                  os.str());
        return t;
      }
      stats_.add(n, Stat::Retries);
      t = res.done_at + retry_backoff(attempt);
      ++attempt;
    }
    if (res.trapped) {
      record_obs_trap(n, b, req_t, res.done_at, res.invalidations, c.epoch);
    }
    insert_line(c, n, b, excl ? LineState::Exclusive : LineState::Shared,
                res.done_at);
    t = res.done_at;
    if (aborted_) return t;
  }
  return t;
}

void Machine::service_checkout_range(NodeCtx& c, NodeId n) {
  const BlockRun run{cfg_.cache.first_block(c.op_addr),
                     cfg_.cache.last_block(c.op_addr, c.op_bytes)};
  const Cycle t0 = c.op_time;
  const Cycle t = do_checkout(c, n, c.op_dir, run, t0);
  stats_.add(n, Stat::DirectiveCycles, t - t0);
  stats_.add(n,
             c.op_dir == DirectiveKind::CheckOutX ? Stat::CheckOutXCycles
                                                  : Stat::CheckOutSCycles,
             t - t0);
  c.now = t;
  c.wait = NodeCtx::Wait::Ready;
}

void Machine::service_prefetch(NodeCtx& c, NodeId n, Block b, bool exclusive,
                               Cycle t) {
  const std::uint32_t throttle = cfg_.faults.throttle_after;
  if (throttle != 0 && c.prefetch_muted) {
    // The engine saw too many consecutive failures this epoch and backed
    // off; issued prefetches are swallowed until the next barrier.
    stats_.add(n, Stat::PrefetchThrottled);
    return;
  }
  const LineState ls = c.cache.state_of(b);
  if (ls == LineState::Exclusive || (!exclusive && ls != LineState::Invalid)) {
    return;  // already cached in a sufficient state
  }
  if (c.prefetch_ready.contains(b)) return;  // already in flight
  const proto::ServiceResult res = exclusive
                                       ? dir_->get_exclusive(n, b, t, true)
                                       : dir_->get_shared(n, b, t, true);
  if (res.dropped) {
    // Prefetches are never retried: a lost one is a missed opportunity,
    // not an obligation.  It still counts against the throttle.
    if (throttle != 0 && ++c.prefetch_nacks >= throttle) {
      c.prefetch_muted = true;
    }
    return;
  }
  if (res.nacked) {
    stats_.add(n, Stat::PrefetchDropped);
    if (throttle != 0 && ++c.prefetch_nacks >= throttle) {
      c.prefetch_muted = true;
    }
    return;
  }
  if (throttle != 0) c.prefetch_nacks = 0;
  if (res.trapped) {
    record_obs_trap(n, b, t, res.done_at, res.invalidations, c.epoch);
  }
  // Prefetched data streams in bandwidth-limited: completions at one node
  // are spaced at least prefetch_min_gap apart.
  Cycle done = res.done_at;
  if (c.prefetch_last_done + cfg_.cost.prefetch_min_gap > done) {
    done = c.prefetch_last_done + cfg_.cost.prefetch_min_gap;
  }
  c.prefetch_last_done = done;
  insert_line(c, n, b, exclusive ? LineState::Exclusive : LineState::Shared, t);
  c.prefetch_ready[b] = done;
  record_obs_prefetch(n, b, t, done, c.epoch);
}

void Machine::grant_or_queue_lock(NodeCtx& c, NodeId n) {
  LockState& L = lock_state(c.op_addr);
  if (!L.held) {
    L.held = true;
    L.holder = n;
    stats_.add(n, Stat::LockAcquires);
    c.now = c.op_time + cfg_.cost.lock;
    c.wait = NodeCtx::Wait::Ready;
    c.lock_queued = false;
  } else {
    stats_.add(n, Stat::LockContended);
    L.queue.push_back(LockState::Waiter{c.op_time, n});
    c.lock_queued = true;
  }
}

void Machine::release_lock(Addr a, NodeId /*n*/, Cycle t) {
  LockState& L = lock_state(a);
  L.held = false;
  L.holder = kInvalidNode;
  if (L.queue.empty()) return;
  auto it = std::min_element(L.queue.begin(), L.queue.end(),
                             [](const LockState::Waiter& x,
                                const LockState::Waiter& y) {
                               if (x.time != y.time) return x.time < y.time;
                               return x.node < y.node;
                             });
  const LockState::Waiter w = *it;
  L.queue.erase(it);
  NodeCtx& wc = *ctxs_[w.node];
  L.held = true;
  L.holder = w.node;
  stats_.add(w.node, Stat::LockAcquires);
  wc.now = std::max(t, w.time) + cfg_.cost.lock;
  wc.wait = NodeCtx::Wait::Ready;
  wc.lock_queued = false;
}

bool Machine::try_complete_barrier() {
  if (aborted_) return false;
  std::vector<NodeId> at_barrier;
  std::uint32_t done = 0;
  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    if (ctxs_[n]->wait == NodeCtx::Wait::Barrier) at_barrier.push_back(n);
    else if (ctxs_[n]->wait == NodeCtx::Wait::Done) ++done;
  }
  if (at_barrier.empty() ||
      at_barrier.size() + done != cfg_.nodes) {
    return false;
  }

  // 1. Planned end-of-epoch check-ins.
  for (NodeId n : at_barrier) apply_epoch_end(n, ctxs_[n]->epoch);

  // 2. Trace collection: barrier records, then the barrier cache flush of
  //    section 3.3 (only accesses that miss appear in the trace, so caches
  //    are emptied at every epoch boundary to expose reuse).
  if (tracer_ != nullptr) {
    for (NodeId n : at_barrier) {
      NodeCtx& c = *ctxs_[n];
      tracer_->record_barrier(n, c.barrier_pc, c.now, c.epoch);
      if (cfg_.trace_mode) {
        c.prefetch_ready.clear();
        c.cache.flush([&](Block b, LineState st) {
          reliable_put(n, b, st == LineState::Exclusive, c.now, false);
        });
      }
    }
    tracer_->end_epoch();
  }

  // 2b. Paranoid mode: the barrier is a quiescent point (every pending
  //     operation has been serviced), so the directory and every cache
  //     must agree exactly.  Abort on the first divergence.
  if (cfg_.audit_invariants) {
    std::ostringstream when;
    when << "epoch " << global_epoch_ << " boundary";
    audit_now(when.str(), /*full=*/false);
    if (aborted_) return true;
  }

  // 3. Synchronize virtual times.
  Cycle t = 0;
  for (NodeId n : at_barrier) t = std::max(t, ctxs_[n]->now);
  t += cfg_.cost.barrier;

  // 3a. Observability: per-node barrier waits (arrival -> release) and the
  //     epoch's time-series row, flushed before the next epoch's planned
  //     directives execute.  Runs on the coordinator after every effect
  //     replay, so the stream is boundary-thread independent.
  if (obs_ != nullptr) {
    for (NodeId n : at_barrier) {
      obs_->on_barrier_wait(n, ctxs_[n]->now, t, global_epoch_);
    }
    obs_->on_epoch_end(global_epoch_, t, stats_);
  }

  ++global_epoch_;
  for (NodeId n : at_barrier) {
    NodeCtx& c = *ctxs_[n];
    c.now = t;
    c.epoch = global_epoch_;
    stats_.add(n, Stat::Barriers);
    c.wait = NodeCtx::Wait::Ready;
    c.prefetch_nacks = 0;       // throttled prefetch engines recover at the
    c.prefetch_muted = false;   // epoch boundary
  }

  // 4. Planned start-of-epoch check-outs / prefetches.
  for (NodeId n : at_barrier) apply_epoch_start(n, global_epoch_);
  return true;
}

void Machine::apply_epoch_start(NodeId n, EpochId e) {
  if (plan_ == nullptr) return;
  const NodeEpochDirectives* ned = plan_->find(n, e);
  if (ned == nullptr) return;
  NodeCtx& c = *ctxs_[n];
  for (const PlannedDirective& pd : ned->at_start) {
    switch (pd.kind) {
      case DirectiveKind::CheckOutX:
      case DirectiveKind::CheckOutS: {
        const Cycle t0 = c.now;
        c.now = do_checkout(c, n, pd.kind, pd.run, c.now);
        stats_.add(n, Stat::DirectiveCycles, c.now - t0);
        stats_.add(n,
                   pd.kind == DirectiveKind::CheckOutX ? Stat::CheckOutXCycles
                                                       : Stat::CheckOutSCycles,
                   c.now - t0);
        break;
      }
      case DirectiveKind::PrefetchX:
      case DirectiveKind::PrefetchS: {
        const bool excl = pd.kind == DirectiveKind::PrefetchX;
        for (Block b = pd.run.first; b <= pd.run.last; ++b) {
          stats_.add(n, Stat::PrefetchIssued);
          stats_.add(n, excl ? Stat::PrefetchX : Stat::PrefetchS);
          stats_.add(n, excl ? Stat::PrefetchXCycles : Stat::PrefetchSCycles,
                     cfg_.cost.prefetch_issue);
          c.now += cfg_.cost.prefetch_issue;
          service_prefetch(c, n, b, excl, c.now);
        }
        break;
      }
      case DirectiveKind::CheckIn:
        break;  // check-ins never appear in at_start
    }
  }
}

void Machine::apply_epoch_end(NodeId n, EpochId e) {
  if (plan_ == nullptr) return;
  const NodeEpochDirectives* ned = plan_->find(n, e);
  if (ned == nullptr) return;
  NodeCtx& c = *ctxs_[n];
  for (const PlannedDirective& pd : ned->at_end) {
    if (pd.kind != DirectiveKind::CheckIn) continue;
    for (Block b = pd.run.first; b <= pd.run.last; ++b) {
      const LineState st = c.cache.state_of(b);
      if (st == LineState::Invalid) continue;
      stats_.add(n, Stat::CheckIns);
      stats_.add(n, Stat::DirectiveCycles, cfg_.cost.directive_issue);
      stats_.add(n, Stat::CheckInCycles, cfg_.cost.directive_issue);
      c.now += cfg_.cost.directive_issue;
      c.cache.erase(b);
      c.prefetch_ready.erase(b);
      reliable_put(n, b, st == LineState::Exclusive, c.now, true);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault handling
// ---------------------------------------------------------------------------

Cycle Machine::retry_backoff(std::uint32_t attempt) const {
  const Cycle base = cfg_.faults.backoff_base != 0
                         ? cfg_.faults.backoff_base
                         : 2 * cfg_.cost.hw_miss_latency();
  const std::uint32_t shift = attempt < 12 ? attempt : 12;
  const Cycle d = base << shift;
  return d < cfg_.faults.backoff_cap ? d : cfg_.faults.backoff_cap;
}

bool Machine::inline_retry_exhausted(std::uint32_t attempt) const {
  // Inline retries cannot park the node, so even an "unbounded" budget is
  // capped: 64 consecutive losses of one message only happens when the
  // drop rate is effectively 1, and then aborting beats spinning.
  const std::uint32_t budget =
      cfg_.faults.max_retries != 0 ? cfg_.faults.max_retries : 64;
  return attempt >= budget;
}

void Machine::abort_run(std::exception_ptr e, std::string msg) {
  if (EffectLog* lg = EffectLog::current(); lg != nullptr) {
    // On a shard worker: divert into the item's log.  The coordinator
    // replays logs in canonical order and re-raises the first abort, so the
    // winning cause is schedule-independent.
    if (!lg->aborted) {
      lg->aborted = true;
      lg->abort_msg = std::move(msg);
      lg->abort_error = std::move(e);
    }
    return;
  }
  if (aborted_) return;
  aborted_ = true;
  abort_msg_ = std::move(msg);
  abort_error_ = std::move(e);
}

void Machine::reliable_put(NodeId n, Block b, bool dirty, Cycle t,
                           bool explicit_ci) {
  // The caller already erased the line from its cache, so the put MUST
  // land eventually or the directory stays permanently ahead of the cache.
  std::uint32_t attempt = 0;
  for (;;) {
    const proto::ServiceResult res = dir_->put(n, b, dirty, t, explicit_ci);
    if (!res.dropped) return;
    if (inline_retry_exhausted(attempt)) {
      std::ostringstream os;
      os << "node " << n << ": check-in of block " << b << " lost "
         << (attempt + 1) << " times; retry budget exhausted at t="
         << res.done_at;
      abort_run(std::make_exception_ptr(ProtocolTimeout(os.str())), os.str());
      return;
    }
    stats_.add(n, Stat::Retries);
    t = res.done_at + retry_backoff(attempt);
    ++attempt;
  }
}

void Machine::reliable_post_store(NodeId n, Block b, Cycle t) {
  std::uint32_t attempt = 0;
  for (;;) {
    const proto::ServiceResult res = dir_->post_store(n, b, t);
    if (!res.dropped) return;
    if (inline_retry_exhausted(attempt)) {
      std::ostringstream os;
      os << "node " << n << ": post-store of block " << b << " lost "
         << (attempt + 1) << " times; retry budget exhausted at t="
         << res.done_at;
      abort_run(std::make_exception_ptr(ProtocolTimeout(os.str())), os.str());
      return;
    }
    stats_.add(n, Stat::Retries);
    t = res.done_at + retry_backoff(attempt);
    ++attempt;
  }
}

void Machine::audit_now(const std::string& when, bool full) {
  const std::string diag = full || !cfg_.audit_memo
                               ? dir_->check_invariants()
                               : dir_->check_invariants_incremental();
  if (diag.empty()) return;
  std::ostringstream os;
  os << "invariant audit failed (" << when << "):\n" << diag;
  abort_run(std::make_exception_ptr(InvariantViolation(os.str())), os.str());
}

// ---------------------------------------------------------------------------
// Proc forwarding
// ---------------------------------------------------------------------------

std::uint32_t Proc::nprocs() const { return m_->cfg_.nodes; }
Cycle Proc::now() const { return m_->ctxs_[node_]->now; }
EpochId Proc::epoch() const { return m_->ctxs_[node_]->epoch; }

void Proc::compute(Cycle cycles) { m_->compute(node_, cycles); }
void Proc::ld(Addr a, std::uint32_t size, PcId pc) {
  m_->access(node_, a, size, /*write=*/false, pc);
}
void Proc::st(Addr a, std::uint32_t size, PcId pc) {
  m_->access(node_, a, size, /*write=*/true, pc);
}
void Proc::barrier(PcId pc) { m_->do_barrier(node_, pc); }
void Proc::lock(Addr a) { m_->do_lock(node_, a); }
void Proc::unlock(Addr a) { m_->do_unlock(node_, a); }

void Proc::check_out_x(Addr a, std::uint64_t bytes) {
  m_->directive_range(node_, DirectiveKind::CheckOutX, a, bytes);
}
void Proc::check_out_s(Addr a, std::uint64_t bytes) {
  m_->directive_range(node_, DirectiveKind::CheckOutS, a, bytes);
}
void Proc::check_in(Addr a, std::uint64_t bytes) {
  m_->checkin_inline(*m_->ctxs_[node_], node_, a, bytes);
}
void Proc::post_store(Addr a, std::uint64_t bytes) {
  m_->poststore_inline(*m_->ctxs_[node_], node_, a, bytes);
}
void Proc::prefetch_x(Addr a, std::uint64_t bytes) {
  m_->prefetch_inline(*m_->ctxs_[node_], node_, /*exclusive=*/true, a, bytes);
}
void Proc::prefetch_s(Addr a, std::uint64_t bytes) {
  m_->prefetch_inline(*m_->ctxs_[node_], node_, /*exclusive=*/false, a, bytes);
}

}  // namespace cico::sim
