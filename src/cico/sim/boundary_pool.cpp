#include "cico/sim/boundary_pool.hpp"

namespace cico::sim {

BoundaryPool::BoundaryPool(std::uint32_t workers) : workers_(workers) {
  threads_.reserve(workers_ - 1);
  for (std::uint32_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

BoundaryPool::~BoundaryPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void BoundaryPool::run(std::uint32_t jobs,
                       const std::function<void(std::uint32_t)>& fn) {
  std::unique_lock lk(mu_);
  fn_ = &fn;
  jobs_ = jobs;
  next_ = 0;
  done_ = 0;
  ++generation_;
  work_cv_.notify_all();
  // The coordinator claims jobs alongside the workers.
  while (next_ < jobs_) {
    const std::uint32_t j = next_++;
    lk.unlock();
    fn(j);
    lk.lock();
    ++done_;
  }
  done_cv_.wait(lk, [&] { return done_ == jobs_; });
  fn_ = nullptr;
}

void BoundaryPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    while (next_ < jobs_) {
      const std::uint32_t j = next_++;
      const auto* fn = fn_;
      lk.unlock();
      (*fn)(j);
      lk.lock();
      if (++done_ == jobs_) done_cv_.notify_one();
    }
  }
}

}  // namespace cico::sim
