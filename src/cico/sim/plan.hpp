// Directive plan: the runtime form of Cachier's output for programs
// written against the C++ runtime API.
//
// For MiniPar programs Cachier rewrites the source (cico::srcann); for
// compiled programs it produces this plan, which the simulator applies
// automatically -- the moral equivalent of binary rewriting.  A plan maps
// (node, epoch) to:
//   * directives to issue when the epoch begins (check-outs / prefetches,
//     placed "as close to the beginning of the epoch as possible", 4.2),
//   * directives to issue when the epoch ends (check-ins),
//   * blocks whose first read should fetch EXCLUSIVE (the Performance-CICO
//     check_out_X placed immediately before a read-then-write, 4.1), and
//   * blocks to check in immediately after every access (DRFS blocks --
//     involved in data races or false sharing -- which another processor
//     will claim quickly, 4.1).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cico/common/types.hpp"
#include "cico/kern/bitset.hpp"

namespace cico::sim {

enum class DirectiveKind : std::uint8_t {
  CheckOutX,
  CheckOutS,
  CheckIn,
  PrefetchX,
  PrefetchS,
};

[[nodiscard]] const char* directive_kind_name(DirectiveKind k);

/// Inclusive run of absolute block numbers.
struct BlockRun {
  Block first = 0;
  Block last = 0;

  [[nodiscard]] std::uint64_t count() const { return last - first + 1; }
  friend bool operator==(const BlockRun&, const BlockRun&) = default;
};

struct PlannedDirective {
  DirectiveKind kind;
  BlockRun run;
  friend bool operator==(const PlannedDirective&, const PlannedDirective&) = default;
};

/// Everything the runtime must do for one (node, epoch).  The block sets
/// are dense SIMD bitsets (cico::kern): the simulator probes them on every
/// shared access, and plan application iterates them in ascending block
/// order.
struct NodeEpochDirectives {
  std::vector<PlannedDirective> at_start;
  std::vector<PlannedDirective> at_end;
  kern::BlockSet fetch_exclusive;
  /// Check in after ANY access (read-side DRFS blocks).
  kern::BlockSet checkin_after_access;
  /// Check in after a WRITE only: for racy read-modify-write blocks the
  /// check-in goes after the update, exactly like the section 4.4 listing
  /// (check_out_X C[i,j]; C[i,j] = ...; check_in C[i,j]).
  kern::BlockSet checkin_after_write;

  [[nodiscard]] bool empty() const {
    return at_start.empty() && at_end.empty() && fetch_exclusive.empty() &&
           checkin_after_access.empty() && checkin_after_write.empty();
  }
};

class DirectivePlan {
 public:
  /// Mutable entry, created on demand (used by the plan builder and by
  /// hand-annotation code in the apps).
  NodeEpochDirectives& at(NodeId node, EpochId epoch) {
    return map_[key(node, epoch)];
  }

  /// Lookup; nullptr when the (node, epoch) has no directives.
  [[nodiscard]] const NodeEpochDirectives* find(NodeId node, EpochId epoch) const {
    auto it = map_.find(key(node, epoch));
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] std::size_t entries() const { return map_.size(); }

  /// Visits every (node, epoch) entry (unspecified order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, d] : map_) {
      fn(static_cast<NodeId>(key >> 32), static_cast<EpochId>(key), d);
    }
  }

  /// Total count of planned directives (for reports / tests).
  [[nodiscard]] std::uint64_t total_directives() const;

  /// Human-readable summary.
  [[nodiscard]] std::string summary() const;

 private:
  static std::uint64_t key(NodeId node, EpochId epoch) {
    return (static_cast<std::uint64_t>(node) << 32) | epoch;
  }
  std::unordered_map<std::uint64_t, NodeEpochDirectives> map_;
};

}  // namespace cico::sim
