// DirectivePlan serialization.
//
// Cachier's output for compiled programs is a plan file: a stable,
// diffable text format so plans can be saved next to a binary, inspected,
// and applied in later runs (the tool-artifact analogue of the paper's
// annotated source).
//
// Format (one record per line):
//   cico-plan v1
//   E <node> <epoch>                 -- start a (node, epoch) entry
//   S <kind> <first> <last>          -- at_start directive run
//   T <kind> <first> <last>          -- at_end directive run
//   X <block>                        -- fetch_exclusive
//   A <block>                        -- checkin_after_access
//   W <block>                        -- checkin_after_write
// where <kind> is the DirectiveKind integer value.
#pragma once

#include <iosfwd>

#include "cico/sim/plan.hpp"

namespace cico::sim {

void save_plan(const DirectivePlan& plan, std::ostream& os);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] DirectivePlan load_plan(std::istream& is);

}  // namespace cico::sim
