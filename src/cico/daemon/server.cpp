#include "cico/daemon/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cico/daemon/protocol.hpp"

namespace cico::daemon {

namespace {

/// Binds a listening Unix-domain socket at `path`.  A stale socket file
/// (crashed daemon) is detected by a probe connect: ECONNREFUSED means
/// nobody is home and the file is replaced; a successful connect means
/// the address is actively served and binding must fail.
io::Fd bind_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  if (::access(path.c_str(), F_OK) == 0) {
    io::Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probe.valid() &&
        ::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      throw std::runtime_error("socket already served by a live daemon: " +
                               path);
    }
    ::unlink(path.c_str());
  }

  io::Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd.get(), 64) != 0) {
    throw std::runtime_error("listen " + path + ": " + std::strerror(errno));
  }
  return fd;
}

/// A stalled-but-open client must not pin a worker forever on write(2);
/// with a send timeout the blocked write fails (EAGAIN), write_frame
/// throws, and try_send below reports the client as unreachable.
void set_send_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// write_frame wrapper that treats every delivery problem -- peer gone,
/// send timeout, protocol error -- as "client unreachable" (false).  The
/// daemon must never die because one client is misbehaving.
bool try_send(int fd, const obs::Json& frame) {
  try {
    return write_frame(fd, frame) == FrameStatus::Ok;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), cache_(opt_.cache_dir, opt_.cache_entries) {}

Server::~Server() {
  if (started_ && !joined_) {
    request_drain();
    join();
  }
}

void Server::start() {
  if (started_) throw std::logic_error("Server::start called twice");
  // A client that disappears mid-write must surface as EPIPE, not kill
  // the process.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = bind_unix_listener(opt_.socket_path);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  wake_r_ = io::Fd(pipefd[0]);
  wake_w_ = io::Fd(pipefd[1]);

  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::uint32_t i = 0; i < std::max(1u, opt_.workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  monitor_ = std::thread([this] { monitor_loop(); });
  log("listening on " + opt_.socket_path);
}

void Server::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    drain_start_ = std::chrono::steady_clock::now();
  }
  // Wake the accept loop's poll; the byte's value is irrelevant.
  const char b = 'q';
  (void)io::write_full(wake_w_.get(), &b, 1);
  cv_.notify_all();
  log("drain requested");
}

void Server::join() {
  if (!started_ || joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads are bounded by the handshake/submit timeouts;
  // wait for the last of them so no thread outlives `this`.
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return conn_live_ == 0; });
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  monitor_stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  cache_.flush_index();
  ::unlink(opt_.socket_path.c_str());
  joined_ = true;
  log("drained: " + std::to_string(c_completed_.load()) + " jobs served, " +
      std::to_string(c_cache_hits_.load()) + " cache hits, " +
      std::to_string(c_shed_.load()) + " shed");
}

void Server::accept_loop() {
  for (;;) {
    struct pollfd pfds[2];
    pfds[0] = {listen_fd_.get(), POLLIN, 0};
    pfds[1] = {wake_r_.get(), POLLIN, 0};
    int r;
    do {
      r = ::poll(pfds, 2, -1);
    } while (r < 0 && errno == EINTR);
    if (r < 0) break;
    if ((pfds[1].revents & POLLIN) != 0 || draining()) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;

    int cfd;
    do {
      cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
    } while (cfd < 0 && errno == EINTR);
    if (cfd < 0) {
      if (errno == EMFILE || errno == ENFILE) continue;  // shed by default
      if (draining()) break;
      continue;
    }
    c_connections_.fetch_add(1, std::memory_order_relaxed);
    set_send_timeout(cfd, 30);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++conn_live_;
    }
    // Detached with a live-count the join barrier waits on: a slow
    // handshake must not head-of-line-block new connections, and the
    // timeouts bound each thread's life.
    std::thread([this, cfd] {
      connection(io::Fd(cfd));
      std::lock_guard<std::mutex> lk(mu_);
      --conn_live_;
      cv_.notify_all();
    }).detach();
  }
  // Stop accepting immediately; the socket file disappears in join().
  listen_fd_.reset();
}

void Server::connection(io::Fd fd) {
  const int timeout = static_cast<int>(opt_.handshake_timeout_ms);
  try {
    obs::Json hello;
    if (read_frame(fd.get(), &hello, timeout) != FrameStatus::Ok) return;
    if (frame_type(hello) != "hello") {
      (void)try_send(fd.get(),
                     error_frame("bad_request", "expected a hello frame"));
      c_bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (const std::string m = hello_mismatch(hello); !m.empty()) {
      (void)try_send(fd.get(), error_frame("version_mismatch", m));
      c_handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
      log("handshake rejected: " + m);
      return;
    }
    if (!try_send(fd.get(), hello_ok_frame())) return;

    obs::Json submit;
    if (read_frame(fd.get(), &submit, timeout) != FrameStatus::Ok) return;
    if (frame_type(submit) != "submit") {
      (void)try_send(fd.get(),
                     error_frame("bad_request", "expected a submit frame"));
      c_bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto job = std::make_shared<Job>();
    try {
      job->req = parse_submit(submit);
    } catch (const std::exception& e) {
      (void)try_send(fd.get(), error_frame("bad_request", e.what()));
      c_bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    std::uint64_t deadline_ms = job->req.cfg.deadline_ms;
    if (deadline_ms == 0) deadline_ms = opt_.default_deadline_ms;
    if (deadline_ms != 0) {
      job->has_deadline = true;
      job->deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(deadline_ms);
    }

    // Admission: reserve a queue slot under the lock, send "queued" from
    // THIS thread while the job is still invisible to workers (a single
    // writer per fd at any moment -- otherwise a worker's "running" frame
    // could interleave bytes with ours), then publish the job.
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (draining()) {
        (void)try_send(fd.get(),
                       error_frame("draining", "daemon is shutting down"));
        return;
      }
      if (queue_.size() + queue_reserved_ >= opt_.queue_limit) {
        // Explicit backpressure: the client is told when to come back
        // instead of being queued without bound (or hung).
        (void)try_send(fd.get(), retry_after_frame(opt_.retry_after_ms,
                                                   "queue_full"));
        c_shed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      ++queue_reserved_;
    }
    const bool queued_sent = try_send(fd.get(), status_frame("queued"));
    bool shutting_down = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      --queue_reserved_;
      if (!queued_sent) return;  // client vanished between submit and ack
      // Re-check under the SAME lock that publishes: a drain that raced
      // in since the admission check above has already woken the workers,
      // and a job pushed now would sit in the queue forever with its
      // client blocked on a result that never comes.
      if (draining()) {
        shutting_down = true;
      } else {
        job->fd = std::move(fd);
        queue_.push_back(job);
        c_submitted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (shutting_down) {
      (void)try_send(fd.get(),
                     error_frame("draining", "daemon is shutting down"));
      return;
    }
    cv_.notify_all();
  } catch (const std::exception& e) {
    // Framing garbage, oversized lengths, hard I/O errors: drop the
    // connection; the daemon itself is unaffected.
    c_bad_requests_.fetch_add(1, std::memory_order_relaxed);
    log(std::string("connection error: ") + e.what());
  }
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return !queue_.empty() || draining(); });
      if (queue_.empty()) {
        if (draining()) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      running_.push_back(job);
    }
    serve(job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job));
    }
    cv_.notify_all();
  }
}

void Server::serve(const std::shared_ptr<Job>& job) {
  const int fd = job->fd.get();
  const std::string key = cache_key(job->req);

  if (std::optional<JobResult> hit = cache_.lookup(key)) {
    c_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    bool ok = try_send(fd, status_frame("cached"));
    for (const std::string& d : hit->diags) {
      ok = ok && try_send(fd, diag_frame(d));
    }
    ok = ok && try_send(fd, result_frame(*hit));
    if (!ok) c_disconnects_.fetch_add(1, std::memory_order_relaxed);
    c_completed_.fetch_add(1, std::memory_order_relaxed);
    log("cache hit " + key.substr(0, 12) + " (" + job->req.command + ")");
    return;
  }

  if (!try_send(fd, status_frame("running"))) {
    // The client is already gone; running the job would burn a slot for
    // nobody, and the cache gains little from speculative fills.
    c_disconnects_.fetch_add(1, std::memory_order_relaxed);
    c_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  JobResult res = run_job(job->req, &job->cancel);
  res.key = key;

  if (res.cancelled) {
    c_cancelled_.fetch_add(1, std::memory_order_relaxed);
    if (job->disconnected.load(std::memory_order_relaxed)) {
      c_disconnects_.fetch_add(1, std::memory_order_relaxed);
    } else {
      res.error = job->has_deadline &&
                          std::chrono::steady_clock::now() >= job->deadline
                      ? "job deadline exceeded"
                      : res.error;
      (void)try_send(fd, result_frame(res));
    }
    log("job cancelled (" + job->req.command + ")");
    return;
  }

  cache_.insert(key, res);
  if (res.exit == 2) c_failed_.fetch_add(1, std::memory_order_relaxed);

  bool ok = true;
  for (const std::string& d : res.diags) ok = ok && try_send(fd, diag_frame(d));
  ok = ok && try_send(fd, result_frame(res));
  if (!ok) c_disconnects_.fetch_add(1, std::memory_order_relaxed);
  c_completed_.fetch_add(1, std::memory_order_relaxed);
  log("job done (" + job->req.command + ") exit=" + std::to_string(res.exit) +
      " key=" + key.substr(0, 12));
}

void Server::monitor_loop() {
  while (!monitor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.monitor_tick_ms));
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lk(mu_);
    const bool drain_expired =
        draining() && drain_start_ + std::chrono::milliseconds(
                                         opt_.drain_grace_ms) <= now;
    for (const std::shared_ptr<Job>& j : running_) {
      if (j->cancel.load(std::memory_order_relaxed)) continue;
      if (j->has_deadline && now >= j->deadline) {
        j->cancel.store(true, std::memory_order_relaxed);
        continue;
      }
      if (drain_expired) {
        j->cancel.store(true, std::memory_order_relaxed);
        continue;
      }
      if (io::peer_hung_up(j->fd.get())) {
        j->disconnected.store(true, std::memory_order_relaxed);
        j->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections = c_connections_.load(std::memory_order_relaxed);
  c.handshake_rejects = c_handshake_rejects_.load(std::memory_order_relaxed);
  c.bad_requests = c_bad_requests_.load(std::memory_order_relaxed);
  c.submitted = c_submitted_.load(std::memory_order_relaxed);
  c.shed = c_shed_.load(std::memory_order_relaxed);
  c.completed = c_completed_.load(std::memory_order_relaxed);
  c.cache_hits = c_cache_hits_.load(std::memory_order_relaxed);
  c.failed = c_failed_.load(std::memory_order_relaxed);
  c.cancelled = c_cancelled_.load(std::memory_order_relaxed);
  c.disconnects = c_disconnects_.load(std::memory_order_relaxed);
  return c;
}

std::size_t Server::jobs_in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size() + running_.size();
}

void Server::log(const std::string& line) const {
  if (!opt_.verbose) return;
  std::fprintf(stderr, "cachierd: %s\n", line.c_str());
}

}  // namespace cico::daemon
