#include "cico/daemon/job.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "cico/analysis/diagnostics.hpp"
#include "cico/analysis/typestate.hpp"
#include "cico/cachier/plan_builder.hpp"
#include "cico/cachier/sharing.hpp"
#include "cico/common/hash.hpp"
#include "cico/common/stats.hpp"
#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/obs/collector.hpp"
#include "cico/obs/report.hpp"
#include "cico/sim/machine.hpp"
#include "cico/sim/plan_io.hpp"
#include "cico/srcann/annotator.hpp"
#include "cico/trace/trace.hpp"

namespace cico::daemon {

namespace {

const char* protocol_name(sim::ProtocolKind k) {
  return k == sim::ProtocolKind::DirNFullMap ? "dirn_full_map" : "dir1sw";
}

sim::SimConfig sim_config(const JobConfig& jc) {
  sim::SimConfig cfg;
  cfg.nodes = jc.nodes;
  if (!jc.faults.empty()) cfg.faults = fault::FaultSpec::parse(jc.faults);
  cfg.audit_invariants = jc.paranoid;
  cfg.boundary_threads = jc.boundary_threads;
  return cfg;
}

struct Traced {
  trace::Trace trace;
  std::string report;
};

/// Traces the program (the CLI's trace_program), honouring `cancel`.
Traced trace_program(const lang::Program& prog, std::uint32_t nodes,
                     const std::atomic<bool>* cancel) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  m.set_cancel_flag(cancel);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  Traced t;
  t.trace = w.take();
  cachier::SharingAnalyzer sa(t.trace, cfg.cache);
  t.report = sa.report(t.trace, m.pcs());
  return t;
}

/// A trace for annotate/plan: the supplied one when the request carries
/// it, else a fresh trace-mode run.
trace::Trace job_trace(const JobRequest& req, const lang::Program& prog,
                       const std::atomic<bool>* cancel) {
  if (!req.trace_text.empty()) {
    std::istringstream in(req.trace_text);
    return trace::load_text(in);
  }
  return trace_program(prog, req.cfg.nodes, cancel).trace;
}

void do_annotate(const JobRequest& req, const std::atomic<bool>* cancel,
                 JobResult& r) {
  const lang::Program prog = lang::parse(req.source);
  sim::SimConfig cfg;
  cfg.nodes = req.cfg.nodes;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  m.set_cancel_flag(cancel);
  trace::Trace t;
  lang::LoadedProgram lp(prog, m);
  if (!req.trace_text.empty()) {
    std::istringstream in(req.trace_text);
    t = trace::load_text(in);
  } else {
    trace::TraceWriter w;
    m.set_trace_writer(&w);
    w.set_labels(m.heap().trace_labels());
    m.run([&](sim::Proc& p) { lp.run_node(p); });
    t = w.take();
  }
  const srcann::AnnotateResult res =
      srcann::annotate(prog, t, lp, cfg.cache, {.mode = req.cfg.mode});
  r.out = lang::unparse(res.program);
  char line[160];
  std::snprintf(line, sizeof line,
                "# cachier: %zu annotations, %zu generated loops, %zu "
                "dropped, %zu races, %zu false-sharing blocks\n",
                res.inserted, res.generated_loops, res.dropped, res.races,
                res.false_shares);
  r.diags.emplace_back(line);
  if (!res.lint.diagnostics.empty()) {
    std::ostringstream ss;
    analysis::print_text(ss, "<annotated>", res.lint);
    r.diags.push_back("# cachier: self-lint:\n" + ss.str());
    if (res.lint.exit_code() == 2) r.exit = 2;
  }
}

void do_lint(const JobRequest& req, JobResult& r) {
  const lang::Program prog = lang::parse(req.source);
  const analysis::LintResult res = analysis::lint(prog);
  std::ostringstream ss;
  analysis::print_text(ss, req.name, res);
  r.out = ss.str();
  if (req.cfg.want_report) {
    r.report = analysis::lint_json(req.name, res).dump_string();
  }
  r.exit = res.exit_code();
}

void do_run(const JobRequest& req, const std::atomic<bool>* cancel,
            JobResult& r) {
  const lang::Program prog = lang::parse(req.source);
  sim::DirectivePlan plan;
  const sim::DirectivePlan* pp = nullptr;
  if (!req.plan_text.empty()) {
    std::istringstream in(req.plan_text);
    plan = sim::load_plan(in);
    pp = &plan;
  }
  const sim::SimConfig cfg = sim_config(req.cfg);
  obs::Collector col;
  sim::Machine m(cfg);
  m.set_cancel_flag(cancel);
  lang::LoadedProgram lp(prog, m);
  if (pp != nullptr) m.set_plan(pp);
  if (req.cfg.want_report) m.set_observer(&col);
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  r.out = format_run_stats(m, cfg);
  if (req.cfg.want_report) {
    obs::Json run_j =
        obs::run_json("run", m.exec_time(), m.epochs_completed(), m.stats(),
                      m.network(), col);
    std::vector<obs::Json> runs;
    runs.push_back(std::move(run_j));
    const obs::Json rep = obs::make_report(
        "run",
        obs::config_json(cfg, protocol_name(cfg.protocol), req.cfg.faults),
        std::move(runs));
    std::ostringstream os;
    rep.dump(os);
    r.report = os.str();
  }
}

void do_trace(const JobRequest& req, const std::atomic<bool>* cancel,
              JobResult& r) {
  const lang::Program prog = lang::parse(req.source);
  const Traced t = trace_program(prog, req.cfg.nodes, cancel);
  std::ostringstream os;
  trace::save_text(t.trace, os);
  r.out = os.str();
}

void do_report(const JobRequest& req, const std::atomic<bool>* cancel,
               JobResult& r) {
  const lang::Program prog = lang::parse(req.source);
  r.out = trace_program(prog, req.cfg.nodes, cancel).report;
}

void do_plan(const JobRequest& req, const std::atomic<bool>* cancel,
             JobResult& r) {
  const lang::Program prog = lang::parse(req.source);
  const trace::Trace t = job_trace(req, prog, cancel);
  sim::SimConfig cfg;
  cachier::PlanBuilder pb(t, cfg.cache);
  const sim::DirectivePlan plan = pb.build({.mode = req.cfg.mode});
  std::ostringstream os;
  sim::save_plan(plan, os);
  r.out = os.str();
}

}  // namespace

bool known_command(std::string_view cmd) {
  return cmd == "annotate" || cmd == "lint" || cmd == "run" ||
         cmd == "trace" || cmd == "report" || cmd == "plan";
}

std::string cache_key(const JobRequest& req) {
  common::ContentHasher h;
  h << req.command << req.name << req.source << req.trace_text
    << req.plan_text << std::to_string(req.cfg.nodes)
    << cachier::mode_name(req.cfg.mode) << req.cfg.faults
    << (req.cfg.paranoid ? "1" : "0") << (req.cfg.want_report ? "1" : "0");
  return h.hex();
}

JobResult run_job(const JobRequest& req, const std::atomic<bool>* cancel) {
  JobResult r;
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    r.cancelled = true;
    r.exit = 2;
    r.error = "run cancelled (deadline or client gone)";
    return r;
  }
  try {
    if (req.command == "annotate") {
      do_annotate(req, cancel, r);
    } else if (req.command == "lint") {
      do_lint(req, r);
    } else if (req.command == "run") {
      do_run(req, cancel, r);
    } else if (req.command == "trace") {
      do_trace(req, cancel, r);
    } else if (req.command == "report") {
      do_report(req, cancel, r);
    } else if (req.command == "plan") {
      do_plan(req, cancel, r);
    } else {
      throw std::runtime_error("unknown job command: " + req.command);
    }
  } catch (const sim::SimCancelled& e) {
    r = JobResult{};
    r.cancelled = true;
    r.exit = 2;
    r.error = e.what();
  } catch (const std::exception& e) {
    r = JobResult{};
    r.exit = 2;
    r.error = e.what();
  }
  return r;
}

std::string format_run_stats(const sim::Machine& m,
                             const sim::SimConfig& cfg) {
  std::string os;
  char buf[128];
  std::snprintf(buf, sizeof buf, "nodes:            %u\n", cfg.nodes);
  os += buf;
  std::snprintf(buf, sizeof buf, "execution time:   %llu cycles\n",
                static_cast<unsigned long long>(m.exec_time()));
  os += buf;
  std::snprintf(buf, sizeof buf, "epochs:           %u\n",
                m.epochs_completed());
  os += buf;
  std::vector<Stat> shown = {
      Stat::SharedLoads,   Stat::SharedStores, Stat::ReadMisses,
      Stat::WriteMisses,   Stat::WriteFaults,  Stat::Traps,
      Stat::Invalidations, Stat::Messages,     Stat::CheckOutX,
      Stat::CheckOutS,     Stat::CheckIns,     Stat::PrefetchIssued,
      Stat::BoundaryRounds};
  if (cfg.faults.injects()) {
    shown.insert(shown.end(),
                 {Stat::MsgDropped, Stat::MsgDuplicated, Stat::Retries,
                  Stat::PrefetchThrottled, Stat::WatchdogTrips});
  }
  for (const Stat s : shown) {
    std::snprintf(buf, sizeof buf, "%-17s %llu\n",
                  (std::string(stat_name(s)) + ":").c_str(),
                  static_cast<unsigned long long>(m.stats().total(s)));
    os += buf;
  }
  return os;
}

// --- JSON (de)serialization ------------------------------------------------

namespace {

using obs::Json;

std::string get_string(const Json& j, std::string_view key,
                       bool required = false) {
  const Json* v = j.find(key);
  if (v == nullptr) {
    if (required) {
      throw std::runtime_error("missing field: " + std::string(key));
    }
    return {};
  }
  if (v->type() != Json::Type::String) {
    throw std::runtime_error("field is not a string: " + std::string(key));
  }
  return v->as_string();
}

std::uint64_t get_u64(const Json& j, std::string_view key,
                      std::uint64_t fallback) {
  const Json* v = j.find(key);
  if (v == nullptr) return fallback;
  if (v->type() != Json::Type::Number) {
    throw std::runtime_error("field is not a number: " + std::string(key));
  }
  return v->as_u64();
}

bool get_bool(const Json& j, std::string_view key, bool fallback) {
  const Json* v = j.find(key);
  if (v == nullptr) return fallback;
  if (v->type() != Json::Type::Bool) {
    throw std::runtime_error("field is not a bool: " + std::string(key));
  }
  return v->as_bool();
}

}  // namespace

obs::Json submit_frame(const JobRequest& req) {
  Json f = Json::object();
  f.set("type", Json::string("submit"));
  f.set("command", Json::string(req.command));
  f.set("name", Json::string(req.name));
  f.set("source", Json::string(req.source));
  if (!req.trace_text.empty()) f.set("trace", Json::string(req.trace_text));
  if (!req.plan_text.empty()) f.set("plan", Json::string(req.plan_text));
  Json cfg = Json::object();
  cfg.set("nodes", Json::number(static_cast<std::uint64_t>(req.cfg.nodes)));
  cfg.set("mode", Json::string(cachier::mode_name(req.cfg.mode)));
  cfg.set("faults", Json::string(req.cfg.faults));
  cfg.set("paranoid", Json::boolean(req.cfg.paranoid));
  cfg.set("boundary_threads",
          Json::number(static_cast<std::uint64_t>(req.cfg.boundary_threads)));
  cfg.set("report", Json::boolean(req.cfg.want_report));
  cfg.set("deadline_ms", Json::number(req.cfg.deadline_ms));
  f.set("config", std::move(cfg));
  return f;
}

JobRequest parse_submit(const obs::Json& frame) {
  JobRequest req;
  req.command = get_string(frame, "command", /*required=*/true);
  if (!known_command(req.command)) {
    throw std::runtime_error("unknown job command: " + req.command);
  }
  req.name = get_string(frame, "name");
  req.source = get_string(frame, "source", /*required=*/true);
  req.trace_text = get_string(frame, "trace");
  req.plan_text = get_string(frame, "plan");
  const Json* cfg = frame.find("config");
  if (cfg != nullptr) {
    if (cfg->type() != Json::Type::Object) {
      throw std::runtime_error("config is not an object");
    }
    const std::uint64_t nodes = get_u64(*cfg, "nodes", 8);
    if (nodes == 0 || nodes > 4096) {
      throw std::runtime_error("config.nodes out of range: " +
                               std::to_string(nodes));
    }
    req.cfg.nodes = static_cast<std::uint32_t>(nodes);
    const std::string mode = get_string(*cfg, "mode");
    if (mode == "programmer") {
      req.cfg.mode = cachier::Mode::Programmer;
    } else if (mode.empty() || mode == "performance") {
      req.cfg.mode = cachier::Mode::Performance;
    } else {
      throw std::runtime_error("config.mode unknown: " + mode);
    }
    req.cfg.faults = get_string(*cfg, "faults");
    req.cfg.paranoid = get_bool(*cfg, "paranoid", false);
    const std::uint64_t bt = get_u64(*cfg, "boundary_threads", 1);
    if (bt == 0 || bt > 256) {
      throw std::runtime_error("config.boundary_threads out of range: " +
                               std::to_string(bt));
    }
    req.cfg.boundary_threads = static_cast<std::uint32_t>(bt);
    req.cfg.want_report = get_bool(*cfg, "report", false);
    req.cfg.deadline_ms = get_u64(*cfg, "deadline_ms", 0);
  }
  return req;
}

obs::Json job_result_json(const JobResult& res) {
  Json j = Json::object();
  j.set("exit", Json::number(static_cast<std::int64_t>(res.exit)));
  j.set("stdout", Json::string(res.out));
  j.set("report", Json::string(res.report));
  j.set("error", Json::string(res.error));
  Json diags = Json::array();
  for (const std::string& d : res.diags) diags.push_back(Json::string(d));
  j.set("diags", std::move(diags));
  return j;
}

JobResult job_result_from_json(const obs::Json& doc) {
  JobResult res;
  const Json* exit = doc.find("exit");
  if (exit == nullptr || exit->type() != Json::Type::Number) {
    throw std::runtime_error("result: missing exit code");
  }
  res.exit = static_cast<int>(exit->as_u64());
  res.out = get_string(doc, "stdout");
  res.report = get_string(doc, "report");
  res.error = get_string(doc, "error");
  const Json* diags = doc.find("diags");
  if (diags != nullptr && diags->type() == Json::Type::Array) {
    for (std::size_t i = 0; i < diags->size(); ++i) {
      res.diags.push_back(diags->at(i).as_string());
    }
  }
  return res;
}

obs::Json result_frame(const JobResult& res) {
  Json f = Json::object();
  f.set("type", Json::string("result"));
  f.set("cached", Json::boolean(res.cached));
  f.set("cancelled", Json::boolean(res.cancelled));
  f.set("key", Json::string(res.key));
  const Json body = job_result_json(res);
  for (std::size_t i = 0; i < body.size(); ++i) {
    const auto& [k, v] = body.entry(i);
    f.set(k, v);
  }
  return f;
}

JobResult parse_result(const obs::Json& frame) {
  JobResult res = job_result_from_json(frame);
  res.cached = get_bool(frame, "cached", false);
  res.cancelled = get_bool(frame, "cancelled", false);
  res.key = get_string(frame, "key");
  return res;
}

}  // namespace cico::daemon
