#include "cico/daemon/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "cico/analysis/diagnostics.hpp"
#include "cico/common/io.hpp"
#include "cico/common/version.hpp"
#include "cico/obs/report.hpp"

namespace cico::daemon {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw ProtocolError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

FrameStatus write_frame(int fd, const obs::Json& payload) {
  const std::string body = payload.dump_string();
  if (body.size() > kMaxFrameBytes) {
    throw ProtocolError("frame too large to send (" +
                        std::to_string(body.size()) + " bytes)");
  }
  unsigned char hdr[4];
  const auto n = static_cast<std::uint32_t>(body.size());
  hdr[0] = static_cast<unsigned char>(n);
  hdr[1] = static_cast<unsigned char>(n >> 8);
  hdr[2] = static_cast<unsigned char>(n >> 16);
  hdr[3] = static_cast<unsigned char>(n >> 24);
  // Header and body are written separately; a peer that dies between the
  // two leaves a half frame, which the reader reports as Closed.
  switch (io::write_full(fd, hdr, sizeof hdr)) {
    case io::IoStatus::Ok: break;
    case io::IoStatus::Closed: return FrameStatus::Closed;
    case io::IoStatus::Error: throw_errno("write frame header");
  }
  switch (io::write_full(fd, body.data(), body.size())) {
    case io::IoStatus::Ok: return FrameStatus::Ok;
    case io::IoStatus::Closed: return FrameStatus::Closed;
    case io::IoStatus::Error: throw_errno("write frame body");
  }
  return FrameStatus::Ok;  // unreachable
}

FrameStatus read_frame(int fd, obs::Json* out, int timeout_ms) {
  // The timeout covers the WHOLE frame: a peer that sends the header and
  // stalls cannot pin a handshake thread forever.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  const auto wait_readable = [&]() -> FrameStatus {
    if (timeout_ms < 0) return FrameStatus::Ok;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int ms = static_cast<int>(left.count());
    const int r = io::poll_in(fd, ms < 0 ? 0 : ms);
    if (r < 0) throw_errno("poll");
    return r == 0 ? FrameStatus::Timeout : FrameStatus::Ok;
  };

  if (const FrameStatus s = wait_readable(); s != FrameStatus::Ok) return s;
  unsigned char hdr[4];
  switch (io::read_full(fd, hdr, sizeof hdr)) {
    case io::IoStatus::Ok: break;
    case io::IoStatus::Closed: return FrameStatus::Closed;
    case io::IoStatus::Error: throw_errno("read frame header");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(hdr[0]) |
                          (static_cast<std::uint32_t>(hdr[1]) << 8) |
                          (static_cast<std::uint32_t>(hdr[2]) << 16) |
                          (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (n > kMaxFrameBytes) {
    throw ProtocolError("oversized frame (" + std::to_string(n) +
                        " bytes); peer is not speaking cachierd protocol " +
                        std::to_string(kDaemonProtocolVersion));
  }
  std::string body(n, '\0');
  if (n > 0) {
    if (const FrameStatus s = wait_readable(); s != FrameStatus::Ok) return s;
    switch (io::read_full(fd, body.data(), n)) {
      case io::IoStatus::Ok: break;
      case io::IoStatus::Closed: return FrameStatus::Closed;
      case io::IoStatus::Error: throw_errno("read frame body");
    }
  }
  try {
    *out = obs::Json::parse(body);
  } catch (const std::runtime_error& e) {
    throw ProtocolError(std::string("malformed frame payload: ") + e.what());
  }
  return FrameStatus::Ok;
}

obs::Json version_json() {
  obs::Json v = obs::Json::object();
  v.set("tool", obs::Json::string("cachier"));
  v.set("version", obs::Json::string(common::kToolVersion));
  obs::Json schemas = obs::Json::object();
  schemas.set("report", obs::Json::number(obs::kReportSchemaVersion));
  schemas.set("report_min_supported",
              obs::Json::number(obs::kReportSchemaMinSupported));
  schemas.set("lint", obs::Json::number(
                          static_cast<std::uint64_t>(analysis::kLintSchemaVersion)));
  schemas.set("daemon_protocol", obs::Json::number(kDaemonProtocolVersion));
  v.set("schemas", std::move(schemas));
  return v;
}

namespace {

obs::Json hello_like(std::string_view type) {
  obs::Json f = version_json();
  // "type" leads every frame; rebuild with it first for readability.
  obs::Json out = obs::Json::object();
  out.set("type", obs::Json::string(std::string(type)));
  for (std::size_t i = 0; i < f.size(); ++i) {
    const auto& [k, v] = f.entry(i);
    out.set(k, v);
  }
  return out;
}

}  // namespace

obs::Json hello_frame() { return hello_like("hello"); }
obs::Json hello_ok_frame() { return hello_like("hello_ok"); }

obs::Json error_frame(std::string_view code, std::string_view message) {
  obs::Json f = obs::Json::object();
  f.set("type", obs::Json::string("error"));
  f.set("code", obs::Json::string(std::string(code)));
  f.set("message", obs::Json::string(std::string(message)));
  return f;
}

obs::Json retry_after_frame(std::uint64_t ms, std::string_view reason) {
  obs::Json f = obs::Json::object();
  f.set("type", obs::Json::string("retry_after"));
  f.set("ms", obs::Json::number(ms));
  f.set("reason", obs::Json::string(std::string(reason)));
  return f;
}

obs::Json status_frame(std::string_view state) {
  obs::Json f = obs::Json::object();
  f.set("type", obs::Json::string("status"));
  f.set("state", obs::Json::string(std::string(state)));
  return f;
}

obs::Json diag_frame(std::string_view text) {
  obs::Json f = obs::Json::object();
  f.set("type", obs::Json::string("diag"));
  f.set("text", obs::Json::string(std::string(text)));
  return f;
}

std::string hello_mismatch(const obs::Json& hello) {
  const auto want = [](const obs::Json* v, std::uint64_t expect,
                       const char* what) -> std::string {
    if (v == nullptr || v->type() != obs::Json::Type::Number) {
      return std::string("peer did not announce its ") + what;
    }
    if (v->as_u64() != expect) {
      return std::string(what) + " mismatch: peer speaks " +
             v->number_lexeme() + ", this build speaks " +
             std::to_string(expect);
    }
    return {};
  };
  const obs::Json* schemas = hello.find("schemas");
  if (schemas == nullptr) return "peer did not announce its schema versions";
  if (std::string m =
          want(schemas->find("daemon_protocol"), kDaemonProtocolVersion,
               "daemon protocol version");
      !m.empty()) {
    return m;
  }
  if (std::string m = want(schemas->find("report"), obs::kReportSchemaVersion,
                           "report schema version");
      !m.empty()) {
    return m;
  }
  return want(schemas->find("lint"),
              static_cast<std::uint64_t>(analysis::kLintSchemaVersion),
              "lint schema version");
}

std::string_view frame_type(const obs::Json& frame) {
  const obs::Json* t = frame.find("type");
  if (t == nullptr || t->type() != obs::Json::Type::String) return {};
  return t->as_string();
}

}  // namespace cico::daemon
