#include "cico/daemon/result_cache.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace cico::daemon {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries == 0 ? 1 : max_entries) {
  if (!dir_.empty()) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
      throw std::runtime_error("cannot create cache directory " + dir_ +
                               ": " + ec.message());
    }
    store_ = std::make_unique<store::ObjectStore>(
        dir_ + "/store", store::ObjectStore::Open::kCreate);
  }
}

std::string ResultCache::path_of(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<JobResult> ResultCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++counters_.hits;
    touch_locked(key);
    JobResult r = it->second.result;
    r.cached = true;
    r.key = key;
    return r;
  }
  if (!dir_.empty()) {
    std::ifstream in(path_of(key));
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      try {
        obs::Json doc = obs::Json::parse(ss.str());
        // Resolve content-addressed payloads back inline.  get_object
        // re-verifies the hash, so a corrupt or gc'd object throws and
        // lands in the catch below -- a miss, never corrupt bytes.
        if (const obs::Json* ref = doc.find("stdout_ref")) {
          doc.set("stdout",
                  obs::Json::string(store_->get_object(ref->as_string())));
        }
        if (const obs::Json* ref = doc.find("report_ref")) {
          doc.set("report",
                  obs::Json::string(store_->get_object(ref->as_string())));
        }
        JobResult r = job_result_from_json(doc);
        ++counters_.hits;
        ++counters_.disk_loads;
        lru_.push_front(key);
        map_[key] = Entry{r, lru_.begin()};
        evict_locked();
        r.cached = true;
        r.key = key;
        return r;
      } catch (const std::exception&) {
        // A corrupt file (partial write from a crash) is treated as a
        // miss; the fresh result will overwrite it.
      }
    }
  }
  ++counters_.misses;
  return std::nullopt;
}

void ResultCache::insert(const std::string& key, const JobResult& r) {
  if (r.cancelled) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.result = r;
    touch_locked(key);
  } else {
    lru_.push_front(key);
    map_[key] = Entry{r, lru_.begin()};
    evict_locked();
  }
  ++counters_.inserts;
  if (!dir_.empty()) {
    // Write-then-rename so a crash mid-write never leaves a half entry
    // under the final name (lookup tolerates stray .tmp files).
    const std::string tmp = path_of(key) + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) return;  // disk tier is best-effort; memory tier has it
      obs::Json doc = job_result_json(r);
      // Big payloads go to the content-addressed store tier so identical
      // bytes across keys are stored once (and syncable between hosts).
      try {
        if (r.out.size() >= kInlineMax) {
          doc.set("stdout", obs::Json::string(""));
          doc.set("stdout_ref",
                  obs::Json::string(store_->put_object(r.out).hash_hex));
        }
        if (r.report.size() >= kInlineMax) {
          doc.set("report", obs::Json::string(""));
          doc.set("report_ref",
                  obs::Json::string(store_->put_object(r.report).hash_hex));
        }
      } catch (const std::exception&) {
        return;  // store tier unavailable: keep the memory tier only
      }
      doc.dump(out);
    }
    std::error_code ec;
    fs::rename(tmp, path_of(key), ec);
    if (ec) fs::remove(tmp, ec);
  }
}

void ResultCache::flush_index() const {
  if (dir_.empty()) return;
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    const std::string name = de.path().filename().string();
    if (name.size() != 37 || name.substr(32) != ".json") continue;
    const std::string key = name.substr(0, 32);
    if (!std::all_of(key.begin(), key.end(), [](unsigned char c) {
          return std::isxdigit(c) != 0;
        })) {
      continue;
    }
    std::error_code sec;
    const std::uint64_t bytes = de.file_size(sec);
    entries.emplace_back(key, sec ? 0 : bytes);
  }
  std::sort(entries.begin(), entries.end());

  obs::Json idx = obs::Json::object();
  idx.set("schema_version", obs::Json::number(std::uint64_t{1}));
  idx.set("generator", obs::Json::string("cachierd"));
  idx.set("entry_count",
          obs::Json::number(static_cast<std::uint64_t>(entries.size())));
  obs::Json arr = obs::Json::array();
  for (const auto& [key, bytes] : entries) {
    obs::Json e = obs::Json::object();
    e.set("key", obs::Json::string(key));
    e.set("bytes", obs::Json::number(bytes));
    arr.push_back(std::move(e));
  }
  idx.set("entries", std::move(arr));

  const std::string tmp = dir_ + "/index.json.tmp";
  {
    std::ofstream out(tmp);
    if (!out) return;
    idx.dump(out);
  }
  fs::rename(tmp, dir_ + "/index.json", ec);
  if (ec) fs::remove(tmp, ec);
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

void ResultCache::touch_locked(const std::string& key) {
  auto it = map_.find(key);
  lru_.erase(it->second.lru);
  lru_.push_front(key);
  it->second.lru = lru_.begin();
}

void ResultCache::evict_locked() {
  while (map_.size() > max_entries_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++counters_.evictions;
  }
}

}  // namespace cico::daemon
