// Content-addressed result cache: the "millions of users" half of
// cachierd.  Most fleet traffic is repeats -- the same source, trace, and
// config submitted again and again by CI jobs and editors -- so identical
// requests are served from here without re-simulating, in the spirit of
// memoized property checking ("Practical Run-time Checking via
// Unobtrusive Property Caching", PAPERS.md).
//
// Keys are the 128-bit content hashes of job.hpp's cache_key().  Entries
// hold the complete JobResult (stdout bytes, report JSON, diagnostics,
// exit code), so a hit is byte-identical to the fresh run that populated
// it -- the property the daemon soak test and the CI daemon-gate pin.
//
// Two tiers: a bounded in-memory hot set (LRU-evicted) and, when a cache
// directory is configured, one JSON file per key that survives daemon
// restarts.  Memory eviction never deletes the file tier; a later lookup
// quietly reloads from disk.  flush_index() writes a human-readable
// index of the file tier; the daemon calls it during graceful drain.
//
// Large result payloads (stdout bytes, report JSON) are not inlined in
// the per-key file: they go into a content-addressed ObjectStore under
// <dir>/store, and the entry carries their hashes.  Different keys whose
// jobs produced the same bytes -- e.g. the same source at two deadline
// settings, or a report that did not change across a config tweak --
// share one object, and `cachier sync` can move the store tier between
// hosts.  A missing or corrupt object turns the lookup into a miss, same
// as a corrupt entry file.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cico/daemon/job.hpp"
#include "cico/store/store.hpp"

namespace cico::daemon {

class ResultCache {
 public:
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;   ///< memory-tier only
    std::uint64_t disk_loads = 0;  ///< hits served by reloading a file
  };

  /// `dir` empty => memory-only.  The directory is created if missing.
  explicit ResultCache(std::string dir = {}, std::size_t max_entries = 1024);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result (cached=true, key filled) or nullopt.
  [[nodiscard]] std::optional<JobResult> lookup(const std::string& key);

  /// Stores `r` under `key`.  Cancelled results are refused (their bytes
  /// depend on when the deadline fired, not on the request).
  void insert(const std::string& key, const JobResult& r);

  /// Writes `<dir>/index.json` describing the file tier (sorted keys,
  /// exit codes, byte sizes).  No-op when memory-only.  Called on drain
  /// so a restarted daemon -- or an operator -- can see what survived.
  void flush_index() const;

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The content-addressed payload store (nullptr when memory-only).
  [[nodiscard]] const store::ObjectStore* artifact_store() const {
    return store_.get();
  }

  /// Payloads at or above this size are stored by content hash instead of
  /// inline in the entry JSON.
  static constexpr std::size_t kInlineMax = 128;

 private:
  void touch_locked(const std::string& key);
  void evict_locked();
  [[nodiscard]] std::string path_of(const std::string& key) const;

  std::string dir_;
  std::size_t max_entries_;
  std::unique_ptr<store::ObjectStore> store_;  ///< set iff dir_ non-empty

  mutable std::mutex mu_;
  struct Entry {
    JobResult result;
    std::list<std::string>::iterator lru;
  };
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< front = most recent
  Counters counters_;
};

}  // namespace cico::daemon
