// Job model shared by cachierd and the `cachier --daemon` client mode.
//
// A job is one CLI-equivalent request: a command (annotate / lint / run /
// trace / report / plan), the MiniPar source, an optional pre-recorded
// miss trace, an optional directive plan, and the deterministic subset of
// the simulator configuration.  run_job() executes it IN-PROCESS and
// returns the exact bytes a one-shot `cachier <command>` would have
// printed -- that equivalence is the content-addressed cache's contract
// (a cache hit must be indistinguishable from a fresh run) and is pinned
// by tests/integration/daemon_cli_test.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cico/cachier/chooser.hpp"
#include "cico/obs/json.hpp"
#include "cico/sim/config.hpp"

namespace cico::sim {
class Machine;
}

namespace cico::daemon {

/// Deterministic job configuration (everything that can change the output
/// bytes, plus the deadline, which deliberately cannot).
struct JobConfig {
  std::uint32_t nodes = 8;
  cachier::Mode mode = cachier::Mode::Performance;
  std::string faults;        ///< FaultSpec text; empty = faults disabled
  bool paranoid = false;
  std::uint32_t boundary_threads = 1;
  bool want_report = false;  ///< produce the --report JSON in JobResult
  /// Wall-clock budget for this job in milliseconds; 0 = server default.
  /// NOT part of the cache key: it bounds host time, not simulated state.
  std::uint64_t deadline_ms = 0;
};

struct JobRequest {
  std::string command;     ///< annotate|lint|run|trace|report|plan
  std::string name;        ///< client-side file name (appears in lint text)
  std::string source;      ///< MiniPar source text
  std::string trace_text;  ///< optional saved trace (annotate/plan reuse it)
  std::string plan_text;   ///< optional directive plan (run)
  JobConfig cfg;
};

struct JobResult {
  int exit = 0;            ///< the CLI exit contract: 0 ok / 1 warn / 2 error
  bool cached = false;     ///< served from the result cache
  bool cancelled = false;  ///< deadline expired or client gone; never cached
  std::string key;         ///< content-addressed cache key (hex)
  std::string out;         ///< deterministic stdout bytes
  std::string report;      ///< --report JSON bytes (want_report)
  std::string error;       ///< program-error message (exit == 2)
  std::vector<std::string> diags;  ///< stderr lines, in emit order
};

/// True for the commands a daemon job may name.
[[nodiscard]] bool known_command(std::string_view cmd);

/// Content-addressed cache key: a 128-bit hash over (command, name,
/// source, trace, plan, deterministic config).  deadline_ms and
/// boundary_threads are excluded -- the first bounds host time only, the
/// second is guaranteed byte-identical by boundary_equiv_test, so cached
/// results are shared across thread counts.
[[nodiscard]] std::string cache_key(const JobRequest& req);

/// Executes the job in-process.  `cancel` (may be null) is polled at
/// every simulator window boundary; once true the run aborts and the
/// result comes back cancelled (exit 2, never cacheable).  All other
/// failures -- parse errors, fault-injection timeouts, deadlocks -- map
/// to exit 2 with the error message, exactly like the CLI's catch-all.
[[nodiscard]] JobResult run_job(const JobRequest& req,
                                const std::atomic<bool>* cancel = nullptr);

/// The deterministic stats block `cachier run` prints (shared so the CLI
/// and daemon emit identical bytes; the nondeterministic host wall-clock
/// line stays on the CLI's stderr).
[[nodiscard]] std::string format_run_stats(const sim::Machine& m,
                                           const sim::SimConfig& cfg);

// --- JSON (de)serialization ------------------------------------------------

/// Submit frame for a request (protocol.hpp's conversation).
[[nodiscard]] obs::Json submit_frame(const JobRequest& req);
/// Parses a submit frame; throws std::runtime_error on malformed fields.
[[nodiscard]] JobRequest parse_submit(const obs::Json& frame);

/// Result frame (diags ride along so a cache hit can replay them).
[[nodiscard]] obs::Json result_frame(const JobResult& res);
[[nodiscard]] JobResult parse_result(const obs::Json& frame);

/// Persistent cache-entry form (no type tag; cached/cancelled excluded).
[[nodiscard]] obs::Json job_result_json(const JobResult& res);
[[nodiscard]] JobResult job_result_from_json(const obs::Json& doc);

}  // namespace cico::daemon
