// The cachierd wire protocol: length-prefixed JSON frames over a
// Unix-domain stream socket (docs/cachierd.md has the full reference).
//
// Framing: each message is a 4-byte little-endian payload length followed
// by that many bytes of canonical JSON (the obs::Json dump form).  A
// length above kMaxFrameBytes is a protocol error -- it means the peer is
// not speaking cachierd (or is hostile) and the connection is dropped
// before any allocation is attempted.
//
// Conversation (client drives):
//
//   client -> hello            {type, tool, version, schemas{...}}
//   server -> hello_ok         (same shape)  |  error{code:"version_mismatch"}
//   client -> submit           {type, command, name, source, trace?, plan?,
//                               config{nodes, mode, faults, paranoid,
//                                      boundary_threads, report, deadline_ms}}
//   server -> status*          {type, state: queued|running|cached}
//          -> retry_after      {type, ms, reason}        (shed: try again)
//          -> diag*            {type, text}              (stderr stream)
//          -> result           {type, exit, cached, key, stdout, report?,
//                               error?}
//          -> error            {type, code, message}     (request rejected)
//
// Every frame is self-describing via its "type" key, so either side can
// skip frames it does not understand (forward compatibility within one
// protocol version).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "cico/obs/json.hpp"

namespace cico::daemon {

/// Bump on any incompatible change to the framing or the conversation
/// above.  The handshake rejects a peer whose protocol (or report/lint
/// schema) differs, so a fleet can never half-upgrade into silent
/// misparses.
inline constexpr std::uint64_t kDaemonProtocolVersion = 1;

/// Hard ceiling on one frame's payload (sources, traces and reports are
/// MBs at most; anything larger is garbage or abuse).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Malformed framing / JSON / conversation.  Distinct from a clean close
/// so callers can tell "peer went away" from "peer spoke garbage".
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameStatus : std::uint8_t {
  Ok,       ///< a frame was read/written
  Closed,   ///< peer closed (EOF / EPIPE) -- normal lifecycle event
  Timeout,  ///< read_frame timed out (handshake guard)
};

/// Writes one frame.  Returns Closed when the peer is gone (callers treat
/// that as a client disconnect, not an error); throws ProtocolError on
/// any other I/O failure.
FrameStatus write_frame(int fd, const obs::Json& payload);

/// Reads one frame into `out`.  `timeout_ms` < 0 blocks indefinitely;
/// otherwise the whole frame must arrive within the window.  Throws
/// ProtocolError on oversized/underflowing lengths, malformed JSON, or
/// hard I/O errors.
FrameStatus read_frame(int fd, obs::Json* out, int timeout_ms = -1);

/// The version identity document: tool version plus every schema version
/// this build speaks.  `cachier version` prints exactly this; the
/// handshake embeds it.
[[nodiscard]] obs::Json version_json();

// --- frame builders --------------------------------------------------------

[[nodiscard]] obs::Json hello_frame();
[[nodiscard]] obs::Json hello_ok_frame();
[[nodiscard]] obs::Json error_frame(std::string_view code,
                                    std::string_view message);
[[nodiscard]] obs::Json retry_after_frame(std::uint64_t ms,
                                          std::string_view reason);
[[nodiscard]] obs::Json status_frame(std::string_view state);
[[nodiscard]] obs::Json diag_frame(std::string_view text);

/// Checks a hello / hello_ok frame against this build's versions.
/// Returns an empty string on compatibility, else a human-readable
/// mismatch description (protocol, report schema, or lint schema).
[[nodiscard]] std::string hello_mismatch(const obs::Json& hello);

/// Frame "type" accessor ("" when absent / not an object).
[[nodiscard]] std::string_view frame_type(const obs::Json& frame);

}  // namespace cico::daemon
