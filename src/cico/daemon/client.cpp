#include "cico/daemon/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "cico/common/io.hpp"
#include "cico/daemon/protocol.hpp"

namespace cico::daemon {

namespace {

/// Connects to the Unix socket; invalid Fd when the daemon is not there
/// (ENOENT / ECONNREFUSED -- both mean "retry later"), throws on anything
/// structural (path too long, out of descriptors).
io::Fd try_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  io::Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) return io::Fd();
    throw std::runtime_error("connect(" + path + "): " + std::strerror(errno));
  }
  return fd;
}

/// What one connect-and-submit attempt produced.
struct Attempt {
  bool retry = false;           ///< transient: back off and try again
  std::uint64_t retry_ms = 0;   ///< server-suggested delay (0 = use backoff)
  JobResult result;
};

Attempt attempt_once(const ClientOptions& opt, const JobRequest& req) {
  Attempt a;
  io::Fd fd = try_connect(opt.socket_path);
  if (!fd.valid()) {
    a.retry = true;  // daemon not (yet) listening
    return a;
  }

  if (write_frame(fd.get(), hello_frame()) != FrameStatus::Ok) {
    a.retry = true;
    return a;
  }
  obs::Json frame;
  if (read_frame(fd.get(), &frame) != FrameStatus::Ok) {
    a.retry = true;  // daemon closed during handshake (e.g. drain raced in)
    return a;
  }
  if (frame_type(frame) == "error") {
    const obs::Json* code = frame.find("code");
    const obs::Json* msg = frame.find("message");
    const std::string text = msg != nullptr ? msg->as_string() : "";
    if (code != nullptr && code->as_string() == "version_mismatch") {
      throw VersionMismatch("daemon rejected handshake: " + text);
    }
    throw std::runtime_error("daemon rejected handshake: " + text);
  }
  if (frame_type(frame) != "hello_ok") {
    throw ProtocolError("expected hello_ok, got frame type '" +
                        std::string(frame_type(frame)) + "'");
  }
  // Symmetric check: the client refuses a daemon from the future too.
  const std::string mismatch = hello_mismatch(frame);
  if (!mismatch.empty()) {
    throw VersionMismatch("daemon version incompatible: " + mismatch);
  }

  if (write_frame(fd.get(), submit_frame(req)) != FrameStatus::Ok) {
    a.retry = true;
    return a;
  }

  bool accepted = false;  // a queued/running/cached status was seen
  for (;;) {
    const FrameStatus st = read_frame(fd.get(), &frame);
    if (st != FrameStatus::Ok) {
      if (!accepted) {
        a.retry = true;  // dropped before admission: safe to resubmit
        return a;
      }
      throw std::runtime_error(
          "connection to daemon lost mid-job (after admission)");
    }
    const std::string_view type = frame_type(frame);
    if (type == "retry_after") {
      const obs::Json* ms = frame.find("ms");
      a.retry = true;
      a.retry_ms = ms != nullptr ? ms->as_u64() : 0;
      return a;
    }
    if (type == "status") {
      accepted = true;
      if (opt.on_status) {
        const obs::Json* state = frame.find("state");
        opt.on_status(state != nullptr ? state->as_string() : "");
      }
      continue;
    }
    if (type == "diag") {
      if (opt.on_diag) {
        const obs::Json* text = frame.find("text");
        opt.on_diag(text != nullptr ? text->as_string() : "");
      }
      continue;
    }
    if (type == "error") {
      const obs::Json* code = frame.find("code");
      const obs::Json* msg = frame.find("message");
      const std::string c = code != nullptr ? code->as_string() : "";
      const std::string m = msg != nullptr ? msg->as_string() : "";
      if (c == "draining") {
        // Safe to resubmit even after admission: the server only sends
        // "draining" for jobs it never started (a successor may bind).
        a.retry = true;
        return a;
      }
      throw std::runtime_error("daemon error (" + c + "): " + m);
    }
    if (type == "result") {
      a.result = parse_result(frame);
      return a;
    }
    // Unknown frame type within the same protocol version: skip.
  }
}

}  // namespace

std::uint64_t backoff_delay_ms(const ClientOptions& opt,
                               std::uint32_t attempt) {
  // Same shape as the fault layer's retransmit backoff (PR 1):
  // exponential with a hard cap, and shift-overflow guarded.
  const std::uint64_t shifted =
      attempt >= 63 ? opt.backoff_cap_ms : (opt.backoff_base_ms << attempt);
  return shifted > opt.backoff_cap_ms ? opt.backoff_cap_ms : shifted;
}

JobResult submit_job(const ClientOptions& opt, const JobRequest& req) {
  const std::uint32_t attempts = opt.max_attempts == 0 ? 1 : opt.max_attempts;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    Attempt a = attempt_once(opt, req);
    if (!a.retry) return a.result;
    if (attempt + 1 == attempts) break;
    const std::uint64_t delay =
        a.retry_ms != 0 ? a.retry_ms : backoff_delay_ms(opt, attempt);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  throw std::runtime_error("daemon at " + opt.socket_path +
                           " unreachable or overloaded after " +
                           std::to_string(attempts) + " attempts");
}

}  // namespace cico::daemon
