// The `cachier --daemon <sock>` client: connects, version-handshakes,
// submits one job, and streams the server's frames back through
// callbacks until the result arrives.
//
// Transient conditions -- the daemon not yet listening (connect refused),
// a shed submit (retry_after), or a draining daemon -- are retried with
// the exponential backoff policy the fault layer established in PR 1:
// min(cap, base << attempt).  A version mismatch is NOT transient: it
// raises VersionMismatch so the CLI can exit 2 immediately (a
// half-upgraded fleet must fail loudly, not loop).
//
// A connection lost mid-stream (after submit was accepted) is a hard
// error too: the job may have side effects on the cache, and silently
// resubmitting would hide daemon crashes from the user.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "cico/daemon/job.hpp"

namespace cico::daemon {

/// Handshake rejected: the daemon speaks a different protocol or schema
/// version.  Maps to exit 2 in the CLI.
class VersionMismatch : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  std::string socket_path;
  /// Total connect/submit attempts before giving up (>= 1).
  std::uint32_t max_attempts = 8;
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  /// Called for each status frame ("queued", "running", "cached").
  std::function<void(const std::string&)> on_status;
  /// Called for each diag frame (the job's stderr stream, line by line).
  std::function<void(const std::string&)> on_diag;
};

/// Backoff delay before retry `attempt` (0-based): min(cap, base << attempt).
[[nodiscard]] std::uint64_t backoff_delay_ms(const ClientOptions& opt,
                                             std::uint32_t attempt);

/// Submits `req` to the daemon at opt.socket_path and returns its result.
/// Throws VersionMismatch on handshake rejection and std::runtime_error
/// when the daemon is unreachable after max_attempts, rejects the
/// request, or vanishes mid-stream.
[[nodiscard]] JobResult submit_job(const ClientOptions& opt,
                                   const JobRequest& req);

}  // namespace cico::daemon
