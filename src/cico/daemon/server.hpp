// cachierd's serving core: a Unix-domain socket listener, a bounded job
// queue with explicit backpressure, a worker pool, and a deadline /
// disconnect monitor.  Robustness properties (all tested):
//
//   * Bounded queue + load shedding.  A submit that arrives with the
//     queue full gets a retry_after frame and a closed connection --
//     never unbounded buffering, never a silent hang.
//   * Per-job deadlines with cooperative cancellation.  The monitor
//     thread flips the job's cancel flag; the simulator observes it at
//     the next window boundary and unwinds with SimCancelled.
//   * Client-disconnect reclamation.  The monitor polls running jobs'
//     sockets for hangup and cancels work nobody is waiting for, so a
//     vanished client frees its worker slot within one monitor tick.
//   * Poisoned-job isolation.  Every job failure (parse error, injected
//     fault exhausting its budget, SimDeadlock from the liveness
//     watchdog, InvariantViolation) is caught per job and returned as a
//     structured result; the pool keeps serving.
//   * Graceful drain.  request_drain() stops the accept loop; workers
//     finish the queue (the monitor cancels jobs still running past the
//     drain grace), the cache index is flushed, and the socket file is
//     removed.  The cachierd binary wires SIGTERM/SIGINT to this.
//
// The class is used two ways: embedded in-process by the tests and the
// throughput bench (start()/request_drain()/join()), and wrapped by the
// cachierd binary with real signal handling.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cico/common/io.hpp"
#include "cico/daemon/job.hpp"
#include "cico/daemon/result_cache.hpp"

namespace cico::daemon {

struct ServerOptions {
  std::string socket_path;
  std::uint32_t workers = 2;
  std::uint32_t queue_limit = 8;     ///< queued (not yet running) jobs
  std::string cache_dir;             ///< empty = memory-only cache
  std::size_t cache_entries = 1024;  ///< memory-tier bound
  std::uint64_t default_deadline_ms = 0;  ///< 0 = jobs have no deadline
  std::uint64_t drain_grace_ms = 5000;    ///< then running jobs are cancelled
  std::uint64_t retry_after_ms = 200;     ///< backoff hint for shed clients
  std::uint64_t handshake_timeout_ms = 5000;
  std::uint64_t monitor_tick_ms = 20;
  bool verbose = false;  ///< one stderr line per lifecycle event
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (replacing a stale file from a crashed daemon),
  /// then spawns the accept loop, workers, and monitor.  Throws
  /// std::runtime_error when the path is unusable or actively served.
  void start();

  /// Begins graceful drain: stop accepting, let workers finish the
  /// queue, cancel whatever still runs after drain_grace_ms.  Safe to
  /// call from any thread, and more than once.
  void request_drain();

  /// Waits for the drain to complete, flushes the cache index, removes
  /// the socket file.  Call after request_drain().
  void join();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  struct Counters {
    std::uint64_t connections = 0;
    std::uint64_t handshake_rejects = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t submitted = 0;
    std::uint64_t shed = 0;        ///< retry_after sent (queue full)
    std::uint64_t completed = 0;   ///< results delivered (fresh or cached)
    std::uint64_t cache_hits = 0;
    std::uint64_t failed = 0;      ///< exit-2 results (poisoned jobs)
    std::uint64_t cancelled = 0;   ///< deadline expiry or client gone
    std::uint64_t disconnects = 0; ///< client vanished mid-stream
  };
  [[nodiscard]] Counters counters() const;

  /// Queued + running jobs (a shed-and-retry test polls this for zero).
  [[nodiscard]] std::size_t jobs_in_flight() const;

  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServerOptions& options() const { return opt_; }

 private:
  struct Job {
    JobRequest req;
    io::Fd fd;
    std::atomic<bool> cancel{false};
    std::atomic<bool> disconnected{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  void accept_loop();
  void connection(io::Fd fd);
  void worker_loop();
  void monitor_loop();
  void serve(const std::shared_ptr<Job>& job);
  void log(const std::string& line) const;

  ServerOptions opt_;
  ResultCache cache_;

  io::Fd listen_fd_;
  io::Fd wake_r_, wake_w_;  ///< self-pipe: request_drain -> accept loop

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::thread monitor_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::size_t queue_reserved_ = 0;  ///< admission slots held pre-publish
  std::vector<std::shared_ptr<Job>> running_;
  std::uint64_t conn_live_ = 0;  ///< live connection threads (join barrier)

  std::atomic<bool> draining_{false};
  std::atomic<bool> monitor_stop_{false};
  std::chrono::steady_clock::time_point drain_start_{};
  bool started_ = false;
  bool joined_ = false;

  // Counters (relaxed atomics: monotonic telemetry, no ordering needed).
  std::atomic<std::uint64_t> c_connections_{0};
  std::atomic<std::uint64_t> c_handshake_rejects_{0};
  std::atomic<std::uint64_t> c_bad_requests_{0};
  std::atomic<std::uint64_t> c_submitted_{0};
  std::atomic<std::uint64_t> c_shed_{0};
  std::atomic<std::uint64_t> c_completed_{0};
  std::atomic<std::uint64_t> c_cache_hits_{0};
  std::atomic<std::uint64_t> c_failed_{0};
  std::atomic<std::uint64_t> c_cancelled_{0};
  std::atomic<std::uint64_t> c_disconnects_{0};
};

}  // namespace cico::daemon
