#include "cico/proto/dirn.hpp"

#include <algorithm>
#include <sstream>

namespace cico::proto {

using mem::LineState;
using net::MsgType;

namespace {

void add_sharer(DirEntry& e, NodeId n) {
  auto it = std::lower_bound(e.sharers.begin(), e.sharers.end(), n);
  if (it == e.sharers.end() || *it != n) {
    e.sharers.insert(it, n);
    e.count = static_cast<std::uint32_t>(e.sharers.size());
  }
}

void add_past(DirEntry& e, NodeId n) {
  auto it = std::lower_bound(e.past_sharers.begin(), e.past_sharers.end(), n);
  if (it == e.past_sharers.end() || *it != n) e.past_sharers.insert(it, n);
}

void remove_sharer(DirEntry& e, NodeId n) {
  auto it = std::lower_bound(e.sharers.begin(), e.sharers.end(), n);
  if (it != e.sharers.end() && *it == n) {
    e.sharers.erase(it);
    e.count = static_cast<std::uint32_t>(e.sharers.size());
    add_past(e, n);
  }
}

/// Same loss-detection model as Dir1SW: the requester times out two
/// hardware miss latencies after issue and the caller retries.
ServiceResult dropped_result(Cycle now, const CostModel& cost) {
  ServiceResult r;
  r.dropped = true;
  r.done_at = now + 2 * cost.hw_miss_latency();
  return r;
}

}  // namespace

DirNFullMap::DirNFullMap(std::uint32_t nodes, const CostModel& cost,
                         net::Network& net, Stats& stats, CacheControl& caches)
    : nodes_(nodes), cost_(cost), net_(&net), stats_(&stats), caches_(&caches) {}

const DirEntry* DirNFullMap::entry(Block b) const {
  auto it = dir_.find(b);
  return it == dir_.end() ? nullptr : &it->second;
}

Cycle DirNFullMap::invalidate_sharers_hw(DirEntry& e, Block b, NodeId home,
                                         NodeId keep, std::uint32_t* sent) {
  // Parallel hardware invalidation: sends overlap, the directory pays a
  // small serialization per message, and completion is gated on the
  // slowest ack (one RTT in the uniform network).
  std::uint32_t n = 0;
  Cycle max_rtt = 0;
  const std::vector<NodeId> targets = e.sharers;
  for (NodeId s : targets) {
    if (s == keep) continue;
    net_->count(home, MsgType::Invalidate);
    net_->count(s, MsgType::Ack);
    caches_->invalidate(s, b);
    remove_sharer(e, s);
    max_rtt = std::max(max_rtt, net_->latency(home, s) + net_->latency(s, home));
    ++n;
    stats_->add(home, Stat::Invalidations);
  }
  if (sent != nullptr) *sent = n;
  return n == 0 ? 0 : max_rtt + n * cost_.dir_hw;
}

ServiceResult DirNFullMap::get_shared(NodeId req, Block b, Cycle now,
                                      bool prefetch) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  const MsgType req_msg = prefetch ? MsgType::PrefetchReq : MsgType::Request;
  const MsgType rep_msg = prefetch ? MsgType::PrefetchReply : MsgType::DataReply;
  ServiceResult r;

  switch (e.state) {
    case DirState::Idle:
    case DirState::Shared: {
    const auto rq = net_->deliver(req, home, req_msg, now);
    if (rq.dropped) return dropped_result(now, cost_);
    Cycle t = rq.at + cost_.dir_hw + cost_.mem_access;
    if (prefetch) {
      // Prefetches are never retried; their reply leg is reliable so a
      // lost prefetch never leaves the directory ahead of the cache.
      t = net_->send(home, req, rep_msg, t);
      e.state = DirState::Shared;
      add_sharer(e, req);
      if (e.owner == kInvalidNode) e.owner = req;
      r.done_at = t;
      return r;
    }
    const auto rp = net_->deliver(home, req, rep_msg, t);
    e.state = DirState::Shared;
    add_sharer(e, req);
    if (e.owner == kInvalidNode) e.owner = req;
    if (rp.dropped) return dropped_result(now, cost_);
    r.done_at = rp.at;
    return r;
    }
    case DirState::Exclusive: {
    if (e.owner == req) {
      r.done_at = now + cost_.hit;
      return r;
    }
    // All-hardware 3-hop forwarding: home forwards the request to the
    // owner, which downgrades and sends the data onward.  No trap.
    const auto rq = net_->deliver(req, home, req_msg, now);
    if (rq.dropped) return dropped_result(now, cost_);
    Cycle t = rq.at + cost_.dir_hw;
    t = net_->send(home, e.owner, MsgType::Recall, t);
    caches_->downgrade(e.owner, b);
    stats_->add(e.owner, Stat::Writebacks);
    net_->count(e.owner, MsgType::Writeback);  // sharing writeback home
    if (prefetch) {
      t = net_->send(e.owner, req, rep_msg, t);
      e.state = DirState::Shared;
      add_sharer(e, e.owner);
      add_sharer(e, req);
      r.done_at = t;
      return r;
    }
    const auto rp = net_->deliver(e.owner, req, rep_msg, t);
    e.state = DirState::Shared;
    add_sharer(e, e.owner);
    add_sharer(e, req);
    if (rp.dropped) return dropped_result(now, cost_);
    r.done_at = rp.at;
    return r;
    }
  }
  r.done_at = now;
  return r;
}

ServiceResult DirNFullMap::get_exclusive(NodeId req, Block b, Cycle now,
                                       bool prefetch) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  const MsgType req_msg = prefetch ? MsgType::PrefetchReq : MsgType::Request;
  const MsgType rep_msg = prefetch ? MsgType::PrefetchReply : MsgType::DataReply;
  ServiceResult r;

  switch (e.state) {
    case DirState::Idle: {
    const auto rq = net_->deliver(req, home, req_msg, now);
    if (rq.dropped) return dropped_result(now, cost_);
    Cycle t = rq.at + cost_.dir_hw + cost_.mem_access;
    if (prefetch) {
      t = net_->send(home, req, rep_msg, t);
      e.state = DirState::Exclusive;
      e.owner = req;
      e.sharers.clear();
      e.count = 0;
      r.done_at = t;
      return r;
    }
    const auto rp = net_->deliver(home, req, rep_msg, t);
    e.state = DirState::Exclusive;
    e.owner = req;
    e.sharers.clear();
    e.count = 0;
    if (rp.dropped) return dropped_result(now, cost_);
    r.done_at = rp.at;
    return r;
    }
    case DirState::Shared: {
    // Hardware invalidation of every other sharer, in parallel.
    const bool req_had_copy =
        std::binary_search(e.sharers.begin(), e.sharers.end(), req);
    const auto rq = net_->deliver(req, home, req_msg, now);
    if (rq.dropped) return dropped_result(now, cost_);
    Cycle t = rq.at + cost_.dir_hw;
    std::uint32_t sent = 0;
    t += invalidate_sharers_hw(e, b, home, req, &sent);
    r.invalidations = sent;
    if (!req_had_copy) t += cost_.mem_access;
    const MsgType rep = req_had_copy && !prefetch ? MsgType::Ack : rep_msg;
    if (prefetch) {
      t = net_->send(home, req, rep, t);
      e.state = DirState::Exclusive;
      e.owner = req;
      e.sharers.clear();
      e.count = 0;
      r.done_at = t;
      return r;
    }
    const auto rp = net_->deliver(home, req, rep, t);
    e.state = DirState::Exclusive;
    e.owner = req;
    e.sharers.clear();
    e.count = 0;
    if (rp.dropped) return dropped_result(now, cost_);
    r.done_at = rp.at;
    return r;
    }
    case DirState::Exclusive: {
    if (e.owner == req) {
      r.done_at = now + cost_.hit;
      return r;
    }
    // Hardware owner transfer (3-hop).
    const auto rq = net_->deliver(req, home, req_msg, now);
    if (rq.dropped) return dropped_result(now, cost_);
    Cycle t = rq.at + cost_.dir_hw;
    t = net_->send(home, e.owner, MsgType::Recall, t);
    caches_->invalidate(e.owner, b);
    add_past(e, e.owner);
    stats_->add(e.owner, Stat::Writebacks);
    net_->count(e.owner, MsgType::Writeback);
    r.invalidations = 1;
    if (prefetch) {
      t = net_->send(e.owner, req, rep_msg, t);
      e.owner = req;
      e.sharers.clear();
      e.count = 0;
      r.done_at = t;
      return r;
    }
    const auto rp = net_->deliver(e.owner, req, rep_msg, t);
    e.owner = req;
    e.sharers.clear();
    e.count = 0;
    if (rp.dropped) return dropped_result(now, cost_);
    r.done_at = rp.at;
    return r;
    }
  }
  r.done_at = now;
  return r;
}

ServiceResult DirNFullMap::put(NodeId req, Block b, bool dirty, Cycle now,
                             bool explicit_ci) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  const MsgType msg = explicit_ci ? MsgType::Directive : MsgType::Writeback;
  ServiceResult r;
  r.done_at = now + (explicit_ci ? cost_.directive_issue : 0);

  switch (e.state) {
    case DirState::Idle:
    net_->count(req, msg);
    net_->count(home, MsgType::Nack);
    r.nacked = true;
    return r;
    case DirState::Shared: {
    if (!std::binary_search(e.sharers.begin(), e.sharers.end(), req)) {
      net_->count(req, msg);
      net_->count(home, MsgType::Nack);
      r.nacked = true;
      return r;
    }
    // A lost check-in must not touch the directory: the block stays
    // checked out until the retransmit lands (retry layer in the sim).
    const auto d = net_->deliver(req, home, msg, now);
    if (d.dropped) return dropped_result(now, cost_);
    remove_sharer(e, req);
    if (e.sharers.empty()) {
      e.state = DirState::Idle;
      e.owner = kInvalidNode;
    } else {
      e.owner = e.sharers.front();
    }
    return r;
    }
    case DirState::Exclusive: {
    if (e.owner != req) {
      net_->count(req, msg);
      net_->count(home, MsgType::Nack);
      r.nacked = true;
      return r;
    }
    const auto d =
        net_->deliver(req, home, dirty ? MsgType::Writeback : msg, now);
    if (d.dropped) return dropped_result(now, cost_);
    if (dirty) stats_->add(req, Stat::Writebacks);
    add_past(e, req);
    e.state = DirState::Idle;
    e.owner = kInvalidNode;
    e.sharers.clear();
    e.count = 0;
    return r;
    }
  }
  return r;
}

ServiceResult DirNFullMap::post_store(NodeId req, Block b, Cycle now) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  ServiceResult r;
  r.done_at = now + cost_.directive_issue;
  if (e.state != DirState::Exclusive || e.owner != req) {
    net_->count(req, MsgType::Directive);
    net_->count(home, MsgType::Nack);
    r.nacked = true;
    return r;
  }
  const auto d = net_->deliver(req, home, MsgType::Writeback, now);
  if (d.dropped) return dropped_result(now, cost_);
  stats_->add(req, Stat::Writebacks);
  caches_->downgrade(req, b);
  e.state = DirState::Shared;
  e.sharers.clear();
  add_sharer(e, req);
  const std::vector<NodeId> targets = e.past_sharers;
  for (NodeId n : targets) {
    if (n == req) continue;
    net_->count(home, MsgType::DataReply);
    caches_->push_shared(n, b);
    add_sharer(e, n);
  }
  e.owner = req;
  return r;
}

void DirNFullMap::check_block(Block b, const DirEntry& e,
                            std::ostringstream& bad) const {
  switch (e.state) {
    case DirState::Idle:
      for (NodeId n = 0; n < nodes_; ++n) {
        if (caches_->peek(n, b) != LineState::Invalid) {
          bad << "block " << b << ": Idle but cached at node " << n << "\n";
        }
      }
      break;
    case DirState::Shared:
      for (NodeId n = 0; n < nodes_; ++n) {
        const bool should = e.has_sharer(n);
        const LineState ls = caches_->peek(n, b);
        if (should && ls != LineState::Shared) {
          bad << "block " << b << ": sharer " << n << " lost copy\n";
        }
        if (!should && ls != LineState::Invalid) {
          bad << "block " << b << ": stray copy at node " << n << "\n";
        }
      }
      break;
    case DirState::Exclusive:
      for (NodeId n = 0; n < nodes_; ++n) {
        const LineState ls = caches_->peek(n, b);
        if (n == e.owner && ls != LineState::Exclusive) {
          bad << "block " << b << ": owner " << n << " not exclusive\n";
        }
        if (n != e.owner && ls != LineState::Invalid) {
          bad << "block " << b << ": stray copy under exclusive\n";
        }
      }
      break;
  }
}

std::string DirNFullMap::check_invariants() const {
  std::ostringstream bad;
  for (const auto& [b, e] : dir_) check_block(b, e, bad);
  return bad.str();
}

std::string DirNFullMap::check_invariants_incremental() {
  std::ostringstream bad;
  for (const Block b : dirty_) {
    auto it = dir_.find(b);
    if (it != dir_.end()) check_block(b, it->second, bad);
  }
  std::string diag = bad.str();
  if (diag.empty()) dirty_.clear();
  return diag;
}

}  // namespace cico::proto
