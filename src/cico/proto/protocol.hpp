// Abstract directory-protocol interface.
//
// The paper's results ride on Dir1SW's cost structure: requests outside
// the expected CICO pattern trap to SOFTWARE.  To measure how much of
// Cachier's win is protocol-specific, the simulator accepts any protocol
// implementing this interface; `DirNFullMap` (dirn.hpp) is an all-hardware
// full-map directory baseline in the DASH/Alewife tradition.
#pragma once

#include <string>

#include "cico/common/types.hpp"
#include "cico/mem/cache.hpp"

namespace cico::proto {

class CacheControl;   // dir1sw.hpp
struct ServiceResult; // dir1sw.hpp

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual ServiceResult get_shared(NodeId req, Block b, Cycle now,
                                   bool prefetch) = 0;
  virtual ServiceResult get_exclusive(NodeId req, Block b, Cycle now,
                                      bool prefetch) = 0;
  virtual ServiceResult put(NodeId req, Block b, bool dirty, Cycle now,
                            bool explicit_ci) = 0;
  virtual ServiceResult post_store(NodeId req, Block b, Cycle now) = 0;

  /// Consistency self-check (empty string == consistent).
  [[nodiscard]] virtual std::string check_invariants() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace cico::proto
