// Abstract directory-protocol interface.
//
// The paper's results ride on Dir1SW's cost structure: requests outside
// the expected CICO pattern trap to SOFTWARE.  To measure how much of
// Cachier's win is protocol-specific, the simulator accepts any protocol
// implementing this interface; `DirNFullMap` (dirn.hpp) is an all-hardware
// full-map directory baseline in the DASH/Alewife tradition.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cico/common/types.hpp"
#include "cico/mem/cache.hpp"

namespace cico::proto {

class CacheControl;   // dir1sw.hpp
struct ServiceResult; // dir1sw.hpp

/// Whether a transaction would stay confined to the block's home-node
/// directory slice, the requester's own cache, and the bounded set of
/// remote caches reported in `Touched` -- or cross into state the sharded
/// boundary phase cannot claim (unbounded fan-out, push evictions, lock
/// tables).  Confined transactions may run on worker threads once every
/// touched cache is claimed for the batch; Cross ones take the serial
/// handoff path.
enum class PathClass : std::uint8_t { Confined, Cross };

/// Out-parameter of classify_get: the remote caches (beyond the
/// requester's own) the transaction's handler would mutate -- recall
/// targets, invalidation victims.  A handler touching more than the
/// inline capacity overflows and must be classified Cross.
struct Touched {
  std::array<NodeId, 4> node{};
  std::uint8_t count = 0;
  bool overflow = false;

  bool add(NodeId n) {
    if (count == node.size()) {
      overflow = true;
      return false;
    }
    node[count++] = n;
    return true;
  }
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual ServiceResult get_shared(NodeId req, Block b, Cycle now,
                                   bool prefetch) = 0;
  virtual ServiceResult get_exclusive(NodeId req, Block b, Cycle now,
                                      bool prefetch) = 0;
  virtual ServiceResult put(NodeId req, Block b, bool dirty, Cycle now,
                            bool explicit_ci) = 0;
  virtual ServiceResult post_store(NodeId req, Block b, Cycle now) = 0;

  /// Home node of a block (directory slices are block-interleaved).
  [[nodiscard]] virtual NodeId home_of(Block b) const = 0;

  /// True when directory state is partitioned by home node so that
  /// Confined transactions on blocks with distinct homes may be serviced
  /// concurrently.  Protocols returning false always run serially.
  [[nodiscard]] virtual bool shardable() const { return false; }

  /// Classifies the get_shared/get_exclusive a requester is about to issue
  /// against the CURRENT directory state, reporting the remote caches its
  /// handler would touch.  Conservative default: Cross.
  [[nodiscard]] virtual PathClass classify_get(NodeId /*req*/, Block /*b*/,
                                               bool /*exclusive*/,
                                               Touched& /*t*/) const {
    return PathClass::Cross;
  }

  /// Classifies a pending post_store the same way.
  [[nodiscard]] virtual PathClass classify_post_store(NodeId /*req*/,
                                                      Block /*b*/) const {
    return PathClass::Cross;
  }

  /// Consistency self-check (empty string == consistent).
  [[nodiscard]] virtual std::string check_invariants() const = 0;

  /// Memoized variant for per-epoch paranoid audits: verifies only blocks
  /// whose directory entries a handler has touched since the last CLEAN
  /// incremental check, and clears that memo on success ("unobtrusive
  /// property caching").  Sound because every cache-line mutation flows
  /// through a protocol handler for the same block before the next audit
  /// point, so an untouched block cannot have drifted.  Protocols without
  /// dirty tracking fall back to the full check.
  [[nodiscard]] virtual std::string check_invariants_incremental() {
    return check_invariants();
  }

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace cico::proto
