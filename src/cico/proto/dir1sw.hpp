// Dir1SW directory cache-coherence protocol (Hill et al., "Cooperative
// Shared Memory", TOCS Nov. 1993 -- reference [10] of the paper).
//
// Dir1SW keeps, per block, ONE hardware pointer and a counter.  Requests
// that match the expected check-in/check-out usage pattern are serviced
// entirely in hardware; everything else traps to a software handler on the
// block's home node, which maintains the full sharer set and sends
// invalidations / recalls.  Traps are expensive (CostModel::dir_trap plus
// per-invalidation occupancy), which is exactly the cost that well-placed
// CICO annotations avoid:
//
//   * check_in returns a block to Idle, so the next conflicting access is
//     a cheap hardware fill instead of a trap;
//   * check_out_X before a read-then-write fetches the block exclusive in
//     one transaction instead of GetS followed by an upgrade;
//   * prefetches overlap fill latency with computation, and are DROPPED if
//     they would trap (prefetches must never invoke the software handler).
//
// Hardware-handled transitions:
//   Idle     + GetS / GetX                    -> Shared(1) / Exclusive
//   Shared   + GetS                           -> Shared(count+1)
//   Shared(count==1, sole sharer == req) + GetX -> Exclusive (upgrade)
//   any      + Put (check-in / eviction)      -> counter decrement / Idle
// Software traps:
//   Shared(multiple or foreign sharer) + GetX -> invalidate sharers
//   Exclusive(other) + GetS                   -> recall + downgrade owner
//   Exclusive(other) + GetX                   -> recall + invalidate owner
#pragma once

#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "cico/common/cost.hpp"
#include "cico/kern/bitset.hpp"
#include "cico/common/stats.hpp"
#include "cico/common/types.hpp"
#include "cico/mem/cache.hpp"
#include "cico/net/network.hpp"
#include "cico/proto/protocol.hpp"

namespace cico::proto {

enum class DirState : std::uint8_t { Idle, Shared, Exclusive };

/// Directory entry.  `owner`+`count` are what the Dir1SW *hardware* holds;
/// `sharers` is the full set the *software* handler maintains.
/// `past_sharers` supports the POST-STORE extension (see below): nodes
/// that lost a copy of the block through invalidation or check-in.
struct DirEntry {
  DirState state = DirState::Idle;
  NodeId owner = kInvalidNode;  ///< hardware pointer (first sharer / owner)
  std::uint32_t count = 0;      ///< hardware sharer counter
  std::vector<NodeId> sharers;  ///< software's full sharer set (sorted)
  std::vector<NodeId> past_sharers;  ///< previous holders (sorted)

  [[nodiscard]] bool has_sharer(NodeId n) const;
  [[nodiscard]] bool has_past_sharer(NodeId n) const;
};

/// Interface through which the software handler manipulates remote caches.
/// Implemented by the simulator (safe: the handler only runs in the
/// boundary phase while all node threads are parked) and by test fakes.
class CacheControl {
 public:
  virtual ~CacheControl() = default;
  /// Current state of block b in node n's cache.
  [[nodiscard]] virtual mem::LineState peek(NodeId n, Block b) const = 0;
  /// Remove block b from node n's cache (invalidation).
  virtual void invalidate(NodeId n, Block b) = 0;
  /// Downgrade node n's copy of b from Exclusive to Shared.
  virtual void downgrade(NodeId n, Block b) = 0;
  /// Install a Shared copy of b in node n's cache (post-store push).
  virtual void push_shared(NodeId n, Block b) = 0;
};

/// Outcome of one directory transaction.
struct ServiceResult {
  Cycle done_at = 0;          ///< when the requester may proceed
  bool trapped = false;       ///< software handler was invoked
  bool nacked = false;        ///< request refused (dropped prefetch, stale put)
  bool dropped = false;       ///< a fault ate the request or its reply;
                              ///< done_at is the loss-detection time and the
                              ///< caller must retry (or give up)
  std::uint32_t invalidations = 0;  ///< invalidation messages sent
};

class Dir1SW final : public Protocol {
 public:
  Dir1SW(std::uint32_t nodes, const CostModel& cost, net::Network& net,
         Stats& stats, CacheControl& caches);

  /// Home node of a block (directory slices are block-interleaved).
  [[nodiscard]] NodeId home_of(Block b) const override {
    return static_cast<NodeId>(b % nodes_);
  }

  /// Directory state lives in per-home slices; Confined transactions on
  /// blocks with distinct homes may be serviced concurrently.
  [[nodiscard]] bool shardable() const override { return true; }

  /// Hardware paths (fill, counter bump, sole-sharer upgrade, owner
  /// re-reference) are confined to the home slice + requester.  Software
  /// traps with a bounded footprint -- recalls (one owner cache) and
  /// invalidations (the sharer list, when it fits Touched) -- are Confined
  /// too, with their targets reported in `t`.  Only unbounded sharer lists
  /// remain Cross.
  [[nodiscard]] PathClass classify_get(NodeId req, Block b, bool exclusive,
                                       Touched& t) const override;

  /// Post-stores by a non-owner nack in hardware (Confined); an owner's
  /// post-store pushes copies into other nodes' caches (Cross).
  [[nodiscard]] PathClass classify_post_store(NodeId req,
                                              Block b) const override;

  /// Read request (shared copy).  With prefetch=true the request is
  /// non-binding and is nacked instead of trapping.
  ServiceResult get_shared(NodeId req, Block b, Cycle now,
                           bool prefetch = false) override;

  /// Write request (exclusive copy).  Also the upgrade path: if the
  /// requester already holds a Shared copy this is a write fault.
  ServiceResult get_exclusive(NodeId req, Block b, Cycle now,
                              bool prefetch = false) override;

  /// Check-in or eviction notification.  `dirty` == requester held the
  /// block Exclusive (data travels home).  Check-ins are fire-and-forget:
  /// the requester is charged only issue occupancy; the directory update is
  /// serialized at `now`.
  ServiceResult put(NodeId req, Block b, bool dirty, Cycle now,
                    bool explicit_ci) override;

  /// EXTENSION -- the KSR-1 post-store the paper's introduction compares
  /// check-in against ("broadcasts read-only copies of a cache block to
  /// all other nodes that have it allocated but are in the invalid
  /// state"): the writer's exclusive copy is written back AND pushed as a
  /// Shared copy to every PAST sharer, so their next reads hit instead of
  /// missing.  The writer keeps a Shared copy.  Fire-and-forget like put.
  ServiceResult post_store(NodeId req, Block b, Cycle now) override;

  /// Directory entry for a block, or nullptr if the block has never been
  /// referenced (equivalent to Idle).
  [[nodiscard]] const DirEntry* entry(Block b) const;

  [[nodiscard]] std::uint32_t nodes() const { return nodes_; }

  /// Verifies directory/cache consistency (tests call this at rest points):
  /// sharer sets match cache states and counters match set sizes.
  /// Returns an empty string when consistent, else a diagnostic.
  [[nodiscard]] std::string check_invariants() const override;

  /// Memoized audit: rechecks only the blocks ent() marked dirty since the
  /// last clean incremental audit, then clears the memo.  The per-slice
  /// dirty sets are written only by the shard worker owning the slice, so
  /// marking is race-free under the sharded boundary phase.
  [[nodiscard]] std::string check_invariants_incremental() override;

  [[nodiscard]] const char* name() const override { return "dir1sw"; }

 private:
  /// The single choke point through which every handler reaches an entry;
  /// marking here is what makes the incremental audit's memo sound.
  DirEntry& ent(Block b) {
    const NodeId h = home_of(b);
    dirty_[h].insert(b);
    return slices_[h][b];
  }

  /// One block's share of check_invariants (stable diagnostic order).
  void check_block(Block b, const DirEntry& e, std::ostringstream& bad) const;

  /// Injected software-handler stall (0 when no injector is attached).
  /// The block/requester/time identify the invocation for keyed draws.
  [[nodiscard]] Cycle handler_stall(Block b, NodeId req, Cycle at);

  /// Software handler: invalidate every sharer except `keep`.
  /// Returns (cycles of handler occupancy + last-ack latency, #invals).
  std::pair<Cycle, std::uint32_t> invalidate_sharers(DirEntry& e, Block b,
                                                     NodeId home, NodeId keep);

  std::uint32_t nodes_;
  CostModel cost_;
  net::Network* net_;
  Stats* stats_;
  CacheControl* caches_;
  /// Directory storage, partitioned by home node (slices_[home_of(b)]).
  /// A shard worker touches only the slices whose homes it owns, so
  /// Confined transactions never race on a map.
  std::vector<std::unordered_map<Block, DirEntry>> slices_;
  /// Blocks touched through ent() since the last clean incremental audit,
  /// partitioned like slices_ (same single-writer-per-slice discipline).
  std::vector<kern::BlockSet> dirty_;
};

}  // namespace cico::proto
