#include "cico/proto/dir1sw.hpp"

#include <algorithm>
#include <sstream>

namespace cico::proto {

using mem::LineState;
using net::MsgType;

bool DirEntry::has_sharer(NodeId n) const {
  return std::binary_search(sharers.begin(), sharers.end(), n);
}

bool DirEntry::has_past_sharer(NodeId n) const {
  return std::binary_search(past_sharers.begin(), past_sharers.end(), n);
}

namespace {

void add_sharer(DirEntry& e, NodeId n) {
  auto it = std::lower_bound(e.sharers.begin(), e.sharers.end(), n);
  if (it == e.sharers.end() || *it != n) {
    e.sharers.insert(it, n);
    e.count = static_cast<std::uint32_t>(e.sharers.size());
  }
}

void add_past_sharer(DirEntry& e, NodeId n) {
  auto it = std::lower_bound(e.past_sharers.begin(), e.past_sharers.end(), n);
  if (it == e.past_sharers.end() || *it != n) e.past_sharers.insert(it, n);
}

void remove_sharer(DirEntry& e, NodeId n) {
  auto it = std::lower_bound(e.sharers.begin(), e.sharers.end(), n);
  if (it != e.sharers.end() && *it == n) {
    e.sharers.erase(it);
    e.count = static_cast<std::uint32_t>(e.sharers.size());
    add_past_sharer(e, n);
  }
}

/// A lost request or reply is detected by the requester's timeout: two
/// hardware miss latencies after issue.  done_at carries the detection
/// time so the retry layer can schedule the re-issue.
ServiceResult dropped_result(Cycle now, const CostModel& cost) {
  ServiceResult r;
  r.dropped = true;
  r.done_at = now + 2 * cost.hw_miss_latency();
  return r;
}

}  // namespace

Dir1SW::Dir1SW(std::uint32_t nodes, const CostModel& cost, net::Network& net,
               Stats& stats, CacheControl& caches)
    : nodes_(nodes), cost_(cost), net_(&net), stats_(&stats), caches_(&caches),
      slices_(nodes), dirty_(nodes) {}

const DirEntry* Dir1SW::entry(Block b) const {
  const auto& slice = slices_[home_of(b)];
  auto it = slice.find(b);
  return it == slice.end() ? nullptr : &it->second;
}

Cycle Dir1SW::handler_stall(Block b, NodeId req, Cycle at) {
  fault::FaultInjector* f = net_->fault_injector();
  return f == nullptr ? 0 : f->handler_stall_at(b, req, at);
}

PathClass Dir1SW::classify_get(NodeId req, Block b, bool exclusive,
                               Touched& t) const {
  const DirEntry* e = entry(b);
  if (e == nullptr || e->state == DirState::Idle) return PathClass::Confined;
  if (e->state == DirState::Shared) {
    if (!exclusive) return PathClass::Confined;  // counter bump
    const bool sole = e->sharers.size() == 1 && e->has_sharer(req);
    if (sole) return PathClass::Confined;  // hardware upgrade
    // Invalidation trap: touches exactly the non-requester sharers' caches.
    for (NodeId s : e->sharers) {
      if (s == req) continue;
      if (!t.add(s)) return PathClass::Cross;  // sharer list overflow
    }
    return PathClass::Confined;
  }
  if (e->owner == req) return PathClass::Confined;  // idempotent reply
  // Recall trap: downgrades/invalidates exactly the owner's cache.
  t.add(e->owner);
  return PathClass::Confined;
}

PathClass Dir1SW::classify_post_store(NodeId req, Block b) const {
  const DirEntry* e = entry(b);
  const bool is_owner =
      e != nullptr && e->state == DirState::Exclusive && e->owner == req;
  return is_owner ? PathClass::Cross : PathClass::Confined;  // owner: pushes
}

std::pair<Cycle, std::uint32_t> Dir1SW::invalidate_sharers(DirEntry& e, Block b,
                                                           NodeId home,
                                                           NodeId keep) {
  Cycle occupancy = 0;
  Cycle last_rtt = 0;
  std::uint32_t sent = 0;
  // Copy: invalidate() does not change the sharer list, but be defensive.
  std::vector<NodeId> targets = e.sharers;
  for (NodeId s : targets) {
    if (s == keep) continue;
    net_->count(home, MsgType::Invalidate);
    net_->count(s, MsgType::Ack);
    caches_->invalidate(s, b);
    remove_sharer(e, s);
    occupancy += cost_.inval_per_sharer;
    last_rtt = net_->latency(home, s) + net_->latency(s, home);
    ++sent;
    stats_->add(home, Stat::Invalidations);
  }
  return {occupancy + last_rtt, sent};
}

ServiceResult Dir1SW::get_shared(NodeId req, Block b, Cycle now, bool prefetch) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  const MsgType req_msg = prefetch ? MsgType::PrefetchReq : MsgType::Request;
  const MsgType rep_msg = prefetch ? MsgType::PrefetchReply : MsgType::DataReply;
  ServiceResult r;

  switch (e.state) {
    case DirState::Idle:
    case DirState::Shared: {
      // Hardware path: fill (Idle) or counter increment (Shared).
      const auto rq = net_->deliver(req, home, req_msg, now, b);
      if (rq.dropped) return dropped_result(now, cost_);
      Cycle t = rq.at + cost_.dir_hw + cost_.mem_access;
      if (e.state == DirState::Idle) e.owner = req;
      e.state = DirState::Shared;
      if (prefetch) {
        // Prefetches are never retried, so their reply leg is modelled
        // reliable: a lost prefetch is a lost *request* (state untouched).
        t = net_->send(home, req, rep_msg, t, b);
        add_sharer(e, req);
        r.done_at = t;
        return r;
      }
      const auto rp = net_->deliver(home, req, rep_msg, t, b);
      add_sharer(e, req);
      if (rp.dropped) return dropped_result(now, cost_);
      r.done_at = rp.at;
      return r;
    }
    case DirState::Exclusive: {
      if (e.owner == req) {
        // Requester already owns the block exclusively; idempotent reply.
        r.done_at = now + cost_.hit;
        return r;
      }
      if (prefetch) {
        const auto rq = net_->deliver(req, home, MsgType::PrefetchReq, now, b);
        if (rq.dropped) return dropped_result(now, cost_);
        net_->count(home, MsgType::Nack);
        r.nacked = true;
        r.done_at = now;
        return r;
      }
      const auto rq = net_->deliver(req, home, MsgType::Request, now, b);
      if (rq.dropped) return dropped_result(now, cost_);
      // TRAP: recall the exclusive copy, downgrade the owner to Shared.
      stats_->add(home, Stat::Traps);
      stats_->add(home, Stat::Recalls);
      r.trapped = true;
      Cycle t = rq.at + cost_.dir_trap + handler_stall(b, req, rq.at);
      t = net_->send(home, e.owner, MsgType::Recall, t, b);
      caches_->downgrade(e.owner, b);
      t = net_->send(e.owner, home, MsgType::Writeback, t, b);
      stats_->add(e.owner, Stat::Writebacks);
      t += cost_.mem_access;
      const auto rp = net_->deliver(home, req, MsgType::DataReply, t, b);
      e.state = DirState::Shared;
      add_sharer(e, e.owner);
      add_sharer(e, req);
      if (rp.dropped) return dropped_result(now, cost_);
      r.done_at = rp.at;
      return r;
    }
  }
  r.done_at = now;
  return r;
}

ServiceResult Dir1SW::get_exclusive(NodeId req, Block b, Cycle now,
                                    bool prefetch) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  const MsgType req_msg = prefetch ? MsgType::PrefetchReq : MsgType::Request;
  const MsgType rep_msg = prefetch ? MsgType::PrefetchReply : MsgType::DataReply;
  ServiceResult r;

  switch (e.state) {
    case DirState::Idle: {
      const auto rq = net_->deliver(req, home, req_msg, now, b);
      if (rq.dropped) return dropped_result(now, cost_);
      Cycle t = rq.at + cost_.dir_hw + cost_.mem_access;
      if (prefetch) {
        t = net_->send(home, req, rep_msg, t, b);
        e.state = DirState::Exclusive;
        e.owner = req;
        e.sharers.clear();
        e.count = 0;
        r.done_at = t;
        return r;
      }
      const auto rp = net_->deliver(home, req, rep_msg, t, b);
      e.state = DirState::Exclusive;
      e.owner = req;
      e.sharers.clear();
      e.count = 0;
      if (rp.dropped) return dropped_result(now, cost_);
      r.done_at = rp.at;
      return r;
    }
    case DirState::Shared: {
      const bool sole = e.sharers.size() == 1 && e.has_sharer(req);
      if (sole) {
        // Hardware upgrade: counter==1 and the pointer names the requester,
        // so no invalidations are needed and no data moves.
        const auto rq = net_->deliver(req, home, req_msg, now, b);
        if (rq.dropped) return dropped_result(now, cost_);
        Cycle t = rq.at + cost_.dir_hw;
        if (prefetch) {
          t = net_->send(home, req, MsgType::PrefetchReply, t, b);
          e.state = DirState::Exclusive;
          e.owner = req;
          e.sharers.clear();
          e.count = 0;
          r.done_at = t;
          return r;
        }
        const auto rp = net_->deliver(home, req, MsgType::Ack, t, b);
        e.state = DirState::Exclusive;
        e.owner = req;
        e.sharers.clear();
        e.count = 0;
        if (rp.dropped) return dropped_result(now, cost_);
        r.done_at = rp.at;
        return r;
      }
      if (prefetch) {
        const auto rq = net_->deliver(req, home, MsgType::PrefetchReq, now, b);
        if (rq.dropped) return dropped_result(now, cost_);
        net_->count(home, MsgType::Nack);
        r.nacked = true;
        r.done_at = now;
        return r;
      }
      const auto rq = net_->deliver(req, home, MsgType::Request, now, b);
      if (rq.dropped) return dropped_result(now, cost_);
      // TRAP: software invalidates every other sharer.
      stats_->add(home, Stat::Traps);
      r.trapped = true;
      const bool req_had_copy = e.has_sharer(req);
      Cycle t = rq.at + cost_.dir_trap + handler_stall(b, req, rq.at);
      auto [inval_cycles, sent] = invalidate_sharers(e, b, home, req);
      t += inval_cycles;
      r.invalidations = sent;
      if (!req_had_copy) t += cost_.mem_access;
      const auto rp = net_->deliver(
          home, req, req_had_copy ? MsgType::Ack : MsgType::DataReply, t, b);
      e.state = DirState::Exclusive;
      e.owner = req;
      e.sharers.clear();
      e.count = 0;
      if (rp.dropped) return dropped_result(now, cost_);
      r.done_at = rp.at;
      return r;
    }
    case DirState::Exclusive: {
      if (e.owner == req) {
        r.done_at = now + cost_.hit;
        return r;
      }
      if (prefetch) {
        const auto rq = net_->deliver(req, home, MsgType::PrefetchReq, now, b);
        if (rq.dropped) return dropped_result(now, cost_);
        net_->count(home, MsgType::Nack);
        r.nacked = true;
        r.done_at = now;
        return r;
      }
      const auto rq = net_->deliver(req, home, MsgType::Request, now, b);
      if (rq.dropped) return dropped_result(now, cost_);
      // TRAP: recall and invalidate the current owner.
      stats_->add(home, Stat::Traps);
      stats_->add(home, Stat::Recalls);
      r.trapped = true;
      Cycle t = rq.at + cost_.dir_trap + handler_stall(b, req, rq.at);
      t = net_->send(home, e.owner, MsgType::Recall, t, b);
      caches_->invalidate(e.owner, b);
      add_past_sharer(e, e.owner);
      t = net_->send(e.owner, home, MsgType::Writeback, t, b);
      stats_->add(e.owner, Stat::Writebacks);
      t += cost_.mem_access;
      const auto rp = net_->deliver(home, req, MsgType::DataReply, t, b);
      r.invalidations = 1;
      e.owner = req;
      e.sharers.clear();
      e.count = 0;
      if (rp.dropped) return dropped_result(now, cost_);
      r.done_at = rp.at;
      return r;
    }
  }
  r.done_at = now;
  return r;
}

ServiceResult Dir1SW::put(NodeId req, Block b, bool dirty, Cycle now,
                          bool explicit_ci) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  const MsgType msg = explicit_ci ? MsgType::Directive : MsgType::Writeback;
  ServiceResult r;
  // Check-ins are fire-and-forget: the requester pays issue occupancy only.
  r.done_at = now + (explicit_ci ? cost_.directive_issue : 0);

  switch (e.state) {
    case DirState::Idle: {
      net_->count(req, msg);
      net_->count(home, MsgType::Nack);
      r.nacked = true;
      return r;
    }
    case DirState::Shared: {
      if (!e.has_sharer(req)) {
        net_->count(req, msg);
        net_->count(home, MsgType::Nack);
        r.nacked = true;
        return r;
      }
      // A lost check-in must not touch the directory: the block stays
      // checked out until the retransmit lands (retry layer in the sim).
      const auto d = net_->deliver(req, home, msg, now, b);
      if (d.dropped) return dropped_result(now, cost_);
      remove_sharer(e, req);
      if (e.sharers.empty()) {
        e.state = DirState::Idle;
        e.owner = kInvalidNode;
      } else {
        e.owner = e.sharers.front();
      }
      return r;
    }
    case DirState::Exclusive: {
      if (e.owner != req) {
        net_->count(req, msg);
        net_->count(home, MsgType::Nack);
        r.nacked = true;
        return r;
      }
      const auto d =
          net_->deliver(req, home, dirty ? MsgType::Writeback : msg, now, b);
      if (d.dropped) return dropped_result(now, cost_);
      if (dirty) stats_->add(req, Stat::Writebacks);
      add_past_sharer(e, req);
      e.state = DirState::Idle;
      e.owner = kInvalidNode;
      e.sharers.clear();
      e.count = 0;
      return r;
    }
  }
  return r;
}

ServiceResult Dir1SW::post_store(NodeId req, Block b, Cycle now) {
  DirEntry& e = ent(b);
  const NodeId home = home_of(b);
  ServiceResult r;
  r.done_at = now + cost_.directive_issue;
  if (e.state != DirState::Exclusive || e.owner != req) {
    // Only a current exclusive owner can post-store; otherwise ignore
    // (directives never affect semantics).
    net_->count(req, net::MsgType::Directive);
    net_->count(home, net::MsgType::Nack);
    r.nacked = true;
    return r;
  }
  // Write back and downgrade the writer to Shared.
  const auto d = net_->deliver(req, home, net::MsgType::Writeback, now, b);
  if (d.dropped) return dropped_result(now, cost_);
  stats_->add(req, Stat::Writebacks);
  caches_->downgrade(req, b);
  e.state = DirState::Shared;
  e.sharers.clear();
  add_sharer(e, req);
  // Push read-only copies to every past sharer (off the critical path;
  // messages counted, occupancy charged at the home).
  const std::vector<NodeId> targets = e.past_sharers;
  for (NodeId n : targets) {
    if (n == req) continue;
    net_->count(home, net::MsgType::DataReply);
    caches_->push_shared(n, b);
    add_sharer(e, n);
  }
  e.owner = req;
  return r;
}

void Dir1SW::check_block(Block b, const DirEntry& e,
                         std::ostringstream& bad) const {
  if (e.count != e.sharers.size() &&
      !(e.state == DirState::Exclusive || e.state == DirState::Idle)) {
    bad << "block " << b << ": counter " << e.count << " != sharer set size "
        << e.sharers.size() << "\n";
  }
  switch (e.state) {
    case DirState::Idle:
      if (!e.sharers.empty())
        bad << "block " << b << ": Idle with sharers\n";
      for (NodeId n = 0; n < nodes_; ++n) {
        if (caches_->peek(n, b) != LineState::Invalid)
          bad << "block " << b << ": Idle but cached at node " << n << "\n";
      }
      break;
    case DirState::Shared:
      if (e.sharers.empty())
        bad << "block " << b << ": Shared with empty sharer set\n";
      for (NodeId n = 0; n < nodes_; ++n) {
        const LineState ls = caches_->peek(n, b);
        const bool should = e.has_sharer(n);
        if (should && ls != LineState::Shared)
          bad << "block " << b << ": sharer " << n << " not Shared in cache\n";
        if (!should && ls != LineState::Invalid)
          bad << "block " << b << ": non-sharer " << n << " holds copy\n";
        if (ls == LineState::Exclusive)
          bad << "block " << b << ": Exclusive copy under Shared entry\n";
      }
      break;
    case DirState::Exclusive:
      for (NodeId n = 0; n < nodes_; ++n) {
        const LineState ls = caches_->peek(n, b);
        if (n == e.owner && ls != LineState::Exclusive)
          bad << "block " << b << ": owner " << n << " lost exclusive copy\n";
        if (n != e.owner && ls != LineState::Invalid)
          bad << "block " << b << ": node " << n
              << " holds copy under foreign Exclusive entry\n";
      }
      break;
  }
}

std::string Dir1SW::check_invariants() const {
  std::ostringstream bad;
  // Walk homes in ascending order and blocks sorted within each slice so
  // diagnostics come out in a stable order regardless of hash-map layout.
  std::vector<Block> blocks;
  for (const auto& slice : slices_) {
    blocks.clear();
    blocks.reserve(slice.size());
    for (const auto& [b, unused] : slice) blocks.push_back(b);
    std::sort(blocks.begin(), blocks.end());
    for (const Block b : blocks) check_block(b, slice.at(b), bad);
  }
  return bad.str();
}

std::string Dir1SW::check_invariants_incremental() {
  std::ostringstream bad;
  // Same home-ascending, block-ascending order as the full walk; BlockSet
  // iteration is already ascending, so no sort is needed.
  for (NodeId h = 0; h < nodes_; ++h) {
    const auto& slice = slices_[h];
    for (const Block b : dirty_[h]) {
      // ent() marks conservatively; a dirty block with no entry was only
      // ever read through a const path and is equivalent to Idle.
      auto it = slice.find(b);
      if (it != slice.end()) check_block(b, it->second, bad);
    }
  }
  std::string diag = bad.str();
  if (diag.empty()) {
    for (auto& d : dirty_) d.clear();
  }
  return diag;
}

}  // namespace cico::proto
