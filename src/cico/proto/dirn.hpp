// DirN full-map hardware directory (DASH / Alewife style baseline).
//
// Every block's full sharer bit-vector lives in directory hardware, so
// EVERY request -- including writes to widely shared blocks and reads of
// remote exclusive copies -- is serviced without software intervention:
// invalidations fan out in parallel (latency = one round trip + small
// per-sharer serialization at the directory), and dirty copies are
// forwarded.  There are no traps, so CICO check-ins can only save the
// (much smaller) hardware invalidation/forwarding costs.
// `bench_protocol_sensitivity` quantifies exactly that.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cico/common/cost.hpp"
#include "cico/common/stats.hpp"
#include "cico/net/network.hpp"
#include "cico/proto/dir1sw.hpp"
#include "cico/proto/protocol.hpp"

namespace cico::proto {

class DirNFullMap final : public Protocol {
 public:
  DirNFullMap(std::uint32_t nodes, const CostModel& cost, net::Network& net,
              Stats& stats, CacheControl& caches);

  [[nodiscard]] NodeId home_of(Block b) const override {
    return static_cast<NodeId>(b % nodes_);
  }
  // Not shardable: keeps the Protocol defaults (every transaction Cross),
  // so the machine always services this directory serially.

  ServiceResult get_shared(NodeId req, Block b, Cycle now,
                           bool prefetch) override;
  ServiceResult get_exclusive(NodeId req, Block b, Cycle now,
                              bool prefetch) override;
  ServiceResult put(NodeId req, Block b, bool dirty, Cycle now,
                    bool explicit_ci) override;
  ServiceResult post_store(NodeId req, Block b, Cycle now) override;

  [[nodiscard]] std::string check_invariants() const override;
  /// Memoized audit over the blocks ent() touched since the last clean one
  /// (this protocol always runs serially, so a single dirty set suffices).
  [[nodiscard]] std::string check_invariants_incremental() override;
  [[nodiscard]] const char* name() const override { return "dirn-fullmap"; }

  [[nodiscard]] const DirEntry* entry(Block b) const;

 private:
  DirEntry& ent(Block b) {
    dirty_.insert(b);
    return dir_[b];
  }
  /// One block's share of check_invariants.
  void check_block(Block b, const DirEntry& e, std::ostringstream& bad) const;
  /// Hardware fan-out invalidation: parallel sends, one ack-collect RTT
  /// plus a small per-sharer directory occupancy.
  Cycle invalidate_sharers_hw(DirEntry& e, Block b, NodeId home, NodeId keep,
                              std::uint32_t* sent);

  std::uint32_t nodes_;
  CostModel cost_;
  net::Network* net_;
  Stats* stats_;
  CacheControl* caches_;
  std::unordered_map<Block, DirEntry> dir_;
  /// Blocks touched through ent() since the last clean incremental audit.
  kern::BlockSet dirty_;
};

}  // namespace cico::proto
