#include "cico/fault/fault.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace cico::fault {

namespace {

[[noreturn]] void bad(std::string_view token, std::string_view why) {
  std::ostringstream os;
  os << "faults: " << why << " in '" << token << "'";
  throw std::invalid_argument(os.str());
}

double parse_prob(std::string_view token, std::string_view text) {
  double p = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), p);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    bad(token, "malformed probability");
  }
  if (p < 0.0 || p > 1.0) bad(token, "probability outside [0,1]");
  return p;
}

std::uint64_t parse_u64(std::string_view token, std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    bad(token, "malformed integer");
  }
  return v;
}

/// "P:C" -> {prob, cycles}.
RateSpec parse_rate(std::string_view token, std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) bad(token, "expected prob:cycles");
  RateSpec r;
  r.prob = parse_prob(token, text.substr(0, colon));
  r.cycles = parse_u64(token, text.substr(colon + 1));
  if (r.prob > 0.0 && r.cycles == 0) bad(token, "zero-cycle fault");
  return r;
}

net::MsgType parse_msg_type(std::string_view token, std::string_view name) {
  const net::MsgType t = net::msg_type_from_name(name);
  if (t == net::MsgType::Count_) bad(token, "unknown message type");
  return t;
}

}  // namespace

bool FaultSpec::injects() const {
  if (drop > 0.0 || dup > 0.0 || delay.prob > 0.0 || stall.prob > 0.0) {
    return true;
  }
  for (std::size_t i = 0; i < net::kMsgTypeCount; ++i) {
    if (drop_by[i] > 0.0 || dup_by[i] > 0.0 || delay_by[i].prob > 0.0) {
      return true;
    }
  }
  return false;
}

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) bad(token, "expected key=value");
    std::string_view key = token.substr(0, eq);
    const std::string_view val = token.substr(eq + 1);

    // Per-type override: "<key>.<msg_type>".
    std::string_view type_name;
    const std::size_t dot = key.find('.');
    if (dot != std::string_view::npos) {
      type_name = key.substr(dot + 1);
      key = key.substr(0, dot);
    }

    if (key == "drop") {
      if (type_name.empty()) {
        spec.drop = parse_prob(token, val);
      } else {
        const auto t = parse_msg_type(token, type_name);
        spec.drop_by[static_cast<std::size_t>(t)] = parse_prob(token, val);
      }
    } else if (key == "dup") {
      if (type_name.empty()) {
        spec.dup = parse_prob(token, val);
      } else {
        const auto t = parse_msg_type(token, type_name);
        spec.dup_by[static_cast<std::size_t>(t)] = parse_prob(token, val);
      }
    } else if (key == "delay") {
      if (type_name.empty()) {
        spec.delay = parse_rate(token, val);
      } else {
        const auto t = parse_msg_type(token, type_name);
        spec.delay_by[static_cast<std::size_t>(t)] = parse_rate(token, val);
      }
    } else if (!type_name.empty()) {
      bad(token, "key does not take a message type");
    } else if (key == "stall") {
      spec.stall = parse_rate(token, val);
    } else if (key == "seed") {
      spec.seed = parse_u64(token, val);
    } else if (key == "retries") {
      spec.max_retries = static_cast<std::uint32_t>(parse_u64(token, val));
    } else if (key == "backoff") {
      const std::size_t colon = val.find(':');
      if (colon == std::string_view::npos) bad(token, "expected base:cap");
      spec.backoff_base = parse_u64(token, val.substr(0, colon));
      spec.backoff_cap = parse_u64(token, val.substr(colon + 1));
      if (spec.backoff_cap == 0) bad(token, "zero backoff cap");
    } else if (key == "throttle") {
      spec.throttle_after = static_cast<std::uint32_t>(parse_u64(token, val));
    } else {
      bad(token, "unknown key");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  const char* sep = "";
  auto emit = [&](auto&&... parts) {
    os << sep;
    (os << ... << parts);
    sep = ",";
  };
  if (drop > 0.0) emit("drop=", drop);
  if (dup > 0.0) emit("dup=", dup);
  if (delay.prob > 0.0) emit("delay=", delay.prob, ':', delay.cycles);
  if (stall.prob > 0.0) emit("stall=", stall.prob, ':', stall.cycles);
  for (std::size_t i = 0; i < net::kMsgTypeCount; ++i) {
    const auto name = net::msg_type_name(static_cast<net::MsgType>(i));
    if (drop_by[i] >= 0.0) emit("drop.", name, '=', drop_by[i]);
    if (dup_by[i] >= 0.0) emit("dup.", name, '=', dup_by[i]);
    if (delay_by[i].prob >= 0.0) {
      emit("delay.", name, '=', delay_by[i].prob, ':', delay_by[i].cycles);
    }
  }
  emit("seed=", seed);
  emit("retries=", max_retries);
  emit("backoff=", backoff_base, ':', backoff_cap);
  if (throttle_after != 0) emit("throttle=", throttle_after);
  return os.str();
}

double FaultInjector::keyed_uniform(std::uint64_t salt, std::uint64_t a,
                                    std::uint64_t b, std::uint64_t c,
                                    std::uint64_t d, std::uint64_t e) const {
  // Chained SplitMix64 finalizer over the message identity: stateless, so
  // the verdict for a given message is the same no matter which thread
  // draws it or in what order (the keyed-mode determinism argument).
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t h = spec_.seed;
  for (const std::uint64_t v : {salt, a, b, c, d, e}) {
    h = mix((h + kGolden) ^ v);
  }
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultInjector::Fate FaultInjector::fate_at(net::MsgType t, bool droppable,
                                           NodeId from, NodeId to, Cycle now,
                                           Block tag) {
  if (!keyed_) return fate(t, droppable);
  Fate f;
  const auto ti = static_cast<std::uint64_t>(t);
  // Distinct salts per decision; the reliable/droppable leg bit keeps the
  // two legs of one exchange from correlating at identical keys.
  const std::uint64_t leg = droppable ? 1 : 0;
  if (droppable) {
    const double p = spec_.drop_prob(t);
    if (p > 0.0 && keyed_uniform(0, ti, from, to, now, tag) < p) {
      f.dropped = true;
      drops_.fetch_add(1, std::memory_order_relaxed);
      drops_by_[static_cast<std::size_t>(t)].fetch_add(
          1, std::memory_order_relaxed);
      return f;  // a dropped message is neither duplicated nor delayed
    }
  }
  const double dp = spec_.dup_prob(t);
  if (dp > 0.0 && keyed_uniform(2 + leg, ti, from, to, now, tag) < dp) {
    f.duplicated = true;
    dups_.fetch_add(1, std::memory_order_relaxed);
  }
  const RateSpec dl = spec_.delay_rate(t);
  if (dl.prob > 0.0 && keyed_uniform(4 + leg, ti, from, to, now, tag) < dl.prob) {
    f.delay = dl.cycles;
    delays_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

Cycle FaultInjector::handler_stall_at(Block b, NodeId req, Cycle now) {
  if (!keyed_) return handler_stall();
  if (spec_.stall.prob <= 0.0) return 0;
  if (keyed_uniform(7, b, req, now, 0, 0) >= spec_.stall.prob) return 0;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  return spec_.stall.cycles;
}

FaultInjector::Fate FaultInjector::fate(net::MsgType t, bool droppable) {
  Fate f;
  if (droppable) {
    const double p = spec_.drop_prob(t);
    if (p > 0.0 && rng_.uniform() < p) {
      f.dropped = true;
      ++drops_;
      ++drops_by_[static_cast<std::size_t>(t)];
      return f;  // a dropped message is neither duplicated nor delayed
    }
  }
  const double dp = spec_.dup_prob(t);
  if (dp > 0.0 && rng_.uniform() < dp) {
    f.duplicated = true;
    ++dups_;
  }
  const RateSpec dl = spec_.delay_rate(t);
  if (dl.prob > 0.0 && rng_.uniform() < dl.prob) {
    f.delay = dl.cycles;
    ++delays_;
  }
  return f;
}

Cycle FaultInjector::handler_stall() {
  if (spec_.stall.prob <= 0.0) return 0;
  if (rng_.uniform() >= spec_.stall.prob) return 0;
  ++stalls_;
  return spec_.stall.cycles;
}

}  // namespace cico::fault
