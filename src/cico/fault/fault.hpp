// Deterministic fault injection for the Dir1SW memory system.
//
// The interconnect model is an idealized lossless wire; the protocol and
// simulator above it are therefore never exercised against message loss,
// duplication, delay, or a slow software handler.  This subsystem makes
// those failure modes injectable, *deterministically*: a FaultSpec carries
// the probabilities and a seed, a FaultInjector draws from one SplitMix64
// stream, and because every network/protocol interaction happens in the
// simulator's deterministic boundary phase, the same spec always yields
// the same faults, the same retries, and bit-identical statistics.
//
// Spec grammar (comma-separated key=value; see docs/fault_injection.md):
//
//   drop=0.01            drop probability per droppable message
//   dup=0.005            duplication probability per message
//   delay=0.02:40        delay probability : delay cycles
//   stall=0.001:200      software-handler stall probability : cycles
//   seed=7               RNG seed (default 1)
//   retries=8            retry budget for dropped/lost requests (0 = unbounded)
//   backoff=120:4096     exponential backoff base : cap, in cycles
//                        (base 0 = derive from the cost model's miss latency)
//   throttle=4           prefetch engine self-throttles for the rest of the
//                        epoch after this many consecutive failed prefetches
//                        (0 = never throttle)
//   drop.recall=0.05     per-MsgType override (also dup.<type>, delay.<type>)
//
// All probabilities default to zero: a default FaultSpec injects nothing
// and the hooks below compile to branch-on-null checks.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "cico/common/rng.hpp"
#include "cico/common/types.hpp"
#include "cico/net/msg.hpp"

namespace cico::fault {

/// A probability paired with a cycle count (delay and stall faults).
struct RateSpec {
  double prob = 0.0;
  Cycle cycles = 0;
};

struct FaultSpec {
  // Global rates.
  double drop = 0.0;
  double dup = 0.0;
  RateSpec delay{};
  RateSpec stall{};

  // Per-MsgType overrides; a negative probability means "inherit global".
  std::array<double, net::kMsgTypeCount> drop_by{};
  std::array<double, net::kMsgTypeCount> dup_by{};
  std::array<RateSpec, net::kMsgTypeCount> delay_by{};

  std::uint64_t seed = 1;
  std::uint32_t max_retries = 8;  ///< 0 = unbounded (watchdog guards liveness)
  Cycle backoff_base = 0;         ///< 0 = derive from cost model
  Cycle backoff_cap = 4096;
  std::uint32_t throttle_after = 0;  ///< 0 = prefetch throttling off

  FaultSpec() {
    drop_by.fill(-1.0);
    dup_by.fill(-1.0);
    for (auto& r : delay_by) r.prob = -1.0;
  }

  /// True when any fault can actually be injected (some probability > 0).
  [[nodiscard]] bool injects() const;

  [[nodiscard]] double drop_prob(net::MsgType t) const {
    const double o = drop_by[static_cast<std::size_t>(t)];
    return o < 0.0 ? drop : o;
  }
  [[nodiscard]] double dup_prob(net::MsgType t) const {
    const double o = dup_by[static_cast<std::size_t>(t)];
    return o < 0.0 ? dup : o;
  }
  [[nodiscard]] RateSpec delay_rate(net::MsgType t) const {
    const RateSpec& o = delay_by[static_cast<std::size_t>(t)];
    return o.prob < 0.0 ? delay : o;
  }

  /// Parses the grammar above.  Throws std::invalid_argument with the
  /// offending token on malformed input.
  [[nodiscard]] static FaultSpec parse(std::string_view text);

  /// Canonical textual form (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;
};

/// Draws fault decisions from one deterministic stream.  All calls happen
/// in the simulator's boundary phase (or in single-threaded tests), so the
/// draw order -- and therefore every injected fault -- is reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] bool injects() const { return spec_.injects(); }

  /// Per-message verdict.  `droppable` is false for message legs the model
  /// treats as reliable (interior handler traffic, prefetch replies).
  struct Fate {
    bool dropped = false;
    bool duplicated = false;
    Cycle delay = 0;
  };
  [[nodiscard]] Fate fate(net::MsgType t, bool droppable);

  /// Stall to add to one software-handler invocation (usually 0).
  [[nodiscard]] Cycle handler_stall();

  // --- telemetry (for soak reports) ---------------------------------------
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t dups() const { return dups_; }
  [[nodiscard]] std::uint64_t delays() const { return delays_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t drops_of(net::MsgType t) const {
    return drops_by_[static_cast<std::size_t>(t)];
  }

 private:
  FaultSpec spec_;
  Rng rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t dups_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t stalls_ = 0;
  std::array<std::uint64_t, net::kMsgTypeCount> drops_by_{};
};

}  // namespace cico::fault
