// Deterministic fault injection for the Dir1SW memory system.
//
// The interconnect model is an idealized lossless wire; the protocol and
// simulator above it are therefore never exercised against message loss,
// duplication, delay, or a slow software handler.  This subsystem makes
// those failure modes injectable, *deterministically*: a FaultSpec carries
// the probabilities and a seed, a FaultInjector draws from one SplitMix64
// stream, and because every network/protocol interaction happens in the
// simulator's deterministic boundary phase, the same spec always yields
// the same faults, the same retries, and bit-identical statistics.
//
// Spec grammar (comma-separated key=value; see docs/fault_injection.md):
//
//   drop=0.01            drop probability per droppable message
//   dup=0.005            duplication probability per message
//   delay=0.02:40        delay probability : delay cycles
//   stall=0.001:200      software-handler stall probability : cycles
//   seed=7               RNG seed (default 1)
//   retries=8            retry budget for dropped/lost requests (0 = unbounded)
//   backoff=120:4096     exponential backoff base : cap, in cycles
//                        (base 0 = derive from the cost model's miss latency)
//   throttle=4           prefetch engine self-throttles for the rest of the
//                        epoch after this many consecutive failed prefetches
//                        (0 = never throttle)
//   drop.recall=0.05     per-MsgType override (also dup.<type>, delay.<type>)
//
// All probabilities default to zero: a default FaultSpec injects nothing
// and the hooks below compile to branch-on-null checks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "cico/common/rng.hpp"
#include "cico/common/types.hpp"
#include "cico/net/msg.hpp"

namespace cico::fault {

/// A probability paired with a cycle count (delay and stall faults).
struct RateSpec {
  double prob = 0.0;
  Cycle cycles = 0;
};

struct FaultSpec {
  // Global rates.
  double drop = 0.0;
  double dup = 0.0;
  RateSpec delay{};
  RateSpec stall{};

  // Per-MsgType overrides; a negative probability means "inherit global".
  std::array<double, net::kMsgTypeCount> drop_by{};
  std::array<double, net::kMsgTypeCount> dup_by{};
  std::array<RateSpec, net::kMsgTypeCount> delay_by{};

  std::uint64_t seed = 1;
  std::uint32_t max_retries = 8;  ///< 0 = unbounded (watchdog guards liveness)
  Cycle backoff_base = 0;         ///< 0 = derive from cost model
  Cycle backoff_cap = 4096;
  std::uint32_t throttle_after = 0;  ///< 0 = prefetch throttling off

  FaultSpec() {
    drop_by.fill(-1.0);
    dup_by.fill(-1.0);
    for (auto& r : delay_by) r.prob = -1.0;
  }

  /// True when any fault can actually be injected (some probability > 0).
  [[nodiscard]] bool injects() const;

  [[nodiscard]] double drop_prob(net::MsgType t) const {
    const double o = drop_by[static_cast<std::size_t>(t)];
    return o < 0.0 ? drop : o;
  }
  [[nodiscard]] double dup_prob(net::MsgType t) const {
    const double o = dup_by[static_cast<std::size_t>(t)];
    return o < 0.0 ? dup : o;
  }
  [[nodiscard]] RateSpec delay_rate(net::MsgType t) const {
    const RateSpec& o = delay_by[static_cast<std::size_t>(t)];
    return o.prob < 0.0 ? delay : o;
  }

  /// Parses the grammar above.  Throws std::invalid_argument with the
  /// offending token on malformed input.
  [[nodiscard]] static FaultSpec parse(std::string_view text);

  /// Canonical textual form (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;
};

/// Draws fault decisions deterministically, in one of two modes.
///
/// Sequential (default): one SplitMix64 stream, draws consumed in call
/// order.  Reproducible because every network/protocol interaction happens
/// in the single-threaded boundary phase.
///
/// Keyed (set_keyed(true), used by the sharded boundary phase): every
/// verdict is a stateless hash of (seed, message identity: type, leg,
/// endpoints, send time, block tag), so the draw is independent of the
/// order -- and the thread -- in which messages are serviced.  Retries are
/// re-keyed by their later send time, so drop=1.0 still exhausts budgets.
/// Telemetry counters are relaxed atomics so shard workers may draw
/// concurrently; totals stay exact because the set of draws is identical.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] bool injects() const { return spec_.injects(); }

  void set_keyed(bool on) { keyed_ = on; }
  [[nodiscard]] bool keyed() const { return keyed_; }

  /// Per-message verdict.  `droppable` is false for message legs the model
  /// treats as reliable (interior handler traffic, prefetch replies).
  struct Fate {
    bool dropped = false;
    bool duplicated = false;
    Cycle delay = 0;
  };
  [[nodiscard]] Fate fate(net::MsgType t, bool droppable);

  /// Verdict for a message with a known identity; uses the keyed draw in
  /// keyed mode and falls back to the sequential stream otherwise.
  [[nodiscard]] Fate fate_at(net::MsgType t, bool droppable, NodeId from,
                             NodeId to, Cycle now, Block tag);

  /// Stall to add to one software-handler invocation (usually 0).
  [[nodiscard]] Cycle handler_stall();

  /// Stall for a handler invocation with a known identity (block serviced,
  /// requesting node, request arrival time); keyed-mode aware like fate_at.
  [[nodiscard]] Cycle handler_stall_at(Block b, NodeId req, Cycle now);

  // --- telemetry (for soak reports) ---------------------------------------
  [[nodiscard]] std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dups() const {
    return dups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delays() const {
    return delays_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t drops_of(net::MsgType t) const {
    return drops_by_[static_cast<std::size_t>(t)].load(
        std::memory_order_relaxed);
  }

 private:
  /// Uniform in [0,1) from the message identity (stateless, thread-safe).
  [[nodiscard]] double keyed_uniform(std::uint64_t salt, std::uint64_t a,
                                     std::uint64_t b, std::uint64_t c,
                                     std::uint64_t d, std::uint64_t e) const;

  FaultSpec spec_;
  Rng rng_;
  bool keyed_ = false;
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::array<std::atomic<std::uint64_t>, net::kMsgTypeCount> drops_by_{};
};

}  // namespace cico::fault
