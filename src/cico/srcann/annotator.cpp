#include "cico/srcann/annotator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "cico/analysis/static_plan.hpp"

namespace cico::srcann {

namespace lang = cico::lang;
using cachier::BlockSet;
using lang::AstId;
using lang::Program;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtPtr;

namespace {

// ---------------------------------------------------------------------------
// Small AST builders
// ---------------------------------------------------------------------------

lang::ExprPtr make_pid(Program& p) {
  auto e = std::make_unique<lang::Expr>();
  e->id = p.next_id++;
  e->kind = lang::ExprKind::Pid;
  return e;
}

/// a + b*pid, simplified.
lang::ExprPtr make_affine(Program& p, long long a, long long b) {
  if (b == 0) return lang::make_number(p, static_cast<double>(a));
  lang::ExprPtr pid_term =
      b == 1 ? make_pid(p)
             : lang::make_binary(p, lang::BinOp::Mul,
                                 lang::make_number(p, static_cast<double>(b)),
                                 make_pid(p));
  if (a == 0) return pid_term;
  return lang::make_binary(p, lang::BinOp::Add,
                           lang::make_number(p, static_cast<double>(a)),
                           std::move(pid_term));
}

lang::RangeExpr make_range(lang::ExprPtr lo, lang::ExprPtr hi, bool single) {
  lang::RangeExpr r;
  r.lo = std::move(lo);
  if (!single) r.hi = std::move(hi);
  return r;
}

StmtPtr make_pid_guard(Program& p, NodeId node, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->id = p.next_id++;
  s->kind = StmtKind::If;
  s->cond = lang::make_binary(p, lang::BinOp::Eq, make_pid(p),
                              lang::make_number(p, node));
  s->body = std::move(body);
  s->synthesized = true;
  return s;
}

// ---------------------------------------------------------------------------
// Element-set bookkeeping
// ---------------------------------------------------------------------------

/// Trace-side array addressing (PlanShape plus the address window used
/// to map blocks back to elements).
struct ArrayLayout {
  std::string name;
  Addr base = 0;
  std::uint64_t bytes = 0;
  std::size_t d0 = 0, d1 = 1;
  bool two_d = false;
};

struct AffineVal {
  long long a = 0, b = 0;  // value(n) = a + b*n
  bool ok = false;
};

AffineVal fit_affine(const std::vector<std::pair<NodeId, long long>>& pts) {
  AffineVal out;
  if (pts.empty()) return out;
  if (pts.size() == 1) {
    out.a = pts[0].second;
    out.b = 0;
    out.ok = true;  // caller guards single-node families with `if pid ==`
    return out;
  }
  const long long dn = static_cast<long long>(pts[1].first) -
                       static_cast<long long>(pts[0].first);
  const long long dv = pts[1].second - pts[0].second;
  if (dn == 0 || dv % dn != 0) return out;
  out.b = dv / dn;
  out.a = pts[0].second - out.b * static_cast<long long>(pts[0].first);
  for (const auto& [n, v] : pts) {
    if (out.a + out.b * static_cast<long long>(n) != v) return out;
  }
  out.ok = true;
  return out;
}

/// Rectangle (or 1-D run) covered by a node's element set; valid only if
/// the set is exactly the rectangle.
struct Rect {
  long long r0 = 0, r1 = 0, c0 = 0, c1 = 0;
  bool ok = false;
};

Rect rect_of(const std::set<std::size_t>& elems, const PlanShape& a) {
  Rect r;
  if (elems.empty()) return r;
  long long rmin = 1LL << 60, rmax = -1, cmin = 1LL << 60, cmax = -1;
  for (std::size_t e : elems) {
    const long long row = a.two_d ? static_cast<long long>(e / a.d1) : 0;
    const long long col = static_cast<long long>(a.two_d ? e % a.d1 : e);
    rmin = std::min(rmin, row);
    rmax = std::max(rmax, row);
    cmin = std::min(cmin, col);
    cmax = std::max(cmax, col);
  }
  const auto count = static_cast<std::size_t>((rmax - rmin + 1) *
                                              (cmax - cmin + 1));
  if (count != elems.size()) return r;
  r.r0 = rmin;
  r.r1 = rmax;
  r.c0 = cmin;
  r.c1 = cmax;
  r.ok = true;
  return r;
}

// ---------------------------------------------------------------------------
// Family keys and placement
// ---------------------------------------------------------------------------

enum class Place : std::uint8_t {
  ProgramStart,
  AfterBarrier,
  BeforeBarrier,
  ProgramEnd,
};

struct FamilyKey {
  AstId anchor;  // barrier stmt id (0 for program start/end)
  Place place;
  std::string array;
  sim::DirectiveKind kind;
  int part = 0;  // planner-side split of one logical family into rects
};

/// Emission order within an anchor.  The default kind order is the
/// DirectiveKind enum (the historical trace-path order, pinned by
/// goldens); cos_first hoists check_out_S ahead of check_out_X for plans
/// that mix both on one array at one anchor.
struct FamilyOrder {
  bool cos_first = false;

  [[nodiscard]] int rank(sim::DirectiveKind k) const {
    if (!cos_first) return static_cast<int>(k);
    if (k == sim::DirectiveKind::CheckOutS) return 0;
    if (k == sim::DirectiveKind::CheckOutX) return 1;
    return static_cast<int>(k) + 2;
  }

  bool operator()(const FamilyKey& a, const FamilyKey& b) const {
    const int ra = rank(a.kind);
    const int rb = rank(b.kind);
    return std::tie(a.anchor, a.place, a.array, ra, a.part) <
           std::tie(b.anchor, b.place, b.array, rb, b.part);
  }
};

// ---------------------------------------------------------------------------
// The emitter: PlanSource -> annotated program
// ---------------------------------------------------------------------------

/// Shared back half of the pipeline: affine fitting, pid guards, loop
/// generation, placement and insertion.  Consumes a PlanSource; mutates
/// the output program in place.
class Emitter {
 public:
  Emitter(Program& out, const PlanSource& plan, std::size_t max_pid_cases)
      : out_(out),
        plan_(plan),
        max_pid_cases_(max_pid_cases),
        families_(FamilyOrder{plan.cos_before_cox}) {
    build_stmt_maps();
    for (const PlanFamily& f : plan.families) {
      const Place place =
          f.anchor == 0
              ? (f.at_start ? Place::ProgramStart : Place::ProgramEnd)
              : (f.at_start ? Place::AfterBarrier : Place::BeforeBarrier);
      const FamilyKey key{f.anchor, place, f.array, f.kind, f.part};
      auto& per_node = families_[key];
      for (NodeId n = 0; n < f.per_node.size(); ++n) {
        for (std::uint32_t e : f.per_node[n]) per_node[n].insert(e);
      }
      if (per_node.empty()) families_.erase(key);
    }
  }

  void run() {
    emit_families();
    for (const PlanTightWrap& w : plan_.tight) tight_wrap(w);
    insert_all();
  }

  [[nodiscard]] std::size_t inserted() const { return inserted_; }
  [[nodiscard]] std::size_t generated_loops() const { return generated_loops_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::string notes() const { return notes_.str(); }

 private:
  void map_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& sp : stmts) {
      stmt_by_id_[sp->id] = sp.get();
      map_stmts(sp->body);
      map_stmts(sp->else_body);
    }
  }

  void build_stmt_maps() { map_stmts(out_.body); }

  [[nodiscard]] const PlanShape* shape_of(const std::string& name) const {
    for (const auto& s : plan_.shapes) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  // --- emission ---------------------------------------------------------------

  lang::ArrayRef build_ref(const PlanShape& a, const AffineVal& r0,
                           const AffineVal& r1, const AffineVal& c0,
                           const AffineVal& c1) {
    lang::ArrayRef ref;
    ref.id = out_.next_id++;
    ref.name = a.name;
    if (a.two_d) {
      ref.ranges.push_back(make_range(
          make_affine(out_, r0.a, r0.b), make_affine(out_, r1.a, r1.b),
          r0.a == r1.a && r0.b == r1.b));
      ref.ranges.push_back(make_range(
          make_affine(out_, c0.a, c0.b), make_affine(out_, c1.a, c1.b),
          c0.a == c1.a && c0.b == c1.b));
    } else {
      ref.ranges.push_back(make_range(
          make_affine(out_, c0.a, c0.b), make_affine(out_, c1.a, c1.b),
          c0.a == c1.a && c0.b == c1.b));
    }
    return ref;
  }

  /// Emit one family's statements.  Returns the statements to insert.
  std::vector<StmtPtr> emit_family(const FamilyKey& key,
                                   const std::map<NodeId, std::set<std::size_t>>& per_node) {
    std::vector<StmtPtr> stmts;
    const PlanShape* a = shape_of(key.array);
    if (a == nullptr) return stmts;

    // Per-node rectangles.
    std::vector<std::pair<NodeId, Rect>> rects;
    bool all_rect = true;
    for (const auto& [n, elems] : per_node) {
      Rect r = rect_of(elems, *a);
      if (!r.ok) {
        all_rect = false;
        break;
      }
      rects.emplace_back(n, r);
    }

    if (all_rect && !rects.empty()) {
      // Try an affine fit across the participating nodes.
      std::vector<std::pair<NodeId, long long>> r0s, r1s, c0s, c1s;
      for (const auto& [n, r] : rects) {
        r0s.emplace_back(n, r.r0);
        r1s.emplace_back(n, r.r1);
        c0s.emplace_back(n, r.c0);
        c1s.emplace_back(n, r.c1);
      }
      const AffineVal f0 = fit_affine(r0s), f1 = fit_affine(r1s),
                      g0 = fit_affine(c0s), g1 = fit_affine(c1s);
      const bool covers_all_nodes = per_node.size() == plan_.nodes;
      if (f0.ok && f1.ok && g0.ok && g1.ok) {
        StmtPtr dir = lang::make_directive(out_, key.kind,
                                           build_ref(*a, f0, f1, g0, g1));
        ++inserted_;
        if (covers_all_nodes) {
          stmts.push_back(std::move(dir));
        } else if (per_node.size() == 1) {
          std::vector<StmtPtr> body;
          body.push_back(std::move(dir));
          stmts.push_back(
              make_pid_guard(out_, per_node.begin()->first, std::move(body)));
        } else if (per_node.size() <= max_pid_cases_) {
          for (const auto& [n, r] : rects) {
            std::vector<StmtPtr> body;
            const AffineVal cr0{r.r0, 0, true}, cr1{r.r1, 0, true},
                cc0{r.c0, 0, true}, cc1{r.c1, 0, true};
            body.push_back(lang::make_directive(
                out_, key.kind, build_ref(*a, cr0, cr1, cc0, cc1)));
            stmts.push_back(make_pid_guard(out_, n, std::move(body)));
            ++inserted_;
          }
          --inserted_;  // first one was already counted
        } else {
          // Affine but only a (large) subset of nodes: guard by range.
          NodeId lo = per_node.begin()->first;
          NodeId hi = per_node.rbegin()->first;
          if (static_cast<std::size_t>(hi) - lo + 1 == per_node.size()) {
            auto s = std::make_unique<Stmt>();
            s->id = out_.next_id++;
            s->kind = StmtKind::If;
            s->cond = lang::make_binary(
                out_, lang::BinOp::And,
                lang::make_binary(out_, lang::BinOp::Ge, make_pid(out_),
                                  lang::make_number(out_, lo)),
                lang::make_binary(out_, lang::BinOp::Le, make_pid(out_),
                                  lang::make_number(out_, hi)));
            s->synthesized = true;
            s->body.push_back(std::move(dir));
            stmts.push_back(std::move(s));
          } else {
            ++dropped_;
            notes_ << "dropped non-contiguous node family on " << a->name
                   << "\n";
          }
        }
        return stmts;
      }
    }

    // Fallback: per-node concrete rectangles (small families only).
    if (all_rect && per_node.size() <= max_pid_cases_) {
      for (const auto& [n, r] : rects) {
        std::vector<StmtPtr> body;
        const AffineVal cr0{r.r0, 0, true}, cr1{r.r1, 0, true},
            cc0{r.c0, 0, true}, cc1{r.c1, 0, true};
        body.push_back(lang::make_directive(out_, key.kind,
                                            build_ref(*a, cr0, cr1, cc0, cc1)));
        stmts.push_back(make_pid_guard(out_, n, std::move(body)));
        ++inserted_;
      }
      return stmts;
    }

    ++dropped_;
    notes_ << "dropped non-affine family on " << a->name << " ("
           << per_node.size() << " nodes)\n";
    return stmts;
  }

  void emit_families() {
    for (const auto& [key, per_node] : families_) {
      std::vector<StmtPtr> stmts = emit_family(key, per_node);
      if (stmts.empty()) continue;
      auto& slot = key.place == Place::BeforeBarrier ||
                           key.place == Place::ProgramEnd
                       ? before_[key.anchor]
                       : after_[key.anchor];
      for (auto& s : stmts) slot.push_back(std::move(s));
    }
  }

  // --- tight DRFS annotations (section 4.4 placement) -------------------------

  void tight_wrap(const PlanTightWrap& w) {
    const Stmt* s = stmt_by_id_.contains(w.stmt) ? stmt_by_id_[w.stmt]
                                                  : nullptr;
    if (s == nullptr || s->kind != StmtKind::Assign || s->subs.empty()) {
      return;  // only element writes get the 4.4 treatment
    }
    // Build the single-element ref from the lvalue.
    lang::ArrayRef ref;
    ref.id = out_.next_id++;
    ref.name = s->name;
    for (const auto& sub : s->subs) {
      lang::RangeExpr r;
      r.lo = sub->clone();
      ref.ranges.push_back(std::move(r));
    }
    if (w.co_x) {
      before_[w.stmt].push_back(lang::make_directive(
          out_, sim::DirectiveKind::CheckOutX, ref.clone()));
      ++inserted_;
    }
    if (w.ci) {
      after_[w.stmt].push_back(lang::make_directive(
          out_, sim::DirectiveKind::CheckIn, ref.clone()));
      ++inserted_;
    }
    notes_ << "tight DRFS annotations around statement at line "
           << s->loc.line << " (" << s->name << ")\n";
  }

  // --- insertion ----------------------------------------------------------------

  void insert_in_block(std::vector<StmtPtr>& block) {
    std::vector<StmtPtr> rebuilt;
    for (auto& sp : block) {
      const AstId id = sp->id;
      insert_in_block(sp->body);
      insert_in_block(sp->else_body);
      if (auto it = before_.find(id); it != before_.end()) {
        for (auto& s : it->second) rebuilt.push_back(std::move(s));
        before_.erase(it);
      }
      rebuilt.push_back(std::move(sp));
      if (auto it = after_.find(id); it != after_.end()) {
        for (auto& s : it->second) rebuilt.push_back(std::move(s));
        after_.erase(it);
      }
    }
    block = std::move(rebuilt);
  }

  void insert_all() {
    // Generated row loops for multi-row rectangle refs: rewrite directive
    // statements whose ref spans multiple rows into synthesized loops.
    rewrite_row_bands(after_);
    rewrite_row_bands(before_);

    insert_in_block(out_.body);
    // Anchor 0: program start / end.
    if (auto it = after_.find(0); it != after_.end()) {
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        out_.body.insert(out_.body.begin(), std::move(*rit));
      }
      after_.erase(it);
    }
    if (auto it = before_.find(0); it != before_.end()) {
      for (auto& s : it->second) out_.body.push_back(std::move(s));
      before_.erase(it);
    }
  }

  void rewrite_row_bands(std::map<AstId, std::vector<StmtPtr>>& slots) {
    for (auto& [anchor, stmts] : slots) {
      for (auto& sp : stmts) {
        maybe_loopify(sp);
        for (auto& inner : sp->body) maybe_loopify(inner);
      }
    }
  }

  /// `dir A[r0:r1, c0:c1];` with r0 != r1 becomes
  /// `for _cico_rK = r0 to r1 do dir A[_cico_rK, c0:c1]; od`
  /// -- the section 4.3 "generating new loops" collapsing step.
  void maybe_loopify(StmtPtr& sp) {
    if (sp->kind != StmtKind::Directive || !sp->ref ||
        sp->ref->ranges.size() != 2 || !sp->ref->ranges[0].hi) {
      return;
    }
    const std::string var = "_cico_r" + std::to_string(loop_counter_++);
    lang::ArrayRef inner = sp->ref->clone();
    inner.id = out_.next_id++;
    inner.ranges[0].lo = lang::make_var(out_, var);
    inner.ranges[0].hi.reset();
    StmtPtr dir = lang::make_directive(out_, sp->dir, std::move(inner));
    std::vector<StmtPtr> body;
    body.push_back(std::move(dir));
    StmtPtr loop = lang::make_for(out_, var, sp->ref->ranges[0].lo->clone(),
                                  sp->ref->ranges[0].hi->clone(),
                                  std::move(body));
    sp = std::move(loop);
    ++generated_loops_;
  }

  Program& out_;
  const PlanSource& plan_;
  std::size_t max_pid_cases_;

  std::unordered_map<AstId, const Stmt*> stmt_by_id_;
  std::map<FamilyKey, std::map<NodeId, std::set<std::size_t>>, FamilyOrder>
      families_;
  std::map<AstId, std::vector<StmtPtr>> before_, after_;

  std::size_t inserted_ = 0, generated_loops_ = 0, dropped_ = 0;
  int loop_counter_ = 0;
  std::ostringstream notes_;
};

// ---------------------------------------------------------------------------
// The trace-driven planner
// ---------------------------------------------------------------------------

/// Runs the section 4.1 equations per (epoch, node) over the trace and
/// maps the chosen block sets back onto array element families -- the
/// front half of the historical annotator, now producing a PlanSource.
class TracePlanner {
 public:
  TracePlanner(const Program& src, const trace::Trace& trace,
               const lang::LoadedProgram& binding,
               const mem::CacheGeometry& geo, const AnnotateOptions& opt)
      : trace_(trace),
        binding_(binding),
        geo_(geo),
        opt_(opt),
        db_(trace, geo),
        sharing_(trace, geo, opt.sharing),
        chooser_(db_, sharing_, opt.chooser) {
    for (const auto& l : trace.labels) {
      ArrayLayout a;
      a.name = l.label;
      a.base = l.base;
      a.bytes = l.bytes;
      const auto [d0, d1] = binding.array_dims(l.label);
      a.d0 = d0;
      a.d1 = d1;
      a.two_d = d1 > 1;
      layouts_.push_back(std::move(a));
    }
    map_stmts(src.body);
    build_epoch_anchors();
  }

  PlanSource plan() {
    collect_families();
    PlanSource plan;
    plan.nodes = db_.nodes();
    for (const auto& a : layouts_) {
      plan.shapes.push_back({a.name, a.d0, a.d1, a.two_d});
    }
    for (const auto& [key, per_node] : families_) {
      PlanFamily f;
      f.anchor = key.anchor;
      f.at_start =
          key.place == Place::ProgramStart || key.place == Place::AfterBarrier;
      f.kind = key.kind;
      f.array = key.array;
      f.per_node.resize(db_.nodes());
      for (const auto& [n, elems] : per_node) {
        f.per_node[n].assign(elems.begin(), elems.end());
      }
      plan.families.push_back(std::move(f));
    }
    collect_tight(plan.tight);
    plan.races = sharing_.races().size();
    plan.false_shares = sharing_.false_shares().size();
    return plan;
  }

 private:
  // --- source structure maps ------------------------------------------------

  void map_expr(const lang::Expr& e, AstId stmt) {
    stmt_of_expr_[e.id] = stmt;
    for (const auto& a : e.args) map_expr(*a, stmt);
  }

  void map_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& sp : stmts) {
      const Stmt& s = *sp;
      if (s.rhs) map_expr(*s.rhs, s.id);
      for (const auto& x : s.subs) map_expr(*x, s.id);
      if (s.cond) map_expr(*s.cond, s.id);
      if (s.lo) map_expr(*s.lo, s.id);
      if (s.hi) map_expr(*s.hi, s.id);
      if (s.step) map_expr(*s.step, s.id);
      stmt_of_expr_[s.id] = s.id;  // a stmt maps to itself
      map_stmts(s.body);
      map_stmts(s.else_body);
    }
  }

  void build_epoch_anchors() {
    const EpochId epochs = trace_.num_epochs();
    end_barrier_.assign(epochs, 0);
    for (const auto& b : trace_.barriers) {
      if (b.epoch < epochs && end_barrier_[b.epoch] == 0) {
        end_barrier_[b.epoch] = binding_.ast_for(b.barrier_pc);
      }
    }
  }

  [[nodiscard]] AstId start_anchor(EpochId e) const {
    return e == 0 ? 0 : end_barrier_[e - 1];
  }
  [[nodiscard]] AstId end_anchor(EpochId e) const {
    return e < end_barrier_.size() ? end_barrier_[e] : 0;
  }

  // --- set collection --------------------------------------------------------

  const ArrayLayout* layout_of_block(Block b) const {
    const Addr addr = geo_.base_of(b);
    for (const auto& a : layouts_) {
      if (addr >= a.base && addr < a.base + a.bytes) return &a;
    }
    return nullptr;
  }

  void add_blocks(const FamilyKey& proto, const BlockSet& blocks, NodeId n) {
    for (Block b : blocks) {
      const ArrayLayout* a = layout_of_block(b);
      if (a == nullptr) continue;
      FamilyKey key = proto;
      key.array = a->name;
      auto& per_node = families_[key];
      const Addr lo = std::max(geo_.base_of(b), a->base);
      const Addr hi = std::min(geo_.base_of(b) + geo_.block_bytes,
                               a->base + a->bytes);
      for (Addr x = lo; x < hi; x += sizeof(double)) {
        per_node[n].insert(static_cast<std::size_t>((x - a->base) /
                                                    sizeof(double)));
      }
    }
  }

  void collect_families() {
    const std::uint32_t nodes = db_.nodes();
    for (EpochId e = 0; e < db_.epochs(); ++e) {
      for (NodeId n = 0; n < nodes; ++n) {
        cachier::AnnotationSets s = chooser_.choose(e, n, opt_.mode);
        const AstId sa = start_anchor(e);
        const AstId ea = end_anchor(e);
        const Place sp = sa == 0 ? Place::ProgramStart : Place::AfterBarrier;
        const Place ep = ea == 0 ? Place::ProgramEnd : Place::BeforeBarrier;
        add_blocks({sa, sp, "", sim::DirectiveKind::CheckOutX}, s.co_x_start,
                   n);
        add_blocks({sa, sp, "", sim::DirectiveKind::CheckOutS}, s.co_s_start,
                   n);
        add_blocks({ea, ep, "", sim::DirectiveKind::CheckIn}, s.ci_end, n);
        // Tight sets are handled per-statement via PlanTightWrap; remember
        // them here keyed by epoch.
        for (Block b : s.ci_tight) tight_ci_[e].insert(b);
        for (Block b : s.fetch_exclusive) tight_cox_[e].insert(b);
      }
    }
  }

  void collect_tight(std::vector<PlanTightWrap>& out) {
    // Which statements touch DRFS blocks, and how?
    std::map<AstId, std::pair<bool, bool>> wrap;  // stmt -> (co_x, ci)
    for (const auto& m : trace_.misses) {
      const Block b = geo_.block_of(m.addr);
      const bool ci = tight_ci_.contains(m.epoch) &&
                      tight_ci_[m.epoch].contains(b);
      const bool cox = tight_cox_.contains(m.epoch) &&
                       tight_cox_[m.epoch].contains(b);
      if (!ci && !cox) continue;
      const AstId ast = binding_.ast_for(m.pc);
      auto it = stmt_of_expr_.find(ast);
      if (it == stmt_of_expr_.end()) continue;
      auto& w = wrap[it->second];
      w.first |= cox;
      w.second |= ci;
    }
    for (const auto& [stmt_id, w] : wrap) {
      out.push_back({stmt_id, w.first, w.second});
    }
  }

  const trace::Trace& trace_;
  const lang::LoadedProgram& binding_;
  mem::CacheGeometry geo_;
  AnnotateOptions opt_;
  cachier::EpochDB db_;
  cachier::SharingAnalyzer sharing_;
  cachier::AnnotationChooser chooser_;

  std::vector<ArrayLayout> layouts_;
  std::unordered_map<AstId, AstId> stmt_of_expr_;
  std::vector<AstId> end_barrier_;
  std::map<FamilyKey, std::map<NodeId, std::set<std::size_t>>, FamilyOrder>
      families_;
  std::unordered_map<EpochId, BlockSet> tight_ci_, tight_cox_;
};

void naive_block(Program& out, std::vector<StmtPtr>& block,
                 const std::set<std::string>& shared) {
  std::vector<StmtPtr> rebuilt;
  for (auto& sp : block) {
    naive_block(out, sp->body, shared);
    naive_block(out, sp->else_body, shared);
    const bool shared_write = sp->kind == StmtKind::Assign &&
                              !sp->subs.empty() && shared.contains(sp->name);
    if (shared_write) {
      lang::ArrayRef ref;
      ref.id = out.next_id++;
      ref.name = sp->name;
      for (const auto& sub : sp->subs) {
        lang::RangeExpr r;
        r.lo = sub->clone();
        ref.ranges.push_back(std::move(r));
      }
      rebuilt.push_back(lang::make_directive(
          out, sim::DirectiveKind::CheckOutX, ref.clone()));
      rebuilt.push_back(std::move(sp));
      rebuilt.push_back(
          lang::make_directive(out, sim::DirectiveKind::CheckIn, ref.clone()));
    } else {
      rebuilt.push_back(std::move(sp));
    }
  }
  block = std::move(rebuilt);
}

}  // namespace

AnnotateResult annotate_from_source(const Program& src, const PlanSource& plan,
                                    std::size_t max_pid_cases) {
  AnnotateResult res;
  res.program = src.clone();
  Emitter em(res.program, plan, max_pid_cases);
  em.run();
  res.inserted = em.inserted();
  res.generated_loops = em.generated_loops();
  res.dropped = em.dropped();
  res.races = plan.races;
  res.false_shares = plan.false_shares;
  std::string notes;
  for (const std::string& n : plan.notes) notes += n + "\n";
  res.notes = notes + em.notes();
  res.lint = analysis::lint(res.program);
  return res;
}

AnnotateResult annotate(const Program& src, const trace::Trace& trace,
                        const lang::LoadedProgram& binding,
                        const mem::CacheGeometry& geo,
                        const AnnotateOptions& opt) {
  const PlanSource plan =
      TracePlanner(src, trace, binding, geo, opt).plan();
  return annotate_from_source(src, plan, opt.max_pid_cases);
}

AnnotateResult annotate_static(const Program& src, std::uint32_t nodes,
                               const StaticAnnotateOptions& opt) {
  analysis::StaticPlanOptions popt;
  popt.mode = opt.mode == cachier::Mode::Programmer
                  ? analysis::PlanMode::Programmer
                  : analysis::PlanMode::Performance;
  popt.prefetch = opt.prefetch;
  const analysis::StaticPlan sp =
      analysis::plan_static(src, static_cast<int>(nodes), popt);

  PlanSource plan;
  plan.nodes = nodes;
  for (const auto& sh : sp.shapes) {
    plan.shapes.push_back({sh.name, static_cast<std::size_t>(sh.d0),
                           static_cast<std::size_t>(sh.d1), sh.two_d});
  }
  for (const auto& f : sp.families) {
    plan.families.push_back({f.anchor, f.at_start, f.kind, f.array, f.part,
                             f.per_node});
  }
  plan.cos_before_cox = true;
  plan.notes = sp.notes;
  return annotate_from_source(src, plan, opt.max_pid_cases);
}

Program annotate_naive(const Program& src) {
  Program out = src.clone();
  std::set<std::string> shared;
  for (const auto& d : out.decls) {
    if (d->kind == StmtKind::SharedDecl) shared.insert(d->name);
  }
  naive_block(out, out.body, shared);
  return out;
}

}  // namespace cico::srcann
