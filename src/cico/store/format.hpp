// Epoch-chunked binary trace format v2.
//
// The v1 binary codec is one flat record stream: compact, but a one-byte
// change anywhere re-encodes nothing and shares nothing.  Fleet-scale
// regression traffic is near-identical runs -- the same app, the same
// node count, one epoch's behaviour changed -- so v2 groups records into
// independently decodable per-epoch-group chunks, each carrying its own
// length and 128-bit content hash.  The content-addressed store
// (store.hpp) keys objects by those chunk boundaries, so two runs
// differing in one epoch share every other chunk on disk, and `cachier
// sync` moves only the delta.
//
// Layout (all integers canonical unsigned LEB128, common/varint.hpp):
//
//   file    := header chunk* end trailer
//   header  := magic "cicotrc2"
//              varint version (= 2)
//              varint epochs_per_chunk K (>= 1)
//              varint nlabels  label*
//   label   := varint len  bytes  varint base  varint bytes
//              varint regular (0|1)
//   chunk   := 0x01
//              varint first_epoch   (multiple of K, strictly increasing)
//              varint epochs        (= K, except the final chunk, whose
//                                    span ends at its own last epoch)
//              varint payload_len
//              hash[16]             (ContentHasher digest of payload)
//              payload
//   end     := 0x00
//   trailer := varint nchunks  varint nmisses  varint nbarriers
//
// A chunk's payload is self-contained (deltas reset per chunk):
//
//   payload := varint nmisses   miss*     (canonical record order)
//              varint nbarriers barrier*
//   miss    := varint d_epoch  varint node  varint kind
//              varint zz_addr  varint size  varint pc
//   barrier := varint d_epoch  varint node  varint pc  varint zz_vt
//
// Records are sorted (trace::canonicalize) and the reader REJECTS
// out-of-order records, empty chunks, non-canonical varints, hash
// mismatches, and trailing bytes -- so a v2 byte stream is a bijective
// function of the canonical trace, which is exactly the invariant that
// makes content-addressing sound.  Epoch groups with no records are
// simply absent (first_epoch skips them).
//
// ChunkWriter/ChunkReader stream one chunk at a time, so
// `--stream-epochs`-style O(1)-memory consumers never materialize the
// whole trace; save_v2/load_v2 are the whole-trace conveniences on top.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cico/trace/trace.hpp"

namespace cico::store {

inline constexpr char kV2Magic[8] = {'c', 'i', 'c', 'o', 't', 'r', 'c', '2'};
inline constexpr EpochId kDefaultEpochsPerChunk = 1;

/// True when `bytes` starts with the v2 magic.
[[nodiscard]] bool is_v2(std::string_view bytes);

/// One decoded chunk: the records of epochs [first_epoch,
/// first_epoch + epochs), in canonical order.
struct ChunkRecords {
  EpochId first_epoch = 0;
  EpochId epochs = 0;
  std::vector<trace::MissRecord> misses;
  std::vector<trace::BarrierRecord> barriers;
  std::string hash_hex;  ///< content hash of the encoded payload
};

/// Streaming v2 writer.  Records must arrive in nondecreasing epoch order
/// (the simulator's TraceWriter and save_v2 both satisfy this); memory is
/// O(one epoch group).  Call finish() exactly once -- it flushes the
/// final chunk and writes the end marker and trailer.
class ChunkWriter {
 public:
  ChunkWriter(std::ostream& os, std::vector<trace::RegionLabel> labels,
              EpochId epochs_per_chunk = kDefaultEpochsPerChunk);

  void add(const trace::MissRecord& m);
  void add(const trace::BarrierRecord& b);
  void finish();

  [[nodiscard]] std::uint64_t chunks_written() const { return chunks_; }

 private:
  void advance_to(EpochId epoch);
  void flush_group(bool final_chunk);

  std::ostream& os_;
  EpochId k_;
  EpochId group_first_ = 0;  ///< first epoch of the open group
  std::vector<trace::MissRecord> misses_;
  std::vector<trace::BarrierRecord> barriers_;
  std::uint64_t total_misses_ = 0;
  std::uint64_t total_barriers_ = 0;
  std::uint64_t chunks_ = 0;
  bool finished_ = false;
};

/// Streaming v2 reader.  The constructor parses and validates the header;
/// next() decodes one chunk (false once the end marker and trailer have
/// been validated, including the no-trailing-junk check).  Every
/// structural violation throws std::runtime_error with a `trace:` prefix.
class ChunkReader {
 public:
  explicit ChunkReader(std::istream& is);

  [[nodiscard]] const std::vector<trace::RegionLabel>& labels() const {
    return labels_;
  }
  [[nodiscard]] EpochId epochs_per_chunk() const { return k_; }

  bool next(ChunkRecords& out);

  /// Totals, valid once next() has returned false.
  [[nodiscard]] std::uint64_t chunks() const { return chunks_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t barriers() const { return barriers_; }

 private:
  std::istream& is_;
  std::vector<trace::RegionLabel> labels_;
  EpochId k_ = 1;
  bool done_ = false;
  bool have_prev_ = false;
  EpochId prev_first_ = 0;
  EpochId prev_span_ = 0;
  EpochId prev_last_epoch_ = 0;  ///< max record epoch in the previous chunk
  std::uint64_t chunks_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t barriers_ = 0;
};

/// Serializes the canonical form of `t` (record order is sorted first;
/// see trace::canonicalize -- within-epoch order carries no semantics).
void save_v2(const trace::Trace& t, std::ostream& os,
             EpochId epochs_per_chunk = kDefaultEpochsPerChunk);

/// Loads a complete v2 stream (labels validated, trailing junk rejected).
[[nodiscard]] trace::Trace load_v2(std::istream& is);

/// A v2 byte stream split at its natural object boundaries: the header,
/// one string per chunk, and the end-marker + trailer.  Fully validates
/// (it is a parse, not a scan); concatenating the pieces reproduces the
/// input byte-for-byte.  This is how the store chunks trace artifacts.
struct V2Sections {
  std::string header;
  std::vector<std::string> chunks;
  std::string trailer;
};
[[nodiscard]] V2Sections split_v2(std::string_view bytes);

}  // namespace cico::store
