#include "cico/store/sync.hpp"

#include <stdexcept>
#include <string>

namespace cico::store {

namespace {

[[nodiscard]] bool manifests_equal(const Manifest& a, const Manifest& b) {
  if (a.kind != b.kind || a.bytes != b.bytes ||
      a.objects.size() != b.objects.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    if (a.objects[i].hash_hex != b.objects[i].hash_hex ||
        a.objects[i].bytes != b.objects[i].bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

SyncStats sync_stores(const ObjectStore& src, ObjectStore& dst) {
  SyncStats stats;
  for (const auto& info : src.ls()) {
    ++stats.manifests_total;
    const Manifest m = src.read_manifest(info.name);

    // Objects first, manifest last: if the sync dies halfway, the
    // destination never holds a manifest whose chunks are missing.
    for (const auto& o : m.objects) {
      if (dst.has_object(o.hash_hex)) {
        ++stats.objects_skipped;
        continue;
      }
      // get_object re-verifies the content hash on the way out of src.
      const std::string bytes = src.get_object(o.hash_hex);
      const auto put = dst.put_object(bytes);
      if (put.hash_hex != o.hash_hex) {
        throw std::runtime_error("store: object " + o.hash_hex +
                                 " rehashed to " + put.hash_hex +
                                 " during sync");
      }
      if (put.was_new) {
        ++stats.objects_copied;
        stats.bytes_copied += bytes.size();
      } else {
        ++stats.objects_skipped;
      }
    }

    if (dst.has_manifest(m.name) &&
        manifests_equal(m, dst.read_manifest(m.name))) {
      continue;
    }
    dst.write_manifest(m);
    ++stats.manifests_copied;
  }
  return stats;
}

}  // namespace cico::store
