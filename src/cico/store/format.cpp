#include "cico/store/format.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "cico/common/hash.hpp"
#include "cico/common/varint.hpp"

namespace cico::store {

namespace {

constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;
constexpr std::uint64_t kMaxLabelBytes = 1u << 20;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("trace: " + what);
}

std::uint64_t get(std::istream& is) { return common::get_varint(is, "trace"); }

void put_string(std::ostream& os, const std::string& s) {
  common::put_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get(is);
  if (n > kMaxLabelBytes) fail("oversized string");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) fail("truncated v2 input");
  return s;
}

[[nodiscard]] auto miss_key(const trace::MissRecord& m) {
  return std::tuple(m.epoch, m.node, m.addr, m.pc,
                    static_cast<std::uint8_t>(m.kind), m.size);
}

[[nodiscard]] auto barrier_key(const trace::BarrierRecord& b) {
  return std::tuple(b.epoch, b.node, b.vt, b.barrier_pc);
}

/// Encodes one chunk's records (already canonically sorted) with deltas
/// reset at the chunk boundary, so every chunk decodes independently.
std::string encode_payload(EpochId first_epoch,
                           const std::vector<trace::MissRecord>& misses,
                           const std::vector<trace::BarrierRecord>& barriers) {
  std::ostringstream ss;
  common::put_varint(ss, misses.size());
  EpochId prev_e = first_epoch;
  Addr prev_addr = 0;
  for (const auto& m : misses) {
    common::put_varint(ss, m.epoch - prev_e);
    prev_e = m.epoch;
    common::put_varint(ss, m.node);
    common::put_varint(ss, static_cast<std::uint64_t>(m.kind));
    common::put_varint(ss, common::zigzag_encode(m.addr, prev_addr));
    prev_addr = m.addr;
    common::put_varint(ss, m.size);
    common::put_varint(ss, m.pc);
  }
  common::put_varint(ss, barriers.size());
  prev_e = first_epoch;
  Cycle prev_vt = 0;
  for (const auto& b : barriers) {
    common::put_varint(ss, b.epoch - prev_e);
    prev_e = b.epoch;
    common::put_varint(ss, b.node);
    common::put_varint(ss, b.barrier_pc);
    common::put_varint(ss, common::zigzag_encode(b.vt, prev_vt));
    prev_vt = b.vt;
  }
  return ss.str();
}

/// Decodes and validates one payload: canonical record order, in-chunk
/// epochs, range-checked narrow fields, and full consumption.
void decode_payload(const std::string& payload, EpochId first_epoch,
                    EpochId span, ChunkRecords& out) {
  std::istringstream ps(payload);
  const std::uint64_t chunk_end =
      static_cast<std::uint64_t>(first_epoch) + span;  // exclusive

  const auto nmisses = get(ps);
  if (nmisses > payload.size() / 6) fail("miss count exceeds payload");
  out.misses.reserve(nmisses);
  EpochId prev_e = first_epoch;
  Addr prev_addr = 0;
  for (std::uint64_t i = 0; i < nmisses; ++i) {
    trace::MissRecord m;
    const std::uint64_t e = static_cast<std::uint64_t>(prev_e) + get(ps);
    if (e >= chunk_end) fail("record epoch outside chunk");
    m.epoch = static_cast<EpochId>(e);
    prev_e = m.epoch;
    m.node = common::narrow_varint<NodeId>(get(ps), "trace", "node");
    const auto kind = get(ps);
    if (kind > static_cast<std::uint64_t>(trace::MissKind::WriteFault)) {
      fail("bad miss kind");
    }
    m.kind = static_cast<trace::MissKind>(kind);
    m.addr = common::zigzag_decode(get(ps), prev_addr);
    prev_addr = m.addr;
    m.size = common::narrow_varint<std::uint32_t>(get(ps), "trace", "size");
    m.pc = common::narrow_varint<PcId>(get(ps), "trace", "pc");
    if (!out.misses.empty() && miss_key(m) < miss_key(out.misses.back())) {
      fail("chunk records out of canonical order");
    }
    out.misses.push_back(m);
  }

  const auto nbarriers = get(ps);
  if (nbarriers > payload.size() / 4) fail("barrier count exceeds payload");
  out.barriers.reserve(nbarriers);
  prev_e = first_epoch;
  Cycle prev_vt = 0;
  for (std::uint64_t i = 0; i < nbarriers; ++i) {
    trace::BarrierRecord b;
    const std::uint64_t e = static_cast<std::uint64_t>(prev_e) + get(ps);
    if (e >= chunk_end) fail("record epoch outside chunk");
    b.epoch = static_cast<EpochId>(e);
    prev_e = b.epoch;
    b.node = common::narrow_varint<NodeId>(get(ps), "trace", "node");
    b.barrier_pc =
        common::narrow_varint<PcId>(get(ps), "trace", "barrier pc");
    b.vt = common::zigzag_decode(get(ps), prev_vt);
    prev_vt = b.vt;
    if (!out.barriers.empty() &&
        barrier_key(b) < barrier_key(out.barriers.back())) {
      fail("chunk records out of canonical order");
    }
    out.barriers.push_back(b);
  }

  if (ps.peek() != std::char_traits<char>::eof()) {
    fail("chunk payload has trailing bytes");
  }
}

}  // namespace

bool is_v2(std::string_view bytes) {
  return bytes.size() >= sizeof(kV2Magic) &&
         std::memcmp(bytes.data(), kV2Magic, sizeof(kV2Magic)) == 0;
}

// --- ChunkWriter -----------------------------------------------------------

ChunkWriter::ChunkWriter(std::ostream& os,
                         std::vector<trace::RegionLabel> labels,
                         EpochId epochs_per_chunk)
    : os_(os), k_(epochs_per_chunk == 0 ? 1 : epochs_per_chunk) {
  os_.write(kV2Magic, sizeof(kV2Magic));
  common::put_varint(os_, 2);  // version
  common::put_varint(os_, k_);
  common::put_varint(os_, labels.size());
  for (const auto& r : labels) {
    put_string(os_, r.label);
    common::put_varint(os_, r.base);
    common::put_varint(os_, r.bytes);
    common::put_varint(os_, r.regular ? 1 : 0);
  }
}

void ChunkWriter::advance_to(EpochId epoch) {
  if (finished_) {
    throw std::logic_error("trace: ChunkWriter used after finish()");
  }
  if (epoch < group_first_) {
    fail("record epoch out of order for chunked write");
  }
  if (epoch - group_first_ >= k_) {
    // The open group is complete; the incoming record guarantees a later
    // chunk follows, so this one is emitted with the full span K (empty
    // groups in between are simply skipped -- they have no chunk).
    if (!misses_.empty() || !barriers_.empty()) flush_group(false);
    group_first_ = epoch / k_ * k_;
  }
}

void ChunkWriter::add(const trace::MissRecord& m) {
  advance_to(m.epoch);
  misses_.push_back(m);
}

void ChunkWriter::add(const trace::BarrierRecord& b) {
  advance_to(b.epoch);
  barriers_.push_back(b);
}

void ChunkWriter::flush_group(bool final_chunk) {
  std::sort(misses_.begin(), misses_.end(),
            [](const trace::MissRecord& a, const trace::MissRecord& b) {
              return miss_key(a) < miss_key(b);
            });
  std::sort(barriers_.begin(), barriers_.end(),
            [](const trace::BarrierRecord& a, const trace::BarrierRecord& b) {
              return barrier_key(a) < barrier_key(b);
            });
  EpochId last = group_first_;
  for (const auto& m : misses_) last = std::max(last, m.epoch);
  for (const auto& b : barriers_) last = std::max(last, b.epoch);
  const EpochId span = final_chunk ? last - group_first_ + 1 : k_;

  const std::string payload = encode_payload(group_first_, misses_, barriers_);
  common::ContentHasher h;
  h << payload;
  const auto digest = h.digest();

  os_.put(0x01);
  common::put_varint(os_, group_first_);
  common::put_varint(os_, span);
  common::put_varint(os_, payload.size());
  os_.write(reinterpret_cast<const char*>(digest.data()),
            static_cast<std::streamsize>(digest.size()));
  os_.write(payload.data(), static_cast<std::streamsize>(payload.size()));

  total_misses_ += misses_.size();
  total_barriers_ += barriers_.size();
  ++chunks_;
  misses_.clear();
  barriers_.clear();
}

void ChunkWriter::finish() {
  if (finished_) {
    throw std::logic_error("trace: ChunkWriter::finish() called twice");
  }
  if (!misses_.empty() || !barriers_.empty()) flush_group(true);
  os_.put(0x00);
  common::put_varint(os_, chunks_);
  common::put_varint(os_, total_misses_);
  common::put_varint(os_, total_barriers_);
  finished_ = true;
}

// --- ChunkReader -----------------------------------------------------------

ChunkReader::ChunkReader(std::istream& is) : is_(is) {
  char magic[sizeof(kV2Magic)] = {};
  is_.read(magic, sizeof(magic));
  if (!is_ || std::memcmp(magic, kV2Magic, sizeof(magic)) != 0) {
    fail("bad v2 header");
  }
  const auto version = get(is_);
  if (version != 2) {
    fail("unsupported v2 version " + std::to_string(version));
  }
  k_ = common::narrow_varint<EpochId>(get(is_), "trace", "epochs per chunk");
  if (k_ == 0) fail("epochs per chunk must be >= 1");
  const auto nlabels = get(is_);
  if (nlabels > kMaxLabelBytes) fail("label count");
  labels_.reserve(nlabels);
  for (std::uint64_t i = 0; i < nlabels; ++i) {
    trace::RegionLabel r;
    r.label = get_string(is_);
    r.base = get(is_);
    r.bytes = get(is_);
    const auto reg = get(is_);
    if (reg > 1) fail("regular flag must be 0 or 1");
    r.regular = reg != 0;
    labels_.push_back(std::move(r));
  }
}

bool ChunkReader::next(ChunkRecords& out) {
  if (done_) return false;
  const int tag = is_.get();
  if (tag == std::char_traits<char>::eof()) fail("truncated v2 input");

  if (tag == 0x00) {
    // End marker: the chunk before it is the final one, so its span must
    // end exactly at its own last record epoch (canonical form).
    if (have_prev_ && prev_first_ + prev_span_ - 1 != prev_last_epoch_) {
      fail("final chunk span mismatch");
    }
    const auto nchunks = get(is_);
    const auto nmisses = get(is_);
    const auto nbarriers = get(is_);
    if (nchunks != chunks_ || nmisses != misses_ || nbarriers != barriers_) {
      fail("trailer counts mismatch");
    }
    if (is_.peek() != std::char_traits<char>::eof()) {
      fail("trailing junk after trailer");
    }
    done_ = true;
    return false;
  }
  if (tag != 0x01) fail("bad chunk tag");

  // Every chunk except the final one spans exactly K epochs.
  if (have_prev_ && prev_span_ != k_) fail("short chunk before end");

  const auto first =
      common::narrow_varint<EpochId>(get(is_), "trace", "chunk first epoch");
  const auto span =
      common::narrow_varint<EpochId>(get(is_), "trace", "chunk span");
  if (span == 0 || span > k_) fail("bad chunk span");
  if (first % k_ != 0) fail("misaligned chunk");
  if (have_prev_ && first <= prev_first_) fail("chunks out of order");
  if (span - 1 > std::numeric_limits<EpochId>::max() - first) {
    fail("chunk epoch range overflow");
  }

  const auto plen = get(is_);
  if (plen > kMaxPayloadBytes) fail("oversized chunk");
  char digest[16] = {};
  is_.read(digest, sizeof(digest));
  if (!is_) fail("truncated v2 input");
  std::string payload(plen, '\0');
  is_.read(payload.data(), static_cast<std::streamsize>(plen));
  if (!is_) fail("truncated v2 input");

  common::ContentHasher h;
  h << payload;
  const auto want = h.digest();
  if (std::memcmp(digest, want.data(), want.size()) != 0) {
    fail("chunk hash mismatch");
  }

  out.first_epoch = first;
  out.epochs = span;
  out.misses.clear();
  out.barriers.clear();
  out.hash_hex = h.hex();
  decode_payload(payload, first, span, out);
  if (out.misses.empty() && out.barriers.empty()) fail("empty chunk");

  EpochId last = first;
  for (const auto& m : out.misses) last = std::max(last, m.epoch);
  for (const auto& b : out.barriers) last = std::max(last, b.epoch);

  have_prev_ = true;
  prev_first_ = first;
  prev_span_ = span;
  prev_last_epoch_ = last;
  ++chunks_;
  misses_ += out.misses.size();
  barriers_ += out.barriers.size();
  return true;
}

// --- whole-trace conveniences ----------------------------------------------

void save_v2(const trace::Trace& t, std::ostream& os,
             EpochId epochs_per_chunk) {
  trace::Trace c;
  c.misses = t.misses;
  c.barriers = t.barriers;
  c.labels = t.labels;
  trace::canonicalize(c);
  (void)c.num_epochs();  // rejects the unrepresentable EpochId-max epoch

  ChunkWriter w(os, c.labels, epochs_per_chunk);
  // Merge the two (epoch-sorted) streams so the writer sees nondecreasing
  // epochs; record counts, not epoch ids, bound this loop.
  std::size_t mi = 0;
  std::size_t bi = 0;
  while (mi < c.misses.size() || bi < c.barriers.size()) {
    EpochId e = std::numeric_limits<EpochId>::max();
    if (mi < c.misses.size()) e = std::min(e, c.misses[mi].epoch);
    if (bi < c.barriers.size()) e = std::min(e, c.barriers[bi].epoch);
    while (mi < c.misses.size() && c.misses[mi].epoch == e) w.add(c.misses[mi++]);
    while (bi < c.barriers.size() && c.barriers[bi].epoch == e) {
      w.add(c.barriers[bi++]);
    }
  }
  w.finish();
}

trace::Trace load_v2(std::istream& is) {
  ChunkReader r(is);
  trace::Trace t;
  t.labels = r.labels();
  ChunkRecords c;
  while (r.next(c)) {
    t.misses.insert(t.misses.end(), c.misses.begin(), c.misses.end());
    t.barriers.insert(t.barriers.end(), c.barriers.begin(), c.barriers.end());
  }
  t.validate_labels();
  return t;
}

V2Sections split_v2(std::string_view bytes) {
  std::istringstream is{std::string(bytes)};
  V2Sections out;
  ChunkReader r(is);
  auto pos = static_cast<std::size_t>(is.tellg());
  out.header = std::string(bytes.substr(0, pos));
  ChunkRecords c;
  while (r.next(c)) {
    const auto end = static_cast<std::size_t>(is.tellg());
    out.chunks.emplace_back(bytes.substr(pos, end - pos));
    pos = end;
  }
  out.trailer = std::string(bytes.substr(pos));
  return out;
}

}  // namespace cico::store
