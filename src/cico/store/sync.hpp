// Delta sync between two content-addressed stores.
//
// `cachier sync <src> <dst>` walks every manifest in the source and
// copies only the objects the destination lacks -- so after one full
// sync, pushing a near-identical new run moves just the chunks of the
// epochs that changed, not the whole trace.  Objects are re-verified as
// they cross (a corrupt source object aborts the sync with a `store:`
// error rather than propagating).
#pragma once

#include <cstdint>

#include "cico/store/store.hpp"

namespace cico::store {

struct SyncStats {
  std::uint64_t manifests_total = 0;   ///< manifests in the source
  std::uint64_t manifests_copied = 0;  ///< written into the destination
  std::uint64_t objects_copied = 0;
  std::uint64_t objects_skipped = 0;  ///< already present in destination
  std::uint64_t bytes_copied = 0;
};

/// Copies every artifact in `src` into `dst`, skipping objects `dst`
/// already has.  A manifest is rewritten when the destination is missing
/// it or disagrees (source wins; superseded objects become gc()-able).
SyncStats sync_stores(const ObjectStore& src, ObjectStore& dst);

}  // namespace cico::store
