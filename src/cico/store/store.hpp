// Local content-addressed artifact store.
//
// Layout (one directory, safe to rsync or tar):
//
//   <dir>/objects/<2-hex>/<32-hex>   one chunk, named by its 128-bit
//                                    ContentHasher hex (the 2-hex fanout
//                                    keeps directory listings sane)
//   <dir>/manifests/<name>.json      ordered object list for one artifact
//
// Traces are chunked at their v2 boundaries (header / one object per
// epoch-group chunk / trailer, see format.hpp), so two near-identical
// runs -- the fleet's common case -- share every chunk that did not
// change, and `cachier sync` (sync.hpp) moves only the delta.  v1 binary
// and text traces are transcoded to v2 on put; the text format remains
// the import/export codec, not a storage format.  Non-trace artifacts
// (reports, stdout payloads) are stored as fixed-size blob chunks.
//
// All writes are write-tmp-then-rename, so a crash never leaves a half
// object under a final name.  get() re-hashes every chunk on the way out:
// a flipped bit yields a `store:` error, never silently corrupt bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cico::store {

/// How put() chunked an artifact (recorded in the manifest).
enum class ArtifactKind : std::uint8_t {
  TraceV2,  ///< epoch-chunked trace, one object per v2 section
  Blob,     ///< fixed-size chunks (reports, stdout, anything else)
};

[[nodiscard]] const char* artifact_kind_name(ArtifactKind k);

struct PutStats {
  std::string name;
  ArtifactKind kind = ArtifactKind::Blob;
  std::uint64_t objects_total = 0;  ///< chunks in the manifest
  std::uint64_t objects_new = 0;    ///< chunks not already present
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_new = 0;
};

/// One artifact's chunk list, in concatenation order.
struct Manifest {
  struct Object {
    std::string hash_hex;
    std::uint64_t bytes = 0;
  };
  std::string name;
  ArtifactKind kind = ArtifactKind::Blob;
  std::uint64_t bytes = 0;  ///< total artifact size
  std::vector<Object> objects;
};

struct ManifestInfo {
  std::string name;
  ArtifactKind kind = ArtifactKind::Blob;
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
};

struct GcStats {
  std::uint64_t objects_removed = 0;
  std::uint64_t bytes_freed = 0;
};

/// True when `name` is a valid manifest name: [A-Za-z0-9._-]+, not
/// starting with '.' (no path separators, no hidden files, portable).
[[nodiscard]] bool validate_name(std::string_view name);

class ObjectStore {
 public:
  enum class Open : std::uint8_t {
    kCreate,    ///< create <dir> (and subdirs) if missing
    kExisting,  ///< throw `store:` if <dir> is not already a store
  };

  explicit ObjectStore(std::string dir, Open mode = Open::kCreate);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  // --- object tier ---------------------------------------------------------
  struct PutObject {
    std::string hash_hex;
    bool was_new = false;
  };
  [[nodiscard]] bool has_object(const std::string& hash_hex) const;
  /// Stores one chunk; returns its hash and whether it was new.
  PutObject put_object(std::string_view bytes);
  /// Loads and re-verifies one chunk (hash mismatch => `store:` error).
  [[nodiscard]] std::string get_object(const std::string& hash_hex) const;

  // --- artifact tier -------------------------------------------------------
  /// Chunks `bytes`, stores the missing chunks, writes the manifest.
  /// Traces (text, v1 binary, or v2) are normalized to v2 first; the
  /// manifest for an existing name is replaced.
  PutStats put(const std::string& name, std::string_view bytes);
  /// Reassembles an artifact byte-for-byte (every chunk re-verified).
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::vector<ManifestInfo> ls() const;
  /// Deletes objects no manifest references.
  GcStats gc();

  // --- manifest tier (sync and tooling) ------------------------------------
  [[nodiscard]] bool has_manifest(const std::string& name) const;
  /// Parses one manifest (`store:` error if missing or malformed).
  [[nodiscard]] Manifest read_manifest(const std::string& name) const;
  /// Writes a manifest verbatim; the caller guarantees the listed objects
  /// exist (sync copies them first).
  void write_manifest(const Manifest& m);

 private:
  [[nodiscard]] std::string object_path(const std::string& hash_hex) const;
  [[nodiscard]] std::string manifest_path(const std::string& name) const;

  std::string dir_;
};

}  // namespace cico::store
