#include "cico/store/store.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "cico/common/hash.hpp"
#include "cico/obs/json.hpp"
#include "cico/store/format.hpp"
#include "cico/trace/trace.hpp"

namespace cico::store {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kBlobChunkBytes = 64u * 1024;
constexpr char kTextHeader[] = "cico-trace v1\n";
constexpr char kV1Magic[8] = {'c', 'i', 'c', 'o', 't', 'r', 'c', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("store: " + what);
}

[[nodiscard]] bool is_hex_hash(std::string_view s) {
  if (s.size() != 32) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

[[nodiscard]] bool is_text_trace(std::string_view bytes) {
  return bytes.size() >= sizeof(kTextHeader) - 1 &&
         bytes.substr(0, sizeof(kTextHeader) - 1) == kTextHeader;
}

[[nodiscard]] bool is_v1_trace(std::string_view bytes) {
  return bytes.size() >= sizeof(kV1Magic) &&
         std::memcmp(bytes.data(), kV1Magic, sizeof(kV1Magic)) == 0;
}

/// Atomic file write: tmp then rename, so readers never see half a file.
void write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) fail("cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) fail("cannot write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    fail("cannot rename into place: " + path);
  }
}

[[nodiscard]] std::string read_file(const std::string& path,
                                    const std::string& what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("missing " + what + ": " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[nodiscard]] ArtifactKind kind_from_name(const std::string& s) {
  if (s == "trace-v2") return ArtifactKind::TraceV2;
  if (s == "blob") return ArtifactKind::Blob;
  fail("unknown artifact kind '" + s + "'");
}

[[nodiscard]] const obs::Json& field(const obs::Json& j, const char* key,
                                     const std::string& where) {
  const obs::Json* v = j.find(key);
  if (v == nullptr) fail(where + ": missing field '" + key + "'");
  return *v;
}

}  // namespace

const char* artifact_kind_name(ArtifactKind k) {
  switch (k) {
    case ArtifactKind::TraceV2:
      return "trace-v2";
    case ArtifactKind::Blob:
      return "blob";
  }
  return "blob";
}

bool validate_name(std::string_view name) {
  if (name.empty() || name.front() == '.') return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
  });
}

ObjectStore::ObjectStore(std::string dir, Open mode) : dir_(std::move(dir)) {
  if (dir_.empty()) fail("store directory must not be empty");
  const std::string objects = dir_ + "/objects";
  const std::string manifests = dir_ + "/manifests";
  if (mode == Open::kCreate) {
    std::error_code ec;
    fs::create_directories(objects, ec);
    if (!ec) fs::create_directories(manifests, ec);
    if (ec) fail("cannot create store at " + dir_ + ": " + ec.message());
  } else {
    if (!fs::is_directory(objects) || !fs::is_directory(manifests)) {
      fail("not a store directory: " + dir_);
    }
  }
}

std::string ObjectStore::object_path(const std::string& hash_hex) const {
  return dir_ + "/objects/" + hash_hex.substr(0, 2) + "/" + hash_hex;
}

std::string ObjectStore::manifest_path(const std::string& name) const {
  return dir_ + "/manifests/" + name + ".json";
}

bool ObjectStore::has_object(const std::string& hash_hex) const {
  return is_hex_hash(hash_hex) && fs::exists(object_path(hash_hex));
}

ObjectStore::PutObject ObjectStore::put_object(std::string_view bytes) {
  PutObject r;
  r.hash_hex = common::content_hash_hex(bytes);
  const std::string path = object_path(r.hash_hex);
  if (fs::exists(path)) return r;
  std::error_code ec;
  fs::create_directories(dir_ + "/objects/" + r.hash_hex.substr(0, 2), ec);
  if (ec) fail("cannot create object directory: " + ec.message());
  write_file(path, bytes);
  r.was_new = true;
  return r;
}

std::string ObjectStore::get_object(const std::string& hash_hex) const {
  if (!is_hex_hash(hash_hex)) fail("bad object hash '" + hash_hex + "'");
  std::string bytes = read_file(object_path(hash_hex), "object");
  if (common::content_hash_hex(bytes) != hash_hex) {
    fail("object " + hash_hex + " is corrupt (content hash mismatch)");
  }
  return bytes;
}

PutStats ObjectStore::put(const std::string& name, std::string_view bytes) {
  if (!validate_name(name)) fail("invalid artifact name '" + name + "'");

  // Traces are normalized to the chunk-shareable v2 form; anything else
  // is a blob.  Text and v1 binary go through their strict loaders, so a
  // malformed trace fails the put with a `trace:` error instead of being
  // stored as an opaque blob.
  std::string v2;
  ArtifactKind kind = ArtifactKind::Blob;
  if (is_text_trace(bytes)) {
    std::istringstream is{std::string(bytes)};
    const trace::Trace t = trace::load_text(is);
    std::ostringstream os;
    save_v2(t, os);
    v2 = os.str();
    kind = ArtifactKind::TraceV2;
  } else if (is_v1_trace(bytes)) {
    std::istringstream is{std::string(bytes)};
    const trace::Trace t = trace::load_binary(is);
    std::ostringstream os;
    save_v2(t, os);
    v2 = os.str();
    kind = ArtifactKind::TraceV2;
  } else if (is_v2(bytes)) {
    v2.assign(bytes);
    kind = ArtifactKind::TraceV2;
  }

  PutStats stats;
  stats.name = name;
  stats.kind = kind;
  Manifest m;
  m.name = name;
  m.kind = kind;

  const auto add_chunk = [&](std::string_view chunk) {
    const PutObject po = put_object(chunk);
    m.objects.push_back({po.hash_hex, chunk.size()});
    m.bytes += chunk.size();
    ++stats.objects_total;
    stats.bytes_total += chunk.size();
    if (po.was_new) {
      ++stats.objects_new;
      stats.bytes_new += chunk.size();
    }
  };

  if (kind == ArtifactKind::TraceV2) {
    // split_v2 is a full parse: a corrupt v2 stream fails here, before
    // anything lands in the store.
    const V2Sections s = split_v2(v2);
    add_chunk(s.header);
    for (const auto& c : s.chunks) add_chunk(c);
    add_chunk(s.trailer);
  } else {
    for (std::size_t off = 0; off < bytes.size(); off += kBlobChunkBytes) {
      add_chunk(bytes.substr(off, kBlobChunkBytes));
    }
  }

  write_manifest(m);
  return stats;
}

std::string ObjectStore::get(const std::string& name) const {
  const Manifest m = read_manifest(name);
  std::string out;
  out.reserve(m.bytes);
  for (const auto& o : m.objects) {
    const std::string chunk = get_object(o.hash_hex);
    if (chunk.size() != o.bytes) {
      fail("object " + o.hash_hex + " size mismatch in manifest " + name);
    }
    out += chunk;
  }
  if (out.size() != m.bytes) fail("manifest " + name + " size mismatch");
  return out;
}

std::vector<ManifestInfo> ObjectStore::ls() const {
  std::vector<ManifestInfo> out;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_ + "/manifests", ec)) {
    const std::string fname = de.path().filename().string();
    if (fname.size() < 6 || fname.substr(fname.size() - 5) != ".json") {
      continue;
    }
    const Manifest m = read_manifest(fname.substr(0, fname.size() - 5));
    out.push_back({m.name, m.kind, m.objects.size(), m.bytes});
  }
  std::sort(out.begin(), out.end(),
            [](const ManifestInfo& a, const ManifestInfo& b) {
              return a.name < b.name;
            });
  return out;
}

GcStats ObjectStore::gc() {
  std::unordered_set<std::string> live;
  for (const auto& info : ls()) {
    for (const auto& o : read_manifest(info.name).objects) {
      live.insert(o.hash_hex);
    }
  }
  GcStats stats;
  std::error_code ec;
  for (const auto& fan : fs::directory_iterator(dir_ + "/objects", ec)) {
    if (!fan.is_directory()) continue;
    std::error_code iec;
    for (const auto& de : fs::directory_iterator(fan.path(), iec)) {
      const std::string fname = de.path().filename().string();
      if (live.count(fname) != 0) continue;
      std::error_code sec;
      const std::uint64_t bytes = de.file_size(sec);
      if (fs::remove(de.path(), sec)) {
        ++stats.objects_removed;
        stats.bytes_freed += bytes;
      }
    }
  }
  return stats;
}

bool ObjectStore::has_manifest(const std::string& name) const {
  return validate_name(name) && fs::exists(manifest_path(name));
}

Manifest ObjectStore::read_manifest(const std::string& name) const {
  if (!validate_name(name)) fail("invalid artifact name '" + name + "'");
  const std::string where = "manifest " + name;
  const std::string text = read_file(manifest_path(name), "manifest");
  obs::Json j;
  try {
    j = obs::Json::parse(text);
  } catch (const std::exception& e) {
    fail(where + ": " + e.what());
  }
  Manifest m;
  m.name = field(j, "name", where).as_string();
  if (m.name != name) fail(where + ": name field mismatch");
  m.kind = kind_from_name(field(j, "kind", where).as_string());
  m.bytes = field(j, "bytes", where).as_u64();
  const obs::Json& objs = field(j, "objects", where);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < objs.size(); ++i) {
    const obs::Json& o = objs.at(i);
    Manifest::Object mo;
    mo.hash_hex = field(o, "hash", where).as_string();
    if (!is_hex_hash(mo.hash_hex)) fail(where + ": bad object hash");
    mo.bytes = field(o, "bytes", where).as_u64();
    sum += mo.bytes;
    m.objects.push_back(std::move(mo));
  }
  if (sum != m.bytes) fail(where + ": object sizes do not sum to bytes");
  return m;
}

void ObjectStore::write_manifest(const Manifest& m) {
  if (!validate_name(m.name)) fail("invalid artifact name '" + m.name + "'");
  obs::Json j = obs::Json::object();
  j.set("schema_version", obs::Json::number(std::uint64_t{1}));
  j.set("generator", obs::Json::string("cachier-store"));
  j.set("name", obs::Json::string(m.name));
  j.set("kind", obs::Json::string(artifact_kind_name(m.kind)));
  j.set("bytes", obs::Json::number(m.bytes));
  obs::Json arr = obs::Json::array();
  for (const auto& o : m.objects) {
    obs::Json e = obs::Json::object();
    e.set("hash", obs::Json::string(o.hash_hex));
    e.set("bytes", obs::Json::number(o.bytes));
    arr.push_back(std::move(e));
  }
  j.set("objects", std::move(arr));
  write_file(manifest_path(m.name), j.dump_string());
}

}  // namespace cico::store
