// Program-counter registry.
//
// The WWT trace records the program counter of each miss; Cachier's static
// phase maps those PCs back to lines of program text (section 3.3/4).  In
// this reproduction a PcId is an interned static access site: benchmarks
// written against the runtime API intern one PcId per access expression,
// and the MiniPar interpreter interns one per AST node, so traces can be
// mapped back to source either way.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cico/common/types.hpp"

namespace cico {

/// Source location + human-readable name of a static access site.
struct PcInfo {
  std::string file;
  int line = 0;
  std::string name;  ///< e.g. "C[i,j] +=" -- used in reports
};

/// Interns access sites.  PcId 0 (kNoPc) is reserved for "unknown".
class PcRegistry {
 public:
  PcRegistry() { infos_.push_back({"", 0, "<none>"}); }

  /// Interns (file,line,name); returns the same id for identical triples.
  PcId intern(std::string_view file, int line, std::string_view name);

  /// Convenience overload: name only.
  PcId intern(std::string_view name) { return intern("", 0, name); }

  [[nodiscard]] const PcInfo& info(PcId pc) const { return infos_.at(pc); }
  [[nodiscard]] std::size_t size() const { return infos_.size(); }

  /// "file:line(name)" or just the name when no file is known.
  [[nodiscard]] std::string describe(PcId pc) const;

 private:
  std::vector<PcInfo> infos_;
  std::unordered_map<std::string, PcId> index_;
};

}  // namespace cico
