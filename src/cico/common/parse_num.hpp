// Strict numeric parsing for CLI flags and text-file loaders.
//
// std::atoi-family conversions silently return 0 for garbage, stop at the
// first non-digit, and have undefined behavior on overflow -- so `-n 4x`,
// `-n foo` and `-n 99999999999999` all used to "work".  parse_num accepts a
// string if and only if the ENTIRE string is one number that fits the
// destination type, and throws std::runtime_error (which the CLI maps to
// exit code 2) otherwise.  Signed input for an unsigned destination is
// rejected by std::from_chars, so `-n -4` fails rather than wrapping.
#pragma once

#include <charconv>
#include <stdexcept>
#include <string>
#include <string_view>
#include <system_error>

namespace cico {

template <typename T>
T parse_num(std::string_view text, std::string_view what) {
  T v{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec == std::errc::result_out_of_range) {
    throw std::runtime_error(std::string(what) + " out of range: '" +
                             std::string(text) + "'");
  }
  if (ec != std::errc() || ptr != last || text.empty()) {
    throw std::runtime_error("invalid " + std::string(what) + ": '" +
                             std::string(text) + "'");
  }
  return v;
}

}  // namespace cico
