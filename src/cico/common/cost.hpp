// CICO / Dir1SW cost model.
//
// The paper evaluates *normalized* execution time, so only the relative
// magnitudes matter.  Defaults are chosen to match the CICO cost model of
// Larus et al. [13] and the Dir1SW description of Hill et al. [10]:
// a cache hit costs ~1 cycle, a remote miss ~100 cycles, and a software
// directory trap several hundred cycles on top of that.
#pragma once

#include "cico/common/types.hpp"

namespace cico {

/// All latencies/occupancies used by the network, directory and runtime.
/// Every field is configurable; EXPERIMENTS.md records the defaults used
/// for the reproduced results.
struct CostModel {
  /// Cache hit, charged inline on the issuing node.
  Cycle hit = 1;
  /// One-way network hop latency (request or reply).
  Cycle net_hop = 40;
  /// Directory hardware occupancy for a request the Dir1SW hardware can
  /// handle without trapping.
  Cycle dir_hw = 10;
  /// Extra latency when a request traps to the software protocol handler
  /// on the home node (Dir1SW's defining cost).
  Cycle dir_trap = 240;
  /// Software handler occupancy per invalidation it must send.
  Cycle inval_per_sharer = 20;
  /// DRAM access at the home node (read or write of a block).
  Cycle mem_access = 30;
  /// Full barrier synchronization across all nodes.
  Cycle barrier = 200;
  /// Lock acquire/release message handling.
  Cycle lock = 40;
  /// Address generation + issue overhead of one *explicit* CICO directive.
  /// This is the overhead the paper cites as the reason Performance CICO
  /// omits redundant check_out_S annotations (section 4.1).
  Cycle directive_issue = 6;
  /// Issue cost of a non-blocking prefetch.
  Cycle prefetch_issue = 2;
  /// Minimum spacing between successive prefetch COMPLETIONS at one node:
  /// the node's network interface / memory port streams at most one block
  /// per this many cycles, so bulk prefetching cannot summon the whole
  /// working set instantly (it pipelines, bandwidth-limited).
  Cycle prefetch_min_gap = 24;

  /// Latency of an ordinary two-hop miss serviced in hardware:
  /// request hop + directory + memory + data reply hop.
  [[nodiscard]] Cycle hw_miss_latency() const {
    return net_hop + dir_hw + mem_access + net_hop;
  }
};

}  // namespace cico
