// Content hashing for the daemon's content-addressed result cache.
//
// Cache keys must be (a) a pure function of the request bytes, (b) stable
// across builds and platforms (the cache directory outlives the process),
// and (c) wide enough that accidental collisions are out of the picture
// for any realistic fleet.  128 bits from two independent multiply-xor
// streams (FNV-1a with distinct odd multipliers and offset bases)
// satisfies all three without pulling a crypto dependency into the tree
// -- the cache is a performance structure, not a security boundary, and
// a colliding adversary could at worst serve themselves a stale report.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cico::common {

/// Incremental 128-bit content hasher.  Feed logical fields with
/// operator<< (each field is length-delimited, so ("a","b") never
/// collides with ("ab","")), then take hex() as the cache entry name.
class ContentHasher {
 public:
  ContentHasher() = default;

  /// Appends one length-delimited field.
  ContentHasher& operator<<(std::string_view bytes) {
    for (const unsigned char c : bytes) mix(c);
    // Field terminator: the length, little-endian, then a break byte.
    std::uint64_t n = bytes.size();
    for (int i = 0; i < 8; ++i, n >>= 8) mix(static_cast<unsigned char>(n));
    mix(0xFFU);
    return *this;
  }

  /// 32 lowercase hex chars, hi word first.
  [[nodiscard]] std::string hex() const {
    static const char kDigits[] = "0123456789abcdef";
    std::string s(32, '0');
    std::uint64_t v = hi_;
    for (int i = 15; i >= 0; --i, v >>= 4) {
      s[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    }
    v = lo_;
    for (int i = 31; i >= 16; --i, v >>= 4) {
      s[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    }
    return s;
  }

  /// The same 128 bits as raw bytes, hi word first, big-endian within
  /// each word -- so hex_of(digest()) == hex().  The epoch-chunked trace
  /// format embeds this form (16 bytes instead of 32 hex chars).
  [[nodiscard]] std::array<unsigned char, 16> digest() const {
    std::array<unsigned char, 16> d{};
    std::uint64_t v = hi_;
    for (int i = 7; i >= 0; --i, v >>= 8) {
      d[static_cast<std::size_t>(i)] = static_cast<unsigned char>(v & 0xFF);
    }
    v = lo_;
    for (int i = 15; i >= 8; --i, v >>= 8) {
      d[static_cast<std::size_t>(i)] = static_cast<unsigned char>(v & 0xFF);
    }
    return d;
  }

 private:
  void mix(unsigned char c) {
    lo_ = (lo_ ^ c) * kPrimeLo;
    hi_ = (hi_ ^ c) * kPrimeHi;
  }

  static constexpr std::uint64_t kPrimeLo = 0x100000001B3ULL;  // FNV-64
  static constexpr std::uint64_t kPrimeHi = 0x9E3779B97F4A7C15ULL;  // odd
  std::uint64_t lo_ = 0xCBF29CE484222325ULL;  // FNV-64 offset basis
  std::uint64_t hi_ = 0x84222325CBF29CE4ULL;  // swapped basis
};

/// One-shot convenience: hex key of a single field.
[[nodiscard]] inline std::string content_hash_hex(std::string_view bytes) {
  ContentHasher h;
  h << bytes;
  return h.hex();
}

/// Lowercase hex of a raw 16-byte digest (inverse presentation of
/// ContentHasher::digest(); hex_of(h.digest()) == h.hex()).
[[nodiscard]] inline std::string hex_of(
    const std::array<unsigned char, 16>& d) {
  static const char kDigits[] = "0123456789abcdef";
  std::string s(32, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    s[2 * i] = kDigits[d[i] >> 4];
    s[2 * i + 1] = kDigits[d[i] & 0xF];
  }
  return s;
}

}  // namespace cico::common
