// Per-item side-effect log for the sharded boundary phase.
//
// When the boundary phase services directory shards on worker threads
// (SimConfig::boundary_threads > 1), globally-shared accounting -- stat
// counters, per-type message counts, trace records, abort requests --
// cannot be written in place without racing.  Instead each boundary item
// executes with a thread-local EffectLog installed; the writers that would
// touch shared state (Stats::add, Network::count, the machine's trace and
// abort hooks) divert into the log, and the coordinator replays the logs
// in canonical (time, node, seq) item order after the batch completes.
//
// Counter additions are commutative, so replaying them in canonical order
// makes the final tables byte-identical to a serial execution; ordered
// records (trace misses, the first abort) are replayed in canonical order
// for the same reason.  With no log installed (the default, and always on
// the node-thread fast path) every writer compiles to one thread-local
// load and a predictable branch.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "cico/common/types.hpp"

namespace cico {

struct EffectLog {
  /// Stats::add diverted: raw Stat index (common cannot see net/sim enums).
  struct StatAdd {
    NodeId node;
    std::uint32_t stat;
    std::uint64_t value;
  };

  /// Machine::record_trace_miss diverted: raw trace::MissKind index.
  struct MissEvent {
    NodeId node;
    std::uint8_t kind;
    Addr addr;
    std::uint32_t size;
    PcId pc;
    EpochId epoch;
  };

  /// Machine's observability hooks diverted (raw kind; the obs layer is
  /// above common).  kind 0 = directory trap, 1 = prefetch lifetime.
  struct ObsEvent {
    static constexpr std::uint8_t kTrap = 0;
    static constexpr std::uint8_t kPrefetch = 1;
    std::uint8_t kind;
    NodeId node;   ///< requester
    NodeId home;   ///< trap handler's home node (kTrap)
    Block block;
    Cycle t0;
    Cycle t1;
    std::uint32_t aux;  ///< invalidations sent (kTrap)
    EpochId epoch;
  };

  /// Network::count diverted: per-MsgType message counts, by raw index
  /// (network.hpp static_asserts that its taxonomy fits).
  static constexpr std::size_t kMsgSlots = 16;

  std::vector<StatAdd> stat_adds;
  std::array<std::uint64_t, kMsgSlots> msg_types{};
  std::vector<MissEvent> misses;
  std::vector<ObsEvent> obs_events;

  /// Machine::abort_run diverted (first cause wins per item).
  bool aborted = false;
  std::string abort_msg;
  std::exception_ptr abort_error;

  void clear() {
    stat_adds.clear();
    msg_types.fill(0);
    misses.clear();
    obs_events.clear();
    aborted = false;
    abort_msg.clear();
    abort_error = nullptr;
  }

  /// The log installed on the calling thread (null = write in place).
  static EffectLog*& current() {
    thread_local EffectLog* cur = nullptr;
    return cur;
  }
};

}  // namespace cico
