// Fundamental scalar types shared by every cico library.
//
// The reproduction models a 32-node cache-coherent shared-memory machine
// (the paper's simulated CM-5 running the Dir1SW protocol under the
// Wisconsin Wind Tunnel).  Addresses are byte addresses in a simulated
// shared address space; block numbers are addresses divided by the cache
// block size; cycles are virtual processor cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace cico {

/// Byte address in the simulated shared address space.
using Addr = std::uint64_t;

/// Cache-block number (Addr / block_bytes).
using Block = std::uint64_t;

/// Virtual time, in processor cycles.
using Cycle = std::uint64_t;

/// Processor-node identifier, 0 .. nodes-1.
using NodeId = std::uint32_t;

/// Barrier-delimited epoch index (the paper's program model, Fig. 2).
using EpochId = std::uint32_t;

/// Static program-counter identifier: one per source access site.
/// Interned through PcRegistry so traces can be mapped back to program text.
using PcId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr PcId kNoPc = 0;
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

}  // namespace cico
