// EINTR-safe POSIX I/O wrappers shared by the daemon, the client mode,
// and any tool that talks to raw file descriptors.
//
// Every blocking syscall a long-running service issues can return early
// with EINTR (SIGCHLD from a test harness, a profiler's SIGPROF, the
// drain signal itself); naive callers turn that into spurious protocol
// errors.  These helpers retry the interrupted call and loop partial
// reads/writes to completion, so callers reason only about three
// outcomes: done, peer-closed, or a real errno.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cico::io {

/// RAII file descriptor.  Close errors are swallowed (there is nothing a
/// destructor could do about them); use release() to hand ownership off.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    const int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Outcome of a full-buffer read/write.
enum class IoStatus : std::uint8_t {
  Ok,      ///< the whole buffer was transferred
  Closed,  ///< EOF (read) or EPIPE/ECONNRESET (write) before completion
  Error,   ///< some other errno (left in errno for the caller)
};

/// Reads exactly `n` bytes, retrying on EINTR and looping on short reads.
/// Returns Closed on EOF at any point (a partial frame counts as Closed:
/// the peer went away mid-message).
[[nodiscard]] IoStatus read_full(int fd, void* buf, std::size_t n);

/// Writes exactly `n` bytes, retrying on EINTR and looping on short
/// writes.  EPIPE/ECONNRESET map to Closed so writers can treat a
/// vanished peer as a normal condition, not an error.  Callers must
/// ignore SIGPIPE (the daemon and client both do).
[[nodiscard]] IoStatus write_full(int fd, const void* buf, std::size_t n);

/// poll(2) for readability, retrying on EINTR (the remaining timeout is
/// re-armed in full -- callers wanting a hard deadline pass one computed
/// from a clock).  Returns >0 when readable, 0 on timeout, -1 on error.
/// `timeout_ms` < 0 blocks indefinitely.
[[nodiscard]] int poll_in(int fd, int timeout_ms);

/// True when the peer of a stream socket has hung up (POLLHUP / POLLERR /
/// POLLRDHUP without blocking).  Used by the daemon's job monitor to
/// cancel work whose client is gone.
[[nodiscard]] bool peer_hung_up(int fd);

}  // namespace cico::io
