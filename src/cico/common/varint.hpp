// Canonical unsigned LEB128 varints, shared by the binary trace codec
// (trace/trace.cpp) and the epoch-chunked store format (store/format.cpp).
//
// Content-addressing is only sound if equal values encode to equal bytes
// and vice versa, so the reader enforces BOTH canonicality properties the
// first binary codec missed:
//
//   * minimal length -- a final zero group after at least one continuation
//     byte (e.g. `0x80 0x00` for 0) is rejected, so every value has
//     exactly one encoding;
//   * no overflow bits -- the tenth byte carries shift-63 data, so any
//     group there above 1, or an eleventh byte, is rejected instead of
//     silently discarded.
//
// With those two rules a byte stream is a bijective function of its value,
// which is what makes per-chunk content hashes stable across writers.
#pragma once

#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

namespace cico::common {

/// Writes v as minimal-length unsigned LEB128 (1..10 bytes).
inline void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

/// Reads one canonical unsigned LEB128 varint.  Throws std::runtime_error
/// (message prefixed with `ctx`) on truncation, a non-minimal encoding,
/// or overflow past 64 bits.
inline std::uint64_t get_varint(std::istream& is, const char* ctx = "varint") {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error(std::string(ctx) + ": truncated varint");
    }
    const auto group = static_cast<std::uint64_t>(c & 0x7f);
    // Shift 63 is the tenth byte: only its low bit is representable.
    if (shift == 63 && group > 1) {
      throw std::runtime_error(std::string(ctx) +
                               ": varint overflows 64 bits");
    }
    v |= group << shift;
    if ((c & 0x80) == 0) {
      if (shift > 0 && group == 0) {
        throw std::runtime_error(std::string(ctx) +
                                 ": non-canonical varint encoding");
      }
      return v;
    }
    shift += 7;
    if (shift > 63) {
      throw std::runtime_error(std::string(ctx) +
                               ": varint overflows 64 bits");
    }
  }
}

/// ZigZag maps signed deltas to small unsigned varints (|d| <= 63 fits in
/// one byte either sign).  Deltas are computed with wraparound unsigned
/// subtraction, so the pair is bijective over the full 64-bit range.
[[nodiscard]] inline std::uint64_t zigzag_encode(std::uint64_t value,
                                                 std::uint64_t previous) {
  const auto d = static_cast<std::int64_t>(value - previous);
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

[[nodiscard]] inline std::uint64_t zigzag_decode(std::uint64_t encoded,
                                                 std::uint64_t previous) {
  const std::uint64_t d = (encoded >> 1) ^ (~(encoded & 1) + 1);
  return previous + d;
}

/// Range-checked narrowing for varint-decoded fields.  The binary trace
/// loader used to `static_cast` 64-bit varints straight into 32-bit ids,
/// silently truncating out-of-range input; this throws like the text
/// loader's parse_num path instead.
template <typename T>
[[nodiscard]] T narrow_varint(std::uint64_t v, const char* ctx,
                              const char* what) {
  if (v > std::numeric_limits<T>::max()) {
    throw std::runtime_error(std::string(ctx) + ": " + what +
                             " out of range: " + std::to_string(v));
  }
  return static_cast<T>(v);
}

}  // namespace cico::common
