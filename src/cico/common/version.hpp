// Tool-wide version identity.
//
// `cachier version` prints this plus every schema version the tool
// speaks, and the client<->daemon handshake exchanges the same numbers so
// mismatched peers fail fast with a clear error instead of trading
// frames they parse differently (docs/cachierd.md).
#pragma once

namespace cico::common {

/// Human-facing tool version.  Bump the minor for each feature PR; the
/// schema versions (report / lint / daemon protocol) carry the actual
/// compatibility contracts.
inline constexpr const char* kToolVersion = "0.6.0";

}  // namespace cico::common
