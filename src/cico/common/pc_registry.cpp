#include "cico/common/pc_registry.hpp"

#include <sstream>

namespace cico {

PcId PcRegistry::intern(std::string_view file, int line, std::string_view name) {
  std::string key;
  key.reserve(file.size() + name.size() + 16);
  key.append(file);
  key.push_back(':');
  key.append(std::to_string(line));
  key.push_back(':');
  key.append(name);
  auto [it, inserted] = index_.try_emplace(key, static_cast<PcId>(infos_.size()));
  if (inserted) {
    infos_.push_back(PcInfo{std::string(file), line, std::string(name)});
  }
  return it->second;
}

std::string PcRegistry::describe(PcId pc) const {
  const PcInfo& pi = info(pc);
  std::ostringstream os;
  if (!pi.file.empty()) {
    os << pi.file << ':' << pi.line;
    if (!pi.name.empty()) os << '(' << pi.name << ')';
  } else {
    os << pi.name;
  }
  return os.str();
}

}  // namespace cico
