#include "cico/common/io.hpp"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cico::io {

void Fd::reset(int fd) {
  if (fd_ >= 0) {
    // close() may itself be interrupted; retrying close on EINTR is
    // unsafe on Linux (the fd is already gone), so a single call is
    // correct here.
    ::close(fd_);
  }
  fd_ = fd;
}

IoStatus read_full(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r > 0) {
      p += r;
      n -= static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return IoStatus::Closed;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return IoStatus::Closed;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus write_full(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  // Sockets are written with send(MSG_NOSIGNAL) so a vanished peer
  // surfaces as EPIPE -> Closed instead of killing the process with
  // SIGPIPE; non-socket fds (ENOTSOCK) fall back to plain write.
  bool use_send = true;
  while (n > 0) {
    const ssize_t r = use_send ? ::send(fd, p, n, MSG_NOSIGNAL)
                               : ::write(fd, p, n);
    if (use_send && r < 0 && errno == ENOTSOCK) {
      use_send = false;
      continue;
    }
    if (r >= 0) {
      p += r;
      n -= static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::Closed;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

int poll_in(int fd, int timeout_ms) {
  for (;;) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool peer_hung_up(int fd) {
  struct pollfd pfd {};
  pfd.fd = fd;
#ifdef POLLRDHUP
  pfd.events = POLLRDHUP;
#else
  pfd.events = 0;
#endif
  int r;
  do {
    r = ::poll(&pfd, 1, 0);
  } while (r < 0 && errno == EINTR);
  if (r <= 0) return false;
#ifdef POLLRDHUP
  if ((pfd.revents & POLLRDHUP) != 0) return true;
#endif
  return (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
}

}  // namespace cico::io
