// Deterministic pseudo-random number generation.
//
// Benchmarks need reproducible inputs (the trace run and the measurement
// run of section 6 use *different* data sets, but each must be stable from
// run to run, so results are deterministic).  SplitMix64 is tiny, fast and
// well distributed.
#pragma once

#include <cstdint>

namespace cico {

/// SplitMix64 generator.  Deterministic given its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double range(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  std::uint64_t state_;
};

}  // namespace cico
