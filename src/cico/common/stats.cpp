#include "cico/common/stats.hpp"

namespace cico {

std::string_view stat_name(Stat s) {
  switch (s) {
    case Stat::SharedLoads: return "shared_loads";
    case Stat::SharedStores: return "shared_stores";
    case Stat::ReadMisses: return "read_misses";
    case Stat::WriteMisses: return "write_misses";
    case Stat::WriteFaults: return "write_faults";
    case Stat::Traps: return "traps";
    case Stat::Invalidations: return "invalidations";
    case Stat::Recalls: return "recalls";
    case Stat::Messages: return "messages";
    case Stat::Writebacks: return "writebacks";
    case Stat::Evictions: return "evictions";
    case Stat::CheckOutX: return "check_out_x";
    case Stat::CheckOutS: return "check_out_s";
    case Stat::CheckIns: return "check_ins";
    case Stat::PrefetchIssued: return "prefetch_issued";
    case Stat::PrefetchUseful: return "prefetch_useful";
    case Stat::PrefetchLate: return "prefetch_late";
    case Stat::PrefetchDropped: return "prefetch_dropped";
    case Stat::Barriers: return "barriers";
    case Stat::LockAcquires: return "lock_acquires";
    case Stat::LockContended: return "lock_contended";
    case Stat::StallCycles: return "stall_cycles";
    case Stat::DirectiveCycles: return "directive_cycles";
    case Stat::ComputeCycles: return "compute_cycles";
    case Stat::PostStores: return "post_stores";
    case Stat::MsgDropped: return "msg_dropped";
    case Stat::MsgDuplicated: return "msg_duplicated";
    case Stat::Retries: return "retries";
    case Stat::PrefetchThrottled: return "prefetch_throttled";
    case Stat::WatchdogTrips: return "watchdog_trips";
    case Stat::BoundaryRounds: return "boundary_rounds";
    case Stat::CheckOutXCycles: return "check_out_x_cycles";
    case Stat::CheckOutSCycles: return "check_out_s_cycles";
    case Stat::CheckInCycles: return "check_in_cycles";
    case Stat::PostStoreCycles: return "post_store_cycles";
    case Stat::PrefetchX: return "prefetch_x";
    case Stat::PrefetchS: return "prefetch_s";
    case Stat::PrefetchXCycles: return "prefetch_x_cycles";
    case Stat::PrefetchSCycles: return "prefetch_s_cycles";
    case Stat::Count_: break;
  }
  return "unknown";
}

}  // namespace cico
