// Per-node event counters.
//
// Counters are written on the hot path by the owning node's thread (cache
// hits) and by the boundary-phase thread while all node threads are parked
// (misses, protocol events), so no synchronization is required -- the
// engine's windowed schedule guarantees exclusive access.  When the
// boundary phase shards across worker threads, writes divert into the
// caller's thread-local EffectLog instead and are replayed via apply().
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "cico/common/effect_log.hpp"
#include "cico/common/types.hpp"

namespace cico {

/// Every event class the simulator counts.  Keep in sync with stat_name().
enum class Stat : std::uint32_t {
  SharedLoads,       ///< shared-data loads issued (hits + misses)
  SharedStores,      ///< shared-data stores issued
  ReadMisses,        ///< shared read misses (GetS sent)
  WriteMisses,       ///< shared write misses (GetX sent, block not cached)
  WriteFaults,       ///< stores to a Shared copy (upgrade requests)
  Traps,             ///< Dir1SW software traps
  Invalidations,     ///< invalidation messages sent by the software handler
  Recalls,           ///< exclusive-copy recalls by the software handler
  Messages,          ///< total network messages
  Writebacks,        ///< dirty blocks written back to memory
  Evictions,         ///< capacity/conflict evictions
  CheckOutX,         ///< explicit check_out_X directives issued
  CheckOutS,         ///< explicit check_out_S directives issued
  CheckIns,          ///< explicit check_in directives issued
  PrefetchIssued,    ///< prefetch_X/prefetch_S directives issued
  PrefetchUseful,    ///< prefetched block later hit before eviction
  PrefetchLate,      ///< access arrived before prefetch completed (partial)
  PrefetchDropped,   ///< prefetch would have trapped; protocol dropped it
  Barriers,          ///< barrier episodes completed (per node)
  LockAcquires,      ///< lock acquisitions
  LockContended,     ///< lock acquisitions that had to queue
  StallCycles,       ///< cycles spent waiting on the memory system
  DirectiveCycles,   ///< cycles spent issuing directives
  ComputeCycles,     ///< cycles charged via Proc::compute (private work)
  PostStores,        ///< post_store directives issued (extension)
  MsgDropped,        ///< messages dropped by the fault injector
  MsgDuplicated,     ///< messages duplicated by the fault injector
  Retries,           ///< protocol requests re-issued after a drop/loss
  PrefetchThrottled, ///< prefetches suppressed by the self-throttle
  WatchdogTrips,     ///< liveness-watchdog livelock detections
  BoundaryRounds,    ///< boundary-phase service rounds executed (node 0)
  // Per-directive attribution (report schema v2).  The *Cycles counters
  // partition DirectiveCycles: check_out_x_cycles + check_out_s_cycles +
  // check_in_cycles + post_store_cycles == directive_cycles.  Prefetch
  // issue cost is charged to the node clock but not to DirectiveCycles
  // (prefetches are asynchronous), so its cycles live only here.
  CheckOutXCycles,   ///< cycles attributed to check_out_X issues + waits
  CheckOutSCycles,   ///< cycles attributed to check_out_S issues + waits
  CheckInCycles,     ///< cycles attributed to check_in issues
  PostStoreCycles,   ///< cycles attributed to post_store issues
  PrefetchX,         ///< prefetch_X directives issued (subset of PrefetchIssued)
  PrefetchS,         ///< prefetch_S directives issued (subset of PrefetchIssued)
  PrefetchXCycles,   ///< issue cycles attributed to prefetch_X
  PrefetchSCycles,   ///< issue cycles attributed to prefetch_S
  Count_
};

inline constexpr std::size_t kStatCount = static_cast<std::size_t>(Stat::Count_);

/// Human-readable name for a counter (used by reports and benches).
[[nodiscard]] std::string_view stat_name(Stat s);

/// Fixed-size per-node counter table.
class Stats {
 public:
  explicit Stats(std::size_t nodes) : per_node_(nodes) {}

  void add(NodeId n, Stat s, std::uint64_t v = 1) {
    if (EffectLog* lg = EffectLog::current(); lg != nullptr) {
      lg->stat_adds.push_back({n, static_cast<std::uint32_t>(s), v});
      return;
    }
    per_node_[n][static_cast<std::size_t>(s)] += v;
  }

  /// Replays the diverted adds of one boundary item (coordinator only).
  void apply(const EffectLog& lg) {
    for (const auto& a : lg.stat_adds) per_node_[a.node][a.stat] += a.value;
  }

  [[nodiscard]] std::uint64_t node(NodeId n, Stat s) const {
    return per_node_[n][static_cast<std::size_t>(s)];
  }

  /// Sum of a counter over all nodes.
  [[nodiscard]] std::uint64_t total(Stat s) const {
    std::uint64_t t = 0;
    for (const auto& row : per_node_) t += row[static_cast<std::size_t>(s)];
    return t;
  }

  [[nodiscard]] std::size_t nodes() const { return per_node_.size(); }

  void reset() {
    for (auto& row : per_node_) row.fill(0);
  }

 private:
  struct Row : std::array<std::uint64_t, kStatCount> {
    Row() { fill(0); }
  };
  std::vector<Row> per_node_;
};

}  // namespace cico
