#include "cico/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cico::obs {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(std::uint64_t v) { return raw_number(std::to_string(v)); }
Json Json::number(std::int64_t v) { return raw_number(std::to_string(v)); }

Json Json::number(double v) {
  // %.17g round-trips any double; shorten when fewer digits suffice so the
  // common ratios stay readable.  Deterministic for equal inputs, which is
  // all the byte-identity guarantee needs.
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return raw_number(buf);
}

Json Json::raw_number(std::string lexeme) {
  Json j;
  j.type_ = Type::Number;
  j.scalar_ = std::move(lexeme);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.scalar_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

Json Json::splice(std::string id) {
  Json j;
  j.type_ = Type::Splice;
  j.scalar_ = std::move(id);
  return j;
}

void Json::push_back(Json v) {
  if (type_ != Type::Array) throw std::logic_error("json: push_back on non-array");
  arr_.push_back(std::move(v));
}

void Json::set(std::string_view key, Json v) {
  if (type_ != Type::Object) throw std::logic_error("json: set on non-object");
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

std::uint64_t Json::as_u64() const {
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), v);
  if (ec != std::errc() || p != scalar_.data() + scalar_.size()) {
    throw std::runtime_error("json: number is not a u64: " + scalar_);
  }
  return v;
}

double Json::as_double() const { return std::strtod(scalar_.c_str(), nullptr); }

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_json_string(std::ostream& os, std::string_view s) {
  os.put('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os.put(ch);
        }
    }
  }
  os.put('"');
}

namespace {
void put_indent(std::ostream& os, int depth) {
  for (int i = 0; i < depth * 2; ++i) os.put(' ');
}
}  // namespace

void Json::dump_indented(std::ostream& os, int depth,
                         const SpliceResolver* resolver) const {
  switch (type_) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (bool_ ? "true" : "false"); break;
    case Type::Number: os << scalar_; break;
    case Type::String: write_json_string(os, scalar_); break;
    case Type::Splice:
      if (resolver == nullptr) {
        throw std::logic_error("json: splice node dumped without a resolver");
      }
      os << "[\n";
      (*resolver)(os, scalar_);
      put_indent(os, depth);
      os.put(']');
      break;
    case Type::Array:
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        put_indent(os, depth + 1);
        arr_[i].dump_indented(os, depth + 1, resolver);
        if (i + 1 < arr_.size()) os.put(',');
        os.put('\n');
      }
      put_indent(os, depth);
      os.put(']');
      break;
    case Type::Object:
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        put_indent(os, depth + 1);
        write_json_string(os, obj_[i].first);
        os << ": ";
        obj_[i].second.dump_indented(os, depth + 1, resolver);
        if (i + 1 < obj_.size()) os.put(',');
        os.put('\n');
      }
      put_indent(os, depth);
      os.put('}');
      break;
  }
}

void Json::dump(std::ostream& os) const {
  dump_indented(os, 0, nullptr);
  os.put('\n');
}

void Json::dump(std::ostream& os, const SpliceResolver& resolver) const {
  dump_indented(os, 0, &resolver);
  os.put('\n');
}

void Json::dump_element(std::ostream& os, int depth) const {
  dump_indented(os, depth, nullptr);
}

std::string Json::dump_string() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing junk after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json: line " + std::to_string(line) + ":" +
                             std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json::string(string_token());
    if (c == 't') {
      if (!consume_word("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_word("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_word("null")) fail("bad literal");
      return Json{};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return number_token();
    fail("unexpected character");
  }

  Json object() {
    expect('{');
    Json o = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return o;
    }
    for (;;) {
      skip_ws();
      std::string key = string_token();
      skip_ws();
      expect(':');
      o.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return o;
    }
  }

  Json array() {
    expect('[');
    Json a = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return a;
    }
    for (;;) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return a;
    }
  }

  std::string string_token() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number_token() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number: no exponent digits");
    }
    return Json::raw_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).document(); }

}  // namespace cico::obs
