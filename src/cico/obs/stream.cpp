#include "cico/obs/stream.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "cico/obs/report.hpp"

namespace cico::obs {

EpochStreamWriter::EpochStreamWriter(std::string sidecar_path)
    : path_(std::move(sidecar_path)), out_(path_, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("cannot write epoch stream sidecar " + path_);
  }
}

EpochStreamWriter::~EpochStreamWriter() {
  out_.close();
  std::remove(path_.c_str());
}

void EpochStreamWriter::on_row(const EpochRow& row) {
  // Canonical array layout: "," after every element but the last, one
  // element per indented line group.  The last row is unknown until the
  // run ends, so the separator goes *before* each row after the first and
  // splice_into() supplies the final newline.
  if (rows_ > 0) out_ << ",\n";
  for (int i = 0; i < kEpochSeriesDepth * 2; ++i) out_.put(' ');
  epoch_row_json(row).dump_element(out_, kEpochSeriesDepth);
  ++rows_;
}

void EpochStreamWriter::splice_into(std::ostream& os) {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("epoch stream sidecar write failed: " + path_);
  }
  if (rows_ == 0) return;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot reopen epoch stream sidecar " + path_);
  }
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    os.write(buf, in.gcount());
  }
  os.put('\n');
}

}  // namespace cico::obs
