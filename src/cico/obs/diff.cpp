#include "cico/obs/diff.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "cico/obs/report.hpp"

namespace cico::obs {

namespace {

std::vector<std::string_view> split_dotted(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '.') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool glob_match(const std::vector<std::string_view>& pat, std::size_t pi,
                const std::vector<std::string_view>& path, std::size_t vi) {
  if (pi == pat.size()) return vi == path.size();
  if (pat[pi] == "**") {
    for (std::size_t skip = vi; skip <= path.size(); ++skip) {
      if (glob_match(pat, pi + 1, path, skip)) return true;
    }
    return false;
  }
  if (vi == path.size()) return false;
  if (pat[pi] != "*" && pat[pi] != path[vi]) return false;
  return glob_match(pat, pi + 1, path, vi + 1);
}

[[noreturn]] void tol_fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("tolerances: line " + std::to_string(line) + ": " +
                           msg);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Strips a trailing `# comment`, respecting double quotes.
std::string_view strip_comment(std::string_view line) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quotes = !in_quotes;
    if (line[i] == '#' && !in_quotes) return line.substr(0, i);
  }
  return line;
}

double parse_bound(std::string_view text, std::size_t line,
                   std::string_view what) {
  char* end = nullptr;
  const std::string buf(text);
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty() || v < 0.0 ||
      !std::isfinite(v)) {
    tol_fail(line, "bad " + std::string(what) + " bound '" + buf + "'");
  }
  return v;
}

// Parses a spec like "abs=200 rel=1.5%", "ignore"; items split on
// commas/spaces.
ToleranceRule parse_rule(std::string_view pattern, std::string_view spec,
                         std::size_t line) {
  ToleranceRule rule;
  rule.pattern = std::string(pattern);
  rule.text = std::string(spec);
  if (rule.pattern.empty()) tol_fail(line, "empty pattern");

  std::size_t i = 0;
  bool any = false;
  while (i < spec.size()) {
    while (i < spec.size() && (spec[i] == ' ' || spec[i] == ',' ||
                               spec[i] == '\t')) {
      ++i;
    }
    if (i >= spec.size()) break;
    std::size_t j = i;
    while (j < spec.size() && spec[j] != ' ' && spec[j] != ',' &&
           spec[j] != '\t') {
      ++j;
    }
    const std::string_view item = spec.substr(i, j - i);
    i = j;
    any = true;
    if (item == "ignore") {
      rule.ignore = true;
    } else if (item.rfind("abs=", 0) == 0) {
      rule.has_abs = true;
      rule.abs_bound = parse_bound(item.substr(4), line, "abs");
    } else if (item.rfind("rel=", 0) == 0) {
      std::string_view num = item.substr(4);
      if (!num.empty() && num.back() == '%') num.remove_suffix(1);
      rule.has_rel = true;
      rule.rel_bound = parse_bound(num, line, "rel");
    } else {
      tol_fail(line, "unknown tolerance item '" + std::string(item) +
                         "' (expected ignore, abs=N, or rel=P%)");
    }
  }
  if (!any) tol_fail(line, "empty tolerance spec for '" + rule.pattern + "'");
  return rule;
}

}  // namespace

std::string_view diff_class_name(DiffClass c) {
  switch (c) {
    case DiffClass::Config: return "config";
    case DiffClass::Counter: return "counter";
    case DiffClass::Cost: return "cost";
    case DiffClass::Fault: return "fault";
    case DiffClass::Epoch: return "epoch";
    case DiffClass::Structure: return "structure";
  }
  return "?";
}

ToleranceSet ToleranceSet::parse(std::string_view text) {
  ToleranceSet set;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string_view line = trim(strip_comment(text.substr(start, end - start)));
    start = end + 1;
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line != "[tolerance]" && line != "[tolerances]") {
        tol_fail(line_no, "unknown section " + std::string(line) +
                              " (only [tolerance] is recognised)");
      }
      continue;
    }

    // key = value, key bare or double-quoted.
    std::string_view key;
    std::string_view rest;
    if (line.front() == '"') {
      const std::size_t close = line.find('"', 1);
      if (close == std::string_view::npos) {
        tol_fail(line_no, "unterminated quoted key");
      }
      key = line.substr(1, close - 1);
      rest = trim(line.substr(close + 1));
    } else {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        tol_fail(line_no, "expected 'pattern = \"spec\"'");
      }
      key = trim(line.substr(0, eq));
      rest = line.substr(eq);
    }
    if (rest.empty() || rest.front() != '=') {
      tol_fail(line_no, "expected '=' after pattern");
    }
    std::string_view value = trim(rest.substr(1));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    } else if (!value.empty() && value.front() == '"') {
      tol_fail(line_no, "unterminated quoted spec");
    }
    set.rules_.push_back(parse_rule(key, value, line_no));
  }
  return set;
}

void ToleranceSet::add_flag(std::string_view pattern_eq_spec) {
  const std::size_t eq = pattern_eq_spec.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::runtime_error("--tol expects pattern=spec, got '" +
                             std::string(pattern_eq_spec) + "'");
  }
  // parse_rule reports "line 0" positions for flag rules; rewrap so the
  // message names the flag instead.
  try {
    rules_.push_back(parse_rule(trim(pattern_eq_spec.substr(0, eq)),
                                trim(pattern_eq_spec.substr(eq + 1)), 0));
  } catch (const std::runtime_error& e) {
    std::string msg = e.what();
    const std::string prefix = "tolerances: line 0: ";
    if (msg.rfind(prefix, 0) == 0) msg = msg.substr(prefix.size());
    throw std::runtime_error("--tol " + std::string(pattern_eq_spec) + ": " +
                             msg);
  }
}

const ToleranceRule* ToleranceSet::match(std::string_view path) const {
  const std::vector<std::string_view> segs = split_dotted(path);
  for (auto it = rules_.rbegin(); it != rules_.rend(); ++it) {
    if (glob_match(split_dotted(it->pattern), 0, segs, 0)) return &*it;
  }
  return nullptr;
}

namespace {

DiffClass classify(std::string_view path) {
  const std::vector<std::string_view> segs = split_dotted(path);
  if (segs.empty()) return DiffClass::Structure;
  if (segs[0] == "config" || segs[0] == "command" || segs[0] == "generator" ||
      segs[0] == "schema_version") {
    return DiffClass::Config;
  }
  if (segs[0] == "runs" && segs.size() >= 3) {
    const std::string_view section = segs[2];
    if (section == "cost_breakdown") return DiffClass::Cost;
    if (section == "faults") return DiffClass::Fault;
    if (section == "epoch_series" || section == "hot_blocks") {
      return DiffClass::Epoch;
    }
  }
  return DiffClass::Counter;
}

std::string render(const Json* v) {
  if (v == nullptr) return "<absent>";
  switch (v->type()) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return v->as_bool() ? "true" : "false";
    case Json::Type::Number: return v->number_lexeme();
    case Json::Type::String: return "\"" + v->as_string() + "\"";
    case Json::Type::Array:
      return "<array[" + std::to_string(v->size()) + "]>";
    case Json::Type::Object:
      return "<object{" + std::to_string(v->size()) + "}>";
    case Json::Type::Splice: return "<splice>";
  }
  return "?";
}

std::uint64_t report_version(const Json& doc, std::string_view side) {
  if (doc.type() != Json::Type::Object) {
    throw std::runtime_error(std::string(side) +
                             " report: document is not a JSON object");
  }
  const Json* v = doc.find("schema_version");
  if (v == nullptr || v->type() != Json::Type::Number) {
    throw std::runtime_error(std::string(side) +
                             " report: missing schema_version");
  }
  const std::uint64_t ver = v->as_u64();
  if (ver < kReportSchemaMinSupported || ver > kReportSchemaVersion) {
    throw std::runtime_error(
        std::string(side) + " report: unsupported schema_version " +
        std::to_string(ver) + " (supported: " +
        std::to_string(kReportSchemaMinSupported) + ".." +
        std::to_string(kReportSchemaVersion) + ")");
  }
  return ver;
}

class Differ {
 public:
  Differ(const ToleranceSet& tol, std::uint64_t ver_base,
         std::uint64_t ver_cand)
      : tol_(tol), ver_base_(ver_base), ver_cand_(ver_cand) {}

  DiffResult take() {
    if (result_.regressions > 0) {
      result_.outcome = DiffOutcome::Regression;
    } else if (!result_.divergences.empty()) {
      result_.outcome = DiffOutcome::WithinTolerance;
    } else {
      result_.outcome = DiffOutcome::Identical;
    }
    return std::move(result_);
  }

  void diff_value(const std::string& path, const Json* b, const Json* c) {
    // `ignore` suppresses what would be *recorded at this path*, but never
    // prunes recursion into a container: `--tol '**=ignore'` plus a later,
    // deeper override must still diff the overridden field.
    const ToleranceRule* rule = tol_.match(path);
    const bool ignored = rule != nullptr && rule->ignore;

    if (b == nullptr || c == nullptr) {
      if (ignored) return;
      // A key present on only one side.  When the sides run different
      // schema versions, a key absent from the *older* report is additive
      // schema growth, not a regression.
      if (ver_base_ != ver_cand_) {
        const bool missing_on_older =
            (b == nullptr && ver_base_ < ver_cand_) ||
            (c == nullptr && ver_cand_ < ver_base_);
        if (missing_on_older) {
          record(path, b, c, /*tolerated=*/true, "schema-compat");
          return;
        }
      }
      record(path, b, c, /*tolerated=*/false, {});
      return;
    }

    if (b->type() != c->type()) {
      if (!ignored) record_structural(path, b, c);
      return;
    }

    switch (b->type()) {
      case Json::Type::Null:
        return;
      case Json::Type::Bool:
        if (!ignored && b->as_bool() != c->as_bool()) {
          record(path, b, c, false, {});
        }
        return;
      case Json::Type::String:
        if (!ignored && b->as_string() != c->as_string()) {
          record(path, b, c, false, {});
        }
        return;
      case Json::Type::Number:
        if (!ignored) diff_number(path, *b, *c, rule);
        return;
      case Json::Type::Array: {
        if (!ignored && b->size() != c->size()) record_structural(path, b, c);
        const std::size_t n = b->size() < c->size() ? b->size() : c->size();
        for (std::size_t i = 0; i < n; ++i) {
          diff_value(path + "." + std::to_string(i), &b->at(i), &c->at(i));
        }
        return;
      }
      case Json::Type::Object: {
        // Baseline key order first, then candidate-only keys, so the
        // listing reads in report order.
        for (std::size_t i = 0; i < b->size(); ++i) {
          const auto& [key, bv] = b->entry(i);
          diff_value(path.empty() ? key : path + "." + key, &bv,
                     c->find(key));
        }
        for (std::size_t i = 0; i < c->size(); ++i) {
          const auto& [key, cv] = c->entry(i);
          if (b->find(key) == nullptr) {
            diff_value(path.empty() ? key : path + "." + key, nullptr, &cv);
          }
        }
        return;
      }
      case Json::Type::Splice:
        return;  // never produced by parse()
    }
  }

 private:
  void diff_number(const std::string& path, const Json& b, const Json& c,
                   const ToleranceRule* rule) {
    if (b.number_lexeme() == c.number_lexeme()) return;
    const double vb = b.as_double();
    const double vc = c.as_double();
    if (vb == vc) return;  // lexeme-only difference, e.g. "1.0" vs "1"

    Divergence d;
    d.cls = classify(path);
    d.path = path;
    d.baseline = b.number_lexeme();
    d.candidate = c.number_lexeme();
    d.numeric = true;
    d.delta = vc - vb;
    d.pct = vb == 0.0 ? std::numeric_limits<double>::infinity()
                      : 100.0 * d.delta / std::fabs(vb);

    if (path == "schema_version") {
      // Both versions already validated as supported; the bump itself is
      // the expected v1->v2 compatibility divergence.
      d.tolerated = true;
      d.rule = "schema-compat";
    } else if (rule != nullptr) {
      const bool abs_ok = rule->has_abs && std::fabs(d.delta) <= rule->abs_bound;
      const bool rel_ok = rule->has_rel && std::isfinite(d.pct) &&
                          std::fabs(d.pct) <= rule->rel_bound;
      if (abs_ok || rel_ok) {
        d.tolerated = true;
        d.rule = rule->text;
      }
    }
    push(std::move(d));
  }

  void record_structural(const std::string& path, const Json* b,
                         const Json* c) {
    Divergence d;
    d.cls = DiffClass::Structure;
    d.path = path;
    d.baseline = render(b);
    d.candidate = render(c);
    push(std::move(d));
  }

  void record(const std::string& path, const Json* b, const Json* c,
              bool tolerated, std::string rule) {
    Divergence d;
    d.cls = classify(path);
    d.path = path;
    d.baseline = render(b);
    d.candidate = render(c);
    d.tolerated = tolerated;
    d.rule = std::move(rule);
    push(std::move(d));
  }

  void push(Divergence d) {
    if (d.tolerated) {
      ++result_.tolerated;
    } else {
      ++result_.regressions;
    }
    result_.divergences.push_back(std::move(d));
  }

  const ToleranceSet& tol_;
  std::uint64_t ver_base_;
  std::uint64_t ver_cand_;
  DiffResult result_;
};

}  // namespace

DiffResult diff_reports(const Json& baseline, const Json& candidate,
                        const ToleranceSet& tolerances) {
  const std::uint64_t vb = report_version(baseline, "baseline");
  const std::uint64_t vc = report_version(candidate, "candidate");
  Differ differ(tolerances, vb, vc);
  differ.diff_value("", &baseline, &candidate);
  return differ.take();
}

void print_diff(std::ostream& os, const DiffResult& result) {
  for (const auto& d : result.divergences) {
    os << "[" << diff_class_name(d.cls) << "] " << d.path << ": "
       << d.baseline << " -> " << d.candidate;
    if (d.numeric) {
      char buf[96];
      if (std::isfinite(d.pct)) {
        std::snprintf(buf, sizeof(buf), " (%+.6g, %+.2f%%)", d.delta, d.pct);
      } else {
        std::snprintf(buf, sizeof(buf), " (%+.6g, from zero)", d.delta);
      }
      os << buf;
    }
    if (d.tolerated) {
      os << "  ok";
      if (!d.rule.empty()) os << " (" << d.rule << ")";
    } else {
      os << "  REGRESSION";
    }
    os << "\n";
  }
  if (result.divergences.empty()) {
    os << "diff: reports are identical (exit 0)\n";
  } else {
    os << "diff: " << result.divergences.size() << " divergence"
       << (result.divergences.size() == 1 ? "" : "s") << ": "
       << result.tolerated << " tolerated, " << result.regressions
       << " regression" << (result.regressions == 1 ? "" : "s") << " (exit "
       << static_cast<int>(result.outcome) << ")\n";
  }
}

void print_diff_summary(std::ostream& os, const DiffResult& result) {
  const char* verdict = "IDENTICAL";
  if (result.outcome == DiffOutcome::WithinTolerance) verdict = "OK";
  if (result.outcome == DiffOutcome::Regression) verdict = "REGRESSION";
  os << "diff: " << verdict << " divergences=" << result.divergences.size()
     << " tolerated=" << result.tolerated
     << " regressions=" << result.regressions
     << " exit=" << static_cast<int>(result.outcome) << "\n";
}

}  // namespace cico::obs
