// Versioned JSON run reports (the machine-readable artifact `--report`
// writes; see docs/observability.md for the schema contract).
//
// A report carries the simulated configuration, per-node and aggregate
// Stat counters, the cost-model breakdown, per-message-type network
// counts, fault telemetry, the collector's per-epoch time series with
// per-epoch hot blocks, and -- for `cachier compare` -- the paper's
// Table-2-style annotation-effectiveness deltas between the unannotated
// and annotated runs.
//
// Everything in a report is a pure function of simulated state, so the
// bytes are identical for any --boundary-threads value (report_test
// enforces this).  Host-dependent quantities (wall-clock, worker counts)
// are deliberately excluded; they stay on stderr.
#pragma once

#include <string_view>

#include "cico/common/stats.hpp"
#include "cico/net/network.hpp"
#include "cico/obs/collector.hpp"
#include "cico/obs/json.hpp"
#include "cico/sim/config.hpp"

namespace cico::obs {

/// Bump on any breaking schema change; additive fields do not bump it
/// (consumers must tolerate unknown keys).
inline constexpr std::uint64_t kReportSchemaVersion = 1;

/// The deterministic subset of a SimConfig.  `faults_spec` is the CLI's
/// textual fault spec (empty when faults are disabled).
[[nodiscard]] Json config_json(const sim::SimConfig& cfg,
                               std::string_view protocol_name,
                               std::string_view faults_spec);

/// One measured run: counters, cost breakdown, epoch series, hot blocks.
[[nodiscard]] Json run_json(std::string_view name, Cycle exec_time,
                            EpochId epochs, const Stats& stats,
                            const net::Network& net, const Collector& col);

/// Paper Table-2-style effectiveness deltas between a baseline run and an
/// annotated run (both built by run_json).
[[nodiscard]] Json comparison_json(const Json& baseline, const Json& annotated);

/// Assembles the versioned envelope: {schema_version, generator, command,
/// config, runs[, comparison]}.
[[nodiscard]] Json make_report(std::string_view command, Json config,
                               std::vector<Json> runs);

}  // namespace cico::obs
