// Versioned JSON run reports (the machine-readable artifact `--report`
// writes; see docs/observability.md for the schema contract).
//
// A report carries the simulated configuration, per-node and aggregate
// Stat counters, the cost-model breakdown, per-message-type network
// counts, fault telemetry, the collector's per-epoch time series with
// per-epoch hot blocks, and -- for `cachier compare` -- the paper's
// Table-2-style annotation-effectiveness deltas between the unannotated
// and annotated runs.
//
// Everything in a report is a pure function of simulated state, so the
// bytes are identical for any --boundary-threads value (report_test
// enforces this).  Host-dependent quantities (wall-clock, worker counts)
// are deliberately excluded; they stay on stderr.
#pragma once

#include <string_view>

#include "cico/common/stats.hpp"
#include "cico/net/network.hpp"
#include "cico/obs/collector.hpp"
#include "cico/obs/json.hpp"
#include "cico/sim/config.hpp"

namespace cico::obs {

/// Bump on any breaking schema change; additive fields do not bump it
/// (consumers must tolerate unknown keys).  v2 added the per-directive
/// breakdown (`directives` in each run and in `comparison`) and the
/// per-directive cycle counters in `totals`; see docs/report_schema.md
/// for the full v1 -> v2 changelog.
inline constexpr std::uint64_t kReportSchemaVersion = 2;
/// Oldest schema the tooling (cachier diff) still reads.
inline constexpr std::uint64_t kReportSchemaMinSupported = 1;

/// The deterministic subset of a SimConfig.  `faults_spec` is the CLI's
/// textual fault spec (empty when faults are disabled).
[[nodiscard]] Json config_json(const sim::SimConfig& cfg,
                               std::string_view protocol_name,
                               std::string_view faults_spec);

/// One epoch_series row, exactly as it appears inside a run (shared by the
/// in-memory path and the streaming epoch writer so both emit identical
/// bytes).
[[nodiscard]] Json epoch_row_json(const EpochRow& row);

/// One measured run: counters, cost breakdown, per-directive table, epoch
/// series, hot blocks.  When the collector streamed its rows to a sink
/// (Collector::streaming()), `series_splice_id` names the sidecar and
/// `epoch_series` becomes a Json::splice node the caller resolves at dump
/// time; otherwise the series is embedded from col.epochs().
[[nodiscard]] Json run_json(std::string_view name, Cycle exec_time,
                            EpochId epochs, const Stats& stats,
                            const net::Network& net, const Collector& col,
                            std::string_view series_splice_id = {});

/// Paper Table-2-style effectiveness deltas between a baseline run and an
/// annotated run (both built by run_json).
[[nodiscard]] Json comparison_json(const Json& baseline, const Json& annotated);

/// Assembles the versioned envelope: {schema_version, generator, command,
/// config, runs[, comparison]}.
[[nodiscard]] Json make_report(std::string_view command, Json config,
                               std::vector<Json> runs);

}  // namespace cico::obs
