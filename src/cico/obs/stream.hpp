// Streaming epoch-series writer (--stream-epochs).
//
// Long runs have one EpochRow per barrier; buffering them all makes
// report memory O(epochs).  An EpochStreamWriter attaches to a Collector
// as its EpochRowSink and appends each row to a sidecar file the moment
// its barrier flush completes, already formatted exactly as the canonical
// report dump would embed it (element indentation, ",\n" separators).  At
// report time run_json() plants a Json::splice node where epoch_series
// would go and Json::dump's SpliceResolver copies the sidecar bytes
// through in bounded chunks -- so the final report file is byte-identical
// to the in-memory path while host memory stays O(1) in epoch count
// (report_test enforces the byte identity, including across
// --boundary-threads).
#pragma once

#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <string>

#include "cico/obs/collector.hpp"

namespace cico::obs {

/// Indentation depth of an epoch_series element inside the report
/// envelope: {report} > "runs" > [run] > "epoch_series" > [row].
inline constexpr int kEpochSeriesDepth = 4;

class EpochStreamWriter final : public EpochRowSink {
 public:
  /// Opens `sidecar_path` for writing; throws on failure.
  explicit EpochStreamWriter(std::string sidecar_path);
  /// Removes the sidecar file (call after the report is assembled).
  ~EpochStreamWriter() override;

  EpochStreamWriter(const EpochStreamWriter&) = delete;
  EpochStreamWriter& operator=(const EpochStreamWriter&) = delete;

  void on_row(const EpochRow& row) override;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Flushes, then copies the sidecar's element bytes into `os` in bounded
  /// chunks (the SpliceResolver body).  Emits nothing when no row was
  /// written -- callers must use a plain empty array in that case.
  void splice_into(std::ostream& os);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace cico::obs
