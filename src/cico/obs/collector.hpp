// Run-time observability collector (the tentpole of the obs layer).
//
// A Collector attaches to a sim::Machine (Machine::set_observer) and
// receives deterministic callbacks on simulated *virtual* time:
//
//   * per-epoch time series -- at every barrier the machine reports its
//     Stats table and the collector buckets the deltas (misses, traps,
//     messages, stall cycles) into one EpochRow, plus the top-K hottest
//     blocks by directory traps inside that epoch;
//   * discrete events -- directory traps, prefetch lifetimes, per-node
//     barrier waits and epoch spans -- which feed the Chrome trace-event
//     (Perfetto-loadable) export.
//
// Determinism across --boundary-threads: event callbacks that originate
// inside the sharded boundary phase are diverted into the per-item
// EffectLog and replayed by the coordinator in canonical (time, node, seq)
// order, exactly like stat counters and trace misses; epoch flushes happen
// on the coordinator at barriers, after every replay.  The collector
// therefore observes one schedule-independent event stream, and everything
// derived from it (the JSON report, the event export) is byte-identical
// for any boundary thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "cico/common/stats.hpp"
#include "cico/common/types.hpp"

namespace cico::obs {

/// One bucket of the per-epoch time series.  `end_vt` is the virtual time
/// at which the epoch's closing barrier completed (for the final, unclosed
/// epoch: the run's execution time).
struct EpochRow {
  EpochId epoch = 0;
  Cycle end_vt = 0;
  std::uint64_t misses = 0;  ///< read misses + write misses + write faults
  std::uint64_t traps = 0;
  std::uint64_t messages = 0;
  std::uint64_t stall_cycles = 0;
  /// Top-K blocks by directory traps within this epoch (count desc, block
  /// asc); empty when the epoch trapped nowhere.
  std::vector<std::pair<Block, std::uint64_t>> hot_blocks;
};

/// Receives each EpochRow the moment its barrier flush completes.  When a
/// sink is installed the collector forwards rows instead of retaining them,
/// so a run's memory stays O(1) in epoch count (see EpochStreamWriter).
class EpochRowSink {
 public:
  virtual ~EpochRowSink() = default;
  virtual void on_row(const EpochRow& row) = 0;
};

class Collector {
 public:
  explicit Collector(std::size_t top_k = 8) : top_k_(top_k) {}

  /// Event buffering for the Chrome trace export costs memory per event;
  /// off by default, enabled by `--events`.
  void set_events_enabled(bool on) { events_enabled_ = on; }
  [[nodiscard]] bool events_enabled() const { return events_enabled_; }

  /// Streaming mode: forward every flushed EpochRow to `sink` instead of
  /// buffering it (epochs() then stays empty; rows_flushed() still counts).
  /// Rows flush on the coordinator in canonical order, so the streamed
  /// sequence is byte-identical to the buffered one for any
  /// --boundary-threads value.  The sink must outlive the run.
  void set_epoch_sink(EpochRowSink* sink) { sink_ = sink; }
  [[nodiscard]] bool streaming() const { return sink_ != nullptr; }
  /// Total rows produced (buffered or streamed).
  [[nodiscard]] std::size_t rows_flushed() const { return rows_flushed_; }

  // --- machine callbacks (virtual time, deterministic order) ---------------
  void on_trap(NodeId req, NodeId home, Block b, Cycle t0, Cycle t1,
               std::uint32_t invalidations, EpochId epoch);
  void on_prefetch_fill(NodeId node, Block b, Cycle issue, Cycle ready,
                        EpochId epoch);
  void on_barrier_wait(NodeId node, Cycle arrive, Cycle release, EpochId epoch);
  /// Closes epoch `epoch` at `end_vt`, snapshotting the stat deltas.
  void on_epoch_end(EpochId epoch, Cycle end_vt, const Stats& stats);
  /// Closes the final (unbarriered) epoch and freezes the series.
  void on_run_end(Cycle final_vt, const Stats& stats);

  // --- results -------------------------------------------------------------
  [[nodiscard]] const std::vector<EpochRow>& epochs() const { return rows_; }
  /// Whole-run top-K hottest blocks by directory traps.
  [[nodiscard]] std::vector<std::pair<Block, std::uint64_t>> hot_blocks() const;
  [[nodiscard]] std::size_t top_k() const { return top_k_; }

  /// Chrome trace-event JSON (chrome://tracing, https://ui.perfetto.dev):
  /// epoch spans, per-node barrier waits, directory traps and prefetch
  /// lifetimes, all on simulated virtual time (1 cycle == 1 "us" tick).
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct Event {
    enum class Kind : std::uint8_t { Trap, Prefetch, BarrierWait, Epoch };
    Kind kind;
    NodeId node = 0;   ///< requester / waiter (Epoch: unused)
    NodeId home = 0;   ///< trap handler's home node
    Block block = 0;
    Cycle t0 = 0;
    Cycle t1 = 0;
    std::uint32_t aux = 0;  ///< invalidations sent (Trap)
    EpochId epoch = 0;
  };

  void flush_epoch(EpochId epoch, Cycle end_vt, const Stats& stats);

  std::size_t top_k_;
  bool events_enabled_ = false;
  bool finished_ = false;
  EpochRowSink* sink_ = nullptr;
  std::size_t rows_flushed_ = 0;

  std::vector<EpochRow> rows_;
  std::vector<Event> events_;
  // std::map: deterministic iteration when extracting top-K.
  std::map<Block, std::uint64_t> epoch_traps_;
  std::map<Block, std::uint64_t> run_traps_;

  // Previous-epoch totals for delta bucketing.
  std::uint64_t prev_misses_ = 0;
  std::uint64_t prev_traps_ = 0;
  std::uint64_t prev_messages_ = 0;
  std::uint64_t prev_stall_ = 0;
  Cycle prev_end_vt_ = 0;
};

}  // namespace cico::obs
