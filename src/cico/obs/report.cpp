#include "cico/obs/report.hpp"

#include <cstdint>

#include "cico/net/msg.hpp"

namespace cico::obs {

namespace {

Json hot_blocks_json(const std::vector<std::pair<Block, std::uint64_t>>& hot) {
  Json a = Json::array();
  for (const auto& [block, traps] : hot) {
    Json e = Json::object();
    e.set("block", Json::number(static_cast<std::uint64_t>(block)));
    e.set("traps", Json::number(traps));
    a.push_back(std::move(e));
  }
  return a;
}

std::uint64_t u64_of(const Json& run, std::string_view section,
                     std::string_view key) {
  const Json* s = run.find(section);
  if (s == nullptr) return 0;
  const Json* v = s->find(key);
  return v != nullptr ? v->as_u64() : 0;
}

/// One row of the per-directive table: how often the directive was issued
/// and the cycles attributed to issuing (and, for blocking check-outs,
/// waiting on) it.
Json directive_entry(const Stats& stats, Stat count, Stat cycles) {
  Json e = Json::object();
  e.set("count", Json::number(stats.total(count)));
  e.set("cycles", Json::number(stats.total(cycles)));
  return e;
}

/// delta = annotated - baseline, emitted as a signed number.
Json delta_json(std::uint64_t base, std::uint64_t anno) {
  return Json::number(static_cast<std::int64_t>(anno) -
                      static_cast<std::int64_t>(base));
}

}  // namespace

Json config_json(const sim::SimConfig& cfg, std::string_view protocol_name,
                 std::string_view faults_spec) {
  Json c = Json::object();
  c.set("nodes", Json::number(static_cast<std::uint64_t>(cfg.nodes)));
  c.set("protocol", Json::string(std::string(protocol_name)));
  c.set("quantum", Json::number(static_cast<std::uint64_t>(cfg.quantum)));
  c.set("heap_base", Json::number(static_cast<std::uint64_t>(cfg.heap_base)));
  c.set("trace_mode", Json::boolean(cfg.trace_mode));
  c.set("paranoid", Json::boolean(cfg.audit_invariants));
  c.set("watchdog_rounds",
        Json::number(static_cast<std::uint64_t>(cfg.watchdog_rounds)));
  c.set("faults", Json::string(std::string(faults_spec)));

  Json cache = Json::object();
  cache.set("size_bytes",
            Json::number(static_cast<std::uint64_t>(cfg.cache.size_bytes)));
  cache.set("assoc", Json::number(static_cast<std::uint64_t>(cfg.cache.assoc)));
  cache.set("block_bytes",
            Json::number(static_cast<std::uint64_t>(cfg.cache.block_bytes)));
  c.set("cache", std::move(cache));

  Json cost = Json::object();
  cost.set("hit", Json::number(static_cast<std::uint64_t>(cfg.cost.hit)));
  cost.set("net_hop", Json::number(static_cast<std::uint64_t>(cfg.cost.net_hop)));
  cost.set("dir_hw", Json::number(static_cast<std::uint64_t>(cfg.cost.dir_hw)));
  cost.set("dir_trap",
           Json::number(static_cast<std::uint64_t>(cfg.cost.dir_trap)));
  cost.set("inval_per_sharer",
           Json::number(static_cast<std::uint64_t>(cfg.cost.inval_per_sharer)));
  cost.set("mem_access",
           Json::number(static_cast<std::uint64_t>(cfg.cost.mem_access)));
  cost.set("barrier", Json::number(static_cast<std::uint64_t>(cfg.cost.barrier)));
  cost.set("lock", Json::number(static_cast<std::uint64_t>(cfg.cost.lock)));
  cost.set("directive_issue",
           Json::number(static_cast<std::uint64_t>(cfg.cost.directive_issue)));
  cost.set("prefetch_issue",
           Json::number(static_cast<std::uint64_t>(cfg.cost.prefetch_issue)));
  cost.set("prefetch_min_gap",
           Json::number(static_cast<std::uint64_t>(cfg.cost.prefetch_min_gap)));
  c.set("cost", std::move(cost));
  // Host-tuning knobs (boundary_threads, boundary_batch_min) and host
  // wall-clock are intentionally absent: a report must not depend on them.
  return c;
}

Json epoch_row_json(const EpochRow& row) {
  Json e = Json::object();
  e.set("epoch", Json::number(static_cast<std::uint64_t>(row.epoch)));
  e.set("end_vt", Json::number(static_cast<std::uint64_t>(row.end_vt)));
  e.set("misses", Json::number(row.misses));
  e.set("traps", Json::number(row.traps));
  e.set("messages", Json::number(row.messages));
  e.set("stall_cycles", Json::number(row.stall_cycles));
  e.set("hot_blocks", hot_blocks_json(row.hot_blocks));
  return e;
}

Json run_json(std::string_view name, Cycle exec_time, EpochId epochs,
              const Stats& stats, const net::Network& net,
              const Collector& col, std::string_view series_splice_id) {
  Json r = Json::object();
  r.set("name", Json::string(std::string(name)));
  r.set("exec_time", Json::number(static_cast<std::uint64_t>(exec_time)));
  r.set("epochs", Json::number(static_cast<std::uint64_t>(epochs)));

  Json totals = Json::object();
  for (std::size_t s = 0; s < kStatCount; ++s) {
    totals.set(stat_name(static_cast<Stat>(s)),
               Json::number(stats.total(static_cast<Stat>(s))));
  }
  r.set("totals", std::move(totals));

  // Per-node table keyed by stat name: {"read_misses": [n0, n1, ...], ...}.
  // Only stats with a nonzero total appear, keeping small-run reports small
  // without ever dropping information (zero total => all-zero row).
  Json per_node = Json::object();
  for (std::size_t s = 0; s < kStatCount; ++s) {
    if (stats.total(static_cast<Stat>(s)) == 0) continue;
    Json row = Json::array();
    for (std::size_t n = 0; n < stats.nodes(); ++n) {
      row.push_back(Json::number(
          stats.node(static_cast<NodeId>(n), static_cast<Stat>(s))));
    }
    per_node.set(stat_name(static_cast<Stat>(s)), std::move(row));
  }
  r.set("per_node", std::move(per_node));

  Json by_type = Json::object();
  for (std::size_t t = 0; t < net::kMsgTypeCount; ++t) {
    by_type.set(net::msg_type_name(static_cast<net::MsgType>(t)),
                Json::number(net.sent(static_cast<net::MsgType>(t))));
  }
  r.set("messages_by_type", std::move(by_type));

  // Where the cycles went (the cost-model breakdown the paper's tables
  // reason about): aggregate cycle accounts next to their event counts.
  Json cost = Json::object();
  cost.set("compute_cycles", Json::number(stats.total(Stat::ComputeCycles)));
  cost.set("stall_cycles", Json::number(stats.total(Stat::StallCycles)));
  cost.set("directive_cycles", Json::number(stats.total(Stat::DirectiveCycles)));
  cost.set("barriers", Json::number(stats.total(Stat::Barriers)));
  cost.set("traps", Json::number(stats.total(Stat::Traps)));
  cost.set("invalidations", Json::number(stats.total(Stat::Invalidations)));
  r.set("cost_breakdown", std::move(cost));

  // Schema v2: per-directive counts and attributed cost.  The four
  // non-prefetch cycle rows partition cost_breakdown.directive_cycles;
  // prefetch issue cost is asynchronous and accounted only here.
  Json dirs = Json::object();
  dirs.set("check_out_x",
           directive_entry(stats, Stat::CheckOutX, Stat::CheckOutXCycles));
  dirs.set("check_out_s",
           directive_entry(stats, Stat::CheckOutS, Stat::CheckOutSCycles));
  dirs.set("check_in",
           directive_entry(stats, Stat::CheckIns, Stat::CheckInCycles));
  dirs.set("prefetch_x",
           directive_entry(stats, Stat::PrefetchX, Stat::PrefetchXCycles));
  dirs.set("prefetch_s",
           directive_entry(stats, Stat::PrefetchS, Stat::PrefetchSCycles));
  dirs.set("post_store",
           directive_entry(stats, Stat::PostStores, Stat::PostStoreCycles));
  r.set("directives", std::move(dirs));

  Json faults = Json::object();
  faults.set("msg_dropped", Json::number(stats.total(Stat::MsgDropped)));
  faults.set("msg_duplicated", Json::number(stats.total(Stat::MsgDuplicated)));
  faults.set("retries", Json::number(stats.total(Stat::Retries)));
  faults.set("prefetch_throttled",
             Json::number(stats.total(Stat::PrefetchThrottled)));
  faults.set("watchdog_trips", Json::number(stats.total(Stat::WatchdogTrips)));
  r.set("faults", std::move(faults));

  if (col.streaming() && col.rows_flushed() > 0) {
    // Rows already live in the sink's sidecar; the caller splices their
    // bytes in at dump time (byte-identical to the embedded path).
    r.set("epoch_series", Json::splice(std::string(series_splice_id)));
  } else {
    Json series = Json::array();
    for (const EpochRow& row : col.epochs()) {
      series.push_back(epoch_row_json(row));
    }
    r.set("epoch_series", std::move(series));
  }
  r.set("hot_blocks", hot_blocks_json(col.hot_blocks()));
  return r;
}

Json comparison_json(const Json& baseline, const Json& annotated) {
  Json c = Json::object();
  const Json* bname = baseline.find("name");
  const Json* aname = annotated.find("name");
  c.set("baseline", Json::string(bname != nullptr ? bname->as_string() : ""));
  c.set("annotated", Json::string(aname != nullptr ? aname->as_string() : ""));

  const Json* bexec = baseline.find("exec_time");
  const Json* aexec = annotated.find("exec_time");
  const std::uint64_t bt = bexec != nullptr ? bexec->as_u64() : 0;
  const std::uint64_t at = aexec != nullptr ? aexec->as_u64() : 0;
  c.set("normalized_time",
        Json::number(static_cast<double>(at) /
                     static_cast<double>(bt != 0 ? bt : 1)));

  // The Table-2 columns: how the annotations changed the event counts.
  Json d = Json::object();
  d.set("exec_time", delta_json(bt, at));
  const std::pair<const char*, const char*> keys[] = {
      {"read_misses", "totals"},   {"write_misses", "totals"},
      {"write_faults", "totals"},  {"traps", "totals"},
      {"invalidations", "totals"}, {"messages", "totals"},
      {"check_out_x", "totals"},   {"check_out_s", "totals"},
      {"check_ins", "totals"},     {"prefetch_issued", "totals"},
      {"stall_cycles", "totals"},
  };
  for (const auto& [key, section] : keys) {
    d.set(key, delta_json(u64_of(baseline, section, key),
                          u64_of(annotated, section, key)));
  }
  c.set("delta", std::move(d));

  // Schema v2: per-directive count/cycle deltas, mirroring the runs'
  // `directives` tables.  Reads tolerate v1 runs (absent table => zeros).
  auto dir_u64 = [](const Json& run, std::string_view kind,
                    std::string_view field) -> std::uint64_t {
    const Json* table = run.find("directives");
    if (table == nullptr) return 0;
    const Json* entry = table->find(kind);
    if (entry == nullptr) return 0;
    const Json* v = entry->find(field);
    return v != nullptr ? v->as_u64() : 0;
  };
  Json dd = Json::object();
  for (const char* kind : {"check_out_x", "check_out_s", "check_in",
                           "prefetch_x", "prefetch_s", "post_store"}) {
    Json e = Json::object();
    e.set("count", delta_json(dir_u64(baseline, kind, "count"),
                              dir_u64(annotated, kind, "count")));
    e.set("cycles", delta_json(dir_u64(baseline, kind, "cycles"),
                               dir_u64(annotated, kind, "cycles")));
    dd.set(kind, std::move(e));
  }
  c.set("directives", std::move(dd));
  return c;
}

Json make_report(std::string_view command, Json config,
                 std::vector<Json> runs) {
  Json rep = Json::object();
  rep.set("schema_version", Json::number(kReportSchemaVersion));
  rep.set("generator", Json::string("cachier"));
  rep.set("command", Json::string(std::string(command)));
  rep.set("config", std::move(config));
  Json arr = Json::array();
  for (Json& r : runs) arr.push_back(std::move(r));
  rep.set("runs", std::move(arr));
  return rep;
}

}  // namespace cico::obs
