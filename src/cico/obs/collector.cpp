#include "cico/obs/collector.hpp"

#include <algorithm>
#include <ostream>

namespace cico::obs {

void Collector::on_trap(NodeId req, NodeId home, Block b, Cycle t0, Cycle t1,
                        std::uint32_t invalidations, EpochId epoch) {
  epoch_traps_[b] += 1;
  run_traps_[b] += 1;
  if (events_enabled_) {
    events_.push_back(Event{Event::Kind::Trap, req, home, b, t0, t1,
                            invalidations, epoch});
  }
}

void Collector::on_prefetch_fill(NodeId node, Block b, Cycle issue, Cycle ready,
                                 EpochId epoch) {
  if (events_enabled_) {
    events_.push_back(
        Event{Event::Kind::Prefetch, node, 0, b, issue, ready, 0, epoch});
  }
}

void Collector::on_barrier_wait(NodeId node, Cycle arrive, Cycle release,
                                EpochId epoch) {
  if (events_enabled_) {
    events_.push_back(
        Event{Event::Kind::BarrierWait, node, 0, 0, arrive, release, 0, epoch});
  }
}

void Collector::flush_epoch(EpochId epoch, Cycle end_vt, const Stats& stats) {
  EpochRow row;
  row.epoch = epoch;
  row.end_vt = end_vt;
  const std::uint64_t misses = stats.total(Stat::ReadMisses) +
                               stats.total(Stat::WriteMisses) +
                               stats.total(Stat::WriteFaults);
  const std::uint64_t traps = stats.total(Stat::Traps);
  const std::uint64_t messages = stats.total(Stat::Messages);
  const std::uint64_t stall = stats.total(Stat::StallCycles);
  row.misses = misses - prev_misses_;
  row.traps = traps - prev_traps_;
  row.messages = messages - prev_messages_;
  row.stall_cycles = stall - prev_stall_;
  prev_misses_ = misses;
  prev_traps_ = traps;
  prev_messages_ = messages;
  prev_stall_ = stall;

  std::vector<std::pair<Block, std::uint64_t>> hot(epoch_traps_.begin(),
                                                   epoch_traps_.end());
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (hot.size() > top_k_) hot.resize(top_k_);
  row.hot_blocks = std::move(hot);
  epoch_traps_.clear();

  if (events_enabled_) {
    events_.push_back(Event{Event::Kind::Epoch, 0, 0, 0, prev_end_vt_, end_vt,
                            0, epoch});
  }
  prev_end_vt_ = end_vt;
  ++rows_flushed_;
  if (sink_ != nullptr) {
    sink_->on_row(row);  // streamed, not retained: O(1) memory in epochs
    return;
  }
  rows_.push_back(std::move(row));
}

void Collector::on_epoch_end(EpochId epoch, Cycle end_vt, const Stats& stats) {
  flush_epoch(epoch, end_vt, stats);
}

void Collector::on_run_end(Cycle final_vt, const Stats& stats) {
  if (finished_) return;
  finished_ = true;
  // The tail of the run after the last barrier is its own (unclosed) epoch;
  // flush it even when nothing happened so row count == epoch count + 1 and
  // consumers never need a special case for barrier-free programs.
  flush_epoch(static_cast<EpochId>(rows_flushed_), final_vt, stats);
}

std::vector<std::pair<Block, std::uint64_t>> Collector::hot_blocks() const {
  std::vector<std::pair<Block, std::uint64_t>> hot(run_traps_.begin(),
                                                   run_traps_.end());
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (hot.size() > top_k_) hot.resize(top_k_);
  return hot;
}

void Collector::write_chrome_trace(std::ostream& os) const {
  // Chrome trace-event "JSON object format".  ts/dur are in microseconds;
  // we map one simulated cycle to one tick.  pid 0 holds machine-wide
  // lanes (epochs); pid 1 holds one tid per node.
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](auto fn) {
    if (!first) os << ",\n";
    first = false;
    os << "    ";
    fn();
  };
  emit([&] {
    os << R"({"name": "process_name", "ph": "M", "pid": 0, "tid": 0, )"
       << R"("args": {"name": "machine"}})";
  });
  emit([&] {
    os << R"({"name": "process_name", "ph": "M", "pid": 1, "tid": 0, )"
       << R"("args": {"name": "nodes"}})";
  });
  for (const Event& e : events_) {
    switch (e.kind) {
      case Event::Kind::Epoch:
        emit([&] {
          os << R"({"name": "epoch )" << e.epoch
             << R"(", "ph": "X", "pid": 0, "tid": 0, "ts": )" << e.t0
             << ", \"dur\": " << (e.t1 - e.t0) << R"(, "args": {"epoch": )"
             << e.epoch << "}}";
        });
        break;
      case Event::Kind::BarrierWait:
        emit([&] {
          os << R"({"name": "barrier wait", "ph": "X", "pid": 1, "tid": )"
             << e.node << ", \"ts\": " << e.t0 << ", \"dur\": "
             << (e.t1 - e.t0) << R"(, "args": {"epoch": )" << e.epoch << "}}";
        });
        break;
      case Event::Kind::Trap:
        emit([&] {
          os << R"({"name": "trap block )" << e.block
             << R"(", "cat": "trap", "ph": "X", "pid": 1, "tid": )" << e.node
             << ", \"ts\": " << e.t0 << ", \"dur\": " << (e.t1 - e.t0)
             << R"(, "args": {"block": )" << e.block << R"(, "home": )"
             << e.home << R"(, "invalidations": )" << e.aux
             << R"(, "epoch": )" << e.epoch << "}}";
        });
        break;
      case Event::Kind::Prefetch:
        emit([&] {
          os << R"({"name": "prefetch block )" << e.block
             << R"(", "cat": "prefetch", "ph": "X", "pid": 1, "tid": )"
             << e.node << ", \"ts\": " << e.t0 << ", \"dur\": "
             << (e.t1 - e.t0) << R"(, "args": {"block": )" << e.block
             << R"(, "epoch": )" << e.epoch << "}}";
        });
        break;
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace cico::obs
