// Schema-aware structural diff over run reports (`cachier diff`).
//
// Compares two --report JSON documents and classifies every divergence:
// config mismatches, counter deltas (absolute + percent), cost-model
// deltas, fault-telemetry deltas, epoch-series drift, and structural
// differences.  Per-metric tolerance rules -- loaded from a small TOML
// file (--tolerances) or given inline (--tol pattern=spec) -- decide
// which numeric deltas are acceptable drift and which are regressions,
// so CI can gate directly on the exit status:
//
//   0  reports identical
//   1  divergences found, every one within tolerance
//   2  at least one regression (or a program error: malformed JSON,
//      unsupported schema version, bad tolerance file)
//
// The differ reads schema v1 and v2 reports.  When the two sides have
// different (supported) versions, fields missing from the *older* side
// are treated as additive schema growth and tolerated, never flagged as
// regressions -- the v1 compatibility path that lets old golden reports
// gate new binaries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cico/obs/json.hpp"

namespace cico::obs {

/// Maps directly to the CLI exit status.
enum class DiffOutcome : int {
  Identical = 0,
  WithinTolerance = 1,
  Regression = 2,
};

/// What kind of report field diverged (decided by the field's path).
enum class DiffClass : std::uint8_t {
  Config,     ///< `config` block or envelope (command, generator)
  Counter,    ///< totals / per_node / messages_by_type / directives / comparison
  Cost,       ///< `cost_breakdown`
  Fault,      ///< fault telemetry
  Epoch,      ///< `epoch_series` / `hot_blocks` drift
  Structure,  ///< shape problems: type mismatch, array length change
};

[[nodiscard]] std::string_view diff_class_name(DiffClass c);

/// One per-metric tolerance rule.  `pattern` is a dotted path glob over
/// report paths (array indices are path segments): `*` matches exactly one
/// segment, `**` matches any number (including zero).  A numeric delta is
/// within tolerance when |delta| <= abs OR |pct| <= rel, whichever rules
/// are present; `ignore` drops anything recorded at a matching path from
/// the diff (it does not prune recursion into containers, so a later,
/// deeper rule can still re-enable a field under an ignored subtree).
struct ToleranceRule {
  std::string pattern;
  bool ignore = false;
  bool has_abs = false;
  double abs_bound = 0.0;
  bool has_rel = false;
  double rel_bound = 0.0;  ///< percent
  std::string text;        ///< original spec (for diagnostics)
};

/// An ordered rule list; the last rule whose pattern matches a path wins,
/// so later rules (e.g. --tol flags after --tolerances) override earlier
/// ones.
class ToleranceSet {
 public:
  /// Parses the TOML-flavoured tolerance file grammar:
  ///
  ///   # comment
  ///   [tolerance]                      # optional section header
  ///   runs.*.totals.stall_cycles = "abs=200 rel=1%"
  ///   "runs.*.epoch_series.**"   = "rel=5%"
  ///   config.faults              = "ignore"
  ///
  /// Keys may be bare (letters, digits, `_ . * -`) or double-quoted;
  /// values are quoted specs or the bare word `ignore`.  Throws
  /// std::runtime_error with a `line N:` position on malformed input.
  [[nodiscard]] static ToleranceSet parse(std::string_view text);

  /// Adds one `pattern=spec` rule (the --tol flag form; split at the
  /// first '=').  Throws on a malformed spec.
  void add_flag(std::string_view pattern_eq_spec);

  /// Last matching rule, or nullptr.
  [[nodiscard]] const ToleranceRule* match(std::string_view path) const;

  [[nodiscard]] std::size_t size() const { return rules_.size(); }

 private:
  std::vector<ToleranceRule> rules_;
};

struct Divergence {
  DiffClass cls = DiffClass::Structure;
  std::string path;
  std::string baseline;   ///< rendered value; "<absent>" when missing
  std::string candidate;
  bool numeric = false;
  double delta = 0.0;     ///< candidate - baseline
  double pct = 0.0;       ///< 100 * delta / |baseline|; infinite from zero
  bool tolerated = false;
  std::string rule;       ///< why it was tolerated (spec text / compat note)
};

struct DiffResult {
  DiffOutcome outcome = DiffOutcome::Identical;
  std::vector<Divergence> divergences;
  std::size_t tolerated = 0;
  std::size_t regressions = 0;
};

/// Diffs two parsed reports.  Throws std::runtime_error when either
/// document is not a report or carries an unsupported schema_version.
[[nodiscard]] DiffResult diff_reports(const Json& baseline,
                                      const Json& candidate,
                                      const ToleranceSet& tolerances);

/// Human-readable listing: one line per divergence plus a summary line
/// naming the exit status.
void print_diff(std::ostream& os, const DiffResult& result);

/// One-line machine-greppable verdict (`cachier diff --summary`):
///   diff: IDENTICAL|OK|REGRESSION divergences=N tolerated=N regressions=N exit=E
void print_diff_summary(std::ostream& os, const DiffResult& result);

}  // namespace cico::obs
