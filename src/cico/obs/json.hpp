// Minimal deterministic JSON document model for the observability layer.
//
// The run report must be byte-identical across host configurations (the
// report_test diffs it across --boundary-threads values), so this writer
// makes every formatting decision explicit: object keys keep insertion
// order, numbers keep their exact source lexeme, and dump() emits one
// canonical layout.  parse() keeps numeric lexemes verbatim, so
// parse(dump(v)) round-trips byte-for-byte -- the schema-stability check
// the tests and the CI report gate rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cico::obs {

class Json {
 public:
  enum class Type : std::uint8_t {
    Null, Bool, Number, String, Array, Object,
    /// An array whose element bytes live outside the document (streamed to
    /// a sidecar file); dump() asks a SpliceResolver to emit them.  Never
    /// produced by parse() -- a dumped document contains only plain JSON.
    Splice,
  };

  Json() = default;  // null

  [[nodiscard]] static Json boolean(bool b);
  [[nodiscard]] static Json number(std::uint64_t v);
  [[nodiscard]] static Json number(std::int64_t v);
  [[nodiscard]] static Json number(double v);
  /// Number from a pre-formatted lexeme (parser / custom formatting).
  [[nodiscard]] static Json raw_number(std::string lexeme);
  [[nodiscard]] static Json string(std::string s);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();
  /// Placeholder for an array whose elements were streamed to a sidecar
  /// (see EpochStreamWriter); `id` names the sidecar for the resolver.
  [[nodiscard]] static Json splice(std::string id);

  [[nodiscard]] Type type() const { return type_; }

  // --- building ------------------------------------------------------------
  /// Appends to an array (the value must be an array).
  void push_back(Json v);
  /// Sets a key on an object (insertion-ordered; replaces an existing key).
  void set(std::string_view key, Json v);

  // --- reading -------------------------------------------------------------
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return scalar_; }
  [[nodiscard]] const std::string& number_lexeme() const { return scalar_; }

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Element count of an array or object (0 for scalars).
  [[nodiscard]] std::size_t size() const;
  /// Array element access.
  [[nodiscard]] const Json& at(std::size_t i) const { return arr_[i]; }
  /// Object entry access (insertion order).
  [[nodiscard]] const std::pair<std::string, Json>& entry(std::size_t i) const {
    return obj_[i];
  }

  // --- serialization -------------------------------------------------------
  /// Called for each Splice node: must emit the element lines exactly as
  /// the canonical array dump would (indent + element, ",\n" separators,
  /// trailing newline after the last element).  EpochStreamWriter's
  /// sidecars are written in this form, so splice_into() just copies.
  using SpliceResolver =
      std::function<void(std::ostream& os, std::string_view id)>;

  /// Canonical multi-line form, 2-space indent per level.  Documents
  /// holding Splice nodes need the resolver overload; the plain overload
  /// throws std::logic_error if it meets one.
  void dump(std::ostream& os) const;
  void dump(std::ostream& os, const SpliceResolver& resolver) const;
  [[nodiscard]] std::string dump_string() const;

  /// Dumps as an array/object element nested `depth` levels deep, without
  /// a trailing newline -- exactly the bytes dump() would emit for this
  /// value at that position.  The streaming epoch writer uses this to
  /// format sidecar rows identically to the embedded path.
  void dump_element(std::ostream& os, int depth) const;

  /// Parses a complete JSON document; rejects trailing junk.  Throws
  /// std::runtime_error with a line:column position on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_indented(std::ostream& os, int depth,
                     const SpliceResolver* resolver) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::string scalar_;  ///< number lexeme, string payload, or splice id
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// JSON string escaping (exposed for the Chrome trace-event writer, which
/// streams events without building a document).
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace cico::obs
