#include "cico/trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <limits>
#include <numeric>
#include <type_traits>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "cico/common/parse_num.hpp"
#include "cico/common/varint.hpp"

namespace cico::trace {

const char* miss_kind_name(MissKind k) {
  switch (k) {
    case MissKind::ReadMiss: return "read_miss";
    case MissKind::WriteMiss: return "write_miss";
    case MissKind::WriteFault: return "write_fault";
  }
  return "unknown";
}

EpochId Trace::num_epochs() const {
  // `m.epoch + 1` wrapped to 0 for an epoch id of EpochId max, so a trace
  // touching the last representable epoch reported zero epochs; track the
  // maximum id instead and reject the one unrepresentable count.
  bool any = false;
  EpochId hi = 0;
  for (const auto& m : misses) {
    any = true;
    hi = std::max(hi, m.epoch);
  }
  for (const auto& b : barriers) {
    any = true;
    hi = std::max(hi, b.epoch);
  }
  if (!any) return 0;
  if (hi == std::numeric_limits<EpochId>::max()) {
    throw std::runtime_error("trace: epoch count overflows EpochId");
  }
  return hi + 1;
}

void canonicalize(Trace& t) {
  std::sort(t.misses.begin(), t.misses.end(),
            [](const MissRecord& a, const MissRecord& b) {
              return std::tie(a.epoch, a.node, a.addr, a.pc, a.kind, a.size) <
                     std::tie(b.epoch, b.node, b.addr, b.pc, b.kind, b.size);
            });
  std::sort(t.barriers.begin(), t.barriers.end(),
            [](const BarrierRecord& a, const BarrierRecord& b) {
              return std::tie(a.epoch, a.node, a.vt, a.barrier_pc) <
                     std::tie(b.epoch, b.node, b.vt, b.barrier_pc);
            });
}

void Trace::validate_labels() const {
  label_index_.resize(labels.size());
  std::iota(label_index_.begin(), label_index_.end(), 0u);
  std::sort(label_index_.begin(), label_index_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (labels[a].base != labels[b].base) {
                return labels[a].base < labels[b].base;
              }
              if (labels[a].bytes != labels[b].bytes) {
                return labels[a].bytes < labels[b].bytes;
              }
              return a < b;
            });
  const RegionLabel* prev = nullptr;
  Addr end = 0;
  for (const std::uint32_t i : label_index_) {
    const RegionLabel& r = labels[i];
    if (r.bytes == 0) continue;
    if (r.bytes > std::numeric_limits<Addr>::max() - r.base) {
      throw std::runtime_error("trace: region label '" + r.label +
                               "' wraps the address space");
    }
    if (prev != nullptr && r.base < end) {
      throw std::runtime_error("trace: overlapping region labels '" +
                               prev->label + "' and '" + r.label + "'");
    }
    if (r.base + r.bytes > end) {
      end = r.base + r.bytes;
      prev = &r;
    }
  }
}

const RegionLabel* Trace::region_of(Addr addr) const {
  if (label_index_.size() != labels.size()) validate_labels();
  // Non-overlap (validated above) means only the last region starting at
  // or before addr can contain it; among equal bases the index orders the
  // zero-length entries first, so the predecessor is the widest candidate.
  const auto it = std::upper_bound(
      label_index_.begin(), label_index_.end(), addr,
      [&](Addr a, std::uint32_t i) { return a < labels[i].base; });
  if (it == label_index_.begin()) return nullptr;
  const RegionLabel& r = labels[*std::prev(it)];
  return (addr - r.base < r.bytes) ? &r : nullptr;
}

void TraceWriter::set_labels(std::vector<RegionLabel> labels) {
  trace_.labels = std::move(labels);
}

void TraceWriter::record_miss(NodeId node, MissKind kind, Addr addr,
                              std::uint32_t size, PcId pc, EpochId epoch) {
  Key k{node, static_cast<std::uint8_t>(kind), addr, pc};
  if (!epoch_seen_.insert(k).second) return;
  epoch_buf_.push_back(MissRecord{epoch, node, kind, addr, size, pc});
}

void TraceWriter::record_barrier(NodeId node, PcId barrier_pc, Cycle vt,
                                 EpochId epoch) {
  trace_.barriers.push_back(BarrierRecord{epoch, node, barrier_pc, vt});
}

void TraceWriter::end_epoch() {
  trace_.misses.insert(trace_.misses.end(), epoch_buf_.begin(), epoch_buf_.end());
  epoch_buf_.clear();
  epoch_seen_.clear();
}

Trace TraceWriter::take() {
  end_epoch();
  return std::move(trace_);
}

namespace {

/// Labels are user-controlled strings serialized into a space-separated
/// format; `ls >> r.label` used to truncate "my array" at the space and
/// shift every following field.  Escape the separators instead.
std::string escape_label(const std::string& s) {
  if (s.empty()) return "\\e";
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += ch; break;
    }
  }
  return out;
}

[[noreturn]] void fail_line(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("trace: line " + std::to_string(lineno) + ": " +
                           what);
}

std::string unescape_label(const std::string& tok, std::size_t lineno) {
  if (tok == "\\e") return "";
  std::string out;
  out.reserve(tok.size());
  for (std::size_t i = 0; i < tok.size(); ++i) {
    if (tok[i] != '\\') {
      out += tok[i];
      continue;
    }
    if (++i == tok.size()) fail_line(lineno, "dangling escape in label");
    switch (tok[i]) {
      case '\\': out += '\\'; break;
      case 's': out += ' '; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default:
        fail_line(lineno,
                  std::string("bad label escape '\\") + tok[i] + "'");
    }
  }
  return out;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tok;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tok.push_back(line.substr(start, i - start));
  }
  return tok;
}

template <typename T>
T num_field(const std::vector<std::string>& tok, std::size_t i,
            std::size_t lineno, const char* what) {
  try {
    return parse_num<T>(tok[i], what);
  } catch (const std::exception& e) {
    fail_line(lineno, e.what());
  }
}

void expect_fields(const std::vector<std::string>& tok, std::size_t want,
                   std::size_t lineno, const char* record) {
  if (tok.size() == want) return;
  fail_line(lineno, std::string(record) + " record needs " +
                        std::to_string(want - 1) + " fields, got " +
                        std::to_string(tok.size() - 1));
}

}  // namespace

void save_text(const Trace& t, std::ostream& os) {
  os << "cico-trace v1\n";
  for (const auto& r : t.labels) {
    os << "L " << escape_label(r.label) << ' ' << r.base << ' ' << r.bytes
       << ' ' << (r.regular ? 1 : 0) << '\n';
  }
  for (const auto& m : t.misses) {
    os << "M " << m.epoch << ' ' << m.node << ' ' << static_cast<int>(m.kind)
       << ' ' << m.addr << ' ' << m.size << ' ' << m.pc << '\n';
  }
  for (const auto& b : t.barriers) {
    os << "B " << b.epoch << ' ' << b.node << ' ' << b.barrier_pc << ' '
       << b.vt << '\n';
  }
}

Trace load_text(std::istream& is) {
  Trace t;
  std::string line;
  std::size_t lineno = 1;
  if (!std::getline(is, line) || line != "cico-trace v1") {
    throw std::runtime_error(
        "trace: line 1: bad header (expected 'cico-trace v1')");
  }
  while (std::getline(is, line)) {
    ++lineno;
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& tag = tok[0];
    if (tag == "L") {
      expect_fields(tok, 5, lineno, "L");
      RegionLabel r;
      r.label = unescape_label(tok[1], lineno);
      r.base = num_field<Addr>(tok, 2, lineno, "base");
      r.bytes = num_field<std::uint64_t>(tok, 3, lineno, "bytes");
      const auto reg =
          num_field<std::uint32_t>(tok, 4, lineno, "regular flag");
      if (reg > 1) fail_line(lineno, "regular flag must be 0 or 1");
      r.regular = reg != 0;
      t.labels.push_back(std::move(r));
    } else if (tag == "M") {
      expect_fields(tok, 7, lineno, "M");
      MissRecord m;
      m.epoch = num_field<EpochId>(tok, 1, lineno, "epoch");
      m.node = num_field<NodeId>(tok, 2, lineno, "node");
      const auto kind = num_field<std::uint32_t>(tok, 3, lineno, "miss kind");
      if (kind > static_cast<std::uint32_t>(MissKind::WriteFault)) {
        fail_line(lineno, "miss kind out of range (0..2): " + tok[3]);
      }
      m.kind = static_cast<MissKind>(kind);
      m.addr = num_field<Addr>(tok, 4, lineno, "address");
      m.size = num_field<std::uint32_t>(tok, 5, lineno, "size");
      m.pc = num_field<PcId>(tok, 6, lineno, "pc");
      t.misses.push_back(m);
    } else if (tag == "B") {
      expect_fields(tok, 5, lineno, "B");
      BarrierRecord b;
      b.epoch = num_field<EpochId>(tok, 1, lineno, "epoch");
      b.node = num_field<NodeId>(tok, 2, lineno, "node");
      b.barrier_pc = num_field<PcId>(tok, 3, lineno, "barrier pc");
      b.vt = num_field<Cycle>(tok, 4, lineno, "virtual time");
      t.barriers.push_back(b);
    } else {
      fail_line(lineno, "unknown record tag '" + tag + "'");
    }
  }
  t.validate_labels();
  return t;
}

namespace {

constexpr char kBinMagic[8] = {'c', 'i', 'c', 'o', 't', 'r', 'c', '1'};

/// Unsigned LEB128 via the shared canonical codec (common/varint.hpp):
/// short for the small epoch/node/pc values that dominate a trace, at
/// most 10 bytes for a full 64-bit address.  The reader rejects
/// non-minimal encodings and overflow bits, so a binary trace is a
/// bijective function of its records -- the invariant the
/// content-addressed store's chunk hashes rely on.
void put_varint(std::ostream& os, std::uint64_t v) {
  common::put_varint(os, v);
}

std::uint64_t get_varint(std::istream& is) {
  return common::get_varint(is, "trace");
}

/// Range-checked narrowing: a varint that does not fit the destination
/// field is malformed input, reported exactly like the text loader's
/// parse_num path -- never silently truncated by a static_cast.
template <typename T>
T narrow(std::uint64_t v, const char* what) {
  return common::narrow_varint<T>(v, "trace", what);
}

void put_string(std::ostream& os, const std::string& s) {
  put_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get_varint(is);
  if (n > (1u << 20)) throw std::runtime_error("trace: oversized string");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("trace: truncated binary input");
  return s;
}

}  // namespace

void save_binary(const Trace& t, std::ostream& os) {
  os.write(kBinMagic, sizeof(kBinMagic));
  put_varint(os, t.labels.size());
  for (const auto& r : t.labels) {
    put_string(os, r.label);
    put_varint(os, r.base);
    put_varint(os, r.bytes);
    put_varint(os, r.regular ? 1 : 0);
  }
  put_varint(os, t.misses.size());
  for (const auto& m : t.misses) {
    put_varint(os, m.epoch);
    put_varint(os, m.node);
    put_varint(os, static_cast<std::uint64_t>(m.kind));
    put_varint(os, m.addr);
    put_varint(os, m.size);
    put_varint(os, m.pc);
  }
  put_varint(os, t.barriers.size());
  for (const auto& b : t.barriers) {
    put_varint(os, b.epoch);
    put_varint(os, b.node);
    put_varint(os, b.barrier_pc);
    put_varint(os, b.vt);
  }
}

Trace load_binary(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kBinMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("trace: bad binary header");
  }
  Trace t;
  const auto nlabels = get_varint(is);
  if (nlabels > (1u << 20)) throw std::runtime_error("trace: label count");
  t.labels.reserve(nlabels);
  for (std::uint64_t i = 0; i < nlabels; ++i) {
    RegionLabel r;
    r.label = get_string(is);
    r.base = get_varint(is);
    r.bytes = get_varint(is);
    const auto reg = get_varint(is);
    if (reg > 1) {
      throw std::runtime_error("trace: regular flag must be 0 or 1");
    }
    r.regular = reg != 0;
    t.labels.push_back(std::move(r));
  }
  const auto nmisses = get_varint(is);
  if (nmisses > (1ull << 32)) throw std::runtime_error("trace: miss count");
  t.misses.reserve(nmisses);
  for (std::uint64_t i = 0; i < nmisses; ++i) {
    MissRecord m;
    m.epoch = narrow<EpochId>(get_varint(is), "epoch");
    m.node = narrow<NodeId>(get_varint(is), "node");
    const auto kind = get_varint(is);
    if (kind > static_cast<std::uint64_t>(MissKind::WriteFault)) {
      throw std::runtime_error("trace: bad miss kind");
    }
    m.kind = static_cast<MissKind>(kind);
    m.addr = get_varint(is);
    m.size = narrow<std::uint32_t>(get_varint(is), "size");
    m.pc = narrow<PcId>(get_varint(is), "pc");
    t.misses.push_back(m);
  }
  const auto nbars = get_varint(is);
  if (nbars > (1ull << 32)) throw std::runtime_error("trace: barrier count");
  t.barriers.reserve(nbars);
  for (std::uint64_t i = 0; i < nbars; ++i) {
    BarrierRecord b;
    b.epoch = narrow<EpochId>(get_varint(is), "epoch");
    b.node = narrow<NodeId>(get_varint(is), "node");
    b.barrier_pc = narrow<PcId>(get_varint(is), "barrier pc");
    b.vt = get_varint(is);
    t.barriers.push_back(b);
  }
  // load_text rejects trailing junk; the binary loader used to stop at
  // the barrier section and silently ignore whatever followed.
  if (is.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("trace: trailing junk after barrier section");
  }
  t.validate_labels();
  return t;
}

}  // namespace cico::trace
