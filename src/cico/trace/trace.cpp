#include "cico/trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cico::trace {

const char* miss_kind_name(MissKind k) {
  switch (k) {
    case MissKind::ReadMiss: return "read_miss";
    case MissKind::WriteMiss: return "write_miss";
    case MissKind::WriteFault: return "write_fault";
  }
  return "unknown";
}

EpochId Trace::num_epochs() const {
  EpochId n = 0;
  for (const auto& m : misses) n = std::max(n, m.epoch + 1);
  for (const auto& b : barriers) n = std::max(n, b.epoch + 1);
  return n;
}

const RegionLabel* Trace::region_of(Addr addr) const {
  for (const auto& r : labels) {
    if (addr >= r.base && addr < r.base + r.bytes) return &r;
  }
  return nullptr;
}

void TraceWriter::set_labels(std::vector<RegionLabel> labels) {
  trace_.labels = std::move(labels);
}

void TraceWriter::record_miss(NodeId node, MissKind kind, Addr addr,
                              std::uint32_t size, PcId pc, EpochId epoch) {
  Key k{node, static_cast<std::uint8_t>(kind), addr, pc};
  if (!epoch_seen_.insert(k).second) return;
  epoch_buf_.push_back(MissRecord{epoch, node, kind, addr, size, pc});
}

void TraceWriter::record_barrier(NodeId node, PcId barrier_pc, Cycle vt,
                                 EpochId epoch) {
  trace_.barriers.push_back(BarrierRecord{epoch, node, barrier_pc, vt});
}

void TraceWriter::end_epoch() {
  trace_.misses.insert(trace_.misses.end(), epoch_buf_.begin(), epoch_buf_.end());
  epoch_buf_.clear();
  epoch_seen_.clear();
}

Trace TraceWriter::take() {
  end_epoch();
  return std::move(trace_);
}

void save_text(const Trace& t, std::ostream& os) {
  os << "cico-trace v1\n";
  for (const auto& r : t.labels) {
    os << "L " << r.label << ' ' << r.base << ' ' << r.bytes << ' '
       << (r.regular ? 1 : 0) << '\n';
  }
  for (const auto& m : t.misses) {
    os << "M " << m.epoch << ' ' << m.node << ' ' << static_cast<int>(m.kind)
       << ' ' << m.addr << ' ' << m.size << ' ' << m.pc << '\n';
  }
  for (const auto& b : t.barriers) {
    os << "B " << b.epoch << ' ' << b.node << ' ' << b.barrier_pc << ' '
       << b.vt << '\n';
  }
}

Trace load_text(std::istream& is) {
  Trace t;
  std::string line;
  if (!std::getline(is, line) || line != "cico-trace v1") {
    throw std::runtime_error("trace: bad header");
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'L') {
      RegionLabel r;
      int regular = 1;
      ls >> r.label >> r.base >> r.bytes >> regular;
      r.regular = regular != 0;
      t.labels.push_back(std::move(r));
    } else if (tag == 'M') {
      MissRecord m;
      int kind = 0;
      ls >> m.epoch >> m.node >> kind >> m.addr >> m.size >> m.pc;
      m.kind = static_cast<MissKind>(kind);
      t.misses.push_back(m);
    } else if (tag == 'B') {
      BarrierRecord b;
      ls >> b.epoch >> b.node >> b.barrier_pc >> b.vt;
      t.barriers.push_back(b);
    } else {
      throw std::runtime_error("trace: unknown record tag");
    }
    if (ls.fail()) throw std::runtime_error("trace: malformed record");
  }
  return t;
}

namespace {

constexpr char kBinMagic[8] = {'c', 'i', 'c', 'o', 't', 'r', 'c', '1'};

/// Unsigned LEB128: short for the small epoch/node/pc values that
/// dominate a trace, at most 10 bytes for a full 64-bit address.
void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error("trace: truncated binary input");
    }
    if (shift >= 64) throw std::runtime_error("trace: varint overflow");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
}

void put_string(std::ostream& os, const std::string& s) {
  put_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get_varint(is);
  if (n > (1u << 20)) throw std::runtime_error("trace: oversized string");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("trace: truncated binary input");
  return s;
}

}  // namespace

void save_binary(const Trace& t, std::ostream& os) {
  os.write(kBinMagic, sizeof(kBinMagic));
  put_varint(os, t.labels.size());
  for (const auto& r : t.labels) {
    put_string(os, r.label);
    put_varint(os, r.base);
    put_varint(os, r.bytes);
    put_varint(os, r.regular ? 1 : 0);
  }
  put_varint(os, t.misses.size());
  for (const auto& m : t.misses) {
    put_varint(os, m.epoch);
    put_varint(os, m.node);
    put_varint(os, static_cast<std::uint64_t>(m.kind));
    put_varint(os, m.addr);
    put_varint(os, m.size);
    put_varint(os, m.pc);
  }
  put_varint(os, t.barriers.size());
  for (const auto& b : t.barriers) {
    put_varint(os, b.epoch);
    put_varint(os, b.node);
    put_varint(os, b.barrier_pc);
    put_varint(os, b.vt);
  }
}

Trace load_binary(std::istream& is) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kBinMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("trace: bad binary header");
  }
  Trace t;
  const auto nlabels = get_varint(is);
  if (nlabels > (1u << 20)) throw std::runtime_error("trace: label count");
  t.labels.reserve(nlabels);
  for (std::uint64_t i = 0; i < nlabels; ++i) {
    RegionLabel r;
    r.label = get_string(is);
    r.base = get_varint(is);
    r.bytes = get_varint(is);
    r.regular = get_varint(is) != 0;
    t.labels.push_back(std::move(r));
  }
  const auto nmisses = get_varint(is);
  if (nmisses > (1ull << 32)) throw std::runtime_error("trace: miss count");
  t.misses.reserve(nmisses);
  for (std::uint64_t i = 0; i < nmisses; ++i) {
    MissRecord m;
    m.epoch = static_cast<EpochId>(get_varint(is));
    m.node = static_cast<NodeId>(get_varint(is));
    const auto kind = get_varint(is);
    if (kind > static_cast<std::uint64_t>(MissKind::WriteFault)) {
      throw std::runtime_error("trace: bad miss kind");
    }
    m.kind = static_cast<MissKind>(kind);
    m.addr = get_varint(is);
    m.size = static_cast<std::uint32_t>(get_varint(is));
    m.pc = static_cast<PcId>(get_varint(is));
    t.misses.push_back(m);
  }
  const auto nbars = get_varint(is);
  if (nbars > (1ull << 32)) throw std::runtime_error("trace: barrier count");
  t.barriers.reserve(nbars);
  for (std::uint64_t i = 0; i < nbars; ++i) {
    BarrierRecord b;
    b.epoch = static_cast<EpochId>(get_varint(is));
    b.node = static_cast<NodeId>(get_varint(is));
    b.barrier_pc = static_cast<PcId>(get_varint(is));
    b.vt = get_varint(is);
    t.barriers.push_back(b);
  }
  return t;
}

}  // namespace cico::trace
