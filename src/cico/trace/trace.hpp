// Execution-trace format (paper section 3.3, Fig. 3).
//
// The trace contains one record per shared-data cache miss -- its kind
// (read miss / write miss / write fault), the word address, the issuing
// node, the program counter, and the epoch -- plus one barrier record per
// node per epoch (barrier PC and virtual time).  Epochs are ordered by the
// barrier virtual times; accesses *within* an epoch carry no ordering,
// exactly as in the paper.  Region labels (the paper's shared-memory
// labelling macro) ride along so Cachier can map addresses back to program
// data structures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cico/common/types.hpp"

namespace cico::trace {

enum class MissKind : std::uint8_t { ReadMiss, WriteMiss, WriteFault };

[[nodiscard]] const char* miss_kind_name(MissKind k);

struct MissRecord {
  EpochId epoch = 0;
  NodeId node = 0;
  MissKind kind = MissKind::ReadMiss;
  Addr addr = 0;        ///< word address of the access that missed
  std::uint32_t size = 0;  ///< access width in bytes
  PcId pc = kNoPc;

  friend bool operator==(const MissRecord&, const MissRecord&) = default;
};

/// One per (node, barrier): "Node no., Barrier PC, Barrier VT" (Fig. 3).
struct BarrierRecord {
  EpochId epoch = 0;  ///< epoch that this barrier *ends*
  NodeId node = 0;
  PcId barrier_pc = kNoPc;
  Cycle vt = 0;

  friend bool operator==(const BarrierRecord&, const BarrierRecord&) = default;
};

/// Labelled shared-memory region (name, base address, length).
struct RegionLabel {
  std::string label;
  Addr base = 0;
  std::uint64_t bytes = 0;
  bool regular = true;  ///< accesses are loop-affine (enables prefetching)

  friend bool operator==(const RegionLabel&, const RegionLabel&) = default;
};

/// A complete trace: misses + barrier marks + labels.
struct Trace {
  std::vector<MissRecord> misses;
  std::vector<BarrierRecord> barriers;
  std::vector<RegionLabel> labels;

  [[nodiscard]] EpochId num_epochs() const;

  /// Region containing addr, or nullptr.  Binary search over a base-sorted
  /// index built on first use (this sits on the Cachier analysis path for
  /// every miss record).  Overlapping labels used to be resolved silently
  /// by declaration order; they now throw.
  [[nodiscard]] const RegionLabel* region_of(Addr addr) const;

  /// (Re)builds the sorted lookup index, throwing std::runtime_error if
  /// two non-empty labelled regions overlap or a region wraps the address
  /// space.  The loaders call this; call it yourself after mutating
  /// `labels` without changing their count.
  void validate_labels() const;

 private:
  /// Indices into `labels`, sorted by (base, bytes); rebuilt lazily when
  /// the label count changes.
  mutable std::vector<std::uint32_t> label_index_;
};

/// Sorts misses and barriers into the canonical record order used by the
/// epoch-chunked v2 format ((epoch, node, addr, pc, kind, size) for
/// misses, (epoch, node, vt, pc) for barriers).  Accesses within an epoch
/// carry no ordering (paper section 3.3), so this is semantics-preserving;
/// it is what makes equal traces hash equally in the content-addressed
/// store.  Labels keep their declaration order (they are part of the
/// header, not the chunks).
void canonicalize(Trace& t);

/// Accumulates a trace during simulation.  Mirrors WWT's collection scheme:
/// misses are gathered in a per-epoch hash table (deduplicating identical
/// events) and appended at each barrier.
class TraceWriter {
 public:
  void set_labels(std::vector<RegionLabel> labels);

  void record_miss(NodeId node, MissKind kind, Addr addr, std::uint32_t size,
                   PcId pc, EpochId epoch);

  /// Called once per node when a barrier completes.
  void record_barrier(NodeId node, PcId barrier_pc, Cycle vt, EpochId epoch);

  /// Finalizes the current epoch's hash table into the trace.
  void end_epoch();

  /// Finalizes and returns the trace (call once, at end of run).
  [[nodiscard]] Trace take();

 private:
  struct Key {
    NodeId node;
    std::uint8_t kind;
    Addr addr;
    PcId pc;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.addr * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<std::uint64_t>(k.node) << 40) ^
           (static_cast<std::uint64_t>(k.kind) << 32) ^ k.pc;
      return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };

  Trace trace_;
  std::vector<MissRecord> epoch_buf_;
  std::unordered_set<Key, KeyHash> epoch_seen_;
};

/// Text serialization (one record per line; stable, diffable format).
/// Region labels are escaped (\s space, \t \n \r \\, \e for the empty
/// label) so any label round-trips.  load_text is strict: it validates
/// field counts, numeric syntax and the MissKind range, rejects trailing
/// junk, and reports every failure as `trace: line N: ...`.
void save_text(const Trace& t, std::ostream& os);
[[nodiscard]] Trace load_text(std::istream& is);

/// Binary serialization (LEB128 varint fields): substantially smaller and
/// faster to parse than the text form for the multi-hundred-thousand
/// record traces the larger apps produce.  Both loaders validate their
/// headers and throw std::runtime_error on malformed input.
void save_binary(const Trace& t, std::ostream& os);
[[nodiscard]] Trace load_binary(std::istream& is);

}  // namespace cico::trace
