// PlanBuilder: Cachier's second phase for compiled (plan-driven) programs.
//
// Converts the per-(epoch, node) annotation sets chosen by the section 4.1
// equations into a runtime DirectivePlan, applying the PLACEMENT rules of
// section 4.2:
//   * non-DRFS check-outs go "as close to the beginning of the epoch as
//     possible under cache size constraints" -> at_start runs, capped at a
//     configurable fraction of cache capacity (Cachier "models the finite
//     capacity of a cache (but not its limited associativity)");
//     check-outs that do not fit degrade gracefully to fetch-exclusive
//     (check_out_X) or to the protocol's implicit checkout (check_out_S);
//   * non-DRFS check-ins go at the end of the epoch -> at_end runs;
//   * DRFS blocks are handled tightly: fetch-exclusive on first read and
//     check-in immediately after every access;
//   * prefetches (when enabled) are issued pipelined at epoch start for
//     the blocks the epoch will miss on, but ONLY for blocks in regions
//     whose access pattern is statically regular -- Cachier's prefetch
//     insertion leans on loop analysis, which pointer-chasing code (e.g.
//     Barnes' tree) defeats; the paper reports exactly that (section 6).
//
// Contiguous blocks are merged into runs, the runtime analogue of the
// collapsed `A[lo:hi]` annotations of section 4.3.
#pragma once

#include <cstdint>

#include "cico/cachier/chooser.hpp"
#include "cico/cachier/epoch_db.hpp"
#include "cico/cachier/sharing.hpp"
#include "cico/sim/plan.hpp"

namespace cico::cachier {

struct PlanOptions {
  Mode mode = Mode::Performance;
  bool prefetch = false;
  /// Fraction of the cache the epoch-start checkouts may claim.
  double capacity_fraction = 0.75;
  /// Cap on prefetches issued per (node, epoch).
  std::size_t max_prefetch_blocks = 4096;
  /// Detection options forwarded to the sharing analyzer.
  SharingOptions sharing{};
  /// Equation options forwarded to the chooser (paper-literal Performance
  /// check-in term; see AnnotationChooser::Options).
  AnnotationChooser::Options chooser{};
  /// Apply the single-epoch history terms (SW_{i-1} etc.).  Disabling this
  /// re-checks-out everything every epoch -- the A2 ablation.
  bool use_history = true;
  /// Region-level generalization: when a large fraction of a labelled
  /// region's blocks are contended (DRFS) or read-then-written in an
  /// epoch, extend the tight sets to the WHOLE region.  This is how the
  /// paper's annotations stay valid on a DIFFERENT input than the traced
  /// one (section 4.5): the annotation names the data structure ("the
  /// cell array is contended"), not the particular addresses one input
  /// happened to touch.  Both hooks are consulted only at actual
  /// accesses, so over-approximating is safe.
  bool region_generalize = true;
  /// Fraction of a region's blocks that must be in a tight set before the
  /// set is generalized to the region.
  double region_generalize_threshold = 0.25;
};

/// Summary of a built plan (tests & reports).
struct PlanSummary {
  std::uint64_t start_checkout_blocks = 0;
  std::uint64_t end_checkin_blocks = 0;
  std::uint64_t fetch_exclusive_blocks = 0;
  std::uint64_t tight_checkin_blocks = 0;
  std::uint64_t prefetch_blocks = 0;
  std::uint64_t capacity_spills = 0;  ///< checkouts demoted for capacity
  std::uint64_t races = 0;
  std::uint64_t false_shares = 0;
};

class PlanBuilder {
 public:
  /// Builds a plan from a trace.  The trace's region labels drive the
  /// regular/irregular prefetch distinction.
  PlanBuilder(const trace::Trace& trace, const mem::CacheGeometry& geo);

  [[nodiscard]] sim::DirectivePlan build(const PlanOptions& opt) const;
  [[nodiscard]] PlanSummary last_summary() const { return summary_; }

  /// Merge a sorted block list into maximal contiguous runs.
  [[nodiscard]] static std::vector<sim::BlockRun> to_runs(const BlockSet& s);

 private:
  const trace::Trace* trace_;
  mem::CacheGeometry geo_;
  mutable PlanSummary summary_{};
};

}  // namespace cico::cachier
