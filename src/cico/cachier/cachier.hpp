// Umbrella header: the Cachier tool's public API.
//
// Typical use (mirrors Fig. 1 of the paper):
//
//   // 1. Run the unannotated program in trace mode.
//   sim::SimConfig tc;  tc.trace_mode = true;
//   sim::Machine tracer_machine(tc);
//   trace::TraceWriter w;
//   tracer_machine.set_trace_writer(&w);
//   ... build workload, run ...
//   trace::Trace t = w.take();
//
//   // 2. Feed the trace to Cachier.
//   cachier::PlanBuilder cachier(t, tc.cache);
//   sim::DirectivePlan plan =
//       cachier.build({.mode = cachier::Mode::Performance});
//
//   // 3. Re-run the program with the annotations as memory directives.
//   sim::Machine m({});
//   m.set_plan(&plan);
//   ... run, compare exec_time() ...
#pragma once

#include "cico/cachier/chooser.hpp"
#include "cico/cachier/epoch_db.hpp"
#include "cico/cachier/plan_builder.hpp"
#include "cico/cachier/sharing.hpp"
