#include "cico/cachier/plan_builder.hpp"

#include <algorithm>
#include <vector>

namespace cico::cachier {

PlanBuilder::PlanBuilder(const trace::Trace& trace,
                         const mem::CacheGeometry& geo)
    : trace_(&trace), geo_(geo) {}

std::vector<sim::BlockRun> PlanBuilder::to_runs(const BlockSet& s) {
  // BlockSet iteration is already ascending; runs coalesce directly.
  std::vector<sim::BlockRun> runs;
  for (Block b : s) {
    if (!runs.empty() && runs.back().last + 1 == b) {
      runs.back().last = b;
    } else {
      runs.push_back(sim::BlockRun{b, b});
    }
  }
  return runs;
}

sim::DirectivePlan PlanBuilder::build(const PlanOptions& opt) const {
  summary_ = PlanSummary{};

  // If history is disabled (A2 ablation), analyze a trace whose epochs are
  // presented to the chooser with empty neighbours by post-filtering below
  // -- simpler: we just skip the subtraction by treating prev/next as
  // empty, which we emulate by running the chooser on a modified DB.  The
  // chooser reads the DB directly, so we instead implement the ablation by
  // unioning: when use_history is false, co sets become SW_i / SR_i and ci
  // becomes S_i (the raw, history-free placement).
  EpochDB db(*trace_, geo_);
  SharingAnalyzer sharing(*trace_, geo_, opt.sharing);
  AnnotationChooser chooser(db, sharing, opt.chooser);

  summary_.races = sharing.races().size();
  summary_.false_shares = sharing.false_shares().size();

  // Which blocks belong to regular (loop-affine) regions?
  auto block_is_regular = [&](Block b) {
    const trace::RegionLabel* r = trace_->region_of(geo_.base_of(b));
    return r != nullptr && r->regular;
  };

  // Region-level generalization of a tight block set (see PlanOptions).
  // Two triggers:
  //  * an IRREGULAR region with a non-trivial footprint in the set --
  //    which blocks of a scatter/pointer structure are hot is exactly the
  //    input-dependent information a block-exact plan cannot carry across
  //    inputs, so the annotation must name the whole structure;
  //  * a regular region most of whose blocks are already in the set.
  auto generalize = [&](BlockSet& set) {
    if (!opt.region_generalize || set.empty()) return;
    for (const trace::RegionLabel& r : trace_->labels) {
      const Block first = geo_.block_of(r.base);
      const Block last = geo_.block_of(r.base + r.bytes - 1);
      const auto extent = static_cast<double>(last - first + 1);
      std::size_t in = 0;
      for (Block b = first; b <= last; ++b) in += set.contains(b);
      const bool irregular_hot = !r.regular && in >= 8;
      const bool mostly_covered =
          in > 0 &&
          static_cast<double>(in) >= opt.region_generalize_threshold * extent;
      if (!irregular_hot && !mostly_covered) continue;
      for (Block b = first; b <= last; ++b) set.insert(b);
    }
  };

  const std::uint64_t capacity_blocks = static_cast<std::uint64_t>(
      static_cast<double>(geo_.num_blocks()) * opt.capacity_fraction);

  sim::DirectivePlan plan;
  for (EpochId e = 0; e < db.epochs(); ++e) {
    for (NodeId n = 0; n < db.nodes(); ++n) {
      AnnotationSets sets = chooser.choose(e, n, opt.mode);
      if (!opt.use_history) {
        // A2 ablation: pretend the neighbouring epochs are empty.
        const NodeEpochData& cur = db.at(e, n);
        const EpochSharing& sh = sharing.epoch(e);
        sets.co_x_start.clear();
        sets.co_s_start.clear();
        sets.ci_end.clear();
        for (Block b : cur.SW) {
          if (!sh.drfs_blocks.contains(b)) sets.co_x_start.insert(b);
        }
        for (Block b : cur.SR) {
          if (!sh.fs_blocks.contains(b)) sets.co_s_start.insert(b);
        }
        for (Block b : cur.S) {
          if (!sh.drfs_blocks.contains(b)) sets.ci_end.insert(b);
        }
        if (opt.mode == Mode::Performance) {
          sets.co_x_start.clear();
          sets.co_s_start.clear();
        }
      }
      if (sets.total() == 0 && !opt.prefetch) continue;

      // Tight check-ins: read-only contended blocks check in after any
      // access; written ones after the write (the section 4.4 placement).
      // Only the WRITE-side set is generalized to whole regions -- a
      // write-fired check-in is safe on a block the trace never saw,
      // whereas an access-fired one would split a read-modify-write.
      BlockSet tight_read, tight_write;
      {
        const NodeEpochData& cur = db.at(e, n);
        for (Block b : sets.ci_tight) {
          if (!cur.SW.contains(b) && cur.SR.contains(b)) {
            tight_read.insert(b);
          } else {
            tight_write.insert(b);
          }
        }
      }
      generalize(tight_write);
      generalize(sets.fetch_exclusive);

      sim::NodeEpochDirectives ned;

      // Capacity-constrained epoch-start checkouts (Programmer mode).
      std::uint64_t budget = capacity_blocks;
      BlockSet co_x_fit, co_s_fit;
      for (Block b : sets.co_x_start) {
        if (budget > 0) {
          co_x_fit.insert(b);
          --budget;
        } else {
          // Spill: keep the exclusive-fetch semantics at the access.
          if (db.at(e, n).WF.contains(b)) sets.fetch_exclusive.insert(b);
          ++summary_.capacity_spills;
        }
      }
      for (Block b : sets.co_s_start) {
        if (budget > 0) {
          co_s_fit.insert(b);
          --budget;
        } else {
          ++summary_.capacity_spills;  // falls back to the implicit checkout
        }
      }

      for (const sim::BlockRun& r : to_runs(co_x_fit)) {
        ned.at_start.push_back({sim::DirectiveKind::CheckOutX, r});
        summary_.start_checkout_blocks += r.count();
      }
      for (const sim::BlockRun& r : to_runs(co_s_fit)) {
        ned.at_start.push_back({sim::DirectiveKind::CheckOutS, r});
        summary_.start_checkout_blocks += r.count();
      }
      for (const sim::BlockRun& r : to_runs(sets.ci_end)) {
        ned.at_end.push_back({sim::DirectiveKind::CheckIn, r});
        summary_.end_checkin_blocks += r.count();
      }
      ned.fetch_exclusive = std::move(sets.fetch_exclusive);
      summary_.fetch_exclusive_blocks += ned.fetch_exclusive.size();
      ned.checkin_after_access = std::move(tight_read);
      ned.checkin_after_write = std::move(tight_write);
      summary_.tight_checkin_blocks +=
          ned.checkin_after_access.size() + ned.checkin_after_write.size();

      // Prefetch planning: the epoch's expected misses, regular regions
      // only, non-DRFS only, capped.
      if (opt.prefetch) {
        const NodeEpochData& cur = db.at(e, n);
        const EpochSharing& sh = sharing.epoch(e);
        BlockSet pf_x, pf_s;
        std::size_t issued = 0;
        auto want = [&](Block b) {
          return issued < opt.max_prefetch_blocks &&
                 !sh.drfs_blocks.contains(b) && block_is_regular(b);
        };
        // Only READ-side misses are prefetched: blocks the epoch reads
        // (SR) and blocks it reads-then-writes (WF, fetched exclusive).
        // Pure write misses gain nothing from prefetching that the write
        // itself would not already get, and prefetching a store stream
        // with trace-perfect foresight is beyond what the paper's tool
        // (or any compiler scheme it cites) could do.
        for (Block b : cur.WF) {
          if (want(b)) {
            pf_x.insert(b);
            ++issued;
          }
        }
        for (Block b : cur.SR) {
          if (want(b)) {
            pf_s.insert(b);
            ++issued;
          }
        }
        // Start-checkouts already fetch their blocks; skip those.
        for (Block b : co_x_fit) pf_x.erase(b);
        for (Block b : co_s_fit) pf_s.erase(b);
        for (const sim::BlockRun& r : to_runs(pf_x)) {
          ned.at_start.push_back({sim::DirectiveKind::PrefetchX, r});
          summary_.prefetch_blocks += r.count();
        }
        for (const sim::BlockRun& r : to_runs(pf_s)) {
          ned.at_start.push_back({sim::DirectiveKind::PrefetchS, r});
          summary_.prefetch_blocks += r.count();
        }
      }

      if (!ned.empty()) plan.at(n, e) = std::move(ned);
    }
  }
  return plan;
}

}  // namespace cico::cachier
