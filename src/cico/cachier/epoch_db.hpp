// Epoch database: the first, dynamic phase of Cachier (section 4).
//
// "Trace processing consists of removing addresses involved in shared
//  write faults from the list of shared read misses, updating the list of
//  shared write misses to include addresses involved in shared write
//  faults, and storing labelling information contained in the trace."
//
// EpochDB ingests a Fig. 3 trace and produces, per (epoch, node):
//   SW  -- shared-write block set  (write misses + write faults)
//   SR  -- shared-read block set   (read misses - write-faulted blocks)
//   WF  -- write-fault block set   (blocks read before being written;
//          the only candidates for Performance-CICO check_out_X)
//   S   -- SW + SR
// Word-level access sets are kept too, since data races are defined on
// addresses while false sharing is defined on blocks.
#pragma once

#include <unordered_map>
#include <vector>

#include "cico/common/types.hpp"
#include "cico/kern/bitset.hpp"
#include "cico/kern/nodemask.hpp"
#include "cico/mem/geometry.hpp"
#include "cico/trace/trace.hpp"

namespace cico::cachier {

// Dense SIMD bitsets (cico::kern): same membership API as the historical
// unordered_set aliases, but iteration is ascending and set algebra
// (|=, &=, -=) runs on the dispatched word kernels.
using BlockSet = kern::BlockSet;
using WordSet = kern::BlockSet;

struct NodeEpochData {
  WordSet read_words;   ///< word addresses of shared read misses
  WordSet write_words;  ///< word addresses of shared write misses
  WordSet fault_words;  ///< word addresses of shared write faults
  BlockSet SW;          ///< shared-write blocks (see file comment)
  BlockSet SR;          ///< shared-read blocks
  BlockSet WF;          ///< write-fault (read-then-write) blocks
  BlockSet S;           ///< SW + SR

  [[nodiscard]] bool empty() const { return S.empty(); }
};

class EpochDB {
 public:
  EpochDB(const trace::Trace& t, const mem::CacheGeometry& g);

  [[nodiscard]] EpochId epochs() const { return epochs_; }
  [[nodiscard]] std::uint32_t nodes() const { return nodes_; }
  [[nodiscard]] const mem::CacheGeometry& geometry() const { return geo_; }

  /// Data for (epoch, node); a shared empty record when out of range.
  [[nodiscard]] const NodeEpochData& at(EpochId e, NodeId n) const;

  /// Union of SW over all nodes for an epoch (used by the Performance-CICO
  /// check-in rule: "will be written by SOME processor in the next epoch").
  [[nodiscard]] const BlockSet& epoch_sw_union(EpochId e) const;

  /// Mask of the nodes that touch block b in epoch e (empty when nobody
  /// does).  Dynamic width: nodes >= 64 get distinct bits instead of
  /// aliasing onto n % 64 as the old uint64_t mask did.
  [[nodiscard]] const kern::NodeMask& users_of(EpochId e, Block b) const;

  /// True when node n is the ONLY node touching block b in epoch e.
  [[nodiscard]] bool sole_user(EpochId e, Block b, NodeId n) const {
    return users_of(e, b).is_sole(n);
  }

 private:
  mem::CacheGeometry geo_;
  EpochId epochs_ = 0;
  std::uint32_t nodes_ = 0;
  // data_[e * nodes_ + n]
  std::vector<NodeEpochData> data_;
  std::vector<BlockSet> sw_union_;
  std::vector<std::unordered_map<Block, kern::NodeMask>> users_;
  NodeEpochData empty_;
  BlockSet empty_blocks_;
  kern::NodeMask empty_mask_;
};

}  // namespace cico::cachier
