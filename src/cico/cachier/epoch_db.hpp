// Epoch database: the first, dynamic phase of Cachier (section 4).
//
// "Trace processing consists of removing addresses involved in shared
//  write faults from the list of shared read misses, updating the list of
//  shared write misses to include addresses involved in shared write
//  faults, and storing labelling information contained in the trace."
//
// EpochDB ingests a Fig. 3 trace and produces, per (epoch, node):
//   SW  -- shared-write block set  (write misses + write faults)
//   SR  -- shared-read block set   (read misses - write-faulted blocks)
//   WF  -- write-fault block set   (blocks read before being written;
//          the only candidates for Performance-CICO check_out_X)
//   S   -- SW + SR
// Word-level access sets are kept too, since data races are defined on
// addresses while false sharing is defined on blocks.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cico/common/types.hpp"
#include "cico/mem/geometry.hpp"
#include "cico/trace/trace.hpp"

namespace cico::cachier {

using BlockSet = std::unordered_set<Block>;
using WordSet = std::unordered_set<Addr>;

struct NodeEpochData {
  WordSet read_words;   ///< word addresses of shared read misses
  WordSet write_words;  ///< word addresses of shared write misses
  WordSet fault_words;  ///< word addresses of shared write faults
  BlockSet SW;          ///< shared-write blocks (see file comment)
  BlockSet SR;          ///< shared-read blocks
  BlockSet WF;          ///< write-fault (read-then-write) blocks
  BlockSet S;           ///< SW + SR

  [[nodiscard]] bool empty() const { return S.empty(); }
};

class EpochDB {
 public:
  EpochDB(const trace::Trace& t, const mem::CacheGeometry& g);

  [[nodiscard]] EpochId epochs() const { return epochs_; }
  [[nodiscard]] std::uint32_t nodes() const { return nodes_; }
  [[nodiscard]] const mem::CacheGeometry& geometry() const { return geo_; }

  /// Data for (epoch, node); a shared empty record when out of range.
  [[nodiscard]] const NodeEpochData& at(EpochId e, NodeId n) const;

  /// Union of SW over all nodes for an epoch (used by the Performance-CICO
  /// check-in rule: "will be written by SOME processor in the next epoch").
  [[nodiscard]] const BlockSet& epoch_sw_union(EpochId e) const;

  /// Bitmask of the nodes that touch block b in epoch e (bit n%64 set for
  /// node n).  0 when nobody does.
  [[nodiscard]] std::uint64_t users_of(EpochId e, Block b) const;

  /// True when node n is the ONLY node touching block b in epoch e.
  [[nodiscard]] bool sole_user(EpochId e, Block b, NodeId n) const {
    return users_of(e, b) == (1ULL << (n % 64));
  }

 private:
  mem::CacheGeometry geo_;
  EpochId epochs_ = 0;
  std::uint32_t nodes_ = 0;
  // data_[e * nodes_ + n]
  std::vector<NodeEpochData> data_;
  std::vector<BlockSet> sw_union_;
  std::vector<std::unordered_map<Block, std::uint64_t>> users_;
  NodeEpochData empty_;
  BlockSet empty_blocks_;
};

}  // namespace cico::cachier
