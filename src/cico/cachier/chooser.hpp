// The annotation-selection equations of section 4.1.
//
// Programmer CICO (expose ALL communication so the programmer can reason
// about it):
//   co_x[i] = !DRFS{ SW_i - SW_{i-1} } + DRFS{ SW_i }
//   co_s[i] = !FS  { SR_i - SR_{i-1} } + FS  { SR_i }
//   ci  [i] = !DRFS{ S_i  - S_{i+1}  } + DRFS{ S_i  }
//
// Performance CICO (minimize overhead: Dir1SW already performs an implicit
// check-out at every miss, so only annotations that SAVE traffic remain):
//   co_x[i] = !DRFS{ WF_i - SW_{i-1} } + DRFS{ WF_i }
//             (WF = shared write faults: blocks read before written; the
//              explicit check_out_X goes immediately before the read)
//   co_s[i] = {}
//   ci  [i] = !DRFS{ SW_i - SW_{i+1}(same node) }
//           + !DRFS{ SR_i  ^ SW_{i+1}(ANY node) }
//           + DRFS { S_i }
//
// All prior/next-epoch sets are per-node ("checked out in the previous
// epoch by the same processor") except the second Performance check-in
// term, which the paper states as "will be written by some processor in
// the next epoch".
//
// The result distinguishes epoch-boundary placements from "tight"
// placements around each access (DRFS blocks), which is how section 4.2's
// placement rules are realized at runtime.
#pragma once

#include "cico/cachier/epoch_db.hpp"
#include "cico/cachier/sharing.hpp"

namespace cico::cachier {

enum class Mode { Programmer, Performance };

[[nodiscard]] inline const char* mode_name(Mode m) {
  return m == Mode::Programmer ? "programmer" : "performance";
}

/// Chosen annotations for one (epoch, node).
///
/// `co_x` / `co_s` / `ci` are the raw outputs of the section 4.1
/// equations (what the paper's worked Fig. 4 example lists); the
/// remaining members are their placement split per section 4.2, which the
/// runtime plan and the source annotator consume.
struct AnnotationSets {
  // Raw equation outputs.
  BlockSet co_x;
  BlockSet co_s;
  BlockSet ci;
  // Placed at epoch start / end (non-DRFS blocks).
  BlockSet co_x_start;
  BlockSet co_s_start;
  BlockSet ci_end;
  // Placed tightly around each access (DRFS blocks).
  BlockSet ci_tight;
  // Blocks whose FIRST READ should fetch exclusive (check_out_X placed
  // immediately before a read-then-write; subsumes the tight co_x).
  BlockSet fetch_exclusive;

  [[nodiscard]] std::size_t total() const {
    return co_x_start.size() + co_s_start.size() + ci_end.size() +
           ci_tight.size() + fetch_exclusive.size();
  }
};

class AnnotationChooser {
 public:
  struct Options {
    /// Performance check-in term 1, paper-literal, is
    ///   SW_i - SW_{i+1}(same node)
    /// ("...and are not going to be WRITTEN by the same processor in the
    /// next epoch").  Taken literally this also checks in blocks the same
    /// processor immediately RE-READS, wasting a refill for zero protocol
    /// benefit -- and the Programmer equation's S_{i+1} shows the
    /// intended semantics is "not used again".  Default: subtract
    /// S_{i+1}(same node).  Set true for the paper-literal form (used by
    /// the ablation benches).
    bool literal_perf_ci = false;
    /// A1 ablation: pretend no block is ever involved in a data race or
    /// false sharing (drops every DRFS term from the equations).
    bool ignore_drfs = false;
  };

  AnnotationChooser(const EpochDB& db, const SharingAnalyzer& sharing)
      : db_(&db), sharing_(&sharing) {}
  AnnotationChooser(const EpochDB& db, const SharingAnalyzer& sharing,
                    Options opt)
      : db_(&db), sharing_(&sharing), opt_(opt) {}

  [[nodiscard]] AnnotationSets choose(EpochId e, NodeId n, Mode mode) const;

 private:
  const EpochDB* db_;
  const SharingAnalyzer* sharing_;
  Options opt_;
};

}  // namespace cico::cachier
