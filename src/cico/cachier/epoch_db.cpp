#include "cico/cachier/epoch_db.hpp"

#include <algorithm>

namespace cico::cachier {

EpochDB::EpochDB(const trace::Trace& t, const mem::CacheGeometry& g) : geo_(g) {
  epochs_ = t.num_epochs();
  for (const auto& m : t.misses) nodes_ = std::max(nodes_, m.node + 1);
  for (const auto& b : t.barriers) nodes_ = std::max(nodes_, b.node + 1);
  data_.resize(static_cast<std::size_t>(epochs_) * nodes_);
  sw_union_.resize(epochs_);
  users_.resize(epochs_);

  for (const auto& m : t.misses) {
    users_[m.epoch][g.block_of(m.addr)].set(m.node);
  }

  auto slot = [&](EpochId e, NodeId n) -> NodeEpochData& {
    return data_[static_cast<std::size_t>(e) * nodes_ + n];
  };

  for (const auto& m : t.misses) {
    NodeEpochData& d = slot(m.epoch, m.node);
    switch (m.kind) {
      case trace::MissKind::ReadMiss: d.read_words.insert(m.addr); break;
      case trace::MissKind::WriteMiss: d.write_words.insert(m.addr); break;
      case trace::MissKind::WriteFault: d.fault_words.insert(m.addr); break;
    }
  }

  // Reclassification: a block with a write fault moves from the read side
  // to the write side.
  for (EpochId e = 0; e < epochs_; ++e) {
    for (NodeId n = 0; n < nodes_; ++n) {
      NodeEpochData& d = slot(e, n);
      for (Addr a : d.write_words) d.SW.insert(geo_.block_of(a));
      for (Addr a : d.fault_words) {
        d.SW.insert(geo_.block_of(a));
        d.WF.insert(geo_.block_of(a));
      }
      for (Addr a : d.read_words) {
        const Block b = geo_.block_of(a);
        if (!d.WF.contains(b) && !d.SW.contains(b)) d.SR.insert(b);
      }
      d.S = d.SW;
      d.S |= d.SR;
      sw_union_[e] |= d.SW;
    }
  }
}

const NodeEpochData& EpochDB::at(EpochId e, NodeId n) const {
  if (e >= epochs_ || n >= nodes_) return empty_;
  return data_[static_cast<std::size_t>(e) * nodes_ + n];
}

const BlockSet& EpochDB::epoch_sw_union(EpochId e) const {
  if (e >= epochs_) return empty_blocks_;
  return sw_union_[e];
}

const kern::NodeMask& EpochDB::users_of(EpochId e, Block b) const {
  if (e >= epochs_) return empty_mask_;
  auto it = users_[e].find(b);
  return it == users_[e].end() ? empty_mask_ : it->second;
}

}  // namespace cico::cachier
