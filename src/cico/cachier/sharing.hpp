// Data-race and false-sharing detection (sections 1, 4, 4.1).
//
// Per epoch:
//  * a potential DATA RACE exists when two or more processors access the
//    same address within the epoch and at least one access is a write
//    (the trace keeps no ordering inside an epoch, so every such pair is
//    "potential");
//  * FALSE SHARING results from two or more processors accessing
//    different addresses in the same cache block.
//
// DRFS(b) = block b is involved in a data race or false sharing; FS(b) =
// involved in false sharing -- these are the set functions of the section
// 4.1 annotation equations.  The paper's false-sharing definition does not
// require a write; Options::fs_requires_write tightens it (read-only
// co-residence causes no coherence traffic) and is exercised by the
// A1 ablation bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cico/cachier/epoch_db.hpp"
#include "cico/common/pc_registry.hpp"
#include "cico/common/types.hpp"
#include "cico/mem/geometry.hpp"
#include "cico/trace/trace.hpp"

namespace cico::cachier {

struct SharingOptions {
  /// Require at least one write to the block before flagging false
  /// sharing.  The paper's one-line definition has no such qualifier, but
  /// taken literally it marks every read-shared block whose words are
  /// split across readers -- e.g. the entire Barnes octree during the
  /// force phase -- and the "check out and check in immediately" DRFS
  /// treatment then converts every shared READ into a miss, a
  /// catastrophe no evaluation could have survived.  Read-only
  /// co-residence causes no Dir1SW conflicts, so the effective definition
  /// must involve a writer; this is the default.  The A1 ablation bench
  /// measures the literal definition (set to false).
  bool fs_requires_write = true;
};

/// Detected sharing events for one epoch.
struct EpochSharing {
  BlockSet race_blocks;  ///< blocks containing at least one raced word
  BlockSet fs_blocks;    ///< falsely shared blocks
  BlockSet drfs_blocks;  ///< race_blocks + fs_blocks

  [[nodiscard]] bool is_drfs(Block b) const { return drfs_blocks.contains(b); }
  [[nodiscard]] bool is_fs(Block b) const { return fs_blocks.contains(b); }
};

/// One reported data race (for the programmer-facing report).
struct RaceSite {
  EpochId epoch = 0;
  Addr addr = 0;
  std::vector<NodeId> nodes;
  std::vector<PcId> pcs;
};

/// One reported false-sharing site.
struct FalseShareSite {
  EpochId epoch = 0;
  Block block = 0;
  std::vector<NodeId> nodes;
  std::vector<PcId> pcs;
};

class SharingAnalyzer {
 public:
  SharingAnalyzer(const trace::Trace& t, const mem::CacheGeometry& g,
                  SharingOptions opt = {});

  [[nodiscard]] const EpochSharing& epoch(EpochId e) const;
  [[nodiscard]] std::size_t epochs() const { return per_epoch_.size(); }

  [[nodiscard]] const std::vector<RaceSite>& races() const { return races_; }
  [[nodiscard]] const std::vector<FalseShareSite>& false_shares() const {
    return false_shares_;
  }

  /// Programmer-facing report: races (fix with locks) and false sharing
  /// (fix by padding data structures), mapped to region labels and source
  /// sites -- section 4.3 "Cachier also flags data races and false
  /// sharing".
  [[nodiscard]] std::string report(const trace::Trace& t, const PcRegistry& pcs,
                                   std::size_t max_items = 50) const;

 private:
  EpochSharing empty_;
  std::vector<EpochSharing> per_epoch_;
  std::vector<RaceSite> races_;
  std::vector<FalseShareSite> false_shares_;
  mem::CacheGeometry geo_;
};

}  // namespace cico::cachier
