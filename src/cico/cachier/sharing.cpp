#include "cico/cachier/sharing.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "cico/kern/nodemask.hpp"

namespace cico::cachier {

namespace {

struct WordInfo {
  // Dynamic-width masks: nodes >= 64 used to alias onto bit n % 64, which
  // could both invent and hide races/false sharing on wide machines.
  kern::NodeMask reader_mask;
  kern::NodeMask writer_mask;
  std::vector<NodeId> nodes;  // unique accessors, in first-seen order
  std::vector<PcId> pcs;      // unique pcs

  void add(NodeId n, bool write, PcId pc) {
    if (write) writer_mask.set(n);
    else reader_mask.set(n);
    if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) nodes.push_back(n);
    if (std::find(pcs.begin(), pcs.end(), pc) == pcs.end()) pcs.push_back(pc);
  }

  [[nodiscard]] int popcount_accessors() const {
    return kern::NodeMask::count_union(reader_mask, writer_mask);
  }
};

}  // namespace

SharingAnalyzer::SharingAnalyzer(const trace::Trace& t,
                                 const mem::CacheGeometry& g,
                                 SharingOptions opt)
    : geo_(g) {
  const EpochId epochs = t.num_epochs();
  per_epoch_.resize(epochs);

  // Bucket trace records by epoch.
  std::vector<std::vector<const trace::MissRecord*>> by_epoch(epochs);
  for (const auto& m : t.misses) by_epoch[m.epoch].push_back(&m);

  for (EpochId e = 0; e < epochs; ++e) {
    // word -> accessors, block -> accessors
    std::map<Addr, WordInfo> words;
    std::map<Block, WordInfo> blocks;
    std::map<Block, std::uint64_t> block_word_count;  // distinct words per block

    for (const trace::MissRecord* m : by_epoch[e]) {
      const bool write = m->kind != trace::MissKind::ReadMiss;
      auto [it, fresh] = words.try_emplace(m->addr);
      if (fresh) ++block_word_count[geo_.block_of(m->addr)];
      it->second.add(m->node, write, m->pc);
      blocks[geo_.block_of(m->addr)].add(m->node, write, m->pc);
    }

    EpochSharing& es = per_epoch_[e];

    // Data races: same word, >=2 nodes, >=1 write.
    for (const auto& [addr, wi] : words) {
      if (wi.popcount_accessors() < 2 || !wi.writer_mask.any()) continue;
      es.race_blocks.insert(geo_.block_of(addr));
      RaceSite rs;
      rs.epoch = e;
      rs.addr = addr;
      rs.nodes = wi.nodes;
      rs.pcs = wi.pcs;
      races_.push_back(std::move(rs));
    }

    // False sharing: >=2 nodes touch the block via different words.  We
    // detect it as: the block has >=2 accessors AND more than one distinct
    // word was touched AND at least one accessing node touched a word no
    // other node touched... The simple sufficient test used here: the
    // block has >=2 accessor nodes and is NOT explained purely by races /
    // full-word sharing -- i.e. some pair of nodes accessed different
    // words.  Since per-word accessor sets are known, a block is falsely
    // shared iff the union of accessors over its words is larger than the
    // accessor set of every single word.
    for (const auto& [blk, bi] : blocks) {
      if (bi.popcount_accessors() < 2) continue;
      if (block_word_count[blk] < 2) continue;
      if (opt.fs_requires_write && !bi.writer_mask.any()) continue;
      // Does some pair of nodes access different words of this block?
      // Equivalent: there exists a word whose accessor set != block's.
      bool different_words = false;
      for (const auto& [addr, wi] : words) {
        if (geo_.block_of(addr) != blk) continue;
        if (!kern::NodeMask::union_equals(wi.reader_mask, wi.writer_mask,
                                          bi.reader_mask, bi.writer_mask)) {
          different_words = true;
          break;
        }
      }
      if (!different_words) continue;
      es.fs_blocks.insert(blk);
      FalseShareSite fs;
      fs.epoch = e;
      fs.block = blk;
      fs.nodes = bi.nodes;
      fs.pcs = bi.pcs;
      false_shares_.push_back(std::move(fs));
    }

    es.drfs_blocks = es.race_blocks;
    es.drfs_blocks |= es.fs_blocks;
  }
}

const EpochSharing& SharingAnalyzer::epoch(EpochId e) const {
  if (e >= per_epoch_.size()) return empty_;
  return per_epoch_[e];
}

std::string SharingAnalyzer::report(const trace::Trace& t,
                                    const PcRegistry& pcs,
                                    std::size_t max_items) const {
  std::ostringstream os;
  auto region_name = [&](Addr a) -> std::string {
    const trace::RegionLabel* r = t.region_of(a);
    if (r == nullptr) return "<unlabelled>";
    std::ostringstream rs;
    rs << r->label << "+" << (a - r->base);
    return rs.str();
  };

  os << "=== Cachier sharing report ===\n";
  os << races_.size() << " potential data race(s), " << false_shares_.size()
     << " false-sharing block(s)\n\n";

  os << "--- Potential data races (consider protecting with locks) ---\n";
  std::size_t shown = 0;
  for (const RaceSite& r : races_) {
    if (shown++ >= max_items) {
      os << "  ... " << races_.size() - max_items << " more\n";
      break;
    }
    os << "  epoch " << r.epoch << "  addr " << region_name(r.addr)
       << "  nodes {";
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      os << (i ? "," : "") << r.nodes[i];
    }
    os << "}  at ";
    for (std::size_t i = 0; i < r.pcs.size(); ++i) {
      os << (i ? ", " : "") << pcs.describe(r.pcs[i]);
    }
    os << '\n';
  }

  os << "--- False sharing (consider padding the data structure) ---\n";
  shown = 0;
  for (const FalseShareSite& f : false_shares_) {
    if (shown++ >= max_items) {
      os << "  ... " << false_shares_.size() - max_items << " more\n";
      break;
    }
    os << "  epoch " << f.epoch << "  block @"
       << region_name(geo_.base_of(f.block)) << "  nodes {";
    for (std::size_t i = 0; i < f.nodes.size(); ++i) {
      os << (i ? "," : "") << f.nodes[i];
    }
    os << "}  at ";
    for (std::size_t i = 0; i < f.pcs.size(); ++i) {
      os << (i ? ", " : "") << pcs.describe(f.pcs[i]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cico::cachier
