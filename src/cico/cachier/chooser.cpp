#include "cico/cachier/chooser.hpp"

namespace cico::cachier {

namespace {

// The section 4.1 set equations, realized as word-level kernel algebra on
// the dense bitsets (cico::kern dispatch) instead of element-wise hashing.

/// a - b
BlockSet minus(const BlockSet& a, const BlockSet& b) {
  BlockSet out = a;
  out -= b;
  return out;
}

/// a ^ b (intersection)
BlockSet intersect(const BlockSet& a, const BlockSet& b) {
  BlockSet out = a;
  out &= b;
  return out;
}

void merge_into(BlockSet& dst, const BlockSet& src) { dst |= src; }

void partition_by(const BlockSet& src, const BlockSet& pred, BlockSet& in_pred,
                  BlockSet& not_in_pred) {
  in_pred |= intersect(src, pred);
  not_in_pred |= minus(src, pred);
}

}  // namespace

AnnotationSets AnnotationChooser::choose(EpochId e, NodeId n, Mode mode) const {
  AnnotationSets out;
  const NodeEpochData& cur = db_->at(e, n);
  if (cur.empty()) return out;
  // Out-of-range lookups return a shared empty record, which is exactly
  // the semantics needed for the first and last epochs.
  const NodeEpochData& prev = e > 0 ? db_->at(e - 1, n) : db_->at(db_->epochs(), n);
  const NodeEpochData& next = db_->at(e + 1, n);
  static const EpochSharing kNoSharing{};
  const EpochSharing& sh =
      opt_.ignore_drfs ? kNoSharing : sharing_->epoch(e);

  if (mode == Mode::Programmer) {
    // co_x = !DRFS{SW_i - SW_{i-1}} + DRFS{SW_i}
    {
      BlockSet fresh_plain, fresh_drfs;
      partition_by(minus(cur.SW, prev.SW), sh.drfs_blocks, fresh_drfs,
                   fresh_plain);
      out.co_x = fresh_plain;
      merge_into(out.co_x, intersect(cur.SW, sh.drfs_blocks));
      out.co_x_start = std::move(fresh_plain);
      // Tight DRFS check_out_X: write misses already fetch exclusive at
      // the access; read-then-write (WF) blocks need an exclusive fetch at
      // the first read.
      for (Block b : intersect(cur.SW, sh.drfs_blocks)) {
        if (cur.WF.contains(b)) out.fetch_exclusive.insert(b);
      }
    }
    // co_s = !FS{SR_i - SR_{i-1}} + FS{SR_i}
    {
      BlockSet fresh_plain, fresh_fs;
      partition_by(minus(cur.SR, prev.SR), sh.fs_blocks, fresh_fs, fresh_plain);
      out.co_s = fresh_plain;
      merge_into(out.co_s, intersect(cur.SR, sh.fs_blocks));
      out.co_s_start = std::move(fresh_plain);
      // Tight FS check_out_S is implicit at the read miss itself; the
      // tight check-in below provides the pairing.
    }
    // ci = !DRFS{S_i - S_{i+1}} + DRFS{S_i}
    {
      BlockSet leaving_plain, leaving_drfs;
      partition_by(minus(cur.S, next.S), sh.drfs_blocks, leaving_drfs,
                   leaving_plain);
      out.ci = leaving_plain;
      merge_into(out.ci, intersect(cur.S, sh.drfs_blocks));
      out.ci_end = std::move(leaving_plain);
      out.ci_tight = intersect(cur.S, sh.drfs_blocks);
    }
    return out;
  }

  // --- Performance CICO ---
  // co_x = !DRFS{WF_i - SW_{i-1}} + DRFS{WF_i}, realized as
  // fetch-exclusive-on-first-read.
  {
    for (Block b : minus(cur.WF, prev.SW)) {
      if (!sh.drfs_blocks.contains(b)) out.fetch_exclusive.insert(b);
    }
    merge_into(out.fetch_exclusive, intersect(cur.WF, sh.drfs_blocks));
    out.co_x = out.fetch_exclusive;
  }
  // co_s = {}  (implicit at each read miss; an explicit annotation would
  // only add address-generation overhead -- section 4.1).
  // ci: three terms (see header).  The literal term 1 is
  // SW_i - SW_{i+1}(same node); the refined default keeps a block ONLY
  // when this node is the sole user of it next epoch -- then holding the
  // copy is free (hits / sole-sharer hardware upgrade), whereas checking
  // in a block some OTHER node touches next converts that node's trap
  // into a cheap fill.  (The literal form both re-fetches blocks the same
  // node re-reads and pins blocks other nodes only READ next epoch.)
  {
    auto keep = [&](Block b) {
      if (opt_.literal_perf_ci) return next.SW.contains(b);
      return db_->sole_user(e + 1, b, n);
    };
    for (Block b : cur.SW) {
      if (!keep(b) && !sh.drfs_blocks.contains(b)) out.ci_end.insert(b);
    }
    for (Block b : intersect(cur.SR, db_->epoch_sw_union(e + 1))) {
      if (sh.drfs_blocks.contains(b)) continue;
      if (!opt_.literal_perf_ci && db_->sole_user(e + 1, b, n)) continue;
      out.ci_end.insert(b);
    }
    out.ci_tight = intersect(cur.S, sh.drfs_blocks);
    out.ci = out.ci_end;
    merge_into(out.ci, out.ci_tight);
  }
  return out;
}

}  // namespace cico::cachier
