#include "cico/lang/interp.hpp"

#include <cmath>
#include <functional>
#include <sstream>

namespace cico::lang {

namespace {

[[noreturn]] void fail(const std::string& msg, SrcLoc loc) {
  std::ostringstream os;
  os << msg << " (line " << loc.line << ")";
  throw InterpError(os.str());
}

/// Evaluates a declaration-context expression (consts only: no pid, no
/// arrays).
double eval_const(const Expr& e,
                  const std::unordered_map<std::string, double>& consts) {
  switch (e.kind) {
    case ExprKind::Number:
      return e.number;
    case ExprKind::Var: {
      auto it = consts.find(e.name);
      if (it == consts.end()) fail("unknown const '" + e.name + "'", e.loc);
      return it->second;
    }
    case ExprKind::Unary: {
      const double v = eval_const(*e.args[0], consts);
      return e.uop == UnOp::Neg ? -v : (v == 0.0 ? 1.0 : 0.0);
    }
    case ExprKind::Binary: {
      const double a = eval_const(*e.args[0], consts);
      const double b = eval_const(*e.args[1], consts);
      switch (e.bop) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div: return a / b;
        case BinOp::Mod: return std::fmod(a, b);
        default: fail("operator not allowed in const expression", e.loc);
      }
    }
    case ExprKind::MinMax: {
      const double a = eval_const(*e.args[0], consts);
      const double b = eval_const(*e.args[1], consts);
      return e.is_min ? std::min(a, b) : std::max(a, b);
    }
    default:
      fail("expression not allowed in a declaration", e.loc);
  }
}

}  // namespace

struct LoadedProgram::Frame {
  std::unordered_map<std::string, double> vars;
};

LoadedProgram::LoadedProgram(const Program& src, sim::Machine& m)
    : prog_(&src), machine_(&m) {
  // Declarations.
  for (const auto& d : src.decls) {
    if (d->kind == StmtKind::ConstDecl) {
      consts_[d->name] = eval_const(*d->rhs, consts_);
    } else if (d->kind == StmtKind::SharedDecl) {
      ArrayInfo info;
      info.d0 = static_cast<std::size_t>(eval_const(*d->dims[0], consts_));
      if (d->dims.size() > 1) {
        info.two_d = true;
        info.d1 = static_cast<std::size_t>(eval_const(*d->dims[1], consts_));
      }
      if (info.d0 == 0 || info.d1 == 0) {
        fail("zero-sized array '" + d->name + "'", d->loc);
      }
      const std::size_t n = info.d0 * info.d1;
      info.base = m.heap().alloc(n * sizeof(double), d->name);
      info.data = std::make_unique<std::atomic<double>[]>(n);
      arrays_.emplace(d->name, std::move(info));
    }
  }
  // Access-site PcIds, one per AST id, named by source location so trace
  // records and sharing reports read like the paper's "lines in the
  // program text".  Nodes without a recorded location (synthesized ones)
  // fall back to their id.
  pc_by_ast_.assign(src.next_id, kNoPc);
  std::unordered_map<AstId, SrcLoc> locs;
  std::function<void(const Expr&)> walk_expr = [&](const Expr& e) {
    locs[e.id] = e.loc;
    for (const auto& a : e.args) walk_expr(*a);
  };
  std::function<void(const std::vector<StmtPtr>&)> walk =
      [&](const std::vector<StmtPtr>& stmts) {
        for (const auto& sp : stmts) {
          locs[sp->id] = sp->loc;
          for (const auto* e :
               {sp->rhs.get(), sp->lo.get(), sp->hi.get(), sp->step.get(),
                sp->cond.get()}) {
            if (e != nullptr) walk_expr(*e);
          }
          for (const auto& e : sp->dims) walk_expr(*e);
          for (const auto& e : sp->subs) walk_expr(*e);
          walk(sp->body);
          walk(sp->else_body);
        }
      };
  walk(src.decls);
  walk(src.body);
  for (AstId i = 1; i < src.next_id; ++i) {
    const auto it = locs.find(i);
    const int line = it != locs.end() ? it->second.line : 0;
    const PcId pc = m.pcs().intern("minipar", line,
                                   "node" + std::to_string(i));
    pc_by_ast_[i] = pc;
    ast_by_pc_[pc] = i;
  }
}

const LoadedProgram::ArrayInfo& LoadedProgram::array(std::string_view name,
                                                     SrcLoc loc) const {
  auto it = arrays_.find(std::string(name));
  if (it == arrays_.end()) {
    fail("unknown shared array '" + std::string(name) + "'", loc);
  }
  return it->second;
}

Addr LoadedProgram::addr_of(const ArrayInfo& a, std::size_t i, std::size_t j,
                            SrcLoc loc) const {
  if (i >= a.d0 || j >= a.d1) fail("array subscript out of range", loc);
  return a.base + (i * a.d1 + j) * sizeof(double);
}

std::size_t LoadedProgram::index_of(double v, std::size_t extent,
                                    SrcLoc loc) const {
  const auto i = static_cast<long long>(std::llround(v));
  if (i < 0 || static_cast<std::size_t>(i) >= extent) {
    fail("array subscript out of range", loc);
  }
  return static_cast<std::size_t>(i);
}

double LoadedProgram::eval(sim::Proc& p, Frame& f, const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
      return e.number;
    case ExprKind::Pid:
      return static_cast<double>(p.id());
    case ExprKind::Nprocs:
      return static_cast<double>(p.nprocs());
    case ExprKind::Var: {
      auto it = f.vars.find(e.name);
      if (it != f.vars.end()) return it->second;
      auto ct = consts_.find(e.name);
      if (ct != consts_.end()) return ct->second;
      fail("unknown variable '" + e.name + "'", e.loc);
    }
    case ExprKind::Index: {
      const ArrayInfo& a = array(e.name, e.loc);
      const std::size_t i = index_of(eval(p, f, *e.args[0]), a.d0, e.loc);
      const std::size_t j =
          e.args.size() > 1 ? index_of(eval(p, f, *e.args[1]), a.d1, e.loc)
                            : 0;
      if (e.args.size() > 1 && !a.two_d) fail("1-D array indexed 2-D", e.loc);
      const Addr addr = addr_of(a, i, j, e.loc);
      p.ld(addr, sizeof(double), pc_by_ast_[e.id]);
      return a.data[i * a.d1 + j].load(std::memory_order_relaxed);
    }
    case ExprKind::Unary: {
      const double v = eval(p, f, *e.args[0]);
      return e.uop == UnOp::Neg ? -v : (v == 0.0 ? 1.0 : 0.0);
    }
    case ExprKind::Binary: {
      // && and || short-circuit (no second-operand memory traffic).
      if (e.bop == BinOp::And) {
        return eval(p, f, *e.args[0]) != 0.0 && eval(p, f, *e.args[1]) != 0.0
                   ? 1.0
                   : 0.0;
      }
      if (e.bop == BinOp::Or) {
        return eval(p, f, *e.args[0]) != 0.0 || eval(p, f, *e.args[1]) != 0.0
                   ? 1.0
                   : 0.0;
      }
      const double a = eval(p, f, *e.args[0]);
      const double b = eval(p, f, *e.args[1]);
      switch (e.bop) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div: return a / b;
        case BinOp::Mod: return std::fmod(a, b);
        case BinOp::Eq: return a == b ? 1.0 : 0.0;
        case BinOp::Ne: return a != b ? 1.0 : 0.0;
        case BinOp::Lt: return a < b ? 1.0 : 0.0;
        case BinOp::Le: return a <= b ? 1.0 : 0.0;
        case BinOp::Gt: return a > b ? 1.0 : 0.0;
        case BinOp::Ge: return a >= b ? 1.0 : 0.0;
        case BinOp::And:
        case BinOp::Or: break;  // handled above
      }
      return 0.0;
    }
    case ExprKind::MinMax: {
      const double a = eval(p, f, *e.args[0]);
      const double b = eval(p, f, *e.args[1]);
      return e.is_min ? std::min(a, b) : std::max(a, b);
    }
  }
  return 0.0;
}

void LoadedProgram::directive(sim::Proc& p, Frame& f, const Stmt& s) {
  const ArrayRef& r = *s.ref;
  const ArrayInfo& a = array(r.name, r.loc);

  auto bounds = [&](const RangeExpr& re, std::size_t extent) {
    const std::size_t lo = index_of(eval(p, f, *re.lo), extent, r.loc);
    const std::size_t hi =
        re.hi ? index_of(eval(p, f, *re.hi), extent, r.loc) : lo;
    if (hi < lo) fail("empty range in directive", r.loc);
    return std::pair{lo, hi};
  };

  // Resolve to one contiguous byte span per row (row-major layout).
  std::vector<std::pair<Addr, std::uint64_t>> spans;
  if (!a.two_d || r.ranges.size() == 1) {
    auto [lo, hi] = bounds(r.ranges[0], a.two_d ? a.d0 : a.d0 * a.d1);
    if (!a.two_d) {
      spans.emplace_back(addr_of(a, lo, 0, r.loc),
                         (hi - lo + 1) * sizeof(double));
    } else {
      // A[lo:hi] on a 2-D array: whole rows.
      spans.emplace_back(addr_of(a, lo, 0, r.loc),
                         (hi - lo + 1) * a.d1 * sizeof(double));
    }
  } else {
    auto [rlo, rhi] = bounds(r.ranges[0], a.d0);
    auto [clo, chi] = bounds(r.ranges[1], a.d1);
    for (std::size_t i = rlo; i <= rhi; ++i) {
      spans.emplace_back(addr_of(a, i, clo, r.loc),
                         (chi - clo + 1) * sizeof(double));
    }
  }

  for (auto [addr, bytes] : spans) {
    switch (s.dir) {
      case sim::DirectiveKind::CheckOutX: p.check_out_x(addr, bytes); break;
      case sim::DirectiveKind::CheckOutS: p.check_out_s(addr, bytes); break;
      case sim::DirectiveKind::CheckIn: p.check_in(addr, bytes); break;
      case sim::DirectiveKind::PrefetchX: p.prefetch_x(addr, bytes); break;
      case sim::DirectiveKind::PrefetchS: p.prefetch_s(addr, bytes); break;
    }
  }
}

void LoadedProgram::exec(sim::Proc& p, Frame& f, const Stmt& s) {
  switch (s.kind) {
    case StmtKind::SharedDecl:
    case StmtKind::ConstDecl:
      return;  // handled at load time
    case StmtKind::Private:
      f.vars[s.name] = eval(p, f, *s.rhs);
      return;
    case StmtKind::Assign: {
      const double v = eval(p, f, *s.rhs);
      if (s.subs.empty()) {
        // Scalar target: private variable (create on first write).
        f.vars[s.name] = v;
        return;
      }
      const ArrayInfo& a = array(s.name, s.loc);
      const std::size_t i = index_of(eval(p, f, *s.subs[0]), a.d0, s.loc);
      const std::size_t j =
          s.subs.size() > 1 ? index_of(eval(p, f, *s.subs[1]), a.d1, s.loc)
                            : 0;
      const Addr addr = addr_of(a, i, j, s.loc);
      p.st(addr, sizeof(double), pc_by_ast_[s.id]);
      a.data[i * a.d1 + j].store(v, std::memory_order_relaxed);
      p.compute(1);
      return;
    }
    case StmtKind::For: {
      const double lo = eval(p, f, *s.lo);
      const double hi = eval(p, f, *s.hi);
      const double step = s.step ? eval(p, f, *s.step) : 1.0;
      if (step == 0.0) fail("zero loop step", s.loc);
      for (double v = lo; step > 0 ? v <= hi : v >= hi; v += step) {
        f.vars[s.name] = v;
        exec_block(p, f, s.body);
        p.compute(1);
      }
      return;
    }
    case StmtKind::If:
      if (eval(p, f, *s.cond) != 0.0) {
        exec_block(p, f, s.body);
      } else {
        exec_block(p, f, s.else_body);
      }
      return;
    case StmtKind::Barrier:
      p.barrier(pc_by_ast_[s.id]);
      return;
    case StmtKind::Lock:
    case StmtKind::Unlock: {
      const ArrayRef& r = *s.ref;
      const ArrayInfo& a = array(r.name, r.loc);
      const std::size_t i =
          index_of(eval(p, f, *r.ranges[0].lo), a.d0, r.loc);
      const std::size_t j =
          r.ranges.size() > 1
              ? index_of(eval(p, f, *r.ranges[1].lo), a.d1, r.loc)
              : 0;
      const Addr addr = addr_of(a, i, j, r.loc);
      if (s.kind == StmtKind::Lock) p.lock(addr);
      else p.unlock(addr);
      return;
    }
    case StmtKind::Directive:
      directive(p, f, s);
      return;
    case StmtKind::Compute:
      p.compute(static_cast<Cycle>(std::llround(eval(p, f, *s.rhs))));
      return;
  }
}

void LoadedProgram::exec_block(sim::Proc& p, Frame& f,
                               const std::vector<StmtPtr>& stmts) {
  for (const auto& s : stmts) exec(p, f, *s);
}

void LoadedProgram::run_node(sim::Proc& p) {
  Frame f;
  exec_block(p, f, prog_->body);
}

double LoadedProgram::value(std::string_view name, std::size_t i,
                            std::size_t j) const {
  const ArrayInfo& a = array(name, SrcLoc{});
  if (i >= a.d0 || j >= a.d1) throw InterpError("value(): out of range");
  return a.data[i * a.d1 + j].load(std::memory_order_relaxed);
}

Addr LoadedProgram::array_base(std::string_view name) const {
  return array(name, SrcLoc{}).base;
}

std::pair<std::size_t, std::size_t> LoadedProgram::array_dims(
    std::string_view name) const {
  const ArrayInfo& a = array(name, SrcLoc{});
  return {a.d0, a.d1};
}

PcId LoadedProgram::pc_for(AstId id) const {
  return id < pc_by_ast_.size() ? pc_by_ast_[id] : kNoPc;
}

AstId LoadedProgram::ast_for(PcId pc) const {
  auto it = ast_by_pc_.find(pc);
  return it == ast_by_pc_.end() ? 0 : it->second;
}

double LoadedProgram::const_value(std::string_view name) const {
  auto it = consts_.find(std::string(name));
  if (it == consts_.end()) throw InterpError("unknown const");
  return it->second;
}

}  // namespace cico::lang
