#include "cico/lang/ast.hpp"

namespace cico::lang {

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->id = id;
  e->loc = loc;
  e->kind = kind;
  e->number = number;
  e->name = name;
  e->bop = bop;
  e->uop = uop;
  e->is_min = is_min;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

RangeExpr RangeExpr::clone() const {
  RangeExpr r;
  if (lo) r.lo = lo->clone();
  if (hi) r.hi = hi->clone();
  return r;
}

ArrayRef ArrayRef::clone() const {
  ArrayRef r;
  r.id = id;
  r.loc = loc;
  r.name = name;
  r.ranges.reserve(ranges.size());
  for (const auto& x : ranges) r.ranges.push_back(x.clone());
  return r;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->id = id;
  s->loc = loc;
  s->kind = kind;
  s->name = name;
  for (const auto& d : dims) s->dims.push_back(d->clone());
  for (const auto& d : subs) s->subs.push_back(d->clone());
  if (rhs) s->rhs = rhs->clone();
  if (lo) s->lo = lo->clone();
  if (hi) s->hi = hi->clone();
  if (step) s->step = step->clone();
  if (cond) s->cond = cond->clone();
  for (const auto& b : body) s->body.push_back(b->clone());
  for (const auto& b : else_body) s->else_body.push_back(b->clone());
  s->dir = dir;
  if (ref) s->ref = std::make_unique<ArrayRef>(ref->clone());
  s->synthesized = synthesized;
  return s;
}

Program Program::clone() const {
  Program p;
  p.next_id = next_id;
  for (const auto& d : decls) p.decls.push_back(d->clone());
  for (const auto& b : body) p.body.push_back(b->clone());
  return p;
}

ExprPtr make_number(Program& p, double v) {
  auto e = std::make_unique<Expr>();
  e->id = p.next_id++;
  e->kind = ExprKind::Number;
  e->number = v;
  return e;
}

ExprPtr make_var(Program& p, std::string name) {
  auto e = std::make_unique<Expr>();
  e->id = p.next_id++;
  e->kind = ExprKind::Var;
  e->name = std::move(name);
  return e;
}

ExprPtr make_binary(Program& p, BinOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->id = p.next_id++;
  e->kind = ExprKind::Binary;
  e->bop = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

StmtPtr make_directive(Program& p, sim::DirectiveKind k, ArrayRef ref) {
  auto s = std::make_unique<Stmt>();
  s->id = p.next_id++;
  s->kind = StmtKind::Directive;
  s->dir = k;
  s->ref = std::make_unique<ArrayRef>(std::move(ref));
  s->ref->id = p.next_id++;
  s->synthesized = true;
  return s;
}

StmtPtr make_for(Program& p, std::string var, ExprPtr lo, ExprPtr hi,
                 std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->id = p.next_id++;
  s->kind = StmtKind::For;
  s->name = std::move(var);
  s->lo = std::move(lo);
  s->hi = std::move(hi);
  s->body = std::move(body);
  s->synthesized = true;
  return s;
}

}  // namespace cico::lang
