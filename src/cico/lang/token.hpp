// MiniPar tokens.
//
// MiniPar is the shared-memory mini-language this reproduction uses as
// Cachier's SOURCE surface: the paper's Cachier parsed C, built an AST and
// control-flow graph, inserted CICO annotations and unparsed the result
// (section 3.4).  MiniPar captures the paper's program model (Fig. 2):
// barrier-delimited epochs, shared arrays, loops, locks -- and the CICO
// annotation statements themselves, so annotated output is again a valid
// program that runs on the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cico::lang {

enum class Tok : std::uint8_t {
  // literals / identifiers
  Number,
  Ident,
  // keywords
  KwShared,
  KwReal,
  KwConst,
  KwPrivate,
  KwParallel,
  KwEnd,
  KwFor,
  KwTo,
  KwStep,
  KwDo,
  KwOd,
  KwIf,
  KwThen,
  KwElse,
  KwFi,
  KwBarrier,
  KwLock,
  KwUnlock,
  KwCheckOutX,
  KwCheckOutS,
  KwCheckIn,
  KwPrefetchX,
  KwPrefetchS,
  KwPid,
  KwNprocs,
  KwMin,
  KwMax,
  KwCompute,
  // punctuation / operators
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Assign,   // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Eq,       // ==
  Ne,       // !=
  Lt,
  Le,
  Gt,
  Ge,
  AndAnd,
  OrOr,
  Not,
  Eof,
};

[[nodiscard]] std::string_view tok_name(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  std::string text;   ///< identifier name or number literal text
  double number = 0;  ///< value when kind == Number
  int line = 1;
  int col = 1;
};

}  // namespace cico::lang
