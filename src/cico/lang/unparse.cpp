#include "cico/lang/unparse.hpp"

#include <sstream>

namespace cico::lang {

namespace {

int precedence(BinOp op) {
  switch (op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: return 3;
    case BinOp::Add:
    case BinOp::Sub: return 4;
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod: return 5;
  }
  return 0;
}

const char* op_text(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

std::string fmt_number(double v) {
  std::ostringstream os;
  if (v == static_cast<double>(static_cast<long long>(v))) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
  return os.str();
}

void expr_text(const Expr& e, std::ostream& os, int parent_prec) {
  switch (e.kind) {
    case ExprKind::Number:
      os << fmt_number(e.number);
      return;
    case ExprKind::Var:
      os << e.name;
      return;
    case ExprKind::Pid:
      os << "pid";
      return;
    case ExprKind::Nprocs:
      os << "nprocs";
      return;
    case ExprKind::Index:
      os << e.name << '[';
      expr_text(*e.args[0], os, 0);
      if (e.args.size() > 1) {
        os << ", ";
        expr_text(*e.args[1], os, 0);
      }
      os << ']';
      return;
    case ExprKind::Unary:
      os << (e.uop == UnOp::Neg ? "-" : "!");
      expr_text(*e.args[0], os, 6);
      return;
    case ExprKind::Binary: {
      const int prec = precedence(e.bop);
      const bool need = prec < parent_prec;
      if (need) os << '(';
      expr_text(*e.args[0], os, prec);
      os << ' ' << op_text(e.bop) << ' ';
      expr_text(*e.args[1], os, prec + 1);
      if (need) os << ')';
      return;
    }
    case ExprKind::MinMax:
      os << (e.is_min ? "min(" : "max(");
      expr_text(*e.args[0], os, 0);
      os << ", ";
      expr_text(*e.args[1], os, 0);
      os << ')';
      return;
  }
}

const char* dir_text(sim::DirectiveKind k) {
  switch (k) {
    case sim::DirectiveKind::CheckOutX: return "check_out_X";
    case sim::DirectiveKind::CheckOutS: return "check_out_S";
    case sim::DirectiveKind::CheckIn: return "check_in";
    case sim::DirectiveKind::PrefetchX: return "prefetch_X";
    case sim::DirectiveKind::PrefetchS: return "prefetch_S";
  }
  return "?";
}

class Printer {
 public:
  explicit Printer(UnparseOptions opt) : opt_(opt) {}

  std::string run(const Program& p) {
    for (const auto& d : p.decls) stmt(*d);
    line("parallel");
    ++depth_;
    for (const auto& s : p.body) stmt(*s);
    --depth_;
    line("end");
    return os_.str();
  }

 private:
  void indent() {
    for (int i = 0; i < depth_ * opt_.indent_width; ++i) os_ << ' ';
  }
  void line(const std::string& s) {
    indent();
    os_ << s << '\n';
  }
  std::string mark(const Stmt& s) const {
    return (opt_.mark_synthesized && s.synthesized) ? "   # <cachier>" : "";
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::SharedDecl: {
        std::ostringstream d;
        d << "shared real " << s.name << '[' << unparse_expr(*s.dims[0]);
        if (s.dims.size() > 1) d << ", " << unparse_expr(*s.dims[1]);
        d << "];";
        line(d.str());
        return;
      }
      case StmtKind::ConstDecl:
        line("const " + s.name + " = " + unparse_expr(*s.rhs) + ";");
        return;
      case StmtKind::Private:
        line("private " + s.name + " = " + unparse_expr(*s.rhs) + ";");
        return;
      case StmtKind::Assign: {
        std::ostringstream d;
        d << s.name;
        if (!s.subs.empty()) {
          d << '[' << unparse_expr(*s.subs[0]);
          if (s.subs.size() > 1) d << ", " << unparse_expr(*s.subs[1]);
          d << ']';
        }
        d << " = " << unparse_expr(*s.rhs) << ';';
        line(d.str());
        return;
      }
      case StmtKind::For: {
        std::ostringstream d;
        d << "for " << s.name << " = " << unparse_expr(*s.lo) << " to "
          << unparse_expr(*s.hi);
        if (s.step) d << " step " << unparse_expr(*s.step);
        d << " do" << mark(s);
        line(d.str());
        ++depth_;
        for (const auto& b : s.body) stmt(*b);
        --depth_;
        line("od");
        return;
      }
      case StmtKind::If: {
        line("if " + unparse_expr(*s.cond) + " then");
        ++depth_;
        for (const auto& b : s.body) stmt(*b);
        --depth_;
        if (!s.else_body.empty()) {
          line("else");
          ++depth_;
          for (const auto& b : s.else_body) stmt(*b);
          --depth_;
        }
        line("fi");
        return;
      }
      case StmtKind::Barrier:
        line("barrier;");
        return;
      case StmtKind::Lock:
        line("lock " + unparse_ref(*s.ref) + ";");
        return;
      case StmtKind::Unlock:
        line("unlock " + unparse_ref(*s.ref) + ";");
        return;
      case StmtKind::Directive:
        line(std::string(dir_text(s.dir)) + " " + unparse_ref(*s.ref) + ";" +
             mark(s));
        return;
      case StmtKind::Compute:
        line("compute " + unparse_expr(*s.rhs) + ";");
        return;
    }
  }

  UnparseOptions opt_;
  std::ostringstream os_;
  int depth_ = 0;
};

}  // namespace

std::string unparse_expr(const Expr& e) {
  std::ostringstream os;
  expr_text(e, os, 0);
  return os.str();
}

std::string unparse_ref(const ArrayRef& r) {
  std::ostringstream os;
  os << r.name << '[';
  for (std::size_t i = 0; i < r.ranges.size(); ++i) {
    if (i) os << ", ";
    os << unparse_expr(*r.ranges[i].lo);
    if (r.ranges[i].hi) os << ':' << unparse_expr(*r.ranges[i].hi);
  }
  os << ']';
  return os.str();
}

std::string unparse(const Program& p, UnparseOptions opt) {
  return Printer(opt).run(p);
}

}  // namespace cico::lang
