#include "cico/lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace cico::lang {

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::Number: return "number";
    case Tok::Ident: return "identifier";
    case Tok::KwShared: return "'shared'";
    case Tok::KwReal: return "'real'";
    case Tok::KwConst: return "'const'";
    case Tok::KwPrivate: return "'private'";
    case Tok::KwParallel: return "'parallel'";
    case Tok::KwEnd: return "'end'";
    case Tok::KwFor: return "'for'";
    case Tok::KwTo: return "'to'";
    case Tok::KwStep: return "'step'";
    case Tok::KwDo: return "'do'";
    case Tok::KwOd: return "'od'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFi: return "'fi'";
    case Tok::KwBarrier: return "'barrier'";
    case Tok::KwLock: return "'lock'";
    case Tok::KwUnlock: return "'unlock'";
    case Tok::KwCheckOutX: return "'check_out_X'";
    case Tok::KwCheckOutS: return "'check_out_S'";
    case Tok::KwCheckIn: return "'check_in'";
    case Tok::KwPrefetchX: return "'prefetch_X'";
    case Tok::KwPrefetchS: return "'prefetch_S'";
    case Tok::KwPid: return "'pid'";
    case Tok::KwNprocs: return "'nprocs'";
    case Tok::KwMin: return "'min'";
    case Tok::KwMax: return "'max'";
    case Tok::KwCompute: return "'compute'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"shared", Tok::KwShared},       {"real", Tok::KwReal},
      {"const", Tok::KwConst},         {"private", Tok::KwPrivate},
      {"parallel", Tok::KwParallel},   {"end", Tok::KwEnd},
      {"for", Tok::KwFor},             {"to", Tok::KwTo},
      {"step", Tok::KwStep},           {"do", Tok::KwDo},
      {"od", Tok::KwOd},               {"if", Tok::KwIf},
      {"then", Tok::KwThen},           {"else", Tok::KwElse},
      {"fi", Tok::KwFi},               {"barrier", Tok::KwBarrier},
      {"lock", Tok::KwLock},           {"unlock", Tok::KwUnlock},
      {"check_out_X", Tok::KwCheckOutX},
      {"check_out_S", Tok::KwCheckOutS},
      {"check_in", Tok::KwCheckIn},    {"prefetch_X", Tok::KwPrefetchX},
      {"prefetch_S", Tok::KwPrefetchS},
      {"pid", Tok::KwPid},             {"nprocs", Tok::KwNprocs},
      {"min", Tok::KwMin},             {"max", Tok::KwMax},
      {"compute", Tok::KwCompute},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;

  auto make = [&](Tok k) {
    Token t;
    t.kind = k;
    t.line = line;
    t.col = col;
    return t;
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      Token t = make(Tok::Number);
      std::size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) != 0 ||
              src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
              ((src[i] == '+' || src[i] == '-') && i > start &&
               (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        advance();
      }
      t.text = std::string(src.substr(start, i - start));
      try {
        t.number = std::stod(t.text);
      } catch (const std::exception&) {
        throw ParseError("bad number literal '" + t.text + "'", t.line, t.col);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      Token t = make(Tok::Ident);
      std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) != 0 ||
              src[i] == '_')) {
        advance();
      }
      t.text = std::string(src.substr(start, i - start));
      auto it = keywords().find(t.text);
      if (it != keywords().end()) t.kind = it->second;
      out.push_back(std::move(t));
      continue;
    }
    // operators / punctuation
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    Token t = make(Tok::Eof);
    if (two('=', '=')) { t.kind = Tok::Eq; advance(2); }
    else if (two('!', '=')) { t.kind = Tok::Ne; advance(2); }
    else if (two('<', '=')) { t.kind = Tok::Le; advance(2); }
    else if (two('>', '=')) { t.kind = Tok::Ge; advance(2); }
    else if (two('&', '&')) { t.kind = Tok::AndAnd; advance(2); }
    else if (two('|', '|')) { t.kind = Tok::OrOr; advance(2); }
    else {
      switch (c) {
        case '(': t.kind = Tok::LParen; break;
        case ')': t.kind = Tok::RParen; break;
        case '[': t.kind = Tok::LBracket; break;
        case ']': t.kind = Tok::RBracket; break;
        case ',': t.kind = Tok::Comma; break;
        case ';': t.kind = Tok::Semicolon; break;
        case ':': t.kind = Tok::Colon; break;
        case '=': t.kind = Tok::Assign; break;
        case '+': t.kind = Tok::Plus; break;
        case '-': t.kind = Tok::Minus; break;
        case '*': t.kind = Tok::Star; break;
        case '/': t.kind = Tok::Slash; break;
        case '%': t.kind = Tok::Percent; break;
        case '<': t.kind = Tok::Lt; break;
        case '>': t.kind = Tok::Gt; break;
        case '!': t.kind = Tok::Not; break;
        default:
          throw ParseError(std::string("unexpected character '") + c + "'",
                           line, col);
      }
      advance();
    }
    out.push_back(std::move(t));
  }
  out.push_back(Token{Tok::Eof, "", 0, line, col});
  return out;
}

}  // namespace cico::lang
