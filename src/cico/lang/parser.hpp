// MiniPar recursive-descent parser.
//
// Grammar (see token.hpp for the lexical level):
//
//   program  := decl* 'parallel' block 'end'
//   decl     := 'shared' 'real' IDENT '[' expr (',' expr)? ']' ';'
//             | 'const' IDENT '=' expr ';'
//   block    := stmt*
//   stmt     := 'for' IDENT '=' expr 'to' expr ('step' expr)? 'do' block 'od'
//             | 'if' expr 'then' block ('else' block)? 'fi'
//             | 'barrier' ';'
//             | 'lock' ref ';' | 'unlock' ref ';'
//             | DIRECTIVE ref ';'        (check_out_X/S, check_in,
//                                         prefetch_X/S)
//             | 'compute' expr ';'
//             | 'private' IDENT '=' expr ';'
//             | lvalue '=' expr ';'
//   ref      := IDENT '[' range (',' range)? ']'
//   range    := expr (':' expr)?
//   lvalue   := IDENT ('[' expr (',' expr)? ']')?
//   expr     := ||, &&, comparisons, + -, * / %, unary - !, primary
//   primary  := NUMBER | 'pid' | 'nprocs' | 'min'/'max' '(' e ',' e ')'
//             | IDENT ('[' expr (',' expr)? ']')? | '(' expr ')'
#pragma once

#include <string_view>

#include "cico/lang/ast.hpp"
#include "cico/lang/lexer.hpp"

namespace cico::lang {

/// Parses a whole MiniPar program; throws ParseError on malformed input.
[[nodiscard]] Program parse(std::string_view src);

}  // namespace cico::lang
