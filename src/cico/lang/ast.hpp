// MiniPar abstract syntax tree.
//
// One tagged node type for expressions and one for statements keeps the
// tree easy to build, clone (the annotator synthesizes directive
// statements and loops) and unparse.  Every node carries a unique AstId;
// the interpreter interns one simulator PcId per accessing node, so trace
// records map back to source statements -- the paper's "map ... program
// counters to lines in the program text" (section 4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cico/sim/plan.hpp"  // sim::DirectiveKind

namespace cico::lang {

using AstId = std::uint32_t;

struct SrcLoc {
  int line = 0;
  int col = 0;
};

// --- Expressions -----------------------------------------------------------

enum class ExprKind : std::uint8_t {
  Number,   ///< literal
  Var,      ///< scalar variable (const, private or loop variable)
  Pid,      ///< this processor's id
  Nprocs,   ///< processor count
  Index,    ///< array element A[e] or A[e1, e2]
  Unary,    ///< -e, !e
  Binary,   ///< e1 op e2
  MinMax,   ///< min(a,b) / max(a,b)
};

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or,
};

enum class UnOp : std::uint8_t { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  AstId id = 0;
  SrcLoc loc;
  ExprKind kind = ExprKind::Number;
  double number = 0;        // Number
  std::string name;         // Var / Index
  BinOp bop = BinOp::Add;   // Binary
  UnOp uop = UnOp::Neg;     // Unary
  bool is_min = true;       // MinMax
  std::vector<ExprPtr> args;  // operands / subscripts

  [[nodiscard]] ExprPtr clone() const;
};

/// Inclusive slice `lo : hi` (hi null => the single element `lo`).
struct RangeExpr {
  ExprPtr lo;
  ExprPtr hi;

  [[nodiscard]] RangeExpr clone() const;
};

/// `A[r]` or `A[r1, r2]` as it appears in directive statements.
struct ArrayRef {
  AstId id = 0;
  SrcLoc loc;
  std::string name;
  std::vector<RangeExpr> ranges;

  [[nodiscard]] ArrayRef clone() const;
};

// --- Statements --------------------------------------------------------

enum class StmtKind : std::uint8_t {
  SharedDecl,  ///< shared real A[N] / A[N, M];
  ConstDecl,   ///< const N = expr;
  Private,     ///< private x = expr;
  Assign,      ///< lvalue = expr;
  For,         ///< for v = lo to hi [step s] do ... od
  If,          ///< if cond then ... [else ...] fi
  Barrier,     ///< barrier;
  Lock,        ///< lock A[e...];
  Unlock,      ///< unlock A[e...];
  Directive,   ///< check_out_X/S, check_in, prefetch_X/S  A[ranges];
  Compute,     ///< compute expr;   (charge local work)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  AstId id = 0;
  SrcLoc loc;
  StmtKind kind = StmtKind::Barrier;

  std::string name;            // decl/assign/private target, for-variable
  std::vector<ExprPtr> dims;   // SharedDecl dimensions
  std::vector<ExprPtr> subs;   // Assign lvalue subscripts (empty = scalar)
  ExprPtr rhs;                 // ConstDecl / Private / Assign / Compute value
  ExprPtr lo, hi, step;        // For bounds (step null = 1)
  ExprPtr cond;                // If condition
  std::vector<StmtPtr> body;   // For / If-then
  std::vector<StmtPtr> else_body;  // If-else
  sim::DirectiveKind dir = sim::DirectiveKind::CheckIn;  // Directive
  std::unique_ptr<ArrayRef> ref;  // Directive / Lock / Unlock target
  bool synthesized = false;    ///< inserted by the annotator (not user code)

  [[nodiscard]] StmtPtr clone() const;
};

/// A whole program: declarations, then the parallel block.
struct Program {
  std::vector<StmtPtr> decls;
  std::vector<StmtPtr> body;
  AstId next_id = 1;

  [[nodiscard]] Program clone() const;
};

// --- Construction helpers (used by parser and annotator) --------------------

ExprPtr make_number(Program& p, double v);
ExprPtr make_var(Program& p, std::string name);
ExprPtr make_binary(Program& p, BinOp op, ExprPtr a, ExprPtr b);
StmtPtr make_directive(Program& p, sim::DirectiveKind k, ArrayRef ref);
StmtPtr make_for(Program& p, std::string var, ExprPtr lo, ExprPtr hi,
                 std::vector<StmtPtr> body);

}  // namespace cico::lang
