#include "cico/lang/cfg.hpp"

#include <algorithm>

namespace cico::lang {

Cfg::Cfg(const Program& p) {
  new_block();  // entry
  exit_ = build_seq(p.body, 0, 0, 0, 0);
  for (const BasicBlock& b : blocks_) {
    for (std::uint32_t s : b.succ) blocks_[s].pred.push_back(b.id);
  }
}

std::uint32_t Cfg::new_block() {
  BasicBlock b;
  b.id = static_cast<std::uint32_t>(blocks_.size());
  blocks_.push_back(std::move(b));
  return blocks_.back().id;
}

std::uint32_t Cfg::build_seq(const std::vector<StmtPtr>& stmts,
                             std::uint32_t cur, AstId loop, AstId parent,
                             int depth) {
  for (const auto& sp : stmts) {
    const Stmt& s = *sp;
    loop_of_[s.id] = loop;
    parent_of_[s.id] = parent;
    depth_of_[s.id] = depth;
    switch (s.kind) {
      case StmtKind::For: {
        loops_.push_back(s.id);
        loop_info_.emplace(
            s.id, LoopInfo{s.id, s.name, s.lo.get(), s.hi.get(), s.step.get(),
                           loop, depth});
        // header block
        const std::uint32_t header = new_block();
        blocks_[cur].succ.push_back(header);
        blocks_[header].stmts.push_back(s.id);
        const std::uint32_t body_entry = new_block();
        blocks_[header].succ.push_back(body_entry);
        const std::uint32_t body_exit =
            build_seq(s.body, body_entry, s.id, s.id, depth + 1);
        blocks_[body_exit].succ.push_back(header);  // back edge
        const std::uint32_t after = new_block();
        blocks_[header].succ.push_back(after);  // loop exit
        cur = after;
        break;
      }
      case StmtKind::If: {
        const std::uint32_t cond = new_block();
        blocks_[cur].succ.push_back(cond);
        blocks_[cond].stmts.push_back(s.id);
        const std::uint32_t then_entry = new_block();
        blocks_[cond].succ.push_back(then_entry);
        const std::uint32_t then_exit =
            build_seq(s.body, then_entry, loop, s.id, depth);
        const std::uint32_t after = new_block();
        blocks_[then_exit].succ.push_back(after);
        if (s.else_body.empty()) {
          blocks_[cond].succ.push_back(after);
        } else {
          const std::uint32_t else_entry = new_block();
          blocks_[cond].succ.push_back(else_entry);
          const std::uint32_t else_exit =
              build_seq(s.else_body, else_entry, loop, s.id, depth);
          blocks_[else_exit].succ.push_back(after);
        }
        cur = after;
        break;
      }
      case StmtKind::Barrier:
        barriers_.push_back(s.id);
        // A barrier ends the block (it is a global synchronization point).
        blocks_[cur].stmts.push_back(s.id);
        {
          const std::uint32_t after = new_block();
          blocks_[cur].succ.push_back(after);
          cur = after;
        }
        break;
      default:
        blocks_[cur].stmts.push_back(s.id);
        break;
    }
  }
  return cur;
}

AstId Cfg::loop_of(AstId stmt) const {
  auto it = loop_of_.find(stmt);
  return it == loop_of_.end() ? 0 : it->second;
}

AstId Cfg::parent_of(AstId stmt) const {
  auto it = parent_of_.find(stmt);
  return it == parent_of_.end() ? 0 : it->second;
}

int Cfg::depth_of(AstId stmt) const {
  auto it = depth_of_.find(stmt);
  return it == depth_of_.end() ? 0 : it->second;
}

const LoopInfo* Cfg::loop_info(AstId loop) const {
  auto it = loop_info_.find(loop);
  return it == loop_info_.end() ? nullptr : &it->second;
}

std::vector<const LoopInfo*> Cfg::loop_chain(AstId stmt) const {
  std::vector<const LoopInfo*> chain;
  for (AstId cur = loop_of(stmt); cur != 0; cur = loop_of(cur)) {
    if (const LoopInfo* li = loop_info(cur)) chain.push_back(li);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool Cfg::nested_in(AstId inner, AstId outer) const {
  AstId cur = loop_of(inner);
  while (cur != 0) {
    if (cur == outer) return true;
    cur = loop_of(cur);
  }
  return false;
}

}  // namespace cico::lang
