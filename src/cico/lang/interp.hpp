// MiniPar interpreter: binds a parsed program to a simulated machine and
// executes it on every node.
//
// Shared arrays become labelled SharedHeap regions (the paper's labelling
// macro, applied automatically); every array access is a simulated shared
// load/store whose PcId is interned per AST node, so the resulting trace
// maps straight back to source statements.  Directive statements map to
// the runtime's CICO operations, which means an ANNOTATED program -- the
// source annotator's output -- runs directly and its annotations act as
// Dir1SW memory-system directives.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cico/lang/ast.hpp"
#include "cico/sim/machine.hpp"

namespace cico::lang {

/// Thrown for runtime errors in the interpreted program (bad subscript,
/// unknown name, zero step...).
class InterpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class LoadedProgram {
 public:
  /// Evaluates const declarations, allocates every shared array on the
  /// machine's heap, interns access-site PcIds.  The Program must outlive
  /// the LoadedProgram.
  LoadedProgram(const Program& src, sim::Machine& m);

  /// Per-node program body: pass to Machine::run.
  void run_node(sim::Proc& p);

  /// Post-run value inspection (host-side, no simulation).
  [[nodiscard]] double value(std::string_view array, std::size_t i,
                             std::size_t j = 0) const;

  /// Base address / extents of a shared array.
  [[nodiscard]] Addr array_base(std::string_view name) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> array_dims(
      std::string_view name) const;

  /// Trace-PC <-> AST-node mapping (what the source annotator consumes).
  [[nodiscard]] PcId pc_for(AstId id) const;
  [[nodiscard]] AstId ast_for(PcId pc) const;

  [[nodiscard]] double const_value(std::string_view name) const;

 private:
  struct ArrayInfo {
    Addr base = 0;
    std::size_t d0 = 0, d1 = 1;  // d1 == 1 for 1-D arrays
    bool two_d = false;
    std::unique_ptr<std::atomic<double>[]> data;
  };

  struct Frame;  // private-variable scope (defined in interp.cpp)

  const ArrayInfo& array(std::string_view name, SrcLoc loc) const;
  [[nodiscard]] Addr addr_of(const ArrayInfo& a, std::size_t i,
                             std::size_t j, SrcLoc loc) const;

  double eval(sim::Proc& p, Frame& f, const Expr& e);
  void exec_block(sim::Proc& p, Frame& f,
                  const std::vector<StmtPtr>& stmts);
  void exec(sim::Proc& p, Frame& f, const Stmt& s);
  void directive(sim::Proc& p, Frame& f, const Stmt& s);
  [[nodiscard]] std::size_t index_of(double v, std::size_t extent,
                                     SrcLoc loc) const;

  const Program* prog_;
  sim::Machine* machine_;
  std::unordered_map<std::string, double> consts_;
  std::unordered_map<std::string, ArrayInfo> arrays_;
  std::vector<PcId> pc_by_ast_;
  std::unordered_map<PcId, AstId> ast_by_pc_;
};

}  // namespace cico::lang
