// Static program structure: control-flow graph and loop tree.
//
// Cachier "parses the unannotated target program and constructs its
// abstract syntax tree and control flow graph" (section 3.4) and "uses
// the program's abstract syntax tree to analyze its loop structure"
// (section 4.3).  The CFG here is statement-level basic blocks with
// fall/branch/back edges; the loop tree records For-nesting and, for each
// statement, its innermost enclosing loop -- what the annotator needs to
// place and collapse annotations.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cico/lang/ast.hpp"

namespace cico::lang {

struct BasicBlock {
  std::uint32_t id = 0;
  std::vector<AstId> stmts;          ///< straight-line statement ids
  std::vector<std::uint32_t> succ;   ///< successor block ids
  std::vector<std::uint32_t> pred;   ///< predecessor block ids
};

/// Induction facts for one For loop: the variable it binds, its bound
/// expressions, and its position in the loop tree.  Bounds stay as
/// expressions -- clients fold them under whatever environment they have
/// (the static planner uses analysis::eval_affine outer-to-inner).
struct LoopInfo {
  AstId id = 0;
  std::string var;
  const Expr* lo = nullptr;
  const Expr* hi = nullptr;
  const Expr* step = nullptr;  ///< null = step 1
  AstId parent_loop = 0;       ///< innermost enclosing For (0 = none)
  int depth = 0;               ///< 0 = outermost
};

class Cfg {
 public:
  /// Builds CFG + loop tree for the parallel body of `p`.
  explicit Cfg(const Program& p);

  [[nodiscard]] const std::vector<BasicBlock>& blocks() const { return blocks_; }
  [[nodiscard]] std::uint32_t entry() const { return 0; }
  /// The block execution falls into after the last statement (the unique
  /// block with no successors that ends the parallel body).
  [[nodiscard]] std::uint32_t exit() const { return exit_; }

  /// Innermost enclosing For statement of a statement (0 = none).
  [[nodiscard]] AstId loop_of(AstId stmt) const;

  /// Loop nesting depth of a statement (0 = top level).
  [[nodiscard]] int depth_of(AstId stmt) const;

  /// Direct parent statement (For/If) of a statement, 0 if top level.
  [[nodiscard]] AstId parent_of(AstId stmt) const;

  /// All For statements, outermost first.
  [[nodiscard]] const std::vector<AstId>& loops() const { return loops_; }

  /// Induction facts for a For statement (nullptr for non-loop ids).
  [[nodiscard]] const LoopInfo* loop_info(AstId loop) const;

  /// Enclosing For loops of a statement, outermost first (empty at top
  /// level; a For's chain excludes itself).
  [[nodiscard]] std::vector<const LoopInfo*> loop_chain(AstId stmt) const;

  /// Barrier statements in source order.
  [[nodiscard]] const std::vector<AstId>& barriers() const { return barriers_; }

  /// Is `inner` nested (transitively) inside loop `outer`?
  [[nodiscard]] bool nested_in(AstId inner, AstId outer) const;

 private:
  std::uint32_t new_block();
  /// Returns the block that execution falls into after the sequence.
  std::uint32_t build_seq(const std::vector<StmtPtr>& stmts,
                          std::uint32_t cur, AstId loop, AstId parent,
                          int depth);

  std::vector<BasicBlock> blocks_;
  std::uint32_t exit_ = 0;
  std::vector<AstId> loops_;
  std::vector<AstId> barriers_;
  std::unordered_map<AstId, LoopInfo> loop_info_;
  std::unordered_map<AstId, AstId> loop_of_;
  std::unordered_map<AstId, AstId> parent_of_;
  std::unordered_map<AstId, int> depth_of_;
};

}  // namespace cico::lang
