// MiniPar unparser: pretty-prints a Program back to parseable source.
// Cachier "produces an annotated target program by unparsing this
// modified abstract syntax tree" (section 3.4).  Synthesized annotation
// statements are marked with a trailing comment so annotated output is
// readable, exactly the presentation goal of section 4.3.
#pragma once

#include <string>

#include "cico/lang/ast.hpp"

namespace cico::lang {

struct UnparseOptions {
  int indent_width = 2;
  /// Mark annotator-inserted statements with "# <cachier>".
  bool mark_synthesized = true;
};

[[nodiscard]] std::string unparse(const Program& p, UnparseOptions opt = {});
[[nodiscard]] std::string unparse_expr(const Expr& e);
[[nodiscard]] std::string unparse_ref(const ArrayRef& r);

}  // namespace cico::lang
