#include "cico/lang/parser.hpp"

namespace cico::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  Program run() {
    Program p;
    prog_ = &p;
    while (!at(Tok::KwParallel)) {
      if (at(Tok::Eof)) fail("expected 'parallel' block");
      p.decls.push_back(decl());
    }
    expect(Tok::KwParallel);
    p.body = block({Tok::KwEnd});
    expect(Tok::KwEnd);
    expect(Tok::Eof);
    return p;
  }

 private:
  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
  Token eat() { return toks_[pos_++]; }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + ", got " + std::string(tok_name(cur().kind)),
                     cur().line, cur().col);
  }
  Token expect(Tok k) {
    if (!at(k)) fail("expected " + std::string(tok_name(k)));
    return eat();
  }

  AstId fresh() { return prog_->next_id++; }

  StmtPtr new_stmt(StmtKind k) {
    auto s = std::make_unique<Stmt>();
    s->id = fresh();
    s->kind = k;
    s->loc = SrcLoc{cur().line, cur().col};
    return s;
  }
  ExprPtr new_expr(ExprKind k) {
    auto e = std::make_unique<Expr>();
    e->id = fresh();
    e->kind = k;
    e->loc = SrcLoc{cur().line, cur().col};
    return e;
  }

  StmtPtr decl() {
    if (at(Tok::KwShared)) {
      auto s = new_stmt(StmtKind::SharedDecl);
      eat();
      expect(Tok::KwReal);
      s->name = expect(Tok::Ident).text;
      expect(Tok::LBracket);
      s->dims.push_back(expr());
      if (at(Tok::Comma)) {
        eat();
        s->dims.push_back(expr());
      }
      expect(Tok::RBracket);
      expect(Tok::Semicolon);
      return s;
    }
    if (at(Tok::KwConst)) {
      auto s = new_stmt(StmtKind::ConstDecl);
      eat();
      s->name = expect(Tok::Ident).text;
      expect(Tok::Assign);
      s->rhs = expr();
      expect(Tok::Semicolon);
      return s;
    }
    fail("expected 'shared' or 'const' declaration");
  }

  std::vector<StmtPtr> block(std::initializer_list<Tok> stops) {
    std::vector<StmtPtr> out;
    for (;;) {
      for (Tok s : stops) {
        if (at(s)) return out;
      }
      if (at(Tok::Eof)) fail("unterminated block");
      out.push_back(stmt());
    }
  }

  StmtPtr stmt() {
    switch (cur().kind) {
      case Tok::KwFor: {
        auto s = new_stmt(StmtKind::For);
        eat();
        s->name = expect(Tok::Ident).text;
        expect(Tok::Assign);
        s->lo = expr();
        expect(Tok::KwTo);
        s->hi = expr();
        if (at(Tok::KwStep)) {
          eat();
          s->step = expr();
        }
        expect(Tok::KwDo);
        s->body = block({Tok::KwOd});
        expect(Tok::KwOd);
        return s;
      }
      case Tok::KwIf: {
        auto s = new_stmt(StmtKind::If);
        eat();
        s->cond = expr();
        expect(Tok::KwThen);
        s->body = block({Tok::KwElse, Tok::KwFi});
        if (at(Tok::KwElse)) {
          eat();
          s->else_body = block({Tok::KwFi});
        }
        expect(Tok::KwFi);
        return s;
      }
      case Tok::KwBarrier: {
        auto s = new_stmt(StmtKind::Barrier);
        eat();
        expect(Tok::Semicolon);
        return s;
      }
      case Tok::KwLock:
      case Tok::KwUnlock: {
        auto s = new_stmt(cur().kind == Tok::KwLock ? StmtKind::Lock
                                                    : StmtKind::Unlock);
        eat();
        s->ref = std::make_unique<ArrayRef>(array_ref());
        expect(Tok::Semicolon);
        return s;
      }
      case Tok::KwCheckOutX:
      case Tok::KwCheckOutS:
      case Tok::KwCheckIn:
      case Tok::KwPrefetchX:
      case Tok::KwPrefetchS: {
        auto s = new_stmt(StmtKind::Directive);
        switch (cur().kind) {
          case Tok::KwCheckOutX: s->dir = sim::DirectiveKind::CheckOutX; break;
          case Tok::KwCheckOutS: s->dir = sim::DirectiveKind::CheckOutS; break;
          case Tok::KwCheckIn: s->dir = sim::DirectiveKind::CheckIn; break;
          case Tok::KwPrefetchX: s->dir = sim::DirectiveKind::PrefetchX; break;
          default: s->dir = sim::DirectiveKind::PrefetchS; break;
        }
        eat();
        s->ref = std::make_unique<ArrayRef>(array_ref());
        expect(Tok::Semicolon);
        return s;
      }
      case Tok::KwCompute: {
        auto s = new_stmt(StmtKind::Compute);
        eat();
        s->rhs = expr();
        expect(Tok::Semicolon);
        return s;
      }
      case Tok::KwPrivate: {
        auto s = new_stmt(StmtKind::Private);
        eat();
        s->name = expect(Tok::Ident).text;
        expect(Tok::Assign);
        s->rhs = expr();
        expect(Tok::Semicolon);
        return s;
      }
      case Tok::Ident: {
        auto s = new_stmt(StmtKind::Assign);
        s->name = eat().text;
        if (at(Tok::LBracket)) {
          eat();
          s->subs.push_back(expr());
          if (at(Tok::Comma)) {
            eat();
            s->subs.push_back(expr());
          }
          expect(Tok::RBracket);
        }
        expect(Tok::Assign);
        s->rhs = expr();
        expect(Tok::Semicolon);
        return s;
      }
      default:
        fail("expected a statement");
    }
  }

  ArrayRef array_ref() {
    ArrayRef r;
    r.id = fresh();
    r.loc = SrcLoc{cur().line, cur().col};
    r.name = expect(Tok::Ident).text;
    expect(Tok::LBracket);
    r.ranges.push_back(range());
    if (at(Tok::Comma)) {
      eat();
      r.ranges.push_back(range());
    }
    expect(Tok::RBracket);
    return r;
  }

  RangeExpr range() {
    RangeExpr r;
    r.lo = expr();
    if (at(Tok::Colon)) {
      eat();
      r.hi = expr();
    }
    return r;
  }

  // --- expressions, precedence climbing ---
  ExprPtr expr() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr e = and_expr();
    while (at(Tok::OrOr)) {
      eat();
      e = binary(BinOp::Or, std::move(e), and_expr());
    }
    return e;
  }
  ExprPtr and_expr() {
    ExprPtr e = cmp_expr();
    while (at(Tok::AndAnd)) {
      eat();
      e = binary(BinOp::And, std::move(e), cmp_expr());
    }
    return e;
  }
  ExprPtr cmp_expr() {
    ExprPtr e = add_expr();
    for (;;) {
      BinOp op;
      switch (cur().kind) {
        case Tok::Eq: op = BinOp::Eq; break;
        case Tok::Ne: op = BinOp::Ne; break;
        case Tok::Lt: op = BinOp::Lt; break;
        case Tok::Le: op = BinOp::Le; break;
        case Tok::Gt: op = BinOp::Gt; break;
        case Tok::Ge: op = BinOp::Ge; break;
        default: return e;
      }
      eat();
      e = binary(op, std::move(e), add_expr());
    }
  }
  ExprPtr add_expr() {
    ExprPtr e = mul_expr();
    for (;;) {
      if (at(Tok::Plus)) {
        eat();
        e = binary(BinOp::Add, std::move(e), mul_expr());
      } else if (at(Tok::Minus)) {
        eat();
        e = binary(BinOp::Sub, std::move(e), mul_expr());
      } else {
        return e;
      }
    }
  }
  ExprPtr mul_expr() {
    ExprPtr e = unary_expr();
    for (;;) {
      BinOp op;
      if (at(Tok::Star)) op = BinOp::Mul;
      else if (at(Tok::Slash)) op = BinOp::Div;
      else if (at(Tok::Percent)) op = BinOp::Mod;
      else return e;
      eat();
      e = binary(op, std::move(e), unary_expr());
    }
  }
  ExprPtr unary_expr() {
    if (at(Tok::Minus) || at(Tok::Not)) {
      auto e = new_expr(ExprKind::Unary);
      e->uop = at(Tok::Minus) ? UnOp::Neg : UnOp::Not;
      eat();
      e->args.push_back(unary_expr());
      return e;
    }
    return primary();
  }
  ExprPtr primary() {
    switch (cur().kind) {
      case Tok::Number: {
        auto e = new_expr(ExprKind::Number);
        e->number = eat().number;
        return e;
      }
      case Tok::KwPid: {
        auto e = new_expr(ExprKind::Pid);
        eat();
        return e;
      }
      case Tok::KwNprocs: {
        auto e = new_expr(ExprKind::Nprocs);
        eat();
        return e;
      }
      case Tok::KwMin:
      case Tok::KwMax: {
        auto e = new_expr(ExprKind::MinMax);
        e->is_min = at(Tok::KwMin);
        eat();
        expect(Tok::LParen);
        e->args.push_back(expr());
        expect(Tok::Comma);
        e->args.push_back(expr());
        expect(Tok::RParen);
        return e;
      }
      case Tok::LParen: {
        eat();
        ExprPtr e = expr();
        expect(Tok::RParen);
        return e;
      }
      case Tok::Ident: {
        auto e = new_expr(ExprKind::Var);
        e->name = eat().text;
        if (at(Tok::LBracket)) {
          e->kind = ExprKind::Index;
          eat();
          e->args.push_back(expr());
          if (at(Tok::Comma)) {
            eat();
            e->args.push_back(expr());
          }
          expect(Tok::RBracket);
        }
        return e;
      }
      default:
        fail("expected an expression");
    }
  }

  ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
    auto e = new_expr(ExprKind::Binary);
    e->bop = op;
    e->args.push_back(std::move(a));
    e->args.push_back(std::move(b));
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  Program* prog_ = nullptr;
};

}  // namespace

Program parse(std::string_view src) { return Parser(src).run(); }

}  // namespace cico::lang
