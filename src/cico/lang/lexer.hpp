// MiniPar lexer: hand-written scanner producing the token stream the
// recursive-descent parser consumes.  `#` starts a comment to end of line.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "cico/lang/token.hpp"

namespace cico::lang {

/// Thrown on any lexical or syntactic error, with line/column context.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line, int col)
      : std::runtime_error(msg + " (line " + std::to_string(line) + ", col " +
                           std::to_string(col) + ")"),
        line_(line),
        col_(col) {}
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  int line_;
  int col_;
};

/// Tokenizes the whole source (the final token is always Eof).
[[nodiscard]] std::vector<Token> lex(std::string_view src);

}  // namespace cico::lang
