#include "cico/analysis/affine.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "cico/lang/unparse.hpp"

namespace cico::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// MiniPar's % (the interpreter uses fmod semantics on doubles).
double minipar_mod(double a, double b) { return std::fmod(a, b); }

std::optional<double> eval_const(const lang::Expr& e, const ConstEnv& env) {
  const auto a = eval_affine(e, env);
  if (!a || a->p != 0) return std::nullopt;
  return a->c;
}

/// Canonical number rendering: integers without a fraction, everything
/// else with enough digits to round-trip.
std::string num_str(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string affine_str(const Affine& a) {
  if (a.p == 0) return num_str(a.c);
  std::string s = num_str(a.p) + "*pid";
  if (a.c != 0) s += "+" + num_str(a.c);
  return s;
}

std::string bound_key(const lang::Expr& e, const ConstEnv& env) {
  if (const auto a = eval_affine(e, env)) return affine_str(*a);
  return "~" + lang::unparse_expr(e);  // conservative textual fallback
}

}  // namespace

// ---------------------------------------------------------------------------
// ConstEnv
// ---------------------------------------------------------------------------

ConstEnv ConstEnv::from(const lang::Program& p, std::optional<double> nprocs) {
  ConstEnv env;
  env.nprocs = nprocs;
  for (const auto& d : p.decls) {
    if (d->kind != lang::StmtKind::ConstDecl || !d->rhs) continue;
    if (const auto v = eval_const(*d->rhs, env)) env.consts[d->name] = *v;
  }
  return env;
}

// ---------------------------------------------------------------------------
// Affine folding
// ---------------------------------------------------------------------------

std::optional<Affine> eval_affine(const lang::Expr& e, const ConstEnv& env) {  // NOLINT(readability-function-cognitive-complexity)
  using lang::ExprKind;
  switch (e.kind) {
    case ExprKind::Number:
      return Affine{e.number, 0};
    case ExprKind::Pid:
      return Affine{0, 1};
    case ExprKind::Nprocs:
      if (env.nprocs) return Affine{*env.nprocs, 0};
      return std::nullopt;
    case ExprKind::Var: {
      const auto it = env.consts.find(e.name);
      if (it == env.consts.end()) return std::nullopt;
      return Affine{it->second, 0};
    }
    case ExprKind::Unary: {
      if (e.uop != lang::UnOp::Neg) return std::nullopt;
      const auto a = eval_affine(*e.args[0], env);
      if (!a) return std::nullopt;
      return Affine{-a->c, -a->p};
    }
    case ExprKind::MinMax: {
      const auto a = eval_affine(*e.args[0], env);
      const auto b = eval_affine(*e.args[1], env);
      if (!a || !b) return std::nullopt;
      if (*a == *b) return a;
      if (a->p != 0 || b->p != 0) return std::nullopt;  // pid-dependent winner
      return Affine{e.is_min ? std::min(a->c, b->c) : std::max(a->c, b->c), 0};
    }
    case ExprKind::Binary: {
      const auto a = eval_affine(*e.args[0], env);
      const auto b = eval_affine(*e.args[1], env);
      if (!a || !b) return std::nullopt;
      switch (e.bop) {
        case lang::BinOp::Add:
          return Affine{a->c + b->c, a->p + b->p};
        case lang::BinOp::Sub:
          return Affine{a->c - b->c, a->p - b->p};
        case lang::BinOp::Mul:
          if (b->p == 0) return Affine{a->c * b->c, a->p * b->c};
          if (a->p == 0) return Affine{a->c * b->c, a->c * b->p};
          return std::nullopt;  // pid*pid is not affine
        case lang::BinOp::Div:
          if (b->p != 0 || b->c == 0) return std::nullopt;
          return Affine{a->c / b->c, a->p / b->c};
        case lang::BinOp::Mod:
          if (a->p != 0 || b->p != 0 || b->c == 0) return std::nullopt;
          return Affine{minipar_mod(a->c, b->c), 0};
        default:
          return std::nullopt;  // comparisons / logic are not ranges
      }
    }
    case ExprKind::Index:
      return std::nullopt;  // data-dependent
  }
  return std::nullopt;
}

std::string region_key(const lang::ArrayRef& ref, const ConstEnv& env) {
  std::string key = ref.name + "[";
  bool first = true;
  for (const lang::RangeExpr& r : ref.ranges) {
    if (!first) key += ",";
    first = false;
    const std::string lo = r.lo ? bound_key(*r.lo, env) : "?";
    key += lo + ":" + (r.hi ? bound_key(*r.hi, env) : lo);
  }
  key += "]";
  return key;
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

Interval Interval::top() { return {-kInf, kInf}; }

bool Interval::is_top() const { return lo == -kInf && hi == kInf; }

bool Interval::subset_of(const Interval& o) const {
  if (empty()) return true;
  if (o.empty()) return false;
  return o.lo <= lo && hi <= o.hi;
}

Interval Interval::join(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::widen(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return {o.lo < lo ? -kInf : lo, o.hi > hi ? kInf : hi};
}

Interval Interval::add(const Interval& o) const {
  if (empty() || o.empty()) return {};
  return {lo + o.lo, hi + o.hi};
}

Interval Interval::sub(const Interval& o) const {
  if (empty() || o.empty()) return {};
  return {lo - o.hi, hi - o.lo};
}

Interval Interval::mul(const Interval& o) const {
  if (empty() || o.empty()) return {};
  const double c[] = {lo * o.lo, lo * o.hi, hi * o.lo, hi * o.hi};
  Interval r{c[0], c[0]};
  for (double v : c) {
    if (std::isnan(v)) return top();  // 0 * inf corner
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}

Interval Interval::div(const Interval& o) const {
  if (empty() || o.empty()) return {};
  if (o.lo <= 0 && o.hi >= 0) return top();
  const double c[] = {lo / o.lo, lo / o.hi, hi / o.lo, hi / o.hi};
  Interval r{c[0], c[0]};
  for (double v : c) {
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}

Interval Interval::mod(const Interval& o) const {
  if (empty() || o.empty()) return {};
  if (!o.is_point() || o.lo == 0) return top();
  const double m = std::abs(o.lo);
  if (is_point() && !is_top()) return point(minipar_mod(lo, m * (o.lo < 0 ? -1 : 1)));
  // fmod keeps the dividend's sign: non-negative dividends land in
  // [0, m); mixed-sign hulls span (-m, m).
  if (lo >= 0) return {0, std::min(hi, m - 1 < 0 ? 0 : m - 1)};
  return {-(m - 1), m - 1};
}

Interval Interval::neg() const {
  if (empty()) return {};
  return {-hi, -lo};
}

Interval Interval::min_with(const Interval& o) const {
  if (empty() || o.empty()) return {};
  return {std::min(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::max_with(const Interval& o) const {
  if (empty() || o.empty()) return {};
  return {std::max(lo, o.lo), std::max(hi, o.hi)};
}

}  // namespace cico::analysis
