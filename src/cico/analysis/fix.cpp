#include "cico/analysis/fix.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cico/analysis/typestate.hpp"

namespace cico::analysis {
namespace {

using lang::AstId;
using lang::Program;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtPtr;

/// Everything one lint round asked for, deduplicated.  Precedence:
/// deletion beats any other action on the same statement, and an X
/// insertion beats an S insertion at the same site (a write implies the
/// read coverage).
struct PassPlan {
  std::set<AstId> del;
  std::set<std::string> flip;  ///< arrays whose check_out_S becomes X
  std::map<AstId, std::map<std::string, sim::DirectiveKind>> ins;
  std::set<AstId> delay;  ///< check_ins to move to their epoch's end
  std::map<AstId, std::vector<AstId>> hoist;  ///< loop id -> directive ids
  std::set<AstId> hoisted;                    ///< union of hoist values
  std::set<std::string> end_ci;               ///< program-end check_ins

  [[nodiscard]] bool empty() const {
    return del.empty() && flip.empty() && ins.empty() && delay.empty() &&
           hoist.empty() && end_ci.empty();
  }
};

PassPlan build_plan(const LintResult& lint) {
  PassPlan plan;
  for (const Diagnostic& d : lint.diagnostics) {
    switch (d.rule) {
      case Rule::MissedCheckoutWrite:
        if (d.stmt_id != 0) {
          plan.ins[d.stmt_id][d.array] = sim::DirectiveKind::CheckOutX;
        }
        break;
      case Rule::MissedCheckoutRead:
        if (d.stmt_id != 0) {
          auto& kind = plan.ins[d.stmt_id]
                           .emplace(d.array, sim::DirectiveKind::CheckOutS)
                           .first->second;
          (void)kind;  // an existing CheckOutX entry wins
        }
        break;
      case Rule::WriteUnderShared:
        plan.flip.insert(d.array);
        break;
      case Rule::DoubleCheckout:
      case Rule::CheckinWithoutCheckout:
      case Rule::PrefetchAfterUse:
        if (d.stmt_id != 0) plan.del.insert(d.stmt_id);
        break;
      case Rule::CheckoutLeak:
        plan.end_ci.insert(d.array);
        break;
      case Rule::EarlyCheckin:
        if (d.stmt_id != 0) plan.delay.insert(d.stmt_id);
        break;
      case Rule::RedundantLoopCheckout:
        if (d.stmt_id != 0 && d.aux_id != 0) {
          plan.hoist[d.aux_id].push_back(d.stmt_id);
          plan.hoisted.insert(d.stmt_id);
        }
        break;
    }
  }
  // Deleted statements take no other action.
  for (AstId id : plan.del) {
    plan.ins.erase(id);
    plan.delay.erase(id);
    if (plan.hoisted.erase(id) != 0) {
      for (auto& [loop, dirs] : plan.hoist) {
        std::erase(dirs, id);
      }
    }
  }
  return plan;
}

/// One rewrite pass over the statement tree.
class Applier {
 public:
  Applier(Program& p, const PassPlan& plan, std::vector<std::string>& log)
      : p_(p), plan_(plan), log_(log) {}

  void run() {
    walk(p_.body);
    for (const std::string& array : plan_.end_ci) {
      if (StmtPtr ci = make_whole_array(sim::DirectiveKind::CheckIn, array)) {
        p_.body.push_back(std::move(ci));
        ++applied_;
        log_.push_back("CICO006: appended program-end check_in of '" + array +
                       "'");
      }
    }
  }

  [[nodiscard]] std::size_t applied() const { return applied_; }

 private:
  /// `dir A[0:d0-1(, 0:d1-1)]` from the shared declaration's dim exprs.
  /// Null when the array has no declared dims (nothing to build).
  StmtPtr make_whole_array(sim::DirectiveKind kind, const std::string& array) {
    const Stmt* decl = nullptr;
    for (const auto& d : p_.decls) {
      if (d->kind == StmtKind::SharedDecl && d->name == array) {
        decl = d.get();
        break;
      }
    }
    if (decl == nullptr || decl->dims.empty()) return nullptr;
    lang::ArrayRef ref;
    ref.id = p_.next_id++;
    ref.name = array;
    for (const auto& dim : decl->dims) {
      lang::RangeExpr r;
      r.lo = lang::make_number(p_, 0);
      r.hi = lang::make_binary(p_, lang::BinOp::Sub, dim->clone(),
                               lang::make_number(p_, 1));
      ref.ranges.push_back(std::move(r));
    }
    StmtPtr dir = lang::make_directive(p_, kind, std::move(ref));
    // Fixed output is user source: it must survive a parse/unparse
    // round-trip byte-for-byte (the `--fix` idempotence contract), and
    // the parser does not preserve the synthesized marker comment.
    dir->synthesized = false;
    return dir;
  }

  void walk(std::vector<StmtPtr>& block) {  // NOLINT(misc-no-recursion)
    std::vector<StmtPtr> out;
    std::vector<StmtPtr> pending;  // delayed check_ins riding to the barrier
    for (auto& sp : block) {
      const AstId id = sp->id;
      if (plan_.del.contains(id)) {
        ++applied_;
        log_.push_back("deleted directive at line " +
                       std::to_string(sp->loc.line) + " ('" +
                       (sp->ref ? sp->ref->name : sp->name) + "')");
        continue;
      }
      walk(sp->body);
      walk(sp->else_body);
      if (plan_.hoisted.contains(id)) {
        stash_[id] = std::move(sp);
        continue;
      }
      if (auto it = plan_.hoist.find(id); it != plan_.hoist.end()) {
        for (AstId did : it->second) {
          auto st = stash_.find(did);
          if (st == stash_.end()) continue;
          log_.push_back("CICO008: hoisted checkout of '" +
                         (st->second->ref ? st->second->ref->name
                                          : std::string()) +
                         "' out of the loop at line " +
                         std::to_string(sp->loc.line));
          out.push_back(std::move(st->second));
          stash_.erase(st);
          ++applied_;
        }
      }
      if (auto it = plan_.ins.find(id); it != plan_.ins.end()) {
        for (const auto& [array, kind] : it->second) {
          if (StmtPtr dir = make_whole_array(kind, array)) {
            log_.push_back(
                std::string(kind == sim::DirectiveKind::CheckOutX ? "CICO001"
                                                                  : "CICO002") +
                ": inserted " +
                (kind == sim::DirectiveKind::CheckOutX ? "check_out_X"
                                                       : "check_out_S") +
                " of '" + array + "' before line " +
                std::to_string(sp->loc.line));
            out.push_back(std::move(dir));
            ++applied_;
          }
        }
      }
      if (sp->kind == StmtKind::Directive &&
          sp->dir == sim::DirectiveKind::CheckOutS && sp->ref &&
          plan_.flip.contains(sp->ref->name)) {
        sp->dir = sim::DirectiveKind::CheckOutX;
        ++applied_;
        log_.push_back("CICO003: strengthened check_out_S of '" +
                       sp->ref->name + "' to check_out_X at line " +
                       std::to_string(sp->loc.line));
      }
      if (plan_.delay.contains(id)) {
        ++applied_;
        log_.push_back("CICO007: moved early check_in of '" +
                       (sp->ref ? sp->ref->name : std::string()) +
                       "' from line " + std::to_string(sp->loc.line) +
                       " to its epoch's end");
        pending.push_back(std::move(sp));
        continue;
      }
      if (sp->kind == StmtKind::Barrier) {
        for (auto& d : pending) out.push_back(std::move(d));
        pending.clear();
      }
      out.push_back(std::move(sp));
    }
    for (auto& d : pending) out.push_back(std::move(d));
    block = std::move(out);
  }

  Program& p_;
  const PassPlan& plan_;
  std::vector<std::string>& log_;
  std::map<AstId, StmtPtr> stash_;
  std::size_t applied_ = 0;
};

}  // namespace

FixResult apply_fixes(const lang::Program& p, const FixOptions& opt) {
  FixResult res;
  res.program = p.clone();
  res.lint = lint(res.program);
  while (res.passes < opt.max_passes && !res.lint.diagnostics.empty()) {
    const PassPlan plan = build_plan(res.lint);
    if (plan.empty()) break;  // nothing here is machine-fixable
    Applier ap(res.program, plan, res.log);
    ap.run();
    ++res.passes;
    if (ap.applied() == 0) break;  // no progress; avoid spinning
    res.applied += ap.applied();
    res.lint = lint(res.program);
  }
  return res;
}

}  // namespace cico::analysis
