// Machine-applicable lint fixes (`cachier lint --fix`).
//
// Every CICO rule's hint has a mechanical realization, keyed by the
// Diagnostic fix anchors (stmt_id / aux_id):
//
//   CICO001  insert `check_out_X A[whole]` before the offending write
//   CICO002  insert `check_out_S A[whole]` before the offending read
//   CICO003  strengthen the array's `check_out_S` directives to X
//   CICO004  delete the redundant re-checkout
//   CICO005  delete the unmatched check_in
//   CICO006  append `check_in A[whole]` at program end
//   CICO007  move the early check_in to the end of its epoch (before the
//            next barrier in its block, or the end of the block)
//   CICO008  hoist the loop-invariant checkout out of the loop (aux_id)
//   CICO009  delete the late prefetch
//
// Fixes only ever strengthen, add, delete or delay annotations -- all
// protocol-safe moves (annotations are hints) -- so applying them can
// never break a program that ran correctly.  The driver iterates
// lint -> apply -> lint until the program is clean, nothing more
// applies, or the pass budget runs out; one fix can expose another
// (hoisting out of an inner loop may be loop-invariant again in the
// outer loop), which is why a single pass is not enough.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cico/analysis/diagnostics.hpp"
#include "cico/lang/ast.hpp"

namespace cico::analysis {

struct FixOptions {
  /// Upper bound on lint -> apply rounds (safety net against a fix
  /// oscillation bug; well-formed inputs converge in 2-3 passes).
  std::size_t max_passes = 8;
};

struct FixResult {
  lang::Program program;        ///< fixed copy of the input
  std::size_t applied = 0;      ///< individual fixes applied, all passes
  std::size_t passes = 0;       ///< lint -> apply rounds executed
  std::vector<std::string> log; ///< one line per applied fix
  /// Lint of the fixed program.  Clean when every diagnostic had an
  /// applicable fix; residual diagnostics mean some finding has no
  /// mechanical repair (or the pass budget ran out).
  LintResult lint;
};

/// Apply machine fixes for every diagnostic with a known repair.
[[nodiscard]] FixResult apply_fixes(const lang::Program& p,
                                    const FixOptions& opt = {});

}  // namespace cico::analysis
