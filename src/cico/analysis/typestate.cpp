#include "cico/analysis/typestate.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "cico/analysis/affine.hpp"
#include "cico/analysis/dataflow.hpp"
#include "cico/lang/cfg.hpp"
#include "cico/lang/unparse.hpp"

namespace cico::analysis {
namespace {

using lang::Stmt;
using lang::StmtKind;

// ---------------------------------------------------------------------------
// Typestate lattice
// ---------------------------------------------------------------------------

enum class Chk : std::uint8_t { Idle, CoX, CoS, Top };

constexpr int kRefNone = 0;      // no checkout region recorded
constexpr int kRefConflict = -1; // different regions on different paths

struct ArrState {
  Chk chk = Chk::Idle;
  bool may_out = false;    // may be checked out on some path
  bool used_may = false;   // accessed this epoch on some path
  bool used_must = false;  // accessed this epoch on every path
  bool co_epoch = false;   // checked out this epoch on every path
  bool locked = false;     // lock held on every path
  int ref = kRefNone;      // interned region text of the live checkout
};

/// Whole-program state: one ArrState per shared array.  `reached` false is
/// the solver's bottom (identity for join), so must-bits need no special
/// "start at true" encoding.
struct TState {
  bool reached = false;
  std::vector<ArrState> a;
};

struct TypestateDomain {
  using State = TState;

  const lang::Cfg* cfg = nullptr;
  const StmtIndex* stmts = nullptr;
  const SharedArrays* arrays = nullptr;
  /// Region identity per checkout directive (by statement id), interned
  /// from the affine solver's semantic region_key -- `A[0:N-1]` and
  /// `A[0:15]` share an id under `const N = 16`.
  const std::map<lang::AstId, int>* rid_of_stmt = nullptr;

  [[nodiscard]] State init() const { return {}; }
  [[nodiscard]] State boundary() const {
    State s;
    s.reached = true;
    s.a.assign(arrays->size(), ArrState{});
    return s;
  }

  bool join(State& into, const State& from) const {  // NOLINT(readability-function-cognitive-complexity)
    if (!from.reached) return false;
    if (!into.reached) {
      into = from;
      return true;
    }
    bool changed = false;
    for (std::size_t i = 0; i < into.a.size(); ++i) {
      ArrState& t = into.a[i];
      const ArrState& f = from.a[i];
      if (t.chk != f.chk && t.chk != Chk::Top) {
        t.chk = Chk::Top;
        changed = true;
      }
      if (f.may_out && !t.may_out) { t.may_out = true; changed = true; }
      if (f.used_may && !t.used_may) { t.used_may = true; changed = true; }
      if (!f.used_must && t.used_must) { t.used_must = false; changed = true; }
      if (!f.co_epoch && t.co_epoch) { t.co_epoch = false; changed = true; }
      if (!f.locked && t.locked) { t.locked = false; changed = true; }
      if (t.ref != f.ref && t.ref != kRefConflict) {
        t.ref = kRefConflict;
        changed = true;
      }
    }
    return changed;
  }
  bool widen(State& into, const State& from) const { return join(into, from); }

  /// One statement's effect -- shared by the solver and the diagnostic
  /// replay, so the replay sees exactly the solver's states.
  void apply(const Stmt& s, State& st) const {
    switch (s.kind) {
      case StmtKind::Barrier:
        for (ArrState& a : st.a) {
          a.used_may = a.used_must = false;
          a.co_epoch = false;
        }
        break;
      case StmtKind::Directive: {
        const int idx = arrays->index_of(s.ref->name);
        if (idx < 0) break;
        ArrState& a = st.a[static_cast<std::size_t>(idx)];
        switch (s.dir) {
          case sim::DirectiveKind::CheckOutX:
          case sim::DirectiveKind::CheckOutS: {
            a.chk = s.dir == sim::DirectiveKind::CheckOutX ? Chk::CoX : Chk::CoS;
            a.may_out = true;
            a.co_epoch = true;
            auto it = rid_of_stmt->find(s.id);
            a.ref = it == rid_of_stmt->end() ? kRefConflict : it->second;
            break;
          }
          case sim::DirectiveKind::CheckIn:
            a.chk = Chk::Idle;
            a.may_out = false;
            a.co_epoch = false;
            a.ref = kRefNone;
            break;
          case sim::DirectiveKind::PrefetchX:
          case sim::DirectiveKind::PrefetchS:
            break;  // hint only; CICO009 inspects the pre-state
        }
        break;
      }
      case StmtKind::Lock:
      case StmtKind::Unlock: {
        const int idx = arrays->index_of(s.ref->name);
        if (idx >= 0) {
          st.a[static_cast<std::size_t>(idx)].locked =
              s.kind == StmtKind::Lock;
        }
        break;
      }
      default:
        for (const SharedAccess& acc : shared_accesses(s, *arrays)) {
          st.a[acc.array].used_may = true;
          st.a[acc.array].used_must = true;
        }
        break;
    }
  }

  void transfer(std::uint32_t block, State& st) const {
    if (!st.reached) return;
    for (lang::AstId id : cfg->blocks()[block].stmts) {
      if (const Stmt* s = stmts->stmt(id)) apply(*s, st);
    }
  }
};

// ---------------------------------------------------------------------------
// Backward epoch facts: uncovered uses ahead, check_in ahead
// ---------------------------------------------------------------------------

struct EpochFacts {
  std::vector<bool> uncovered_use;  // per array: use ahead, not re-covered
  std::vector<bool> checkin_ahead;  // per array: check_in ahead this epoch
};

struct EpochDomain {
  using State = EpochFacts;

  const lang::Cfg* cfg = nullptr;
  const StmtIndex* stmts = nullptr;
  const SharedArrays* arrays = nullptr;

  [[nodiscard]] State init() const {
    return {std::vector<bool>(arrays->size(), false),
            std::vector<bool>(arrays->size(), false)};
  }
  [[nodiscard]] State boundary() const { return init(); }

  bool join(State& into, const State& from) const {
    bool changed = false;
    for (std::size_t i = 0; i < into.uncovered_use.size(); ++i) {
      if (from.uncovered_use[i] && !into.uncovered_use[i]) {
        into.uncovered_use[i] = true;
        changed = true;
      }
      if (from.checkin_ahead[i] && !into.checkin_ahead[i]) {
        into.checkin_ahead[i] = true;
        changed = true;
      }
    }
    return changed;
  }
  bool widen(State& into, const State& from) const { return join(into, from); }

  /// Reverse effect of one statement (state flows from after to before).
  void apply(const Stmt& s, State& st) const {
    switch (s.kind) {
      case StmtKind::Barrier:
        std::fill(st.uncovered_use.begin(), st.uncovered_use.end(), false);
        std::fill(st.checkin_ahead.begin(), st.checkin_ahead.end(), false);
        break;
      case StmtKind::Directive: {
        const int idx = arrays->index_of(s.ref->name);
        if (idx < 0) break;
        const auto i = static_cast<std::size_t>(idx);
        if (s.dir == sim::DirectiveKind::CheckOutX ||
            s.dir == sim::DirectiveKind::CheckOutS) {
          // A re-checkout covers the uses beyond it, and any check_in
          // beyond it pairs with this checkout, not with earlier code.
          st.uncovered_use[i] = false;
          st.checkin_ahead[i] = false;
        } else if (s.dir == sim::DirectiveKind::CheckIn) {
          st.checkin_ahead[i] = true;
        }
        break;
      }
      default:
        for (const SharedAccess& acc : shared_accesses(s, *arrays)) {
          st.uncovered_use[acc.array] = true;
        }
        break;
    }
  }

  void transfer(std::uint32_t block, State& st) const {
    const auto& ids = cfg->blocks()[block].stmts;
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      if (const Stmt* s = stmts->stmt(*it)) apply(*s, st);
    }
  }
};

// ---------------------------------------------------------------------------
// Rule CICO008 (redundant loop checkout) -- syntactic over the loop tree
// ---------------------------------------------------------------------------

void collect_expr_vars(const lang::Expr* e, std::vector<std::string>& out) {
  if (e == nullptr) return;
  if (e->kind == lang::ExprKind::Var || e->kind == lang::ExprKind::Index) {
    out.push_back(e->name);
  }
  for (const auto& a : e->args) collect_expr_vars(a.get(), out);
}

struct LoopScan {
  std::vector<std::string> defined;  // names (re)defined inside the loop
  bool has_barrier = false;
  bool has_lock = false;
  std::vector<std::string> checked_in;  // arrays checked in inside the loop
};

void scan_loop_body(const std::vector<lang::StmtPtr>& stmts, LoopScan& out) {
  for (const auto& sp : stmts) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case StmtKind::For:
        out.defined.push_back(s.name);
        break;
      case StmtKind::Private:
        out.defined.push_back(s.name);
        break;
      case StmtKind::Assign:
        if (s.subs.empty()) out.defined.push_back(s.name);
        break;
      case StmtKind::Barrier:
        out.has_barrier = true;
        break;
      case StmtKind::Lock:
        out.has_lock = true;
        break;
      case StmtKind::Directive:
        if (s.dir == sim::DirectiveKind::CheckIn) {
          out.checked_in.push_back(s.ref->name);
        }
        break;
      default:
        break;
    }
    scan_loop_body(s.body, out);
    scan_loop_body(s.else_body, out);
  }
}

bool contains_name(const std::vector<std::string>& names,
                   std::string_view name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// lint()
// ---------------------------------------------------------------------------

LintResult lint(const lang::Program& program, const LintOptions& opts) {
  LintResult result;
  const lang::Cfg cfg(program);
  const CfgInfo info(cfg);
  const StmtIndex stmts(program);
  const SharedArrays arrays(program);
  if (arrays.size() == 0) return result;

  // Program-wide facts: which arrays have any check_out / check_in at all
  // (arrays managed by CICO), where the first check_out is (leak anchor),
  // interned region identities (double-checkout).  Regions intern by the
  // affine solver's semantic key, so `A[0:N-1]` and `A[0:15]` collide
  // under `const N = 16`; non-affine bounds fall back to their unparse
  // text, which is conservative (different spellings stay different).
  const ConstEnv env = ConstEnv::from(program);
  std::vector<bool> has_checkout(arrays.size(), false);
  std::vector<bool> has_checkin(arrays.size(), false);
  std::vector<lang::SrcLoc> first_checkout(arrays.size());
  std::map<std::string, int> ref_ids;
  std::map<lang::AstId, int> rid_of_stmt;
  {
    std::vector<const std::vector<lang::StmtPtr>*> todo = {&program.body};
    std::vector<const Stmt*> directives;
    while (!todo.empty()) {
      const auto* seq = todo.back();
      todo.pop_back();
      for (const auto& sp : *seq) {
        if (sp->kind == StmtKind::Directive) directives.push_back(sp.get());
        if (!sp->body.empty()) todo.push_back(&sp->body);
        if (!sp->else_body.empty()) todo.push_back(&sp->else_body);
      }
    }
    // Source order for the "first" checkout and stable intern ids.
    std::sort(directives.begin(), directives.end(),
              [](const Stmt* a, const Stmt* b) {
                return std::tie(a->loc.line, a->loc.col, a->id) <
                       std::tie(b->loc.line, b->loc.col, b->id);
              });
    int next_ref = 1;
    for (const Stmt* d : directives) {
      const int idx = d->ref ? arrays.index_of(d->ref->name) : -1;
      if (idx < 0) continue;
      const auto i = static_cast<std::size_t>(idx);
      if (d->dir == sim::DirectiveKind::CheckIn) {
        has_checkin[i] = true;
        continue;
      }
      if (d->dir != sim::DirectiveKind::CheckOutX &&
          d->dir != sim::DirectiveKind::CheckOutS) {
        continue;
      }
      if (!has_checkout[i]) {
        has_checkout[i] = true;
        first_checkout[i] = d->loc;
      }
      const std::string key = region_key(*d->ref, env);
      const auto [it, fresh] = ref_ids.emplace(key, next_ref);
      if (fresh) ++next_ref;
      rid_of_stmt.emplace(d->id, it->second);
    }
  }

  const TypestateDomain fwd{&cfg, &stmts, &arrays, &rid_of_stmt};
  const auto fsol = solve(info, fwd, Direction::Forward, opts.widen_after);

  const EpochDomain bwd{&cfg, &stmts, &arrays};
  const auto bsol = solve(info, bwd, Direction::Backward, opts.widen_after);

  const auto emit = [&](Rule rule, Severity sev, lang::SrcLoc loc,
                        const std::string& array, std::string msg,
                        std::string hint, lang::AstId stmt_id = 0,
                        lang::AstId aux_id = 0) {
    result.diagnostics.push_back({rule, sev, loc.line, loc.col, array,
                                  std::move(msg), std::move(hint), stmt_id,
                                  aux_id});
  };

  // Replay each block from its solved in-state; at every statement the
  // forward pre-state and the backward after-state are both in hand.
  for (std::uint32_t b : info.rpo) {
    TState st = fsol.in[b];
    if (!st.reached) continue;
    // Backward replay of this block to index per-statement after-states.
    const auto& ids = cfg.blocks()[b].stmts;
    std::vector<EpochFacts> after(ids.size(), bwd.init());
    {
      EpochFacts facts = bsol.in[b];  // state at block exit
      for (std::size_t k = ids.size(); k-- > 0;) {
        after[k] = facts;
        if (const Stmt* s = stmts.stmt(ids[k])) bwd.apply(*s, facts);
      }
    }

    for (std::size_t k = 0; k < ids.size(); ++k) {
      const Stmt* sp = stmts.stmt(ids[k]);
      if (sp == nullptr) continue;
      const Stmt& s = *sp;

      if (s.kind == StmtKind::Directive) {
        const int idx = arrays.index_of(s.ref->name);
        if (idx >= 0) {
          const auto i = static_cast<std::size_t>(idx);
          const ArrState& a = st.a[i];
          const std::string& name = arrays.names[i];
          switch (s.dir) {
            case sim::DirectiveKind::CheckOutX:
            case sim::DirectiveKind::CheckOutS: {
              auto it = rid_of_stmt.find(s.id);
              const int rid =
                  it == rid_of_stmt.end() ? kRefConflict : it->second;
              if ((a.chk == Chk::CoX || a.chk == Chk::CoS) && a.co_epoch &&
                  a.ref == rid && rid != kRefConflict) {
                emit(Rule::DoubleCheckout, Severity::Warning, s.loc, name,
                     "re-checkout of '" + lang::unparse_ref(*s.ref) +
                         "' already checked out this epoch",
                     "drop the redundant directive", s.id);
              }
              break;
            }
            case sim::DirectiveKind::CheckIn:
              if (!a.may_out && !a.used_may) {
                emit(Rule::CheckinWithoutCheckout, Severity::Error, s.loc,
                     name,
                     "check_in of '" + name +
                         "' which was never checked out or written",
                     "remove the check_in or add the matching check_out",
                     s.id);
              }
              if (after[k].uncovered_use[i]) {
                emit(Rule::EarlyCheckin, Severity::Warning, s.loc, name,
                     "check_in of '" + name +
                         "' before a later use in the same epoch",
                     "move the check_in after the last access of the epoch "
                     "(Mp3d-style defect)",
                     s.id);
              }
              break;
            case sim::DirectiveKind::PrefetchX:
            case sim::DirectiveKind::PrefetchS:
              if (a.used_must) {
                emit(Rule::PrefetchAfterUse, Severity::Warning, s.loc, name,
                     "prefetch of '" + name +
                         "' after it was already accessed this epoch",
                     "move the prefetch before the first access or delete "
                     "it",
                     s.id);
              }
              break;
          }
        }
      } else {
        for (const SharedAccess& acc : shared_accesses(s, arrays)) {
          const ArrState& a = st.a[acc.array];
          const std::string& name = arrays.names[acc.array];
          if (!has_checkout[acc.array]) continue;  // unmanaged array
          if (acc.write) {
            if (a.chk == Chk::CoS && !a.locked) {
              emit(Rule::WriteUnderShared, Severity::Error, acc.loc, name,
                   "write to '" + name +
                       "' while checked out shared (check_out_S)",
                   "use check_out_X for regions that are written", s.id);
            } else if (a.chk == Chk::Idle && !a.locked &&
                       !after[k].checkin_ahead[acc.array]) {
              emit(Rule::MissedCheckoutWrite, Severity::Error, acc.loc, name,
                   "write to shared '" + name + "' with no checkout in effect",
                   "insert check_out_X " + name + "[...] before this write",
                   s.id);
            }
          } else if (a.chk == Chk::Idle && !a.locked &&
                     !after[k].checkin_ahead[acc.array]) {
            emit(Rule::MissedCheckoutRead, Severity::Warning, acc.loc, name,
                 "read of shared '" + name + "' with no checkout in effect",
                 "insert check_out_S " + name + "[...] before this read",
                 s.id);
          }
        }
      }
      fwd.apply(s, st);
    }
  }

  // CICO006: a reachable check_out with no check_in for the array anywhere
  // in the program.  Regions that are paired elsewhere but still held when
  // the program ends are deliberate (Cachier's programmer placement keeps a
  // trailing checkout live for the next epoch and lets termination reclaim
  // ownership), so only a wholly unpaired array is a leak.
  {
    TState end = fwd.init();
    for (std::uint32_t e : info.exits) fwd.join(end, fsol.out[e]);
    if (end.reached) {
      for (std::size_t i = 0; i < arrays.size(); ++i) {
        if (end.a[i].may_out && !has_checkin[i]) {
          emit(Rule::CheckoutLeak, Severity::Warning, first_checkout[i],
               arrays.names[i],
               "'" + arrays.names[i] + "' is checked out but never checked in",
               "add check_in " + arrays.names[i] +
                   "[...] before the program ends");
        }
      }
    }
  }

  // CICO008: loop-invariant checkout inside a loop (syntactic, loop tree).
  {
    std::vector<const Stmt*> todo;
    std::vector<const std::vector<lang::StmtPtr>*> seqs = {&program.body};
    while (!seqs.empty()) {
      const auto* seq = seqs.back();
      seqs.pop_back();
      for (const auto& sp : *seq) {
        if (sp->kind == StmtKind::Directive &&
            (sp->dir == sim::DirectiveKind::CheckOutX ||
             sp->dir == sim::DirectiveKind::CheckOutS)) {
          todo.push_back(sp.get());
        }
        if (!sp->body.empty()) seqs.push_back(&sp->body);
        if (!sp->else_body.empty()) seqs.push_back(&sp->else_body);
      }
    }
    for (const Stmt* d : todo) {
      const lang::AstId loop_id = cfg.loop_of(d->id);
      if (loop_id == 0) continue;
      const Stmt* loop = stmts.stmt(loop_id);
      if (loop == nullptr) continue;

      LoopScan scan;
      scan.defined.push_back(loop->name);
      scan_loop_body(loop->body, scan);
      // The loop must be annotation-transparent: a barrier, lock, or a
      // check_in of this array inside it makes re-checkout meaningful.
      if (scan.has_barrier || scan.has_lock ||
          contains_name(scan.checked_in, d->ref->name)) {
        continue;
      }
      std::vector<std::string> used;
      for (const lang::RangeExpr& r : d->ref->ranges) {
        collect_expr_vars(r.lo.get(), used);
        collect_expr_vars(r.hi.get(), used);
      }
      bool invariant = true;
      for (const std::string& u : used) {
        if (contains_name(scan.defined, u)) {
          invariant = false;
          break;
        }
      }
      if (!invariant) continue;
      // Conditional execution depending on the iteration also blocks
      // hoisting: an enclosing If (inside the loop) whose condition uses a
      // name defined in the loop.
      bool guarded = false;
      for (lang::AstId p = cfg.parent_of(d->id); p != 0 && p != loop_id;
           p = cfg.parent_of(p)) {
        const Stmt* ps = stmts.stmt(p);
        if (ps == nullptr || ps->kind != StmtKind::If) continue;
        std::vector<std::string> cond_vars;
        collect_expr_vars(ps->cond.get(), cond_vars);
        for (const std::string& v : cond_vars) {
          if (contains_name(scan.defined, v)) {
            guarded = true;
            break;
          }
        }
        if (guarded) break;
      }
      if (guarded) continue;
      emit(Rule::RedundantLoopCheckout, Severity::Warning, d->loc,
           d->ref->name,
           "loop-invariant checkout of '" + lang::unparse_ref(*d->ref) +
               "' inside loop over '" + loop->name + "'",
           "hoist the directive out of the loop (MM-style defect)", d->id,
           loop_id);
    }
  }

  sort_diagnostics(result.diagnostics);
  return result;
}

}  // namespace cico::analysis
