#include "cico/analysis/dataflow.hpp"

#include <algorithm>

namespace cico::analysis {

// ---------------------------------------------------------------------------
// CfgInfo
// ---------------------------------------------------------------------------

CfgInfo::CfgInfo(const lang::Cfg& c) : cfg(&c) {
  const auto& blocks = c.blocks();
  const std::size_t n = blocks.size();
  rpo_pos.assign(n, kUnreachable);
  is_header.assign(n, false);

  // Iterative postorder DFS from the entry block.
  std::vector<std::uint32_t> post;
  post.reserve(n);
  std::vector<std::uint8_t> state(n, 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(c.entry(), 0);
  state[c.entry()] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < blocks[b].succ.size()) {
      const std::uint32_t s = blocks[b].succ[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo.assign(post.rbegin(), post.rend());
  for (std::uint32_t i = 0; i < rpo.size(); ++i) rpo_pos[rpo[i]] = i;

  for (std::uint32_t b : rpo) {
    if (blocks[b].succ.empty()) exits.push_back(b);
    // A retreating edge goes from a later rpo position to an earlier one.
    for (std::uint32_t s : blocks[b].succ) {
      if (reachable(s) && rpo_pos[s] <= rpo_pos[b]) is_header[s] = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Dominators (Cooper-Harvey-Kennedy iterative algorithm)
// ---------------------------------------------------------------------------

Dominators::Dominators(const lang::Cfg& cfg, const CfgInfo& info)
    : info_(&info) {
  const auto& blocks = cfg.blocks();
  idom_.assign(blocks.size(), kNone);
  const std::uint32_t entry = cfg.entry();
  idom_[entry] = entry;

  const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (info.rpo_pos[a] > info.rpo_pos[b]) a = idom_[a];
      while (info.rpo_pos[b] > info.rpo_pos[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t b : info.rpo) {
      if (b == entry) continue;
      std::uint32_t new_idom = kNone;
      for (std::uint32_t p : blocks[b].pred) {
        if (!info.reachable(p) || idom_[p] == kNone) continue;
        new_idom = new_idom == kNone ? p : intersect(p, new_idom);
      }
      if (new_idom != kNone && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }

  for (std::uint32_t b : info.rpo) {
    for (std::uint32_t s : blocks[b].succ) {
      if (!info.reachable(s) || info.rpo_pos[s] > info.rpo_pos[b]) continue;
      if (dominates(s, b)) {
        back_edges_.emplace_back(b, s);
      } else {
        reducible_ = false;  // retreating but not a back edge
      }
    }
  }
}

bool Dominators::dominates(std::uint32_t a, std::uint32_t b) const {
  if (!info_->reachable(a) || !info_->reachable(b)) return false;
  while (true) {
    if (b == a) return true;
    const std::uint32_t up = idom_[b];
    if (up == b || up == kNone) return false;
    b = up;
  }
}

// ---------------------------------------------------------------------------
// StmtIndex / SharedArrays / shared_accesses
// ---------------------------------------------------------------------------

StmtIndex::StmtIndex(const lang::Program& p) {
  walk(p.decls);
  walk(p.body);
}

void StmtIndex::walk(const std::vector<lang::StmtPtr>& stmts) {
  for (const auto& sp : stmts) {
    by_id_[sp->id] = sp.get();
    walk(sp->body);
    walk(sp->else_body);
  }
}

const lang::Stmt* StmtIndex::stmt(lang::AstId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

SharedArrays::SharedArrays(const lang::Program& p) {
  for (const auto& d : p.decls) {
    if (d->kind == lang::StmtKind::SharedDecl) names.push_back(d->name);
  }
}

int SharedArrays::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

void collect_reads(const lang::Expr* e, const SharedArrays& arrays,
                   std::vector<SharedAccess>& out) {
  if (e == nullptr) return;
  if (e->kind == lang::ExprKind::Index) {
    const int idx = arrays.index_of(e->name);
    if (idx >= 0) {
      out.push_back({static_cast<std::uint32_t>(idx), false, e->loc});
    }
  }
  for (const auto& a : e->args) collect_reads(a.get(), arrays, out);
}

}  // namespace

std::vector<SharedAccess> shared_accesses(const lang::Stmt& s,
                                          const SharedArrays& arrays) {
  std::vector<SharedAccess> out;
  switch (s.kind) {
    case lang::StmtKind::Assign: {
      for (const auto& e : s.subs) collect_reads(e.get(), arrays, out);
      collect_reads(s.rhs.get(), arrays, out);
      if (!s.subs.empty()) {
        const int idx = arrays.index_of(s.name);
        if (idx >= 0) {
          out.push_back({static_cast<std::uint32_t>(idx), true, s.loc});
        }
      }
      break;
    }
    case lang::StmtKind::Private:
    case lang::StmtKind::Compute:
      collect_reads(s.rhs.get(), arrays, out);
      break;
    case lang::StmtKind::For:
      collect_reads(s.lo.get(), arrays, out);
      collect_reads(s.hi.get(), arrays, out);
      collect_reads(s.step.get(), arrays, out);
      break;
    case lang::StmtKind::If:
      collect_reads(s.cond.get(), arrays, out);
      break;
    default:
      break;  // decls, barriers, directives, lock/unlock: no data accesses
  }
  return out;
}

// ---------------------------------------------------------------------------
// ReachingDefs
// ---------------------------------------------------------------------------

namespace {

/// Scalar definition target of a statement, or empty.
std::string_view scalar_def(const lang::Stmt& s) {
  switch (s.kind) {
    case lang::StmtKind::Private:
    case lang::StmtKind::ConstDecl:
      return s.name;
    case lang::StmtKind::Assign:
      return s.subs.empty() ? std::string_view(s.name) : std::string_view();
    case lang::StmtKind::For:
      return s.name;  // the loop variable
    default:
      return {};
  }
}

struct ReachingDomain {
  // State: per-variable set of defining statement ids.
  using State = std::vector<std::set<lang::AstId>>;

  const lang::Cfg* cfg;
  const StmtIndex* stmts;
  const std::vector<std::string>* vars;

  [[nodiscard]] State init() const { return State(vars->size()); }
  [[nodiscard]] State boundary() const { return State(vars->size()); }

  bool join(State& into, const State& from) const {
    bool grew = false;
    for (std::size_t v = 0; v < into.size(); ++v) {
      for (lang::AstId d : from[v]) grew |= into[v].insert(d).second;
    }
    return grew;
  }
  bool widen(State& into, const State& from) const { return join(into, from); }

  [[nodiscard]] int var_index(std::string_view name) const {
    auto it = std::find(vars->begin(), vars->end(), name);
    return it == vars->end() ? -1 : static_cast<int>(it - vars->begin());
  }

  void transfer(std::uint32_t block, State& st) const {
    for (lang::AstId id : cfg->blocks()[block].stmts) {
      const lang::Stmt* s = stmts->stmt(id);
      if (s == nullptr) continue;
      const std::string_view def = scalar_def(*s);
      if (def.empty()) continue;
      const int v = var_index(def);
      if (v < 0) continue;
      st[v].clear();
      st[v].insert(id);
    }
  }
};

}  // namespace

ReachingDefs::ReachingDefs(const lang::Program& p, const lang::Cfg& cfg,
                           const CfgInfo& info) {
  StmtIndex stmts(p);
  // Collect scalar variables in first-definition order (decls then body).
  const auto note = [&](std::string_view name) {
    if (!name.empty() &&
        std::find(vars_.begin(), vars_.end(), name) == vars_.end()) {
      vars_.emplace_back(name);
    }
  };
  for (const auto& d : p.decls) note(scalar_def(*d));
  std::vector<const std::vector<lang::StmtPtr>*> todo = {&p.body};
  while (!todo.empty()) {
    const auto* seq = todo.back();
    todo.pop_back();
    for (const auto& sp : *seq) {
      note(scalar_def(*sp));
      if (!sp->body.empty()) todo.push_back(&sp->body);
      if (!sp->else_body.empty()) todo.push_back(&sp->else_body);
    }
  }

  ReachingDomain dom{&cfg, &stmts, &vars_};
  auto sol = solve(info, dom, Direction::Forward);
  in_.resize(cfg.blocks().size());
  for (std::size_t b = 0; b < in_.size(); ++b) {
    in_[b] = std::move(sol.in[b]);
    in_[b].resize(vars_.size());
  }
}

const std::set<lang::AstId>& ReachingDefs::reaching_in(
    std::uint32_t block, std::string_view var) const {
  auto it = std::find(vars_.begin(), vars_.end(), var);
  if (it == vars_.end() || block >= in_.size()) return empty_;
  return in_[block][static_cast<std::size_t>(it - vars_.begin())];
}

// ---------------------------------------------------------------------------
// LiveSharedArrays
// ---------------------------------------------------------------------------

namespace {

struct LivenessDomain {
  using State = std::vector<bool>;

  const lang::Cfg* cfg;
  const StmtIndex* stmts;
  const SharedArrays* arrays;

  [[nodiscard]] State init() const { return State(arrays->size(), false); }
  [[nodiscard]] State boundary() const { return init(); }

  bool join(State& into, const State& from) const {
    bool grew = false;
    for (std::size_t i = 0; i < into.size(); ++i) {
      if (from[i] && !into[i]) {
        into[i] = true;
        grew = true;
      }
    }
    return grew;
  }
  bool widen(State& into, const State& from) const { return join(into, from); }

  void transfer(std::uint32_t block, State& st) const {
    const auto& ids = cfg->blocks()[block].stmts;
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      const lang::Stmt* s = stmts->stmt(*it);
      if (s == nullptr) continue;
      if (s->kind == lang::StmtKind::Barrier) {
        std::fill(st.begin(), st.end(), false);  // liveness is per-epoch
        continue;
      }
      for (const SharedAccess& a : shared_accesses(*s, *arrays)) {
        st[a.array] = true;
      }
    }
  }
};

}  // namespace

LiveSharedArrays::LiveSharedArrays(const lang::Program& p,
                                   const lang::Cfg& cfg, const CfgInfo& info)
    : arrays_(p) {
  StmtIndex stmts(p);
  LivenessDomain dom{&cfg, &stmts, &arrays_};
  auto sol = solve(info, dom, Direction::Backward);
  in_.resize(cfg.blocks().size());
  for (std::size_t b = 0; b < in_.size(); ++b) {
    // Backward "out" is the state at block entry.
    in_[b] = std::move(sol.out[b]);
    in_[b].resize(arrays_.size(), false);
  }
}

bool LiveSharedArrays::live_in(std::uint32_t block, std::uint32_t array) const {
  return block < in_.size() && array < in_[block].size() && in_[block][array];
}

}  // namespace cico::analysis
