#include "cico/analysis/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace cico::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string rule_id(Rule r) {
  const int n = static_cast<int>(r);
  std::string id = "CICO000";
  id[4] = static_cast<char>('0' + n / 100);
  id[5] = static_cast<char>('0' + (n / 10) % 10);
  id[6] = static_cast<char>('0' + n % 10);
  return id;
}

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::MissedCheckoutWrite: return "missed-checkout-write";
    case Rule::MissedCheckoutRead: return "missed-checkout-read";
    case Rule::WriteUnderShared: return "write-under-shared-checkout";
    case Rule::DoubleCheckout: return "double-checkout";
    case Rule::CheckinWithoutCheckout: return "checkin-without-checkout";
    case Rule::CheckoutLeak: return "checkout-leak";
    case Rule::EarlyCheckin: return "early-checkin";
    case Rule::RedundantLoopCheckout: return "redundant-loop-checkout";
    case Rule::PrefetchAfterUse: return "prefetch-after-use";
  }
  return "?";
}

int LintResult::errors() const {
  return static_cast<int>(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& d) { return d.severity == Severity::Error; }));
}

int LintResult::warnings() const {
  return static_cast<int>(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& d) { return d.severity == Severity::Warning; }));
}

int LintResult::notes() const {
  return static_cast<int>(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& d) { return d.severity == Severity::Note; }));
}

int LintResult::exit_code() const {
  if (errors() > 0) return 2;
  if (warnings() > 0) return 1;
  return 0;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.line, a.col, a.rule, a.array,
                                     a.message) < std::tie(b.line, b.col,
                                                           b.rule, b.array,
                                                           b.message);
                   });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.rule == b.rule && a.line == b.line &&
                                   a.col == b.col && a.array == b.array &&
                                   a.message == b.message;
                          }),
              diags.end());
}

void print_text(std::ostream& os, const std::string& file,
                const LintResult& result) {
  for (const Diagnostic& d : result.diagnostics) {
    os << file << ':' << d.line << ':' << d.col << ": "
       << severity_name(d.severity) << ": [" << rule_id(d.rule) << "] "
       << d.message << '\n';
    if (!d.hint.empty()) os << "    hint: " << d.hint << '\n';
  }
  os << file << ": " << result.errors() << " error(s), " << result.warnings()
     << " warning(s), " << result.notes() << " note(s)\n";
}

obs::Json lint_json(const std::string& file, const LintResult& result) {
  obs::Json doc = obs::Json::object();
  doc.set("schema_version",
          obs::Json::number(static_cast<std::int64_t>(kLintSchemaVersion)));
  doc.set("generator", obs::Json::string("cachier-lint"));
  doc.set("command", obs::Json::string("lint"));
  doc.set("file", obs::Json::string(file));

  obs::Json summary = obs::Json::object();
  summary.set("errors", obs::Json::number(static_cast<std::int64_t>(result.errors())));
  summary.set("warnings",
              obs::Json::number(static_cast<std::int64_t>(result.warnings())));
  summary.set("notes", obs::Json::number(static_cast<std::int64_t>(result.notes())));
  summary.set("exit", obs::Json::number(static_cast<std::int64_t>(result.exit_code())));
  doc.set("summary", std::move(summary));

  obs::Json diags = obs::Json::array();
  for (const Diagnostic& d : result.diagnostics) {
    obs::Json j = obs::Json::object();
    j.set("rule", obs::Json::string(rule_id(d.rule)));
    j.set("name", obs::Json::string(rule_name(d.rule)));
    j.set("severity", obs::Json::string(severity_name(d.severity)));
    j.set("line", obs::Json::number(static_cast<std::int64_t>(d.line)));
    j.set("col", obs::Json::number(static_cast<std::int64_t>(d.col)));
    j.set("array", obs::Json::string(d.array));
    j.set("message", obs::Json::string(d.message));
    j.set("hint", obs::Json::string(d.hint));
    diags.push_back(std::move(j));
  }
  doc.set("diagnostics", std::move(diags));
  return doc;
}

}  // namespace cico::analysis
