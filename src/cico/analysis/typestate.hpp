// CICO typestate checker.
//
// Verifies the check-in / check-out discipline statically, before a
// program ever reaches the simulator.  Each shared array carries a small
// per-path lattice through a forward dataflow pass over the Cfg:
//
//     Bottom < {Idle, CheckedOutX, CheckedOutS} < Top
//
// plus may/must bits (may-be-checked-out, accessed-this-epoch on
// some/all paths, checked-out-this-epoch, lock held).  Two backward
// passes supply the epoch-scoped facts the rules need: whether an
// uncovered use of the array lies ahead (kill at barrier and at
// re-checkout) and whether a check_in lies ahead (the annotator's
// write-then-publish idiom).  The rules CICO001..CICO009 rediscover the
// paper's section 6 hand-annotation defects -- Mp3d's premature
// check_in, Barnes's missed annotations, MM's redundant loop checkouts
// -- as compile-time diagnostics instead of simulated cycle deltas.
#pragma once

#include "cico/analysis/diagnostics.hpp"
#include "cico/lang/ast.hpp"

namespace cico::analysis {

struct LintOptions {
  /// Loop headers switch from join to widening after this many visits
  /// (the typestate lattice is finite, so this only bounds solver work).
  int widen_after = 4;
};

/// Runs every CICO rule over the program; diagnostics come back in the
/// deterministic (line, col, rule, array, message) order.
[[nodiscard]] LintResult lint(const lang::Program& program,
                              const LintOptions& opts = {});

}  // namespace cico::analysis
