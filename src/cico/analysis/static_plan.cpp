#include "cico/analysis/static_plan.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <tuple>

#include "cico/analysis/affine.hpp"

namespace cico::analysis {

namespace {

using lang::AstId;
using lang::Expr;
using lang::ExprKind;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtPtr;

// ---------------------------------------------------------------------------
// Epoch graph construction
// ---------------------------------------------------------------------------

/// Structured walk threading the set of epoch anchors execution may be
/// in.  Barriers collapse the set to themselves (recording epoch edges);
/// loops iterate to a fixpoint because a barrier inside the body feeds
/// anchors back to the top; branches union.  Anchor sets only grow per
/// program point, bounded by the barrier count, so the fixpoint is
/// cheap.
struct EpochBuilder {
  ConstEnv env;
  std::vector<AstId> order;                 ///< anchors, discovery order
  std::set<AstId> known;
  std::map<AstId, std::set<AstId>> succ;
  std::map<AstId, std::set<AstId>> members;  ///< anchor -> stmt ids

  explicit EpochBuilder(const lang::Program& p) : env(ConstEnv::from(p)) {}

  void ensure(AstId a) {
    if (known.insert(a).second) order.push_back(a);
  }

  /// Constant bounds proving the loop runs at least once; anything
  /// non-constant (pid/nprocs-dependent, data-dependent) is treated as
  /// possibly zero-trip, which only over-approximates the epoch graph.
  [[nodiscard]] bool at_least_one_trip(const Stmt& s) const {
    const auto lo = eval_affine(*s.lo, env);
    const auto hi = eval_affine(*s.hi, env);
    if (!lo || !hi || lo->p != 0 || hi->p != 0) return false;
    double step = 1;
    if (s.step) {
      const auto st = eval_affine(*s.step, env);
      if (!st || st->p != 0) return false;
      step = st->c;
    }
    if (step > 0) return lo->c <= hi->c;
    if (step < 0) return lo->c >= hi->c;
    return false;
  }

  std::set<AstId> walk(const std::vector<StmtPtr>& seq, std::set<AstId> cur) {
    for (const auto& sp : seq) {
      const Stmt& s = *sp;
      for (AstId a : cur) members[a].insert(s.id);
      switch (s.kind) {
        case StmtKind::Barrier: {
          ensure(s.id);
          for (AstId a : cur) succ[a].insert(s.id);
          cur = {s.id};
          break;
        }
        case StmtKind::For: {
          const std::set<AstId> in = cur;
          std::set<AstId> x = in;
          std::set<AstId> out;
          for (;;) {
            out = walk(s.body, x);
            std::set<AstId> nx = in;
            nx.insert(out.begin(), out.end());
            if (nx == x) break;
            x = std::move(nx);
          }
          if (at_least_one_trip(s)) {
            cur = std::move(out);
          } else {
            cur = in;
            cur.insert(out.begin(), out.end());
          }
          break;
        }
        case StmtKind::If: {
          std::set<AstId> t = walk(s.body, cur);
          std::set<AstId> e =
              s.else_body.empty() ? cur : walk(s.else_body, cur);
          t.insert(e.begin(), e.end());
          cur = std::move(t);
          break;
        }
        default:
          break;
      }
    }
    return cur;
  }
};

// ---------------------------------------------------------------------------
// Element bitsets
// ---------------------------------------------------------------------------

using Bits = std::vector<std::uint64_t>;

Bits make_bits(long long elems) {
  return Bits(static_cast<std::size_t>((elems + 63) / 64), 0);
}

void set_bit(Bits& b, long long i) {
  b[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
}

void bits_or(Bits& a, const Bits& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] |= b[i];
}

void bits_and(Bits& a, const Bits& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] &= b[i];
}

void bits_sub(Bits& a, const Bits& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] &= ~b[i];
}

Bits and_of(Bits a, const Bits& b) {
  bits_and(a, b);
  return a;
}

Bits sub_of(Bits a, const Bits& b) {
  bits_sub(a, b);
  return a;
}

bool any_bit(const Bits& b) {
  for (std::uint64_t w : b) {
    if (w != 0) return true;
  }
  return false;
}

bool test_bit(const Bits& b, long long i) {
  return ((b[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1) != 0;
}

/// Widen the set to its bounding rectangle under the array shape (the
/// whole index range for 1-D arrays).  Emission only renders EXACT
/// rectangles; hulling plan-side trades a little extra coherence traffic
/// (annotations are hints, over-checkout is protocol-safe) for never
/// dropping a family.  Returns true when elements were added.
bool hull_bits(Bits& b, const ArrayShape& shp) {
  const long long elems = shp.elems();
  const long long d1 = shp.two_d ? static_cast<long long>(shp.d1) : 1;
  long long r0min = -1;
  long long r0max = -1;
  long long r1min = -1;
  long long r1max = -1;
  long long count = 0;
  for (long long i = 0; i < elems; ++i) {
    if (!test_bit(b, i)) continue;
    ++count;
    const long long r0 = i / d1;
    const long long r1 = i % d1;
    if (r0min < 0 || r0 < r0min) r0min = r0;
    if (r0 > r0max) r0max = r0;
    if (r1min < 0 || r1 < r1min) r1min = r1;
    if (r1 > r1max) r1max = r1;
  }
  if (count == 0) return false;
  const long long rect = (r0max - r0min + 1) * (r1max - r1min + 1);
  if (count == rect) return false;
  for (long long r0 = r0min; r0 <= r0max; ++r0) {
    for (long long r1 = r1min; r1 <= r1max; ++r1) {
      set_bit(b, r0 * d1 + r1);
    }
  }
  return true;
}

constexpr std::size_t kMaxFamilyParts = 4;

/// Decompose a set into disjoint row-band rectangles: maximal runs of
/// consecutive rows sharing one contiguous column span (for 1-D arrays,
/// maximal element intervals).  Falls back to the single bounding
/// rectangle -- setting `widened` -- when some row's columns are not
/// contiguous or the decomposition needs more than max_parts pieces.
std::vector<Bits> split_rects(const Bits& b, const ArrayShape& shp,
                              std::size_t max_parts, bool& widened) {
  const long long elems = shp.elems();
  const long long d1 = shp.two_d ? static_cast<long long>(shp.d1) : 1;
  const long long d0 = elems / d1;
  struct RowSpan {
    long long lo = -1;
    long long hi = -1;
    bool any = false;
  };
  std::vector<RowSpan> rows(static_cast<std::size_t>(d0));
  bool contiguous = true;
  bool empty = true;
  for (long long r0 = 0; r0 < d0; ++r0) {
    RowSpan& row = rows[static_cast<std::size_t>(r0)];
    long long count = 0;
    for (long long r1 = 0; r1 < d1; ++r1) {
      if (!test_bit(b, r0 * d1 + r1)) continue;
      ++count;
      if (row.lo < 0) row.lo = r1;
      row.hi = r1;
    }
    row.any = count > 0;
    empty = empty && !row.any;
    if (row.any && count != row.hi - row.lo + 1) contiguous = false;
  }
  if (empty) return {};
  std::vector<Bits> out;
  if (contiguous) {
    for (long long r0 = 0; r0 < d0; ++r0) {
      const RowSpan& row = rows[static_cast<std::size_t>(r0)];
      if (!row.any) continue;
      const RowSpan* prev =
          r0 > 0 ? &rows[static_cast<std::size_t>(r0 - 1)] : nullptr;
      if (prev == nullptr || !prev->any || prev->lo != row.lo ||
          prev->hi != row.hi) {
        out.push_back(make_bits(elems));  // new band
      }
      for (long long r1 = row.lo; r1 <= row.hi; ++r1) {
        set_bit(out.back(), r0 * d1 + r1);
      }
    }
  }
  if (!contiguous || out.size() > max_parts) {
    Bits hull = b;
    widened = widened || hull_bits(hull, shp);
    return {std::move(hull)};
  }
  return out;
}

Bits universe_bits(long long elems) {
  Bits b = make_bits(elems);
  for (long long i = 0; i < elems; ++i) set_bit(b, i);
  return b;
}

std::vector<std::uint32_t> bits_to_elems(const Bits& b, long long elems) {
  std::vector<std::uint32_t> out;
  for (long long i = 0; i < elems; ++i) {
    if ((b[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-node abstract evaluation
// ---------------------------------------------------------------------------

/// Flow-sensitive scalar environment: every private/scalar tracks the
/// Interval hull of its possible values for this concrete node.
struct Env {
  std::map<std::string, Interval, std::less<>> v;
};

enum class Tri : std::uint8_t { False, True, Unknown };

Tri tri_not(Tri t) {
  if (t == Tri::True) return Tri::False;
  if (t == Tri::False) return Tri::True;
  return Tri::Unknown;
}

/// One node's walk through the program, recording shared-array element
/// accesses into the per-(epoch, array) masks.
struct NodeWalk {
  const StaticEpochs& ep;
  const std::vector<ArrayShape>& shapes;
  const std::map<std::string, int, std::less<>>& shape_index;
  std::vector<std::vector<AccessMasks>>& masks;
  int node = 0;
  int nodes = 1;
  Env env;

  [[nodiscard]] Interval eval(const Expr& e) const {  // NOLINT(misc-no-recursion)
    switch (e.kind) {
      case ExprKind::Number:
        return Interval::point(e.number);
      case ExprKind::Pid:
        return Interval::point(node);
      case ExprKind::Nprocs:
        return Interval::point(nodes);
      case ExprKind::Var: {
        auto it = env.v.find(e.name);
        return it == env.v.end() ? Interval::top() : it->second;
      }
      case ExprKind::Index:
        return Interval::top();  // data-dependent
      case ExprKind::Unary:
        if (e.uop == lang::UnOp::Neg) return eval(*e.args[0]).neg();
        return Interval::top();
      case ExprKind::MinMax: {
        const Interval a = eval(*e.args[0]);
        const Interval b = eval(*e.args[1]);
        return e.is_min ? a.min_with(b) : a.max_with(b);
      }
      case ExprKind::Binary: {
        const Interval a = eval(*e.args[0]);
        const Interval b = eval(*e.args[1]);
        switch (e.bop) {
          case lang::BinOp::Add:
            return a.add(b);
          case lang::BinOp::Sub:
            return a.sub(b);
          case lang::BinOp::Mul:
            return a.mul(b);
          case lang::BinOp::Div:
            return a.div(b);
          case lang::BinOp::Mod:
            return a.mod(b);
          default:
            return Interval::top();  // comparisons are not arithmetic
        }
      }
    }
    return Interval::top();
  }

  /// Tri-state condition evaluation; a decidable `if pid == k` guard is
  /// what lets each node see only its own branch of the SPMD program.
  [[nodiscard]] Tri cond(const Expr& e) const {  // NOLINT(misc-no-recursion)
    if (e.kind == ExprKind::Unary && e.uop == lang::UnOp::Not) {
      return tri_not(cond(*e.args[0]));
    }
    if (e.kind != ExprKind::Binary) return Tri::Unknown;
    switch (e.bop) {
      case lang::BinOp::And: {
        const Tri a = cond(*e.args[0]);
        const Tri b = cond(*e.args[1]);
        if (a == Tri::False || b == Tri::False) return Tri::False;
        if (a == Tri::True && b == Tri::True) return Tri::True;
        return Tri::Unknown;
      }
      case lang::BinOp::Or: {
        const Tri a = cond(*e.args[0]);
        const Tri b = cond(*e.args[1]);
        if (a == Tri::True || b == Tri::True) return Tri::True;
        if (a == Tri::False && b == Tri::False) return Tri::False;
        return Tri::Unknown;
      }
      default:
        break;
    }
    const Interval a = eval(*e.args[0]);
    const Interval b = eval(*e.args[1]);
    if (a.empty() || b.empty()) return Tri::Unknown;
    const auto lt = [](const Interval& x, const Interval& y) {
      if (x.hi < y.lo) return Tri::True;
      if (x.lo >= y.hi) return Tri::False;
      return Tri::Unknown;
    };
    const auto le = [](const Interval& x, const Interval& y) {
      if (x.hi <= y.lo) return Tri::True;
      if (x.lo > y.hi) return Tri::False;
      return Tri::Unknown;
    };
    switch (e.bop) {
      case lang::BinOp::Eq:
        if (a.is_point() && b.is_point() && a.lo == b.lo) return Tri::True;
        if (a.hi < b.lo || b.hi < a.lo) return Tri::False;
        return Tri::Unknown;
      case lang::BinOp::Ne:
        if (a.hi < b.lo || b.hi < a.lo) return Tri::True;
        if (a.is_point() && b.is_point() && a.lo == b.lo) return Tri::False;
        return Tri::Unknown;
      case lang::BinOp::Lt:
        return lt(a, b);
      case lang::BinOp::Le:
        return le(a, b);
      case lang::BinOp::Gt:
        return lt(b, a);
      case lang::BinOp::Ge:
        return le(b, a);
      default:
        return Tri::Unknown;
    }
  }

  /// Rounds an interval hull to the element range it can touch (the
  /// interpreter rounds subscripts with llround), clipped to the array
  /// extent.  false = not statically evaluable (caller approximates).
  [[nodiscard]] bool hull(const Expr& e, long long d, long long& lo,
                          long long& hi) const {
    const Interval iv = eval(e);
    if (iv.empty() || !std::isfinite(iv.lo) || !std::isfinite(iv.hi)) {
      return false;
    }
    lo = std::max(std::llround(iv.lo), 0LL);
    hi = std::min(std::llround(iv.hi), d - 1);
    return true;  // lo > hi: entirely out of range, touches nothing
  }

  void touch(const std::vector<int>& eps, const std::string& name,
             const std::vector<lang::ExprPtr>& subs, bool write) {
    const auto it = shape_index.find(name);
    if (it == shape_index.end()) return;
    const ArrayShape& sh = shapes[static_cast<std::size_t>(it->second)];
    long long lo0 = 0;
    long long hi0 = -1;
    long long lo1 = 0;
    long long hi1 = 0;
    bool ok = subs.size() == (sh.two_d ? 2U : 1U);
    if (ok) ok = hull(*subs[0], sh.d0, lo0, hi0);
    if (ok && sh.two_d) ok = hull(*subs[1], sh.d1, lo1, hi1);
    const std::uint64_t bit = 1ULL << node;
    for (int e : eps) {
      AccessMasks& m = masks[static_cast<std::size_t>(e)]
                            [static_cast<std::size_t>(it->second)];
      if (!ok) {
        (write ? m.approx_w : m.approx_r) |= bit;
        continue;
      }
      for (long long i = lo0; i <= hi0; ++i) {
        if (sh.two_d) {
          for (long long j = lo1; j <= hi1; ++j) {
            (write ? m.w : m.r)[static_cast<std::size_t>(i * sh.d1 + j)] |=
                bit;
          }
        } else {
          (write ? m.w : m.r)[static_cast<std::size_t>(i)] |= bit;
        }
      }
    }
  }

  void scan_reads(const Expr* e, const std::vector<int>& eps) {  // NOLINT(misc-no-recursion)
    if (e == nullptr) return;
    if (e->kind == ExprKind::Index) touch(eps, e->name, e->args, false);
    for (const auto& a : e->args) scan_reads(a.get(), eps);
  }

  /// Env join at an undecidable branch merge: a name known on only one
  /// side is unknown on the other (never assigned there), so it joins
  /// to top.
  static void join_env(Env& a, const Env& b) {
    for (auto& [k, v] : a.v) {
      const auto it = b.v.find(k);
      v = it == b.v.end() ? Interval::top() : v.join(it->second);
    }
    for (const auto& [k, v] : b.v) {
      if (a.v.find(k) == a.v.end()) a.v[k] = Interval::top();
    }
  }

  void walk(const std::vector<StmtPtr>& seq) {  // NOLINT(misc-no-recursion)
    for (const auto& sp : seq) {
      const Stmt& s = *sp;
      const std::vector<int>& eps = ep.epochs_of(s.id);
      switch (s.kind) {
        case StmtKind::Assign:
          scan_reads(s.rhs.get(), eps);
          for (const auto& sub : s.subs) scan_reads(sub.get(), eps);
          if (!s.subs.empty()) {
            touch(eps, s.name, s.subs, true);
          } else {
            env.v[s.name] = s.rhs ? eval(*s.rhs) : Interval::top();
          }
          break;
        case StmtKind::Private:
          scan_reads(s.rhs.get(), eps);
          env.v[s.name] = s.rhs ? eval(*s.rhs) : Interval::top();
          break;
        case StmtKind::Compute:
          scan_reads(s.rhs.get(), eps);
          break;
        case StmtKind::For: {
          scan_reads(s.lo.get(), eps);
          scan_reads(s.hi.get(), eps);
          scan_reads(s.step.get(), eps);
          const Interval lo = eval(*s.lo);
          const Interval hi = eval(*s.hi);
          double stepv = 1;
          bool step_known = true;
          if (s.step) {
            const Interval st = eval(*s.step);
            if (st.is_point()) {
              stepv = st.lo;
            } else {
              step_known = false;
            }
          }
          // Definite zero-trip loops contribute nothing.
          if (step_known && !lo.empty() && !hi.empty() &&
              ((stepv > 0 && lo.lo > hi.hi) ||
               (stepv < 0 && lo.hi < hi.lo))) {
            break;
          }
          const Interval var_hull = lo.join(hi);
          // Body mini-fixpoint: scalars mutated by the body (running
          // accumulators, per-iteration privates) are widened until the
          // environment stabilises; accesses recorded on every pass
          // union, so re-walking is safe.
          for (int pass = 0; pass < 4; ++pass) {
            env.v[s.name] = var_hull;
            Env before = env;
            walk(s.body);
            env.v[s.name] = var_hull;
            bool stable = true;
            for (auto& [k, v] : env.v) {
              const auto it = before.v.find(k);
              const Interval prev =
                  it == before.v.end() ? Interval{} : it->second;
              if (!(v == prev)) {
                stable = false;
                v = pass >= 2 ? Interval::top() : prev.widen(v);
              }
            }
            if (stable) break;
          }
          break;
        }
        case StmtKind::If: {
          scan_reads(s.cond.get(), eps);
          const Tri t = cond(*s.cond);
          if (t == Tri::True) {
            walk(s.body);
          } else if (t == Tri::False) {
            walk(s.else_body);
          } else {
            Env pre = env;
            walk(s.body);
            Env then_env = std::move(env);
            env = std::move(pre);
            walk(s.else_body);
            join_env(env, then_env);
          }
          break;
        }
        case StmtKind::Directive:
          // --static plans from unannotated programs; any directives
          // already present are hints, invisible to the classifier.
          break;
        default:
          break;  // Barrier / Lock / Unlock / decls
      }
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// StaticEpochs
// ---------------------------------------------------------------------------

StaticEpochs::StaticEpochs(const lang::Program& p) {
  EpochBuilder b(p);
  b.ensure(0);
  const std::set<AstId> final_anchors = b.walk(p.body, {0});

  for (AstId a : b.order) {
    index_[a] = static_cast<int>(epochs_.size());
    StaticEpoch e;
    e.anchor = a;
    epochs_.push_back(std::move(e));
  }
  for (const auto& [a, ss] : b.succ) {
    StaticEpoch& e = epochs_[static_cast<std::size_t>(index_[a])];
    e.succ.assign(ss.begin(), ss.end());
    for (AstId t : ss) {
      epochs_[static_cast<std::size_t>(index_[t])].pred.push_back(a);
    }
  }
  for (StaticEpoch& e : epochs_) {
    std::sort(e.pred.begin(), e.pred.end());
  }
  for (AstId a : final_anchors) {
    epochs_[static_cast<std::size_t>(index_[a])].ends_program = true;
  }
  for (const auto& [a, ss] : b.members) {
    StaticEpoch& e = epochs_[static_cast<std::size_t>(index_[a])];
    e.stmts.assign(ss.begin(), ss.end());
    for (AstId sid : ss) of_stmt_[sid].push_back(index_[a]);
  }
  for (auto& [sid, eps] : of_stmt_) std::sort(eps.begin(), eps.end());
}

int StaticEpochs::index_of(AstId anchor) const {
  const auto it = index_.find(anchor);
  return it == index_.end() ? -1 : it->second;
}

const std::vector<int>& StaticEpochs::epochs_of(AstId stmt) const {
  const auto it = of_stmt_.find(stmt);
  return it == of_stmt_.end() ? none_ : it->second;
}

// ---------------------------------------------------------------------------
// StaticSharing
// ---------------------------------------------------------------------------

StaticSharing::StaticSharing(const lang::Program& p, const StaticEpochs& ep,
                             int nodes)
    : nodes_(nodes) {
  if (nodes < 1 || nodes > 64) {
    throw std::runtime_error(
        "static planner supports 1..64 nodes (one bit per node)");
  }
  const ConstEnv cenv = ConstEnv::from(p, nodes);
  for (const auto& d : p.decls) {
    if (d->kind != StmtKind::SharedDecl) continue;
    if (d->dims.empty() || d->dims.size() > 2) continue;
    ArrayShape sh;
    sh.name = d->name;
    sh.two_d = d->dims.size() == 2;
    bool ok = true;
    const auto fold = [&](const Expr& e, long long& out) {
      const auto a = eval_affine(e, cenv);
      if (!a || a->p != 0 || a->c < 1) {
        ok = false;
        return;
      }
      out = std::llround(a->c);
    };
    fold(*d->dims[0], sh.d0);
    if (sh.two_d) fold(*d->dims[1], sh.d1);
    if (!ok) continue;  // non-constant extent: left unclassified
    shape_index_[sh.name] = static_cast<int>(shapes_.size());
    shapes_.push_back(std::move(sh));
  }

  masks_.assign(ep.epochs().size(), {});
  for (auto& row : masks_) {
    row.resize(shapes_.size());
    for (std::size_t a = 0; a < shapes_.size(); ++a) {
      const auto elems = static_cast<std::size_t>(shapes_[a].elems());
      row[a].w.assign(elems, 0);
      row[a].r.assign(elems, 0);
    }
  }

  for (int n = 0; n < nodes; ++n) {
    NodeWalk w{ep, shapes_, shape_index_, masks_, n, nodes, {}};
    for (const auto& [k, v] : cenv.consts) w.env.v[k] = Interval::point(v);
    w.walk(p.body);
  }
}

int StaticSharing::array_index(const std::string& name) const {
  const auto it = shape_index_.find(name);
  return it == shape_index_.end() ? -1 : it->second;
}

const AccessMasks& StaticSharing::masks(int epoch, int array) const {
  return masks_[static_cast<std::size_t>(epoch)]
               [static_cast<std::size_t>(array)];
}

ShareClass StaticSharing::classify(int epoch, int array,
                                   std::uint32_t elem) const {
  const AccessMasks& m = masks(epoch, array);
  const std::uint64_t w = m.w[elem] | m.approx_w;
  const std::uint64_t r = m.r[elem] | m.approx_r;
  if (w == 0 && r == 0) return ShareClass::Untouched;
  if (w == 0) return ShareClass::SharedRead;
  if ((w & (w - 1)) == 0 && (r & ~w) == 0) return ShareClass::Exclusive;
  return ShareClass::Conflict;
}

// ---------------------------------------------------------------------------
// plan_static
// ---------------------------------------------------------------------------

StaticPlan plan_static(const lang::Program& p, int nodes,
                       const StaticPlanOptions& opt) {
  const StaticEpochs ep(p);
  const StaticSharing sh(p, ep, nodes);

  StaticPlan plan;
  plan.nodes = nodes;
  plan.shapes = sh.shapes();
  const int num_epochs = static_cast<int>(ep.epochs().size());
  const int num_arrays = static_cast<int>(plan.shapes.size());

  // Per (epoch, array): per-node exclusive-write / shared-read / any-read
  // element sets plus any-writer and other-reader summaries.  These are
  // the static SW/SR/S sets the trace would have delivered.
  struct Sets {
    std::vector<Bits> sw, sr, rd, rother;
    Bits wany;
  };
  std::vector<std::vector<Sets>> sets(
      static_cast<std::size_t>(num_epochs),
      std::vector<Sets>(static_cast<std::size_t>(num_arrays)));
  std::vector<long long> conflict_elems(static_cast<std::size_t>(num_arrays),
                                        0);
  std::vector<bool> approx_any(static_cast<std::size_t>(num_arrays), false);

  for (int e = 0; e < num_epochs; ++e) {
    for (int a = 0; a < num_arrays; ++a) {
      const long long elems = plan.shapes[static_cast<std::size_t>(a)].elems();
      Sets& st = sets[static_cast<std::size_t>(e)][static_cast<std::size_t>(a)];
      st.sw.assign(static_cast<std::size_t>(nodes), make_bits(elems));
      st.sr = st.sw;
      st.rd = st.sw;
      st.rother = st.sw;
      st.wany = make_bits(elems);
      const AccessMasks& m = sh.masks(e, a);
      if ((m.approx_w | m.approx_r) != 0) {
        approx_any[static_cast<std::size_t>(a)] = true;
      }
      bool conflicted = false;
      for (long long i = 0; i < elems; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const ShareClass cls =
            sh.classify(e, a, static_cast<std::uint32_t>(i));
        if ((m.w[idx] | m.approx_w) != 0) set_bit(st.wany, i);
        if (cls == ShareClass::Conflict) {
          ++conflict_elems[static_cast<std::size_t>(a)];
          conflicted = true;
        }
        for (int n = 0; n < nodes; ++n) {
          const std::uint64_t bit = 1ULL << n;
          const auto ns = static_cast<std::size_t>(n);
          if ((m.r[idx] & bit) != 0) set_bit(st.rd[ns], i);
          if (((m.r[idx] | m.approx_r) & ~bit) != 0) {
            set_bit(st.rother[ns], i);
          }
          if (cls == ShareClass::Exclusive && (m.w[idx] & bit) != 0) {
            set_bit(st.sw[ns], i);
          }
          if (cls == ShareClass::SharedRead && (m.r[idx] & bit) != 0) {
            set_bit(st.sr[ns], i);
          }
        }
      }
      (void)conflicted;
    }
  }

  // Family accumulation keyed by (anchor, at_start, kind, array).
  std::map<std::tuple<AstId, int, int, std::string>, std::vector<Bits>> fam;
  const auto add = [&](AstId anchor, bool at_start, sim::DirectiveKind kind,
                       int array, int node, const Bits& b) {
    if (!any_bit(b)) return;
    const std::string& name = plan.shapes[static_cast<std::size_t>(array)].name;
    auto& pn = fam[{anchor, at_start ? 1 : 0, static_cast<int>(kind), name}];
    if (pn.empty()) {
      pn.assign(static_cast<std::size_t>(nodes),
                make_bits(plan.shapes[static_cast<std::size_t>(array)].elems()));
    }
    bits_or(pn[static_cast<std::size_t>(node)], b);
  };

  const bool programmer = opt.mode == PlanMode::Programmer;

  for (int a = 0; a < num_arrays; ++a) {
    const long long elems = plan.shapes[static_cast<std::size_t>(a)].elems();
    const Bits universe = universe_bits(elems);
    for (int n = 0; n < nodes; ++n) {
      const auto ns = static_cast<std::size_t>(n);
      const auto at = [&](int e) -> const Sets& {
        return sets[static_cast<std::size_t>(e)][static_cast<std::size_t>(a)];
      };

      // check_in sets per epoch (no fixpoint: only successor needs).
      std::vector<Bits> ci(static_cast<std::size_t>(num_epochs));
      for (int e = 0; e < num_epochs; ++e) {
        const Sets& cur = at(e);
        Bits succ_s = make_bits(elems);
        Bits succ_w = make_bits(elems);
        Bits succ_ro = make_bits(elems);
        for (AstId banchor : ep.epochs()[static_cast<std::size_t>(e)].succ) {
          const Sets& nxt = at(ep.index_of(banchor));
          bits_or(succ_s, nxt.sw[ns]);
          bits_or(succ_s, nxt.sr[ns]);
          bits_or(succ_w, nxt.wany);
          bits_or(succ_ro, nxt.rother[ns]);
        }
        if (programmer) {
          Bits s = cur.sw[ns];
          bits_or(s, cur.sr[ns]);
          ci[static_cast<std::size_t>(e)] = sub_of(std::move(s), succ_s);
        } else {
          // Performance: release exclusives the node is done with,
          // release shared copies a successor will write (cheapens the
          // writer's upgrade), and push freshly produced exclusives
          // that other nodes consume next epoch.
          Bits out = sub_of(cur.sw[ns], succ_s);
          bits_or(out, and_of(cur.sr[ns], succ_w));
          bits_or(out, and_of(cur.sw[ns], succ_ro));
          ci[static_cast<std::size_t>(e)] = std::move(out);
        }
      }

      // Must-hold dataflow over the epoch graph: an element is held at
      // epoch entry only if EVERY predecessor epoch left it held; that
      // is what makes skipping a re-checkout safe.
      std::vector<Bits> hx_in(static_cast<std::size_t>(num_epochs));
      std::vector<Bits> hx_out(static_cast<std::size_t>(num_epochs));
      std::vector<Bits> ha_in(static_cast<std::size_t>(num_epochs));
      std::vector<Bits> ha_out(static_cast<std::size_t>(num_epochs));
      for (int e = 0; e < num_epochs; ++e) {
        const auto es = static_cast<std::size_t>(e);
        hx_in[es] = e == 0 ? make_bits(elems) : universe;
        ha_in[es] = hx_in[es];
        hx_out[es] = universe;
        ha_out[es] = universe;
      }
      for (bool changed = true; changed;) {
        changed = false;
        for (int e = 0; e < num_epochs; ++e) {
          const auto es = static_cast<std::size_t>(e);
          const StaticEpoch& epoch = ep.epochs()[es];
          if (e != 0) {
            Bits in = universe;
            for (AstId panchor : epoch.pred) {
              bits_and(in, hx_out[static_cast<std::size_t>(
                             ep.index_of(panchor))]);
            }
            if (!(in == hx_in[es])) {
              hx_in[es] = std::move(in);
              changed = true;
            }
            Bits ain = universe;
            for (AstId panchor : epoch.pred) {
              bits_and(ain, ha_out[static_cast<std::size_t>(
                              ep.index_of(panchor))]);
            }
            if (!(ain == ha_in[es])) {
              ha_in[es] = std::move(ain);
              changed = true;
            }
          }
          // Writes acquire exclusive ownership whether or not a
          // checkout was planned (performance mode's write-first).
          Bits x = hx_in[es];
          bits_or(x, at(e).sw[ns]);
          bits_sub(x, ci[es]);
          if (!(x == hx_out[es])) {
            hx_out[es] = std::move(x);
            changed = true;
          }
          Bits h = ha_in[es];
          bits_or(h, at(e).sw[ns]);
          if (programmer) bits_or(h, at(e).sr[ns]);
          bits_sub(h, ci[es]);
          if (!(h == ha_out[es])) {
            ha_out[es] = std::move(h);
            changed = true;
          }
        }
      }

      // Emit per-epoch families.
      for (int e = 0; e < num_epochs; ++e) {
        const auto es = static_cast<std::size_t>(e);
        const StaticEpoch& epoch = ep.epochs()[es];
        Bits need_x = at(e).sw[ns];
        if (!programmer) bits_and(need_x, at(e).rd[ns]);  // write-first skip
        add(epoch.anchor, true, sim::DirectiveKind::CheckOutX, a, n,
            sub_of(std::move(need_x), hx_in[es]));
        if (programmer) {
          add(epoch.anchor, true, sim::DirectiveKind::CheckOutS, a, n,
              sub_of(at(e).sr[ns], ha_in[es]));
        } else if (opt.prefetch) {
          add(epoch.anchor, true, sim::DirectiveKind::PrefetchS, a, n,
              sub_of(at(e).sr[ns], hx_in[es]));
        }
        for (AstId banchor : epoch.succ) {
          add(banchor, false, sim::DirectiveKind::CheckIn, a, n, ci[es]);
        }
        // A final epoch (no following barrier) releases at program end.
        // Only its OWN sets are pushed there: elements still held from
        // earlier epochs were last touched before a barrier, and a
        // check_in of an untouched, never-checked-out array would itself
        // lint as CICO005.  Termination reclaims ownership anyway.
        if (epoch.succ.empty()) {
          add(0, false, sim::DirectiveKind::CheckIn, a, n, ci[es]);
        }
      }
    }
  }

  // ---- lint closure over the family map --------------------------------
  //
  // The emitted program must self-lint clean, and the linter's per-array
  // typestate is coarser than the per-element plan: it joins pid-guarded
  // directives conservatively and licenses an epoch's accesses either by
  // a checkout at the epoch start or by a check_in of the array reaching
  // the epoch's end (the backward `checkin_ahead` fact -- array-granular,
  // so the check_in only has to exist, not cover the exact region).  Two
  // structural rules close the plan against it; both only ADD or WIDEN
  // annotations, which is always protocol-safe.

  // (a) A check_out_S planned at an epoch where some node also writes the
  //     array would leave the linter's array state shared at the write
  //     (CICO003).  Plan the writers' check_out_X alongside; emission
  //     orders S before X (cos_before_cox) so the joined state ends
  //     exclusive.
  {
    struct CoxGuard {
      AstId anchor;
      int array;
      int node;
      Bits bits;
    };
    std::vector<CoxGuard> guards;
    for (const auto& [key, pn] : fam) {
      if (static_cast<sim::DirectiveKind>(std::get<2>(key)) !=
              sim::DirectiveKind::CheckOutS ||
          std::get<1>(key) != 1) {
        continue;
      }
      const AstId anchor = std::get<0>(key);
      const int a = sh.array_index(std::get<3>(key));
      const int e = ep.index_of(anchor);
      if (a < 0 || e < 0) continue;
      const long long elems = plan.shapes[static_cast<std::size_t>(a)].elems();
      const AccessMasks& m = sh.masks(e, a);
      for (int n = 0; n < nodes; ++n) {
        Bits wb = make_bits(elems);
        for (long long i = 0; i < elems; ++i) {
          if (((m.w[static_cast<std::size_t>(i)] | m.approx_w) >> n) & 1) {
            set_bit(wb, i);
          }
        }
        if (any_bit(wb)) guards.push_back({anchor, a, n, std::move(wb)});
      }
    }
    for (const CoxGuard& g : guards) {
      add(g.anchor, true, sim::DirectiveKind::CheckOutX, g.array, g.node,
          g.bits);
    }
  }

  // (b) Every epoch that touches a MANAGED array (one with any planned
  //     checkout -- unmanaged arrays are exempt from the access rules)
  //     must either start with a checkout of it or reach a check_in of it
  //     at EVERY end boundary (each successor barrier; the program end
  //     for a final epoch).  Add a check_in of each node's touched hull
  //     at the boundaries that lack one.
  {
    std::set<std::string> managed;
    for (const auto& [key, pn] : fam) {
      const auto kind = static_cast<sim::DirectiveKind>(std::get<2>(key));
      if (kind == sim::DirectiveKind::CheckOutX ||
          kind == sim::DirectiveKind::CheckOutS) {
        managed.insert(std::get<3>(key));
      }
    }
    struct SuppCi {
      AstId boundary;
      int array;
      int node;
      Bits bits;
    };
    std::vector<SuppCi> supp;
    for (int e = 0; e < num_epochs; ++e) {
      const StaticEpoch& epoch = ep.epochs()[static_cast<std::size_t>(e)];
      for (int a = 0; a < num_arrays; ++a) {
        const auto as = static_cast<std::size_t>(a);
        const std::string& name = plan.shapes[as].name;
        if (!managed.contains(name)) continue;
        const bool has_co =
            fam.contains({epoch.anchor, 1,
                          static_cast<int>(sim::DirectiveKind::CheckOutX),
                          name}) ||
            fam.contains({epoch.anchor, 1,
                          static_cast<int>(sim::DirectiveKind::CheckOutS),
                          name});
        if (has_co) continue;
        const long long elems = plan.shapes[as].elems();
        const AccessMasks& m = sh.masks(e, a);
        std::vector<Bits> touched(static_cast<std::size_t>(nodes));
        bool any = false;
        for (int n = 0; n < nodes; ++n) {
          Bits tb = make_bits(elems);
          if (((m.approx_w | m.approx_r) >> n) & 1) {
            tb = universe_bits(elems);
          } else {
            for (long long i = 0; i < elems; ++i) {
              const auto is = static_cast<std::size_t>(i);
              if (((m.w[is] | m.r[is]) >> n) & 1) set_bit(tb, i);
            }
          }
          if (any_bit(tb)) any = true;
          touched[static_cast<std::size_t>(n)] = std::move(tb);
        }
        if (!any) continue;
        std::vector<AstId> bounds(epoch.succ.begin(), epoch.succ.end());
        if (bounds.empty()) bounds.push_back(0);
        for (AstId b : bounds) {
          if (fam.contains(
                  {b, 0, static_cast<int>(sim::DirectiveKind::CheckIn),
                   name})) {
            continue;
          }
          for (int n = 0; n < nodes; ++n) {
            const auto ns = static_cast<std::size_t>(n);
            if (any_bit(touched[ns])) supp.push_back({b, a, n, touched[ns]});
          }
        }
      }
    }
    for (const SuppCi& s : supp) {
      add(s.boundary, false, sim::DirectiveKind::CheckIn, s.array, s.node,
          s.bits);
    }
  }

  // Pair every checked-out array with at least one check_in so the
  // planned program cannot trip CICO006 (checkout leak): anything whose
  // checkins all proved empty is released wholesale at program end.
  for (int a = 0; a < num_arrays; ++a) {
    const std::string& name = plan.shapes[static_cast<std::size_t>(a)].name;
    std::vector<Bits> out;
    bool has_ci = false;
    for (const auto& [key, pn] : fam) {
      if (std::get<3>(key) != name) continue;
      const auto kind = static_cast<sim::DirectiveKind>(std::get<2>(key));
      if (kind == sim::DirectiveKind::CheckIn) {
        has_ci = true;
      } else if (kind == sim::DirectiveKind::CheckOutX ||
                 kind == sim::DirectiveKind::CheckOutS) {
        if (out.empty()) {
          out = pn;
        } else {
          for (std::size_t i = 0; i < pn.size(); ++i) bits_or(out[i], pn[i]);
        }
      }
    }
    if (!has_ci && !out.empty()) {
      for (int n = 0; n < nodes; ++n) {
        add(0, false, sim::DirectiveKind::CheckIn, a, n,
            out[static_cast<std::size_t>(n)]);
      }
    }
  }

  // Rectangle normalization, last so it covers every family the closure
  // passes and the leak fallback added.  Emission renders only exact
  // rectangles (then fits them affinely in pid); a ragged set -- e.g. a
  // block's two halo rows -- would be dropped there, losing the
  // annotation entirely.  Each node's set is decomposed into row-band
  // rectangles published as split `part`s of the family; sets too
  // scattered to split cheaply are widened to their bounding rectangle
  // instead (protocol-safe: annotations are hints).
  std::set<std::string> widened;
  for (const auto& [key, pn] : fam) {
    const int a = sh.array_index(std::get<3>(key));
    if (a < 0) continue;
    const ArrayShape& shp = plan.shapes[static_cast<std::size_t>(a)];
    const long long elems = shp.elems();
    std::vector<std::vector<Bits>> parts(pn.size());
    std::size_t nparts = 0;
    for (std::size_t i = 0; i < pn.size(); ++i) {
      bool w = false;
      parts[i] = split_rects(pn[i], shp, kMaxFamilyParts, w);
      if (w) widened.insert(std::get<3>(key));
      nparts = std::max(nparts, parts[i].size());
    }
    for (std::size_t k = 0; k < std::max<std::size_t>(nparts, 1); ++k) {
      StaticFamily f;
      f.anchor = std::get<0>(key);
      f.at_start = std::get<1>(key) != 0;
      f.kind = static_cast<sim::DirectiveKind>(std::get<2>(key));
      f.array = std::get<3>(key);
      f.part = static_cast<int>(k);
      f.per_node.reserve(pn.size());
      bool any = false;
      for (const std::vector<Bits>& np : parts) {
        if (k < np.size()) {
          f.per_node.push_back(bits_to_elems(np[k], elems));
          any = any || !f.per_node.back().empty();
        } else {
          f.per_node.emplace_back();
        }
      }
      if (any) plan.families.push_back(std::move(f));
    }
  }
  for (const std::string& name : widened) {
    plan.notes.push_back("static: '" + name +
                         "': widened scattered region(s) to their bounding "
                         "rectangle for emission");
  }
  std::sort(plan.families.begin(), plan.families.end(),
            [](const StaticFamily& a, const StaticFamily& b) {
              return std::tie(a.anchor, a.at_start, a.kind, a.array, a.part) <
                     std::tie(b.anchor, b.at_start, b.kind, b.array, b.part);
            });

  for (int a = 0; a < num_arrays; ++a) {
    const auto as = static_cast<std::size_t>(a);
    if (conflict_elems[as] > 0) {
      ++plan.conflict_pairs;
      plan.notes.push_back("static: '" + plan.shapes[as].name + "': " +
                           std::to_string(conflict_elems[as]) +
                           " conflicting element-epochs left unannotated");
    }
    if (approx_any[as]) {
      plan.notes.push_back("static: '" + plan.shapes[as].name +
                           "': non-affine subscripts approximated to the "
                           "whole array");
    }
  }

  return plan;
}

}  // namespace cico::analysis
