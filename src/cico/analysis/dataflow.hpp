// Reusable dataflow framework over the MiniPar control-flow graph.
//
// The CICO typestate linter (typestate.hpp) and a pair of classic base
// analyses (reaching definitions, live shared arrays) are all built on the
// same pieces:
//
//   * CfgInfo      -- derived graph structure: reverse postorder, exit
//                     blocks, reachability, loop headers (retreating-edge
//                     targets);
//   * Dominators   -- iterative dominator tree (Cooper-Harvey-Kennedy),
//                     back edges and a reducibility check;
//   * solve()      -- a direction-agnostic worklist solver parameterised
//                     by a Domain (lattice + transfer), with optional
//                     loop-aware widening at header blocks so
//                     infinite-height domains still terminate;
//   * StmtIndex / SharedArrays / shared_accesses() -- statement lookup and
//     shared-array access extraction shared by every client.
//
// Domain concept (duck-typed, checked at instantiation):
//
//   struct Domain {
//     using State = ...;                             // copyable
//     State init() const;                            // bottom
//     State boundary() const;                        // entry/exit value
//     bool  join(State& into, const State& from) const;   // true if grew
//     bool  widen(State& into, const State& from) const;  // >= join
//     void  transfer(std::uint32_t block, State& s) const;
//   };
//
// transfer() applies the whole block in the solve direction (a backward
// domain walks the block's statements in reverse itself).
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cico/lang/cfg.hpp"

namespace cico::analysis {

// ---------------------------------------------------------------------------
// Graph structure
// ---------------------------------------------------------------------------

/// Orderings and reachability derived from a Cfg.  The Cfg must outlive it.
struct CfgInfo {
  explicit CfgInfo(const lang::Cfg& cfg);

  const lang::Cfg* cfg = nullptr;
  /// Reachable blocks in reverse postorder (entry first).
  std::vector<std::uint32_t> rpo;
  /// rpo position per block id; kUnreachable for unreachable blocks.
  std::vector<std::uint32_t> rpo_pos;
  /// Reachable blocks with no successors (backward-analysis boundary).
  std::vector<std::uint32_t> exits;
  /// Targets of retreating edges (loop headers in a reducible graph).
  std::vector<bool> is_header;

  static constexpr std::uint32_t kUnreachable = 0xffffffffu;

  [[nodiscard]] bool reachable(std::uint32_t b) const {
    return b < rpo_pos.size() && rpo_pos[b] != kUnreachable;
  }
};

/// Immediate dominators over the reachable subgraph.
class Dominators {
 public:
  Dominators(const lang::Cfg& cfg, const CfgInfo& info);

  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Immediate dominator; entry's idom is itself, kNone for unreachable.
  [[nodiscard]] std::uint32_t idom(std::uint32_t b) const { return idom_[b]; }
  /// Reflexive dominance over reachable blocks.
  [[nodiscard]] bool dominates(std::uint32_t a, std::uint32_t b) const;
  /// Edges tail->header whose header dominates the tail.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
  back_edges() const {
    return back_edges_;
  }
  /// True when every retreating edge is a back edge (structured MiniPar
  /// CFGs always are; the typestate checker relies on it).
  [[nodiscard]] bool is_reducible() const { return reducible_; }

 private:
  const CfgInfo* info_;
  std::vector<std::uint32_t> idom_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> back_edges_;
  bool reducible_ = true;
};

// ---------------------------------------------------------------------------
// Worklist solver
// ---------------------------------------------------------------------------

enum class Direction : std::uint8_t { Forward, Backward };

template <class Domain>
struct Solution {
  /// Per-block state at the block's input edge in the solve direction
  /// (block entry for forward, block exit for backward).
  std::vector<typename Domain::State> in;
  /// State after transfer (block exit for forward, block entry backward).
  std::vector<typename Domain::State> out;
};

/// Iterates to a fixpoint.  When `widen_after` > 0, a header block whose
/// input has been recomputed more than `widen_after` times is widened
/// (Domain::widen) instead of joined -- domains with infinite ascending
/// chains (intervals, counters) terminate, finite domains are unaffected
/// if their widen() equals join().
template <class Domain>
Solution<Domain> solve(const CfgInfo& info, const Domain& dom,
                       Direction dir = Direction::Forward,
                       int widen_after = 0) {
  const auto& blocks = info.cfg->blocks();
  const std::size_t n = blocks.size();
  Solution<Domain> sol;
  sol.in.assign(n, dom.init());
  sol.out.assign(n, dom.init());

  const auto inputs = [&](std::uint32_t b) -> const std::vector<std::uint32_t>& {
    return dir == Direction::Forward ? blocks[b].pred : blocks[b].succ;
  };
  const auto is_boundary = [&](std::uint32_t b) {
    if (dir == Direction::Forward) return b == info.cfg->entry();
    return blocks[b].succ.empty();
  };

  // Seed in solve order: rpo forward, reverse rpo backward.
  std::deque<std::uint32_t> worklist;
  std::vector<bool> queued(n, false);
  const auto push = [&](std::uint32_t b) {
    if (!queued[b] && info.reachable(b)) {
      queued[b] = true;
      worklist.push_back(b);
    }
  };
  if (dir == Direction::Forward) {
    for (std::uint32_t b : info.rpo) push(b);
  } else {
    for (auto it = info.rpo.rbegin(); it != info.rpo.rend(); ++it) push(*it);
  }

  std::vector<std::uint32_t> visits(n, 0);
  while (!worklist.empty()) {
    const std::uint32_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    typename Domain::State newin = dom.init();
    if (is_boundary(b)) newin = dom.boundary();
    for (std::uint32_t p : inputs(b)) dom.join(newin, sol.out[p]);

    ++visits[b];
    const bool widen = widen_after > 0 && info.is_header[b] &&
                       visits[b] > static_cast<std::uint32_t>(widen_after);
    const bool in_changed = widen ? dom.widen(sol.in[b], newin)
                                  : dom.join(sol.in[b], newin);
    if (!in_changed && visits[b] > 1) continue;

    typename Domain::State o = sol.in[b];
    dom.transfer(b, o);
    if (dom.join(sol.out[b], o)) {
      const auto& outs =
          dir == Direction::Forward ? blocks[b].succ : blocks[b].pred;
      for (std::uint32_t s : outs) push(s);
    }
  }
  return sol;
}

// ---------------------------------------------------------------------------
// Program-side helpers
// ---------------------------------------------------------------------------

/// AstId -> Stmt lookup over a whole program (decls + body, recursive).
class StmtIndex {
 public:
  explicit StmtIndex(const lang::Program& p);
  /// nullptr when the id does not name a statement.
  [[nodiscard]] const lang::Stmt* stmt(lang::AstId id) const;

 private:
  void walk(const std::vector<lang::StmtPtr>& stmts);
  std::unordered_map<lang::AstId, const lang::Stmt*> by_id_;
};

/// The program's shared arrays, in declaration order.
struct SharedArrays {
  explicit SharedArrays(const lang::Program& p);
  std::vector<std::string> names;
  /// Index into names, or -1 when `name` is not a shared array.
  [[nodiscard]] int index_of(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return names.size(); }
};

/// One shared-array access made by a statement's own expressions.
struct SharedAccess {
  std::uint32_t array = 0;  ///< index into SharedArrays::names
  bool write = false;
  lang::SrcLoc loc;         ///< the access site (expr for reads, stmt for writes)
};

/// Accesses of one statement, reads first then the write (nested
/// statements report their own accesses in their own blocks).
[[nodiscard]] std::vector<SharedAccess> shared_accesses(
    const lang::Stmt& s, const SharedArrays& arrays);

// ---------------------------------------------------------------------------
// Base analyses
// ---------------------------------------------------------------------------

/// Classic reaching definitions for scalar (private / loop / const)
/// variables: which assignments may reach each block entry.
class ReachingDefs {
 public:
  ReachingDefs(const lang::Program& p, const lang::Cfg& cfg,
               const CfgInfo& info);
  /// Definition statements of `var` that may reach the entry of `block`
  /// (empty set when the variable is unknown or nothing reaches).
  [[nodiscard]] const std::set<lang::AstId>& reaching_in(
      std::uint32_t block, std::string_view var) const;
  [[nodiscard]] const std::vector<std::string>& vars() const { return vars_; }

 private:
  std::vector<std::string> vars_;
  std::vector<std::vector<std::set<lang::AstId>>> in_;  // [block][var]
  std::set<lang::AstId> empty_;
};

/// Backward may-liveness of shared arrays within an epoch: an array is
/// live at a point when some path reaches a shared access of it before
/// the next barrier (barriers kill all liveness -- epochs are the paper's
/// unit of annotation).
class LiveSharedArrays {
 public:
  LiveSharedArrays(const lang::Program& p, const lang::Cfg& cfg,
                   const CfgInfo& info);
  /// Is `array` (SharedArrays index) live at the entry of `block`?
  [[nodiscard]] bool live_in(std::uint32_t block, std::uint32_t array) const;
  [[nodiscard]] const SharedArrays& arrays() const { return arrays_; }

 private:
  SharedArrays arrays_;
  std::vector<std::vector<bool>> in_;  // [block][array]
};

}  // namespace cico::analysis
