// Affine range solver over MiniPar induction variables.
//
// The dynamic annotator recovers symbolic regions by fitting concrete
// per-node rectangles to affine functions of `pid`
// (srcann/annotator.cpp).  This header is the static mirror: it folds
// MiniPar expressions into the exact affine form  c + p*pid  under the
// program's const declarations, so region extents compare and join
// SEMANTICALLY -- `A[0:N-1]` and `A[0:15]` are the same region when
// `const N = 16`, and `B[pid*4 : pid*4+3]` is the same per-node slice
// however it is spelled.  Two clients:
//
//   * the typestate checker keys checkout regions by region_key() so
//     CICO004 (double checkout) catches semantically equal regions
//     spelled differently, with the raw unparse text as a conservative
//     fallback when a bound is not affine;
//   * the static planner (static_plan.hpp) evaluates subscripts into
//     Interval hulls per concrete pid to build its SW/SR epoch sets.
//
// Interval is a classic hull domain with join/widen, usable as a
// dataflow lattice (widen jumps unstable bounds to +-infinity so
// fixpoints terminate); arithmetic is hull-correct: the result interval
// contains every value the operator can produce from the operands.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "cico/lang/ast.hpp"

namespace cico::analysis {

// ---------------------------------------------------------------------------
// Const environment
// ---------------------------------------------------------------------------

/// Values of `const` declarations (MiniPar consts are program-wide and
/// assigned once, in declaration order), plus the node count when the
/// caller knows it (the planner does; the linter does not).
struct ConstEnv {
  std::map<std::string, double, std::less<>> consts;
  std::optional<double> nprocs;

  /// Folds the program's const declarations (each may reference the
  /// previous ones).  Non-foldable consts are simply absent.
  static ConstEnv from(const lang::Program& p,
                       std::optional<double> nprocs = std::nullopt);
};

// ---------------------------------------------------------------------------
// Affine form  c + p*pid
// ---------------------------------------------------------------------------

struct Affine {
  double c = 0;  ///< constant term
  double p = 0;  ///< pid coefficient

  friend bool operator==(const Affine& a, const Affine& b) {
    return a.c == b.c && a.p == b.p;
  }
};

/// Folds `e` to its affine-in-pid normal form under `env`: consts and
/// nprocs resolve to numbers, `pid` to the symbolic coefficient, and
/// +, -, unary -, * / by a constant, and const-only %, min, max fold
/// exactly.  nullopt when the expression is not affine in pid (array
/// loads, loop variables, privates, pid*pid, ...).
[[nodiscard]] std::optional<Affine> eval_affine(const lang::Expr& e,
                                                const ConstEnv& env);

/// Canonical semantic key for a directive region.  Every bound that folds
/// to an affine form renders canonically ("0", "15", "4*pid+3"); bounds
/// that do not fold keep their unparse text prefixed so a semantic key can
/// never collide with a textual one.  Equal keys => equal regions; the
/// fallback direction is conservative (textually different non-affine
/// spellings stay different).
[[nodiscard]] std::string region_key(const lang::ArrayRef& ref,
                                     const ConstEnv& env);

// ---------------------------------------------------------------------------
// Interval hull domain
// ---------------------------------------------------------------------------

/// Inclusive interval [lo, hi] over doubles; empty when lo > hi (the
/// lattice bottom).  Top is [-inf, +inf].
struct Interval {
  double lo = 1;
  double hi = 0;  // default-constructed: empty

  [[nodiscard]] static Interval point(double v) { return {v, v}; }
  [[nodiscard]] static Interval of(double lo, double hi) { return {lo, hi}; }
  [[nodiscard]] static Interval top();

  [[nodiscard]] bool empty() const { return lo > hi; }
  [[nodiscard]] bool is_point() const { return lo == hi; }
  [[nodiscard]] bool is_top() const;
  [[nodiscard]] bool contains(double v) const { return lo <= v && v <= hi; }
  [[nodiscard]] bool subset_of(const Interval& o) const;

  /// Convex hull; empty is the identity.
  [[nodiscard]] Interval join(const Interval& o) const;
  /// Widening: a bound that grew jumps to its infinity, so ascending
  /// chains stabilise in one step per side.
  [[nodiscard]] Interval widen(const Interval& o) const;

  // Hull-correct arithmetic (result contains f(a, b) for all a in this,
  // b in o).  Empty operands propagate to empty.
  [[nodiscard]] Interval add(const Interval& o) const;
  [[nodiscard]] Interval sub(const Interval& o) const;
  [[nodiscard]] Interval mul(const Interval& o) const;
  /// Division; top when the divisor straddles or touches zero.
  [[nodiscard]] Interval div(const Interval& o) const;
  /// Modulo by a constant-sign divisor; hull of the representative range.
  [[nodiscard]] Interval mod(const Interval& o) const;
  [[nodiscard]] Interval neg() const;
  [[nodiscard]] Interval min_with(const Interval& o) const;
  [[nodiscard]] Interval max_with(const Interval& o) const;

  friend bool operator==(const Interval& a, const Interval& b) {
    return (a.empty() && b.empty()) || (a.lo == b.lo && a.hi == b.hi);
  }
};

}  // namespace cico::analysis
