// Static annotation planner: epoch structure, per-pid sharing classes,
// and directive planning without a trace.
//
// The trace-driven annotator derives its SW/SR/S epoch sets from a
// Dir1SW miss trace (Cachier section 4).  This module is the static
// stand-in: it recovers the same shape of facts from the program text
// alone --
//
//   * StaticEpochs: the barrier structure as an epoch graph.  An epoch
//     is anchored at the barrier that starts it (anchor 0 = program
//     start); a statement may belong to several epochs when barriers
//     sit inside loops, so membership is a fixpoint over the
//     structured AST.
//   * StaticSharing: a per-`pid` interleaving abstraction.  Every
//     shared-array subscript is evaluated per concrete node into an
//     Interval hull (affine.hpp) under that node's scalar environment
//     (consts, pid, nprocs, flow-sensitively tracked privates, loop
//     hulls, decidable `if pid == k` guards), and each element of each
//     array is classified per epoch as Untouched / Exclusive(writer) /
//     SharedRead / Conflict.  Subscripts that do not evaluate become
//     whole-array approximations: they participate in classification
//     (conservatively demoting elements towards Conflict) but never
//     contribute to a node's exact sets, so over-approximation only
//     ever drops annotations -- which is always protocol-safe.
//   * plan_static(): checkout/checkin/prefetch planning over those
//     facts.  A must-hold dataflow over the epoch graph decides where
//     ownership survives a barrier, so checkouts are only planned
//     where no predecessor epoch is guaranteed to still hold the
//     region.  Performance mode adds a static producer-consumer rule
//     the dynamic chooser cannot see: elements written exclusively
//     this epoch and read by *other* nodes next epoch are checked in
//     at the boundary so consumers never hit a dirty remote line.
//
// The plan is expressed as per-node element sets per (anchor,
// placement, directive, array) family -- exactly what the srcann
// emission machinery consumes through its PlanSource seam.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cico/lang/ast.hpp"
#include "cico/lang/cfg.hpp"

namespace cico::analysis {

// ---------------------------------------------------------------------------
// Epoch graph
// ---------------------------------------------------------------------------

/// One epoch of the barrier-structured program.  `anchor` is the AstId
/// of the barrier that starts it (0 = program start); `succ` holds the
/// anchors of every epoch that can follow, which are also exactly the
/// barriers this epoch can end at.
struct StaticEpoch {
  lang::AstId anchor = 0;
  std::vector<lang::AstId> stmts;  ///< statements that may run in it (sorted)
  std::vector<lang::AstId> succ;   ///< anchors of possible next epochs
  std::vector<lang::AstId> pred;   ///< anchors of possible previous epochs
  bool ends_program = false;       ///< execution may end inside this epoch
};

class StaticEpochs {
 public:
  explicit StaticEpochs(const lang::Program& p);

  /// Epochs in anchor discovery order (program start first).
  [[nodiscard]] const std::vector<StaticEpoch>& epochs() const {
    return epochs_;
  }
  /// Index into epochs() for an anchor, -1 if unknown.
  [[nodiscard]] int index_of(lang::AstId anchor) const;
  /// Epoch indices a statement may execute in (empty for decls/unknown).
  [[nodiscard]] const std::vector<int>& epochs_of(lang::AstId stmt) const;

 private:
  std::vector<StaticEpoch> epochs_;
  std::map<lang::AstId, int> index_;
  std::map<lang::AstId, std::vector<int>> of_stmt_;
  std::vector<int> none_;
};

// ---------------------------------------------------------------------------
// Sharing classifier
// ---------------------------------------------------------------------------

/// Array geometry recovered from the shared declarations (const-folded
/// dims); arrays with non-constant dims are not classified.
struct ArrayShape {
  std::string name;
  long long d0 = 0;
  long long d1 = 1;
  bool two_d = false;

  [[nodiscard]] long long elems() const { return d0 * (two_d ? d1 : 1); }
};

/// Per-epoch sharing class of one array element.
enum class ShareClass : std::uint8_t {
  Untouched,   ///< no node touches it this epoch
  Exclusive,   ///< written by exactly one node, read by no other
  SharedRead,  ///< read only (any number of readers)
  Conflict,    ///< multiple writers, or a writer plus other readers
};

/// Per-(epoch, array) access record: one node bitmask per element for
/// exact reads and writes, plus per-node whole-array approximation bits
/// for subscripts that did not evaluate.
struct AccessMasks {
  std::vector<std::uint64_t> w;  ///< exact writers per element
  std::vector<std::uint64_t> r;  ///< exact readers per element
  std::uint64_t approx_w = 0;    ///< nodes with a non-evaluable write
  std::uint64_t approx_r = 0;    ///< nodes with a non-evaluable read
};

class StaticSharing {
 public:
  /// Evaluates every node in [0, nodes) through the program.  nodes must
  /// be in [1, 64] (one bit per node).
  StaticSharing(const lang::Program& p, const StaticEpochs& ep, int nodes);

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<ArrayShape>& shapes() const {
    return shapes_;
  }
  [[nodiscard]] int array_index(const std::string& name) const;

  /// Access record for (epoch index, array index).
  [[nodiscard]] const AccessMasks& masks(int epoch, int array) const;
  /// Classification of one element in one epoch (approximations count).
  [[nodiscard]] ShareClass classify(int epoch, int array,
                                    std::uint32_t elem) const;

 private:
  int nodes_ = 0;
  std::vector<ArrayShape> shapes_;
  std::map<std::string, int, std::less<>> shape_index_;
  std::vector<std::vector<AccessMasks>> masks_;  ///< [epoch][array]
};

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

/// Mirrors the trace annotator's modes: Programmer checks out every
/// access (X for exclusive writes, S for shared reads); Performance
/// drops shared-read checkouts and write-first exclusive checkouts, and
/// adds producer-consumer checkins.
enum class PlanMode : std::uint8_t { Programmer, Performance };

struct StaticPlanOptions {
  PlanMode mode = PlanMode::Performance;
  bool prefetch = false;  ///< plan prefetch_S of shared-read sets
};

/// One directive family: per-node element sets for one array at one
/// placement.  anchor 0 + at_start means program start; anchor 0 +
/// !at_start means program end; otherwise after/before that barrier.
struct StaticFamily {
  lang::AstId anchor = 0;
  bool at_start = true;
  sim::DirectiveKind kind = sim::DirectiveKind::CheckIn;
  std::string array;
  /// Rectangle index when one logical family was split into several
  /// disjoint rectangles for emission (0 when unsplit).
  int part = 0;
  std::vector<std::vector<std::uint32_t>> per_node;  ///< sorted elements
};

struct StaticPlan {
  int nodes = 0;
  std::vector<ArrayShape> shapes;
  std::vector<StaticFamily> families;  ///< sorted (anchor, end<start, kind, array)
  std::vector<std::string> notes;      ///< conflict / approximation notes
  int conflict_pairs = 0;  ///< (epoch, array) pairs with conflicting elements
};

/// Plans directives for `nodes` nodes from static analysis alone.
/// Throws std::runtime_error when nodes is outside [1, 64].
[[nodiscard]] StaticPlan plan_static(const lang::Program& p, int nodes,
                                     const StaticPlanOptions& opt = {});

}  // namespace cico::analysis
