// Lint diagnostics: rule catalogue, ordering, text and JSON rendering.
//
// Diagnostics are a CI artifact like the run reports: deterministic order,
// schema-versioned JSON (diffable with `cachier diff`), and a fixed exit
// contract (0 clean / 1 warnings / 2 errors) that scripts can rely on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cico/obs/json.hpp"

namespace cico::analysis {

/// Version of the lint --json document layout.  Bump when the shape of the
/// document changes; `cachier diff` accepts any supported report version.
inline constexpr int kLintSchemaVersion = 1;

enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] const char* severity_name(Severity s);

/// Stable rule identifiers (the number is part of the public contract --
/// never renumber, only append).
enum class Rule : std::uint8_t {
  MissedCheckoutWrite = 1,   ///< CICO001: shared write outside a checkout
  MissedCheckoutRead = 2,    ///< CICO002: shared read outside a checkout
  WriteUnderShared = 3,      ///< CICO003: write while checked out shared
  DoubleCheckout = 4,        ///< CICO004: re-checkout of an identical region
  CheckinWithoutCheckout = 5,///< CICO005: check_in on a never-checked-out array
  CheckoutLeak = 6,          ///< CICO006: checkout never checked in on some path
  EarlyCheckin = 7,          ///< CICO007: check_in before a later use (Mp3d)
  RedundantLoopCheckout = 8, ///< CICO008: loop-invariant checkout in a loop (MM)
  PrefetchAfterUse = 9,      ///< CICO009: prefetch after the first access
};

/// "CICO001" etc.
[[nodiscard]] std::string rule_id(Rule r);
/// Short kebab-case rule name ("missed-checkout-write").
[[nodiscard]] const char* rule_name(Rule r);

struct Diagnostic {
  Rule rule = Rule::MissedCheckoutWrite;
  Severity severity = Severity::Warning;
  int line = 0;
  int col = 0;
  std::string array;    ///< shared array the diagnostic is about
  std::string message;  ///< one-line description
  std::string hint;     ///< suggested fix ("" = none)
  /// Machine-applicable fix anchors (analysis/fix.hpp): the AstId of the
  /// statement the diagnostic is about and an optional auxiliary statement
  /// (e.g. CICO008's enclosing loop).  0 = none.  Not rendered: the text
  /// and JSON documents are unchanged by these fields.
  std::uint32_t stmt_id = 0;
  std::uint32_t aux_id = 0;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] int errors() const;
  [[nodiscard]] int warnings() const;
  [[nodiscard]] int notes() const;
  /// 0 clean, 1 warnings only, 2 any error.
  [[nodiscard]] int exit_code() const;
};

/// Deterministic order: (line, col, rule, array, message).
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Human-readable listing: "file:line:col: severity: [CICO00x] message"
/// lines (+ indented "hint: ..." lines) and a trailing summary.
void print_text(std::ostream& os, const std::string& file,
                const LintResult& result);

/// Schema-versioned JSON document (see docs/static_analysis.md).
[[nodiscard]] obs::Json lint_json(const std::string& file,
                                  const LintResult& result);

}  // namespace cico::analysis
