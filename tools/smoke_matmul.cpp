#include <chrono>
#include <cstdio>
#include "apps/matmul.hpp"
#include "apps/runner.hpp"
#include "cico/common/parse_num.hpp"
using namespace cico;
using namespace cico::apps;
int main(int argc, char** argv) {
  std::size_t n = 64;
  if (argc > 1) {
    try {
      n = parse_num<std::size_t>(argv[1], "matrix size");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "smoke_matmul: error: %s\n", e.what());
      return 2;
    }
  }
  HarnessConfig hc;
  hc.sim.nodes = 32;
  MatMulConfig mc; mc.n = n;
  Harness h([mc](std::uint64_t seed){ return std::make_unique<MatMul>(mc, seed); }, hc);
  auto t0 = std::chrono::steady_clock::now();
  auto rs = h.run_variants({Variant::None, Variant::Hand, Variant::Cachier, Variant::CachierPf});
  auto t1 = std::chrono::steady_clock::now();
  printf("%s\n", format_fig6_rows(rs).c_str());
  for (auto& r : rs)
    printf("  %-10s time=%llu traps=%llu wf=%llu rm=%llu msgs=%llu ok=%d\n", r.variant.c_str(),
      (unsigned long long)r.time, (unsigned long long)r.stat(Stat::Traps),
      (unsigned long long)r.stat(Stat::WriteFaults), (unsigned long long)r.stat(Stat::ReadMisses),
      (unsigned long long)r.stat(Stat::Messages), (int)r.verified);
  printf("wall: %.1fs\n", std::chrono::duration<double>(t1-t0).count());
  return 0;
}
