// cachier -- the command-line tool.
//
// Drives the full paper pipeline (Fig. 1) on a MiniPar source file:
//
//   cachier annotate prog.mp [-n nodes] [--mode programmer|performance]
//       trace the unannotated program, insert CICO annotations, print the
//       annotated source to stdout (the paper's core use case)
//   cachier run prog.mp [-n nodes]
//       run a (possibly annotated) program and print execution statistics
//   cachier report prog.mp [-n nodes]
//       print the data-race / false-sharing report
//   cachier compare prog.mp [-n nodes] [--mode ...]
//       annotate, then run both versions and print the speedup
//   cachier trace prog.mp [-n nodes]
//       dump the Fig. 3 trace (text format) to stdout
//
// Exit status: 0 on success, 1 on usage errors, 2 on program errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/srcann/annotator.hpp"

using namespace cico;

namespace {

struct Options {
  std::string command;
  std::string file;
  std::uint32_t nodes = 8;
  cachier::Mode mode = cachier::Mode::Performance;
};

void usage() {
  std::fprintf(stderr,
               "usage: cachier <annotate|run|report|compare|trace> prog.mp "
               "[-n nodes] [--mode programmer|performance]\n");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Traced {
  trace::Trace trace;
  Cycle time = 0;
  std::string report;
};

Traced trace_program(const lang::Program& prog, std::uint32_t nodes) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  Traced t;
  t.trace = w.take();
  t.time = m.exec_time();
  cachier::SharingAnalyzer sa(t.trace, cfg.cache);
  t.report = sa.report(t.trace, m.pcs());
  return t;
}

Cycle run_program(const lang::Program& prog, std::uint32_t nodes,
                  bool print_stats) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  sim::Machine m(cfg);
  lang::LoadedProgram lp(prog, m);
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  if (print_stats) {
    std::printf("nodes:            %u\n", nodes);
    std::printf("execution time:   %llu cycles\n",
                static_cast<unsigned long long>(m.exec_time()));
    std::printf("epochs:           %u\n", m.epochs_completed());
    for (Stat s : {Stat::SharedLoads, Stat::SharedStores, Stat::ReadMisses,
                   Stat::WriteMisses, Stat::WriteFaults, Stat::Traps,
                   Stat::Invalidations, Stat::Messages, Stat::CheckOutX,
                   Stat::CheckOutS, Stat::CheckIns, Stat::PrefetchIssued}) {
      std::printf("%-17s %llu\n",
                  (std::string(stat_name(s)) + ":").c_str(),
                  static_cast<unsigned long long>(m.stats().total(s)));
    }
  }
  return m.exec_time();
}

srcann::AnnotateResult annotate_program(const lang::Program& prog,
                                        std::uint32_t nodes,
                                        cachier::Mode mode,
                                        Traced* traced_out = nullptr) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  trace::Trace t = w.take();
  if (traced_out != nullptr) traced_out->trace = t;
  return srcann::annotate(prog, t, lp, cfg.cache, {.mode = mode});
}

int dispatch(const Options& opt) {
  lang::Program prog = lang::parse(slurp(opt.file));

  if (opt.command == "run") {
    run_program(prog, opt.nodes, /*print_stats=*/true);
    return 0;
  }
  if (opt.command == "trace") {
    Traced t = trace_program(prog, opt.nodes);
    trace::save_text(t.trace, std::cout);
    return 0;
  }
  if (opt.command == "report") {
    Traced t = trace_program(prog, opt.nodes);
    std::printf("%s", t.report.c_str());
    return 0;
  }
  if (opt.command == "annotate") {
    srcann::AnnotateResult res = annotate_program(prog, opt.nodes, opt.mode);
    std::printf("%s", lang::unparse(res.program).c_str());
    std::fprintf(stderr,
                 "# cachier: %zu annotations, %zu generated loops, %zu "
                 "dropped, %zu races, %zu false-sharing blocks\n",
                 res.inserted, res.generated_loops, res.dropped, res.races,
                 res.false_shares);
    return 0;
  }
  if (opt.command == "compare") {
    srcann::AnnotateResult res = annotate_program(prog, opt.nodes, opt.mode);
    lang::Program annotated = lang::parse(lang::unparse(res.program));
    std::printf("-- unannotated --\n");
    const Cycle base = run_program(prog, opt.nodes, true);
    std::printf("-- %s CICO (%zu annotations) --\n",
                cachier::mode_name(opt.mode), res.inserted);
    const Cycle anno = run_program(annotated, opt.nodes, true);
    std::printf("\nnormalized execution time: %.3f\n",
                static_cast<double>(anno) / static_cast<double>(base));
    return 0;
  }
  usage();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-n" && i + 1 < argc) {
      opt.nodes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "programmer") opt.mode = cachier::Mode::Programmer;
      else if (m == "performance") opt.mode = cachier::Mode::Performance;
      else {
        usage();
        return 1;
      }
    } else if (opt.command.empty()) {
      opt.command = arg;
    } else if (opt.file.empty()) {
      opt.file = arg;
    } else {
      usage();
      return 1;
    }
  }
  if (opt.command.empty() || opt.file.empty() || opt.nodes == 0) {
    usage();
    return 1;
  }
  try {
    return dispatch(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachier: %s\n", e.what());
    return 2;
  }
}
