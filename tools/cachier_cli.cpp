// cachier -- the command-line tool.
//
// Drives the full paper pipeline (Fig. 1) on a MiniPar source file:
//
//   cachier annotate prog.mp [-n nodes] [--mode programmer|performance]
//       trace the unannotated program, insert CICO annotations, print the
//       annotated source to stdout (the paper's core use case)
//   cachier annotate --static prog.mp [-n nodes] [--mode ...] [--prefetch]
//       trace-free Cachier: plan the annotations from static analysis
//       alone (affine region solving + the static sharing classifier,
//       docs/static_analysis.md) -- no simulation, no trace; --prefetch
//       additionally plans prefetch_S of shared-read sets
//   cachier run prog.mp [-n nodes] [--plan file] [--faults spec] [--paranoid]
//       run a (possibly annotated) program and print execution statistics
//   cachier plan prog.mp [-n nodes] [--mode ...]
//       trace the program and print the Cachier directive plan (load it
//       back with `run --plan`)
//   cachier report prog.mp [-n nodes]
//       print the data-race / false-sharing report
//   cachier compare prog.mp [-n nodes] [--mode ...] [--faults spec] [--paranoid]
//       annotate, then run both versions and print the speedup
//   cachier trace prog.mp [-n nodes]
//       dump the Fig. 3 trace (text format) to stdout
//   cachier trace --load file
//       validate a saved text trace and re-emit it canonically (exit 2
//       with a line-numbered message on malformed input)
//   cachier soak [--campaigns N] [--seed s] [--faults spec]
//       run seeded fault-injection campaigns over the bundled apps
//       (each campaign runs twice to verify per-seed determinism) and
//       report survival / retry / timeout statistics; failing campaigns
//       leave a repro spec under a temp directory (printed); SIGINT /
//       SIGTERM stops between runs, cleans the temp artifacts, reports
//       the partial campaign and exits 3 (distinct from errors)
//   cachier store put <dir> <file> [--name n]
//   cachier store get <dir> <name> [-o file]
//   cachier store ls <dir>
//   cachier store gc <dir>
//       local content-addressed artifact store (docs/trace_store.md):
//       put chunks an artifact (traces are normalized to the epoch-chunked
//       v2 form so near-identical runs share chunks), get reassembles it
//       byte-for-byte with every chunk re-verified, ls lists manifests,
//       gc removes unreferenced objects
//   cachier sync <src-store> <dst-store>
//       copy only the missing chunks (and changed manifests) from one
//       store directory into another
//   cachier version
//       print the tool + schema versions as JSON (the same identity
//       document the cachierd handshake exchanges)
//   cachier diff baseline.json candidate.json [--tolerances file]
//               [--tol pattern=spec]... [--summary]
//       schema-aware structural diff of two --report files; exits 0
//       (identical), 1 (divergences, all within tolerance), or 2
//       (regression / malformed input) -- the CI regression gate
//       (docs/report_schema.md, docs/observability.md); --summary prints
//       a one-line verdict instead of the full listing
//   cachier lint prog.mp [--json diag.json]
//       static CICO typestate check (docs/static_analysis.md): verifies
//       the check-in/check-out discipline over the CFG and prints
//       file:line:col diagnostics with stable CICO00x rule ids; --json
//       writes the schema-versioned diagnostic document (diffable with
//       `cachier diff`); exits 0 clean / 1 warnings / 2 errors
//   cachier lint --fix prog.mp [--json diag.json]
//       apply every machine-applicable fix (analysis/fix.hpp) and print
//       the FIXED source to stdout; stderr gets a one-line summary and
//       any residual diagnostics; exits 0 only when the fixed program
//       lints clean, else 2
//
// Observability (run / compare): `--report out.json` writes the versioned
// JSON run report and `--events out.json` the Chrome trace-event export
// (docs/observability.md).  Both are pure functions of simulated state, so
// their bytes are identical for any --boundary-threads value.
// `--stream-epochs` writes epoch_series rows to a sidecar at each barrier
// flush instead of buffering them, keeping report memory O(1) in epoch
// count; the final report bytes are identical either way.
//
// Daemon mode: `--daemon <sock>` sends annotate / lint / run / trace /
// report / plan to a running cachierd instead of executing in-process
// (docs/cachierd.md).  The client streams status and diagnostics to
// stderr, prints the job's stdout bytes verbatim (byte-identical to a
// one-shot run, cached or fresh), honors `--deadline-ms`, and retries a
// busy or not-yet-listening daemon with exponential backoff.  A version
// mismatch at the handshake is exit 2.
//
// Exit status: 0 on success, 1 on usage errors, 2 on program errors
// (malformed numeric flags, parse errors, bad trace files, SimDeadlock,
// ProtocolTimeout, InvariantViolation, failed soak campaigns) -- every
// std::exception maps to exit 2 with a one-line `cachier: error: ...` on
// stderr.  `diff` overloads 1 as within-tolerance (its usage errors still
// print the usage text first).  `soak` adds exit 3: interrupted by
// SIGINT/SIGTERM with only a partial campaign completed.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "apps/ocean.hpp"
#include "cico/analysis/diagnostics.hpp"
#include "cico/analysis/fix.hpp"
#include "cico/analysis/typestate.hpp"
#include "cico/cachier/cachier.hpp"
#include "cico/common/parse_num.hpp"
#include "cico/daemon/client.hpp"
#include "cico/daemon/job.hpp"
#include "cico/daemon/protocol.hpp"
#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/obs/diff.hpp"
#include "cico/obs/report.hpp"
#include "cico/obs/stream.hpp"
#include "cico/sim/plan_io.hpp"
#include "cico/srcann/annotator.hpp"
#include "cico/store/store.hpp"
#include "cico/store/sync.hpp"

using namespace cico;

namespace {

struct Options {
  std::string command;
  std::string file;
  std::string file2;            ///< diff: candidate; store: dir; sync: dst
  std::string file3;            ///< store put/get: the file / artifact name
  std::string store_name;       ///< store put --name <n>
  std::string out_file;         ///< store get -o <file>
  std::uint32_t nodes = 8;
  cachier::Mode mode = cachier::Mode::Performance;
  std::string faults;           ///< FaultSpec text; empty = faults disabled
  bool paranoid = false;        ///< audit invariants at every epoch boundary
  bool audit_memo = true;       ///< memoize paranoid audits (--no-audit-memo)
  std::string plan_file;        ///< run --plan <file>
  std::uint32_t campaigns = 10; ///< soak campaigns
  std::uint64_t seed = 1;       ///< soak base seed
  std::uint32_t boundary_threads = 1;  ///< boundary-phase worker threads
  std::string report_file;      ///< run/compare --report <file>
  std::string events_file;      ///< run/compare --events <file>
  bool stream_epochs = false;   ///< stream epoch_series rows to a sidecar
  std::string trace_load;       ///< trace --load <file>
  std::string tolerances_file;  ///< diff --tolerances <file>
  std::vector<std::string> tol_flags;  ///< diff --tol pattern=spec
  bool diff_summary = false;    ///< diff --summary (one-line verdict)
  std::string json_file;        ///< lint --json <file>
  bool static_mode = false;     ///< annotate --static (trace-free planning)
  bool fix = false;             ///< lint --fix (apply machine fixes)
  bool prefetch = false;        ///< annotate --static --prefetch
  std::string daemon_sock;      ///< --daemon <sock>: send to cachierd
  std::uint64_t deadline_ms = 0;  ///< --deadline-ms for daemon jobs
};

void usage() {
  std::fprintf(
      stderr,
      "usage: cachier <annotate|run|plan|report|compare|trace> prog.mp\n"
      "               [-n nodes] [--mode programmer|performance]\n"
      "               [--plan file] [--faults spec] [--paranoid]\n"
      "               [--no-audit-memo]\n"
      "               [--boundary-threads N]\n"
      "               [--report out.json] [--events out.json]\n"
      "               [--stream-epochs]\n"
      "               [--daemon sock] [--deadline-ms N]\n"
      "       cachier annotate --static prog.mp [-n nodes] [--mode ...]\n"
      "               [--prefetch]   (trace-free planning)\n"
      "       cachier lint prog.mp [--fix] [--json diag.json] [--daemon sock]\n"
      "       cachier trace --load trace.txt\n"
      "       cachier version\n"
      "       cachier soak [--campaigns N] [--seed s] [--faults spec]\n"
      "               (exit 3 when interrupted by SIGINT/SIGTERM)\n"
      "       cachier diff baseline.json candidate.json\n"
      "               [--tolerances rules.toml] [--tol pattern=spec]...\n"
      "               [--summary]\n"
      "       cachier store put <dir> <file> [--name n]\n"
      "       cachier store get <dir> <name> [-o file]\n"
      "       cachier store ls <dir>\n"
      "       cachier store gc <dir>\n"
      "       cachier sync <src-store> <dst-store>\n");
}

const char* protocol_name(sim::ProtocolKind k) {
  return k == sim::ProtocolKind::DirNFullMap ? "dirn_full_map" : "dir1sw";
}

/// Opens `path` for writing or throws (maps to exit 2).
std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Binary-exact read for store artifacts (v1/v2 traces contain raw bytes).
std::string slurp_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

sim::SimConfig make_config(const Options& opt) {
  sim::SimConfig cfg;
  cfg.nodes = opt.nodes;
  if (!opt.faults.empty()) cfg.faults = fault::FaultSpec::parse(opt.faults);
  cfg.audit_invariants = opt.paranoid;
  cfg.audit_memo = opt.audit_memo;
  cfg.boundary_threads = opt.boundary_threads;
  return cfg;
}

struct Traced {
  trace::Trace trace;
  Cycle time = 0;
  std::string report;
};

Traced trace_program(const lang::Program& prog, std::uint32_t nodes) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  Traced t;
  t.trace = w.take();
  t.time = m.exec_time();
  cachier::SharingAnalyzer sa(t.trace, cfg.cache);
  t.report = sa.report(t.trace, m.pcs());
  return t;
}

Cycle run_program(const lang::Program& prog, const sim::SimConfig& cfg,
                  bool print_stats, const sim::DirectivePlan* plan = nullptr,
                  obs::Collector* col = nullptr,
                  obs::Json* run_out = nullptr,
                  std::string_view run_name = "run",
                  std::string_view series_splice_id = {}) {
  sim::Machine m(cfg);
  lang::LoadedProgram lp(prog, m);
  if (plan != nullptr) m.set_plan(plan);
  if (col != nullptr) m.set_observer(col);
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  if (col != nullptr && run_out != nullptr) {
    *run_out = obs::run_json(run_name, m.exec_time(), m.epochs_completed(),
                             m.stats(), m.network(), *col, series_splice_id);
  }
  if (print_stats) {
    // The deterministic stats block is shared with the daemon job runner
    // (cico::daemon::format_run_stats) so a cachierd-served `run` is
    // byte-identical to this one-shot path.
    std::fputs(daemon::format_run_stats(m, cfg).c_str(), stdout);
    // Host wall-clock is inherently nondeterministic, so it goes to stderr:
    // stdout stays byte-identical across boundary-thread counts.
    std::fprintf(stderr,
                 "# host: total=%.3fs boundary=%.3fs window=%.3fs threads=%u\n",
                 m.host_total_seconds(), m.host_boundary_seconds(),
                 m.host_total_seconds() - m.host_boundary_seconds(),
                 m.boundary_workers());
  }
  return m.exec_time();
}

srcann::AnnotateResult annotate_program(const lang::Program& prog,
                                        std::uint32_t nodes,
                                        cachier::Mode mode,
                                        Traced* traced_out = nullptr) {
  sim::SimConfig cfg;
  cfg.nodes = nodes;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  trace::Trace t = w.take();
  if (traced_out != nullptr) traced_out->trace = t;
  return srcann::annotate(prog, t, lp, cfg.cache, {.mode = mode});
}

// --- soak: seeded fault campaigns over the bundled apps --------------------

struct SoakApp {
  const char* name;
  std::uint32_t nodes;  ///< grid-constrained apps fix their own node count
  std::function<std::unique_ptr<apps::App>(std::uint64_t)> make;
};

/// Small inputs keep a full default campaign (10 mixes x 3 apps x 2
/// determinism runs) in the few-second range.
std::vector<SoakApp> soak_apps() {
  return {
      {"matmul", 8,
       [](std::uint64_t s) {
         apps::MatMulConfig c;
         c.n = 24;
         c.prow = 4;
         c.pcol = 2;
         return std::make_unique<apps::MatMul>(c, s);
       }},
      {"jacobi", 16,
       [](std::uint64_t s) {
         apps::JacobiConfig c;
         c.n = 16;
         c.steps = 2;
         c.p = 4;
         return std::make_unique<apps::Jacobi>(c, s);
       }},
      {"ocean", 8,
       [](std::uint64_t s) {
         apps::OceanConfig c;
         c.n = 32;
         c.iters = 2;
         return std::make_unique<apps::Ocean>(c, s);
       }},
  };
}

/// Fault mixes cycled across campaigns (the campaign seed varies per
/// campaign, so repeated mixes still explore different fault patterns).
const char* const kSoakMixes[] = {
    "drop=0.02",
    "drop=0.05,dup=0.02",
    "dup=0.05,delay=0.1:40",
    "drop=0.01,stall=0.05:200",
    "drop=0.03,dup=0.01,delay=0.05:25,stall=0.02:100",
};

struct SoakMeasure {
  const char* status = "ok";
  bool verified = true;
  Cycle time = 0;
  std::uint64_t msgs = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
  std::uint64_t dups = 0;
};

SoakMeasure soak_once(const SoakApp& a, const std::string& spec,
                      std::uint32_t boundary_threads = 1) {
  sim::SimConfig cfg;
  cfg.nodes = a.nodes;
  cfg.faults = fault::FaultSpec::parse(spec);
  cfg.boundary_threads = boundary_threads;
  cfg.audit_invariants = true;  // soak always runs paranoid
  sim::Machine m(cfg);
  std::unique_ptr<apps::App> app = a.make(/*input seed=*/2);
  app->setup(m, apps::Variant::None);
  SoakMeasure r;
  try {
    m.run([&](sim::Proc& p) { app->body(p); });
  } catch (const sim::ProtocolTimeout&) {
    r.status = "timeout";
  } catch (const sim::InvariantViolation&) {
    r.status = "invariant";
  } catch (const sim::SimDeadlock&) {
    r.status = "deadlock";
  }
  r.time = m.exec_time();
  r.msgs = m.network().total_sent();
  r.retries = m.stats().total(Stat::Retries);
  r.drops = m.stats().total(Stat::MsgDropped);
  r.dups = m.stats().total(Stat::MsgDuplicated);
  if (r.status[0] == 'o') r.verified = app->verify();
  return r;
}

/// SIGINT/SIGTERM flag for soak: the handler only sets this; the campaign
/// loop polls it between runs so an interrupt never tears a simulation
/// mid-flight or leaks temp artifacts.
volatile std::sig_atomic_t g_soak_stop = 0;

void soak_signal(int) { g_soak_stop = 1; }

/// RAII for soak's repro-artifact directory.  Failing campaigns leave a
/// .repro spec file behind for replay; the directory is removed when
/// every campaign passed -- and always on SIGINT/SIGTERM, so an aborted
/// soak never litters /tmp.
struct SoakArtifacts {
  std::string dir;

  SoakArtifacts() {
    char tmpl[] = "/tmp/cachier_soak_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) dir = tmpl;
  }
  ~SoakArtifacts() { clean(); }

  void note(std::uint64_t seed, const std::string& spec,
            const char* app) const {
    if (dir.empty()) return;
    std::ofstream out(dir + "/campaign_" + std::to_string(seed) + "_" + app +
                      ".repro");
    out << "# replay: cachier soak --campaigns 1 --seed " << seed
        << " --faults '" << spec << "'  (app: " << app << ")\n"
        << spec << "\n";
  }

  [[nodiscard]] bool empty() const {
    if (dir.empty()) return true;
    std::error_code ec;
    return std::filesystem::is_empty(dir, ec) || ec;
  }

  void clean() {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    dir.clear();
  }
};

int do_soak(const Options& opt) {
  const std::vector<SoakApp> bundled = soak_apps();
  const std::size_t n_mixes = sizeof(kSoakMixes) / sizeof(kSoakMixes[0]);
  g_soak_stop = 0;
  std::signal(SIGINT, soak_signal);
  std::signal(SIGTERM, soak_signal);
  SoakArtifacts artifacts;
  std::uint32_t total = 0;
  std::uint32_t survived = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t deadlocks = 0;
  std::uint32_t violations = 0;
  std::uint32_t nondet = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;

  bool interrupted = false;
  for (std::uint32_t c = 0; c < opt.campaigns && !interrupted; ++c) {
    const std::uint64_t seed = opt.seed + c;
    // retries=0 (unbounded budget) so moderate drop rates never abort on a
    // timeout; the watchdog still converts true livelock into SimDeadlock.
    std::string spec = opt.faults.empty()
                           ? std::string(kSoakMixes[c % n_mixes]) +
                                 ",retries=0,throttle=4"
                           : opt.faults;
    spec += ",seed=" + std::to_string(seed);
    for (const SoakApp& a : bundled) {
      if (g_soak_stop != 0) {
        interrupted = true;
        break;
      }
      ++total;
      const SoakMeasure r1 = soak_once(a, spec);
      const SoakMeasure r2 = soak_once(a, spec);
      // Third replica on a sharded boundary (2 worker threads): completing
      // runs must reproduce the serial fingerprint bit-for-bit; aborting
      // runs promise only the same first abort cause, since items after it
      // in a parallel batch may already have executed (see
      // docs/boundary_sharding.md).
      const SoakMeasure r3 = soak_once(a, spec, /*boundary_threads=*/2);
      const bool det = r1.time == r2.time && r1.msgs == r2.msgs &&
                       r1.retries == r2.retries && r1.drops == r2.drops &&
                       r1.dups == r2.dups &&
                       std::strcmp(r1.status, r2.status) == 0;
      const bool xdet =
          std::strcmp(r1.status, r3.status) == 0 &&
          (std::strcmp(r1.status, "ok") != 0 ||
           (r1.time == r3.time && r1.msgs == r3.msgs &&
            r1.retries == r3.retries && r1.drops == r3.drops &&
            r1.dups == r3.dups && r1.verified == r3.verified));
      const bool ok = std::strcmp(r1.status, "ok") == 0 && r1.verified;
      if (ok) ++survived;
      if (std::strcmp(r1.status, "timeout") == 0) ++timeouts;
      if (std::strcmp(r1.status, "deadlock") == 0) ++deadlocks;
      if (std::strcmp(r1.status, "invariant") == 0) ++violations;
      if (!det || !xdet) ++nondet;
      if (!ok || !det || !xdet) artifacts.note(seed, spec, a.name);
      retries += r1.retries;
      drops += r1.drops;
      std::printf(
          "[%3u] %-7s seed=%-4llu %-9s t=%-9llu retries=%-6llu "
          "drops=%-5llu dups=%-5llu det=%s x2=%s  %s\n",
          total, a.name, static_cast<unsigned long long>(seed), r1.status,
          static_cast<unsigned long long>(r1.time),
          static_cast<unsigned long long>(r1.retries),
          static_cast<unsigned long long>(r1.drops),
          static_cast<unsigned long long>(r1.dups), det ? "yes" : "NO",
          xdet ? "yes" : "NO", spec.c_str());
    }
  }

  std::printf(
      "\nsoak: %u runs (%u campaigns x %zu apps), %u survived, "
      "%u timeouts, %u deadlocks, %u invariant violations, "
      "%u non-deterministic; %llu retries, %llu drops total\n",
      total, opt.campaigns, bundled.size(), survived, timeouts, deadlocks,
      violations, nondet, static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(drops));
  if (interrupted) {
    // Partial campaign: report what completed, clean the temp artifacts,
    // and exit with a code distinct from both success and error so a
    // supervisor can tell "operator stopped it" from "it broke".
    std::printf("soak: interrupted by signal after %u of %u runs\n", total,
                opt.campaigns * static_cast<std::uint32_t>(bundled.size()));
    artifacts.clean();
    return 3;
  }
  if (survived != total || nondet != 0) {
    std::string msg = "soak: campaign failures (see table above)";
    if (!artifacts.empty()) {
      msg += "; repro specs kept in " + artifacts.dir;
      artifacts.dir.clear();  // keep the directory for replay
    }
    throw std::runtime_error(msg);
  }
  return 0;
}

// --- diff: schema-aware report comparison (the CI regression gate) ---------

int do_diff(const Options& opt) {
  obs::ToleranceSet tol;
  if (!opt.tolerances_file.empty()) {
    try {
      tol = obs::ToleranceSet::parse(slurp(opt.tolerances_file));
    } catch (const std::runtime_error& e) {
      // Keep the parser's "line N:" position but name the file.
      throw std::runtime_error(opt.tolerances_file + ": " + e.what());
    }
  }
  for (const std::string& flag : opt.tol_flags) tol.add_flag(flag);

  const auto load_report = [](const std::string& path) {
    try {
      return obs::Json::parse(slurp(path));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(path + ": " + e.what());
    }
  };
  const obs::Json baseline = load_report(opt.file);
  const obs::Json candidate = load_report(opt.file2);
  const obs::DiffResult result = obs::diff_reports(baseline, candidate, tol);
  if (opt.diff_summary) {
    obs::print_diff_summary(std::cout, result);
  } else {
    obs::print_diff(std::cout, result);
  }
  return static_cast<int>(result.outcome);
}

// --- store / sync: the content-addressed artifact store --------------------

int do_store(const Options& opt) {
  const std::string& sub = opt.file;
  const std::string& dir = opt.file2;
  if (sub == "put") {
    store::ObjectStore s(dir, store::ObjectStore::Open::kCreate);
    const std::string name =
        opt.store_name.empty()
            ? std::filesystem::path(opt.file3).filename().string()
            : opt.store_name;
    const store::PutStats st = s.put(name, slurp_bytes(opt.file3));
    std::printf("store: put %s: kind=%s objects=%llu/%llu bytes=%llu/%llu\n",
                st.name.c_str(), store::artifact_kind_name(st.kind),
                static_cast<unsigned long long>(st.objects_new),
                static_cast<unsigned long long>(st.objects_total),
                static_cast<unsigned long long>(st.bytes_new),
                static_cast<unsigned long long>(st.bytes_total));
    return 0;
  }
  if (sub == "get") {
    const store::ObjectStore s(dir, store::ObjectStore::Open::kExisting);
    const std::string bytes = s.get(opt.file3);
    if (opt.out_file.empty()) {
      std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    } else {
      std::ofstream out(opt.out_file, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + opt.out_file);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      std::printf("store: get %s: %llu bytes\n", opt.file3.c_str(),
                  static_cast<unsigned long long>(bytes.size()));
    }
    return 0;
  }
  if (sub == "ls") {
    const store::ObjectStore s(dir, store::ObjectStore::Open::kExisting);
    for (const auto& m : s.ls()) {
      std::printf("%s kind=%s objects=%llu bytes=%llu\n", m.name.c_str(),
                  store::artifact_kind_name(m.kind),
                  static_cast<unsigned long long>(m.objects),
                  static_cast<unsigned long long>(m.bytes));
    }
    return 0;
  }
  if (sub == "gc") {
    store::ObjectStore s(dir, store::ObjectStore::Open::kExisting);
    const store::GcStats st = s.gc();
    std::printf("store: gc: removed %llu objects, freed %llu bytes\n",
                static_cast<unsigned long long>(st.objects_removed),
                static_cast<unsigned long long>(st.bytes_freed));
    return 0;
  }
  usage();
  return 1;
}

int do_sync(const Options& opt) {
  const store::ObjectStore src(opt.file, store::ObjectStore::Open::kExisting);
  store::ObjectStore dst(opt.file2, store::ObjectStore::Open::kCreate);
  const store::SyncStats st = store::sync_stores(src, dst);
  std::printf(
      "sync: %s -> %s: manifests=%llu/%llu objects copied=%llu "
      "skipped=%llu bytes=%llu\n",
      opt.file.c_str(), opt.file2.c_str(),
      static_cast<unsigned long long>(st.manifests_copied),
      static_cast<unsigned long long>(st.manifests_total),
      static_cast<unsigned long long>(st.objects_copied),
      static_cast<unsigned long long>(st.objects_skipped),
      static_cast<unsigned long long>(st.bytes_copied));
  return 0;
}

// --- daemon client mode: ship the job to a running cachierd ----------------

int do_daemon_job(const Options& opt) {
  daemon::JobRequest req;
  req.command = opt.command;
  req.name = opt.file;
  req.source = slurp(opt.file);
  if (!opt.plan_file.empty()) req.plan_text = slurp(opt.plan_file);
  req.cfg.nodes = opt.nodes;
  req.cfg.mode = opt.mode;
  req.cfg.faults = opt.faults;
  req.cfg.paranoid = opt.paranoid;
  req.cfg.boundary_threads = opt.boundary_threads;
  req.cfg.want_report = !opt.report_file.empty();
  req.cfg.deadline_ms = opt.deadline_ms;

  daemon::ClientOptions copt;
  copt.socket_path = opt.daemon_sock;
  copt.on_status = [](const std::string& state) {
    std::fprintf(stderr, "# cachierd: %s\n", state.c_str());
  };
  // diags are the job's stderr stream (annotate's summary line, lint
  // echoes, self-lint output); replay them verbatim so daemon-mode stderr
  // matches the one-shot run apart from the status lines above.
  copt.on_diag = [](const std::string& text) {
    std::fputs(text.c_str(), stderr);
  };

  const daemon::JobResult res = daemon::submit_job(copt, req);
  std::fputs(res.out.c_str(), stdout);
  if (!opt.report_file.empty() && !res.report.empty()) {
    std::ofstream out = open_out(opt.report_file);
    out << res.report;
  }
  if (res.exit == 2 && !res.error.empty()) {
    std::fprintf(stderr, "cachier: error: %s\n", res.error.c_str());
  }
  return res.exit;
}

int dispatch(const Options& opt) {
  if (opt.command == "version") {
    daemon::version_json().dump(std::cout);
    std::cout << "\n";
    return 0;
  }
  if (!opt.daemon_sock.empty()) return do_daemon_job(opt);
  if (opt.command == "soak") return do_soak(opt);
  if (opt.command == "diff") return do_diff(opt);
  if (opt.command == "store") return do_store(opt);
  if (opt.command == "sync") return do_sync(opt);

  if (opt.command == "trace" && !opt.trace_load.empty()) {
    // Validate-and-reemit: a malformed file fails with exit 2 and a
    // line-numbered message; a good one round-trips canonically.
    std::ifstream in(opt.trace_load);
    if (!in) throw std::runtime_error("cannot open " + opt.trace_load);
    const trace::Trace t = trace::load_text(in);
    trace::save_text(t, std::cout);
    return 0;
  }

  lang::Program prog = lang::parse(slurp(opt.file));
  const bool want_obs = !opt.report_file.empty() || !opt.events_file.empty();

  if (opt.command == "lint") {
    if (opt.fix) {
      const analysis::FixResult res = analysis::apply_fixes(prog);
      std::printf("%s", lang::unparse(res.program).c_str());
      std::fprintf(stderr, "# cachier: fix: %zu fixes in %zu passes\n",
                   res.applied, res.passes);
      for (const std::string& line : res.log) {
        std::fprintf(stderr, "# cachier: fix: %s\n", line.c_str());
      }
      if (!res.lint.diagnostics.empty()) {
        std::ostringstream ss;
        analysis::print_text(ss, opt.file, res.lint);
        std::fprintf(stderr, "# cachier: fix: residual diagnostics:\n%s",
                     ss.str().c_str());
      }
      if (!opt.json_file.empty()) {
        std::ofstream out = open_out(opt.json_file);
        analysis::lint_json(opt.file, res.lint).dump(out);
      }
      // The fix contract is all-or-nothing: anything left unfixed is a
      // hard failure so CI can gate on it.
      return res.lint.diagnostics.empty() ? 0 : 2;
    }
    const analysis::LintResult res = analysis::lint(prog);
    analysis::print_text(std::cout, opt.file, res);
    if (!opt.json_file.empty()) {
      std::ofstream out = open_out(opt.json_file);
      analysis::lint_json(opt.file, res).dump(out);
    }
    return res.exit_code();
  }
  if (opt.command == "run") {
    sim::DirectivePlan plan;
    const sim::DirectivePlan* pp = nullptr;
    if (!opt.plan_file.empty()) {
      std::ifstream in(opt.plan_file);
      if (!in) throw std::runtime_error("cannot open " + opt.plan_file);
      plan = sim::load_plan(in);
      pp = &plan;
    }
    const sim::SimConfig cfg = make_config(opt);
    obs::Collector col;
    col.set_events_enabled(!opt.events_file.empty());
    std::unique_ptr<obs::EpochStreamWriter> stream;
    if (opt.stream_epochs) {
      stream = std::make_unique<obs::EpochStreamWriter>(opt.report_file +
                                                        ".epochs0");
      col.set_epoch_sink(stream.get());
    }
    obs::Json run_j;
    run_program(prog, cfg, /*print_stats=*/true, pp,
                want_obs ? &col : nullptr, &run_j, "run", "epochs0");
    if (!opt.report_file.empty()) {
      std::vector<obs::Json> runs;
      runs.push_back(std::move(run_j));
      const obs::Json rep = obs::make_report(
          "run", obs::config_json(cfg, protocol_name(cfg.protocol), opt.faults),
          std::move(runs));
      std::ofstream out = open_out(opt.report_file);
      if (stream != nullptr) {
        rep.dump(out, [&](std::ostream& os, std::string_view) {
          stream->splice_into(os);
        });
      } else {
        rep.dump(out);
      }
    }
    if (!opt.events_file.empty()) {
      std::ofstream out = open_out(opt.events_file);
      col.write_chrome_trace(out);
    }
    return 0;
  }
  if (opt.command == "plan") {
    Traced t = trace_program(prog, opt.nodes);
    sim::SimConfig cfg;
    cachier::PlanBuilder pb(t.trace, cfg.cache);
    const sim::DirectivePlan plan = pb.build({.mode = opt.mode});
    sim::save_plan(plan, std::cout);
    return 0;
  }
  if (opt.command == "trace") {
    Traced t = trace_program(prog, opt.nodes);
    trace::save_text(t.trace, std::cout);
    return 0;
  }
  if (opt.command == "report") {
    Traced t = trace_program(prog, opt.nodes);
    std::printf("%s", t.report.c_str());
    return 0;
  }
  if (opt.command == "annotate") {
    srcann::AnnotateResult res =
        opt.static_mode
            ? srcann::annotate_static(
                  prog, opt.nodes,
                  {.mode = opt.mode, .prefetch = opt.prefetch})
            : annotate_program(prog, opt.nodes, opt.mode);
    std::printf("%s", lang::unparse(res.program).c_str());
    std::fprintf(stderr,
                 "# cachier: %zu annotations, %zu generated loops, %zu "
                 "dropped, %zu races, %zu false-sharing blocks\n",
                 res.inserted, res.generated_loops, res.dropped, res.races,
                 res.false_shares);
    // Self-lint oracle: Cachier's own output must satisfy the CICO rules.
    // A diagnostic here is an annotator bug, so errors fail the command.
    if (!res.lint.diagnostics.empty()) {
      std::ostringstream ss;
      analysis::print_text(ss, "<annotated>", res.lint);
      std::fprintf(stderr, "# cachier: self-lint:\n%s", ss.str().c_str());
      if (res.lint.exit_code() == 2) return 2;
    }
    return 0;
  }
  if (opt.command == "compare") {
    srcann::AnnotateResult res = annotate_program(prog, opt.nodes, opt.mode);
    lang::Program annotated = lang::parse(lang::unparse(res.program));
    const sim::SimConfig cfg = make_config(opt);
    obs::Collector base_col;
    obs::Collector anno_col;
    // --events on compare exports the ANNOTATED run (one trace per file).
    anno_col.set_events_enabled(!opt.events_file.empty());
    std::unique_ptr<obs::EpochStreamWriter> base_stream;
    std::unique_ptr<obs::EpochStreamWriter> anno_stream;
    if (opt.stream_epochs) {
      base_stream = std::make_unique<obs::EpochStreamWriter>(opt.report_file +
                                                             ".epochs0");
      anno_stream = std::make_unique<obs::EpochStreamWriter>(opt.report_file +
                                                             ".epochs1");
      base_col.set_epoch_sink(base_stream.get());
      anno_col.set_epoch_sink(anno_stream.get());
    }
    obs::Json base_j;
    obs::Json anno_j;
    std::printf("-- unannotated --\n");
    const Cycle base = run_program(prog, cfg, true, nullptr,
                                   want_obs ? &base_col : nullptr, &base_j,
                                   "baseline", "epochs0");
    std::printf("-- %s CICO (%zu annotations) --\n",
                cachier::mode_name(opt.mode), res.inserted);
    const Cycle anno = run_program(annotated, cfg, true, nullptr,
                                   want_obs ? &anno_col : nullptr, &anno_j,
                                   "annotated", "epochs1");
    std::printf("\nnormalized execution time: %.3f\n",
                static_cast<double>(anno) / static_cast<double>(base));
    if (!opt.report_file.empty()) {
      const obs::Json cmp = obs::comparison_json(base_j, anno_j);
      std::vector<obs::Json> runs;
      runs.push_back(std::move(base_j));
      runs.push_back(std::move(anno_j));
      obs::Json rep = obs::make_report(
          "compare",
          obs::config_json(cfg, protocol_name(cfg.protocol), opt.faults),
          std::move(runs));
      rep.set("comparison", cmp);
      std::ofstream out = open_out(opt.report_file);
      if (base_stream != nullptr) {
        rep.dump(out, [&](std::ostream& os, std::string_view id) {
          (id == "epochs0" ? *base_stream : *anno_stream).splice_into(os);
        });
      } else {
        rep.dump(out);
      }
    }
    if (!opt.events_file.empty()) {
      std::ofstream out = open_out(opt.events_file);
      anno_col.write_chrome_trace(out);
    }
    return 0;
  }
  usage();
  return 1;
}

}  // namespace

/// Parses argv into `opt`.  Returns -1 on success, or the exit code to
/// return for a usage error (usage already printed).  Malformed numeric
/// values THROW (parse_num), so the caller's catch maps them to exit 2 --
/// a flag the user got structurally right but numerically wrong is a
/// program error, not a usage error.
int parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-n" && i + 1 < argc) {
      opt.nodes = parse_num<std::uint32_t>(argv[++i], "-n node count");
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "programmer") opt.mode = cachier::Mode::Programmer;
      else if (m == "performance") opt.mode = cachier::Mode::Performance;
      else {
        usage();
        return 1;
      }
    } else if (arg == "--faults" && i + 1 < argc) {
      opt.faults = argv[++i];
    } else if (arg == "--paranoid") {
      opt.paranoid = true;
    } else if (arg == "--no-audit-memo") {
      opt.audit_memo = false;
    } else if (arg == "--boundary-threads" && i + 1 < argc) {
      opt.boundary_threads =
          parse_num<std::uint32_t>(argv[++i], "--boundary-threads value");
    } else if (arg == "--plan" && i + 1 < argc) {
      opt.plan_file = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      opt.report_file = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      opt.events_file = argv[++i];
    } else if (arg == "--stream-epochs") {
      opt.stream_epochs = true;
    } else if (arg == "--tolerances" && i + 1 < argc) {
      opt.tolerances_file = argv[++i];
    } else if (arg == "--tol" && i + 1 < argc) {
      opt.tol_flags.emplace_back(argv[++i]);
    } else if (arg == "--summary") {
      opt.diff_summary = true;
    } else if (arg == "--json" && i + 1 < argc) {
      opt.json_file = argv[++i];
    } else if (arg == "--static") {
      opt.static_mode = true;
    } else if (arg == "--fix") {
      opt.fix = true;
    } else if (arg == "--prefetch") {
      opt.prefetch = true;
    } else if (arg == "--load" && i + 1 < argc) {
      opt.trace_load = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      opt.store_name = argv[++i];
    } else if (arg == "-o" && i + 1 < argc) {
      opt.out_file = argv[++i];
    } else if (arg == "--daemon" && i + 1 < argc) {
      opt.daemon_sock = argv[++i];
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      opt.deadline_ms =
          parse_num<std::uint64_t>(argv[++i], "--deadline-ms value");
    } else if (arg == "--campaigns" && i + 1 < argc) {
      opt.campaigns = parse_num<std::uint32_t>(argv[++i], "--campaigns value");
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = parse_num<std::uint64_t>(argv[++i], "--seed value");
    } else if (opt.command.empty()) {
      opt.command = arg;
    } else if (opt.file.empty()) {
      opt.file = arg;
    } else if ((opt.command == "diff" || opt.command == "store" ||
                opt.command == "sync") &&
               opt.file2.empty()) {
      opt.file2 = arg;
    } else if (opt.command == "store" && opt.file3.empty()) {
      opt.file3 = arg;
    } else {
      usage();
      return 1;
    }
  }
  const bool needs_file =
      opt.command != "soak" && opt.command != "version" &&
      !(opt.command == "trace" && !opt.trace_load.empty());
  // Daemon mode ships exactly the deterministic job surface: commands the
  // protocol knows, minus local-only side channels (events export, epoch
  // streaming, lint --json, trace --load all write/read local files the
  // daemon cannot see).
  const bool daemon_ok =
      opt.daemon_sock.empty() ||
      (daemon::known_command(opt.command) && opt.events_file.empty() &&
       !opt.stream_epochs && opt.json_file.empty() && opt.trace_load.empty() &&
       !opt.static_mode && !opt.fix && !opt.prefetch);
  // store's positional grammar: put/get take <dir> <arg>; ls/gc take <dir>.
  const bool store_ok =
      opt.command != "store" ||
      (!opt.file2.empty() &&
       ((opt.file == "put" || opt.file == "get") ? !opt.file3.empty()
        : (opt.file == "ls" || opt.file == "gc") && opt.file3.empty()));
  if (opt.command.empty() || (needs_file && opt.file.empty()) ||
      opt.nodes == 0 || opt.boundary_threads == 0 ||
      (opt.command == "soak" && opt.campaigns == 0) ||
      (opt.command == "diff" && opt.file2.empty()) ||
      (opt.command == "sync" && opt.file2.empty()) || !store_ok ||
      // Streaming only makes sense while a report is being written.
      (opt.stream_epochs && opt.report_file.empty()) || !daemon_ok ||
      (opt.static_mode && opt.command != "annotate") ||
      (opt.fix && opt.command != "lint") ||
      (opt.prefetch && !opt.static_mode) ||
      (opt.deadline_ms != 0 && opt.daemon_sock.empty())) {
    usage();
    return 1;
  }
  return -1;
}

int main(int argc, char** argv) {
  // Exit-code contract: EVERY failure below -- malformed numeric flags,
  // MiniPar parse errors, bad fault specs, malformed plans or traces,
  // SimDeadlock, ProtocolTimeout, InvariantViolation, soak failures --
  // surfaces as exit 2 with one line on stderr, never an unhandled
  // terminate.  Structural usage errors still exit 1.
  try {
    Options opt;
    const int usage_exit = parse_args(argc, argv, opt);
    if (usage_exit >= 0) return usage_exit;
    return dispatch(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachier: error: %s\n", e.what());
    return 2;
  }
}
