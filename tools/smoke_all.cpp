#include <chrono>
#include <cstdio>
#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "apps/mp3d.hpp"
#include "apps/ocean.hpp"
#include "apps/runner.hpp"
#include "apps/tomcatv.hpp"
using namespace cico;
using namespace cico::apps;

static void report(Harness& h, const char* tag) {
  auto t0 = std::chrono::steady_clock::now();
  auto rs = h.run_variants({Variant::None, Variant::Hand, Variant::Cachier, Variant::CachierPf});
  auto t1 = std::chrono::steady_clock::now();
  printf("%s  (%.1fs)\n", format_fig6_rows(rs).c_str(), std::chrono::duration<double>(t1-t0).count());
  for (auto& r : rs)
    printf("  %-10s time=%-10llu traps=%-7llu wf=%-6llu rm=%-7llu pfU=%-6llu pfL=%-5llu msgs=%-8llu ok=%d\n",
      r.variant.c_str(), (unsigned long long)r.time, (unsigned long long)r.stat(Stat::Traps),
      (unsigned long long)r.stat(Stat::WriteFaults), (unsigned long long)r.stat(Stat::ReadMisses),
      (unsigned long long)r.stat(Stat::PrefetchUseful), (unsigned long long)r.stat(Stat::PrefetchLate),
      (unsigned long long)r.stat(Stat::Messages), (int)r.verified);
  (void)tag;
}

int main() {
  { HarnessConfig hc; MatMulConfig c; c.n = 64;
    Harness h([c](std::uint64_t s){ return std::make_unique<MatMul>(c, s); }, hc); report(h, "matmul"); }
  { HarnessConfig hc; OceanConfig c; c.n = 64; c.iters = 5;
    Harness h([c](std::uint64_t s){ return std::make_unique<Ocean>(c, s); }, hc); report(h, "ocean"); }
  { HarnessConfig hc; TomcatvConfig c; c.rows = 128; c.cols = 64; c.iters = 3;
    Harness h([c](std::uint64_t s){ return std::make_unique<Tomcatv>(c, s); }, hc); report(h, "tomcatv"); }
  { HarnessConfig hc; Mp3dConfig c; c.molecules = 2048; c.steps = 4;
    Harness h([c](std::uint64_t s){ return std::make_unique<Mp3d>(c, s); }, hc); report(h, "mp3d"); }
  { HarnessConfig hc; BarnesConfig c; c.bodies = 512; c.steps = 2;
    Harness h([c](std::uint64_t s){ return std::make_unique<Barnes>(c, s); }, hc); report(h, "barnes"); }
  { HarnessConfig hc; hc.sim.nodes = 16; JacobiConfig c; c.n = 32; c.steps = 3;
    Harness h([c](std::uint64_t s){ return std::make_unique<Jacobi>(c, s); }, hc); report(h, "jacobi"); }
  return 0;
}
