// cachierd -- the long-running annotation/simulation service.
//
//   cachierd --socket /run/cachierd.sock [--workers N] [--queue N]
//            [--cache-dir dir] [--cache-entries N] [--deadline-ms N]
//            [--drain-grace-ms N] [--verbose]
//
// Accepts jobs from concurrent `cachier --daemon` clients over a
// Unix-domain socket (docs/cachierd.md), runs them on a worker pool with
// a bounded queue (full queue => clients are shed with a retry_after
// hint, never hung), enforces per-job wall-clock deadlines via
// cooperative cancellation, and serves repeated requests from a
// content-addressed result cache.
//
// SIGTERM / SIGINT begin a graceful drain: stop accepting, finish the
// queue, cancel whatever still runs after the drain grace, flush the
// cache index, remove the socket file, exit 0.  A second signal during
// the drain exits immediately (the operator's escape hatch).
//
// Exit status: 0 clean drain, 1 usage errors, 2 startup failures (bad
// socket path, cache directory not writable, address actively served).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "cico/common/parse_num.hpp"
#include "cico/daemon/server.hpp"

using namespace cico;

namespace {

volatile std::sig_atomic_t g_signals = 0;

void on_signal(int) {
  ++g_signals;
  if (g_signals > 1) std::_Exit(130);  // second signal: immediate exit
}

void usage() {
  std::fprintf(
      stderr,
      "usage: cachierd --socket path [--workers N] [--queue N]\n"
      "                [--cache-dir dir] [--cache-entries N]\n"
      "                [--deadline-ms N] [--drain-grace-ms N] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  daemon::ServerOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--socket" && i + 1 < argc) {
        opt.socket_path = argv[++i];
      } else if (arg == "--workers" && i + 1 < argc) {
        opt.workers = parse_num<std::uint32_t>(argv[++i], "--workers value");
      } else if (arg == "--queue" && i + 1 < argc) {
        opt.queue_limit = parse_num<std::uint32_t>(argv[++i], "--queue value");
      } else if (arg == "--cache-dir" && i + 1 < argc) {
        opt.cache_dir = argv[++i];
      } else if (arg == "--cache-entries" && i + 1 < argc) {
        opt.cache_entries =
            parse_num<std::uint32_t>(argv[++i], "--cache-entries value");
      } else if (arg == "--deadline-ms" && i + 1 < argc) {
        opt.default_deadline_ms =
            parse_num<std::uint64_t>(argv[++i], "--deadline-ms value");
      } else if (arg == "--drain-grace-ms" && i + 1 < argc) {
        opt.drain_grace_ms =
            parse_num<std::uint64_t>(argv[++i], "--drain-grace-ms value");
      } else if (arg == "--verbose") {
        opt.verbose = true;
      } else {
        usage();
        return 1;
      }
    }
    if (opt.socket_path.empty() || opt.workers == 0 || opt.queue_limit == 0) {
      usage();
      return 1;
    }

    daemon::Server server(opt);
    server.start();
    std::fprintf(stderr, "cachierd: serving on %s (%u workers, queue %u%s)\n",
                 opt.socket_path.c_str(), opt.workers, opt.queue_limit,
                 opt.cache_dir.empty()
                     ? ", memory cache"
                     : (", cache " + opt.cache_dir).c_str());

    // sigaction without SA_RESTART so the pause() below wakes on signal.
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    while (g_signals == 0) ::pause();

    std::fprintf(stderr, "cachierd: draining...\n");
    server.request_drain();
    server.join();
    const daemon::Server::Counters c = server.counters();
    std::fprintf(stderr,
                 "cachierd: drained (conns=%llu jobs=%llu cached=%llu "
                 "shed=%llu failed=%llu cancelled=%llu)\n",
                 static_cast<unsigned long long>(c.connections),
                 static_cast<unsigned long long>(c.completed),
                 static_cast<unsigned long long>(c.cache_hits),
                 static_cast<unsigned long long>(c.shed),
                 static_cast<unsigned long long>(c.failed),
                 static_cast<unsigned long long>(c.cancelled));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cachierd: error: %s\n", e.what());
    return 2;
  }
}
