#include "apps/barnes.hpp"

#include <cmath>
#include <stdexcept>

#include "cico/common/rng.hpp"

namespace cico::apps {

namespace {
constexpr std::int64_t kEmpty = -1;
constexpr std::int64_t enc_body(std::size_t b) {
  return -(static_cast<std::int64_t>(b) + 2);
}
constexpr bool is_body(std::int64_t v) { return v <= -2; }
constexpr std::size_t dec_body(std::int64_t v) {
  return static_cast<std::size_t>(-v - 2);
}
}  // namespace

void Barnes::setup(sim::Machine& m, Variant v) {
  variant_ = v;
  nodes_ = m.config().nodes;
  const std::size_t nb = cfg_.bodies;
  if (nb < nodes_) throw std::invalid_argument("barnes: too few bodies");
  pool_cap_ = 4 * nb;

  // Body positions and masses are read through TREE LEAVES during the
  // force phase -- data-dependent, pointer-reached accesses, exactly the
  // pattern the paper says defeats prefetch insertion -- so they are
  // marked irregular along with the tree pool.  Velocities are touched
  // only by their owner's loops (regular).
  bx_ = std::make_unique<sim::SharedArray<double>>(m, "BX", nb, false);
  by_ = std::make_unique<sim::SharedArray<double>>(m, "BY", nb, false);
  bz_ = std::make_unique<sim::SharedArray<double>>(m, "BZ", nb, false);
  bvx_ = std::make_unique<sim::SharedArray<double>>(m, "BVX", nb);
  bvy_ = std::make_unique<sim::SharedArray<double>>(m, "BVY", nb);
  bvz_ = std::make_unique<sim::SharedArray<double>>(m, "BVZ", nb);
  bm_ = std::make_unique<sim::SharedArray<double>>(m, "BMASS", nb, false);
  // The octree pool: pointer-based, data-dependent access -> irregular.
  tchild_ = std::make_unique<sim::SharedArray<std::int64_t>>(m, "TCHILD",
                                                             pool_cap_ * 8,
                                                             false);
  tcx_ = std::make_unique<sim::SharedArray<double>>(m, "TCX", pool_cap_, false);
  tcy_ = std::make_unique<sim::SharedArray<double>>(m, "TCY", pool_cap_, false);
  tcz_ = std::make_unique<sim::SharedArray<double>>(m, "TCZ", pool_cap_, false);
  tm_ = std::make_unique<sim::SharedArray<double>>(m, "TMASS", pool_cap_, false);
  tmeta_ = std::make_unique<sim::SharedArray<std::int64_t>>(m, "TMETA", 4,
                                                            false);

  PcRegistry& pcs = m.pcs();
  pc_binit_ = pcs.intern("barnes", 1, "body init");
  pc_bpos_ = pcs.intern("barnes", 10, "body position");
  pc_bvel_ = pcs.intern("barnes", 11, "body velocity");
  pc_bmass_ = pcs.intern("barnes", 12, "body mass");
  pc_tchild_ = pcs.intern("barnes", 20, "tree child[]");
  pc_tcom_ = pcs.intern("barnes", 21, "tree com/mass");
  pc_tmeta_ = pcs.intern("barnes", 22, "tree meta");
  pc_bar_ = pcs.intern("barnes", 30, "barrier");
}

std::int64_t Barnes::child_of(sim::Proc& p, std::size_t cell, int octant) {
  return tchild_->ld(p, cell * 8 + static_cast<std::size_t>(octant), pc_tchild_);
}

void Barnes::set_child(sim::Proc& p, std::size_t cell, int octant,
                       std::int64_t v) {
  tchild_->st(p, cell * 8 + static_cast<std::size_t>(octant), v, pc_tchild_);
}

void Barnes::build_tree(sim::Proc& p) {
  // Node 0 rebuilds the octree over [0,1)^3 (SPLASH builds in parallel
  // with per-cell locks; the build is a small fraction of the step, and a
  // serial build preserves the property that matters to Cachier: the tree
  // blocks are EXCLUSIVE at one node when every other node starts reading
  // them).
  std::size_t ncells = 1;
  for (std::size_t s = 0; s < 8; ++s) set_child(p, 0, static_cast<int>(s), kEmpty);

  auto octant_of = [](double x, double y, double z, double cx, double cy,
                      double cz) {
    return (x >= cx ? 4 : 0) + (y >= cy ? 2 : 0) + (z >= cz ? 1 : 0);
  };

  for (std::size_t b = 0; b < cfg_.bodies; ++b) {
    const double x = bx_->ld(p, b, pc_bpos_);
    const double y = by_->ld(p, b, pc_bpos_);
    const double z = bz_->ld(p, b, pc_bpos_);
    std::size_t cell = 0;
    double cx = 0.5, cy = 0.5, cz = 0.5, half = 0.25;
    for (int depth = 0; depth < 40; ++depth) {
      const int oct = octant_of(x, y, z, cx, cy, cz);
      const std::int64_t ch = child_of(p, cell, oct);
      if (ch == kEmpty) {
        set_child(p, cell, oct, enc_body(b));
        break;
      }
      if (is_body(ch)) {
        // Split: allocate a new cell, push the resident body down.
        if (ncells >= pool_cap_) throw std::runtime_error("barnes: pool full");
        const std::size_t fresh = ncells++;
        for (int s = 0; s < 8; ++s) set_child(p, fresh, s, kEmpty);
        const std::size_t other = dec_body(ch);
        const double ox = bx_->ld(p, other, pc_bpos_);
        const double oy = by_->ld(p, other, pc_bpos_);
        const double oz = bz_->ld(p, other, pc_bpos_);
        const double ncx = cx + (x >= cx ? half : -half);
        const double ncy = cy + (y >= cy ? half : -half);
        const double ncz = cz + (z >= cz ? half : -half);
        // Degenerate guard: coincident points would split forever.
        if (std::abs(ox - x) + std::abs(oy - y) + std::abs(oz - z) < 1e-12) {
          set_child(p, cell, oct, enc_body(b));  // drop the duplicate
          break;
        }
        set_child(p, fresh, octant_of(ox, oy, oz, ncx, ncy, ncz), enc_body(other));
        set_child(p, cell, oct, static_cast<std::int64_t>(fresh));
        // continue descent into `fresh` on the next loop iteration
        cell = fresh;
        cx = ncx;
        cy = ncy;
        cz = ncz;
        half *= 0.5;
        const int noct = octant_of(x, y, z, cx, cy, cz);
        const std::int64_t nch = child_of(p, cell, noct);
        if (nch == kEmpty) {
          set_child(p, cell, noct, enc_body(b));
          break;
        }
        continue;  // collision again: loop splits further
      }
      cell = static_cast<std::size_t>(ch);
      cx += (x >= cx ? half : -half);
      cy += (y >= cy ? half : -half);
      cz += (z >= cz ? half : -half);
      half *= 0.5;
    }
    p.compute(20);
  }

  // Centres of mass, iterative post-order.
  std::vector<std::pair<std::size_t, int>> stack{{0, 0}};
  std::vector<double> acc_m(ncells, 0.0), acc_x(ncells, 0.0),
      acc_y(ncells, 0.0), acc_z(ncells, 0.0);
  while (!stack.empty()) {
    const auto [cell, phase] = stack.back();  // copy: pushes may reallocate
    if (phase == 0) {
      stack.back().second = 1;
      for (int s = 0; s < 8; ++s) {
        const std::int64_t ch = child_of(p, cell, s);
        if (!is_body(ch) && ch != kEmpty) {
          stack.emplace_back(static_cast<std::size_t>(ch), 0);
        }
      }
      continue;
    }
    // Children cells are done; bodies contribute directly.
    double m = 0, sx = 0, sy = 0, sz = 0;
    for (int s = 0; s < 8; ++s) {
      const std::int64_t ch = child_of(p, cell, s);
      if (ch == kEmpty) continue;
      if (is_body(ch)) {
        const std::size_t b = dec_body(ch);
        const double bm = bm_->ld(p, b, pc_bmass_);
        m += bm;
        sx += bm * bx_->ld(p, b, pc_bpos_);
        sy += bm * by_->ld(p, b, pc_bpos_);
        sz += bm * bz_->ld(p, b, pc_bpos_);
      } else {
        const auto cc = static_cast<std::size_t>(ch);
        m += acc_m[cc];
        sx += acc_x[cc];
        sy += acc_y[cc];
        sz += acc_z[cc];
      }
    }
    acc_m[cell] = m;
    acc_x[cell] = sx;
    acc_y[cell] = sy;
    acc_z[cell] = sz;
    tm_->st(p, cell, m, pc_tcom_);
    tcx_->st(p, cell, m > 0 ? sx / m : 0.0, pc_tcom_);
    tcy_->st(p, cell, m > 0 ? sy / m : 0.0, pc_tcom_);
    tcz_->st(p, cell, m > 0 ? sz / m : 0.0, pc_tcom_);
    p.compute(10);
    stack.pop_back();
  }
  tmeta_->st(p, 0, static_cast<std::int64_t>(ncells), pc_tmeta_);

  if (is_hand(variant_)) {
    // Hand annotation, with the section 6 flaw: "missed a few
    // annotations" -- a slice of the tree pool is never checked in, so
    // those blocks still recall from node 0 during the force epoch.
    const auto kept = [](std::uint64_t bytes) { return bytes * 3 / 4; };
    p.check_in(tchild_->addr_of(0), kept(tchild_->bytes()));
    p.check_in(tcx_->addr_of(0), kept(tcx_->bytes()));
    p.check_in(tcy_->addr_of(0), kept(tcy_->bytes()));
    p.check_in(tcz_->addr_of(0), kept(tcz_->bytes()));
    p.check_in(tm_->addr_of(0), kept(tm_->bytes()));
  }
}

Barnes::Vec3 Barnes::force_on(sim::Proc& p, std::size_t body) {
  const double x = bx_->ld(p, body, pc_bpos_);
  const double y = by_->ld(p, body, pc_bpos_);
  const double z = bz_->ld(p, body, pc_bpos_);
  Vec3 f;
  const double eps = 1e-4;

  std::vector<std::pair<std::int64_t, double>> stack{{0, 0.5}};
  while (!stack.empty()) {
    const auto [id, half] = stack.back();
    stack.pop_back();
    if (is_body(id)) {
      const std::size_t b = dec_body(id);
      if (b == body) continue;
      const double ox = bx_->ld(p, b, pc_bpos_);
      const double oy = by_->ld(p, b, pc_bpos_);
      const double oz = bz_->ld(p, b, pc_bpos_);
      const double om = bm_->ld(p, b, pc_bmass_);
      const double dx = ox - x, dy = oy - y, dz = oz - z;
      const double d2 = dx * dx + dy * dy + dz * dz + eps;
      const double inv = om / (d2 * std::sqrt(d2));
      f.x += dx * inv;
      f.y += dy * inv;
      f.z += dz * inv;
      p.compute(20);
      continue;
    }
    const auto cell = static_cast<std::size_t>(id);
    const double cmx = tcx_->ld(p, cell, pc_tcom_);
    const double cmy = tcy_->ld(p, cell, pc_tcom_);
    const double cmz = tcz_->ld(p, cell, pc_tcom_);
    const double cm = tm_->ld(p, cell, pc_tcom_);
    const double dx = cmx - x, dy = cmy - y, dz = cmz - z;
    const double d2 = dx * dx + dy * dy + dz * dz + eps;
    const double size = 4.0 * half;  // full cell edge
    if (size * size < cfg_.theta * cfg_.theta * d2) {
      const double inv = cm / (d2 * std::sqrt(d2));
      f.x += dx * inv;
      f.y += dy * inv;
      f.z += dz * inv;
      p.compute(20);
    } else {
      for (int s = 0; s < 8; ++s) {
        const std::int64_t ch = child_of(p, cell, s);
        if (ch != kEmpty) stack.emplace_back(ch, half * 0.5);
      }
      p.compute(10);
    }
  }
  return f;
}

void Barnes::body(sim::Proc& p) {
  const std::size_t nb = cfg_.bodies;
  const std::size_t per = nb / nodes_;
  const std::size_t extra = nb % nodes_;
  const std::size_t lo = p.id() * per + std::min<std::size_t>(p.id(), extra);
  const std::size_t hi = lo + per + (p.id() < extra ? 1 : 0);

  // Epoch 0: owner-initialized Plummer-ish cluster in [0,1)^3.
  Rng r(seed_ * 0x2545f4914f6cdd1dULL + p.id() * 977);
  for (std::size_t b = lo; b < hi; ++b) {
    bx_->st(p, b, 0.1 + 0.8 * r.uniform(), pc_binit_);
    by_->st(p, b, 0.1 + 0.8 * r.uniform(), pc_binit_);
    bz_->st(p, b, 0.1 + 0.8 * r.uniform(), pc_binit_);
    bvx_->st(p, b, r.range(-0.01, 0.01), pc_binit_);
    bvy_->st(p, b, r.range(-0.01, 0.01), pc_binit_);
    bvz_->st(p, b, r.range(-0.01, 0.01), pc_binit_);
    bm_->st(p, b, 1.0 / static_cast<double>(nb), pc_binit_);
  }
  if (is_hand(variant_)) {
    // Hand: release own bodies so node 0's tree build reads them cheaply.
    p.check_in(bx_->addr_of(lo), (hi - lo) * sizeof(double));
    p.check_in(by_->addr_of(lo), (hi - lo) * sizeof(double));
    p.check_in(bz_->addr_of(lo), (hi - lo) * sizeof(double));
    p.check_in(bm_->addr_of(lo), (hi - lo) * sizeof(double));
  }
  p.barrier(pc_bar_);

  for (std::size_t step = 0; step < cfg_.steps; ++step) {
    // --- Build epoch (serial, node 0) ---
    if (p.id() == 0) build_tree(p);
    p.barrier(pc_bar_);

    // --- Force epoch ---
    for (std::size_t b = lo; b < hi; ++b) {
      const Vec3 f = force_on(p, b);
      bvx_->st(p, b, bvx_->ld(p, b, pc_bvel_) + cfg_.dt * f.x, pc_bvel_);
      bvy_->st(p, b, bvy_->ld(p, b, pc_bvel_) + cfg_.dt * f.y, pc_bvel_);
      bvz_->st(p, b, bvz_->ld(p, b, pc_bvel_) + cfg_.dt * f.z, pc_bvel_);
    }
    p.barrier(pc_bar_);

    // --- Update epoch ---
    for (std::size_t b = lo; b < hi; ++b) {
      auto wrap = [](double v) {
        if (v < 0.0) return 1e-6;
        if (v >= 1.0) return 1.0 - 1e-6;
        return v;
      };
      bx_->st(p, b,
              wrap(bx_->ld(p, b, pc_bpos_) +
                   cfg_.dt * bvx_->ld(p, b, pc_bvel_)),
              pc_bpos_);
      by_->st(p, b,
              wrap(by_->ld(p, b, pc_bpos_) +
                   cfg_.dt * bvy_->ld(p, b, pc_bvel_)),
              pc_bpos_);
      bz_->st(p, b,
              wrap(bz_->ld(p, b, pc_bpos_) +
                   cfg_.dt * bvz_->ld(p, b, pc_bvel_)),
              pc_bpos_);
      p.compute(10);
    }
    if (is_hand(variant_)) {
      // Hand: release the freshly moved positions -- the next build epoch
      // (node 0) and everyone's force traversals read them.
      p.check_in(bx_->addr_of(lo), (hi - lo) * sizeof(double));
      p.check_in(by_->addr_of(lo), (hi - lo) * sizeof(double));
      p.check_in(bz_->addr_of(lo), (hi - lo) * sizeof(double));
    }
    p.barrier(pc_bar_);
  }
}

bool Barnes::verify() const {
  // Deterministic schedule; check positions are finite and in the box and
  // that the last tree's root mass equals the total mass.
  double total = 0;
  for (std::size_t b = 0; b < cfg_.bodies; ++b) {
    total += bm_->raw(b);
    for (const auto* arr : {bx_.get(), by_.get(), bz_.get()}) {
      const double v = arr->raw(b);
      if (!std::isfinite(v) || v < 0.0 || v > 1.0) return false;
    }
  }
  return std::abs(tm_->raw(0) - total) < 1e-6;
}

}  // namespace cico::apps
