#include "apps/tomcatv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cico/common/rng.hpp"

namespace cico::apps {

double Tomcatv::init_val(std::size_t i, std::size_t j, int which) const {
  Rng r(seed_ * 0xd1b54a32d192ed03ULL + i * 1099511628211ULL + j * 31 +
        static_cast<std::uint64_t>(which));
  return r.uniform();
}

void Tomcatv::setup(sim::Machine& m, Variant v) {
  variant_ = v;
  nodes_ = m.config().nodes;
  if (cfg_.rows < nodes_) throw std::invalid_argument("tomcatv: mesh too small");
  x_ = std::make_unique<sim::SharedArray2<double>>(m, "X", cfg_.rows, cfg_.cols);
  y_ = std::make_unique<sim::SharedArray2<double>>(m, "Y", cfg_.rows, cfg_.cols);
  rmax_ = std::make_unique<sim::SharedArray<double>>(m, "RMAX", nodes_);

  PcRegistry& pcs = m.pcs();
  pc_init_ = pcs.intern("tomcatv", 1, "X/Y init");
  pc_ld_ = pcs.intern("tomcatv", 10, "X[i,j]/Y[i,j]");
  pc_st_ = pcs.intern("tomcatv", 11, "X[i,j]/Y[i,j] update");
  pc_res_ = pcs.intern("tomcatv", 12, "RMAX[p]");
  pc_bar_ = pcs.intern("tomcatv", 20, "barrier");
}

void Tomcatv::body(sim::Proc& p) {
  const std::size_t nr = cfg_.rows;
  const std::size_t nc = cfg_.cols;
  // Epoch 0: each node initializes ITS OWN strip (SPEC tomcatv reads its
  // mesh from a file; owner-initialization keeps first-touch local, which
  // is what gives tomcatv its low sharing degree).
  const std::size_t per = nr / nodes_;
  const std::size_t extra = nr % nodes_;
  const std::size_t li = p.id() * per + std::min<std::size_t>(p.id(), extra);
  const std::size_t ui = li + per + (p.id() < extra ? 1 : 0);
  for (std::size_t i = li; i < ui; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      x_->st(p, i, j, init_val(i, j, 0), pc_init_);
      y_->st(p, i, j, init_val(i, j, 1), pc_init_);
    }
  }
  p.barrier(pc_bar_);

  for (std::size_t it = 0; it < cfg_.iters; ++it) {
    // Residual phase: read own strip plus neighbour edge rows, compute a
    // local max residual, publish it.
    double local_max = 0.0;
    for (std::size_t i = li; i < ui; ++i) {
      const std::size_t im = i > 0 ? i - 1 : i;
      const std::size_t ip = i + 1 < nr ? i + 1 : i;
      for (std::size_t j = 1; j + 1 < nc; ++j) {
        const double xa = x_->ld(p, im, j, pc_ld_);
        const double xb = x_->ld(p, ip, j, pc_ld_);
        const double ya = y_->ld(p, i, j - 1, pc_ld_);
        const double yb = y_->ld(p, i, j + 1, pc_ld_);
        const double r = 0.25 * (xa + xb + ya + yb);
        local_max = std::max(local_max, std::abs(r));
        p.compute(8);
      }
    }
    rmax_->st(p, p.id(), local_max, pc_res_);
    p.barrier(pc_bar_);

    // Solve phase: tridiagonal solves along each row are node-private and
    // dominate execution ("around 90% ... in computation").  Reads the
    // global residual (small shared read) then updates own rows.
    double gmax = 0.0;
    for (std::uint32_t q = 0; q < nodes_; ++q) {
      gmax = std::max(gmax, rmax_->ld(p, q, pc_res_));
    }
    const double damp = gmax > 0.5 ? 0.9 : 1.0;
    for (std::size_t i = li; i < ui; ++i) {
      p.compute(cfg_.solve_cost * nc);  // the private tridiagonal solve
      for (std::size_t j = 0; j < nc; j += 4) {
        const double xv = x_->ld(p, i, j, pc_ld_);
        const double yv = y_->ld(p, i, j, pc_ld_);
        x_->st(p, i, j, xv * damp + 1e-3, pc_st_);
        y_->st(p, i, j, yv * damp + 1e-3, pc_st_);
      }
    }
    if (is_hand(variant_)) {
      // Hand: release the strip edge rows the neighbours read in the next
      // residual phase, plus this node's RMAX slot.  There is little else
      // to annotate -- which is why tomcatv is flat in Fig. 6.
      if (ui > li) {
        p.check_in(x_->row_addr(li), x_->row_bytes());
        p.check_in(x_->row_addr(ui - 1), x_->row_bytes());
        p.check_in(rmax_->addr_of(p.id()), sizeof(double));
      }
    }
    p.barrier(pc_bar_);
  }
}

bool Tomcatv::verify() const {
  // The schedule is deterministic; spot-check finiteness and bounds.
  for (std::size_t i = 0; i < cfg_.rows; i += 7) {
    for (std::size_t j = 0; j < cfg_.cols; j += 5) {
      const double v = x_->raw(i, j);
      if (!std::isfinite(v) || v < -10.0 || v > 10.0) return false;
    }
  }
  return true;
}

}  // namespace cico::apps
