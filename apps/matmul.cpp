#include "apps/matmul.hpp"

#include <cmath>
#include <stdexcept>

#include "cico/common/rng.hpp"

namespace cico::apps {

double MatMul::in_val(std::size_t i, std::size_t j, std::uint64_t salt) const {
  // Stable, seed-dependent pseudo-random input value in [0, 1).
  Rng r(seed_ * 0x100000001b3ULL + salt * 1469598103934665603ULL +
        i * 1099511628211ULL + j);
  return r.uniform();
}

void MatMul::setup(sim::Machine& m, Variant v) {
  variant_ = v;
  const std::size_t n = cfg_.n;
  const std::uint32_t nodes = m.config().nodes;
  if (nodes != cfg_.prow * cfg_.pcol) {
    throw std::invalid_argument("matmul: nodes must equal prow*pcol");
  }
  if (n % cfg_.prow != 0 || n % cfg_.pcol != 0) {
    throw std::invalid_argument("matmul: n must divide the processor grid");
  }
  a_ = std::make_unique<sim::SharedArray2<double>>(m, "A", n, n);
  b_ = std::make_unique<sim::SharedArray2<double>>(m, "B", n, n);
  c_ = std::make_unique<sim::SharedArray2<double>>(m, "C", n, n);
  priv_c_.assign(nodes, {});

  PcRegistry& pcs = m.pcs();
  pc_init_a_ = pcs.intern("matmul", 1, "A[i,j] = rand()");
  pc_init_b_ = pcs.intern("matmul", 2, "B[i,j] = rand()");
  pc_init_c_ = pcs.intern("matmul", 3, "C[i,j] = 0");
  pc_ld_a_ = pcs.intern("matmul", 10, "t = A[i,k]");
  pc_ld_b_ = pcs.intern("matmul", 11, "B[k,j]");
  pc_ld_c_ = pcs.intern("matmul", 12, "C[i,j] (read)");
  pc_st_c_ = pcs.intern("matmul", 12, "C[i,j] (write)");
  pc_copyin_ = pcs.intern("matmul", 20, "Cp = C[i,j:j+3]");
  pc_merge_ld_ = pcs.intern("matmul", 30, "C[i,j] (merge read)");
  pc_merge_st_ = pcs.intern("matmul", 30, "C[i,j] (merge write)");
  pc_bar_ = pcs.intern("matmul", 40, "barrier");

  // Host-side reference result for verification.
  ref_.assign(n * n, 0.0);
  std::vector<double> av(n * n), bv(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      av[i * n + j] = in_val(i, j, 1);
      bv[i * n + j] = in_val(i, j, 2);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double t = av[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        ref_[i * n + j] += t * bv[k * n + j];
      }
    }
  }
}

void MatMul::body(sim::Proc& p) {
  const std::size_t n = cfg_.n;
  // --- Epoch 0: node 0 initializes the matrices through shared memory.
  if (p.id() == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a_->st(p, i, j, in_val(i, j, 1), pc_init_a_);
        b_->st(p, i, j, in_val(i, j, 2), pc_init_b_);
        c_->st(p, i, j, 0.0, pc_init_c_);
      }
    }
    if (is_hand(variant_)) {
      // Hand annotation: the initializer is done with all three matrices.
      p.check_in(a_->base(), a_->bytes());
      p.check_in(b_->base(), b_->bytes());
      p.check_in(c_->base(), c_->bytes());
    }
  }
  p.barrier(pc_bar_);

  if (cfg_.restructured) {
    restructured_body(p);
  } else if (cfg_.racy) {
    racy_body(p);
  } else {
    blocked_body(p);
  }
}

void MatMul::blocked_body(sim::Proc& p) {
  // Conventional blocked multiply: processor (ib, jb) owns the C block
  // rows [li,ui) x cols [lj,uj).  A rows are read-shared along a
  // processor row; B columns are read-shared along a processor column; C
  // is written only by its owner but is READ-THEN-WRITTEN, so without a
  // check_out_X every first store takes a write fault (and, because node
  // 0 initialized everything, a trap to recall node 0's exclusive copy).
  const std::size_t n = cfg_.n;
  const std::uint32_t ib = p.id() / cfg_.pcol;
  const std::uint32_t jb = p.id() % cfg_.pcol;
  const std::size_t li = ib * (n / cfg_.prow), ui = (ib + 1) * (n / cfg_.prow);
  const std::size_t lj = jb * (n / cfg_.pcol), uj = (jb + 1) * (n / cfg_.pcol);

  if (is_hand(variant_)) {
    // Hand: check the owned C block out exclusive up front.
    for (std::size_t i = li; i < ui; ++i) {
      p.check_out_x(c_->addr_of(i, lj), (uj - lj) * sizeof(double));
    }
  }
  for (std::size_t i = li; i < ui; ++i) {
    if (variant_ == Variant::HandPf) {
      // Misplaced prefetch: issued right before use, no latency hidden.
      p.prefetch_s(a_->addr_of(i, 0), n * sizeof(double));
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (is_hand(variant_)) {
        // Unnecessary explicit check_out_S (implicit at the read anyway).
        p.check_out_s(a_->addr_of(i, k), sizeof(double));
      }
      const double t = a_->ld(p, i, k, pc_ld_a_);
      for (std::size_t j = lj; j < uj; ++j) {
        const double cv = c_->ld(p, i, j, pc_ld_c_);
        const double bv = b_->ld(p, k, j, pc_ld_b_);
        c_->st(p, i, j, cv + t * bv, pc_st_c_);
        p.compute(4);
      }
    }
    if (is_hand(variant_)) {
      p.check_in(c_->addr_of(i, lj), (uj - lj) * sizeof(double));
    }
  }
  p.barrier(pc_bar_);
}

void MatMul::racy_body(sim::Proc& p) {
  const std::size_t n = cfg_.n;
  const std::uint32_t kb = p.id() / cfg_.pcol;
  const std::uint32_t jb = p.id() % cfg_.pcol;
  const std::size_t lk = kb * (n / cfg_.prow), uk = (kb + 1) * (n / cfg_.prow);
  const std::size_t lj = jb * (n / cfg_.pcol), uj = (jb + 1) * (n / cfg_.pcol);
  const std::size_t cpb = 32 / sizeof(double);  // C elements per cache block

  for (std::size_t i = 0; i < n; ++i) {
    if (variant_ == Variant::HandPf) {
      // Misplaced hand prefetch: issued right before the loop that uses
      // the data, leaving no time to overlap ("inappropriately placed").
      p.prefetch_s(b_->addr_of(lk, lj), (uj - lj) * sizeof(double));
    }
    for (std::size_t k = lk; k < uk; ++k) {
      if (is_hand(variant_)) {
        // Unnecessary hand annotation: shared reads are checked out
        // implicitly by Dir1SW; this explicit check_out_S is overhead.
        p.check_out_s(a_->addr_of(i, k), sizeof(double));
      }
      const double t = a_->ld(p, i, k, pc_ld_a_);
      for (std::size_t j = lj; j < uj; ++j) {
        // Paper-literal section 4.4 annotations: per-element check_out_X /
        // check_in around the racy update (a block is the real granule, so
        // this re-checks the same block cpb times -- exactly why section 5
        // counts N^3 check-outs for the original program).
        if (is_hand(variant_)) {
          p.check_out_x(c_->addr_of(i, j), sizeof(double));
        }
        const double cv = c_->ld(p, i, j, pc_ld_c_);
        const double bv = b_->ld(p, k, j, pc_ld_b_);
        /*** Data race on C[i,j] (flagged by Cachier) ***/
        c_->st(p, i, j, cv + t * bv, pc_st_c_);
        p.compute(4);
        if (is_hand(variant_)) {
          p.check_in(c_->addr_of(i, j), sizeof(double));
        }
      }
    }
  }
  p.barrier(pc_bar_);
  (void)cpb;
}

void MatMul::restructured_body(sim::Proc& p) {
  // Section 5: accumulate into a private copy, then merge under per-block
  // locks.  (The private partials start at zero and the merge ADDS them,
  // which keeps the result exact; the copy-in loop still reads C so the
  // communication pattern of the paper's listing is preserved.)
  const std::size_t n = cfg_.n;
  const std::uint32_t kb = p.id() / cfg_.pcol;
  const std::uint32_t jb = p.id() % cfg_.pcol;
  const std::size_t lk = kb * (n / cfg_.prow), uk = (kb + 1) * (n / cfg_.prow);
  const std::size_t lj = jb * (n / cfg_.pcol), uj = (jb + 1) * (n / cfg_.pcol);
  const std::size_t cpb = 32 / sizeof(double);
  const std::size_t width = uj - lj;

  std::vector<double>& cp = priv_c_[p.id()];
  cp.assign(n * width, 0.0);

  // Phase 1: copy-in (check_out_S / check_in per block).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = lj; j < uj; j += cpb) {
      p.check_out_s(c_->addr_of(i, j), cpb * sizeof(double));
      for (std::size_t q = 0; q < cpb && j + q < uj; ++q) {
        (void)c_->ld(p, i, j + q, pc_copyin_);
      }
      p.check_in(c_->addr_of(i, j), cpb * sizeof(double));
    }
  }

  // Phase 2: compute privately (A and B reads are still shared traffic).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = lk; k < uk; ++k) {
      const double t = a_->ld(p, i, k, pc_ld_a_);
      for (std::size_t j = lj; j < uj; ++j) {
        cp[i * width + (j - lj)] += t * b_->ld(p, k, j, pc_ld_b_);
        p.compute(2);
      }
    }
  }

  // Phase 3: merge under a lock per C block.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = lj; j < uj; j += cpb) {
      const Addr blk = c_->addr_of(i, j);
      p.lock(blk);
      p.check_out_x(blk, cpb * sizeof(double));
      for (std::size_t q = 0; q < cpb && j + q < uj; ++q) {
        const double cur = c_->ld(p, i, j + q, pc_merge_ld_);
        c_->st(p, i, j + q, cur + cp[i * width + (j + q - lj)], pc_merge_st_);
      }
      p.check_in(blk, cpb * sizeof(double));
      p.unlock(blk);
    }
  }
  p.barrier(pc_bar_);
}

bool MatMul::verify() const {
  if (cfg_.racy && !cfg_.restructured) {
    // The section 4.4 decomposition races on C by design (the whole point
    // of sections 4.4/5); its numeric result is not deterministic.
    // Checking the inputs survived is still meaningful.
    for (std::size_t i = 0; i < cfg_.n; ++i) {
      if (std::abs(a_->raw(i, i) - in_val(i, i, 1)) > 1e-12) return false;
    }
    return true;
  }
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    for (std::size_t j = 0; j < cfg_.n; ++j) {
      if (std::abs(c_->raw(i, j) - ref_[i * cfg_.n + j]) > 1e-6) return false;
    }
  }
  return true;
}

}  // namespace cico::apps
