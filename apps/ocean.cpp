#include "apps/ocean.hpp"

#include <cmath>
#include <stdexcept>

#include "cico/common/rng.hpp"

namespace cico::apps {

namespace {
/// Columns allocated per split-array row, padded to a cache-block multiple
/// so strip rows never straddle blocks across owners.
std::size_t padded_cols(std::size_t n) {
  const std::size_t cols = (n + 2) / 2;
  return (cols + 3) / 4 * 4;
}
}  // namespace

double Ocean::init_val(std::size_t i, std::size_t j) const {
  Rng r(seed_ * 0x9e3779b97f4a7c15ULL + i * 1099511628211ULL + j);
  return r.uniform();
}

void Ocean::setup(sim::Machine& m, Variant v) {
  variant_ = v;
  nodes_ = m.config().nodes;
  if (cfg_.n % 2 != 0) throw std::invalid_argument("ocean: n must be even");
  if (cfg_.n < nodes_) throw std::invalid_argument("ocean: grid too small");
  const std::size_t rows = cfg_.n + 2;
  const std::size_t cols = padded_cols(cfg_.n);
  red_ = std::make_unique<sim::SharedArray2<double>>(m, "RED", rows, cols);
  black_ = std::make_unique<sim::SharedArray2<double>>(m, "BLACK", rows, cols);

  PcRegistry& pcs = m.pcs();
  pc_init_ = pcs.intern("ocean", 1, "grid init");
  pc_ld_ = pcs.intern("ocean", 10, "stencil read");
  pc_st_ = pcs.intern("ocean", 11, "cell update");
  pc_bar_ = pcs.intern("ocean", 20, "barrier");

  // Host reference on the full grid, same red-black schedule.
  ref_.assign(rows * rows, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      ref_[i * rows + j] = init_val(i, j);
    }
  }
  for (std::size_t it = 0; it < cfg_.iters; ++it) {
    for (int colour = 0; colour < 2; ++colour) {
      for (std::size_t i = 1; i <= cfg_.n; ++i) {
        for (std::size_t j = 1; j <= cfg_.n; ++j) {
          if (((i + j) & 1u) != static_cast<unsigned>(colour)) continue;
          const double st =
              0.25 * (ref_[(i - 1) * rows + j] + ref_[(i + 1) * rows + j] +
                      ref_[i * rows + j + 1] + ref_[i * rows + j - 1]);
          ref_[i * rows + j] += cfg_.omega * (st - ref_[i * rows + j]);
        }
      }
    }
  }
}

void Ocean::half_sweep(sim::Proc& p, int colour, std::size_t li,
                       std::size_t ui) {
  // colour 0: update RED (i+j even) reading BLACK; colour 1: the reverse.
  sim::SharedArray2<double>* dst = colour == 0 ? red_.get() : black_.get();
  sim::SharedArray2<double>* src = colour == 0 ? black_.get() : red_.get();

  if (variant_ == Variant::HandPf) {
    p.prefetch_s(src->row_addr(li - 1), src->row_bytes());
    p.prefetch_s(src->row_addr(ui), src->row_bytes());
  }
  for (std::size_t i = li; i < ui; ++i) {
    // dst row i holds cells with column parity par = (i + colour) & 1.
    const std::size_t par = (i + static_cast<std::size_t>(colour)) & 1u;
    for (std::size_t k = 0; k < (cfg_.n + 2) / 2; ++k) {
      const std::size_t j = 2 * k + par;
      if (j < 1 || j > cfg_.n) continue;
      // Neighbours of (i, j) are the other colour:
      //   (i-1, j), (i+1, j)      -> src rows i-1 / i+1, same k
      //   (i, j-1)                -> src row i, k - 1 + par
      //   (i, j+1)                -> src row i, k + par
      const double up = src->ld(p, i - 1, k, pc_ld_);
      const double dn = src->ld(p, i + 1, k, pc_ld_);
      const double le = src->ld(p, i, k - 1 + par, pc_ld_);
      const double ri = src->ld(p, i, k + par, pc_ld_);
      const double cur = dst->ld(p, i, k, pc_ld_);
      const double st = 0.25 * (up + dn + le + ri);
      dst->st(p, i, k, cur + cfg_.omega * (st - cur), pc_st_);
      p.compute(cfg_.flops);
    }
  }
  if (is_hand(variant_)) {
    // Hand: release the strip's bottom edge row of the freshly written
    // colour; FORGETS the top edge row (section 6: Cachier ~7% ahead).
    p.check_in(dst->row_addr(ui - 1), dst->row_bytes());
  }
  p.barrier(pc_bar_);
}

void Ocean::body(sim::Proc& p) {
  const std::size_t rows = cfg_.n + 2;
  const std::size_t cols = padded_cols(cfg_.n);
  // Epoch 0: node 0 initializes both colour arrays (full grid + halo).
  if (p.id() == 0) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t k = 0; k < cols; ++k) {
        const std::size_t jr = 2 * k + (i & 1u);       // red column
        const std::size_t jb = 2 * k + 1 - (i & 1u);   // black column
        red_->st(p, i, k, jr < rows ? init_val(i, jr) : 0.0, pc_init_);
        black_->st(p, i, k, jb < rows ? init_val(i, jb) : 0.0, pc_init_);
      }
    }
    if (is_hand(variant_)) {
      p.check_in(red_->base(), red_->bytes());
      p.check_in(black_->base(), black_->bytes());
    }
  }
  p.barrier(pc_bar_);

  const std::size_t per = cfg_.n / nodes_;
  const std::size_t extra = cfg_.n % nodes_;
  const std::size_t li = 1 + p.id() * per + std::min<std::size_t>(p.id(), extra);
  const std::size_t ui = li + per + (p.id() < extra ? 1 : 0);

  if (is_hand(variant_)) {
    // Hand: take the whole strip exclusive once, before iterating.
    p.check_out_x(red_->row_addr(li), (ui - li) * red_->row_bytes());
    p.check_out_x(black_->row_addr(li), (ui - li) * black_->row_bytes());
  }
  for (std::size_t it = 0; it < cfg_.iters; ++it) {
    half_sweep(p, 0, li, ui);
    half_sweep(p, 1, li, ui);
  }
}

bool Ocean::verify() const {
  const std::size_t rows = cfg_.n + 2;
  for (std::size_t i = 1; i <= cfg_.n; ++i) {
    for (std::size_t j = 1; j <= cfg_.n; ++j) {
      const std::size_t par = (i + j) & 1u;  // 0 = red
      const std::size_t k = j / 2;           // note: j = 2k + (j & 1)
      const double got = par == 0 ? red_->raw(i, (j - (i & 1u)) / 2)
                                  : black_->raw(i, (j - (1 - (i & 1u))) / 2);
      if (std::abs(got - ref_[i * rows + j]) > 1e-9) return false;
      (void)k;
    }
  }
  return true;
}

}  // namespace cico::apps
