// Tomcatv -- parallel version of the SPEC mesh-generation benchmark.
//
// The paper notes Tomcatv "performs little communication relative to its
// computation (around 90% of its execution time is spent in
// computation)", so CICO annotations barely move it -- the flat bars of
// Fig. 6.  The reproduction keeps that profile: each node owns a strip of
// mesh rows; one iteration computes residuals from the mesh (reading only
// the strip's edge rows from neighbours), then performs the tridiagonal
// solves, which are node-private and dominated by a large compute()
// charge.
//
// Sharing: only the strip edge rows (a few blocks per node per epoch) and
// a small residual-reduction array.  Hand and Cachier variants both have
// almost nothing to improve.
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::apps {

struct TomcatvConfig {
  /// The paper ran a 1024x1024 mesh on 32 nodes: strips of 32 rows, so
  /// strip-edge traffic is a tiny fraction of each node's work.  The
  /// scaled-down mesh keeps that RATIO with a rectangular grid: tall in
  /// rows (8 per strip), narrow in columns.
  std::size_t rows = 256;
  std::size_t cols = 128;
  std::size_t iters = 4;     ///< iterations (paper: 10)
  /// Private tridiagonal work per mesh ROW.  Calibrated so ~90% of
  /// execution is computation, the profile the paper reports for Tomcatv.
  Cycle solve_cost = 800;
};

class Tomcatv : public App {
 public:
  Tomcatv(TomcatvConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "tomcatv"; }
  void setup(sim::Machine& m, Variant v) override;
  void body(sim::Proc& p) override;
  [[nodiscard]] bool verify() const override;

 private:
  [[nodiscard]] double init_val(std::size_t i, std::size_t j, int which) const;

  TomcatvConfig cfg_;
  std::uint64_t seed_;
  Variant variant_ = Variant::None;
  std::uint32_t nodes_ = 0;
  std::unique_ptr<sim::SharedArray2<double>> x_, y_;
  std::unique_ptr<sim::SharedArray<double>> rmax_;  // per-node max residual
  PcId pc_init_ = 0, pc_ld_ = 0, pc_st_ = 0, pc_res_ = 0, pc_bar_ = 0;
};

}  // namespace cico::apps
