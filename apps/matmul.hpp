// Matrix Multiply -- the paper's running example (sections 4.4, 5) and one
// of the five Fig. 6 benchmarks.
//
// "Unconventional" decomposition (Fig. 5): each of the P = prow x pcol
// processors owns a block of B (rows Lk..Uk, columns Lj..Uj).  A is
// read-shared; C is read-write shared: the prow processors of one column
// stripe all accumulate into the same C[i,j] elements, a DELIBERATE data
// race the paper's Cachier flags (section 4.4) and section 5 removes by
// restructuring.
//
// Epochs:  0: node 0 initializes A, B, C ("one processor initializes the
//             matrices with random values", section 6);
//          1: the multiply.
//
// Hand annotations (Variant::Hand), per section 6's description of the
// hand version ("a few unnecessary annotations", prefetches
// "inappropriately placed"):
//   * check_in of A, B, C after initialization (correct, the big win);
//   * check_out_X / check_in around each C block update (correct);
//   * an explicit check_out_S of each A row segment (UNNECESSARY -- the
//     protocol checks shared reads out implicitly; pure overhead);
//   * HandPf: prefetch_S of the B row issued immediately before its use
//     -- too late to hide any latency.
//
// The restructured variant implements the section 5 rewrite: accumulate
// into a private copy, then merge into C under per-block locks.
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::apps {

struct MatMulConfig {
  std::size_t n = 96;        ///< matrix dimension (paper: 256)
  std::uint32_t prow = 8;    ///< processors along B's rows (k blocks)
  std::uint32_t pcol = 4;    ///< processors along B's columns (j blocks)
  /// true  -> the section 4.4 "unconventional" decomposition whose shared
  ///          C accumulation races (used by the E5/E6 experiments);
  /// false -> the conventional BLOCKED multiply of the Fig. 6 evaluation
  ///          ("multiplies two matrices by dividing them into blocks"):
  ///          each processor owns a disjoint C block, so the CICO wins are
  ///          the post-initialization check-ins and the exclusive
  ///          check-outs of the read-then-written C elements.
  bool racy = false;
  bool restructured = false; ///< section 5 rewrite (implies the racy pattern)
};

class MatMul : public App {
 public:
  MatMul(MatMulConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override {
    return cfg_.restructured ? "matmul_rs" : "matmul";
  }
  void setup(sim::Machine& m, Variant v) override;
  void body(sim::Proc& p) override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] const MatMulConfig& config() const { return cfg_; }

 private:
  void blocked_body(sim::Proc& p);
  void racy_body(sim::Proc& p);
  void restructured_body(sim::Proc& p);
  [[nodiscard]] double in_val(std::size_t i, std::size_t j,
                              std::uint64_t salt) const;

  MatMulConfig cfg_;
  std::uint64_t seed_;
  Variant variant_ = Variant::None;
  std::unique_ptr<sim::SharedArray2<double>> a_, b_, c_;
  std::vector<std::vector<double>> priv_c_;  // per-node private partials
  std::vector<double> ref_;                  // host-computed reference
  // Access-site ids (the "program counters" of the Fig. 3 trace).
  PcId pc_init_a_ = 0, pc_init_b_ = 0, pc_init_c_ = 0;
  PcId pc_ld_a_ = 0, pc_ld_b_ = 0, pc_ld_c_ = 0, pc_st_c_ = 0;
  PcId pc_copyin_ = 0, pc_merge_ld_ = 0, pc_merge_st_ = 0;
  PcId pc_bar_ = 0;
};

}  // namespace cico::apps
