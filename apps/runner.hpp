// Harness that reproduces the paper's experimental pipeline (Fig. 1):
// trace the unannotated program on one input, feed the trace to Cachier,
// then measure all variants on a DIFFERENT input.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "cico/cachier/cachier.hpp"
#include "cico/sim/config.hpp"
#include "cico/trace/trace.hpp"

namespace cico::apps {

/// Snapshot of one measured run.
struct RunResult {
  std::string app;
  std::string variant;
  Cycle time = 0;
  bool verified = true;
  std::array<std::uint64_t, kStatCount> totals{};

  [[nodiscard]] std::uint64_t stat(Stat s) const {
    return totals[static_cast<std::size_t>(s)];
  }
  /// Normalized against a baseline run (the paper's Fig. 6 metric).
  [[nodiscard]] double normalized_to(const RunResult& base) const {
    return static_cast<double>(time) / static_cast<double>(base.time);
  }
};

struct HarnessConfig {
  sim::SimConfig sim{};             // paper defaults: 32 nodes, 256KB/4way/32B
  std::uint64_t trace_seed = 1;     // input used to generate the trace
  std::uint64_t measure_seed = 2;   // input used for measurement
  /// Flush shared-data caches at barriers while tracing (section 3.3).
  /// Turning this off degrades trace completeness -- the A3 ablation.
  bool flush_at_barriers = true;
};

class Harness {
 public:
  Harness(AppFactory factory, HarnessConfig cfg)
      : factory_(std::move(factory)), cfg_(cfg) {}

  /// Runs the unannotated app in trace mode and returns the Fig. 3 trace.
  [[nodiscard]] trace::Trace collect_trace();

  /// Trace -> Cachier -> plan.
  [[nodiscard]] sim::DirectivePlan build_plan(const cachier::PlanOptions& opt);

  /// Measures one variant (plan may be null for None/Hand).
  [[nodiscard]] RunResult measure(Variant v,
                                  const sim::DirectivePlan* plan = nullptr);

  /// Full paper pipeline for one app: returns results for the requested
  /// variants, building Cachier plans as needed.
  [[nodiscard]] std::vector<RunResult> run_variants(
      const std::vector<Variant>& variants);

  [[nodiscard]] const HarnessConfig& config() const { return cfg_; }

  /// The sharing report (races/false sharing) from the last collect_trace.
  [[nodiscard]] const std::string& sharing_report() const { return report_; }

 private:
  AppFactory factory_;
  HarnessConfig cfg_;
  std::string report_;
};

/// Pretty-prints a table of normalized execution times (Fig. 6 style).
std::string format_fig6_rows(const std::vector<RunResult>& results);

}  // namespace cico::apps
