#include "apps/runner.hpp"

#include <iomanip>
#include <sstream>

namespace cico::apps {

trace::Trace Harness::collect_trace() {
  sim::SimConfig sc = cfg_.sim;
  sc.trace_mode = cfg_.flush_at_barriers;
  sim::Machine m(sc);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  auto app = factory_(cfg_.trace_seed);
  app->setup(m, Variant::None);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { app->body(p); });
  trace::Trace t = w.take();
  cachier::SharingAnalyzer sa(t, cfg_.sim.cache);
  report_ = sa.report(t, m.pcs());
  return t;
}

sim::DirectivePlan Harness::build_plan(const cachier::PlanOptions& opt) {
  trace::Trace t = collect_trace();
  cachier::PlanBuilder pb(t, cfg_.sim.cache);
  return pb.build(opt);
}

RunResult Harness::measure(Variant v, const sim::DirectivePlan* plan) {
  sim::Machine m(cfg_.sim);
  if (plan != nullptr) m.set_plan(plan);
  auto app = factory_(cfg_.measure_seed);
  app->setup(m, v);
  m.run([&](sim::Proc& p) { app->body(p); });

  RunResult r;
  r.app = std::string(app->name());
  r.variant = variant_name(v);
  r.time = m.exec_time();
  r.verified = app->verify();
  for (std::size_t s = 0; s < kStatCount; ++s) {
    r.totals[s] = m.stats().total(static_cast<Stat>(s));
  }
  return r;
}

std::vector<RunResult> Harness::run_variants(
    const std::vector<Variant>& variants) {
  sim::DirectivePlan plan, plan_pf;
  bool have_plan = false, have_plan_pf = false;
  std::vector<RunResult> out;
  for (Variant v : variants) {
    const sim::DirectivePlan* p = nullptr;
    if (v == Variant::Cachier) {
      if (!have_plan) {
        plan = build_plan({.mode = cachier::Mode::Performance});
        have_plan = true;
      }
      p = &plan;
    } else if (v == Variant::CachierPf) {
      if (!have_plan_pf) {
        plan_pf = build_plan(
            {.mode = cachier::Mode::Performance, .prefetch = true});
        have_plan_pf = true;
      }
      p = &plan_pf;
    }
    out.push_back(measure(v, p));
  }
  return out;
}

std::string format_fig6_rows(const std::vector<RunResult>& results) {
  std::ostringstream os;
  if (results.empty()) return "";
  const RunResult* base = nullptr;
  for (const auto& r : results) {
    if (r.variant == "none") base = &r;
  }
  os << std::left << std::setw(12) << results.front().app;
  for (const auto& r : results) {
    std::ostringstream cell;
    cell << r.variant << "=";
    if (base != nullptr) {
      cell << std::fixed << std::setprecision(3) << r.normalized_to(*base);
    } else {
      cell << r.time;
    }
    os << std::setw(20) << cell.str();
  }
  return os.str();
}

}  // namespace cico::apps
