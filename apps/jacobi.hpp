// Jacobi relaxation -- the paper's section 2.1 running example, used to
// derive the CICO analytic communication-cost model:
//
//   With P^2 processors on an N x N matrix (b elements per cache block),
//   per time step each processor checks out
//     boundary columns: 2N/(bP) blocks,  boundary rows: 2N/P blocks,
//   and the one-time checkout of its own matrix block is N^2/(bP^2)
//   blocks -- so T time steps over all processors check out
//     2NPT(1+b)/b + N^2/b   cache blocks   (cache-fit case), or
//     (2NP(1+b)/b + N^2/b)T cache blocks   (column-fit case).
//
// bench_jacobi_cost regenerates that table and compares it against the
// measured checkout counts of this app.  The decomposition and the
// boundary-copy-then-stencil structure follow the paper's pseudo-code;
// rows/columns are stored row-major here, so the paper's "columns" map to
// our contiguous rows (the formulas are symmetric, see EXPERIMENTS.md).
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::apps {

struct JacobiConfig {
  std::size_t n = 64;       ///< matrix dimension; needs P^2 nodes, N % P == 0
  std::size_t steps = 4;    ///< time steps T
  std::uint32_t p = 4;      ///< processor grid edge (P^2 = nodes)
  /// Annotate per the cache-fit case (one-time block checkout) or the
  /// column-fit case (per-step row checkouts) -- the two section 2.1
  /// listings.
  bool cache_fits = true;
};

class Jacobi : public App {
 public:
  Jacobi(JacobiConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "jacobi"; }
  void setup(sim::Machine& m, Variant v) override;
  void body(sim::Proc& p) override;
  [[nodiscard]] bool verify() const override;

 private:
  [[nodiscard]] double init_val(std::size_t i, std::size_t j) const;

  JacobiConfig cfg_;
  std::uint64_t seed_;
  Variant variant_ = Variant::None;
  std::unique_ptr<sim::SharedArray2<double>> u_, v_;
  std::vector<double> ref_;
  PcId pc_init_ = 0, pc_ld_ = 0, pc_st_ = 0, pc_bnd_ = 0, pc_bar_ = 0;
};

}  // namespace cico::apps
