// Benchmark application interface.
//
// Each app re-implements the computation and SHARING STRUCTURE of one of
// the paper's five evaluation programs (section 6): Barnes, Ocean, Mp3d,
// Matrix Multiply, Tomcatv -- plus Jacobi, the section 2 running example.
// Apps run in three families of variants:
//   * None     -- the unannotated program;
//   * Hand     -- the program with hand-inserted CICO directives,
//                 reproducing the imperfections section 6 attributes to
//                 the hand-annotated versions (see each app's header);
//   * Cachier  -- the unannotated body driven by a Cachier-built
//                 DirectivePlan (prefetch on or off).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "cico/sim/machine.hpp"

namespace cico::apps {

enum class Variant : std::uint8_t {
  None,        ///< unannotated
  Hand,        ///< hand-inserted CICO directives
  HandPf,      ///< hand CICO + hand-placed prefetches
  Cachier,     ///< Cachier plan (directives only)
  CachierPf,   ///< Cachier plan with prefetch planning
};

[[nodiscard]] constexpr const char* variant_name(Variant v) {
  switch (v) {
    case Variant::None: return "none";
    case Variant::Hand: return "hand";
    case Variant::HandPf: return "hand+pf";
    case Variant::Cachier: return "cachier";
    case Variant::CachierPf: return "cachier+pf";
  }
  return "?";
}

/// Does this variant execute hand-inserted directives in the app body?
[[nodiscard]] constexpr bool is_hand(Variant v) {
  return v == Variant::Hand || v == Variant::HandPf;
}

class App {
 public:
  virtual ~App() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Allocate labelled shared regions on `m` and initialize data.
  /// Called exactly once, before Machine::run.
  virtual void setup(sim::Machine& m, Variant v) = 0;

  /// Per-node program (runs on every simulated node).
  virtual void body(sim::Proc& p) = 0;

  /// Check computational results after the run (where the algorithm is
  /// deterministic; apps with benign races document what they check).
  [[nodiscard]] virtual bool verify() const { return true; }
};

/// Creates a fresh App for a given input data set.  The paper used
/// DIFFERENT inputs for trace collection and for measurement (section 6),
/// so the factory takes the input seed.
using AppFactory = std::function<std::unique_ptr<App>(std::uint64_t seed)>;

}  // namespace cico::apps
