// Ocean -- cuboidal ocean basin simulation (SPLASH), reproduced as its
// computational core: red-black Gauss-Seidel with Successive Over
// Relaxation on a 2-D grid (the paper simulated a 98x98 grid).
//
// Layout: the red and black checkerboard cells live in SEPARATE arrays
// (the standard split-grid layout SPLASH-style solvers use).  Each
// half-sweep (one epoch) updates one colour reading only the other, so a
// strip's edge rows are pure producer-consumer traffic between
// neighbours: written by their owner in one epoch, read by the neighbour
// in the next.  That is exactly the pattern Dir1SW punishes without
// check-ins (every first foreign read recalls an exclusive copy through a
// software trap; every owner re-write upgrades through another) and that
// Cachier's Performance check-in equations repair.  Ocean has the highest
// degree of sharing among the benchmarks (88% of loads / 68% of stores,
// section 6), which is why the paper saw its largest improvements here
// and on Mp3d (20%, 25% with prefetch).
//
// Hand variant: takes the strip exclusive once up front and checks in the
// strip's BOTTOM edge row after each sweep -- but forgets the TOP edge
// row, so upward neighbours keep trapping (the suboptimality that leaves
// Cachier ~7% ahead, section 6).  HandPf prefetches the neighbour edge
// rows at the start of each sweep.
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::apps {

struct OceanConfig {
  std::size_t n = 98;      ///< grid dimension (paper: 98); n even
  std::size_t iters = 6;   ///< SOR iterations (each = 2 epochs)
  double omega = 1.5;      ///< over-relaxation factor
  Cycle flops = 48;        ///< non-memory work per cell update
};

class Ocean : public App {
 public:
  Ocean(OceanConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "ocean"; }
  void setup(sim::Machine& m, Variant v) override;
  void body(sim::Proc& p) override;
  [[nodiscard]] bool verify() const override;

 private:
  [[nodiscard]] double init_val(std::size_t i, std::size_t j) const;
  // One half-sweep: update `dst` colour from `src` colour.
  void half_sweep(sim::Proc& p, int colour, std::size_t li, std::size_t ui);

  OceanConfig cfg_;
  std::uint64_t seed_;
  Variant variant_ = Variant::None;
  std::uint32_t nodes_ = 0;
  // red_[i][k] = cell (i, 2k + (i&1)); black_[i][k] = cell (i, 2k + !(i&1)).
  // Both have (n+2) rows and (n+2)/2 columns (halo included).
  std::unique_ptr<sim::SharedArray2<double>> red_, black_;
  std::vector<double> ref_;  // full-grid host reference
  PcId pc_init_ = 0, pc_ld_ = 0, pc_st_ = 0, pc_bar_ = 0;
};

}  // namespace cico::apps
