// Mp3d -- rarefied hypersonic flow of idealized diatomic molecules in a
// 3-D active space (SPLASH).  The paper simulated 50,000 molecules for 10
// time steps; sizes here are scaled (see EXPERIMENTS.md).
//
// Why Mp3d is the paper's best case (25% over unannotated, 45% over
// hand): it has very high write sharing (71% shared loads / 80% shared
// stores, section 6) and a famously racy update pattern -- every molecule
// scatters unsynchronized read-modify-write updates into the space-cell
// array shared by all processors (original SPLASH Mp3d accepted these
// races for statistical reasons).  Cachier flags the races and wraps each
// cell update in a tight check_out_X/check_in pair, turning every
// contended access from a software-trap recall into a cheap fill.
//
// Structure per time step (2 epochs):
//   move    -- each node advances its own molecules and accumulates
//              (count, momentum) into the cells the molecules land in
//              (racy shared RMW scatter);
//   collide -- each node reads the cells of its molecules and perturbs
//              molecule velocities (shared reads of the cell array that
//              some OTHER node will write next epoch -> Performance ci).
//
// Hand variant (the failure modes section 6 describes: "checking-in cache
// blocks too early ... as well as neglecting to check-in blocks"):
//   * checks its molecule blocks in right after the position update,
//     BEFORE the velocity update in the same epoch (too early ->
//     re-checkout churn on its own data);
//   * does not annotate the cell array at all (misses the main win).
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::apps {

struct Mp3dConfig {
  std::size_t molecules = 4096;  ///< paper: 50,000
  std::size_t steps = 6;         ///< paper: 10
  std::size_t cells_per_dim = 12; ///< 12^3 = 1728 space cells
};

class Mp3d : public App {
 public:
  Mp3d(Mp3dConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "mp3d"; }
  void setup(sim::Machine& m, Variant v) override;
  void body(sim::Proc& p) override;
  [[nodiscard]] bool verify() const override;

 private:
  [[nodiscard]] std::size_t cell_of(double x, double y, double z) const;

  Mp3dConfig cfg_;
  std::uint64_t seed_;
  Variant variant_ = Variant::None;
  std::uint32_t nodes_ = 0;
  // Molecule state: position + velocity, partitioned by owner.
  std::unique_ptr<sim::SharedArray<double>> px_, py_, pz_;
  std::unique_ptr<sim::SharedArray<double>> vx_, vy_, vz_;
  // Space cells: molecule count and accumulated momentum (racy).
  std::unique_ptr<sim::SharedArray<double>> cell_count_, cell_mom_;
  PcId pc_init_ = 0, pc_pos_ld_ = 0, pc_pos_st_ = 0, pc_vel_ld_ = 0,
       pc_vel_st_ = 0, pc_cell_ld_ = 0, pc_cell_st_ = 0, pc_bar_ = 0;
};

}  // namespace cico::apps
