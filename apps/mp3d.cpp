#include "apps/mp3d.hpp"

#include <cmath>
#include <stdexcept>

#include "cico/common/rng.hpp"

namespace cico::apps {

std::size_t Mp3d::cell_of(double x, double y, double z) const {
  const auto clampi = [&](double v) {
    const auto c = static_cast<std::size_t>(v * static_cast<double>(cfg_.cells_per_dim));
    return std::min(c, cfg_.cells_per_dim - 1);
  };
  return (clampi(x) * cfg_.cells_per_dim + clampi(y)) * cfg_.cells_per_dim +
         clampi(z);
}

void Mp3d::setup(sim::Machine& m, Variant v) {
  variant_ = v;
  nodes_ = m.config().nodes;
  const std::size_t nm = cfg_.molecules;
  if (nm < nodes_) throw std::invalid_argument("mp3d: too few molecules");
  // Molecule arrays are "regular" (index-partitioned); the cell array is
  // marked irregular: which cells a molecule touches is data-dependent
  // scatter, beyond static prefetch analysis.
  px_ = std::make_unique<sim::SharedArray<double>>(m, "PX", nm);
  py_ = std::make_unique<sim::SharedArray<double>>(m, "PY", nm);
  pz_ = std::make_unique<sim::SharedArray<double>>(m, "PZ", nm);
  vx_ = std::make_unique<sim::SharedArray<double>>(m, "VX", nm);
  vy_ = std::make_unique<sim::SharedArray<double>>(m, "VY", nm);
  vz_ = std::make_unique<sim::SharedArray<double>>(m, "VZ", nm);
  const std::size_t nc =
      cfg_.cells_per_dim * cfg_.cells_per_dim * cfg_.cells_per_dim;
  cell_count_ =
      std::make_unique<sim::SharedArray<double>>(m, "CELLCNT", nc, false);
  cell_mom_ =
      std::make_unique<sim::SharedArray<double>>(m, "CELLMOM", nc, false);

  PcRegistry& pcs = m.pcs();
  pc_init_ = pcs.intern("mp3d", 1, "molecule init");
  pc_pos_ld_ = pcs.intern("mp3d", 10, "pos[i]");
  pc_pos_st_ = pcs.intern("mp3d", 11, "pos[i] = moved");
  pc_vel_ld_ = pcs.intern("mp3d", 12, "vel[i]");
  pc_vel_st_ = pcs.intern("mp3d", 13, "vel[i] = collided");
  pc_cell_ld_ = pcs.intern("mp3d", 14, "cell[c]");
  pc_cell_st_ = pcs.intern("mp3d", 15, "cell[c] += ...");
  pc_bar_ = pcs.intern("mp3d", 20, "barrier");
}

void Mp3d::body(sim::Proc& p) {
  const std::size_t nm = cfg_.molecules;
  const std::size_t per = nm / nodes_;
  const std::size_t extra = nm % nodes_;
  const std::size_t lo = p.id() * per + std::min<std::size_t>(p.id(), extra);
  const std::size_t hi = lo + per + (p.id() < extra ? 1 : 0);

  // Epoch 0: owner-initialized molecules (seed-dependent input set).
  Rng r(seed_ * 0xb5297a4d3f8c2e01ULL + p.id());
  for (std::size_t i = lo; i < hi; ++i) {
    px_->st(p, i, r.uniform(), pc_init_);
    py_->st(p, i, r.uniform(), pc_init_);
    pz_->st(p, i, r.uniform(), pc_init_);
    vx_->st(p, i, r.range(-0.02, 0.02), pc_init_);
    vy_->st(p, i, r.range(-0.02, 0.02), pc_init_);
    vz_->st(p, i, r.range(-0.02, 0.02), pc_init_);
  }
  p.barrier(pc_bar_);

  const std::size_t dpb = 32 / sizeof(double);  // doubles per cache block

  for (std::size_t step = 0; step < cfg_.steps; ++step) {
    // --- Move epoch ---
    for (std::size_t i = lo; i < hi; ++i) {
      if (is_hand(variant_) && i % dpb == 0) {
        p.check_out_x(px_->addr_of(i), dpb * sizeof(double));
        p.check_out_x(py_->addr_of(i), dpb * sizeof(double));
        p.check_out_x(pz_->addr_of(i), dpb * sizeof(double));
      }
      double x = px_->ld(p, i, pc_pos_ld_);
      double y = py_->ld(p, i, pc_pos_ld_);
      double z = pz_->ld(p, i, pc_pos_ld_);
      const double dx = vx_->ld(p, i, pc_vel_ld_);
      const double dy = vy_->ld(p, i, pc_vel_ld_);
      const double dz = vz_->ld(p, i, pc_vel_ld_);
      // Reflecting walls keep positions in [0,1).
      auto bounce = [](double v) {
        if (v < 0.0) return -v;
        if (v >= 1.0) return 2.0 - v - 1e-12;
        return v;
      };
      x = bounce(x + dx);
      y = bounce(y + dy);
      z = bounce(z + dz);
      px_->st(p, i, x, pc_pos_st_);
      py_->st(p, i, y, pc_pos_st_);
      pz_->st(p, i, z, pc_pos_st_);
      p.compute(36);

      if (is_hand(variant_) && (i % dpb == dpb - 1 || i + 1 == hi)) {
        // TOO-EARLY hand check-in: the collide epoch of this same node
        // still needs these blocks (it re-reads pos), so this forces a
        // re-checkout -- one of the two hand failure modes of section 6.
        const std::size_t head = (i / dpb) * dpb;
        p.check_in(px_->addr_of(head), dpb * sizeof(double));
        p.check_in(py_->addr_of(head), dpb * sizeof(double));
        p.check_in(pz_->addr_of(head), dpb * sizeof(double));
      }

      // Racy scatter into the space cells (no locks -- as in SPLASH
      // Mp3d).  The hand version NEGLECTS these entirely.
      const std::size_t c = cell_of(x, y, z);
      const double cnt = cell_count_->ld(p, c, pc_cell_ld_);
      cell_count_->st(p, c, cnt + 1.0, pc_cell_st_);
      const double mom = cell_mom_->ld(p, c, pc_cell_ld_);
      cell_mom_->st(p, c, mom + dx + dy + dz, pc_cell_st_);
      p.compute(6);
    }
    p.barrier(pc_bar_);

    // --- Collide epoch ---
    for (std::size_t i = lo; i < hi; ++i) {
      const double x = px_->ld(p, i, pc_pos_ld_);
      const double y = py_->ld(p, i, pc_pos_ld_);
      const double z = pz_->ld(p, i, pc_pos_ld_);
      const std::size_t c = cell_of(x, y, z);
      const double cnt = cell_count_->ld(p, c, pc_cell_ld_);
      const double mom = cell_mom_->ld(p, c, pc_cell_ld_);
      if (cnt > 1.0) {
        const double f = 1.0 - 0.01 * (mom / cnt);
        vx_->st(p, i, vx_->ld(p, i, pc_vel_ld_) * f, pc_vel_st_);
        vy_->st(p, i, vy_->ld(p, i, pc_vel_ld_) * f, pc_vel_st_);
        vz_->st(p, i, vz_->ld(p, i, pc_vel_ld_) * f, pc_vel_st_);
      }
      p.compute(40);
    }
    p.barrier(pc_bar_);
  }
}

bool Mp3d::verify() const {
  // Cell updates race (inherited from SPLASH Mp3d), so cell sums are not
  // deterministic; molecule positions must stay in bounds and finite.
  for (std::size_t i = 0; i < cfg_.molecules; i += 3) {
    for (const auto* arr : {px_.get(), py_.get(), pz_.get()}) {
      const double v = arr->raw(i);
      if (!std::isfinite(v) || v < 0.0 || v >= 1.0) return false;
    }
  }
  return true;
}

}  // namespace cico::apps
