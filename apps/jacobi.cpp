#include "apps/jacobi.hpp"

#include <cmath>
#include <stdexcept>

#include "cico/common/rng.hpp"

namespace cico::apps {

double Jacobi::init_val(std::size_t i, std::size_t j) const {
  Rng r(seed_ * 0x94d049bb133111ebULL + i * 257 + j);
  return r.uniform();
}

void Jacobi::setup(sim::Machine& m, Variant v) {
  variant_ = v;
  if (m.config().nodes != cfg_.p * cfg_.p) {
    throw std::invalid_argument("jacobi: nodes must equal P^2");
  }
  if (cfg_.n % cfg_.p != 0) {
    throw std::invalid_argument("jacobi: N must be a multiple of P");
  }
  if ((cfg_.n / cfg_.p) % 4 != 0) {
    throw std::invalid_argument("jacobi: N/P must be a multiple of 4 (block alignment)");
  }
  const std::size_t rows = cfg_.n + 2;   // halo rows
  const std::size_t width = cfg_.n + 8;  // interior starts at column 4:
                                         // processor column blocks are then
                                         // cache-block aligned (no false
                                         // sharing across column cuts)
  u_ = std::make_unique<sim::SharedArray2<double>>(m, "U", rows, width);
  v_ = std::make_unique<sim::SharedArray2<double>>(m, "V", rows, width);

  PcRegistry& pcs = m.pcs();
  pc_init_ = pcs.intern("jacobi", 1, "U init");
  pc_ld_ = pcs.intern("jacobi", 10, "U[i,j] stencil read");
  pc_st_ = pcs.intern("jacobi", 11, "U[i,j] = stencil");
  pc_bnd_ = pcs.intern("jacobi", 12, "boundary row/col copy");
  pc_bar_ = pcs.intern("jacobi", 20, "barrier");

  // Host reference (double-buffered Jacobi is order-independent).
  ref_.assign(rows * rows, 0.0);
  std::vector<double> cur(rows * rows), nxt(rows * rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      cur[i * rows + j] = init_val(i, j);
    }
  }
  nxt = cur;
  for (std::size_t t = 0; t < cfg_.steps; ++t) {
    for (std::size_t i = 1; i <= cfg_.n; ++i) {
      for (std::size_t j = 1; j <= cfg_.n; ++j) {
        nxt[i * rows + j] =
            0.25 * (cur[(i - 1) * rows + j] + cur[(i + 1) * rows + j] +
                    cur[i * rows + j - 1] + cur[i * rows + j + 1]);
      }
    }
    std::swap(cur, nxt);
  }
  ref_ = cur;
}

void Jacobi::body(sim::Proc& p) {
  const std::size_t rows = cfg_.n + 2;
  const std::size_t width = cfg_.n + 8;
  const std::size_t bs = cfg_.n / cfg_.p;  // block edge per processor
  const std::uint32_t pi = p.id() / cfg_.p;
  const std::uint32_t pj = p.id() % cfg_.p;
  const std::size_t li = 1 + pi * bs, ui = li + bs;
  // Logical columns 0..n+1 live at simulated columns 3..n+4, so each
  // processor's column range starts block-aligned (lj+3 = 4 + pj*bs).
  constexpr std::size_t kC = 3;
  const std::size_t lj = 1 + pj * bs, uj = lj + bs;

  // Epoch 0: node 0 initializes both buffers.
  if (p.id() == 0) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < width; ++j) {
        const double val =
            (j >= kC && j - kC < rows) ? init_val(i, j - kC) : 0.0;
        u_->st(p, i, j, val, pc_init_);
        v_->st(p, i, j, val, pc_init_);
      }
    }
    if (is_hand(variant_)) {
      p.check_in(u_->base(), u_->bytes());
      p.check_in(v_->base(), v_->bytes());
    }
  }
  p.barrier(pc_bar_);

  // The section 2.1 cache-fit listing: one check_out_X of the processor's
  // whole block, outside the time loop.
  sim::SharedArray2<double>* src = u_.get();
  sim::SharedArray2<double>* dst = v_.get();
  if (is_hand(variant_) && cfg_.cache_fits) {
    for (std::size_t i = li; i < ui; ++i) {
      p.check_out_x(u_->addr_of(i, lj + kC), bs * sizeof(double));
      p.check_out_x(v_->addr_of(i, lj + kC), bs * sizeof(double));
    }
  }

  for (std::size_t t = 0; t < cfg_.steps; ++t) {
    // "copy boundary rows & columns to local arrays"
    std::vector<double> top(bs), bot(bs), lef(bs), rig(bs);
    if (is_hand(variant_)) {
      p.check_out_s(src->addr_of(li - 1, lj + kC), bs * sizeof(double));
      p.check_out_s(src->addr_of(ui, lj + kC), bs * sizeof(double));
      // Boundary columns: one block per element (strided).
      for (std::size_t i = li; i < ui; ++i) {
        p.check_out_s(src->addr_of(i, lj - 1 + kC), sizeof(double));
        p.check_out_s(src->addr_of(i, uj + kC), sizeof(double));
      }
    }
    for (std::size_t k = 0; k < bs; ++k) {
      top[k] = src->ld(p, li - 1, lj + k + kC, pc_bnd_);
      bot[k] = src->ld(p, ui, lj + k + kC, pc_bnd_);
      lef[k] = src->ld(p, li + k, lj - 1 + kC, pc_bnd_);
      rig[k] = src->ld(p, li + k, uj + kC, pc_bnd_);
    }
    if (is_hand(variant_)) {
      // "check_in Boundary rows & columns"
      p.check_in(src->addr_of(li - 1, lj + kC), bs * sizeof(double));
      p.check_in(src->addr_of(ui, lj + kC), bs * sizeof(double));
      for (std::size_t i = li; i < ui; ++i) {
        p.check_in(src->addr_of(i, lj - 1 + kC), sizeof(double));
        p.check_in(src->addr_of(i, uj + kC), sizeof(double));
      }
    }

    // "compute stencil on cols & rows" -- interior from src, halo columns
    // and rows from the private copies.
    for (std::size_t i = li; i < ui; ++i) {
      if (is_hand(variant_) && !cfg_.cache_fits) {
        // Column-fit listing: check rows out inside the time loop.
        p.check_out_x(dst->addr_of(i, lj + kC), bs * sizeof(double));
      }
      for (std::size_t j = lj; j < uj; ++j) {
        const double up =
            i == li ? top[j - lj] : src->ld(p, i - 1, j + kC, pc_ld_);
        const double dn =
            i + 1 == ui ? bot[j - lj] : src->ld(p, i + 1, j + kC, pc_ld_);
        const double le =
            j == lj ? lef[i - li] : src->ld(p, i, j - 1 + kC, pc_ld_);
        const double ri =
            j + 1 == uj ? rig[i - li] : src->ld(p, i, j + 1 + kC, pc_ld_);
        dst->st(p, i, j + kC, 0.25 * (up + dn + le + ri), pc_st_);
        p.compute(4);
      }
      if (is_hand(variant_) && !cfg_.cache_fits) {
        p.check_in(dst->addr_of(i, lj + kC), bs * sizeof(double));
      }
    }
    p.barrier(pc_bar_);
    std::swap(src, dst);
  }

  if (is_hand(variant_) && cfg_.cache_fits) {
    // "check_in U[Lip:Uip, Ljp:Ujp]" after the time loop.
    for (std::size_t i = li; i < ui; ++i) {
      p.check_in(u_->addr_of(i, lj + kC), bs * sizeof(double));
      p.check_in(v_->addr_of(i, lj + kC), bs * sizeof(double));
    }
  }
}

bool Jacobi::verify() const {
  const std::size_t rows = cfg_.n + 2;
  const sim::SharedArray2<double>* fin =
      (cfg_.steps % 2 == 0) ? u_.get() : v_.get();
  for (std::size_t i = 1; i <= cfg_.n; ++i) {
    for (std::size_t j = 1; j <= cfg_.n; ++j) {
      if (std::abs(fin->raw(i, j + 3) - ref_[i * rows + j]) > 1e-9) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cico::apps
