// Barnes -- gravitational N-body simulation with the Barnes-Hut octree
// (SPLASH).  The paper simulated 1024 bodies.
//
// This is the paper's showcase for WHY Cachier needs dynamic information:
// the octree is a pointer-based structure that static analysis cannot
// annotate ("Cachier performed better on programs with complex, dynamic
// memory access"), while the trace sees exactly which tree blocks move
// between processors.  It is also why prefetching fails here: tree-walk
// addresses are data-dependent, so the tree region is marked irregular
// and the prefetch planner skips it ("The prefetch annotations are not
// very successful ... due to the program's complicated pointer data
// structures").
//
// Epoch structure per time step (3 epochs):
//   build  -- node 0 rebuilds the octree (writes the tree pool; every
//             other node will read those blocks next epoch, so Cachier
//             checks them in -- the win the hand version partly misses);
//   force  -- every node walks the tree for its own bodies
//             (read-shared tree, own-body acc writes);
//   update -- every node integrates its own bodies' positions.
//
// Sharing degree is LOW (25.5% shared loads, 1.3% shared stores, section
// 6), so the overall improvement is moderate (~11%).
//
// Hand variant: checks in only the FIRST HALF of the tree pool after the
// build ("the hand-annotated version missed a few annotations").
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "cico/sim/shared_array.hpp"

namespace cico::apps {

struct BarnesConfig {
  std::size_t bodies = 1024;  ///< paper: 1024
  std::size_t steps = 3;
  double theta = 0.6;         ///< opening criterion
  double dt = 0.05;
};

class Barnes : public App {
 public:
  Barnes(BarnesConfig cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "barnes"; }
  void setup(sim::Machine& m, Variant v) override;
  void body(sim::Proc& p) override;
  [[nodiscard]] bool verify() const override;

 private:
  struct Vec3 {
    double x = 0, y = 0, z = 0;
  };

  void build_tree(sim::Proc& p);
  Vec3 force_on(sim::Proc& p, std::size_t body);

  // Tree pool accessors (simulated shared accesses).
  [[nodiscard]] std::int64_t child_of(sim::Proc& p, std::size_t cell,
                                      int octant);
  void set_child(sim::Proc& p, std::size_t cell, int octant, std::int64_t v);

  BarnesConfig cfg_;
  std::uint64_t seed_;
  Variant variant_ = Variant::None;
  std::uint32_t nodes_ = 0;
  std::size_t pool_cap_ = 0;

  // Bodies (owner-partitioned, regular).
  std::unique_ptr<sim::SharedArray<double>> bx_, by_, bz_;   // position
  std::unique_ptr<sim::SharedArray<double>> bvx_, bvy_, bvz_;  // velocity
  std::unique_ptr<sim::SharedArray<double>> bm_;             // mass
  // Octree pool (irregular / pointer-based).  children: 8 slots per cell,
  // >=0 body index encoded as -(body+2), internal cell index as cell id,
  // -1 empty.  com/cm hold centre of mass and total mass.
  std::unique_ptr<sim::SharedArray<std::int64_t>> tchild_;
  std::unique_ptr<sim::SharedArray<double>> tcx_, tcy_, tcz_, tm_;
  std::unique_ptr<sim::SharedArray<std::int64_t>> tmeta_;  // [0]=cell count

  PcId pc_binit_ = 0, pc_bpos_ = 0, pc_bvel_ = 0, pc_bmass_ = 0,
       pc_tchild_ = 0, pc_tcom_ = 0, pc_tmeta_ = 0, pc_bar_ = 0;
};

}  // namespace cico::apps
