// Extra experiment backing the section 4.1 design rationale:
//
//   "The Dir1SW protocol ... performs an implicit check-out exclusive at
//    each shared write miss and an implicit check-out shared at each
//    shared read miss.  Placing explicit check-out's for these cases
//    reduces performance because of the overhead of the additional
//    operation."
//
// Programmer CICO exposes ALL communication with explicit check-outs;
// Performance CICO keeps only the profitable ones.  This bench measures
// both plans on the same apps: Programmer should trail Performance by the
// directive-issue overhead while still beating the unannotated run.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f) {
  Harness h(f, fig6_config());
  const RunResult none = h.measure(Variant::None);
  sim::DirectivePlan perf =
      h.build_plan({.mode = cachier::Mode::Performance});
  sim::DirectivePlan prog =
      h.build_plan({.mode = cachier::Mode::Programmer});
  const RunResult rp = h.measure(Variant::Cachier, &perf);
  const RunResult rg = h.measure(Variant::Cachier, &prog);
  std::printf(
      "%-8s performance=%.3f (cox=%llu cos=%llu)   programmer=%.3f "
      "(cox=%llu cos=%llu)\n",
      name, rp.normalized_to(none),
      static_cast<unsigned long long>(rp.stat(Stat::CheckOutX)),
      static_cast<unsigned long long>(rp.stat(Stat::CheckOutS)),
      rg.normalized_to(none),
      static_cast<unsigned long long>(rg.stat(Stat::CheckOutX)),
      static_cast<unsigned long long>(rg.stat(Stat::CheckOutS)));
}

}  // namespace

int main() {
  print_header(
      "Section 4.1 rationale: Programmer CICO vs Performance CICO plans\n"
      "(normalized exec time; Programmer adds explicit-checkout overhead)");
  run_app("matmul", matmul_factory());
  run_app("ocean", ocean_factory());
  run_app("mp3d", mp3d_factory());
  std::printf("\nExpected: programmer <= none but >= performance.\n");
  return 0;
}
