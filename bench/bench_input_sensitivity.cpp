// E7 -- section 4.5's input-sensitivity claim:
//
//   "the difference between executing a Cachier annotated program on the
//    same input data set used to generate the dynamic information as
//    opposed to executing the program on a different data set was small
//    (< 2%) even for a dynamic application like Barnes"
//
// Method: build the plan from input A; measure (a) on input A and (b) on
// input B, each normalized to ITS OWN unannotated run; compare the two
// improvement ratios.  Also measured: the gap between a same-input plan
// and a cross-input plan on input B.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f) {
  // Plans from both inputs.
  HarnessConfig hc_a = fig6_config();
  hc_a.trace_seed = 1;
  hc_a.measure_seed = 1;
  HarnessConfig hc_b = fig6_config();
  hc_b.trace_seed = 2;
  hc_b.measure_seed = 2;

  Harness on_a(f, hc_a);   // trace A, measure A
  Harness on_b(f, hc_b);   // trace B, measure B
  HarnessConfig hc_ab = fig6_config();
  hc_ab.trace_seed = 1;
  hc_ab.measure_seed = 2;
  Harness cross(f, hc_ab);  // trace A, measure B

  sim::DirectivePlan plan_a =
      on_a.build_plan({.mode = cachier::Mode::Performance});
  sim::DirectivePlan plan_b =
      on_b.build_plan({.mode = cachier::Mode::Performance});

  const RunResult none_a = on_a.measure(Variant::None);
  const RunResult none_b = on_b.measure(Variant::None);
  const RunResult same = on_a.measure(Variant::Cachier, &plan_a);   // A on A
  const RunResult diff = cross.measure(Variant::Cachier, &plan_a);  // A on B
  const RunResult best_b = on_b.measure(Variant::Cachier, &plan_b); // B on B

  const double imp_same = same.normalized_to(none_a);
  const double imp_diff = diff.normalized_to(none_b);
  const double imp_best = best_b.normalized_to(none_b);
  std::printf(
      "%-8s  same-input=%.3f  cross-input=%.3f  |delta|=%.1f%%  "
      "(same-input plan on B: %.3f; specialization gap %.1f%%)\n",
      name, imp_same, imp_diff, 100.0 * std::abs(imp_same - imp_diff),
      imp_best, 100.0 * std::abs(imp_diff - imp_best));
}

}  // namespace

int main() {
  print_header(
      "Section 4.5: input-data-set sensitivity of Cachier's annotations\n"
      "(normalized exec time; paper reports < 2% difference, even for "
      "Barnes)");
  run_app("matmul", matmul_factory());
  run_app("barnes", barnes_factory());
  run_app("mp3d", mp3d_factory());
  return 0;
}
