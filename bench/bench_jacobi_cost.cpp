// E2 -- the section 2.1 analytic CICO communication-cost model for Jacobi
// relaxation, model vs. measurement.
//
// Paper (P^2 processors, N x N matrix, b elements per cache block, T time
// steps):
//   cache-fit case:   total check-outs = 2NPT(1+b)/b + N^2/b
//   column-fit case:  total check-outs = (2NP(1+b)/b + N^2/b) * T
//
// The app double-buffers (U and V), so its one-time block checkout term
// is 2N^2/b; the adjusted model below accounts for that.  The hand
// variant implements the paper's two listings verbatim; we count its
// explicit check-out directives (per block, as the cost model does).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

struct CostRow {
  std::size_t n;
  std::size_t t;
  bool cache_fits;
  double paper_model;
  double adjusted_model;
  std::uint64_t measured;
};

CostRow run_case(std::size_t n, std::size_t t, bool cache_fits) {
  const std::uint32_t P = 4;  // P^2 = 16 nodes
  const double b = 4.0;       // doubles per 32-byte block
  HarnessConfig hc;
  hc.sim.nodes = P * P;
  JacobiConfig jc;
  jc.n = n;
  jc.steps = t;
  jc.p = P;
  jc.cache_fits = cache_fits;
  Harness h([jc](std::uint64_t s) { return std::make_unique<Jacobi>(jc, s); },
            hc);
  RunResult r = h.measure(Variant::Hand);

  CostRow row;
  row.n = n;
  row.t = t;
  row.cache_fits = cache_fits;
  const double N = static_cast<double>(n), T = static_cast<double>(t),
               Pd = static_cast<double>(P);
  if (cache_fits) {
    row.paper_model = 2.0 * N * Pd * T * (1.0 + b) / b + N * N / b;
    row.adjusted_model = 2.0 * N * Pd * T * (1.0 + b) / b + 2.0 * N * N / b;
  } else {
    row.paper_model = (2.0 * N * Pd * (1.0 + b) / b + N * N / b) * T;
    row.adjusted_model = row.paper_model;
  }
  row.measured = r.stat(Stat::CheckOutX) + r.stat(Stat::CheckOutS);
  if (!r.verified) std::printf("  !! verification failed for N=%zu\n", n);
  return row;
}

}  // namespace

int main() {
  print_header(
      "Section 2.1: Jacobi CICO communication-cost model vs. measurement\n"
      "(P^2 = 16 processors, b = 4 elements/block; counts are checked-out\n"
      " cache blocks over the whole run)");
  std::printf("%6s %4s %-11s %14s %16s %10s %8s\n", "N", "T", "case",
              "paper model", "adjusted model", "measured", "meas/adj");
  for (bool fits : {true, false}) {
    for (std::size_t n : {32u, 64u, 96u}) {
      CostRow row = run_case(n, 4, fits);
      std::printf("%6zu %4zu %-11s %14.0f %16.0f %10llu %8.3f\n", row.n, row.t,
                  row.cache_fits ? "cache-fit" : "column-fit",
                  row.paper_model, row.adjusted_model,
                  static_cast<unsigned long long>(row.measured),
                  static_cast<double>(row.measured) / row.adjusted_model);
    }
  }
  std::printf(
      "\nThe measured counts should track the adjusted model closely\n"
      "(deviations come from block-unaligned halo reads at strip corners).\n");
  return 0;
}
