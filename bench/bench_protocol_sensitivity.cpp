// Protocol-sensitivity experiment (beyond the paper, prompted by it):
// how much of Cachier's improvement is specific to Dir1SW's software
// traps?  The same apps, the same Cachier plans, on an all-hardware
// full-map directory (DirN, DASH/Alewife style) where nothing traps.
//
// Expectation: on DirN the unannotated programs are already much faster
// (no trap cost), and Cachier's remaining benefit shrinks to the smaller
// savings of avoided upgrades/forwards -- i.e. the paper's technique is
// strongly coupled to its cooperative-shared-memory cost model.  This is
// the quantitative form of the observation that CICO directives were a
// product of their protocol era.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f) {
  double imp[2] = {0, 0};
  Cycle none_time[2] = {0, 0};
  for (int proto = 0; proto < 2; ++proto) {
    HarnessConfig hc = fig6_config();
    hc.sim.protocol = proto == 0 ? sim::ProtocolKind::Dir1SW
                                 : sim::ProtocolKind::DirNFullMap;
    Harness h(f, hc);
    const RunResult none = h.measure(Variant::None);
    sim::DirectivePlan plan =
        h.build_plan({.mode = cachier::Mode::Performance});
    const RunResult with = h.measure(Variant::Cachier, &plan);
    imp[proto] = with.normalized_to(none);
    none_time[proto] = none.time;
  }
  std::printf(
      "%-8s dir1sw: cachier=%.3f | dirn-fullmap: cachier=%.3f "
      "(unannotated dirn is %.2fx faster than unannotated dir1sw)\n",
      name, imp[0], imp[1],
      static_cast<double>(none_time[0]) / static_cast<double>(none_time[1]));
}

}  // namespace

int main() {
  print_header(
      "Protocol sensitivity: the same Cachier plans on Dir1SW vs an\n"
      "all-hardware full-map directory (normalized to each protocol's own\n"
      "unannotated run; lower = more improvement)");
  run_app("matmul", matmul_factory());
  run_app("ocean", ocean_factory());
  run_app("mp3d", mp3d_factory());
  run_app("barnes", barnes_factory());
  std::printf(
      "\nExpected: improvements shrink on dirn-fullmap and the unannotated\n"
      "baseline speeds up -- Cachier's big wins are Dir1SW's trap costs.\n");
  return 0;
}
