// Micro-benchmarks (google-benchmark) for the substrate hot paths: cache
// lookup/insert, Dir1SW service, trace ingestion and epoch-set analysis.
// These bound the simulator's own throughput, not the paper's results.
#include <benchmark/benchmark.h>

#include "cico/cachier/cachier.hpp"
#include "cico/mem/cache.hpp"
#include "cico/net/network.hpp"
#include "cico/proto/dir1sw.hpp"
#include "cico/sim/machine.hpp"

namespace {

using namespace cico;

void BM_CacheHit(benchmark::State& state) {
  mem::CacheGeometry g;
  mem::Cache c(g);
  for (Block b = 0; b < 1024; ++b) c.insert(b, mem::LineState::Shared);
  Block b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.state_of(b));
    c.touch(b);
    b = (b + 7) % 1024;
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  mem::CacheGeometry g;
  g.size_bytes = 4096;
  mem::Cache c(g);
  Block b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.insert(b++, mem::LineState::Exclusive));
  }
}
BENCHMARK(BM_CacheInsertEvict);

class NullCaches : public proto::CacheControl {
 public:
  [[nodiscard]] mem::LineState peek(NodeId, Block) const override {
    return mem::LineState::Invalid;
  }
  void invalidate(NodeId, Block) override {}
  void downgrade(NodeId, Block) override {}
  void push_shared(NodeId, Block) override {}
};

void BM_Dir1SWHardwareFill(benchmark::State& state) {
  CostModel cost;
  Stats stats(32);
  net::Network net(cost, stats);
  NullCaches caches;
  proto::Dir1SW dir(32, cost, net, stats, caches);
  Cycle t = 0;
  Block b = 0;
  for (auto _ : state) {
    auto r = dir.get_exclusive(0, b, t);
    dir.put(0, b, true, r.done_at, true);
    t = r.done_at;
    b = (b + 1) % 4096;
  }
}
BENCHMARK(BM_Dir1SWHardwareFill);

void BM_Dir1SWTrapPath(benchmark::State& state) {
  CostModel cost;
  Stats stats(32);
  net::Network net(cost, stats);
  NullCaches caches;
  proto::Dir1SW dir(32, cost, net, stats, caches);
  Cycle t = 0;
  for (auto _ : state) {
    auto r1 = dir.get_exclusive(1, 5, t);
    auto r2 = dir.get_exclusive(2, 5, r1.done_at);  // recall trap
    t = r2.done_at;
  }
}
BENCHMARK(BM_Dir1SWTrapPath);

trace::Trace synth_trace(std::size_t misses) {
  trace::Trace t;
  t.misses.reserve(misses);
  std::uint64_t s = 42;
  for (std::size_t i = 0; i < misses; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    trace::MissRecord m;
    m.epoch = static_cast<EpochId>(i * 8 / misses);
    m.node = static_cast<NodeId>((s >> 33) % 32);
    m.kind = static_cast<trace::MissKind>((s >> 20) % 3);
    m.addr = 0x1000 + ((s >> 8) % 4096) * 8;
    m.size = 8;
    m.pc = 1;
    t.misses.push_back(m);
  }
  return t;
}

void BM_EpochDbBuild(benchmark::State& state) {
  trace::Trace t = synth_trace(static_cast<std::size_t>(state.range(0)));
  mem::CacheGeometry g;
  for (auto _ : state) {
    cachier::EpochDB db(t, g);
    benchmark::DoNotOptimize(db.epochs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpochDbBuild)->Arg(1024)->Arg(16384);

void BM_SharingAnalysis(benchmark::State& state) {
  trace::Trace t = synth_trace(static_cast<std::size_t>(state.range(0)));
  mem::CacheGeometry g;
  for (auto _ : state) {
    cachier::SharingAnalyzer sa(t, g);
    benchmark::DoNotOptimize(sa.races().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SharingAnalysis)->Arg(1024)->Arg(16384);

// Boundary-phase throughput: a barrier-heavy program where every epoch is a
// handful of shared accesses, so nearly all host time is boundary rounds
// (classify + sort + service).  This is the path the hoisted Item vector in
// Machine::process_ops() optimizes -- the rebuilt/re-sorted scratch vector is
// now a reused member, so no-retry rounds do zero allocation.  Measured on
// the reference container (g++ 12, 1 core, median of 3 reps): reusing the
// vector moved this benchmark from ~248k to ~277k rounds/s (~12%).
// state.range(0) = boundary worker threads.
void BM_BoundaryRounds(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.cache.size_bytes = 4096;
  cfg.cache.assoc = 4;
  cfg.cache.block_bytes = 32;
  cfg.boundary_threads = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Proc& p) {
      const Addr mine = cfg.heap_base + p.id() * 64;
      const Addr hot = cfg.heap_base + 4096;
      for (int e = 0; e < 16; ++e) {
        p.ld(hot + (p.id() % 4) * 8, 8, 1);
        p.st(mine + (e % 8) * 8, 8, 2);
        p.barrier();
      }
    });
    rounds += m.stats().node(0, Stat::BoundaryRounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_BoundaryRounds)->Arg(1)->Arg(2);

void BM_PlanBuild(benchmark::State& state) {
  trace::Trace t = synth_trace(16384);
  mem::CacheGeometry g;
  cachier::PlanBuilder pb(t, g);
  for (auto _ : state) {
    auto plan = pb.build({.mode = cachier::Mode::Performance});
    benchmark::DoNotOptimize(plan.entries());
  }
}
BENCHMARK(BM_PlanBuild);

}  // namespace

BENCHMARK_MAIN();
