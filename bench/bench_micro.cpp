// Micro-benchmarks (google-benchmark) for the substrate hot paths: cache
// lookup/insert, Dir1SW service, trace ingestion and epoch-set analysis.
// These bound the simulator's own throughput, not the paper's results.
//
// The kern kernel section additionally hand-times every Ops entry point at
// the scalar level vs the best dispatch level and writes the comparison --
// including a byte-identity self-check across levels -- as JSON:
//
//   bench_micro --kernel-json BENCH_micro.json [--kernel-only]
//
// Exit 1 if any level disagrees with scalar (the CI bench self-check
// asserts byte_identical=true).  --kernel-only skips the google-benchmark
// suite for fast CI runs; remaining flags pass through to the library.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "cico/cachier/cachier.hpp"
#include "cico/kern/kernels.hpp"
#include "cico/mem/cache.hpp"
#include "cico/net/network.hpp"
#include "cico/proto/dir1sw.hpp"
#include "cico/sim/machine.hpp"

namespace {

using namespace cico;

void BM_CacheHit(benchmark::State& state) {
  mem::CacheGeometry g;
  mem::Cache c(g);
  for (Block b = 0; b < 1024; ++b) c.insert(b, mem::LineState::Shared);
  Block b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.state_of(b));
    c.touch(b);
    b = (b + 7) % 1024;
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  mem::CacheGeometry g;
  g.size_bytes = 4096;
  mem::Cache c(g);
  Block b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.insert(b++, mem::LineState::Exclusive));
  }
}
BENCHMARK(BM_CacheInsertEvict);

class NullCaches : public proto::CacheControl {
 public:
  [[nodiscard]] mem::LineState peek(NodeId, Block) const override {
    return mem::LineState::Invalid;
  }
  void invalidate(NodeId, Block) override {}
  void downgrade(NodeId, Block) override {}
  void push_shared(NodeId, Block) override {}
};

void BM_Dir1SWHardwareFill(benchmark::State& state) {
  CostModel cost;
  Stats stats(32);
  net::Network net(cost, stats);
  NullCaches caches;
  proto::Dir1SW dir(32, cost, net, stats, caches);
  Cycle t = 0;
  Block b = 0;
  for (auto _ : state) {
    auto r = dir.get_exclusive(0, b, t);
    dir.put(0, b, true, r.done_at, true);
    t = r.done_at;
    b = (b + 1) % 4096;
  }
}
BENCHMARK(BM_Dir1SWHardwareFill);

void BM_Dir1SWTrapPath(benchmark::State& state) {
  CostModel cost;
  Stats stats(32);
  net::Network net(cost, stats);
  NullCaches caches;
  proto::Dir1SW dir(32, cost, net, stats, caches);
  Cycle t = 0;
  for (auto _ : state) {
    auto r1 = dir.get_exclusive(1, 5, t);
    auto r2 = dir.get_exclusive(2, 5, r1.done_at);  // recall trap
    t = r2.done_at;
  }
}
BENCHMARK(BM_Dir1SWTrapPath);

trace::Trace synth_trace(std::size_t misses) {
  trace::Trace t;
  t.misses.reserve(misses);
  std::uint64_t s = 42;
  for (std::size_t i = 0; i < misses; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    trace::MissRecord m;
    m.epoch = static_cast<EpochId>(i * 8 / misses);
    m.node = static_cast<NodeId>((s >> 33) % 32);
    m.kind = static_cast<trace::MissKind>((s >> 20) % 3);
    m.addr = 0x1000 + ((s >> 8) % 4096) * 8;
    m.size = 8;
    m.pc = 1;
    t.misses.push_back(m);
  }
  return t;
}

void BM_EpochDbBuild(benchmark::State& state) {
  trace::Trace t = synth_trace(static_cast<std::size_t>(state.range(0)));
  mem::CacheGeometry g;
  for (auto _ : state) {
    cachier::EpochDB db(t, g);
    benchmark::DoNotOptimize(db.epochs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpochDbBuild)->Arg(1024)->Arg(16384);

void BM_SharingAnalysis(benchmark::State& state) {
  trace::Trace t = synth_trace(static_cast<std::size_t>(state.range(0)));
  mem::CacheGeometry g;
  for (auto _ : state) {
    cachier::SharingAnalyzer sa(t, g);
    benchmark::DoNotOptimize(sa.races().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SharingAnalysis)->Arg(1024)->Arg(16384);

// Boundary-phase throughput: a barrier-heavy program where every epoch is a
// handful of shared accesses, so nearly all host time is boundary rounds
// (classify + sort + service).  This is the path the hoisted Item vector in
// Machine::process_ops() optimizes -- the rebuilt/re-sorted scratch vector is
// now a reused member, so no-retry rounds do zero allocation.  Measured on
// the reference container (g++ 12, 1 core, median of 3 reps): reusing the
// vector moved this benchmark from ~248k to ~277k rounds/s (~12%).
// state.range(0) = boundary worker threads.
void BM_BoundaryRounds(benchmark::State& state) {
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.cache.size_bytes = 4096;
  cfg.cache.assoc = 4;
  cfg.cache.block_bytes = 32;
  cfg.boundary_threads = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Machine m(cfg);
    m.run([&](sim::Proc& p) {
      const Addr mine = cfg.heap_base + p.id() * 64;
      const Addr hot = cfg.heap_base + 4096;
      for (int e = 0; e < 16; ++e) {
        p.ld(hot + (p.id() % 4) * 8, 8, 1);
        p.st(mine + (e % 8) * 8, 8, 2);
        p.barrier();
      }
    });
    rounds += m.stats().node(0, Stat::BoundaryRounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_BoundaryRounds)->Arg(1)->Arg(2);

// --- kern kernels: registered benches run at the ACTIVE dispatch level
// (CICO_SIMD=scalar pins the reference), over an L1-resident working set.

constexpr std::size_t kKernWords = 4096;  // 32 KB, L1-resident

std::vector<std::uint64_t> kern_words(std::uint64_t seed, bool sparse) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> w(kKernWords);
  for (auto& x : w) {
    x = rng();
    if (sparse) x &= rng() & rng();
  }
  return w;
}

void BM_KernBor(benchmark::State& state) {
  auto dst = kern_words(1, false);
  const auto src = kern_words(2, false);
  for (auto _ : state) {
    kern::ops().bor(dst.data(), src.data(), kKernWords);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kKernWords * 8);
}
BENCHMARK(BM_KernBor);

void BM_KernPopcount(benchmark::State& state) {
  const auto a = kern_words(3, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::ops().popcount(a.data(), kKernWords));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kKernWords * 8);
}
BENCHMARK(BM_KernPopcount);

void BM_KernFindU64(benchmark::State& state) {
  const auto a = kern_words(4, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kern::ops().find_u64(a.data(), kKernWords, 0xF00DULL));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kKernWords * 8);
}
BENCHMARK(BM_KernFindU64);

// --- hand-timed scalar vs best-dispatch comparison + JSON writer ----------

struct KernResult {
  const char* name;
  double scalar_ns = 0.0;  // per pass over kKernWords
  double simd_ns = 0.0;
  [[nodiscard]] double speedup() const {
    return simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
  }
};

/// Best-of-trials time for `passes` invocations of fn (ns per pass).
template <typename Fn>
double time_ns(Fn&& fn) {
  constexpr int kPasses = 200;
  constexpr int kTrials = 5;
  double best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < kPasses; ++p) fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kPasses;
    best = std::min(best, ns);
  }
  return best;
}

int run_kernel_compare(const char* json_path) {
  const kern::Ops& sc = kern::scalar_ops();
  const kern::Ops& best = kern::ops();  // startup dispatch (CICO_SIMD aware)
  const auto a = kern_words(10, false);
  const auto b = kern_words(11, false);
  const auto sparse = kern_words(12, true);

  // Byte-identity self-check: every entry point, both levels, plus a
  // sparse operand so find_nonzero exercises real word walks.
  bool identical = true;
  auto check = [&identical](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "kernel mismatch: %s\n", what);
      identical = false;
    }
  };
  for (const auto* src : {&b, &sparse}) {
    auto d1 = a, d2 = a;
    sc.bor(d1.data(), src->data(), kKernWords);
    best.bor(d2.data(), src->data(), kKernWords);
    check(d1 == d2, "bor");
    d1 = a; d2 = a;
    sc.band(d1.data(), src->data(), kKernWords);
    best.band(d2.data(), src->data(), kKernWords);
    check(d1 == d2, "band");
    d1 = a; d2 = a;
    sc.bandnot(d1.data(), src->data(), kKernWords);
    best.bandnot(d2.data(), src->data(), kKernWords);
    check(d1 == d2, "bandnot");
    check(sc.popcount(src->data(), kKernWords) ==
              best.popcount(src->data(), kKernWords),
          "popcount");
    check(sc.equal(a.data(), src->data(), kKernWords) ==
              best.equal(a.data(), src->data(), kKernWords),
          "equal");
    check(sc.find_nonzero(src->data(), kKernWords) ==
              best.find_nonzero(src->data(), kKernWords),
          "find_nonzero");
    check(sc.find_u64(src->data(), kKernWords, (*src)[kKernWords / 2]) ==
              best.find_u64(src->data(), kKernWords, (*src)[kKernWords / 2]),
          "find_u64");
  }

  std::vector<KernResult> results;
  auto dst = a;
  auto bench_pair = [&](const char* name, auto&& mk) {
    KernResult r;
    r.name = name;
    r.scalar_ns = time_ns(mk(sc));
    r.simd_ns = time_ns(mk(best));
    results.push_back(r);
  };
  bench_pair("bor", [&](const kern::Ops& o) {
    return [&dst, &b, &o] { o.bor(dst.data(), b.data(), kKernWords); };
  });
  bench_pair("band", [&](const kern::Ops& o) {
    return [&dst, &b, &o] { o.band(dst.data(), b.data(), kKernWords); };
  });
  bench_pair("bandnot", [&](const kern::Ops& o) {
    return [&dst, &b, &o] { o.bandnot(dst.data(), b.data(), kKernWords); };
  });
  bench_pair("popcount", [&](const kern::Ops& o) {
    return [&a, &o] {
      benchmark::DoNotOptimize(o.popcount(a.data(), kKernWords));
    };
  });
  bench_pair("equal", [&](const kern::Ops& o) {
    return [&a, &o] {
      benchmark::DoNotOptimize(o.equal(a.data(), a.data(), kKernWords));
    };
  });
  bench_pair("find_nonzero_sparse", [&](const kern::Ops& o) {
    return [&sparse, &o] {
      benchmark::DoNotOptimize(o.find_nonzero(sparse.data(), kKernWords));
    };
  });
  bench_pair("find_u64_miss", [&](const kern::Ops& o) {
    return [&a, &o] {
      benchmark::DoNotOptimize(o.find_u64(a.data(), kKernWords, 0xF00DULL));
    };
  });

  double max_speedup = 0.0;
  std::printf("kern kernels: scalar vs %s over %zu words\n",
              kern::level_name(best.level), kKernWords);
  std::printf("%-20s %-12s %-12s %-8s\n", "kernel", "scalar_ns", "simd_ns",
              "speedup");
  for (const KernResult& r : results) {
    std::printf("%-20s %-12.1f %-12.1f %-8.2f\n", r.name, r.scalar_ns,
                r.simd_ns, r.speedup());
    max_speedup = std::max(max_speedup, r.speedup());
  }
  std::printf("byte_identical=%s  max_speedup=%.2f\n",
              identical ? "true" : "false", max_speedup);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror(json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
    std::fprintf(f, "  \"dispatch\": \"%s\",\n", kern::level_name(best.level));
    std::fprintf(f, "  \"words\": %zu,\n", kKernWords);
    std::fprintf(f, "  \"byte_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"max_speedup\": %.2f,\n", max_speedup);
    std::fprintf(f, "  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const KernResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"scalar_ns_per_pass\": %.1f, "
                   "\"simd_ns_per_pass\": %.1f, \"speedup\": %.2f}%s\n",
                   r.name, r.scalar_ns, r.simd_ns, r.speedup(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return identical ? 0 : 1;
}

void BM_PlanBuild(benchmark::State& state) {
  trace::Trace t = synth_trace(16384);
  mem::CacheGeometry g;
  cachier::PlanBuilder pb(t, g);
  for (auto _ : state) {
    auto plan = pb.build({.mode = cachier::Mode::Performance});
    benchmark::DoNotOptimize(plan.entries());
  }
}
BENCHMARK(BM_PlanBuild);

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before the benchmark library sees argv.
  const char* json_path = nullptr;
  bool kernel_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernel-json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--kernel-only") {
      kernel_only = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const int rc = run_kernel_compare(json_path);
  if (rc != 0 || kernel_only) return rc;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
