// A2 -- ablation of the single-epoch history terms (SW_{i-1} / S_{i+1}):
// "This annotation placement models caches and helps to eliminate many
// unnecessary check-in, check-out pairs at epoch boundaries" (section
// 4.1).  Without history every epoch re-checks-out and re-checks-in its
// whole working set; iterative apps (Ocean, Tomcatv) pay for it.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f) {
  Harness h(f, fig6_config());
  const RunResult none = h.measure(Variant::None);
  sim::DirectivePlan with_hist =
      h.build_plan({.mode = cachier::Mode::Performance, .use_history = true});
  sim::DirectivePlan no_hist =
      h.build_plan({.mode = cachier::Mode::Performance, .use_history = false});
  const RunResult rw = h.measure(Variant::Cachier, &with_hist);
  const RunResult rn = h.measure(Variant::Cachier, &no_hist);
  std::printf(
      "%-8s with-history=%.3f (ci=%llu)   no-history=%.3f (ci=%llu)\n", name,
      rw.normalized_to(none),
      static_cast<unsigned long long>(rw.stat(Stat::CheckIns)),
      rn.normalized_to(none),
      static_cast<unsigned long long>(rn.stat(Stat::CheckIns)));
}

}  // namespace

int main() {
  print_header(
      "A2: single-epoch-history ablation (normalized exec time)\n"
      "history off => every epoch re-checks out/in its whole working set");
  run_app("ocean", ocean_factory());
  run_app("tomcatv", tomcatv_factory());
  run_app("matmul", matmul_factory());
  std::printf("\nExpected: no-history issues many more check-ins and runs "
              "slower.\n");
  return 0;
}
