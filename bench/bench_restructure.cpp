// E6 -- the section 5 restructuring experiment: the "unconventional"
// matrix multiply races on the shared result matrix C; copying to a
// private array and merging under locks cuts the check-outs of C from
// ~N^3 (one per element update -- exactly what the paper counts for the
// original program) to ~N^2 P/2 and removes the unsynchronized race.
//
// Measured here per variant: total check-out directives, data races
// Cachier flags, traps, and execution time.  (Cachier ignores locks, per
// section 3.1, so the merge phase's lock-protected updates are still
// REPORTED as potential races -- the paper makes the same observation:
// "...out of which there is a cache block race on only N^2 P/4 of them
// which is protected by a lock".)
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_n(std::size_t n) {
  for (bool restructured : {false, true}) {
    MatMulConfig mc;
    mc.n = n;
    mc.racy = true;
    mc.restructured = restructured;
    Harness h([mc](std::uint64_t s) { return std::make_unique<MatMul>(mc, s); },
              fig6_config());
    trace::Trace t = h.collect_trace();
    cachier::SharingAnalyzer sa(t, fig6_config().sim.cache);
    cachier::PlanBuilder pb(t, fig6_config().sim.cache);
    sim::DirectivePlan plan = pb.build({.mode = cachier::Mode::Performance});
    RunResult r = h.measure(restructured ? Variant::Hand : Variant::Cachier,
                            restructured ? nullptr : &plan);
    // For the restructured program the explicit directives ARE the
    // annotations of the section 5 listing.
    const std::uint64_t checkouts =
        r.stat(Stat::CheckOutX) + r.stat(Stat::CheckOutS);
    const double n3 = static_cast<double>(n) * n * n;
    // Our grid: prow*pcol = 32 processors; copy+merge phases touch
    // 2 * N * (N/(4*pcol)) blocks per processor.
    const double n2p = 2.0 * static_cast<double>(n) * n / (4.0 * 4.0) * 32.0;
    std::printf(
        "N=%-4zu %-13s checkouts=%-9llu (model %s=%8.0f)  races=%-6zu "
        "traps=%-7llu time=%llu ok=%d\n",
        n, restructured ? "restructured" : "original",
        static_cast<unsigned long long>(checkouts),
        restructured ? "N^2*P/2" : "  N^3  ", restructured ? n2p : n3,
        sa.races().size(), static_cast<unsigned long long>(r.stat(Stat::Traps)),
        static_cast<unsigned long long>(r.time), static_cast<int>(r.verified));
  }
}

}  // namespace

int main() {
  print_header(
      "Section 5: restructuring the racy matrix multiply\n"
      "original: Cachier Performance annotations (check_out_X per racy\n"
      "          update -> ~N^3 checkouts);  restructured: the section 5\n"
      "          listing's explicit annotations (~N^2*P/2 checkouts)");
  for (std::size_t n : {32u, 64u}) run_n(n);
  std::printf(
      "\nExpected: restructured checkouts drop from ~N^3 to ~N^2*P/2 and\n"
      "execution time falls several-fold.  The restructured trace shows NO\n"
      "races at all: the merge updates hit in blocks the explicit\n"
      "check_out_X just fetched, and the Fig. 3 trace records only MISSES\n"
      "(section 7) -- the lock-protected block contention the paper counts\n"
      "as N^2*P/4 is real but invisible to the miss-only race detector.\n");
  return 0;
}
