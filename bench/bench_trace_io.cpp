// Trace codec benchmark (and standing self-check): text vs v1 binary vs
// the epoch-chunked v2 store format.
//
// Builds a synthetic multi-epoch trace shaped like the larger apps'
// (hundreds of thousands of dedup'd miss records across many epochs,
// stride-pattern addresses, one barrier per node per epoch), then
// measures encode time, decode time, and encoded size for each codec.
// v2 is additionally measured at several epochs_per_chunk values, since
// chunk granularity trades dedupe resolution against per-chunk framing
// overhead.
//
// The self-check doubles as a correctness gate: every codec must round
// trip the canonical trace exactly, v2 must re-serialize byte-identically
// (bijectivity -- the content-addressing invariant), and a one-epoch
// change must dirty exactly one v2 chunk; any violation exits 1.
//
// Results go to BENCH_trace_io.json (or argv[1]).  CICO_BENCH_SCALE
// scales the record count.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "cico/store/format.hpp"
#include "cico/store/store.hpp"
#include "cico/trace/trace.hpp"

namespace {

using namespace cico;
using Clock = std::chrono::steady_clock;

double env_scale() {
  const char* s = std::getenv("CICO_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A trace shaped like ocean/tomcatv's: per epoch, each node misses on a
/// strided window of two labelled regions plus a few conflict addresses.
trace::Trace make_trace(std::uint32_t epochs, std::uint32_t nodes,
                        std::uint32_t per_node) {
  trace::Trace t;
  t.labels.push_back({"grid", 0x100000, 1u << 22, true});
  t.labels.push_back({"edges", 0x600000, 1u << 20, false});
  for (std::uint32_t e = 0; e < epochs; ++e) {
    for (std::uint32_t n = 0; n < nodes; ++n) {
      for (std::uint32_t i = 0; i < per_node; ++i) {
        const bool grid = (i % 4) != 3;
        const Addr base = grid ? 0x100000 : 0x600000;
        t.misses.push_back(
            {e, n,
             (i % 8) == 0 ? trace::MissKind::WriteMiss
                          : trace::MissKind::ReadMiss,
             base + 8ull * (n * per_node + i) + 32ull * e, 8,
             100 + (i % 16)});
      }
      t.barriers.push_back({e, n, 7, 1000ull * (e + 1) + n});
    }
  }
  trace::canonicalize(t);
  return t;
}

struct CodecResult {
  const char* name;
  double save_ms = 0;
  double load_ms = 0;
  std::size_t bytes = 0;
  bool round_trip = false;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_trace_io.json";
  const double scale = env_scale();
  const auto epochs = static_cast<std::uint32_t>(64 * scale < 2 ? 2 : 64 * scale);
  const std::uint32_t nodes = 32;
  const std::uint32_t per_node = 40;
  const trace::Trace t = make_trace(epochs, nodes, per_node);
  std::printf("trace: %zu misses, %zu barriers, %u epochs, %u nodes\n",
              t.misses.size(), t.barriers.size(), epochs, nodes);

  bool ok = true;
  std::vector<CodecResult> results;
  const auto check = [&](const trace::Trace& back, CodecResult& r) {
    trace::Trace c = back;
    trace::canonicalize(c);
    r.round_trip = c.misses == t.misses && c.barriers == t.barriers &&
                   c.labels == t.labels;
    ok = ok && r.round_trip;
  };

  {
    CodecResult r{"text"};
    auto t0 = Clock::now();
    std::ostringstream os;
    trace::save_text(t, os);
    r.save_ms = ms_since(t0);
    const std::string bytes = os.str();
    r.bytes = bytes.size();
    t0 = Clock::now();
    std::istringstream is(bytes);
    const trace::Trace back = trace::load_text(is);
    r.load_ms = ms_since(t0);
    check(back, r);
    results.push_back(r);
  }
  {
    CodecResult r{"binary_v1"};
    auto t0 = Clock::now();
    std::ostringstream os;
    trace::save_binary(t, os);
    r.save_ms = ms_since(t0);
    const std::string bytes = os.str();
    r.bytes = bytes.size();
    t0 = Clock::now();
    std::istringstream is(bytes);
    const trace::Trace back = trace::load_binary(is);
    r.load_ms = ms_since(t0);
    check(back, r);
    results.push_back(r);
  }
  std::string v2_k1;
  for (const EpochId k : {1u, 4u, 16u}) {
    static char names[3][16] = {"chunked_v2_k1", "chunked_v2_k4",
                                "chunked_v2_k16"};
    CodecResult r{names[k == 1 ? 0 : k == 4 ? 1 : 2]};
    auto t0 = Clock::now();
    std::ostringstream os;
    store::save_v2(t, os, k);
    r.save_ms = ms_since(t0);
    const std::string bytes = os.str();
    if (k == 1) v2_k1 = bytes;
    r.bytes = bytes.size();
    t0 = Clock::now();
    std::istringstream is(bytes);
    const trace::Trace back = store::load_v2(is);
    r.load_ms = ms_since(t0);
    check(back, r);
    // Bijectivity: re-serializing the decoded trace reproduces the bytes.
    std::ostringstream os2;
    store::save_v2(back, os2, k);
    ok = ok && os2.str() == bytes;
    results.push_back(r);
  }

  // Dedupe self-check: one changed epoch dirties exactly one k=1 chunk.
  trace::Trace t2 = t;
  for (auto& m : t2.misses) {
    if (m.epoch == epochs / 2) {
      m.addr += 8;
      break;
    }
  }
  std::ostringstream os2;
  store::save_v2(t2, os2);
  const store::V2Sections sa = store::split_v2(v2_k1);
  const store::V2Sections sb = store::split_v2(os2.str());
  std::size_t dirty = 0;
  ok = ok && sa.chunks.size() == sb.chunks.size();
  for (std::size_t i = 0; ok && i < sa.chunks.size(); ++i) {
    if (sa.chunks[i] != sb.chunks[i]) ++dirty;
  }
  ok = ok && dirty == 1 && sa.header == sb.header && sa.trailer == sb.trailer;

  std::printf("%-16s %-12s %-10s %-10s %-8s\n", "codec", "bytes", "save_ms",
              "load_ms", "ok");
  for (const auto& r : results) {
    std::printf("%-16s %-12zu %-10.1f %-10.1f %-8s\n", r.name, r.bytes,
                r.save_ms, r.load_ms, r.round_trip ? "yes" : "NO");
  }
  std::printf("one-epoch delta dirties %zu/%zu chunks\n", dirty,
              sa.chunks.size());

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"trace_io\",\n");
  std::fprintf(f, "  \"misses\": %zu,\n  \"barriers\": %zu,\n",
               t.misses.size(), t.barriers.size());
  std::fprintf(f, "  \"epochs\": %u,\n  \"nodes\": %u,\n", epochs, nodes);
  for (const auto& r : results) {
    std::fprintf(f,
                 "  \"%s_bytes\": %zu,\n  \"%s_save_ms\": %.1f,\n"
                 "  \"%s_load_ms\": %.1f,\n",
                 r.name, r.bytes, r.name, r.save_ms, r.name, r.load_ms);
  }
  std::fprintf(f, "  \"delta_dirty_chunks\": %zu,\n", dirty);
  std::fprintf(f, "  \"total_chunks\": %zu,\n", sa.chunks.size());
  std::fprintf(f, "  \"self_check_ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (self-check=%s)\n", out_path, ok ? "ok" : "VIOLATED");
  return ok ? 0 : 1;
}
