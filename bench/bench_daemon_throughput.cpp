// Throughput benchmark (and standing self-check) for cachierd.
//
// Starts an in-process daemon::Server on a private Unix socket, then
// drives it with concurrent clients through the real framed protocol --
// the same path `cachier --daemon` takes -- in two phases:
//
//   * cold: N distinct jobs (every source differs, so every cache key
//     differs) fan out across C client threads; measures end-to-end
//     jobs/sec when each result must be simulated;
//   * warm: the identical N jobs resubmitted; every one must be served
//     from the content-addressed result cache.
//
// The self-check doubles as a correctness gate: every warm result must
// report cached=true and be byte-identical (stdout, exit) to its cold
// counterpart, the server must record >= N cache hits and zero failed /
// cancelled jobs, and the drain must complete; any violation exits 1.
//
// Results go to BENCH_daemon_throughput.json (or argv[1]).
// CICO_BENCH_SCALE scales the job count.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cico/daemon/client.hpp"
#include "cico/daemon/job.hpp"
#include "cico/daemon/server.hpp"

namespace {

using namespace cico;
using Clock = std::chrono::steady_clock;

double env_scale() {
  const char* s = std::getenv("CICO_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

/// A distinct program per job index: the round count changes the
/// simulated work AND the output bytes, so every job has its own cache
/// key while staying in the tens-of-milliseconds range.
std::string program_for(std::size_t idx) {
  const std::size_t rounds = 8 + idx % 16;
  return "const N = 64;\n"
         "shared real A[N];\n"
         "parallel\n"
         "  for r = 1 to " + std::to_string(rounds) + " do\n"
         "    A[pid] = A[pid] + " + std::to_string(idx + 1) + ";\n"
         "    barrier;\n"
         "  od\n"
         "end\n";
}

daemon::JobRequest request_for(std::size_t idx) {
  daemon::JobRequest req;
  req.command = "run";
  req.name = "bench_" + std::to_string(idx) + ".mp";
  req.source = program_for(idx);
  req.cfg.nodes = 4;
  return req;
}

struct Ledger {
  std::mutex mu;
  std::map<std::string, std::string> bytes;  ///< cache key -> out + exit
  std::size_t cached = 0;
  std::size_t mismatches = 0;
  std::size_t errors = 0;
};

/// Runs jobs [begin, end) against the daemon and records each result in
/// the ledger; on the warm pass, divergence from the cold bytes counts
/// as a mismatch.
void drive(const daemon::ClientOptions& copt, std::size_t begin,
           std::size_t end, bool warm, Ledger* ledger) {
  for (std::size_t i = begin; i < end; ++i) {
    try {
      const daemon::JobResult res = daemon::submit_job(copt, request_for(i));
      const std::string flat = res.out + "\x1f" + std::to_string(res.exit);
      std::lock_guard<std::mutex> lk(ledger->mu);
      if (res.cached) ++ledger->cached;
      auto it = ledger->bytes.find(res.key);
      if (it == ledger->bytes.end()) {
        ledger->bytes.emplace(res.key, flat);
      } else if (it->second != flat) {
        ++ledger->mismatches;
      }
      if (warm && !res.cached) ++ledger->errors;  // warm pass must hit
      if (res.exit != 0) ++ledger->errors;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "job %zu: %s\n", i, e.what());
      std::lock_guard<std::mutex> lk(ledger->mu);
      ++ledger->errors;
    }
  }
}

/// One full pass over all jobs with `clients` threads; returns wall ms.
double run_phase(const daemon::ClientOptions& copt, std::size_t jobs,
                 std::size_t clients, bool warm, Ledger* ledger) {
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  const std::size_t per = (jobs + clients - 1) / clients;
  for (std::size_t c = 0; c < clients; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = begin + per < jobs ? begin + per : jobs;
    if (begin >= end) break;
    pool.emplace_back(drive, copt, begin, end, warm, ledger);
  }
  for (auto& t : pool) t.join();
  const auto dt = Clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_daemon_throughput.json";
  const std::size_t jobs = [] {
    const auto v = static_cast<std::size_t>(24 * env_scale());
    return v < 4 ? std::size_t{4} : v;
  }();
  const std::size_t clients = 4;

  char cache_tmpl[] = "/tmp/cachierd_bench_cache_XXXXXX";
  if (::mkdtemp(cache_tmpl) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }

  daemon::ServerOptions sopt;
  sopt.socket_path =
      "/tmp/cachierd_bench_" + std::to_string(::getpid()) + ".sock";
  sopt.workers = 4;
  sopt.queue_limit = 64;
  sopt.cache_dir = cache_tmpl;
  daemon::Server server(sopt);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server start: %s\n", e.what());
    return 1;
  }

  daemon::ClientOptions copt;
  copt.socket_path = sopt.socket_path;
  copt.max_attempts = 20;

  Ledger ledger;
  const double cold_ms = run_phase(copt, jobs, clients, false, &ledger);
  const std::size_t cold_cached = ledger.cached;  // expected: 0
  const double warm_ms = run_phase(copt, jobs, clients, true, &ledger);
  const std::size_t warm_cached = ledger.cached - cold_cached;

  server.request_drain();
  server.join();
  const daemon::Server::Counters c = server.counters();
  std::error_code ec;
  std::filesystem::remove_all(cache_tmpl, ec);

  const double cold_jps = 1000.0 * static_cast<double>(jobs) / cold_ms;
  const double warm_jps = 1000.0 * static_cast<double>(jobs) / warm_ms;

  std::printf("%-8s %-8s %-10s %-10s\n", "phase", "jobs", "wall_ms",
              "jobs/sec");
  std::printf("%-8s %-8zu %-10.1f %-10.1f\n", "cold", jobs, cold_ms, cold_jps);
  std::printf("%-8s %-8zu %-10.1f %-10.1f\n", "warm", jobs, warm_ms, warm_jps);

  const bool ok = ledger.errors == 0 && ledger.mismatches == 0 &&
                  warm_cached == jobs && c.cache_hits >= jobs &&
                  c.failed == 0 && c.cancelled == 0;
  if (!ok) {
    std::fprintf(stderr,
                 "self-check FAILED: errors=%zu mismatches=%zu "
                 "warm_cached=%zu/%zu hits=%llu failed=%llu cancelled=%llu\n",
                 ledger.errors, ledger.mismatches, warm_cached, jobs,
                 static_cast<unsigned long long>(c.cache_hits),
                 static_cast<unsigned long long>(c.failed),
                 static_cast<unsigned long long>(c.cancelled));
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror(out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"daemon_throughput\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n  \"clients\": %zu,\n", jobs, clients);
  std::fprintf(f, "  \"workers\": %u,\n", sopt.workers);
  std::fprintf(f, "  \"cold_ms\": %.1f,\n  \"cold_jobs_per_sec\": %.1f,\n",
               cold_ms, cold_jps);
  std::fprintf(f, "  \"warm_ms\": %.1f,\n  \"warm_jobs_per_sec\": %.1f,\n",
               warm_ms, warm_jps);
  std::fprintf(f, "  \"warm_speedup\": %.1f,\n",
               warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  std::fprintf(f, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(c.cache_hits));
  std::fprintf(f, "  \"byte_identical\": %s,\n",
               ledger.mismatches == 0 ? "true" : "false");
  std::fprintf(f, "  \"self_check_ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (self-check=%s)\n", out_path, ok ? "ok" : "VIOLATED");
  return ok ? 0 : 1;
}
