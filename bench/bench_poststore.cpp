// Extension experiment: check-in vs the KSR-1 post-store.
//
// Paper, section 1: "The Kendall Square KSR-1 provides a post-store
// instruction that broadcasts read-only copies of a cache block to all
// other nodes that have it allocated but are in the invalid state.  This
// operation is similar, though not identical, to a check-in."
//
// This bench quantifies the "not identical" part on a producer-multi-
// consumer pattern (one node updates a table each epoch; every node reads
// it each epoch): a check-in turns the consumers' traps into cheap fills;
// a post-store removes even the fills -- at the price of eager broadcast
// traffic, which is wasted when nobody re-reads (the single-consumer
// sweep shows the crossover).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "cico/sim/shared_array.hpp"

using namespace cico;
using namespace cico::bench;

namespace {

struct Row {
  Cycle time;
  std::uint64_t traps, read_misses, messages;
};

/// mode: 0 = unannotated, 1 = check_in, 2 = post_store
Row run_broadcast(int mode, std::uint32_t consumers) {
  sim::SimConfig cfg;
  cfg.nodes = 32;
  sim::Machine m(cfg);
  sim::SharedArray<double> t(m, "T", 256);
  m.run([&](sim::Proc& p) {
    for (int it = 0; it < 6; ++it) {
      if (p.id() == 0) {
        for (std::size_t i = 0; i < t.size(); ++i) {
          t.st(p, i, static_cast<double>(it), 1);
        }
        if (mode == 1) p.check_in(t.base(), t.bytes());
        if (mode == 2) p.post_store(t.base(), t.bytes());
      }
      p.barrier();
      if (p.id() >= 1 && p.id() <= consumers) {
        double s = 0;
        for (std::size_t i = 0; i < t.size(); ++i) s += t.ld(p, i, 2);
        p.compute(static_cast<Cycle>(s) % 5 + 1);
      }
      p.barrier();
    }
  });
  return Row{m.exec_time(), m.stats().total(Stat::Traps),
             m.stats().total(Stat::ReadMisses),
             m.stats().total(Stat::Messages)};
}

void sweep(std::uint32_t consumers) {
  const Row none = run_broadcast(0, consumers);
  const Row ci = run_broadcast(1, consumers);
  const Row ps = run_broadcast(2, consumers);
  std::printf("%9u | %8.3f %8.3f %8.3f | traps %6llu -> %4llu -> %4llu | "
              "read-misses %6llu -> %6llu -> %6llu | msgs %llu/%llu/%llu\n",
              consumers, 1.0,
              static_cast<double>(ci.time) / static_cast<double>(none.time),
              static_cast<double>(ps.time) / static_cast<double>(none.time),
              static_cast<unsigned long long>(none.traps),
              static_cast<unsigned long long>(ci.traps),
              static_cast<unsigned long long>(ps.traps),
              static_cast<unsigned long long>(none.read_misses),
              static_cast<unsigned long long>(ci.read_misses),
              static_cast<unsigned long long>(ps.read_misses),
              static_cast<unsigned long long>(none.messages),
              static_cast<unsigned long long>(ci.messages),
              static_cast<unsigned long long>(ps.messages));
}

}  // namespace

int main() {
  print_header(
      "Extension: check_in vs KSR-1 post_store on a broadcast table\n"
      "(normalized exec time: none / check_in / post_store; 32 nodes)");
  std::printf("%9s | %8s %8s %8s |\n", "consumers", "none", "check_in",
              "post_store");
  for (std::uint32_t c : {1u, 4u, 15u, 31u}) sweep(c);
  std::printf(
      "\nExpected: check_in halves the traps (the consumers' recalls;\n"
      "the producer's re-write upgrade remains); post_store additionally\n"
      "removes ~all consumer read misses and their refetch messages.  Its\n"
      "cost -- eager broadcast to past sharers that never re-read -- does\n"
      "not arise in this workload; Dir1SW chose check-in because it needs\n"
      "no broadcast hardware (paper section 1).\n");
  return 0;
}
