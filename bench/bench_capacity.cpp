// Section 2.1's placement claim, measured:
//
//   "The placement of the CICO annotations depends on the size of the
//    matrix as well as the size of the cache.  If the blocked matrix
//    completely fits in the processors cache, the CICO annotations appear
//    as follows [one check_out_X of the whole block, outside the time
//    loop] ... If the block of the matrix assigned to a processor is too
//    large to fit in the cache ... [the annotations move inside the time
//    loop]."
//
// This bench runs the hand-annotated Jacobi with BOTH of the paper's
// listings (cache-fit and column-fit placement) across a sweep of cache
// sizes.  When the processor's block fits, the one-time checkout wins;
// when it does not, the outside-the-loop checkout thrashes (its own
// evictions undo it) and the per-step placement takes over -- the
// crossover the paper's cost model predicts.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

Cycle run_jacobi(std::uint32_t cache_kb, bool cache_fits) {
  // Single processor: the paper's cost model counts each processor's own
  // check-outs, so the capacity effect is isolated from the (separate)
  // neighbour-sharing effect that check-ins also have.
  JacobiConfig jc;
  jc.n = 64;  // working set: 64x64 doubles x 2 buffers = 64 KB
  jc.steps = 6;
  jc.p = 1;
  jc.cache_fits = cache_fits;
  HarnessConfig hc;
  hc.sim.nodes = 1;
  hc.sim.cache.size_bytes = cache_kb << 10;
  Harness h([jc](std::uint64_t s) { return std::make_unique<Jacobi>(jc, s); },
            hc);
  RunResult r = h.measure(Variant::Hand);
  if (!r.verified) std::printf("  !! verification failed\n");
  return r.time;
}

}  // namespace

int main() {
  print_header(
      "Section 2.1: annotation placement vs. cache capacity\n"
      "(Jacobi 64x64 on one processor, hand annotations per the paper's\n"
      " two listings; working set = 64 KB)");
  std::printf("%10s  %14s  %14s  %s\n", "cache", "cache-fit", "column-fit",
              "winner");
  for (std::uint32_t kb : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const Cycle fit = run_jacobi(kb, true);
    const Cycle col = run_jacobi(kb, false);
    std::printf("%8u KB  %14llu  %14llu  %s\n", kb,
                static_cast<unsigned long long>(fit),
                static_cast<unsigned long long>(col),
                fit <= col ? "cache-fit placement" : "column-fit placement");
  }
  std::printf(
      "\nExpected: below the 64 KB working set the whole-block checkout\n"
      "thrashes (its own evictions undo it) and the per-step placement\n"
      "wins; at and above it, the one-time checkout wins -- the paper's\n"
      "crossover.\n");
  return 0;
}
