// Throughput benchmark (and standing self-check) for the report differ.
//
// Synthesizes schema-v2 reports with a configurable epoch_series length --
// the field that dominates report size on long runs -- and measures
// diff_reports() wall time for three cases:
//
//   * identical pair (the CI gate's hot path when nothing changed);
//   * perturbed pair with no tolerances (worst case: every divergence is
//     recorded as a regression);
//   * perturbed pair under a wildcard tolerance set (adds glob matching
//     per diverging path).
//
// The self-check doubles as a correctness gate: the identical pair must
// come back Identical, the perturbed pair Regression without tolerances
// and WithinTolerance with them; any violation exits 1.
//
// Results go to BENCH_report_diff.json (or argv[1]).
// CICO_BENCH_SCALE scales the epoch count.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "cico/obs/diff.hpp"
#include "cico/obs/json.hpp"

namespace {

using namespace cico;

/// A v2-shaped report with `epochs` epoch_series rows.  `bump` perturbs a
/// handful of counters plus every 16th epoch row, modelling genuine drift.
obs::Json synth_report(std::size_t epochs, std::uint64_t bump) {
  using obs::Json;
  Json cfg = Json::object();
  cfg.set("nodes", Json::number(std::uint64_t{16}));
  cfg.set("protocol", Json::string("dir1sw"));

  Json totals = Json::object();
  totals.set("traps", Json::number(std::uint64_t{1200 + bump}));
  totals.set("messages", Json::number(std::uint64_t{48000}));
  totals.set("stall_cycles", Json::number(std::uint64_t{910000 + 7 * bump}));

  Json costs = Json::object();
  costs.set("compute_cycles", Json::number(std::uint64_t{400000}));
  costs.set("directive_cycles", Json::number(std::uint64_t{52000 + bump}));

  Json series = Json::array();
  for (std::size_t e = 0; e < epochs; ++e) {
    Json row = Json::object();
    row.set("epoch", Json::number(static_cast<std::uint64_t>(e + 1)));
    row.set("end_vt", Json::number(static_cast<std::uint64_t>(
                          (e + 1) * 4096 + (e % 16 == 0 ? bump : 0))));
    row.set("misses", Json::number(static_cast<std::uint64_t>(37 + e % 11)));
    row.set("traps", Json::number(static_cast<std::uint64_t>(e % 5)));
    series.push_back(std::move(row));
  }

  Json run = Json::object();
  run.set("name", Json::string("run"));
  run.set("exec_time", Json::number(std::uint64_t{40960000 + bump}));
  run.set("totals", std::move(totals));
  run.set("cost_breakdown", std::move(costs));
  run.set("epoch_series", std::move(series));

  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json rep = Json::object();
  rep.set("schema_version", Json::number(std::uint64_t{2}));
  rep.set("generator", Json::string("bench_report_diff"));
  rep.set("command", Json::string("run"));
  rep.set("config", std::move(cfg));
  rep.set("runs", std::move(runs));
  return rep;
}

double time_ms(const obs::Json& a, const obs::Json& b,
               const obs::ToleranceSet& tol, int iters,
               obs::DiffResult* last) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) *last = obs::diff_reports(a, b, tol);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_report_diff.json";
  const std::size_t epochs = cico::bench::scaled(4096);
  const int iters = 25;

  cico::bench::print_header("report diff: structural compare throughput");
  std::printf("epochs=%zu iters=%d\n", epochs, iters);

  const obs::Json base = synth_report(epochs, 0);
  const obs::Json same = synth_report(epochs, 0);
  const obs::Json drifted = synth_report(epochs, 9);
  const obs::ToleranceSet none;
  const obs::ToleranceSet generous = obs::ToleranceSet::parse(
      "runs.*.exec_time = \"rel=1%\"\n"
      "runs.*.totals.** = \"rel=5%\"\n"
      "runs.*.cost_breakdown.** = \"rel=5%\"\n"
      "runs.*.epoch_series.** = \"abs=16\"\n");

  obs::DiffResult r_same;
  obs::DiffResult r_reg;
  obs::DiffResult r_tol;
  const double ms_same = time_ms(base, same, none, iters, &r_same);
  const double ms_reg = time_ms(base, drifted, none, iters, &r_reg);
  const double ms_tol = time_ms(base, drifted, generous, iters, &r_tol);

  std::printf("%-22s %-10s %-14s %-12s\n", "case", "ms/diff", "divergences",
              "outcome");
  std::printf("%-22s %-10.3f %-14zu %-12d\n", "identical", ms_same,
              r_same.divergences.size(), static_cast<int>(r_same.outcome));
  std::printf("%-22s %-10.3f %-14zu %-12d\n", "drift (no rules)", ms_reg,
              r_reg.divergences.size(), static_cast<int>(r_reg.outcome));
  std::printf("%-22s %-10.3f %-14zu %-12d\n", "drift (tolerated)", ms_tol,
              r_tol.divergences.size(), static_cast<int>(r_tol.outcome));

  const bool ok = r_same.outcome == obs::DiffOutcome::Identical &&
                  r_reg.outcome == obs::DiffOutcome::Regression &&
                  r_tol.outcome == obs::DiffOutcome::WithinTolerance;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror(out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"report_diff\",\n");
  std::fprintf(f, "  \"epochs\": %zu,\n  \"iters\": %d,\n", epochs, iters);
  std::fprintf(f, "  \"identical_ms\": %.4f,\n", ms_same);
  std::fprintf(f, "  \"drift_ms\": %.4f,\n", ms_reg);
  std::fprintf(f, "  \"drift_tolerated_ms\": %.4f,\n", ms_tol);
  std::fprintf(f, "  \"drift_divergences\": %zu,\n", r_reg.divergences.size());
  std::fprintf(f, "  \"outcome_contract_ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (contract=%s)\n", out_path, ok ? "ok" : "VIOLATED");
  return ok ? 0 : 1;
}
