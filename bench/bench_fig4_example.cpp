// E3 -- regenerates the paper's Fig. 4 worked example: the annotations
// the section 4.1 equations choose for the two-processor, multi-epoch
// access pattern, in both Programmer and Performance modes.
//
// Paper-quoted outputs:
//   epoch i-1 (Programmer):  co_x(a), co_x(b), co_s(d) & ci(a)
//   epoch i-1 (Performance): ci(a)
//   epoch i   (Programmer):  co_s(c), co_s(a) & ci(c), ci(d)
//   epoch i   (Performance): ci(c)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cico/cachier/cachier.hpp"

using namespace cico;
using namespace cico::cachier;

namespace {

constexpr Addr kA = 0x1000, kB = 0x1020, kC = 0x1040, kD = 0x1060;

trace::MissRecord rec(EpochId e, NodeId n, trace::MissKind k, Addr a) {
  return trace::MissRecord{e, n, k, a, 8, 1};
}

std::string names(const BlockSet& s) {
  std::vector<std::string> v;
  for (Block b : s) {
    switch (b * 32) {
      case kA: v.emplace_back("a"); break;
      case kB: v.emplace_back("b"); break;
      case kC: v.emplace_back("c"); break;
      case kD: v.emplace_back("d"); break;
      default: v.emplace_back("?"); break;
    }
  }
  std::sort(v.begin(), v.end());
  std::string out;
  for (const auto& x : v) {
    if (!out.empty()) out += ",";
    out += x;
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  using K = trace::MissKind;
  trace::Trace t;
  t.misses = {
      rec(0, 0, K::WriteMiss, kA), rec(0, 0, K::WriteMiss, kB),
      rec(0, 0, K::ReadMiss, kD),  rec(0, 1, K::ReadMiss, kA),
      rec(1, 0, K::ReadMiss, kA),  rec(1, 0, K::ReadMiss, kC),
      rec(1, 0, K::WriteMiss, kB), rec(1, 0, K::ReadMiss, kD),
      rec(2, 0, K::ReadMiss, kA),  rec(2, 0, K::WriteMiss, kB),
      rec(2, 1, K::WriteMiss, kC),
  };
  mem::CacheGeometry g;
  EpochDB db(t, g);
  SharingAnalyzer sh(t, g);
  AnnotationChooser ch(db, sh);

  std::printf("Fig. 4 worked example (processor P0; epoch 0 = the paper's "
              "i-1, epoch 1 = i)\n\n");
  std::printf("%-8s %-12s %-10s %-10s %-10s   %s\n", "epoch", "mode", "co_x",
              "co_s", "ci", "paper says");
  const char* paper[4] = {
      "co_x(a), co_x(b), co_s(d) & ci(a)", "ci(a)",
      "co_s(c), co_s(a) & ci(c), ci(d)", "ci(c)"};
  int k = 0;
  for (EpochId e : {0u, 1u}) {
    for (Mode m : {Mode::Programmer, Mode::Performance}) {
      AnnotationSets s = ch.choose(e, 0, m);
      std::printf("%-8u %-12s %-10s %-10s %-10s   \"%s\"\n", e, mode_name(m),
                  names(s.co_x).c_str(), names(s.co_s).c_str(),
                  names(s.ci).c_str(), paper[k++]);
    }
  }
  std::printf("\nData race detected on 'a' in epoch 0: %s (paper: yes)\n",
              sh.epoch(0).race_blocks.contains(kA / 32) ? "yes" : "NO");
  return 0;
}
