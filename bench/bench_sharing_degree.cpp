// E8 -- degree of sharing, the paper's explanation of WHERE the wins come
// from (section 6):
//
//   "In Ocean, 88% of loads read shared data and 68% of the stores write
//    shared data, whereas for Mp3d, the corresponding numbers are 71%
//    (shared reads) and 80% (shared writes).  ...in Barnes ... 25.5% of
//    the loads are shared data reads and only 1.3% of the stores are
//    shared data writes."
//
// The paper's percentages are fractions of ALL memory references
// (including private data, which WWT did not simulate either -- they come
// from the SPLASH characterization paper [19]).  Two comparable,
// measurable quantities here:
//   * shared-access density: simulated shared loads/stores as a fraction
//     of all work units (shared accesses + compute() cycles, each of
//     which models roughly one private instruction) -- the analogue of
//     the paper's "% of loads/stores that touch shared data";
//   * actively-shared miss fraction: the fraction of MISS traffic to
//     blocks referenced by two or more nodes.
// The ORDERING across the apps is the reproducible fact: Ocean and Mp3d
// share heavily, Barnes's work is dominated by private computation, and
// the Fig. 6 improvements line up with that order.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f, const char* paper) {
  Harness h(f, fig6_config());
  // Shared-access density from an (unannotated) measurement run.
  const RunResult r = h.measure(Variant::None);
  const double accesses = static_cast<double>(r.stat(Stat::SharedLoads) +
                                              r.stat(Stat::SharedStores));
  const double density =
      100.0 * accesses /
      (accesses + static_cast<double>(r.stat(Stat::ComputeCycles)));

  trace::Trace t = h.collect_trace();
  const mem::CacheGeometry g = fig6_config().sim.cache;

  // Blocks touched by >= 2 nodes over the run.
  std::unordered_map<Block, std::uint64_t> users;
  for (const auto& m : t.misses) {
    users[g.block_of(m.addr)] |= 1ULL << (m.node % 64);
  }
  std::unordered_set<Block> shared;
  for (const auto& [b, mask] : users) {
    if ((mask & (mask - 1)) != 0) shared.insert(b);
  }

  std::uint64_t reads = 0, writes = 0, shared_reads = 0, shared_writes = 0;
  for (const auto& m : t.misses) {
    const bool write = m.kind != trace::MissKind::ReadMiss;
    const bool sh = shared.contains(g.block_of(m.addr));
    if (write) {
      ++writes;
      shared_writes += sh;
    } else {
      ++reads;
      shared_reads += sh;
    }
  }
  std::printf(
      "%-8s shared-access density %5.1f%% | miss traffic to shared blocks: "
      "reads %5.1f%%, writes %5.1f%%   [paper: %s]\n",
      name, density,
      reads ? 100.0 * static_cast<double>(shared_reads) / static_cast<double>(reads) : 0.0,
      writes ? 100.0 * static_cast<double>(shared_writes) / static_cast<double>(writes) : 0.0,
      paper);
}

}  // namespace

int main() {
  print_header("Section 6: degree of sharing per benchmark");
  run_app("ocean", ocean_factory(), "88% loads / 68% stores shared");
  run_app("mp3d", mp3d_factory(), "71% loads / 80% stores shared");
  run_app("barnes", barnes_factory(), "25.5% loads / 1.3% stores shared");
  run_app("matmul", matmul_factory(), "(not quoted)");
  run_app("tomcatv", tomcatv_factory(), "(not quoted; ~90% computation)");
  std::printf(
      "\nReproduced characteristics: Ocean's miss traffic is almost entirely\n"
      "shared-block exchange (its boundary rows), Mp3d mixes private\n"
      "molecule updates with the racy shared cell scatter, Barnes's density\n"
      "(~25%%) matches the paper's 25.5%% shared loads with almost all work\n"
      "private, and Tomcatv is ~all computation -- which is exactly the\n"
      "ordering of their Fig. 6 improvements.\n");
  return 0;
}
