// E1 -- Figure 6: normalized execution time of the five benchmarks,
// {unannotated, hand CICO, Cachier CICO, Cachier CICO + prefetch}, on 32
// simulated Dir1SW nodes (256 KB / 4-way / 32 B caches).
//
// Paper-reported improvements (section 6 text):
//   Matrix Multiply: Cachier 16% (20% with prefetch), slightly ahead of
//                    hand; hand prefetches were misplaced.
//   Barnes:          Cachier 11% over none, 2% over hand; prefetch adds
//                    little (pointer structures).
//   Tomcatv:         no large effect (90% computation).
//   Ocean:           20% (25% with prefetch); 7% over hand.
//   Mp3d:            25% over none, 45% over hand (hand is WORSE than
//                    unannotated: checked in too early + missing
//                    check-ins).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

struct PaperRow {
  const char* hand;
  const char* cachier;
  const char* cachier_pf;
};

void run_one(const char* name, const AppFactory& f, const PaperRow& paper,
             bool include_hand_pf = false) {
  Harness h(f, fig6_config());
  std::vector<Variant> vs{Variant::None, Variant::Hand, Variant::Cachier,
                          Variant::CachierPf};
  if (include_hand_pf) vs.insert(vs.begin() + 2, Variant::HandPf);
  const auto t0 = std::chrono::steady_clock::now();
  auto rs = h.run_variants(vs);
  const auto t1 = std::chrono::steady_clock::now();

  const RunResult& base = rs.front();
  std::printf("%-10s", name);
  for (const auto& r : rs) {
    std::printf("  %s=%.3f", r.variant.c_str(), r.normalized_to(base));
    if (!r.verified) std::printf("(!VERIFY)");
  }
  std::printf("   [paper: hand=%s cachier=%s cachier+pf=%s]  (%.1fs)\n",
              paper.hand, paper.cachier, paper.cachier_pf,
              std::chrono::duration<double>(t1 - t0).count());
  std::printf("           ");
  for (const auto& r : rs) {
    std::printf("  %s: traps=%llu wf=%llu ci=%llu",
                r.variant.c_str(),
                static_cast<unsigned long long>(r.stat(Stat::Traps)),
                static_cast<unsigned long long>(r.stat(Stat::WriteFaults)),
                static_cast<unsigned long long>(r.stat(Stat::CheckIns)));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header(
      "Figure 6: normalized execution time (lower is better), 32 nodes\n"
      "variants: none / hand CICO / Cachier CICO / Cachier CICO+prefetch");
  run_one("matmul", matmul_factory(),
          {"~0.85", "~0.84", "~0.80"}, /*include_hand_pf=*/true);
  run_one("barnes", barnes_factory(), {"~0.91", "~0.89", "~0.89"});
  run_one("tomcatv", tomcatv_factory(), {"~1.00", "~1.00", "~1.00"});
  run_one("ocean", ocean_factory(), {"~0.87", "~0.80", "~0.75"});
  run_one("mp3d", mp3d_factory(), {"~1.36", "~0.75", "~0.75"});
  std::printf(
      "\nShape checks (paper section 6): Cachier beats hand on every app;\n"
      "Mp3d hand is WORSE than unannotated; Tomcatv is flat; prefetch helps\n"
      "MatMul/Ocean, does little for Barnes/Mp3d.\n");
  return 0;
}
