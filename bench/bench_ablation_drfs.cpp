// A1 -- ablation of the DRFS terms of the section 4.1 equations.
//
// (a) ignore_drfs: treat every block as uncontended (no tight
//     check-out/check-in around raced / falsely-shared data).  Mp3d and
//     the racy matrix multiply should lose most of their improvement --
//     the DRFS terms are where their win lives.
// (b) fs literal: the paper's one-line false-sharing definition without
//     the "requires a writer" qualifier (see SharingOptions) -- read-only
//     co-resident blocks get per-access check-ins, devastating
//     read-shared structures like the Barnes octree.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f, bool fs_literal_case) {
  Harness h(f, fig6_config());
  const RunResult none = h.measure(Variant::None);

  cachier::PlanOptions full{.mode = cachier::Mode::Performance};
  sim::DirectivePlan plan_full = h.build_plan(full);
  const RunResult with = h.measure(Variant::Cachier, &plan_full);

  cachier::PlanOptions ablate = full;
  if (fs_literal_case) {
    ablate.sharing.fs_requires_write = false;
  } else {
    ablate.chooser.ignore_drfs = true;
  }
  sim::DirectivePlan plan_abl = h.build_plan(ablate);
  const RunResult without = h.measure(Variant::Cachier, &plan_abl);

  std::printf("%-8s %-12s cachier=%.3f  ablated=%.3f\n", name,
              fs_literal_case ? "fs-literal" : "no-drfs",
              with.normalized_to(none), without.normalized_to(none));
}

}  // namespace

int main() {
  print_header(
      "A1: DRFS-term ablation (normalized exec time; lower is better)");
  std::printf("-- drop DRFS handling entirely --\n");
  {
    MatMulConfig mc;
    mc.n = 64;
    mc.racy = true;
    run_app("matmul*", [mc](std::uint64_t s) {
      return std::make_unique<MatMul>(mc, s);
    }, false);
  }
  run_app("mp3d", mp3d_factory(), false);
  std::printf("-- paper-literal false sharing (no writer required) --\n");
  run_app("barnes", barnes_factory(), true);
  std::printf(
      "\nExpected: dropping DRFS hurts the racy apps; the literal FS\n"
      "definition hurts Barnes badly (its read-shared octree gets tight\n"
      "check-ins).  (*racy section 4.4 decomposition)\n");
  return 0;
}
