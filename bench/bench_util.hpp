// Shared helpers for the experiment benches: table printing, app
// factories with the default (scaled-down) Fig. 6 workload sizes, and an
// environment scale knob.
//
// Every bench prints the PAPER's reported value next to the measured one
// so the reproduction can be judged at a glance (EXPERIMENTS.md records a
// full run).  Absolute cycle counts are not expected to match a 1994
// CM-5; the SHAPE -- who wins, by roughly what factor -- is the target.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "apps/barnes.hpp"
#include "apps/jacobi.hpp"
#include "apps/matmul.hpp"
#include "apps/mp3d.hpp"
#include "apps/ocean.hpp"
#include "apps/runner.hpp"
#include "apps/tomcatv.hpp"

namespace cico::bench {

/// CICO_BENCH_SCALE=0.5 halves workload sizes (quick runs), =2 doubles.
inline double env_scale() {
  const char* s = std::getenv("CICO_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline std::size_t scaled(std::size_t base, double lo_cap = 1) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * env_scale());
  return v < static_cast<std::size_t>(lo_cap) ? static_cast<std::size_t>(lo_cap) : v;
}

// --- Default Fig. 6 workloads (paper sizes in comments) -------------------

inline apps::AppFactory matmul_factory() {
  apps::MatMulConfig c;                       // paper: 256x256
  c.n = (scaled(96) + 31) / 32 * 32;          // multiple of the 8x4 grid
  if (c.n < 32) c.n = 32;
  return [c](std::uint64_t s) { return std::make_unique<apps::MatMul>(c, s); };
}

inline apps::AppFactory ocean_factory() {
  apps::OceanConfig c;                        // paper: 98x98
  c.n = (scaled(98) + 1) / 2 * 2;
  if (c.n < 64) c.n = 64;
  c.iters = 6;
  return [c](std::uint64_t s) { return std::make_unique<apps::Ocean>(c, s); };
}

inline apps::AppFactory tomcatv_factory() {
  apps::TomcatvConfig c;                      // paper: 1024x1024, 10 iters
  c.rows = scaled(256);
  c.cols = scaled(128);
  c.iters = 4;
  return [c](std::uint64_t s) { return std::make_unique<apps::Tomcatv>(c, s); };
}

inline apps::AppFactory mp3d_factory() {
  apps::Mp3dConfig c;                         // paper: 50,000 mol, 10 steps
  c.molecules = scaled(4096);
  c.steps = 6;
  return [c](std::uint64_t s) { return std::make_unique<apps::Mp3d>(c, s); };
}

inline apps::AppFactory barnes_factory() {
  apps::BarnesConfig c;                       // paper: 1024 bodies
  c.bodies = scaled(1024);
  c.steps = 2;
  return [c](std::uint64_t s) { return std::make_unique<apps::Barnes>(c, s); };
}

/// Standard Fig. 6 harness config: 32 nodes, 256 KB 4-way 32 B caches.
inline apps::HarnessConfig fig6_config() {
  apps::HarnessConfig hc;
  hc.sim.nodes = 32;
  hc.trace_seed = 1;
  hc.measure_seed = 2;  // the paper used different inputs (section 6)
  return hc;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace cico::bench
