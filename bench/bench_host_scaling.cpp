// Host-scaling benchmark for the sharded boundary phase.
//
// Runs the blocked matmul at {8,16,32,64} simulated nodes with
// boundary_threads in {1,2,4} and records, per configuration:
//
//   * simulated cycles + boundary rounds (MUST be identical across thread
//     counts -- the run aborts with exit 1 if they are not, making this a
//     standing determinism check as well as a benchmark);
//   * host wall-clock split into boundary-phase and window-phase time.
//
// Results go to BENCH_host_scaling.json (or argv[1]).  The JSON carries
// host_cores = std::thread::hardware_concurrency(): on a single-core
// container the worker pool cannot speed anything up (threads time-slice
// one core), so wall-clock numbers are only meaningful for speedup claims
// when host_cores >= the thread count.  The determinism cross-check is
// meaningful everywhere.
//
// CICO_BENCH_SCALE scales the matrix dimension (see bench_util.hpp).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/matmul.hpp"
#include "bench_util.hpp"
#include "cico/sim/machine.hpp"

namespace {

using namespace cico;

struct GridPoint {
  std::uint32_t nodes;
  std::uint32_t prow;
  std::uint32_t pcol;
};

constexpr GridPoint kGrids[] = {
    {8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8}};
constexpr std::uint32_t kThreads[] = {1, 2, 4};

struct Sample {
  std::uint32_t nodes = 0;
  std::uint32_t threads = 0;
  std::uint32_t workers = 0;   // what the machine actually used
  Cycle cycles = 0;
  std::uint64_t rounds = 0;
  double wall_ms = 0.0;
  double boundary_ms = 0.0;
  double window_ms = 0.0;
  bool verified = false;
};

Sample run_once(const GridPoint& g, std::uint32_t threads, std::size_t n) {
  sim::SimConfig cfg;
  cfg.nodes = g.nodes;
  cfg.cache.size_bytes = 16 * 1024;
  cfg.cache.assoc = 4;
  cfg.cache.block_bytes = 32;
  cfg.boundary_threads = threads;
  sim::Machine m(cfg);

  apps::MatMulConfig mc;
  mc.n = n;
  mc.prow = g.prow;
  mc.pcol = g.pcol;
  apps::MatMul app(mc, /*seed=*/2);
  app.setup(m, apps::Variant::None);
  m.run([&](sim::Proc& p) { app.body(p); });

  Sample s;
  s.nodes = g.nodes;
  s.threads = threads;
  s.workers = m.boundary_workers();
  s.cycles = m.exec_time();
  s.rounds = m.stats().node(0, Stat::BoundaryRounds);
  s.wall_ms = m.host_total_seconds() * 1e3;
  s.boundary_ms = m.host_boundary_seconds() * 1e3;
  s.window_ms = s.wall_ms - s.boundary_ms;
  s.verified = app.verify();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_host_scaling.json";
  // n must divide by every prow/pcol used (8, 4, 2); 96 does.
  const std::size_t n = cico::bench::scaled(96) / 8 * 8;
  const unsigned host_cores = std::thread::hardware_concurrency();

  cico::bench::print_header("host scaling: sharded boundary phase");
  std::printf("host_cores=%u  n=%zu\n", host_cores, n);
  std::printf("%-6s %-8s %-10s %-8s %-10s %-12s %-10s\n", "nodes", "threads",
              "cycles", "rounds", "wall_ms", "boundary_ms", "window_ms");

  std::vector<Sample> samples;
  bool deterministic = true;
  for (const GridPoint& g : kGrids) {
    Sample base;  // threads=1 reference (copied: samples may reallocate)
    for (std::uint32_t t : kThreads) {
      samples.push_back(run_once(g, t, n));
      const Sample& s = samples.back();
      std::printf("%-6u %-8u %-10llu %-8llu %-10.2f %-12.2f %-10.2f%s\n",
                  s.nodes, s.threads,
                  static_cast<unsigned long long>(s.cycles),
                  static_cast<unsigned long long>(s.rounds), s.wall_ms,
                  s.boundary_ms, s.window_ms, s.verified ? "" : "  UNVERIFIED");
      if (!s.verified) deterministic = false;
      if (t == kThreads[0]) {
        base = s;
      } else if (s.cycles != base.cycles || s.rounds != base.rounds) {
        std::printf("  ** divergence at nodes=%u threads=%u: cycles %llu vs "
                    "%llu, rounds %llu vs %llu\n",
                    g.nodes, t, static_cast<unsigned long long>(s.cycles),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(s.rounds),
                    static_cast<unsigned long long>(base.rounds));
        deterministic = false;
      }
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror(out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"host_scaling\",\n");
  std::fprintf(f, "  \"app\": \"matmul\",\n  \"n\": %zu,\n", n);
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"deterministic_across_threads\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"samples\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"nodes\": %u, \"threads\": %u, \"workers\": %u, "
        "\"cycles\": %llu, \"boundary_rounds\": %llu, \"wall_ms\": %.3f, "
        "\"boundary_ms\": %.3f, \"window_ms\": %.3f, \"verified\": %s}%s\n",
        s.nodes, s.threads, s.workers,
        static_cast<unsigned long long>(s.cycles),
        static_cast<unsigned long long>(s.rounds), s.wall_ms, s.boundary_ms,
        s.window_ms, s.verified ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (deterministic=%s)\n", out_path,
              deterministic ? "yes" : "NO");
  return deterministic ? 0 : 1;
}
