// A3 -- ablation of the trace-time barrier cache flush (section 3.3):
// "Each processor's shared data cache is flushed at every barrier
// synchronization to improve the quality of the trace data generated, as
// only accesses that miss in these caches show up in the trace."
//
// Without the flush, re-used blocks never re-miss, so later epochs look
// empty to Cachier: its per-epoch sets are incomplete and the plan
// mis-places (mostly: omits) annotations.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cico;
using namespace cico::apps;
using namespace cico::bench;

namespace {

void run_app(const char* name, const AppFactory& f) {
  HarnessConfig flush_cfg = fig6_config();
  HarnessConfig noflush_cfg = fig6_config();
  noflush_cfg.flush_at_barriers = false;

  Harness h_flush(f, flush_cfg);
  Harness h_noflush(f, noflush_cfg);

  const RunResult none = h_flush.measure(Variant::None);
  const trace::Trace t_f = h_flush.collect_trace();
  const trace::Trace t_n = h_noflush.collect_trace();

  sim::DirectivePlan p_f = h_flush.build_plan({.mode = cachier::Mode::Performance});
  sim::DirectivePlan p_n =
      h_noflush.build_plan({.mode = cachier::Mode::Performance});

  const RunResult rf = h_flush.measure(Variant::Cachier, &p_f);
  const RunResult rn = h_noflush.measure(Variant::Cachier, &p_n);
  std::printf(
      "%-8s trace-records flush=%zu noflush=%zu | cachier(flush)=%.3f  "
      "cachier(noflush)=%.3f\n",
      name, t_f.misses.size(), t_n.misses.size(), rf.normalized_to(none),
      rn.normalized_to(none));
}

}  // namespace

int main() {
  print_header(
      "A3: trace-quality ablation -- barrier cache flush on/off while "
      "tracing");
  run_app("ocean", ocean_factory());
  run_app("mp3d", mp3d_factory());
  std::printf(
      "\nExpected: the unflushed trace has far fewer records and its plan\n"
      "recovers less (or none) of the improvement.\n");
  return 0;
}
