// Race & false-sharing detection demo.
//
// Besides inserting annotations, Cachier "informs a programmer of
// potential data races and false sharing" so they can add locks or pad
// data structures (sections 1, 4.3).  This example builds a workload with
// one of each defect, traces it, prints Cachier's report, then applies
// the recommended fixes and shows the defects (and the slowdown) gone.
//
// Build & run:   ./build/examples/race_detective
#include <cstdio>

#include "cico/cachier/cachier.hpp"
#include "cico/sim/machine.hpp"
#include "cico/sim/shared_array.hpp"

using namespace cico;

namespace {

struct Result {
  trace::Trace trace;
  Cycle time = 0;
  std::string report;
};

Result run(bool fixed) {
  sim::SimConfig cfg;
  cfg.nodes = 4;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);

  // Defect 1: a shared accumulator raced by all nodes (fix: a lock).
  sim::SharedArray<double> total(m, "total", 1);
  // Defect 2: per-node counters packed into one cache block (fix: pad to
  // one counter per block).
  const std::size_t stride = fixed ? 4 : 1;  // 4 doubles = one 32 B block
  sim::SharedArray<double> counters(m, "counters", 4 * stride);

  const PcId pc_tot = m.pcs().intern("race_detective", 10, "total += x");
  const PcId pc_cnt = m.pcs().intern("race_detective", 20, "counters[me]++");
  w.set_labels(m.heap().trace_labels());

  m.run([&](sim::Proc& p) {
    for (int rep = 0; rep < 50; ++rep) {
      if (fixed) p.lock(total.base());
      total.st(p, 0, total.ld(p, 0, pc_tot) + 1.0, pc_tot);
      if (fixed) p.unlock(total.base());
      const std::size_t slot = p.id() * stride;
      counters.st(p, slot, counters.ld(p, slot, pc_cnt) + 1.0, pc_cnt);
      p.compute(20);
    }
  });

  Result r;
  r.trace = w.take();
  r.time = m.exec_time();
  cachier::SharingAnalyzer sa(r.trace, cfg.cache);
  r.report = sa.report(r.trace, m.pcs(), 6);
  std::printf("%s:  exec=%llu cycles, lost updates possible=%s\n",
              fixed ? "FIXED (lock + padding)" : "BUGGY",
              static_cast<unsigned long long>(r.time), fixed ? "no" : "yes");
  return r;
}

}  // namespace

int main() {
  std::printf("--- buggy version ---\n");
  Result buggy = run(false);
  std::printf("%s\n", buggy.report.c_str());

  std::printf("--- after applying Cachier's advice ---\n");
  Result fixed = run(true);
  std::printf("%s\n", fixed.report.c_str());

  cachier::SharingAnalyzer sb(buggy.trace, sim::SimConfig{}.cache);
  cachier::SharingAnalyzer sf(fixed.trace, sim::SimConfig{}.cache);
  std::printf("false-sharing blocks: buggy=%zu fixed=%zu\n",
              sb.false_shares().size(), sf.false_shares().size());
  std::printf("raced addresses:      buggy=%zu fixed=%zu (the remaining\n"
              "  'race' is the lock-protected accumulator -- Cachier ignores\n"
              "  locks by design, section 3.1)\n",
              sb.races().size(), sf.races().size());
  return 0;
}
