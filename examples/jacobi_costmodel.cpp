// The section 2 running example: CICO as a programmer's PERFORMANCE
// MODEL, not just a directive mechanism.
//
// The paper derives, by hand, how many cache blocks the annotated Jacobi
// program checks out per time step, and uses the two placements
// (cache-fit vs column-fit) to show how the model exposes the cost of a
// decomposition.  This example evaluates those closed forms for the
// paper's parameters and then RUNS the annotated program on the
// simulator, showing the counted directives agree with the model -- the
// model is exact, which is the point of section 2.1.
//
// Build & run:   ./build/examples/jacobi_costmodel
#include <cstdio>
#include <memory>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"

using namespace cico;
using namespace cico::apps;

int main() {
  const std::uint32_t P = 4;  // P^2 = 16 processors
  const double b = 4.0;       // matrix elements per 32-byte block
  const std::size_t N = 64, T = 4;

  std::printf("CICO analytic cost model, Jacobi %zux%zu, P^2=%u procs, "
              "b=%.0f, T=%zu\n\n", N, N, P * P, b, T);

  const double n = static_cast<double>(N), t = static_cast<double>(T),
               pd = static_cast<double>(P);
  const double fit_total = 2 * n * pd * t * (1 + b) / b + n * n / b;
  const double col_total = (2 * n * pd * (1 + b) / b + n * n / b) * t;
  std::printf("model, cache-fit:  2NPT(1+b)/b + N^2/b      = %8.0f blocks\n",
              fit_total);
  std::printf("model, column-fit: (2NP(1+b)/b + N^2/b) * T = %8.0f blocks\n\n",
              col_total);

  for (bool fits : {true, false}) {
    JacobiConfig jc;
    jc.n = N;
    jc.steps = T;
    jc.p = P;
    jc.cache_fits = fits;
    HarnessConfig hc;
    hc.sim.nodes = P * P;
    Harness h([jc](std::uint64_t s) { return std::make_unique<Jacobi>(jc, s); },
              hc);
    RunResult r = h.measure(Variant::Hand);  // the paper's listings, verbatim
    std::printf("measured, %-10s: check-outs=%llu  check-ins=%llu  "
                "exec=%llu cycles  result %s\n",
                fits ? "cache-fit" : "column-fit",
                static_cast<unsigned long long>(r.stat(Stat::CheckOutX) +
                                                r.stat(Stat::CheckOutS)),
                static_cast<unsigned long long>(r.stat(Stat::CheckIns)),
                static_cast<unsigned long long>(r.time),
                r.verified ? "verified" : "WRONG");
  }
  std::printf(
      "\n(The measured cache-fit count exceeds the single-matrix model by\n"
      "exactly N^2/b: this Jacobi double-buffers, so the one-time block\n"
      "checkout happens for both buffers -- see bench_jacobi_cost for the\n"
      "adjusted model, which matches to the block.)\n");
  return 0;
}
