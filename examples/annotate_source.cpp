// Source-to-source annotation demo: the paper's section 4.4 example.
//
// The "unconventional" matrix multiply is written in MiniPar, traced on
// the Dir1SW simulator, and handed to Cachier.  The program prints:
//   * the unannotated source,
//   * the naive per-access annotation (the section 4.3 strawman),
//   * Cachier's Programmer-CICO annotation (checkouts near epoch starts,
//     check-ins near epoch ends, tight annotations around the racy C
//     update), and
//   * Cachier's Performance-CICO annotation (the section 4.4 listing:
//     no explicit check_out_S, check_out_X C[i,j] before the racy update,
//     check_in right after),
// plus the data races Cachier flags.
//
// Build & run:   ./build/examples/annotate_source
#include <cstdio>

#include "cico/lang/interp.hpp"
#include "cico/lang/parser.hpp"
#include "cico/lang/unparse.hpp"
#include "cico/srcann/annotator.hpp"

using namespace cico;

namespace {

constexpr const char* kMatmul = R"(# Section 4.4 matrix multiply (unconventional decomposition):
# each processor owns a block of B; C is updated concurrently.
const N = 16;
const PR = 4;
const PC = 2;
shared real A[N, N];
shared real B[N, N];
shared real C[N, N];
parallel
  if pid == 0 then
    for i = 0 to N - 1 do
      for j = 0 to N - 1 do
        A[i, j] = i + j;
        B[i, j] = i - j;
        C[i, j] = 0;
      od
    od
  fi
  barrier;
  private kb = (pid - pid % PC) / PC;
  private jb = pid % PC;
  private lk = kb * (N / PR);
  private uk = lk + N / PR - 1;
  private lj = jb * (N / PC);
  private uj = lj + N / PC - 1;
  for i = 0 to N - 1 do
    for k = lk to uk do
      private t = A[i, k];
      for j = lj to uj do
        C[i, j] = C[i, j] + t * B[k, j];
      od
    od
  od
  barrier;
end
)";

void banner(const char* title) {
  std::printf("\n========== %s ==========\n", title);
}

}  // namespace

int main() {
  lang::Program prog = lang::parse(kMatmul);
  banner("unannotated MiniPar source");
  std::printf("%s", lang::unparse(prog).c_str());

  banner("naive per-access annotation (section 4.3 strawman)");
  std::printf("%s", lang::unparse(srcann::annotate_naive(prog)).c_str());

  // Trace the unannotated program (8 nodes = PR x PC).
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.trace_mode = true;
  sim::Machine m(cfg);
  trace::TraceWriter w;
  m.set_trace_writer(&w);
  lang::LoadedProgram lp(prog, m);
  w.set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { lp.run_node(p); });
  trace::Trace t = w.take();
  std::printf("\n(trace: %zu miss records, %u epochs)\n", t.misses.size(),
              t.num_epochs());

  for (auto mode : {cachier::Mode::Programmer, cachier::Mode::Performance}) {
    srcann::AnnotateResult res =
        srcann::annotate(prog, t, lp, cfg.cache, {.mode = mode});
    banner(mode == cachier::Mode::Programmer
               ? "Cachier Programmer CICO (section 4.4, first listing)"
               : "Cachier Performance CICO (section 4.4, second listing)");
    std::printf("%s", lang::unparse(res.program).c_str());
    std::printf(
        "\n[%zu annotations inserted, %zu loops generated, %zu races "
        "flagged, %zu falsely-shared blocks]\n",
        res.inserted, res.generated_loops, res.races, res.false_shares);
  }

  // Race report, mapped to source via the labelled regions.
  cachier::SharingAnalyzer sa(t, cfg.cache);
  banner("sharing report");
  std::printf("%s", sa.report(t, m.pcs(), 8).c_str());
  return 0;
}
