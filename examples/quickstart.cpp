// Quickstart: the whole Cachier pipeline (Fig. 1 of the paper) in ~80
// lines, on a toy producer-consumer program.
//
//   1. write a parallel program against the simulator's runtime API;
//   2. run it unannotated on the Dir1SW machine and look at the cost of
//      its communication (software traps!);
//   3. trace it, let Cachier choose CICO annotations from the trace;
//   4. re-run with the annotations as memory-system directives.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "cico/cachier/cachier.hpp"
#include "cico/sim/machine.hpp"
#include "cico/sim/shared_array.hpp"

using namespace cico;

namespace {

// A tiny SPMD program: node 0 produces a table, then every node consumes
// a slice of it, then node 1 rewrites it.  Classic barrier-separated
// epochs (the paper's Fig. 2 program model).
struct Workload {
  explicit Workload(sim::Machine& m)
      : data(m, "data", 512),
        pc_init(m.pcs().intern("quickstart", 10, "data[i] = i")),
        pc_read(m.pcs().intern("quickstart", 20, "x = data[i]")),
        pc_update(m.pcs().intern("quickstart", 30, "data[i] *= 2")) {}

  void operator()(sim::Proc& p) {
    if (p.id() == 0) {  // epoch 0: produce
      for (std::size_t i = 0; i < data.size(); ++i) {
        data.st(p, i, static_cast<double>(i), pc_init);
      }
    }
    p.barrier();
    // epoch 1: everyone reads its slice
    const std::size_t per = data.size() / p.nprocs();
    for (std::size_t i = p.id() * per; i < (p.id() + 1) * per; ++i) {
      (void)data.ld(p, i, pc_read);
      p.compute(4);
    }
    p.barrier();
    if (p.id() == 1) {  // epoch 2: rewrite
      for (std::size_t i = 0; i < data.size(); ++i) {
        data.st(p, i, data.ld(p, i, pc_read) * 2.0, pc_update);
      }
    }
  }

  sim::SharedArray<double> data;
  PcId pc_init, pc_read, pc_update;
};

Cycle run_once(const sim::DirectivePlan* plan, trace::TraceWriter* tracer,
               const char* label) {
  sim::SimConfig cfg;
  cfg.nodes = 8;
  cfg.trace_mode = tracer != nullptr;
  sim::Machine m(cfg);
  if (plan) m.set_plan(plan);
  if (tracer) m.set_trace_writer(tracer);
  Workload w(m);
  if (tracer) tracer->set_labels(m.heap().trace_labels());
  m.run([&](sim::Proc& p) { w(p); });
  std::printf("%-12s exec=%8llu cycles   traps=%-4llu write-faults=%-4llu "
              "messages=%llu\n",
              label, static_cast<unsigned long long>(m.exec_time()),
              static_cast<unsigned long long>(m.stats().total(Stat::Traps)),
              static_cast<unsigned long long>(m.stats().total(Stat::WriteFaults)),
              static_cast<unsigned long long>(m.stats().total(Stat::Messages)));
  return m.exec_time();
}

}  // namespace

int main() {
  std::printf("-- unannotated --\n");
  const Cycle base = run_once(nullptr, nullptr, "none");

  std::printf("-- trace + Cachier --\n");
  trace::TraceWriter w;
  run_once(nullptr, &w, "(tracing)");
  trace::Trace t = w.take();
  std::printf("trace: %zu miss records over %u epochs\n", t.misses.size(),
              t.num_epochs());

  cachier::PlanBuilder cachier(t, sim::SimConfig{}.cache);
  sim::DirectivePlan plan =
      cachier.build({.mode = cachier::Mode::Performance});
  std::printf("plan: %s\n", plan.summary().c_str());

  std::printf("-- annotated --\n");
  const Cycle fast = run_once(&plan, nullptr, "cachier");
  std::printf("\nspeedup: %.2fx (the check-ins turn every cross-node trap "
              "into a cheap fill)\n",
              static_cast<double>(base) / static_cast<double>(fast));
  return 0;
}
