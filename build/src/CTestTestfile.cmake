# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("cico/common")
subdirs("cico/mem")
subdirs("cico/net")
subdirs("cico/proto")
subdirs("cico/sim")
subdirs("cico/trace")
subdirs("cico/cachier")
subdirs("cico/lang")
subdirs("cico/srcann")
