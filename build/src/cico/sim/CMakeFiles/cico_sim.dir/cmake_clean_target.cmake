file(REMOVE_RECURSE
  "libcico_sim.a"
)
