# Empty dependencies file for cico_sim.
# This may be replaced when dependencies are built.
