file(REMOVE_RECURSE
  "CMakeFiles/cico_sim.dir/machine.cpp.o"
  "CMakeFiles/cico_sim.dir/machine.cpp.o.d"
  "CMakeFiles/cico_sim.dir/plan.cpp.o"
  "CMakeFiles/cico_sim.dir/plan.cpp.o.d"
  "CMakeFiles/cico_sim.dir/plan_io.cpp.o"
  "CMakeFiles/cico_sim.dir/plan_io.cpp.o.d"
  "CMakeFiles/cico_sim.dir/shared_heap.cpp.o"
  "CMakeFiles/cico_sim.dir/shared_heap.cpp.o.d"
  "libcico_sim.a"
  "libcico_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
