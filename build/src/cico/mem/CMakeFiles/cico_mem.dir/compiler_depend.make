# Empty compiler generated dependencies file for cico_mem.
# This may be replaced when dependencies are built.
