file(REMOVE_RECURSE
  "libcico_mem.a"
)
