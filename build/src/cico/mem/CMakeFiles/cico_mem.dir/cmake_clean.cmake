file(REMOVE_RECURSE
  "CMakeFiles/cico_mem.dir/cache.cpp.o"
  "CMakeFiles/cico_mem.dir/cache.cpp.o.d"
  "libcico_mem.a"
  "libcico_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
