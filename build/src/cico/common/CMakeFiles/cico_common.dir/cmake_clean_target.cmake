file(REMOVE_RECURSE
  "libcico_common.a"
)
