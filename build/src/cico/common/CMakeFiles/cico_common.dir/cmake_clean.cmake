file(REMOVE_RECURSE
  "CMakeFiles/cico_common.dir/pc_registry.cpp.o"
  "CMakeFiles/cico_common.dir/pc_registry.cpp.o.d"
  "CMakeFiles/cico_common.dir/stats.cpp.o"
  "CMakeFiles/cico_common.dir/stats.cpp.o.d"
  "libcico_common.a"
  "libcico_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
