# Empty compiler generated dependencies file for cico_common.
# This may be replaced when dependencies are built.
