# Empty dependencies file for cico_cachier.
# This may be replaced when dependencies are built.
