file(REMOVE_RECURSE
  "CMakeFiles/cico_cachier.dir/chooser.cpp.o"
  "CMakeFiles/cico_cachier.dir/chooser.cpp.o.d"
  "CMakeFiles/cico_cachier.dir/epoch_db.cpp.o"
  "CMakeFiles/cico_cachier.dir/epoch_db.cpp.o.d"
  "CMakeFiles/cico_cachier.dir/plan_builder.cpp.o"
  "CMakeFiles/cico_cachier.dir/plan_builder.cpp.o.d"
  "CMakeFiles/cico_cachier.dir/sharing.cpp.o"
  "CMakeFiles/cico_cachier.dir/sharing.cpp.o.d"
  "libcico_cachier.a"
  "libcico_cachier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_cachier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
