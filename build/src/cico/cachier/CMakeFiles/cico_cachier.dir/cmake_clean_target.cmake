file(REMOVE_RECURSE
  "libcico_cachier.a"
)
