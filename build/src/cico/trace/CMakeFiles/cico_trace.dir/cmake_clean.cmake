file(REMOVE_RECURSE
  "CMakeFiles/cico_trace.dir/trace.cpp.o"
  "CMakeFiles/cico_trace.dir/trace.cpp.o.d"
  "libcico_trace.a"
  "libcico_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
