file(REMOVE_RECURSE
  "libcico_trace.a"
)
