# Empty dependencies file for cico_trace.
# This may be replaced when dependencies are built.
