file(REMOVE_RECURSE
  "libcico_srcann.a"
)
