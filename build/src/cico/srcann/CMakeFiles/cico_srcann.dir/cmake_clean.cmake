file(REMOVE_RECURSE
  "CMakeFiles/cico_srcann.dir/annotator.cpp.o"
  "CMakeFiles/cico_srcann.dir/annotator.cpp.o.d"
  "libcico_srcann.a"
  "libcico_srcann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_srcann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
