# Empty compiler generated dependencies file for cico_srcann.
# This may be replaced when dependencies are built.
