
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cico/lang/ast.cpp" "src/cico/lang/CMakeFiles/cico_lang.dir/ast.cpp.o" "gcc" "src/cico/lang/CMakeFiles/cico_lang.dir/ast.cpp.o.d"
  "/root/repo/src/cico/lang/cfg.cpp" "src/cico/lang/CMakeFiles/cico_lang.dir/cfg.cpp.o" "gcc" "src/cico/lang/CMakeFiles/cico_lang.dir/cfg.cpp.o.d"
  "/root/repo/src/cico/lang/interp.cpp" "src/cico/lang/CMakeFiles/cico_lang.dir/interp.cpp.o" "gcc" "src/cico/lang/CMakeFiles/cico_lang.dir/interp.cpp.o.d"
  "/root/repo/src/cico/lang/lexer.cpp" "src/cico/lang/CMakeFiles/cico_lang.dir/lexer.cpp.o" "gcc" "src/cico/lang/CMakeFiles/cico_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/cico/lang/parser.cpp" "src/cico/lang/CMakeFiles/cico_lang.dir/parser.cpp.o" "gcc" "src/cico/lang/CMakeFiles/cico_lang.dir/parser.cpp.o.d"
  "/root/repo/src/cico/lang/unparse.cpp" "src/cico/lang/CMakeFiles/cico_lang.dir/unparse.cpp.o" "gcc" "src/cico/lang/CMakeFiles/cico_lang.dir/unparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cico/common/CMakeFiles/cico_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/sim/CMakeFiles/cico_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/proto/CMakeFiles/cico_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/mem/CMakeFiles/cico_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/net/CMakeFiles/cico_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/trace/CMakeFiles/cico_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
