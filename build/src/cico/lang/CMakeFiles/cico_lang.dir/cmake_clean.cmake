file(REMOVE_RECURSE
  "CMakeFiles/cico_lang.dir/ast.cpp.o"
  "CMakeFiles/cico_lang.dir/ast.cpp.o.d"
  "CMakeFiles/cico_lang.dir/cfg.cpp.o"
  "CMakeFiles/cico_lang.dir/cfg.cpp.o.d"
  "CMakeFiles/cico_lang.dir/interp.cpp.o"
  "CMakeFiles/cico_lang.dir/interp.cpp.o.d"
  "CMakeFiles/cico_lang.dir/lexer.cpp.o"
  "CMakeFiles/cico_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/cico_lang.dir/parser.cpp.o"
  "CMakeFiles/cico_lang.dir/parser.cpp.o.d"
  "CMakeFiles/cico_lang.dir/unparse.cpp.o"
  "CMakeFiles/cico_lang.dir/unparse.cpp.o.d"
  "libcico_lang.a"
  "libcico_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
