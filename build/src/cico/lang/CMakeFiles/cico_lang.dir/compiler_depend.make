# Empty compiler generated dependencies file for cico_lang.
# This may be replaced when dependencies are built.
