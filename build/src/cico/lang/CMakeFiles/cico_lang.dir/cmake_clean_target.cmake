file(REMOVE_RECURSE
  "libcico_lang.a"
)
