file(REMOVE_RECURSE
  "libcico_proto.a"
)
