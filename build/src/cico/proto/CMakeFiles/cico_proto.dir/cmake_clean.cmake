file(REMOVE_RECURSE
  "CMakeFiles/cico_proto.dir/dir1sw.cpp.o"
  "CMakeFiles/cico_proto.dir/dir1sw.cpp.o.d"
  "CMakeFiles/cico_proto.dir/dirn.cpp.o"
  "CMakeFiles/cico_proto.dir/dirn.cpp.o.d"
  "libcico_proto.a"
  "libcico_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
