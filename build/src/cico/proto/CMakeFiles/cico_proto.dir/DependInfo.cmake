
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cico/proto/dir1sw.cpp" "src/cico/proto/CMakeFiles/cico_proto.dir/dir1sw.cpp.o" "gcc" "src/cico/proto/CMakeFiles/cico_proto.dir/dir1sw.cpp.o.d"
  "/root/repo/src/cico/proto/dirn.cpp" "src/cico/proto/CMakeFiles/cico_proto.dir/dirn.cpp.o" "gcc" "src/cico/proto/CMakeFiles/cico_proto.dir/dirn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cico/common/CMakeFiles/cico_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/mem/CMakeFiles/cico_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/net/CMakeFiles/cico_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
