# Empty dependencies file for cico_proto.
# This may be replaced when dependencies are built.
