file(REMOVE_RECURSE
  "libcico_net.a"
)
