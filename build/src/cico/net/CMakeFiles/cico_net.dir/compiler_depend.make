# Empty compiler generated dependencies file for cico_net.
# This may be replaced when dependencies are built.
