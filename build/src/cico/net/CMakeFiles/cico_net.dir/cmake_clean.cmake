file(REMOVE_RECURSE
  "CMakeFiles/cico_net.dir/network.cpp.o"
  "CMakeFiles/cico_net.dir/network.cpp.o.d"
  "libcico_net.a"
  "libcico_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
