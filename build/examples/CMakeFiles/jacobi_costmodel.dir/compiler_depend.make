# Empty compiler generated dependencies file for jacobi_costmodel.
# This may be replaced when dependencies are built.
