file(REMOVE_RECURSE
  "CMakeFiles/jacobi_costmodel.dir/jacobi_costmodel.cpp.o"
  "CMakeFiles/jacobi_costmodel.dir/jacobi_costmodel.cpp.o.d"
  "jacobi_costmodel"
  "jacobi_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
