# Empty compiler generated dependencies file for race_detective.
# This may be replaced when dependencies are built.
