file(REMOVE_RECURSE
  "CMakeFiles/annotate_source.dir/annotate_source.cpp.o"
  "CMakeFiles/annotate_source.dir/annotate_source.cpp.o.d"
  "annotate_source"
  "annotate_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
