# Empty dependencies file for annotate_source.
# This may be replaced when dependencies are built.
