file(REMOVE_RECURSE
  "CMakeFiles/bench_programmer_mode.dir/bench_programmer_mode.cpp.o"
  "CMakeFiles/bench_programmer_mode.dir/bench_programmer_mode.cpp.o.d"
  "bench_programmer_mode"
  "bench_programmer_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_programmer_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
