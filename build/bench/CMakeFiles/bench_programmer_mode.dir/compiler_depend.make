# Empty compiler generated dependencies file for bench_programmer_mode.
# This may be replaced when dependencies are built.
