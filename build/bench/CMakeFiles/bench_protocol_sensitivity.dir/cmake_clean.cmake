file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_sensitivity.dir/bench_protocol_sensitivity.cpp.o"
  "CMakeFiles/bench_protocol_sensitivity.dir/bench_protocol_sensitivity.cpp.o.d"
  "bench_protocol_sensitivity"
  "bench_protocol_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
