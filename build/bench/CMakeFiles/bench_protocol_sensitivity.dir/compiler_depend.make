# Empty compiler generated dependencies file for bench_protocol_sensitivity.
# This may be replaced when dependencies are built.
