file(REMOVE_RECURSE
  "CMakeFiles/bench_poststore.dir/bench_poststore.cpp.o"
  "CMakeFiles/bench_poststore.dir/bench_poststore.cpp.o.d"
  "bench_poststore"
  "bench_poststore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poststore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
