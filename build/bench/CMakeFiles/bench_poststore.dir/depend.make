# Empty dependencies file for bench_poststore.
# This may be replaced when dependencies are built.
