file(REMOVE_RECURSE
  "CMakeFiles/bench_input_sensitivity.dir/bench_input_sensitivity.cpp.o"
  "CMakeFiles/bench_input_sensitivity.dir/bench_input_sensitivity.cpp.o.d"
  "bench_input_sensitivity"
  "bench_input_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
