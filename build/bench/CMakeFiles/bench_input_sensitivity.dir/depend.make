# Empty dependencies file for bench_input_sensitivity.
# This may be replaced when dependencies are built.
