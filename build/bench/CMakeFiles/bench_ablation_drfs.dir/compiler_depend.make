# Empty compiler generated dependencies file for bench_ablation_drfs.
# This may be replaced when dependencies are built.
