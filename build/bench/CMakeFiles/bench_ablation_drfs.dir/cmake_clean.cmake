file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_drfs.dir/bench_ablation_drfs.cpp.o"
  "CMakeFiles/bench_ablation_drfs.dir/bench_ablation_drfs.cpp.o.d"
  "bench_ablation_drfs"
  "bench_ablation_drfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
