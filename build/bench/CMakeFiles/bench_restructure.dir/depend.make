# Empty dependencies file for bench_restructure.
# This may be replaced when dependencies are built.
