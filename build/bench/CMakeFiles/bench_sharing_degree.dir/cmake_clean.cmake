file(REMOVE_RECURSE
  "CMakeFiles/bench_sharing_degree.dir/bench_sharing_degree.cpp.o"
  "CMakeFiles/bench_sharing_degree.dir/bench_sharing_degree.cpp.o.d"
  "bench_sharing_degree"
  "bench_sharing_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharing_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
