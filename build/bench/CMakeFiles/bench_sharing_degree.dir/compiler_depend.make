# Empty compiler generated dependencies file for bench_sharing_degree.
# This may be replaced when dependencies are built.
