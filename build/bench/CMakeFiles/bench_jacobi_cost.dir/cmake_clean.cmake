file(REMOVE_RECURSE
  "CMakeFiles/bench_jacobi_cost.dir/bench_jacobi_cost.cpp.o"
  "CMakeFiles/bench_jacobi_cost.dir/bench_jacobi_cost.cpp.o.d"
  "bench_jacobi_cost"
  "bench_jacobi_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jacobi_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
