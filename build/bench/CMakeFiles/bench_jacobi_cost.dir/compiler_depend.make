# Empty compiler generated dependencies file for bench_jacobi_cost.
# This may be replaced when dependencies are built.
