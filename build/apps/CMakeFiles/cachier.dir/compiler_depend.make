# Empty compiler generated dependencies file for cachier.
# This may be replaced when dependencies are built.
