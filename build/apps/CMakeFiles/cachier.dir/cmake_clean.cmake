file(REMOVE_RECURSE
  "CMakeFiles/cachier.dir/__/tools/cachier_cli.cpp.o"
  "CMakeFiles/cachier.dir/__/tools/cachier_cli.cpp.o.d"
  "cachier"
  "cachier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
