file(REMOVE_RECURSE
  "libcico_apps.a"
)
