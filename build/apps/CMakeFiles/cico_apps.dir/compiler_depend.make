# Empty compiler generated dependencies file for cico_apps.
# This may be replaced when dependencies are built.
