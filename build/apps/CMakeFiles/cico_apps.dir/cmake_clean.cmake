file(REMOVE_RECURSE
  "CMakeFiles/cico_apps.dir/barnes.cpp.o"
  "CMakeFiles/cico_apps.dir/barnes.cpp.o.d"
  "CMakeFiles/cico_apps.dir/jacobi.cpp.o"
  "CMakeFiles/cico_apps.dir/jacobi.cpp.o.d"
  "CMakeFiles/cico_apps.dir/matmul.cpp.o"
  "CMakeFiles/cico_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/cico_apps.dir/mp3d.cpp.o"
  "CMakeFiles/cico_apps.dir/mp3d.cpp.o.d"
  "CMakeFiles/cico_apps.dir/ocean.cpp.o"
  "CMakeFiles/cico_apps.dir/ocean.cpp.o.d"
  "CMakeFiles/cico_apps.dir/runner.cpp.o"
  "CMakeFiles/cico_apps.dir/runner.cpp.o.d"
  "CMakeFiles/cico_apps.dir/tomcatv.cpp.o"
  "CMakeFiles/cico_apps.dir/tomcatv.cpp.o.d"
  "libcico_apps.a"
  "libcico_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cico_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
