
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/apps/barnes.cpp" "apps/CMakeFiles/cico_apps.dir/barnes.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/barnes.cpp.o.d"
  "/root/repo/apps/jacobi.cpp" "apps/CMakeFiles/cico_apps.dir/jacobi.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/jacobi.cpp.o.d"
  "/root/repo/apps/matmul.cpp" "apps/CMakeFiles/cico_apps.dir/matmul.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/matmul.cpp.o.d"
  "/root/repo/apps/mp3d.cpp" "apps/CMakeFiles/cico_apps.dir/mp3d.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/mp3d.cpp.o.d"
  "/root/repo/apps/ocean.cpp" "apps/CMakeFiles/cico_apps.dir/ocean.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/ocean.cpp.o.d"
  "/root/repo/apps/runner.cpp" "apps/CMakeFiles/cico_apps.dir/runner.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/runner.cpp.o.d"
  "/root/repo/apps/tomcatv.cpp" "apps/CMakeFiles/cico_apps.dir/tomcatv.cpp.o" "gcc" "apps/CMakeFiles/cico_apps.dir/tomcatv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cico/sim/CMakeFiles/cico_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/cachier/CMakeFiles/cico_cachier.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/trace/CMakeFiles/cico_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/common/CMakeFiles/cico_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/proto/CMakeFiles/cico_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/net/CMakeFiles/cico_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/mem/CMakeFiles/cico_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
