# Empty compiler generated dependencies file for smoke_matmul.
# This may be replaced when dependencies are built.
