file(REMOVE_RECURSE
  "CMakeFiles/smoke_matmul.dir/__/tools/smoke_matmul.cpp.o"
  "CMakeFiles/smoke_matmul.dir/__/tools/smoke_matmul.cpp.o.d"
  "smoke_matmul"
  "smoke_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
