file(REMOVE_RECURSE
  "CMakeFiles/smoke_all.dir/__/tools/smoke_all.cpp.o"
  "CMakeFiles/smoke_all.dir/__/tools/smoke_all.cpp.o.d"
  "smoke_all"
  "smoke_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
