# Empty compiler generated dependencies file for smoke_all.
# This may be replaced when dependencies are built.
