# Empty dependencies file for shared_heap_test.
# This may be replaced when dependencies are built.
