file(REMOVE_RECURSE
  "CMakeFiles/shared_heap_test.dir/sim/shared_heap_test.cpp.o"
  "CMakeFiles/shared_heap_test.dir/sim/shared_heap_test.cpp.o.d"
  "shared_heap_test"
  "shared_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
