file(REMOVE_RECURSE
  "CMakeFiles/app_pipeline_test.dir/integration/app_pipeline_test.cpp.o"
  "CMakeFiles/app_pipeline_test.dir/integration/app_pipeline_test.cpp.o.d"
  "app_pipeline_test"
  "app_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
