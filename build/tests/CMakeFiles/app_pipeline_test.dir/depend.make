# Empty dependencies file for app_pipeline_test.
# This may be replaced when dependencies are built.
