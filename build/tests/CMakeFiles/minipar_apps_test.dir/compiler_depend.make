# Empty compiler generated dependencies file for minipar_apps_test.
# This may be replaced when dependencies are built.
