file(REMOVE_RECURSE
  "CMakeFiles/minipar_apps_test.dir/integration/minipar_apps_test.cpp.o"
  "CMakeFiles/minipar_apps_test.dir/integration/minipar_apps_test.cpp.o.d"
  "minipar_apps_test"
  "minipar_apps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipar_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
