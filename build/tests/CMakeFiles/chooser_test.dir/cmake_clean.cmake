file(REMOVE_RECURSE
  "CMakeFiles/chooser_test.dir/cachier/chooser_test.cpp.o"
  "CMakeFiles/chooser_test.dir/cachier/chooser_test.cpp.o.d"
  "chooser_test"
  "chooser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chooser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
