file(REMOVE_RECURSE
  "CMakeFiles/dirn_test.dir/proto/dirn_test.cpp.o"
  "CMakeFiles/dirn_test.dir/proto/dirn_test.cpp.o.d"
  "dirn_test"
  "dirn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
