# Empty compiler generated dependencies file for dirn_test.
# This may be replaced when dependencies are built.
