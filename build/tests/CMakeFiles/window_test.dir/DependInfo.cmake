
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/window_test.cpp" "tests/CMakeFiles/window_test.dir/sim/window_test.cpp.o" "gcc" "tests/CMakeFiles/window_test.dir/sim/window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cico/cachier/CMakeFiles/cico_cachier.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/sim/CMakeFiles/cico_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/proto/CMakeFiles/cico_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/net/CMakeFiles/cico_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/mem/CMakeFiles/cico_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/trace/CMakeFiles/cico_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cico/common/CMakeFiles/cico_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
