file(REMOVE_RECURSE
  "CMakeFiles/plan_apply_test.dir/sim/plan_apply_test.cpp.o"
  "CMakeFiles/plan_apply_test.dir/sim/plan_apply_test.cpp.o.d"
  "plan_apply_test"
  "plan_apply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_apply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
