# Empty compiler generated dependencies file for plan_apply_test.
# This may be replaced when dependencies are built.
