file(REMOVE_RECURSE
  "CMakeFiles/directive_property_test.dir/sim/directive_property_test.cpp.o"
  "CMakeFiles/directive_property_test.dir/sim/directive_property_test.cpp.o.d"
  "directive_property_test"
  "directive_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directive_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
