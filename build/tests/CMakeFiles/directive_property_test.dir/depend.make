# Empty dependencies file for directive_property_test.
# This may be replaced when dependencies are built.
