file(REMOVE_RECURSE
  "CMakeFiles/plan_builder_test.dir/cachier/plan_builder_test.cpp.o"
  "CMakeFiles/plan_builder_test.dir/cachier/plan_builder_test.cpp.o.d"
  "plan_builder_test"
  "plan_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
