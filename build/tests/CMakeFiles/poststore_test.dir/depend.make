# Empty dependencies file for poststore_test.
# This may be replaced when dependencies are built.
