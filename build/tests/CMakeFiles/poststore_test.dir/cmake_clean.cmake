file(REMOVE_RECURSE
  "CMakeFiles/poststore_test.dir/sim/poststore_test.cpp.o"
  "CMakeFiles/poststore_test.dir/sim/poststore_test.cpp.o.d"
  "poststore_test"
  "poststore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poststore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
