file(REMOVE_RECURSE
  "CMakeFiles/epoch_db_test.dir/cachier/epoch_db_test.cpp.o"
  "CMakeFiles/epoch_db_test.dir/cachier/epoch_db_test.cpp.o.d"
  "epoch_db_test"
  "epoch_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
