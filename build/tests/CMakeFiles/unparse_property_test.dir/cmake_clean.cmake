file(REMOVE_RECURSE
  "CMakeFiles/unparse_property_test.dir/lang/unparse_property_test.cpp.o"
  "CMakeFiles/unparse_property_test.dir/lang/unparse_property_test.cpp.o.d"
  "unparse_property_test"
  "unparse_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unparse_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
