# Empty compiler generated dependencies file for unparse_property_test.
# This may be replaced when dependencies are built.
