# Empty compiler generated dependencies file for dir1sw_test.
# This may be replaced when dependencies are built.
