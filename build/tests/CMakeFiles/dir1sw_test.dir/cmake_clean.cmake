file(REMOVE_RECURSE
  "CMakeFiles/dir1sw_test.dir/proto/dir1sw_test.cpp.o"
  "CMakeFiles/dir1sw_test.dir/proto/dir1sw_test.cpp.o.d"
  "dir1sw_test"
  "dir1sw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir1sw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
