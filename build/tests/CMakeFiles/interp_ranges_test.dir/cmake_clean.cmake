file(REMOVE_RECURSE
  "CMakeFiles/interp_ranges_test.dir/lang/interp_ranges_test.cpp.o"
  "CMakeFiles/interp_ranges_test.dir/lang/interp_ranges_test.cpp.o.d"
  "interp_ranges_test"
  "interp_ranges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_ranges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
