# Empty dependencies file for interp_ranges_test.
# This may be replaced when dependencies are built.
