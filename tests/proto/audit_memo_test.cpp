// Memoized paranoid audits (check_invariants_incremental).
//
// The contract: an incremental audit detects exactly the violations a full
// audit would detect among blocks whose directory entries were touched
// since the last CLEAN incremental audit, and a clean incremental audit
// clears that memo.  Corruption introduced BEHIND the memo (a block the
// protocol has not touched since its last clean audit) is invisible to
// the incremental check -- that is the whole point of memoizing -- and is
// why the simulator keeps the full walk as the end-of-run backstop.
#include <gtest/gtest.h>

#include <map>

#include "cico/proto/dir1sw.hpp"
#include "cico/proto/dirn.hpp"

namespace cico::proto {
namespace {

using mem::LineState;

class FakeCaches : public CacheControl {
 public:
  [[nodiscard]] LineState peek(NodeId n, Block b) const override {
    auto it = lines_.find({n, b});
    return it == lines_.end() ? LineState::Invalid : it->second;
  }
  void invalidate(NodeId n, Block b) override { lines_.erase({n, b}); }
  void downgrade(NodeId n, Block b) override {
    auto it = lines_.find({n, b});
    if (it != lines_.end()) it->second = LineState::Shared;
  }
  void push_shared(NodeId n, Block b) override {
    lines_[{n, b}] = LineState::Shared;
  }
  void set(NodeId n, Block b, LineState s) {
    if (s == LineState::Invalid) lines_.erase({n, b});
    else lines_[{n, b}] = s;
  }

 private:
  std::map<std::pair<NodeId, Block>, LineState> lines_;
};

class AuditMemoTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;
  AuditMemoTest()
      : stats_(kNodes), net_(cost_, stats_),
        dir_(kNodes, cost_, net_, stats_, caches_) {}

  CostModel cost_{};
  Stats stats_;
  net::Network net_;
  FakeCaches caches_;
  Dir1SW dir_;
};

TEST_F(AuditMemoTest, CleanRunIsCleanIncrementally) {
  dir_.get_shared(0, 1, 0, false);
  caches_.set(0, 1, LineState::Shared);
  dir_.get_exclusive(2, 6, 0, false);
  caches_.set(2, 6, LineState::Exclusive);
  EXPECT_EQ(dir_.check_invariants(), "");
  EXPECT_EQ(dir_.check_invariants_incremental(), "");
}

TEST_F(AuditMemoTest, TouchedCorruptionIsDetected) {
  dir_.get_shared(0, 1, 0, false);
  caches_.set(0, 1, LineState::Shared);
  EXPECT_EQ(dir_.check_invariants_incremental(), "");

  // Touch block 1 again (put keeps it in the dirty set), then corrupt the
  // cache side: the incremental audit must see it.
  dir_.get_shared(1, 1, 50, false);
  caches_.set(1, 1, LineState::Shared);
  caches_.set(0, 1, LineState::Invalid);  // sharer silently lost its copy
  const std::string diag = dir_.check_invariants_incremental();
  EXPECT_NE(diag, "");
  EXPECT_EQ(diag, dir_.check_invariants());
}

TEST_F(AuditMemoTest, CleanAuditClearsMemoSoUntouchedCorruptionHides) {
  dir_.get_shared(0, 1, 0, false);
  caches_.set(0, 1, LineState::Shared);
  ASSERT_EQ(dir_.check_invariants_incremental(), "");  // clears the memo

  // Corrupt block 1 WITHOUT a protocol call: the memoized audit cannot see
  // it (by design)...
  caches_.set(0, 1, LineState::Invalid);
  EXPECT_EQ(dir_.check_invariants_incremental(), "");
  // ...but the full backstop walk does.
  EXPECT_NE(dir_.check_invariants(), "");
}

TEST_F(AuditMemoTest, FailedAuditKeepsMemoForRecheck) {
  dir_.get_shared(0, 1, 0, false);
  // "Forget" to fill the requester's cache: inconsistent.
  ASSERT_NE(dir_.check_invariants_incremental(), "");
  // The memo must NOT have been cleared by the failed audit: the same
  // violation shows up again without any new protocol activity.
  EXPECT_NE(dir_.check_invariants_incremental(), "");
  // Repair, then the audit passes and clears.
  caches_.set(0, 1, LineState::Shared);
  EXPECT_EQ(dir_.check_invariants_incremental(), "");
}

TEST_F(AuditMemoTest, DirtyTrackingSpansAllHomeSlices) {
  // One block per home slice; corrupt them all; every diagnostic appears.
  for (Block b = 0; b < kNodes; ++b) {
    dir_.get_exclusive(0, b, 0, false);
    caches_.set(0, b, LineState::Exclusive);
  }
  ASSERT_EQ(dir_.check_invariants_incremental(), "");
  for (Block b = 0; b < kNodes; ++b) {
    dir_.put(0, b, true, 100, true);  // check-in -> Idle, touches the entry
  }
  // Leave stale Exclusive copies in the cache: every slice is now wrong.
  for (Block b = 0; b < kNodes; ++b) caches_.set(0, b, LineState::Exclusive);
  const std::string diag = dir_.check_invariants_incremental();
  for (Block b = 0; b < kNodes; ++b) {
    EXPECT_NE(diag.find("block " + std::to_string(b)), std::string::npos)
        << diag;
  }
}

TEST(DirNAuditMemo, IncrementalMatchesFullOnTouchedBlocks) {
  constexpr std::uint32_t kNodes = 4;
  CostModel cost{};
  Stats stats(kNodes);
  net::Network net(cost, stats);
  FakeCaches caches;
  DirNFullMap dir(kNodes, cost, net, stats, caches);

  dir.get_shared(0, 3, 0, false);
  caches.set(0, 3, LineState::Shared);
  EXPECT_EQ(dir.check_invariants_incremental(), "");

  dir.get_shared(1, 3, 40, false);
  caches.set(1, 3, LineState::Shared);
  caches.set(2, 3, LineState::Exclusive);  // stray copy
  const std::string diag = dir.check_invariants_incremental();
  EXPECT_NE(diag, "");
  EXPECT_EQ(diag, dir.check_invariants());

  // Repair and confirm the memo clears.
  caches.set(2, 3, LineState::Invalid);
  EXPECT_EQ(dir.check_invariants_incremental(), "");
  caches.set(1, 3, LineState::Invalid);      // corrupt behind the memo
  EXPECT_EQ(dir.check_invariants_incremental(), "");
  EXPECT_NE(dir.check_invariants(), "");
}

}  // namespace
}  // namespace cico::proto
