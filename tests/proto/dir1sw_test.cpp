// Exhaustive transition tests for the Dir1SW directory protocol: every
// hardware fast path, every software trap, prefetch drop rules, check-in
// semantics, latency arithmetic and invariant checking.
#include "cico/proto/dir1sw.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cico::proto {
namespace {

using mem::LineState;

class FakeCaches : public CacheControl {
 public:
  [[nodiscard]] LineState peek(NodeId n, Block b) const override {
    auto it = lines_.find({n, b});
    return it == lines_.end() ? LineState::Invalid : it->second;
  }
  void invalidate(NodeId n, Block b) override { lines_.erase({n, b}); }
  void downgrade(NodeId n, Block b) override {
    auto it = lines_.find({n, b});
    if (it != lines_.end()) it->second = LineState::Shared;
  }
  void push_shared(NodeId n, Block b) override {
    lines_[{n, b}] = LineState::Shared;
  }
  void set(NodeId n, Block b, LineState s) {
    if (s == LineState::Invalid) lines_.erase({n, b});
    else lines_[{n, b}] = s;
  }

 private:
  std::map<std::pair<NodeId, Block>, LineState> lines_;
};

class Dir1SWTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 4;
  Dir1SWTest()
      : stats_(kNodes), net_(cost_, stats_),
        dir_(kNodes, cost_, net_, stats_, caches_) {}

  /// Mirrors the simulator: apply the cache-state consequence of a
  /// successful request on the requester's own cache.
  void fill(NodeId n, Block b, LineState s) { caches_.set(n, b, s); }

  CostModel cost_{};  // defaults
  Stats stats_;
  net::Network net_;
  FakeCaches caches_;
  Dir1SW dir_;
};

// Block 1 homes on node 1; requests from node 0 are fully remote.
constexpr Block kB = 1;

TEST_F(Dir1SWTest, IdleGetSharedIsHardware) {
  auto r = dir_.get_shared(0, kB, 100);
  EXPECT_FALSE(r.trapped);
  EXPECT_FALSE(r.nacked);
  EXPECT_EQ(r.invalidations, 0u);
  // req hop + dir_hw + mem + reply hop
  EXPECT_EQ(r.done_at, 100 + cost_.hw_miss_latency());
  fill(0, kB, LineState::Shared);
  const DirEntry* e = dir_.entry(kB);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_EQ(e->count, 1u);
  EXPECT_TRUE(e->has_sharer(0));
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, IdleGetExclusiveIsHardware) {
  auto r = dir_.get_exclusive(2, kB, 0);
  EXPECT_FALSE(r.trapped);
  EXPECT_EQ(r.done_at, cost_.hw_miss_latency());
  fill(2, kB, LineState::Exclusive);
  const DirEntry* e = dir_.entry(kB);
  EXPECT_EQ(e->state, DirState::Exclusive);
  EXPECT_EQ(e->owner, 2u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, SecondReaderIncrementsCounter) {
  dir_.get_shared(0, kB, 0);
  fill(0, kB, LineState::Shared);
  auto r = dir_.get_shared(2, kB, 10);
  fill(2, kB, LineState::Shared);
  EXPECT_FALSE(r.trapped);
  const DirEntry* e = dir_.entry(kB);
  EXPECT_EQ(e->count, 2u);
  EXPECT_TRUE(e->has_sharer(0));
  EXPECT_TRUE(e->has_sharer(2));
  EXPECT_EQ(stats_.total(Stat::Traps), 0u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, SoleSharerUpgradeIsHardware) {
  // The Dir1SW hardware pointer + counter==1 suffice: no trap, no data.
  dir_.get_shared(0, kB, 0);
  fill(0, kB, LineState::Shared);
  auto r = dir_.get_exclusive(0, kB, 200);
  EXPECT_FALSE(r.trapped);
  EXPECT_EQ(r.invalidations, 0u);
  // req hop + dir_hw + ack hop (no memory access)
  EXPECT_EQ(r.done_at, 200 + cost_.net_hop + cost_.dir_hw + cost_.net_hop);
  fill(0, kB, LineState::Exclusive);
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Exclusive);
  EXPECT_EQ(dir_.entry(kB)->owner, 0u);
  EXPECT_EQ(stats_.total(Stat::Traps), 0u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, UpgradeWithOtherSharersTraps) {
  dir_.get_shared(0, kB, 0);
  fill(0, kB, LineState::Shared);
  dir_.get_shared(2, kB, 0);
  fill(2, kB, LineState::Shared);
  auto r = dir_.get_exclusive(0, kB, 1000);
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.invalidations, 1u);
  EXPECT_EQ(stats_.total(Stat::Traps), 1u);
  EXPECT_EQ(stats_.total(Stat::Invalidations), 1u);
  // Requester held a copy: no memory fetch on the reply path.
  // req->home + trap + inval occupancy + inval RTT + ack
  const Cycle want = 1000 + cost_.net_hop + cost_.dir_trap +
                     cost_.inval_per_sharer + 2 * cost_.net_hop + cost_.net_hop;
  EXPECT_EQ(r.done_at, want);
  fill(0, kB, LineState::Exclusive);
  EXPECT_EQ(caches_.peek(2, kB), LineState::Invalid);  // invalidated
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Exclusive);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, WriteToForeignSharedTraps) {
  dir_.get_shared(2, kB, 0);
  fill(2, kB, LineState::Shared);
  dir_.get_shared(3, kB, 0);
  fill(3, kB, LineState::Shared);
  auto r = dir_.get_exclusive(0, kB, 0);
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.invalidations, 2u);
  fill(0, kB, LineState::Exclusive);
  EXPECT_EQ(caches_.peek(2, kB), LineState::Invalid);
  EXPECT_EQ(caches_.peek(3, kB), LineState::Invalid);
  EXPECT_EQ(dir_.entry(kB)->owner, 0u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, ReadOfExclusiveRecallsAndDowngrades) {
  dir_.get_exclusive(2, kB, 0);
  fill(2, kB, LineState::Exclusive);
  auto r = dir_.get_shared(0, kB, 500);
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(stats_.total(Stat::Recalls), 1u);
  EXPECT_EQ(stats_.total(Stat::Writebacks), 1u);
  fill(0, kB, LineState::Shared);
  EXPECT_EQ(caches_.peek(2, kB), LineState::Shared);  // downgraded, kept
  const DirEntry* e = dir_.entry(kB);
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_EQ(e->count, 2u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, WriteOfForeignExclusiveRecallsAndInvalidates) {
  dir_.get_exclusive(2, kB, 0);
  fill(2, kB, LineState::Exclusive);
  auto r = dir_.get_exclusive(0, kB, 500);
  EXPECT_TRUE(r.trapped);
  EXPECT_EQ(r.invalidations, 1u);
  fill(0, kB, LineState::Exclusive);
  EXPECT_EQ(caches_.peek(2, kB), LineState::Invalid);
  EXPECT_EQ(dir_.entry(kB)->owner, 0u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, OwnerRerequestIsIdempotent) {
  dir_.get_exclusive(0, kB, 0);
  fill(0, kB, LineState::Exclusive);
  auto r1 = dir_.get_exclusive(0, kB, 100);
  EXPECT_FALSE(r1.trapped);
  EXPECT_EQ(r1.done_at, 100 + cost_.hit);
  auto r2 = dir_.get_shared(0, kB, 100);
  EXPECT_FALSE(r2.trapped);
  EXPECT_EQ(r2.done_at, 100 + cost_.hit);
}

TEST_F(Dir1SWTest, CheckInOfExclusiveWritesBackToIdle) {
  dir_.get_exclusive(0, kB, 0);
  fill(0, kB, LineState::Exclusive);
  auto r = dir_.put(0, kB, /*dirty=*/true, 300, /*explicit_ci=*/true);
  EXPECT_FALSE(r.nacked);
  EXPECT_EQ(r.done_at, 300 + cost_.directive_issue);  // fire-and-forget
  caches_.set(0, kB, LineState::Invalid);
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Idle);
  EXPECT_EQ(stats_.total(Stat::Writebacks), 1u);
  EXPECT_EQ(dir_.check_invariants(), "");
  // The next writer now takes the cheap hardware path: no trap.
  auto r2 = dir_.get_exclusive(2, kB, 400);
  EXPECT_FALSE(r2.trapped);
}

TEST_F(Dir1SWTest, CheckInDecrementsSharedCount) {
  dir_.get_shared(0, kB, 0);
  fill(0, kB, LineState::Shared);
  dir_.get_shared(2, kB, 0);
  fill(2, kB, LineState::Shared);
  dir_.put(0, kB, false, 10, true);
  caches_.set(0, kB, LineState::Invalid);
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Shared);
  EXPECT_EQ(dir_.entry(kB)->count, 1u);
  dir_.put(2, kB, false, 20, true);
  caches_.set(2, kB, LineState::Invalid);
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Idle);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, StalePutIsNacked) {
  auto r = dir_.put(0, kB, false, 0, true);
  EXPECT_TRUE(r.nacked);
  dir_.get_exclusive(2, kB, 0);
  fill(2, kB, LineState::Exclusive);
  auto r2 = dir_.put(0, kB, false, 10, true);  // not the owner
  EXPECT_TRUE(r2.nacked);
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Exclusive);
}

TEST_F(Dir1SWTest, PrefetchHardwarePathsSucceed) {
  auto r = dir_.get_shared(0, kB, 0, /*prefetch=*/true);
  EXPECT_FALSE(r.nacked);
  EXPECT_EQ(r.done_at, cost_.hw_miss_latency());
  fill(0, kB, LineState::Shared);
  // Sole-sharer prefetch-exclusive upgrade is also a hardware path.
  auto r2 = dir_.get_exclusive(0, kB, 10, /*prefetch=*/true);
  EXPECT_FALSE(r2.nacked);
  EXPECT_FALSE(r2.trapped);
  fill(0, kB, LineState::Exclusive);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(Dir1SWTest, PrefetchNeverTraps) {
  dir_.get_exclusive(2, kB, 0);
  fill(2, kB, LineState::Exclusive);
  auto r = dir_.get_shared(0, kB, 10, /*prefetch=*/true);
  EXPECT_TRUE(r.nacked);
  EXPECT_EQ(stats_.total(Stat::Traps), 0u);
  EXPECT_EQ(dir_.entry(kB)->state, DirState::Exclusive);  // unchanged
  EXPECT_EQ(dir_.entry(kB)->owner, 2u);

  auto r2 = dir_.get_exclusive(3, kB, 10, /*prefetch=*/true);
  EXPECT_TRUE(r2.nacked);

  // Shared by two: prefetch-X must not invalidate.
  dir_.get_shared(0, Block{2}, 0);
  fill(0, Block{2}, LineState::Shared);
  dir_.get_shared(3, Block{2}, 0);
  fill(3, Block{2}, LineState::Shared);
  auto r3 = dir_.get_exclusive(0, Block{2}, 10, /*prefetch=*/true);
  EXPECT_TRUE(r3.nacked);
  EXPECT_EQ(stats_.total(Stat::Invalidations), 0u);
}

TEST_F(Dir1SWTest, LocalRequestsSkipNetworkLatency) {
  // Block 1 homes on node 1: requests from node 1 pay no hops.
  auto r = dir_.get_shared(1, kB, 0);
  EXPECT_EQ(r.done_at, cost_.dir_hw + cost_.mem_access);
}

TEST_F(Dir1SWTest, MessagesAreCounted) {
  const auto before = net_.total_sent();
  dir_.get_shared(0, kB, 0);
  fill(0, kB, LineState::Shared);
  EXPECT_EQ(net_.total_sent(), before + 2);  // request + data reply
  EXPECT_EQ(net_.sent(net::MsgType::Request), 1u);
  EXPECT_EQ(net_.sent(net::MsgType::DataReply), 1u);
}

TEST_F(Dir1SWTest, TrapCostExceedsHardwareCost) {
  // The defining property Dir1SW + CICO relies on: traps are much more
  // expensive than hardware fills.
  auto hw = dir_.get_exclusive(0, kB, 0);
  fill(0, kB, LineState::Exclusive);
  auto trap = dir_.get_exclusive(2, kB, 0);
  fill(2, kB, LineState::Exclusive);
  caches_.set(0, kB, LineState::Invalid);
  EXPECT_GT(trap.done_at - 0, 2 * (hw.done_at - 0));
}

/// Randomized request streams keep directory and caches consistent.
TEST_F(Dir1SWTest, RandomStreamPreservesInvariants) {
  std::uint64_t s = 12345;
  auto rnd = [&] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  };
  for (int i = 0; i < 5000; ++i) {
    const NodeId n = static_cast<NodeId>(rnd() % kNodes);
    const Block b = rnd() % 16;
    switch (rnd() % 4) {
      case 0: {
        auto ls = caches_.peek(n, b);
        if (ls == LineState::Exclusive) break;  // would be a cache hit
        dir_.get_shared(n, b, i);
        if (ls == LineState::Invalid) fill(n, b, LineState::Shared);
        break;
      }
      case 1: {
        auto ls = caches_.peek(n, b);
        if (ls == LineState::Exclusive) break;
        dir_.get_exclusive(n, b, i);
        fill(n, b, LineState::Exclusive);
        break;
      }
      case 2: {
        auto ls = caches_.peek(n, b);
        if (ls == LineState::Invalid) break;
        dir_.put(n, b, ls == LineState::Exclusive, i, true);
        caches_.set(n, b, LineState::Invalid);
        break;
      }
      case 3: {
        auto ls = caches_.peek(n, b);
        if (ls != LineState::Invalid) break;
        auto r = dir_.get_shared(n, b, i, /*prefetch=*/true);
        if (!r.nacked) fill(n, b, LineState::Shared);
        break;
      }
    }
    if (i % 500 == 0) {
      ASSERT_EQ(dir_.check_invariants(), "") << "iter " << i;
    }
  }
  EXPECT_EQ(dir_.check_invariants(), "");
}

}  // namespace
}  // namespace cico::proto
