// Parameterized protocol sweeps: the Dir1SW state machine must keep its
// invariants and its cost ordering across node counts, sharer counts and
// cost models.
#include <gtest/gtest.h>

#include <map>

#include "cico/proto/dir1sw.hpp"

namespace cico::proto {
namespace {

using mem::LineState;

class MapCaches : public CacheControl {
 public:
  [[nodiscard]] LineState peek(NodeId n, Block b) const override {
    auto it = lines_.find({n, b});
    return it == lines_.end() ? LineState::Invalid : it->second;
  }
  void invalidate(NodeId n, Block b) override { lines_.erase({n, b}); }
  void downgrade(NodeId n, Block b) override {
    auto it = lines_.find({n, b});
    if (it != lines_.end()) it->second = LineState::Shared;
  }
  void push_shared(NodeId n, Block b) override {
    lines_[{n, b}] = LineState::Shared;
  }
  void set(NodeId n, Block b, LineState s) {
    if (s == LineState::Invalid) lines_.erase({n, b});
    else lines_[{n, b}] = s;
  }

 private:
  std::map<std::pair<NodeId, Block>, LineState> lines_;
};

class SharerSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SharerSweep, InvalidationCountMatchesSharerCount) {
  const std::uint32_t sharers = GetParam();
  const std::uint32_t nodes = sharers + 2;
  CostModel cost;
  Stats stats(nodes);
  net::Network net(cost, stats);
  MapCaches caches;
  Dir1SW dir(nodes, cost, net, stats, caches);

  const Block b = 1;
  for (std::uint32_t s = 0; s < sharers; ++s) {
    dir.get_shared(s, b, 0);
    caches.set(s, b, LineState::Shared);
  }
  // A non-sharer writes: every sharer must be invalidated through the
  // software handler (one trap, `sharers` invalidations).
  const NodeId writer = sharers;
  auto r = dir.get_exclusive(writer, b, 100);
  caches.set(writer, b, LineState::Exclusive);
  if (sharers <= 1 && sharers == 0) {
    EXPECT_FALSE(r.trapped);
  } else {
    EXPECT_TRUE(r.trapped);
    EXPECT_EQ(r.invalidations, sharers);
  }
  EXPECT_EQ(dir.check_invariants(), "");
  // Latency grows with the number of sharers (software serializes the
  // invalidation sends).
  if (sharers >= 2) {
    EXPECT_GE(r.done_at - 100,
              cost.dir_trap + sharers * cost.inval_per_sharer);
  }
}

INSTANTIATE_TEST_SUITE_P(Sharers, SharerSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 31u));

struct CostCase {
  Cycle hop, trap;
};

class CostSweep : public ::testing::TestWithParam<CostCase> {};

TEST_P(CostSweep, TrapAlwaysCostsMoreThanHardwareFill) {
  const CostCase cc = GetParam();
  CostModel cost;
  cost.net_hop = cc.hop;
  cost.dir_trap = cc.trap;
  Stats stats(4);
  net::Network net(cost, stats);
  MapCaches caches;
  Dir1SW dir(4, cost, net, stats, caches);

  auto hw = dir.get_exclusive(0, 1, 0);
  caches.set(0, 1, LineState::Exclusive);
  auto trap = dir.get_exclusive(2, 1, hw.done_at);
  caches.set(2, 1, LineState::Exclusive);
  caches.set(0, 1, LineState::Invalid);
  EXPECT_GT(trap.done_at - hw.done_at, hw.done_at - 0);
  EXPECT_EQ(dir.check_invariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Costs, CostSweep,
                         ::testing::Values(CostCase{10, 100},
                                           CostCase{40, 240},
                                           CostCase{100, 1000},
                                           CostCase{1, 50}));

class NodeCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NodeCountSweep, HomeDistributionCoversAllNodes) {
  const std::uint32_t nodes = GetParam();
  CostModel cost;
  Stats stats(nodes);
  net::Network net(cost, stats);
  MapCaches caches;
  Dir1SW dir(nodes, cost, net, stats, caches);
  std::vector<bool> seen(nodes, false);
  for (Block b = 0; b < nodes * 3; ++b) {
    const NodeId h = dir.home_of(b);
    ASSERT_LT(h, nodes);
    seen[h] = true;
  }
  for (std::uint32_t n = 0; n < nodes; ++n) EXPECT_TRUE(seen[n]);
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeCountSweep,
                         ::testing::Values(1u, 2u, 8u, 32u, 64u));

TEST(Dir1SWCornerTest, ReadAfterOwnerCheckinIsHardware) {
  CostModel cost;
  Stats stats(4);
  net::Network net(cost, stats);
  MapCaches caches;
  Dir1SW dir(4, cost, net, stats, caches);
  dir.get_exclusive(0, 5, 0);
  caches.set(0, 5, LineState::Exclusive);
  dir.put(0, 5, true, 10, true);
  caches.set(0, 5, LineState::Invalid);
  auto r = dir.get_shared(1, 5, 20);
  EXPECT_FALSE(r.trapped);
  EXPECT_EQ(stats.total(Stat::Traps), 0u);
}

TEST(Dir1SWCornerTest, DowngradedOwnerCanHardwareUpgradeAfterReaderLeaves) {
  CostModel cost;
  Stats stats(4);
  net::Network net(cost, stats);
  MapCaches caches;
  Dir1SW dir(4, cost, net, stats, caches);
  dir.get_exclusive(0, 5, 0);
  caches.set(0, 5, LineState::Exclusive);
  auto r1 = dir.get_shared(1, 5, 10);  // trap: downgrade owner
  caches.set(1, 5, LineState::Shared);
  EXPECT_TRUE(r1.trapped);
  dir.put(1, 5, false, r1.done_at, true);  // reader checks in
  caches.set(1, 5, LineState::Invalid);
  // Node 0, now the sole Shared holder, upgrades in hardware.
  auto r2 = dir.get_exclusive(0, 5, r1.done_at + 100);
  caches.set(0, 5, LineState::Exclusive);
  EXPECT_FALSE(r2.trapped);
  EXPECT_EQ(dir.check_invariants(), "");
}

}  // namespace
}  // namespace cico::proto
