// Tests for the DirN full-map all-hardware baseline protocol.
#include "cico/proto/dirn.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cico::proto {
namespace {

using mem::LineState;

class MapCaches : public CacheControl {
 public:
  [[nodiscard]] LineState peek(NodeId n, Block b) const override {
    auto it = lines_.find({n, b});
    return it == lines_.end() ? LineState::Invalid : it->second;
  }
  void invalidate(NodeId n, Block b) override { lines_.erase({n, b}); }
  void downgrade(NodeId n, Block b) override {
    auto it = lines_.find({n, b});
    if (it != lines_.end()) it->second = LineState::Shared;
  }
  void push_shared(NodeId n, Block b) override {
    lines_[{n, b}] = LineState::Shared;
  }
  void set(NodeId n, Block b, LineState s) {
    if (s == LineState::Invalid) lines_.erase({n, b});
    else lines_[{n, b}] = s;
  }

 private:
  std::map<std::pair<NodeId, Block>, LineState> lines_;
};

class DirNTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 8;
  DirNTest()
      : stats_(kNodes), net_(cost_, stats_),
        dir_(kNodes, cost_, net_, stats_, caches_) {}

  CostModel cost_{};
  Stats stats_;
  net::Network net_;
  MapCaches caches_;
  DirNFullMap dir_;
};

TEST_F(DirNTest, NothingEverTraps) {
  // Heavy contention: every transition kind, zero traps.
  dir_.get_shared(0, 1, 0, false);
  caches_.set(0, 1, LineState::Shared);
  dir_.get_shared(1, 1, 10, false);
  caches_.set(1, 1, LineState::Shared);
  dir_.get_shared(2, 1, 20, false);
  caches_.set(2, 1, LineState::Shared);
  auto wr = dir_.get_exclusive(3, 1, 30, false);  // invalidates 3 sharers
  caches_.set(3, 1, LineState::Exclusive);
  EXPECT_EQ(wr.invalidations, 3u);
  auto rd = dir_.get_shared(4, 1, 40, false);  // forwarding from owner
  caches_.set(4, 1, LineState::Shared);
  auto wr2 = dir_.get_exclusive(5, 1, 50, false);
  caches_.set(5, 1, LineState::Exclusive);
  EXPECT_FALSE(wr.trapped);
  EXPECT_FALSE(rd.trapped);
  EXPECT_FALSE(wr2.trapped);
  EXPECT_EQ(stats_.total(Stat::Traps), 0u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(DirNTest, ParallelInvalidationIsCheaperThanSerial) {
  // 6 sharers; hardware fan-out pays one RTT + per-sharer occupancy, far
  // below Dir1SW's trap + serialized software sends.
  for (NodeId n = 0; n < 6; ++n) {
    dir_.get_shared(n, 1, 0, false);
    caches_.set(n, 1, LineState::Shared);
  }
  auto r = dir_.get_exclusive(6, 1, 100, false);
  caches_.set(6, 1, LineState::Exclusive);
  EXPECT_EQ(r.invalidations, 6u);
  // Upper bound: request hop + dir occupancy*(1+6) + RTT + mem + reply.
  const Cycle bound = cost_.net_hop + cost_.dir_hw * 7 + 2 * cost_.net_hop +
                      cost_.mem_access + cost_.net_hop;
  EXPECT_LE(r.done_at - 100, bound);
  // And strictly below the full Dir1SW trap path for the same fan-out
  // (request hop + trap + serialized sends + last RTT + ack hop).
  const Cycle dir1sw_path = cost_.net_hop + cost_.dir_trap +
                            6 * cost_.inval_per_sharer + 2 * cost_.net_hop +
                            cost_.net_hop;
  EXPECT_LT(r.done_at - 100, dir1sw_path);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(DirNTest, ThreeHopForwardingForDirtyRead) {
  dir_.get_exclusive(2, 1, 0, false);
  caches_.set(2, 1, LineState::Exclusive);
  auto r = dir_.get_shared(0, 1, 100, false);
  caches_.set(0, 1, LineState::Shared);
  EXPECT_FALSE(r.trapped);
  // req->home + dir + home->owner + owner->req: 3 hops + occupancy.
  EXPECT_EQ(r.done_at, 100 + 3 * cost_.net_hop + cost_.dir_hw);
  EXPECT_EQ(caches_.peek(2, 1), LineState::Shared);  // downgraded
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(DirNTest, CheckInStillWorks) {
  dir_.get_exclusive(0, 1, 0, false);
  caches_.set(0, 1, LineState::Exclusive);
  auto r = dir_.put(0, 1, true, 10, true);
  EXPECT_FALSE(r.nacked);
  caches_.set(0, 1, LineState::Invalid);
  auto r2 = dir_.get_exclusive(1, 1, 20, false);
  caches_.set(1, 1, LineState::Exclusive);
  EXPECT_EQ(r2.invalidations, 0u);
  EXPECT_EQ(dir_.check_invariants(), "");
}

TEST_F(DirNTest, PostStoreWorksHereToo) {
  dir_.get_shared(1, 1, 0, false);
  caches_.set(1, 1, LineState::Shared);
  dir_.get_exclusive(0, 1, 10, false);  // invalidates node 1
  caches_.set(0, 1, LineState::Exclusive);
  auto r = dir_.post_store(0, 1, 20);
  EXPECT_FALSE(r.nacked);
  EXPECT_EQ(caches_.peek(1, 1), LineState::Shared);  // pushed back
  EXPECT_EQ(caches_.peek(0, 1), LineState::Shared);
  EXPECT_EQ(dir_.check_invariants(), "");
}

}  // namespace
}  // namespace cico::proto
